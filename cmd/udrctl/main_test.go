package main

import (
	"net"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/ldap"
	"repro/internal/simnet"
	"repro/internal/store"
	"repro/internal/subscriber"
)

func TestParseFilterEquality(t *testing.T) {
	f, err := parseFilter("(msisdn=34600000001)")
	if err != nil {
		t.Fatal(err)
	}
	if f.Kind != ldap.FilterEquality || f.Attr != "msisdn" || f.Value != "34600000001" {
		t.Fatalf("filter = %+v", f)
	}
}

func TestParseFilterPresence(t *testing.T) {
	f, err := parseFilter("(objectClass=*)")
	if err != nil {
		t.Fatal(err)
	}
	if f.Kind != ldap.FilterPresent || f.Attr != "objectClass" {
		t.Fatalf("filter = %+v", f)
	}
}

func TestParseFilterTrimsSpace(t *testing.T) {
	if _, err := parseFilter("  (imsi=1)  "); err != nil {
		t.Fatal(err)
	}
}

func TestParseFilterErrors(t *testing.T) {
	for _, bad := range []string{"", "msisdn=1", "(msisdn)", "(=1)", "(novalue"} {
		if _, err := parseFilter(bad); err == nil {
			t.Errorf("parseFilter(%q) accepted", bad)
		}
	}
}

func TestParseFilterValueWithEquals(t *testing.T) {
	f, err := parseFilter("(impu=sip:+34=6@x)")
	if err != nil {
		t.Fatal(err)
	}
	if f.Value != "sip:+34=6@x" {
		t.Fatalf("value = %q", f.Value)
	}
}

// TestRepairEndToEnd drives the operator path udrctl repair uses: an
// LDAP client issues the repair extended op against a backend with
// topology access, and a deliberately divergent slave row converges.
func TestRepairEndToEnd(t *testing.T) {
	network := simnet.New(simnet.FastConfig())
	cfg := core.DefaultConfig()
	cfg.AntiEntropy = true
	u, err := core.New(network, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer u.Stop()
	gen := subscriber.NewGenerator(u.Sites()...)
	for i := 0; i < 12; i++ {
		if err := u.SeedDirect(gen.Profile(i)); err != nil {
			t.Fatal(err)
		}
	}

	// Diverge one slave copy: a stale out-of-band overwrite of a
	// seeded row plus a stranded replication watermark, the
	// post-failover shape. The master's version is newer and must win
	// back the row through repair.
	partID := u.Partitions()[0]
	part, _ := u.Partition(partID)
	masterStore := u.Element(part.Master().Element).Replica(partID).Store
	slaveStore := u.Element(part.Replicas[1].Element).Replica(partID).Store
	key := masterStore.Keys()[0]
	wantEntry, _, _ := masterStore.GetCommitted(key)
	slaveStore.SetAppliedCSN(1 << 40)
	slaveStore.PutDirect(key, store.Entry{"v": {"stale"}}, store.Meta{CSN: 1, WallTS: 1})

	session := core.NewSession(network, simnet.MakeAddr(part.HomeSite, "udrctl-test"),
		part.HomeSite, core.PolicyPS)
	server := ldap.NewServer(core.NewLDAPBackend(session).WithTopology(u))
	cliConn, srvConn := net.Pipe()
	go server.ServeConn(srvConn)

	c := ldap.NewClient(cliConn)
	defer c.Unbind()
	if r, err := c.Bind("cn=test", "x"); err != nil || r.Code != ldap.ResultSuccess {
		t.Fatalf("bind: %v %v", r, err)
	}
	text, r, err := c.Repair()
	if err != nil {
		t.Fatalf("repair: %v", err)
	}
	if r.Code != ldap.ResultSuccess {
		t.Fatalf("repair result: %v %s", r.Code, r.Message)
	}
	if !strings.Contains(text, "repair total:") {
		t.Fatalf("repair report missing summary:\n%s", text)
	}
	if !strings.Contains(text, "shipped=") {
		t.Fatalf("repair report shows no shipped rows:\n%s", text)
	}
	got, _, ok := slaveStore.GetCommitted(key)
	if !ok || !got.Equal(wantEntry) {
		t.Fatalf("divergent row not repaired: got %v, want %v", got, wantEntry)
	}
}
