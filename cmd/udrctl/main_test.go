package main

import (
	"net"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/ldap"
	"repro/internal/simnet"
	"repro/internal/store"
	"repro/internal/subscriber"
)

func TestParseFilterEquality(t *testing.T) {
	f, err := parseFilter("(msisdn=34600000001)")
	if err != nil {
		t.Fatal(err)
	}
	if f.Kind != ldap.FilterEquality || f.Attr != "msisdn" || f.Value != "34600000001" {
		t.Fatalf("filter = %+v", f)
	}
}

func TestParseFilterPresence(t *testing.T) {
	f, err := parseFilter("(objectClass=*)")
	if err != nil {
		t.Fatal(err)
	}
	if f.Kind != ldap.FilterPresent || f.Attr != "objectClass" {
		t.Fatalf("filter = %+v", f)
	}
}

func TestParseFilterTrimsSpace(t *testing.T) {
	if _, err := parseFilter("  (imsi=1)  "); err != nil {
		t.Fatal(err)
	}
}

func TestParseFilterErrors(t *testing.T) {
	for _, bad := range []string{"", "msisdn=1", "(msisdn)", "(=1)", "(novalue"} {
		if _, err := parseFilter(bad); err == nil {
			t.Errorf("parseFilter(%q) accepted", bad)
		}
	}
}

func TestParseFilterValueWithEquals(t *testing.T) {
	f, err := parseFilter("(impu=sip:+34=6@x)")
	if err != nil {
		t.Fatal(err)
	}
	if f.Value != "sip:+34=6@x" {
		t.Fatalf("value = %q", f.Value)
	}
}

// dialBackend serves an LDAP backend over an in-memory pipe and
// returns a bound client (the exact wire path udrctl uses).
func dialBackend(t *testing.T, b *core.LDAPBackend) *ldap.Client {
	t.Helper()
	server := ldap.NewServer(b)
	cliConn, srvConn := net.Pipe()
	go server.ServeConn(srvConn)
	c := ldap.NewClient(cliConn)
	t.Cleanup(func() { c.Unbind() })
	if r, err := c.Bind("cn=test", "x"); err != nil || r.Code != ldap.ResultSuccess {
		t.Fatalf("bind: %v %v", r, err)
	}
	return c
}

// TestRepairRequiresTopology pins the control-plane guard: a backend
// without topology access (a plain data endpoint) must refuse both the
// status and the repair extended operations instead of crashing.
func TestRepairRequiresTopology(t *testing.T) {
	network := simnet.New(simnet.FastConfig())
	u, err := core.New(network, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer u.Stop()
	site := u.Sites()[0]
	session := core.NewSession(network, simnet.MakeAddr(site, "udrctl-test"), site, core.PolicyPS)
	c := dialBackend(t, core.NewLDAPBackend(session)) // no WithTopology

	if _, r, err := c.Repair(); err != nil || r.Code != ldap.ResultUnwillingToPerform {
		t.Fatalf("repair without topology: %v %v, want unwillingToPerform", r.Code, err)
	}
	if _, r, err := c.Status(); err != nil || r.Code != ldap.ResultUnwillingToPerform {
		t.Fatalf("status without topology: %v %v, want unwillingToPerform", r.Code, err)
	}
}

// TestRepairDisabledAntiEntropy pins the operator error when the UDR
// runs without the anti-entropy subsystem: udrctl repair must get a
// clean unwilling-to-perform with an explanation, not a success with
// zero rounds.
func TestRepairDisabledAntiEntropy(t *testing.T) {
	network := simnet.New(simnet.FastConfig())
	u, err := core.New(network, core.DefaultConfig()) // AntiEntropy off
	if err != nil {
		t.Fatal(err)
	}
	defer u.Stop()
	site := u.Sites()[0]
	session := core.NewSession(network, simnet.MakeAddr(site, "udrctl-test"), site, core.PolicyPS)
	c := dialBackend(t, core.NewLDAPBackend(session).WithTopology(u))

	_, r, err := c.Repair()
	if err != nil {
		t.Fatal(err)
	}
	if r.Code != ldap.ResultUnwillingToPerform {
		t.Fatalf("repair with anti-entropy disabled: %v, want unwillingToPerform", r.Code)
	}
	if !strings.Contains(r.Message, "disabled") {
		t.Fatalf("message %q does not explain the refusal", r.Message)
	}
}

// TestRepairPartitionedPeerReportsError drives repair while a site is
// partitioned away: the extended op must complete, report the rounds
// that did run, and surface the unreachable peer as a non-success
// result — the operator needs to know the round was partial.
func TestRepairPartitionedPeerReportsError(t *testing.T) {
	network := simnet.New(simnet.FastConfig())
	cfg := core.DefaultConfig()
	cfg.AntiEntropy = true
	u, err := core.New(network, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer u.Stop()
	gen := subscriber.NewGenerator(u.Sites()...)
	for i := 0; i < 6; i++ {
		if err := u.SeedDirect(gen.Profile(i)); err != nil {
			t.Fatal(err)
		}
	}
	cut := u.Sites()[2]
	network.Partition([]string{cut})

	site := u.Sites()[0]
	session := core.NewSession(network, simnet.MakeAddr(site, "udrctl-test"), site, core.PolicyPS)
	c := dialBackend(t, core.NewLDAPBackend(session).WithTopology(u))
	text, r, err := c.Repair()
	if err != nil {
		t.Fatal(err)
	}
	if r.Code != ldap.ResultOther {
		t.Fatalf("repair across a partition: %v, want other (partial failure)", r.Code)
	}
	if !strings.Contains(text, "repair total:") {
		t.Fatalf("partial repair report missing summary:\n%s", text)
	}
}

// TestRepairEndToEnd drives the operator path udrctl repair uses: an
// LDAP client issues the repair extended op against a backend with
// topology access, and a deliberately divergent slave row converges.
func TestRepairEndToEnd(t *testing.T) {
	network := simnet.New(simnet.FastConfig())
	cfg := core.DefaultConfig()
	cfg.AntiEntropy = true
	u, err := core.New(network, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer u.Stop()
	gen := subscriber.NewGenerator(u.Sites()...)
	for i := 0; i < 12; i++ {
		if err := u.SeedDirect(gen.Profile(i)); err != nil {
			t.Fatal(err)
		}
	}

	// Diverge one slave copy: a stale out-of-band overwrite of a
	// seeded row plus a stranded replication watermark, the
	// post-failover shape. The master's version is newer and must win
	// back the row through repair.
	partID := u.Partitions()[0]
	part, _ := u.Partition(partID)
	masterStore := u.Element(part.Master().Element).Replica(partID).Store
	slaveStore := u.Element(part.Replicas[1].Element).Replica(partID).Store
	key := masterStore.Keys()[0]
	wantEntry, _, _ := masterStore.GetCommitted(key)
	slaveStore.SetAppliedCSN(1 << 40)
	slaveStore.PutDirect(key, store.Entry{"v": {"stale"}}, store.Meta{CSN: 1, WallTS: 1})

	session := core.NewSession(network, simnet.MakeAddr(part.HomeSite, "udrctl-test"),
		part.HomeSite, core.PolicyPS)
	server := ldap.NewServer(core.NewLDAPBackend(session).WithTopology(u))
	cliConn, srvConn := net.Pipe()
	go server.ServeConn(srvConn)

	c := ldap.NewClient(cliConn)
	defer c.Unbind()
	if r, err := c.Bind("cn=test", "x"); err != nil || r.Code != ldap.ResultSuccess {
		t.Fatalf("bind: %v %v", r, err)
	}
	text, r, err := c.Repair()
	if err != nil {
		t.Fatalf("repair: %v", err)
	}
	if r.Code != ldap.ResultSuccess {
		t.Fatalf("repair result: %v %s", r.Code, r.Message)
	}
	if !strings.Contains(text, "repair total:") {
		t.Fatalf("repair report missing summary:\n%s", text)
	}
	if !strings.Contains(text, "shipped=") {
		t.Fatalf("repair report shows no shipped rows:\n%s", text)
	}
	got, _, ok := slaveStore.GetCommitted(key)
	if !ok || !got.Equal(wantEntry) {
		t.Fatalf("divergent row not repaired: got %v, want %v", got, wantEntry)
	}
}
