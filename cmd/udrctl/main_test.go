package main

import (
	"testing"

	"repro/internal/ldap"
)

func TestParseFilterEquality(t *testing.T) {
	f, err := parseFilter("(msisdn=34600000001)")
	if err != nil {
		t.Fatal(err)
	}
	if f.Kind != ldap.FilterEquality || f.Attr != "msisdn" || f.Value != "34600000001" {
		t.Fatalf("filter = %+v", f)
	}
}

func TestParseFilterPresence(t *testing.T) {
	f, err := parseFilter("(objectClass=*)")
	if err != nil {
		t.Fatal(err)
	}
	if f.Kind != ldap.FilterPresent || f.Attr != "objectClass" {
		t.Fatalf("filter = %+v", f)
	}
}

func TestParseFilterTrimsSpace(t *testing.T) {
	if _, err := parseFilter("  (imsi=1)  "); err != nil {
		t.Fatal(err)
	}
}

func TestParseFilterErrors(t *testing.T) {
	for _, bad := range []string{"", "msisdn=1", "(msisdn)", "(=1)", "(novalue"} {
		if _, err := parseFilter(bad); err == nil {
			t.Errorf("parseFilter(%q) accepted", bad)
		}
	}
}

func TestParseFilterValueWithEquals(t *testing.T) {
	f, err := parseFilter("(impu=sip:+34=6@x)")
	if err != nil {
		t.Fatal(err)
	}
	if f.Value != "sip:+34=6@x" {
		t.Fatalf("value = %q", f.Value)
	}
}
