package main

import (
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ldap"
	"repro/internal/rebalance"
	"repro/internal/simnet"
	"repro/internal/store"
	"repro/internal/subscriber"
)

func TestParseFilterEquality(t *testing.T) {
	f, err := parseFilter("(msisdn=34600000001)")
	if err != nil {
		t.Fatal(err)
	}
	if f.Kind != ldap.FilterEquality || f.Attr != "msisdn" || f.Value != "34600000001" {
		t.Fatalf("filter = %+v", f)
	}
}

func TestParseFilterPresence(t *testing.T) {
	f, err := parseFilter("(objectClass=*)")
	if err != nil {
		t.Fatal(err)
	}
	if f.Kind != ldap.FilterPresent || f.Attr != "objectClass" {
		t.Fatalf("filter = %+v", f)
	}
}

func TestParseFilterTrimsSpace(t *testing.T) {
	if _, err := parseFilter("  (imsi=1)  "); err != nil {
		t.Fatal(err)
	}
}

func TestParseFilterErrors(t *testing.T) {
	for _, bad := range []string{"", "msisdn=1", "(msisdn)", "(=1)", "(novalue"} {
		if _, err := parseFilter(bad); err == nil {
			t.Errorf("parseFilter(%q) accepted", bad)
		}
	}
}

func TestParseFilterValueWithEquals(t *testing.T) {
	f, err := parseFilter("(impu=sip:+34=6@x)")
	if err != nil {
		t.Fatal(err)
	}
	if f.Value != "sip:+34=6@x" {
		t.Fatalf("value = %q", f.Value)
	}
}

// dialBackend serves an LDAP backend over an in-memory pipe and
// returns a bound client (the exact wire path udrctl uses).
func dialBackend(t *testing.T, b *core.LDAPBackend) *ldap.Client {
	t.Helper()
	server := ldap.NewServer(b)
	cliConn, srvConn := net.Pipe()
	go server.ServeConn(srvConn)
	c := ldap.NewClient(cliConn)
	t.Cleanup(func() { c.Unbind() })
	if r, err := c.Bind("cn=test", "x"); err != nil || r.Code != ldap.ResultSuccess {
		t.Fatalf("bind: %v %v", r, err)
	}
	return c
}

// TestRepairRequiresTopology pins the control-plane guard: a backend
// without topology access (a plain data endpoint) must refuse both the
// status and the repair extended operations instead of crashing.
func TestRepairRequiresTopology(t *testing.T) {
	network := simnet.New(simnet.FastConfig())
	u, err := core.New(network, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer u.Stop()
	site := u.Sites()[0]
	session := core.NewSession(network, simnet.MakeAddr(site, "udrctl-test"), site, core.PolicyPS)
	c := dialBackend(t, core.NewLDAPBackend(session)) // no WithTopology

	if _, r, err := c.Repair(); err != nil || r.Code != ldap.ResultUnwillingToPerform {
		t.Fatalf("repair without topology: %v %v, want unwillingToPerform", r.Code, err)
	}
	if _, r, err := c.Status(); err != nil || r.Code != ldap.ResultUnwillingToPerform {
		t.Fatalf("status without topology: %v %v, want unwillingToPerform", r.Code, err)
	}
}

// TestRepairDisabledAntiEntropy pins the operator error when the UDR
// runs without the anti-entropy subsystem: udrctl repair must get a
// clean unwilling-to-perform with an explanation, not a success with
// zero rounds.
func TestRepairDisabledAntiEntropy(t *testing.T) {
	network := simnet.New(simnet.FastConfig())
	u, err := core.New(network, core.DefaultConfig()) // AntiEntropy off
	if err != nil {
		t.Fatal(err)
	}
	defer u.Stop()
	site := u.Sites()[0]
	session := core.NewSession(network, simnet.MakeAddr(site, "udrctl-test"), site, core.PolicyPS)
	c := dialBackend(t, core.NewLDAPBackend(session).WithTopology(u))

	_, r, err := c.Repair()
	if err != nil {
		t.Fatal(err)
	}
	if r.Code != ldap.ResultUnwillingToPerform {
		t.Fatalf("repair with anti-entropy disabled: %v, want unwillingToPerform", r.Code)
	}
	if !strings.Contains(r.Message, "disabled") {
		t.Fatalf("message %q does not explain the refusal", r.Message)
	}
}

// TestRepairPartitionedPeerReportsError drives repair while a site is
// partitioned away: the extended op must complete, report the rounds
// that did run, and surface the unreachable peer as a non-success
// result — the operator needs to know the round was partial.
func TestRepairPartitionedPeerReportsError(t *testing.T) {
	network := simnet.New(simnet.FastConfig())
	cfg := core.DefaultConfig()
	cfg.AntiEntropy = true
	u, err := core.New(network, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer u.Stop()
	gen := subscriber.NewGenerator(u.Sites()...)
	for i := 0; i < 6; i++ {
		if err := u.SeedDirect(gen.Profile(i)); err != nil {
			t.Fatal(err)
		}
	}
	cut := u.Sites()[2]
	network.Partition([]string{cut})

	site := u.Sites()[0]
	session := core.NewSession(network, simnet.MakeAddr(site, "udrctl-test"), site, core.PolicyPS)
	c := dialBackend(t, core.NewLDAPBackend(session).WithTopology(u))
	text, r, err := c.Repair()
	if err != nil {
		t.Fatal(err)
	}
	if r.Code != ldap.ResultOther {
		t.Fatalf("repair across a partition: %v, want other (partial failure)", r.Code)
	}
	if !strings.Contains(text, "repair total:") {
		t.Fatalf("partial repair report missing summary:\n%s", text)
	}
}

// moveTestUDR builds a two-site, two-SE-per-site UDR (so elements
// hosting no replica of a partition exist — eligible migration
// targets) plus a bound LDAP client with topology access: the exact
// wire path udrctl move / rebalance uses.
func moveTestUDR(t *testing.T, subs int) (*simnet.Network, *core.UDR, *ldap.Client) {
	t.Helper()
	network := simnet.New(simnet.FastConfig())
	cfg := core.DefaultConfig()
	cfg.Sites = []core.SiteSpec{
		{Name: "eu-south", SEs: 2, PartitionsPerSE: 1},
		{Name: "eu-north", SEs: 2, PartitionsPerSE: 1},
	}
	cfg.ReplicationFactor = 2
	u, err := core.New(network, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(u.Stop)
	gen := subscriber.NewGenerator(u.Sites()...)
	for i := 0; i < subs; i++ {
		if err := u.SeedDirect(gen.Profile(i)); err != nil {
			t.Fatal(err)
		}
	}
	site := u.Sites()[0]
	session := core.NewSession(network, simnet.MakeAddr(site, "udrctl-test"), site, core.PolicyPS)
	c := dialBackend(t, core.NewLDAPBackend(session).WithTopology(u))
	return network, u, c
}

// TestMoveRequiresTopology mirrors the repair guard: a data-only
// endpoint must refuse the move and rebalance extended ops.
func TestMoveRequiresTopology(t *testing.T) {
	network := simnet.New(simnet.FastConfig())
	u, err := core.New(network, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer u.Stop()
	site := u.Sites()[0]
	session := core.NewSession(network, simnet.MakeAddr(site, "udrctl-test"), site, core.PolicyPS)
	c := dialBackend(t, core.NewLDAPBackend(session)) // no WithTopology

	if _, r, err := c.Move("p-x", "se-x"); err != nil || r.Code != ldap.ResultUnwillingToPerform {
		t.Fatalf("move without topology: %v %v, want unwillingToPerform", r.Code, err)
	}
	if _, r, err := c.Rebalance(); err != nil || r.Code != ldap.ResultUnwillingToPerform {
		t.Fatalf("rebalance without topology: %v %v, want unwillingToPerform", r.Code, err)
	}
}

// TestMoveUnknownTargets pins the operator-mistake classes: an
// unknown partition or element must come back as noSuchObject, and a
// malformed request as a protocol error.
func TestMoveUnknownTargets(t *testing.T) {
	_, u, c := moveTestUDR(t, 4)
	if _, r, err := c.Move("p-nope", u.Elements()[0]); err != nil || r.Code != ldap.ResultNoSuchObject {
		t.Fatalf("unknown partition: %v %v, want noSuchObject", r.Code, err)
	}
	if _, r, err := c.Move(u.Partitions()[0], "se-nope"); err != nil || r.Code != ldap.ResultNoSuchObject {
		t.Fatalf("unknown element: %v %v, want noSuchObject", r.Code, err)
	}
	if _, r, err := c.Move("p-only", ""); err != nil || r.Code != ldap.ResultProtocolError {
		t.Fatalf("malformed move: %v %v, want protocolError", r.Code, err)
	}
}

// TestMoveTargetAlreadyHostsReplica pins the conflict class: moving a
// master onto an element already holding a copy is a failover, not a
// migration, and must be refused cleanly.
func TestMoveTargetAlreadyHostsReplica(t *testing.T) {
	_, u, c := moveTestUDR(t, 4)
	partID := u.Partitions()[0]
	part, _ := u.Partition(partID)
	_, r, err := c.Move(partID, part.Replicas[1].Element)
	if err != nil {
		t.Fatal(err)
	}
	if r.Code != ldap.ResultUnwillingToPerform {
		t.Fatalf("move onto a replica holder: %v, want unwillingToPerform", r.Code)
	}
	if !strings.Contains(r.Message, "already hosts") {
		t.Fatalf("message %q does not explain the conflict", r.Message)
	}
}

// TestMoveInFlightConflict pins the concurrency guard: while a
// migration of a partition runs, a second move of the same partition
// over LDAP must get busy, not a second migration.
func TestMoveInFlightConflict(t *testing.T) {
	_, u, c := moveTestUDR(t, 4)
	partID := "p-eu-south-0"
	part, _ := u.Partition(partID)
	hosted := map[string]bool{}
	for _, ref := range part.Replicas {
		hosted[ref.Element] = true
	}
	target := ""
	for _, el := range u.Elements() {
		if !hosted[el] {
			target = el
			break
		}
	}

	hold := make(chan struct{})
	entered := make(chan struct{})
	done := make(chan error, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	go func() {
		_, err := u.MigratePartition(ctx, partID, target, false,
			core.WithMigrateHooks(rebalance.Hooks{AfterCopy: func() {
				close(entered)
				<-hold
			}}))
		done <- err
	}()
	<-entered
	_, r, err := c.Move(partID, target)
	close(hold)
	if err != nil {
		t.Fatal(err)
	}
	if r.Code != ldap.ResultBusy {
		t.Fatalf("move during migration: %v, want busy", r.Code)
	}
	if err := <-done; err != nil {
		t.Fatalf("held migration failed: %v", err)
	}
}

// TestMoveEndToEnd drives the full operator path: udrctl move over
// LDAP migrates a live partition and reports the cost line.
func TestMoveEndToEnd(t *testing.T) {
	_, u, c := moveTestUDR(t, 12)
	partID := "p-eu-south-0"
	part, _ := u.Partition(partID)
	hosted := map[string]bool{}
	for _, ref := range part.Replicas {
		hosted[ref.Element] = true
	}
	target := ""
	for _, el := range u.Elements() {
		if !hosted[el] {
			target = el
			break
		}
	}

	text, r, err := c.Move(partID, target)
	if err != nil {
		t.Fatal(err)
	}
	if r.Code != ldap.ResultSuccess {
		t.Fatalf("move: %v %s", r.Code, r.Message)
	}
	if !strings.Contains(text, "migrate "+partID) || !strings.Contains(text, "rows=") {
		t.Fatalf("move report missing cost line:\n%s", text)
	}
	after, _ := u.Partition(partID)
	if after.Master().Element != target {
		t.Fatalf("master = %s, want %s", after.Master().Element, target)
	}
	// The status extended op reflects the new placement.
	status, r, err := c.Status()
	if err != nil || r.Code != ldap.ResultSuccess {
		t.Fatalf("status after move: %v %v", r.Code, err)
	}
	if !strings.Contains(status, target) {
		t.Fatalf("status does not show the new master:\n%s", status)
	}
}

// TestRebalanceEndToEnd drives udrctl rebalance: a balanced cluster
// reports no moves; the report shape is the operator contract.
func TestRebalanceEndToEnd(t *testing.T) {
	_, _, c := moveTestUDR(t, 8)
	text, r, err := c.Rebalance()
	if err != nil {
		t.Fatal(err)
	}
	if r.Code != ldap.ResultSuccess {
		t.Fatalf("rebalance: %v %s", r.Code, r.Message)
	}
	if !strings.Contains(text, "balanced") && !strings.Contains(text, "rebalance total:") {
		t.Fatalf("rebalance report unrecognized:\n%s", text)
	}
}

// TestRepairEndToEnd drives the operator path udrctl repair uses: an
// LDAP client issues the repair extended op against a backend with
// topology access, and a deliberately divergent slave row converges.
func TestRepairEndToEnd(t *testing.T) {
	network := simnet.New(simnet.FastConfig())
	cfg := core.DefaultConfig()
	cfg.AntiEntropy = true
	u, err := core.New(network, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer u.Stop()
	gen := subscriber.NewGenerator(u.Sites()...)
	for i := 0; i < 12; i++ {
		if err := u.SeedDirect(gen.Profile(i)); err != nil {
			t.Fatal(err)
		}
	}

	// Diverge one slave copy: a stale out-of-band overwrite of a
	// seeded row plus a stranded replication watermark, the
	// post-failover shape. The master's version is newer and must win
	// back the row through repair.
	partID := u.Partitions()[0]
	part, _ := u.Partition(partID)
	masterStore := u.Element(part.Master().Element).Replica(partID).Store
	slaveStore := u.Element(part.Replicas[1].Element).Replica(partID).Store
	key := masterStore.Keys()[0]
	wantEntry, _, _ := masterStore.GetCommitted(key)
	slaveStore.SetAppliedCSN(1 << 40)
	slaveStore.PutDirect(key, store.Entry{"v": {"stale"}}, store.Meta{CSN: 1, WallTS: 1})

	session := core.NewSession(network, simnet.MakeAddr(part.HomeSite, "udrctl-test"),
		part.HomeSite, core.PolicyPS)
	server := ldap.NewServer(core.NewLDAPBackend(session).WithTopology(u))
	cliConn, srvConn := net.Pipe()
	go server.ServeConn(srvConn)

	c := ldap.NewClient(cliConn)
	defer c.Unbind()
	if r, err := c.Bind("cn=test", "x"); err != nil || r.Code != ldap.ResultSuccess {
		t.Fatalf("bind: %v %v", r, err)
	}
	text, r, err := c.Repair()
	if err != nil {
		t.Fatalf("repair: %v", err)
	}
	if r.Code != ldap.ResultSuccess {
		t.Fatalf("repair result: %v %s", r.Code, r.Message)
	}
	if !strings.Contains(text, "repair total:") {
		t.Fatalf("repair report missing summary:\n%s", text)
	}
	if !strings.Contains(text, "shipped=") {
		t.Fatalf("repair report shows no shipped rows:\n%s", text)
	}
	got, _, ok := slaveStore.GetCommitted(key)
	if !ok || !got.Equal(wantEntry) {
		t.Fatalf("divergent row not repaired: got %v, want %v", got, wantEntry)
	}
}
