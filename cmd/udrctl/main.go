// Command udrctl is an LDAP command-line client for a running udrd:
// the operator's view onto the UDR's northbound interface.
//
// Usage:
//
//	udrctl -addr localhost:3890 search '(msisdn=34600000001)'
//	udrctl get sub-00000001
//	udrctl compare sub-00000001 active TRUE
//	udrctl set sub-00000001 barPremium TRUE
//	udrctl delete sub-00000001
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"sort"
	"strings"

	"repro/internal/ldap"
	"repro/internal/subscriber"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage: udrctl [-addr host:port] <command> [args]

commands:
  status                      topology status (partitions, replicas, roles)
  repair                      run an anti-entropy repair round on every partition
  move <part> <target-el>     live-migrate a partition master to a storage element
  rebalance                   plan and execute an elastic rebalancing pass
  trace [recent|slow|<id>]    list sampled request traces, or render one span tree
  search <filter>             subtree search, e.g. '(msisdn=34600000001)'
  get <subscriber-id>         base-object read by DN
  compare <id> <attr> <val>   LDAP compare
  set <id> <attr> <val>       replace one attribute
  delete <subscriber-id>      remove the subscription
`)
	os.Exit(2)
}

func main() {
	addr := flag.String("addr", "localhost:3890", "udrd LDAP address")
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}

	conn, err := net.Dial("tcp", *addr)
	if err != nil {
		log.Fatalf("udrctl: %v", err)
	}
	c := ldap.NewClient(conn)
	defer c.Unbind()
	if r, err := c.Bind("cn=udrctl", "x"); err != nil || r.Code != ldap.ResultSuccess {
		log.Fatalf("udrctl: bind: %v %v", r, err)
	}

	switch args[0] {
	case "status":
		text, r, err := c.Status()
		exitOn(r, err)
		fmt.Print(text)
	case "repair":
		text, r, err := c.Repair()
		exitOn(r, err)
		fmt.Print(text)
	case "move":
		if len(args) != 3 {
			usage()
		}
		text, r, err := c.Move(args[1], args[2])
		fmt.Print(text)
		exitOn(r, err)
	case "rebalance":
		text, r, err := c.Rebalance()
		fmt.Print(text)
		exitOn(r, err)
	case "trace":
		arg := "recent"
		if len(args) > 2 {
			usage()
		}
		if len(args) == 2 {
			arg = args[1]
		}
		text, r, err := c.Trace(arg)
		fmt.Print(text)
		exitOn(r, err)
	case "search":
		if len(args) != 2 {
			usage()
		}
		filter, err := parseFilter(args[1])
		if err != nil {
			log.Fatalf("udrctl: %v", err)
		}
		entries, res, err := c.Search(&ldap.SearchRequest{
			BaseDN: subscriber.BaseDN,
			Scope:  ldap.ScopeWholeSubtree,
			Filter: filter,
		})
		exitOn(res, err)
		for _, e := range entries {
			printEntry(e)
		}
	case "get":
		if len(args) != 2 {
			usage()
		}
		entries, res, err := c.Search(&ldap.SearchRequest{
			BaseDN: subscriber.DN(args[1]),
			Scope:  ldap.ScopeBaseObject,
			Filter: ldap.Present(subscriber.AttrObjectClass),
		})
		exitOn(res, err)
		for _, e := range entries {
			printEntry(e)
		}
	case "compare":
		if len(args) != 4 {
			usage()
		}
		r, err := c.Compare(subscriber.DN(args[1]), args[2], args[3])
		if err != nil {
			log.Fatalf("udrctl: %v", err)
		}
		fmt.Println(r.Code)
		if r.Code != ldap.ResultCompareTrue && r.Code != ldap.ResultCompareFalse {
			os.Exit(1)
		}
	case "set":
		if len(args) != 4 {
			usage()
		}
		r, err := c.Modify(subscriber.DN(args[1]), []ldap.Change{
			{Op: ldap.ChangeReplace, Attr: args[2], Vals: []string{args[3]}},
		})
		exitOn(r, err)
		fmt.Println("modified", args[1])
	case "delete":
		if len(args) != 2 {
			usage()
		}
		r, err := c.Delete(subscriber.DN(args[1]))
		exitOn(r, err)
		fmt.Println("deleted", args[1])
	default:
		usage()
	}
}

func exitOn(r ldap.Result, err error) {
	if err != nil {
		log.Fatalf("udrctl: %v", err)
	}
	if r.Code != ldap.ResultSuccess {
		log.Fatalf("udrctl: %v: %s", r.Code, r.Message)
	}
}

func printEntry(e ldap.SearchEntry) {
	fmt.Printf("dn: %s\n", e.DN)
	attrs := make([]string, 0, len(e.Attrs))
	for a := range e.Attrs {
		attrs = append(attrs, a)
	}
	sort.Strings(attrs)
	for _, a := range attrs {
		for _, v := range e.Attrs[a] {
			fmt.Printf("%s: %s\n", a, v)
		}
	}
	fmt.Println()
}

// parseFilter parses the simple "(attr=value)" filter shape udrctl
// supports (equality and presence).
func parseFilter(s string) (ldap.Filter, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "(") || !strings.HasSuffix(s, ")") {
		return ldap.Filter{}, fmt.Errorf("filter must look like (attr=value), got %q", s)
	}
	body := s[1 : len(s)-1]
	attr, value, ok := strings.Cut(body, "=")
	if !ok || attr == "" {
		return ldap.Filter{}, fmt.Errorf("filter must look like (attr=value), got %q", s)
	}
	if value == "*" {
		return ldap.Present(attr), nil
	}
	return ldap.Eq(attr, value), nil
}
