// Command provision bulk-provisions synthetic subscriptions into a
// running udrd over the LDAP interface, using the transaction
// grouping extended operations — the provisioning-system flow of
// §2.4, runnable against a real socket.
//
// Usage:
//
//	provision -addr localhost:3890 -n 500 -start 1000
//	provision -batch             # one LDAP transaction per subscription
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"strings"
	"time"

	"repro/internal/ldap"
	"repro/internal/subscriber"
)

func main() {
	var (
		addr    = flag.String("addr", "localhost:3890", "udrd LDAP address")
		n       = flag.Int("n", 100, "subscriptions to provision")
		start   = flag.Int("start", 100000, "first subscriber index")
		regions = flag.String("regions", "eu-south,eu-north,americas", "home regions (comma separated)")
		batch   = flag.Bool("batch", true, "group each subscription's writes in an LDAP transaction")
	)
	flag.Parse()

	conn, err := net.Dial("tcp", *addr)
	if err != nil {
		log.Fatalf("provision: %v", err)
	}
	c := ldap.NewClient(conn)
	defer c.Unbind()
	if r, err := c.Bind("cn=ps", "x"); err != nil || r.Code != ldap.ResultSuccess {
		log.Fatalf("provision: bind: %v %v", r, err)
	}

	gen := subscriber.NewGenerator(splitTrim(*regions)...)
	begin := time.Now()
	failed := 0
	for i := 0; i < *n; i++ {
		prof := gen.Profile(*start + i)
		entry := prof.ToEntry()
		attrs := make(map[string][]string, len(entry))
		for k, v := range entry {
			attrs[k] = v
		}

		if *batch {
			if r, err := c.TxnBegin(); err != nil || r.Code != ldap.ResultSuccess {
				log.Fatalf("provision: txn begin: %v %v", r, err)
			}
		}
		r, err := c.Add(subscriber.DN(prof.ID), attrs)
		if err != nil {
			log.Fatalf("provision: add: %v", err)
		}
		if *batch {
			r, err = c.TxnCommit()
			if err != nil {
				log.Fatalf("provision: txn commit: %v", err)
			}
		}
		if r.Code != ldap.ResultSuccess {
			failed++
			fmt.Printf("provision: %s failed: %v %s\n", prof.ID, r.Code, r.Message)
		}
	}
	elapsed := time.Since(begin)
	fmt.Printf("provision: %d/%d subscriptions in %v (%.0f/s), %d failed\n",
		*n-failed, *n, elapsed.Round(time.Millisecond),
		float64(*n)/elapsed.Seconds(), failed)
}

func splitTrim(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if trimmed := strings.TrimSpace(part); trimmed != "" {
			out = append(out, trimmed)
		}
	}
	return out
}
