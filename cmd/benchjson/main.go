// Command benchjson converts `go test -bench` text output on stdin
// into a JSON document, so the repo's perf trajectory can be archived
// per PR (make bench-json → BENCH_PR<N>.json) and diffed by tooling.
//
// Usage:
//
//	go test -run xxx -bench . -benchtime 200x . | benchjson -o BENCH_PR2.json
//
// Each benchmark line becomes one object:
//
//	{"name":"StoreRead","procs":8,"iterations":1000,
//	 "metrics":{"ns/op":120.9,"B/op":0,"allocs/op":0}}
//
// Header lines (goos/goarch/pkg/cpu) are captured into "env".
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// benchLine matches "BenchmarkName-8   1000   123 ns/op   0 B/op ...".
var benchLine = regexp.MustCompile(`^Benchmark(\S+?)(?:-(\d+))?\s+(\d+)\s+(.+)$`)

// result is one parsed benchmark.
type result struct {
	Name       string             `json:"name"`
	Procs      int                `json:"procs,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// output is the document shape.
type output struct {
	Env        map[string]string `json:"env,omitempty"`
	Benchmarks []result          `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	doc := output{Env: map[string]string{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimRight(sc.Text(), "\r\n")
		for _, k := range []string{"goos", "goarch", "pkg", "cpu"} {
			if v, ok := strings.CutPrefix(line, k+": "); ok {
				doc.Env[k] = v
			}
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		r := result{Name: m[1], Metrics: map[string]float64{}}
		if m[2] != "" {
			r.Procs, _ = strconv.Atoi(m[2])
		}
		r.Iterations, _ = strconv.ParseInt(m[3], 10, 64)
		// The tail is "value unit" pairs: "123 ns/op 0 B/op ...".
		fields := strings.Fields(m[4])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			r.Metrics[fields[i+1]] = v
		}
		doc.Benchmarks = append(doc.Benchmarks, r)
	}
	if err := sc.Err(); err != nil {
		log.Fatalf("benchjson: read: %v", err)
	}

	enc, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		log.Fatalf("benchjson: encode: %v", err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		log.Fatalf("benchjson: %v", err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(doc.Benchmarks), *out)
}
