// Command udrbench runs the paper-reproduction experiments (E1–E19)
// and prints their reports: the tables and series behind every figure
// and quantitative claim in "CAP Limits in Telecom Subscriber
// Database Design" (see DESIGN.md for the architecture and
// EXPERIMENTS.md for the experiment index and paper-vs-measured).
//
// Usage:
//
//	udrbench              # run everything, full size
//	udrbench -run E3      # one experiment
//	udrbench -quick       # reduced populations (CI-sized)
//	udrbench -list        # show the experiment index
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		run   = flag.String("run", "", "comma-separated experiment IDs (default: all)")
		quick = flag.Bool("quick", false, "reduced populations and durations")
		list  = flag.Bool("list", false, "list experiments and exit")
		seed  = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			title, source, _ := experiments.Describe(id)
			fmt.Printf("%-4s %-72s [%s]\n", id, title, source)
		}
		return
	}

	ids := experiments.IDs()
	if *run != "" {
		ids = nil
		for _, id := range strings.Split(*run, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}

	ctx := context.Background()
	opts := experiments.Options{Quick: *quick, Seed: *seed}
	failed := 0
	for _, id := range ids {
		start := time.Now()
		rep, err := experiments.Run(ctx, id, opts)
		if err != nil {
			log.Printf("%s: %v", id, err)
			failed++
			continue
		}
		fmt.Println(rep)
		fmt.Printf("(%s completed in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
		if !rep.Passed() {
			failed++
		}
	}
	if failed > 0 {
		fmt.Printf("udrbench: %d experiment(s) failed\n", failed)
		os.Exit(1)
	}
}
