// Command udrd runs a User Data Repository network function and
// serves its UDC-mandated LDAP northbound interface over TCP.
//
// The UDR (three sites by default, the paper's Figure 2 layout) runs
// in-process over the simulated multi-national backbone; the LDAP
// listener bridges real TCP clients onto a PoA session. Seed
// subscribers with -subs, pick the served PoA with -poa-site, and
// point cmd/udrctl or cmd/provision at the listener.
//
// With -admin, udrd also serves an operations HTTP listener:
// GET /metrics (Prometheus text exposition), GET /healthz,
// GET /status (topology, placement epochs, replication lag as JSON),
// net/http/pprof under /debug/pprof/, and POST /admin/{repair,move,
// rebalance} mirroring the udrctl extended operations.
//
// Usage:
//
//	udrd -addr :3890 -subs 1000 -admin :9100
//	udrd -sites eu-south,eu-north,americas -poa-site americas -policy fe
//	udrd -durability quorum -quorum-policy site:1+1
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/ldap"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/replication"
	"repro/internal/simnet"
	"repro/internal/subscriber"
	"repro/internal/trace"
	"repro/internal/wal"
)

func main() {
	if err := run(); err != nil {
		log.Fatalf("udrd: %v", err)
	}
}

// run owns the daemon lifecycle so every shutdown path — signal,
// listener failure, seeding error — flows through one exit and the
// deferred teardown runs in order: admin listener first, then the
// LDAP server, then the UDR itself.
func run() error {
	var (
		addr     = flag.String("addr", ":3890", "TCP listen address for the LDAP interface")
		adminAdr = flag.String("admin", "", "TCP listen address for the admin HTTP interface (metrics, status, pprof); empty disables")
		sites    = flag.String("sites", "eu-south,eu-north,americas", "comma-separated site names")
		sesPer   = flag.Int("se-per-site", 1, "storage elements per site")
		rf       = flag.Int("rf", 3, "replication factor (copies per partition)")
		subs     = flag.Int("subs", 100, "synthetic subscribers to seed")
		poaSite  = flag.String("poa-site", "", "site whose PoA serves the LDAP interface (default: first site)")
		policy   = flag.String("policy", "ps", "session policy behind the LDAP interface: fe or ps")
		walDir   = flag.String("wal-dir", "", "enable disk persistence under this directory")
		walSync  = flag.Bool("wal-sync", false, "fsync every commit (dump-before-commit durability, group-committed)")
		walNoGC  = flag.Bool("wal-no-group-commit", false, "disable WAL fsync coalescing (one fsync per commit)")
		ckptIv   = flag.Duration("checkpoint-interval", 0, "incremental WAL checkpoint cadence (0 disables; requires -wal-dir)")
		multiMas = flag.Bool("multi-master", false, "enable §5 multi-master mode")
		antiEnt  = flag.Bool("anti-entropy", true, "enable Merkle-digest replica repair")
		repairIv = flag.Duration("repair-interval", 2*time.Second, "periodic anti-entropy repair cadence")
		feCache  = flag.Bool("fe-cache", true, "enable the FE/PoA subscriber read cache")
		feCacheN = flag.Int("fe-cache-size", 0, "FE cache capacity in entries per site (0 = default)")
		durab    = flag.String("durability", "async", "commit durability: async, dual-seq, quorum or sync-all")
		quorumP  = flag.String("quorum-policy", "majority", "quorum shape under -durability quorum: majority, k=N or site:L+R")
		trSample = flag.Float64("trace-sample", 1.0/64, "request-trace head-sampling probability in [0,1]; 0 keeps only tail samples, negative disables tracing")
		trSlow   = flag.Duration("trace-slow", 0, "tail-sample requests slower than this (0 = default 25ms, negative disables tail sampling)")
		trBuf    = flag.Int("trace-buf", 0, "buffered trace spans across all rings (0 = default)")
	)
	flag.Parse()

	durability, err := replication.ParseDurability(*durab)
	if err != nil {
		return err
	}
	qpol, err := replication.ParseQuorumPolicy(*quorumP)
	if err != nil {
		return err
	}

	siteNames := strings.Split(*sites, ",")
	cfg := core.Config{
		ReplicationFactor: *rf, FESlaveReads: true, MultiMaster: *multiMas, WALDir: *walDir,
		WALNoGroupCommit: *walNoGC, CheckpointInterval: *ckptIv,
		AntiEntropy: *antiEnt, RepairInterval: *repairIv,
		FECache: *feCache, FECacheCapacity: *feCacheN, FECacheSlaveLB: *feCache,
		Durability: durability, QuorumPolicy: qpol,
	}
	if *walSync {
		cfg.WALMode = wal.SyncEveryCommit
	}
	var tracer *trace.Recorder
	if *trSample >= 0 {
		rate := *trSample
		if rate == 0 {
			rate = -1 // head sampling off; tail sampling still runs
		}
		tracer = trace.New(trace.Config{SampleRate: rate, SlowThreshold: *trSlow, Capacity: *trBuf})
		cfg.Trace = tracer
	}
	for _, s := range siteNames {
		cfg.Sites = append(cfg.Sites, core.SiteSpec{Name: strings.TrimSpace(s), SEs: *sesPer, PartitionsPerSE: 1})
	}

	network := simnet.New(simnet.DefaultConfig())
	u, err := core.New(network, cfg)
	if err != nil {
		return err
	}
	defer u.Stop()
	start := time.Now()
	// Registered after u.Stop's defer, so the summary reads the
	// counters while the topology is still up, on every exit path.
	defer func() { fmt.Println(summary(u, tracer, time.Since(start))) }()

	gen := subscriber.NewGenerator(u.Sites()...)
	for i := 0; i < *subs; i++ {
		if err := u.SeedDirect(gen.Profile(i)); err != nil {
			return fmt.Errorf("seeding subscriber %d: %w", i, err)
		}
	}

	served := *poaSite
	if served == "" {
		served = u.Sites()[0]
	}
	pol := core.PolicyPS
	if strings.EqualFold(*policy, "fe") {
		pol = core.PolicyFE
	}
	session := core.NewSession(network, simnet.MakeAddr(served, "ldap-bridge"), served, pol)
	if c := u.PoA(served).Cache(); c != nil {
		session.AttachCache(c)
	}
	if tracer != nil {
		session.AttachTracer(tracer)
	}
	server := ldap.NewServer(core.NewLDAPBackend(session).WithTopology(u))

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	defer server.Close()
	defer ln.Close()

	// serveErr carries fatal listener failures back onto the main
	// goroutine so they are logged and torn down like a signal.
	serveErr := make(chan error, 2)
	go func() { serveErr <- fmt.Errorf("ldap server: %w", server.Serve(ln)) }()

	if *adminAdr != "" {
		reg := metrics.NewRegistry()
		u.RegisterMetrics(reg)
		admin := obs.NewServer(obs.Config{Registry: reg, UDR: u, Tracer: tracer})
		adminLn, err := net.Listen("tcp", *adminAdr)
		if err != nil {
			return fmt.Errorf("admin listener: %w", err)
		}
		defer admin.Close()
		go func() {
			if err := admin.Serve(adminLn); err != nil {
				serveErr <- fmt.Errorf("admin server: %w", err)
			}
		}()
		fmt.Printf("udrd: admin HTTP (metrics, status, pprof) on %s\n", adminLn.Addr())
	}

	fmt.Printf("udrd: UDR NF up — %d sites, %d partitions, %d elements, RF=%d, durability=%s",
		len(u.Sites()), len(u.Partitions()), len(u.Elements()), *rf, durability)
	if durability == replication.Quorum {
		fmt.Printf(" (%s)", qpol)
	}
	fmt.Println()
	for _, partID := range u.Partitions() {
		p, _ := u.Partition(partID)
		var replicas []string
		for _, r := range p.Replicas {
			replicas = append(replicas, string(r.Addr))
		}
		fmt.Printf("udrd:   %-16s home=%-10s replicas=%s\n", p.ID, p.HomeSite, strings.Join(replicas, ","))
	}
	fmt.Printf("udrd: %d subscribers seeded; LDAP (%s policy, PoA %s) on %s\n",
		*subs, pol, served, ln.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Printf("udrd: %s — shutting down\n", s)
		return nil
	case err := <-serveErr:
		return err
	}
}

// summary renders the one-line shutdown report: traffic served, the
// durability high-water mark, and what the trace recorder captured.
func summary(u *core.UDR, tracer *trace.Recorder, up time.Duration) string {
	var reads, writes int64
	var lastCSN uint64
	for _, elID := range u.Elements() {
		el := u.Element(elID)
		if el == nil {
			continue
		}
		reads += el.Reads.Value()
		writes += el.Writes.Value()
		for _, partID := range el.Partitions() {
			if pr := el.Replica(partID); pr != nil {
				if csn := pr.Store.CSN(); csn > lastCSN {
					lastCSN = csn
				}
			}
		}
	}
	ts := tracer.Stats() // nil-safe: all-zero when tracing is disabled
	return fmt.Sprintf("udrd: shutdown after %s — %d ops served (%d reads, %d writes), last CSN %d, traces flushed: %d spans from %d sampled traces (%d dropped)",
		up.Round(time.Millisecond), reads+writes, reads, writes, lastCSN, ts.Spans, ts.Sampled, ts.Dropped)
}
