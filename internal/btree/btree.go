// Package btree implements an in-memory B-tree with string keys.
//
// It backs the UDR's state-full data location stage (§3.3.1, §3.5):
// identity-location maps are ordered indexes whose lookup cost grows
// as O(log N) with the subscriber count — the cost experiment E8
// measures against the O(1) consistent-hashing alternative. It also
// backs secondary indexes inside storage elements.
package btree

import "sort"

// defaultDegree is the minimum number of children per internal node.
// 32 keeps nodes around two cache lines of keys, a reasonable
// point for string keys.
const defaultDegree = 32

// Map is a B-tree mapping string keys to values of type V.
// It is not safe for concurrent mutation; callers wrap it in their own
// locking (the locator serializes through a RWMutex).
type Map[V any] struct {
	degree int
	root   *node[V]
	length int
}

type item[V any] struct {
	key   string
	value V
}

type node[V any] struct {
	items    []item[V]
	children []*node[V] // nil for leaves
}

// New returns an empty tree with the default degree.
func New[V any]() *Map[V] { return NewDegree[V](defaultDegree) }

// NewDegree returns an empty tree with the given minimum degree
// (minimum children per internal node, >= 2).
func NewDegree[V any](degree int) *Map[V] {
	if degree < 2 {
		degree = 2
	}
	return &Map[V]{degree: degree}
}

// maxItems is the maximum number of items per node.
func (t *Map[V]) maxItems() int { return 2*t.degree - 1 }

// minItems is the minimum number of items per non-root node.
func (t *Map[V]) minItems() int { return t.degree - 1 }

// Len returns the number of keys.
func (t *Map[V]) Len() int { return t.length }

// find returns the index of key in n.items and whether it is present.
func (n *node[V]) find(key string) (int, bool) {
	i := sort.Search(len(n.items), func(i int) bool { return n.items[i].key >= key })
	if i < len(n.items) && n.items[i].key == key {
		return i, true
	}
	return i, false
}

// Get returns the value stored for key.
func (t *Map[V]) Get(key string) (V, bool) {
	var zero V
	n := t.root
	for n != nil {
		i, ok := n.find(key)
		if ok {
			return n.items[i].value, true
		}
		if n.children == nil {
			return zero, false
		}
		n = n.children[i]
	}
	return zero, false
}

// Set inserts or replaces the value for key and reports whether the
// key was newly inserted.
func (t *Map[V]) Set(key string, value V) bool {
	if t.root == nil {
		t.root = &node[V]{items: []item[V]{{key, value}}}
		t.length = 1
		return true
	}
	if len(t.root.items) >= t.maxItems() {
		mid, right := t.split(t.root)
		t.root = &node[V]{
			items:    []item[V]{mid},
			children: []*node[V]{t.root, right},
		}
	}
	inserted := t.insertNonFull(t.root, key, value)
	if inserted {
		t.length++
	}
	return inserted
}

// split divides the full node n, returning the median item and the
// new right sibling.
func (t *Map[V]) split(n *node[V]) (item[V], *node[V]) {
	mid := len(n.items) / 2
	median := n.items[mid]
	right := &node[V]{}
	right.items = append(right.items, n.items[mid+1:]...)
	n.items = n.items[:mid]
	if n.children != nil {
		right.children = append(right.children, n.children[mid+1:]...)
		n.children = n.children[:mid+1]
	}
	return median, right
}

func (t *Map[V]) insertNonFull(n *node[V], key string, value V) bool {
	for {
		i, ok := n.find(key)
		if ok {
			n.items[i].value = value
			return false
		}
		if n.children == nil {
			n.items = append(n.items, item[V]{})
			copy(n.items[i+1:], n.items[i:])
			n.items[i] = item[V]{key, value}
			return true
		}
		child := n.children[i]
		if len(child.items) >= t.maxItems() {
			median, right := t.split(child)
			n.items = append(n.items, item[V]{})
			copy(n.items[i+1:], n.items[i:])
			n.items[i] = median
			n.children = append(n.children, nil)
			copy(n.children[i+2:], n.children[i+1:])
			n.children[i+1] = right
			switch {
			case key == median.key:
				n.items[i].value = value
				return false
			case key > median.key:
				child = n.children[i+1]
			}
		}
		n = child
	}
}

// Delete removes key and reports whether it was present.
func (t *Map[V]) Delete(key string) bool {
	if t.root == nil {
		return false
	}
	deleted := t.delete(t.root, key)
	if len(t.root.items) == 0 {
		if t.root.children == nil {
			t.root = nil
		} else {
			t.root = t.root.children[0]
		}
	}
	if deleted {
		t.length--
	}
	return deleted
}

func (t *Map[V]) delete(n *node[V], key string) bool {
	i, found := n.find(key)
	if n.children == nil {
		if !found {
			return false
		}
		n.items = append(n.items[:i], n.items[i+1:]...)
		return true
	}
	if found {
		// Replace with predecessor from the left subtree, then
		// delete the predecessor from it.
		child := n.children[i]
		if len(child.items) > t.minItems() {
			pred := t.max(child)
			n.items[i] = pred
			return t.delete(child, pred.key)
		}
		// Or successor from the right subtree.
		rchild := n.children[i+1]
		if len(rchild.items) > t.minItems() {
			succ := t.min(rchild)
			n.items[i] = succ
			return t.delete(rchild, succ.key)
		}
		// Merge the two children around the key, then recurse.
		t.merge(n, i)
		return t.delete(child, key)
	}
	// Ensure the child we descend into has > minItems items.
	child := n.children[i]
	if len(child.items) <= t.minItems() {
		t.rebalance(n, i)
		// rebalance may have merged child away; re-find.
		return t.delete(n, key)
	}
	return t.delete(child, key)
}

// rebalance grows n.children[i] by borrowing from a sibling or
// merging with one.
func (t *Map[V]) rebalance(n *node[V], i int) {
	child := n.children[i]
	if i > 0 && len(n.children[i-1].items) > t.minItems() {
		// Borrow from left sibling through the separator.
		left := n.children[i-1]
		child.items = append(child.items, item[V]{})
		copy(child.items[1:], child.items)
		child.items[0] = n.items[i-1]
		n.items[i-1] = left.items[len(left.items)-1]
		left.items = left.items[:len(left.items)-1]
		if left.children != nil {
			moved := left.children[len(left.children)-1]
			left.children = left.children[:len(left.children)-1]
			child.children = append(child.children, nil)
			copy(child.children[1:], child.children)
			child.children[0] = moved
		}
		return
	}
	if i < len(n.children)-1 && len(n.children[i+1].items) > t.minItems() {
		// Borrow from right sibling.
		right := n.children[i+1]
		child.items = append(child.items, n.items[i])
		n.items[i] = right.items[0]
		right.items = append(right.items[:0], right.items[1:]...)
		if right.children != nil {
			child.children = append(child.children, right.children[0])
			right.children = append(right.children[:0], right.children[1:]...)
		}
		return
	}
	// Merge with a sibling.
	if i == len(n.children)-1 {
		i--
	}
	t.merge(n, i)
}

// merge folds n.items[i] and n.children[i+1] into n.children[i].
func (t *Map[V]) merge(n *node[V], i int) {
	child, right := n.children[i], n.children[i+1]
	child.items = append(child.items, n.items[i])
	child.items = append(child.items, right.items...)
	child.children = append(child.children, right.children...)
	n.items = append(n.items[:i], n.items[i+1:]...)
	n.children = append(n.children[:i+1], n.children[i+2:]...)
}

func (t *Map[V]) min(n *node[V]) item[V] {
	for n.children != nil {
		n = n.children[0]
	}
	return n.items[0]
}

func (t *Map[V]) max(n *node[V]) item[V] {
	for n.children != nil {
		n = n.children[len(n.children)-1]
	}
	return n.items[len(n.items)-1]
}

// Min returns the smallest key, or "" when empty.
func (t *Map[V]) Min() (string, V, bool) {
	var zero V
	if t.root == nil || t.length == 0 {
		return "", zero, false
	}
	it := t.min(t.root)
	return it.key, it.value, true
}

// Max returns the largest key, or "" when empty.
func (t *Map[V]) Max() (string, V, bool) {
	var zero V
	if t.root == nil || t.length == 0 {
		return "", zero, false
	}
	it := t.max(t.root)
	return it.key, it.value, true
}

// Ascend calls fn for every key in ascending order until fn returns
// false.
func (t *Map[V]) Ascend(fn func(key string, value V) bool) {
	t.ascendRange(t.root, "", "", false, false, fn)
}

// AscendRange calls fn for keys in [from, to) in ascending order until
// fn returns false.
func (t *Map[V]) AscendRange(from, to string, fn func(key string, value V) bool) {
	t.ascendRange(t.root, from, to, true, true, fn)
}

// AscendPrefix calls fn for every key with the given prefix in
// ascending order until fn returns false.
func (t *Map[V]) AscendPrefix(prefix string, fn func(key string, value V) bool) {
	t.ascendRange(t.root, prefix, "", true, false, func(k string, v V) bool {
		if len(k) < len(prefix) || k[:len(prefix)] != prefix {
			return false
		}
		return fn(k, v)
	})
}

func (t *Map[V]) ascendRange(n *node[V], from, to string, useFrom, useTo bool, fn func(string, V) bool) bool {
	if n == nil {
		return true
	}
	start := 0
	if useFrom {
		start = sort.Search(len(n.items), func(i int) bool { return n.items[i].key >= from })
	}
	for i := start; i < len(n.items); i++ {
		if n.children != nil {
			if !t.ascendRange(n.children[i], from, to, useFrom, useTo, fn) {
				return false
			}
		}
		if useTo && n.items[i].key >= to {
			return false
		}
		if !fn(n.items[i].key, n.items[i].value) {
			return false
		}
		// Everything in later subtrees is >= this key, so from no
		// longer constrains them.
		useFrom = false
	}
	if n.children != nil {
		return t.ascendRange(n.children[len(n.items)], from, to, useFrom, useTo, fn)
	}
	return true
}

// Height returns the tree height (0 for an empty tree), exposed so the
// E8 experiment can report the O(log N) growth directly.
func (t *Map[V]) Height() int {
	h := 0
	for n := t.root; n != nil; {
		h++
		if n.children == nil {
			break
		}
		n = n.children[0]
	}
	return h
}
