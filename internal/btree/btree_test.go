package btree

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyTree(t *testing.T) {
	m := New[int]()
	if m.Len() != 0 {
		t.Fatalf("Len = %d", m.Len())
	}
	if _, ok := m.Get("x"); ok {
		t.Fatal("Get on empty tree found something")
	}
	if m.Delete("x") {
		t.Fatal("Delete on empty tree reported true")
	}
	if _, _, ok := m.Min(); ok {
		t.Fatal("Min on empty tree")
	}
	if _, _, ok := m.Max(); ok {
		t.Fatal("Max on empty tree")
	}
	if m.Height() != 0 {
		t.Fatalf("Height = %d", m.Height())
	}
}

func TestSetGet(t *testing.T) {
	m := New[int]()
	if !m.Set("a", 1) {
		t.Fatal("first Set should report insert")
	}
	if m.Set("a", 2) {
		t.Fatal("second Set should report replace")
	}
	v, ok := m.Get("a")
	if !ok || v != 2 {
		t.Fatalf("Get = %d,%v", v, ok)
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d", m.Len())
	}
}

func TestManyInsertionsSorted(t *testing.T) {
	m := NewDegree[int](3) // small degree forces splits
	const n = 1000
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for _, i := range perm {
		m.Set(fmt.Sprintf("key-%06d", i), i)
	}
	if m.Len() != n {
		t.Fatalf("Len = %d, want %d", m.Len(), n)
	}
	var got []string
	m.Ascend(func(k string, v int) bool {
		got = append(got, k)
		return true
	})
	if len(got) != n {
		t.Fatalf("Ascend visited %d keys", len(got))
	}
	if !sort.StringsAreSorted(got) {
		t.Fatal("Ascend order not sorted")
	}
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key-%06d", i)
		v, ok := m.Get(k)
		if !ok || v != i {
			t.Fatalf("Get(%s) = %d,%v", k, v, ok)
		}
	}
}

func TestDeleteEverything(t *testing.T) {
	m := NewDegree[int](3)
	const n = 500
	for i := 0; i < n; i++ {
		m.Set(fmt.Sprintf("k%05d", i), i)
	}
	perm := rand.New(rand.NewSource(2)).Perm(n)
	for _, i := range perm {
		k := fmt.Sprintf("k%05d", i)
		if !m.Delete(k) {
			t.Fatalf("Delete(%s) = false", k)
		}
		if _, ok := m.Get(k); ok {
			t.Fatalf("Get(%s) found deleted key", k)
		}
	}
	if m.Len() != 0 {
		t.Fatalf("Len = %d after deleting everything", m.Len())
	}
}

func TestDeleteMissing(t *testing.T) {
	m := NewDegree[int](3)
	for i := 0; i < 100; i++ {
		m.Set(fmt.Sprintf("k%03d", i), i)
	}
	if m.Delete("missing") {
		t.Fatal("Delete(missing) = true")
	}
	if m.Len() != 100 {
		t.Fatalf("Len = %d", m.Len())
	}
}

func TestMinMax(t *testing.T) {
	m := New[int]()
	for _, k := range []string{"m", "a", "z", "q"} {
		m.Set(k, 0)
	}
	k, _, _ := m.Min()
	if k != "a" {
		t.Fatalf("Min = %q", k)
	}
	k, _, _ = m.Max()
	if k != "z" {
		t.Fatalf("Max = %q", k)
	}
}

func TestAscendRange(t *testing.T) {
	m := NewDegree[int](3)
	for i := 0; i < 100; i++ {
		m.Set(fmt.Sprintf("k%03d", i), i)
	}
	var got []int
	m.AscendRange("k010", "k020", func(k string, v int) bool {
		got = append(got, v)
		return true
	})
	if len(got) != 10 || got[0] != 10 || got[9] != 19 {
		t.Fatalf("AscendRange = %v", got)
	}
}

func TestAscendRangeEarlyStop(t *testing.T) {
	m := New[int]()
	for i := 0; i < 50; i++ {
		m.Set(fmt.Sprintf("k%03d", i), i)
	}
	count := 0
	m.Ascend(func(k string, v int) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestAscendPrefix(t *testing.T) {
	m := New[int]()
	m.Set("IMSI:1", 1)
	m.Set("IMSI:2", 2)
	m.Set("MSISDN:1", 3)
	var got []string
	m.AscendPrefix("IMSI:", func(k string, v int) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 2 || got[0] != "IMSI:1" || got[1] != "IMSI:2" {
		t.Fatalf("AscendPrefix = %v", got)
	}
}

func TestHeightLogarithmic(t *testing.T) {
	m := New[int]() // degree 32
	for i := 0; i < 100000; i++ {
		m.Set(fmt.Sprintf("key-%08d", i), i)
	}
	// With degree 32, 100k keys must fit in very few levels.
	if h := m.Height(); h < 2 || h > 5 {
		t.Fatalf("Height = %d for 100k keys, want 2..5", h)
	}
}

func TestDegreeClamped(t *testing.T) {
	m := NewDegree[int](1) // clamps to 2
	for i := 0; i < 100; i++ {
		m.Set(fmt.Sprintf("k%03d", i), i)
	}
	if m.Len() != 100 {
		t.Fatalf("Len = %d", m.Len())
	}
}

// TestAgainstMapProperty drives random operations against a Go map
// oracle.
func TestAgainstMapProperty(t *testing.T) {
	type op struct {
		Del bool
		Key uint8
	}
	f := func(ops []op) bool {
		m := NewDegree[int](3)
		oracle := map[string]int{}
		for i, o := range ops {
			k := fmt.Sprintf("k%03d", o.Key)
			if o.Del {
				inOracle := false
				if _, ok := oracle[k]; ok {
					inOracle = true
					delete(oracle, k)
				}
				if m.Delete(k) != inOracle {
					return false
				}
			} else {
				_, existed := oracle[k]
				oracle[k] = i
				if m.Set(k, i) == existed {
					return false
				}
			}
		}
		if m.Len() != len(oracle) {
			return false
		}
		for k, v := range oracle {
			got, ok := m.Get(k)
			if !ok || got != v {
				return false
			}
		}
		// Iteration must be sorted and complete.
		var keys []string
		m.Ascend(func(k string, _ int) bool {
			keys = append(keys, k)
			return true
		})
		return len(keys) == len(oracle) && sort.StringsAreSorted(keys)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkGet100k(b *testing.B) {
	m := New[int]()
	const n = 100000
	for i := 0; i < n; i++ {
		m.Set(fmt.Sprintf("key-%08d", i), i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Get(fmt.Sprintf("key-%08d", i%n))
	}
}
