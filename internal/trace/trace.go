// Package trace implements zero-dependency end-to-end request
// tracing for the UDR: every latency number the experiments report —
// PoA routing, locator lookup, master commit, WAL fsync, replica ack
// waits — becomes an attributable per-hop breakdown instead of an
// aggregate histogram bucket.
//
// A trace is a tree of spans sharing one trace ID. The context (trace
// ID, current span ID, sampled flag) travels two ways:
//
//   - inside one process, through context.Context (NewContext /
//     FromContext), following the Go convention;
//   - across simnet hops, as a Ctx field on the message structs
//     themselves (the same way TxnReq.Tag threads through), because
//     simulated-network handlers receive plain Go values.
//
// Sampling is two-tier. Head sampling decides at root-span creation
// with probability Config.SampleRate whether the whole trace records;
// the decision rides in Ctx.Sampled so every element agrees. Tail
// sampling additionally records any individual span that errored or
// ran longer than Config.SlowThreshold even in unsampled traces, so
// pathological ops are never invisible — such spans are marked Tail
// and may form partial trees.
//
// Spans record into lock-striped bounded ring buffers; a full stripe
// overwrites its oldest span (counted as a drop). Recording is purely
// passive — no randomness is drawn from any seeded source and no
// scheduling changes — so the chaos harness's byte-identical
// determinism holds with tracing enabled.
package trace

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Defaults. The sample rate keeps always-on tracing under the ≤5%
// overhead budget; the slow threshold sits above the WAN quorum
// commit path (low single-digit milliseconds at the compressed sim
// scale) so only genuine outliers tail-sample.
const (
	DefaultSampleRate    = 1.0 / 64
	DefaultSlowThreshold = 25 * time.Millisecond
	DefaultCapacity      = 8192
)

// stripes is the ring-buffer stripe count. A whole trace lands in one
// stripe (striped by trace ID), so reassembling a trace scans one
// stripe while concurrent traces spread across locks.
const stripes = 16

// ID identifies a trace or a span. IDs are process-unique, non-zero,
// and rendered as 16 hex digits.
type ID uint64

// String renders the ID the way the HTTP and LDAP surfaces print it.
func (id ID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// ParseID parses the 16-hex-digit form (leading zeros optional).
func ParseID(s string) (ID, error) {
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil || v == 0 {
		return 0, fmt.Errorf("trace: bad id %q", s)
	}
	return ID(v), nil
}

// Ctx is the propagated trace context: which trace the caller is in,
// which span is currently open (the parent for new child spans), and
// whether the trace was head-sampled.
type Ctx struct {
	Trace   ID
	Span    ID
	Sampled bool
}

// Valid reports whether the context belongs to a trace.
func (c Ctx) Valid() bool { return c.Trace != 0 }

// Attr is one span attribute.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// maxAttrs bounds attributes per span (fixed array: no allocation on
// the hot path).
const maxAttrs = 4

// Span is one recorded operation window.
type Span struct {
	Trace    ID
	ID       ID
	Parent   ID // 0 marks a root span
	Name     string
	Element  string // recording endpoint, "site/process"
	Start    time.Time
	Duration time.Duration
	Err      string
	Attrs    []Attr
	// Tail marks a span recorded by tail sampling (slow or errored)
	// inside a trace that was not head-sampled; its tree is partial.
	Tail bool
}

// Config parameterizes a Recorder.
type Config struct {
	// SampleRate is the head-sampling probability in [0,1]. Zero
	// selects DefaultSampleRate; negative disables head sampling.
	SampleRate float64
	// SlowThreshold tail-samples spans slower than this. Zero selects
	// DefaultSlowThreshold; negative disables tail sampling (errored
	// spans still tail-sample).
	SlowThreshold time.Duration
	// Capacity bounds buffered spans across all stripes (0 selects
	// DefaultCapacity).
	Capacity int
}

// Stats counts recorder activity for the udr_trace_* metric families.
type Stats struct {
	// Started counts root spans begun (traces, sampled or not).
	Started uint64
	// Sampled counts traces the head sampler selected.
	Sampled uint64
	// Spans counts spans recorded into the ring (head or tail).
	Spans uint64
	// Dropped counts ring-buffer overwrites of unread spans.
	Dropped uint64
}

// stripe is one lock-striped bounded span ring.
type stripe struct {
	mu   sync.Mutex
	ring []Span
	next int
	full bool
}

// Recorder is the per-process span sink. All methods are safe for
// concurrent use and tolerate a nil receiver (tracing disabled).
type Recorder struct {
	rate    float64
	slow    time.Duration
	perRing int

	rings [stripes]stripe

	ids     atomic.Uint64 // trace/span ID source
	started atomic.Uint64
	sampled atomic.Uint64
	spans   atomic.Uint64
	dropped atomic.Uint64

	// slowMu guards the slowest-roots index (small, query-side).
	slowMu    sync.Mutex
	slowRoots []Span
}

// slowRootsMax bounds the slowest-N index.
const slowRootsMax = 32

// New builds a recorder. A nil *Recorder is a valid disabled tracer;
// New never returns nil.
func New(cfg Config) *Recorder {
	if cfg.SampleRate == 0 {
		cfg.SampleRate = DefaultSampleRate
	}
	if cfg.SampleRate < 0 {
		cfg.SampleRate = 0
	}
	if cfg.SlowThreshold == 0 {
		cfg.SlowThreshold = DefaultSlowThreshold
	}
	if cfg.Capacity <= 0 {
		cfg.Capacity = DefaultCapacity
	}
	per := cfg.Capacity / stripes
	if per < 1 {
		per = 1
	}
	r := &Recorder{rate: cfg.SampleRate, slow: cfg.SlowThreshold, perRing: per}
	// Seed the ID source off the clock so IDs differ across restarts;
	// uniqueness within the process comes from the counter.
	r.ids.Store(uint64(time.Now().UnixNano()))
	return r
}

// SampleRate returns the configured head-sampling probability.
func (r *Recorder) SampleRate() float64 {
	if r == nil {
		return 0
	}
	return r.rate
}

// newID mints a process-unique non-zero ID.
func (r *Recorder) newID() ID {
	for {
		if id := ID(mix(r.ids.Add(1))); id != 0 {
			return id
		}
	}
}

// mix is splitmix64's finalizer: turns the sequential counter into
// well-distributed bits (the head sampler hashes these).
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// sampleTrace decides head sampling for a new trace ID. The decision
// is a pure function of the ID — no RNG state, no seeded source.
func (r *Recorder) sampleTrace(id ID) bool {
	if r.rate >= 1 {
		return true
	}
	if r.rate <= 0 {
		return false
	}
	return float64(uint64(id)>>11)/float64(uint64(1)<<53) < r.rate
}

// SpanHandle is an open span. The zero value is inert; End must be
// called exactly once (calling it on the zero value is a no-op).
type SpanHandle struct {
	r      *Recorder
	ctx    Ctx
	parent ID
	name   string
	elem   string
	start  time.Time
	nattrs int
	attrs  [maxAttrs]Attr
}

// StartRoot begins a new trace with one root span and returns its
// handle. name is the operation ("fe.LocationUpdate", "session.exec");
// element is the recording endpoint ("site/process").
func (r *Recorder) StartRoot(name, element string) SpanHandle {
	if r == nil {
		return SpanHandle{}
	}
	id := r.newID()
	r.started.Add(1)
	sampled := r.sampleTrace(id)
	if sampled {
		r.sampled.Add(1)
	}
	return SpanHandle{
		r:     r,
		ctx:   Ctx{Trace: id, Span: id, Sampled: sampled},
		name:  name,
		elem:  element,
		start: time.Now(),
	}
}

// StartChild begins a child span under parent. An invalid parent
// returns an inert handle, so call sites need no guards.
func (r *Recorder) StartChild(parent Ctx, name, element string) SpanHandle {
	if r == nil || !parent.Valid() {
		return SpanHandle{}
	}
	return SpanHandle{
		r:      r,
		ctx:    Ctx{Trace: parent.Trace, Span: r.newID(), Sampled: parent.Sampled},
		parent: parent.Span,
		name:   name,
		elem:   element,
		start:  time.Now(),
	}
}

// Ctx returns the span's context: pass it down so children nest under
// this span.
func (h *SpanHandle) Ctx() Ctx { return h.ctx }

// Active reports whether the handle belongs to a live recorder.
func (h *SpanHandle) Active() bool { return h.r != nil }

// SetAttr attaches an attribute (bounded; extras are dropped).
func (h *SpanHandle) SetAttr(key, value string) {
	if h.r == nil || h.nattrs >= maxAttrs {
		return
	}
	h.attrs[h.nattrs] = Attr{Key: key, Value: value}
	h.nattrs++
}

// End closes the span. Sampled traces record unconditionally;
// unsampled spans record only when errored or slower than the tail
// threshold. A span that records nothing costs two clock reads.
func (h *SpanHandle) End(err error) {
	if h.r == nil {
		return
	}
	d := time.Since(h.start)
	if !h.ctx.Sampled {
		if err == nil && (h.r.slow <= 0 || d < h.r.slow) {
			return
		}
	}
	h.record(d, err)
}

// EndWithDuration closes the span with an externally measured
// duration (spans whose window was timed by the caller).
func (h *SpanHandle) EndWithDuration(d time.Duration, err error) {
	if h.r == nil {
		return
	}
	if !h.ctx.Sampled {
		if err == nil && (h.r.slow <= 0 || d < h.r.slow) {
			return
		}
	}
	h.record(d, err)
}

func (h *SpanHandle) record(d time.Duration, err error) {
	sp := Span{
		Trace:    h.ctx.Trace,
		ID:       h.ctx.Span,
		Parent:   h.parent,
		Name:     h.name,
		Element:  h.elem,
		Start:    h.start,
		Duration: d,
		Tail:     !h.ctx.Sampled,
	}
	if err != nil {
		sp.Err = err.Error()
	}
	if h.nattrs > 0 {
		sp.Attrs = append([]Attr(nil), h.attrs[:h.nattrs]...)
	}
	h.r.push(sp)
}

// RecordSpan records a span whose window the caller measured itself
// (e.g. the per-peer replication send spans, timed from enqueue to
// acknowledgement). Sampling follows the same head+tail policy.
func (r *Recorder) RecordSpan(parent Ctx, name, element string, start time.Time, d time.Duration, err error, attrs ...Attr) {
	if r == nil || !parent.Valid() {
		return
	}
	if !parent.Sampled {
		if err == nil && (r.slow <= 0 || d < r.slow) {
			return
		}
	}
	sp := Span{
		Trace:    parent.Trace,
		ID:       r.newID(),
		Parent:   parent.Span,
		Name:     name,
		Element:  element,
		Start:    start,
		Duration: d,
		Tail:     !parent.Sampled,
	}
	if err != nil {
		sp.Err = err.Error()
	}
	if len(attrs) > 0 {
		if len(attrs) > maxAttrs {
			attrs = attrs[:maxAttrs]
		}
		sp.Attrs = append([]Attr(nil), attrs...)
	}
	r.push(sp)
}

// push appends a span to its trace's stripe and maintains the
// slowest-roots index.
func (r *Recorder) push(sp Span) {
	r.spans.Add(1)
	st := &r.rings[uint64(sp.Trace)%stripes]
	st.mu.Lock()
	if st.ring == nil {
		st.ring = make([]Span, r.perRing)
	}
	if st.full {
		r.dropped.Add(1)
	}
	st.ring[st.next] = sp
	st.next++
	if st.next == len(st.ring) {
		st.next = 0
		st.full = true
	}
	st.mu.Unlock()

	if sp.Parent == 0 {
		r.noteRoot(sp)
	}
}

// noteRoot feeds the slowest-N root index.
func (r *Recorder) noteRoot(sp Span) {
	r.slowMu.Lock()
	defer r.slowMu.Unlock()
	if len(r.slowRoots) < slowRootsMax {
		r.slowRoots = append(r.slowRoots, sp)
	} else {
		// Replace the fastest entry if this root is slower.
		min := 0
		for i := 1; i < len(r.slowRoots); i++ {
			if r.slowRoots[i].Duration < r.slowRoots[min].Duration {
				min = i
			}
		}
		if sp.Duration <= r.slowRoots[min].Duration {
			return
		}
		r.slowRoots[min] = sp
	}
}

// Stats snapshots the recorder counters.
func (r *Recorder) Stats() Stats {
	if r == nil {
		return Stats{}
	}
	return Stats{
		Started: r.started.Load(),
		Sampled: r.sampled.Load(),
		Spans:   r.spans.Load(),
		Dropped: r.dropped.Load(),
	}
}

// Get returns every buffered span of a trace, parents before children
// where start times allow (sorted by start, then ID).
func (r *Recorder) Get(id ID) []Span {
	if r == nil || id == 0 {
		return nil
	}
	st := &r.rings[uint64(id)%stripes]
	var out []Span
	st.mu.Lock()
	for i := range st.ring {
		if st.ring[i].Trace == id {
			out = append(out, st.ring[i])
		}
	}
	st.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Start.Equal(out[j].Start) {
			return out[i].Start.Before(out[j].Start)
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// TraceSummary is one trace in the recent/slow listings.
type TraceSummary struct {
	Trace ID
	Root  Span
	// Spans counts the trace's spans still buffered.
	Spans int
}

// Recent returns up to n trace summaries, newest root first. Only
// traces whose root span is still buffered are listed.
func (r *Recorder) Recent(n int) []TraceSummary {
	if r == nil || n <= 0 {
		return nil
	}
	counts := make(map[ID]int)
	var roots []Span
	for s := range r.rings {
		st := &r.rings[s]
		st.mu.Lock()
		for i := range st.ring {
			sp := &st.ring[i]
			if sp.Trace == 0 {
				continue
			}
			counts[sp.Trace]++
			if sp.Parent == 0 {
				roots = append(roots, *sp)
			}
		}
		st.mu.Unlock()
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].Start.After(roots[j].Start) })
	if len(roots) > n {
		roots = roots[:n]
	}
	out := make([]TraceSummary, 0, len(roots))
	for _, root := range roots {
		out = append(out, TraceSummary{Trace: root.Trace, Root: root, Spans: counts[root.Trace]})
	}
	return out
}

// Slow returns up to n of the slowest root spans seen since startup,
// slowest first. The index survives ring overwrites, so an entry's
// child spans may already be gone.
func (r *Recorder) Slow(n int) []Span {
	if r == nil || n <= 0 {
		return nil
	}
	r.slowMu.Lock()
	out := append([]Span(nil), r.slowRoots...)
	r.slowMu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Duration > out[j].Duration })
	if len(out) > n {
		out = out[:n]
	}
	return out
}
