package trace

import "context"

// ctxKey keys the trace context inside a context.Context.
type ctxKey struct{}

// NewContext returns ctx carrying tc: the in-process propagation rule
// (across simnet hops the context rides message fields instead).
func NewContext(ctx context.Context, tc Ctx) context.Context {
	if !tc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, tc)
}

// FromContext extracts the trace context (zero Ctx when absent).
func FromContext(ctx context.Context) Ctx {
	if ctx == nil {
		return Ctx{}
	}
	tc, _ := ctx.Value(ctxKey{}).(Ctx)
	return tc
}

// Carrier is implemented by simnet message structs that carry a trace
// context across a network hop. WithTraceCtx returns a copy of the
// message with the context replaced, letting the network nest the
// receiving element's spans under its per-hop call span.
type Carrier interface {
	TraceCtx() Ctx
	WithTraceCtx(Ctx) any
}
