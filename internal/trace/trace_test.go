package trace

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestNilRecorderIsInert(t *testing.T) {
	var r *Recorder
	h := r.StartRoot("op", "site/fe")
	if h.Active() || h.Ctx().Valid() {
		t.Fatalf("nil recorder produced an active handle")
	}
	h.SetAttr("k", "v")
	h.End(nil)
	r.RecordSpan(Ctx{Trace: 1, Span: 1, Sampled: true}, "x", "e", time.Now(), time.Second, nil)
	if got := r.Get(1); got != nil {
		t.Fatalf("nil recorder returned spans: %v", got)
	}
	if s := r.Stats(); s != (Stats{}) {
		t.Fatalf("nil recorder stats = %+v", s)
	}
}

func TestSampledTraceRecordsTree(t *testing.T) {
	r := New(Config{SampleRate: 1})
	root := r.StartRoot("fe.proc", "eu-south/fe")
	child := r.StartChild(root.Ctx(), "session.exec", "eu-south/session")
	grand := r.StartChild(child.Ctx(), "se.commit", "eu-south/se")
	grand.SetAttr("csn", "42")
	grand.End(nil)
	child.End(nil)
	root.End(nil)

	spans := r.Get(root.Ctx().Trace)
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	trees := BuildTree(spans)
	if len(trees) != 1 {
		t.Fatalf("got %d roots, want 1", len(trees))
	}
	n := trees[0]
	if n.Name != "fe.proc" || len(n.Children) != 1 ||
		n.Children[0].Name != "session.exec" || len(n.Children[0].Children) != 1 ||
		n.Children[0].Children[0].Name != "se.commit" {
		t.Fatalf("bad tree: %s", RenderTree(spans))
	}
	if got := n.Children[0].Children[0].Attrs[0]; got.Key != "csn" || got.Value != "42" {
		t.Fatalf("attr = %+v", got)
	}
	st := r.Stats()
	if st.Started != 1 || st.Sampled != 1 || st.Spans != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestHeadSamplingOffRecordsNothingFast(t *testing.T) {
	r := New(Config{SampleRate: -1, SlowThreshold: time.Hour})
	root := r.StartRoot("op", "e")
	child := r.StartChild(root.Ctx(), "child", "e")
	child.End(nil)
	root.End(nil)
	if st := r.Stats(); st.Spans != 0 || st.Sampled != 0 {
		t.Fatalf("unsampled fast ops recorded: %+v", st)
	}
	if got := r.Recent(10); len(got) != 0 {
		t.Fatalf("Recent = %v", got)
	}
}

func TestTailSamplingCapturesSlowAndErrored(t *testing.T) {
	r := New(Config{SampleRate: -1, SlowThreshold: time.Nanosecond})
	root := r.StartRoot("slow-op", "e")
	time.Sleep(time.Millisecond)
	root.End(nil)

	r2 := New(Config{SampleRate: -1, SlowThreshold: time.Hour})
	bad := r2.StartRoot("err-op", "e")
	bad.End(errors.New("boom"))

	if spans := r.Get(root.Ctx().Trace); len(spans) != 1 || !spans[0].Tail {
		t.Fatalf("slow span not tail-sampled: %v", spans)
	}
	if spans := r2.Get(bad.Ctx().Trace); len(spans) != 1 || spans[0].Err != "boom" || !spans[0].Tail {
		t.Fatalf("errored span not tail-sampled: %v", spans)
	}
}

func TestSampleRateIsApproximate(t *testing.T) {
	r := New(Config{SampleRate: 0.25, SlowThreshold: -1})
	const n = 4000
	for i := 0; i < n; i++ {
		h := r.StartRoot("op", "e")
		h.End(nil)
	}
	st := r.Stats()
	frac := float64(st.Sampled) / n
	if frac < 0.15 || frac > 0.35 {
		t.Fatalf("sampled fraction %.3f far from 0.25", frac)
	}
}

func TestRingBoundAndDropCounting(t *testing.T) {
	r := New(Config{SampleRate: 1, Capacity: stripes}) // one slot per stripe
	// All spans of one trace share a stripe: the second span evicts
	// the first.
	root := r.StartRoot("r", "e")
	root.End(nil)
	c1 := r.StartChild(root.Ctx(), "c1", "e")
	c1.End(nil)
	c2 := r.StartChild(root.Ctx(), "c2", "e")
	c2.End(nil)
	if st := r.Stats(); st.Dropped != 2 {
		t.Fatalf("dropped = %d, want 2", st.Dropped)
	}
	if spans := r.Get(root.Ctx().Trace); len(spans) != 1 {
		t.Fatalf("ring holds %d spans, want 1", len(spans))
	}
}

func TestSlowIndexKeepsSlowestRoots(t *testing.T) {
	r := New(Config{SampleRate: 1})
	var slowest Ctx
	for i := 0; i < slowRootsMax+8; i++ {
		h := r.StartRoot(fmt.Sprintf("op-%d", i), "e")
		d := time.Duration(i+1) * time.Millisecond
		if i == slowRootsMax+7 {
			slowest = h.Ctx()
		}
		h.EndWithDuration(d, nil)
	}
	slow := r.Slow(4)
	if len(slow) != 4 {
		t.Fatalf("Slow returned %d", len(slow))
	}
	if slow[0].Trace != slowest.Trace {
		t.Fatalf("slowest root missing: got %s", slow[0].Name)
	}
	for i := 1; i < len(slow); i++ {
		if slow[i].Duration > slow[i-1].Duration {
			t.Fatalf("Slow not sorted: %v", slow)
		}
	}
}

func TestRecentListsNewestFirst(t *testing.T) {
	r := New(Config{SampleRate: 1})
	var last Ctx
	for i := 0; i < 5; i++ {
		h := r.StartRoot(fmt.Sprintf("op-%d", i), "e")
		c := r.StartChild(h.Ctx(), "child", "e")
		c.End(nil)
		h.End(nil)
		last = h.Ctx()
		time.Sleep(time.Millisecond)
	}
	got := r.Recent(3)
	if len(got) != 3 {
		t.Fatalf("Recent returned %d", len(got))
	}
	if got[0].Trace != last.Trace {
		t.Fatalf("newest trace not first")
	}
	if got[0].Spans != 2 {
		t.Fatalf("span count = %d, want 2", got[0].Spans)
	}
}

func TestIDRoundTrip(t *testing.T) {
	id := ID(0xdeadbeef12345678)
	got, err := ParseID(id.String())
	if err != nil || got != id {
		t.Fatalf("ParseID(%q) = %v, %v", id.String(), got, err)
	}
	if _, err := ParseID("zzz"); err == nil {
		t.Fatalf("ParseID accepted garbage")
	}
	if _, err := ParseID("0"); err == nil {
		t.Fatalf("ParseID accepted zero")
	}
}

// TestConcurrentRecording hammers the ring from many goroutines while
// readers reassemble traces — the -race bar for the lock-striped
// buffer (ISSUE 10 satellite).
func TestConcurrentRecording(t *testing.T) {
	r := New(Config{SampleRate: 1, Capacity: 512})
	const writers = 8
	const perWriter = 400
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				root := r.StartRoot(fmt.Sprintf("w%d-op%d", w, i), "e")
				c := r.StartChild(root.Ctx(), "child", "e")
				c.SetAttr("i", fmt.Sprint(i))
				c.End(nil)
				root.End(nil)
			}
		}(w)
	}
	var readers sync.WaitGroup
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, s := range r.Recent(16) {
					r.Get(s.Trace)
				}
				r.Slow(8)
				r.Stats()
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	st := r.Stats()
	if st.Spans != writers*perWriter*2 {
		t.Fatalf("spans = %d, want %d", st.Spans, writers*perWriter*2)
	}
	if st.Dropped == 0 {
		t.Fatalf("expected ring overwrites with capacity 512")
	}
}
