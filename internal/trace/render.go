package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Node is one span with its resolved children: the tree the HTTP and
// LDAP surfaces serve.
type Node struct {
	Span
	Children []*Node
}

// BuildTree assembles a trace's spans into root trees. Spans whose
// parent was overwritten in the ring become roots of their own
// subtree (partial traces render instead of vanishing). Siblings sort
// by start time.
func BuildTree(spans []Span) []*Node {
	nodes := make(map[ID]*Node, len(spans))
	for i := range spans {
		nodes[spans[i].ID] = &Node{Span: spans[i]}
	}
	var roots []*Node
	for _, n := range nodes {
		if n.Parent != 0 {
			if p, ok := nodes[n.Parent]; ok && p != n {
				p.Children = append(p.Children, n)
				continue
			}
		}
		roots = append(roots, n)
	}
	var sortNodes func([]*Node)
	sortNodes = func(list []*Node) {
		sort.Slice(list, func(i, j int) bool {
			if !list[i].Start.Equal(list[j].Start) {
				return list[i].Start.Before(list[j].Start)
			}
			return list[i].ID < list[j].ID
		})
		for _, n := range list {
			sortNodes(n.Children)
		}
	}
	sortNodes(roots)
	return roots
}

// RenderTree renders a trace as an indented text tree — the udrctl
// and reproducer-friendly view of the same data /trace/{id} serves as
// JSON.
func RenderTree(spans []Span) string {
	if len(spans) == 0 {
		return "(no spans)\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "trace %s (%d spans)\n", spans[0].Trace, len(spans))
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		b.WriteString(strings.Repeat("  ", depth+1))
		fmt.Fprintf(&b, "%-24s %-20s %12v", n.Name, n.Element, n.Duration)
		for _, a := range n.Attrs {
			fmt.Fprintf(&b, " %s=%s", a.Key, a.Value)
		}
		if n.Err != "" {
			fmt.Fprintf(&b, " err=%q", n.Err)
		}
		if n.Tail {
			b.WriteString(" [tail]")
		}
		b.WriteByte('\n')
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	for _, root := range BuildTree(spans) {
		walk(root, 0)
	}
	return b.String()
}
