package obs

import (
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
)

// TestExpositionGolden pins the exact exposition output for hand-built
// family snapshots: HELP/TYPE headers, label ordering and escaping,
// cumulative histogram buckets with the trailing le label, and the
// header-only rendering of an empty family.
func TestExpositionGolden(t *testing.T) {
	families := []metrics.FamilySnapshot{
		{
			Name: "udr_requests_total",
			Help: `Requests with a backslash \ and` + "\nnewline.",
			Kind: metrics.KindCounter, LabelNames: []string{"site", "op"},
			Samples: []metrics.Sample{
				{LabelValues: []string{"eu-south", "read"}, Value: 42},
				{LabelValues: []string{`quo"te`, `back\slash` + "\nnl"}, Value: 1},
			},
		},
		{
			Name: "udr_queue_depth",
			Help: "Depth.",
			Kind: metrics.KindGauge, LabelNames: nil,
			Samples: []metrics.Sample{{Value: 2.5}},
		},
		{
			Name: "udr_idle_seconds",
			Help: "Never recorded.",
			Kind: metrics.KindHistogram, LabelNames: []string{"site"},
		},
		{
			Name: "udr_latency_seconds",
			Help: "Latency.",
			Kind: metrics.KindHistogram, LabelNames: []string{"site"},
			Samples: []metrics.Sample{{
				LabelValues: []string{"eu"},
				Hist: &metrics.HistogramExport{
					Buckets: []metrics.HistogramBucket{
						{LE: 2e-06, Count: 0},
						{LE: 4e-06, Count: 2},
						{LE: 8e-06, Count: 3},
					},
					Count: 4, // one observation beyond the last bound
					Sum:   0.0123,
				},
			}},
		},
	}

	var b strings.Builder
	if err := WriteExposition(&b, families); err != nil {
		t.Fatal(err)
	}

	want := `# HELP udr_requests_total Requests with a backslash \\ and\nnewline.
# TYPE udr_requests_total counter
udr_requests_total{site="eu-south",op="read"} 42
udr_requests_total{site="quo\"te",op="back\\slash\nnl"} 1
# HELP udr_queue_depth Depth.
# TYPE udr_queue_depth gauge
udr_queue_depth 2.5
# HELP udr_idle_seconds Never recorded.
# TYPE udr_idle_seconds histogram
# HELP udr_latency_seconds Latency.
# TYPE udr_latency_seconds histogram
udr_latency_seconds_bucket{site="eu",le="2e-06"} 0
udr_latency_seconds_bucket{site="eu",le="4e-06"} 2
udr_latency_seconds_bucket{site="eu",le="8e-06"} 3
udr_latency_seconds_bucket{site="eu",le="+Inf"} 4
udr_latency_seconds_sum{site="eu"} 0.0123
udr_latency_seconds_count{site="eu"} 4
`
	if got := b.String(); got != want {
		t.Fatalf("exposition mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestExpositionFromRegistry round-trips a live registry: recorded
// observations must land in the right cumulative bucket of the fixed
// export bound set.
func TestExpositionFromRegistry(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("udr_ops_total", "Ops.", "site").With("eu").Add(5)
	h := reg.Histogram("udr_op_latency_seconds", "Op latency.", "site").With("eu")
	h.Record(3 * time.Microsecond) // [2µs,4µs) → cumulative at le=4e-06

	var b strings.Builder
	if err := WriteExposition(&b, reg.Gather()); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, line := range []string{
		"# TYPE udr_ops_total counter",
		`udr_ops_total{site="eu"} 5`,
		"# TYPE udr_op_latency_seconds histogram",
		`udr_op_latency_seconds_bucket{site="eu",le="2e-06"} 0`,
		`udr_op_latency_seconds_bucket{site="eu",le="4e-06"} 1`,
		`udr_op_latency_seconds_bucket{site="eu",le="+Inf"} 1`,
		`udr_op_latency_seconds_count{site="eu"} 1`,
	} {
		if !strings.Contains(out, line+"\n") {
			t.Fatalf("missing line %q in exposition:\n%s", line, out)
		}
	}
}
