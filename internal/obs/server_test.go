package obs

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/rebalance"
	"repro/internal/simnet"
	"repro/internal/subscriber"
)

// testServer boots a 2-site UDR with the full metrics wiring behind an
// httptest server — the obs surface exactly as udrd -admin serves it.
func testServer(t *testing.T, subs int, antiEntropy bool) (*core.UDR, *httptest.Server) {
	t.Helper()
	network := simnet.New(simnet.FastConfig())
	cfg := core.DefaultConfig()
	cfg.Sites = []core.SiteSpec{
		{Name: "eu-south", SEs: 2, PartitionsPerSE: 1},
		{Name: "eu-north", SEs: 2, PartitionsPerSE: 1},
	}
	cfg.ReplicationFactor = 2
	cfg.AntiEntropy = antiEntropy
	u, err := core.New(network, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(u.Stop)
	gen := subscriber.NewGenerator(u.Sites()...)
	for i := 0; i < subs; i++ {
		if err := u.SeedDirect(gen.Profile(i)); err != nil {
			t.Fatal(err)
		}
	}
	reg := metrics.NewRegistry()
	u.RegisterMetrics(reg)
	ts := httptest.NewServer(NewServer(Config{Registry: reg, UDR: u}).Handler())
	t.Cleanup(ts.Close)
	return u, ts
}

// moveTarget returns an element that hosts no replica of the partition
// (a legal migration target) and one that does (a conflicting one).
func moveTarget(t *testing.T, u *core.UDR, partID string) (free, hosting string) {
	t.Helper()
	part, ok := u.Partition(partID)
	if !ok {
		t.Fatalf("partition %q missing", partID)
	}
	hosted := map[string]bool{}
	for _, ref := range part.Replicas {
		hosted[ref.Element] = true
	}
	hosting = part.Replicas[len(part.Replicas)-1].Element
	for _, el := range u.Elements() {
		if !hosted[el] {
			return el, hosting
		}
	}
	t.Fatal("no free element for a move")
	return "", ""
}

func decode[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decode %T: %v", v, err)
	}
	return v
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := testServer(t, 8, true)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != ExpositionContentType {
		t.Fatalf("content type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)

	// The acceptance families, as TYPE lines (present even when idle).
	for _, line := range []string{
		"# TYPE udr_poa_op_latency_seconds histogram",
		"# TYPE udr_replication_queue_depth gauge",
		"# TYPE udr_wal_fsyncs_per_commit gauge",
		"# TYPE udr_antientropy_rows_shipped_total counter",
		"# TYPE udr_migration_phase gauge",
	} {
		if !strings.Contains(body, line+"\n") {
			t.Errorf("missing %q", line)
		}
	}
	// Topology-backed samples with site/element/partition labels.
	for _, frag := range []string{
		`udr_partition_rows{site="eu-south",element="`,
		`udr_se_reads_total{site="`,
		`udr_replication_queue_depth{site="`,
		`udr_placement_epoch{partition="p-eu-south-0"}`,
	} {
		if !strings.Contains(body, frag) {
			t.Errorf("missing sample fragment %q in:\n%s", frag, body)
		}
	}
}

func TestHealthz(t *testing.T) {
	_, ts := testServer(t, 0, false)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	h := decode[HealthResponse](t, resp)
	if h.Status != "ok" || h.UptimeSeconds < 0 {
		t.Fatalf("health = %+v", h)
	}
}

func TestStatusEndpoint(t *testing.T) {
	u, ts := testServer(t, 8, false)
	resp, err := http.Get(ts.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	st := decode[StatusResponse](t, resp)
	if len(st.Sites) != 2 || len(st.Elements) != 4 {
		t.Fatalf("topology = %d sites, %d elements", len(st.Sites), len(st.Elements))
	}
	if len(st.Partitions) != len(u.Partitions()) {
		t.Fatalf("partitions = %d, want %d", len(st.Partitions), len(u.Partitions()))
	}
	for _, p := range st.Partitions {
		if len(p.Replicas) != 2 {
			t.Fatalf("partition %s has %d replicas", p.ID, len(p.Replicas))
		}
		if p.Replicas[0].Role != "master" || p.Replicas[1].Role != "slave" {
			t.Fatalf("partition %s roles = %s/%s", p.ID, p.Replicas[0].Role, p.Replicas[1].Role)
		}
		if len(p.ReplicationLag) == 0 {
			t.Fatalf("partition %s reports no replication lag entries", p.ID)
		}
	}
	if len(st.Migrations) != 0 {
		t.Fatalf("idle UDR reports migrations: %+v", st.Migrations)
	}
}

func TestStatusWithoutTopology(t *testing.T) {
	reg := metrics.NewRegistry()
	ts := httptest.NewServer(NewServer(Config{Registry: reg}).Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status without topology = %d, want 503", resp.StatusCode)
	}
	// /metrics still works on a metrics-only endpoint.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("metrics without topology = %d", mresp.StatusCode)
	}
}

func TestAdminRequiresPost(t *testing.T) {
	_, ts := testServer(t, 0, true)
	for _, path := range []string{"/admin/repair", "/admin/move", "/admin/rebalance"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET %s = %d, want 405", path, resp.StatusCode)
		}
		if allow := resp.Header.Get("Allow"); allow != http.MethodPost {
			t.Errorf("GET %s Allow = %q", path, allow)
		}
	}
}

func TestAdminRepair(t *testing.T) {
	_, ts := testServer(t, 8, true)
	resp, err := http.Post(ts.URL+"/admin/repair", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repair = %d", resp.StatusCode)
	}
	rep := decode[RepairResponse](t, resp)
	if len(rep.Rounds) == 0 {
		t.Fatal("repair reported no rounds")
	}

	// Unknown partition: the udrctl noSuchObject class maps to 404.
	resp, err = http.Post(ts.URL+"/admin/repair?partition=p-nope", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("repair unknown partition = %d, want 404", resp.StatusCode)
	}
}

func TestAdminRepairDisabled(t *testing.T) {
	_, ts := testServer(t, 0, false)
	resp, err := http.Post(ts.URL+"/admin/repair", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("repair with anti-entropy disabled = %d, want 409", resp.StatusCode)
	}
}

func TestAdminMoveEndToEnd(t *testing.T) {
	u, ts := testServer(t, 12, false)
	partID := "p-eu-south-0"
	before, _ := u.Partition(partID)
	epochBefore := before.Epoch
	target, _ := moveTarget(t, u, partID)

	resp, err := http.Post(ts.URL+"/admin/move?partition="+partID+"&target="+target, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("move = %d", resp.StatusCode)
	}
	mv := decode[MoveResponse](t, resp)
	if mv.Target != target || mv.Aborted || mv.Phase != "done" {
		t.Fatalf("move report = %+v", mv)
	}
	after, _ := u.Partition(partID)
	if after.Master().Element != target {
		t.Fatalf("master = %s, want %s", after.Master().Element, target)
	}
	if after.Epoch <= epochBefore {
		t.Fatalf("epoch %d did not advance past %d", after.Epoch, epochBefore)
	}

	// /status reflects the new placement and epoch.
	sresp, err := http.Get(ts.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	st := decode[StatusResponse](t, sresp)
	for _, p := range st.Partitions {
		if p.ID == partID {
			if p.Replicas[0].Element != target || p.Epoch != after.Epoch {
				t.Fatalf("status partition = %+v", p)
			}
		}
	}
}

func TestAdminMoveErrors(t *testing.T) {
	u, ts := testServer(t, 4, false)
	partID := "p-eu-south-0"
	target, hosting := moveTarget(t, u, partID)

	post := func(query string) int {
		t.Helper()
		resp, err := http.Post(ts.URL+"/admin/move"+query, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	if code := post(""); code != http.StatusBadRequest {
		t.Fatalf("move without params = %d, want 400", code)
	}
	if code := post("?partition=p-nope&target=" + target); code != http.StatusNotFound {
		t.Fatalf("move unknown partition = %d, want 404", code)
	}
	if code := post("?partition=" + partID + "&target=se-nope"); code != http.StatusNotFound {
		t.Fatalf("move unknown target = %d, want 404", code)
	}
	if code := post("?partition=" + partID + "&target=" + hosting); code != http.StatusConflict {
		t.Fatalf("move onto hosting element = %d, want 409", code)
	}
	part, _ := u.Partition(partID)
	if code := post("?partition=" + partID + "&target=" + part.Master().Element); code != http.StatusConflict {
		t.Fatalf("move onto current master = %d, want 409", code)
	}
}

// TestAdminMoveInFlight holds a migration open mid-copy and pins two
// contracts at once: a second move over HTTP gets 409 busy, and the
// migration-progress gauge exports the held phase.
func TestAdminMoveInFlight(t *testing.T) {
	u, ts := testServer(t, 4, false)
	partID := "p-eu-south-0"
	target, _ := moveTarget(t, u, partID)

	hold := make(chan struct{})
	entered := make(chan struct{})
	done := make(chan error, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	go func() {
		_, err := u.MigratePartition(ctx, partID, target, false,
			core.WithMigrateHooks(rebalance.Hooks{AfterCopy: func() {
				close(entered)
				<-hold
			}}))
		done <- err
	}()
	<-entered

	resp, err := http.Post(ts.URL+"/admin/move?partition="+partID+"&target="+target, "", nil)
	if err != nil {
		close(hold)
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		close(hold)
		t.Fatalf("move during migration = %d, want 409", resp.StatusCode)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		close(hold)
		t.Fatal(err)
	}
	scrape, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	phaseLine := `udr_migration_phase{partition="` + partID + `"} 2`
	if !strings.Contains(string(scrape), phaseLine+"\n") {
		close(hold)
		t.Fatalf("missing %q (catch-up phase) in scrape", phaseLine)
	}

	close(hold)
	if err := <-done; err != nil {
		t.Fatalf("held migration failed: %v", err)
	}
}

func TestAdminRebalance(t *testing.T) {
	_, ts := testServer(t, 8, false)
	resp, err := http.Post(ts.URL+"/admin/rebalance", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rebalance = %d", resp.StatusCode)
	}
	rb := decode[RebalanceResponse](t, resp)
	if rb.Failed != 0 || len(rb.Moves) != rb.Planned {
		t.Fatalf("rebalance report = %+v", rb)
	}
}
