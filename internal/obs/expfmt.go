// Package obs is the UDR's operator-facing observability surface: a
// hand-rolled Prometheus text exposition of the metrics registry and
// an admin HTTP server (metrics, health, status, pprof, and the
// repair/move/rebalance control operations udrctl exposes over LDAP).
//
// The exposition writer implements the Prometheus text format
// version 0.0.4 directly — no client library dependency — because
// the format is small and the repo's no-new-deps rule is absolute.
package obs

import (
	"bufio"
	"io"
	"math"
	"strconv"
	"strings"

	"repro/internal/metrics"
)

// ExpositionContentType is the Content-Type of the /metrics response.
const ExpositionContentType = "text/plain; version=0.0.4; charset=utf-8"

// escapeHelp escapes a HELP line per the exposition format: backslash
// and newline.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value: backslash, double quote, newline.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatValue renders a sample value. Prometheus accepts Go 'g'
// formatting; infinities spell +Inf / -Inf, NaN spells NaN.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// writeLabels renders {a="x",b="y"}; nothing when both slices are
// empty. extraName/extraValue append a trailing label (the histogram
// "le" bound).
func writeLabels(w *bufio.Writer, names, values []string, extraName, extraValue string) {
	if len(names) == 0 && extraName == "" {
		return
	}
	w.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			w.WriteByte(',')
		}
		w.WriteString(n)
		w.WriteString(`="`)
		w.WriteString(escapeLabel(values[i]))
		w.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			w.WriteByte(',')
		}
		w.WriteString(extraName)
		w.WriteString(`="`)
		w.WriteString(extraValue)
		w.WriteByte('"')
	}
	w.WriteByte('}')
}

// WriteExposition renders gathered families in the Prometheus text
// exposition format, families and samples in the (already sorted)
// Gather order. Families without samples still get their HELP/TYPE
// header: an instrumented-but-idle metric is part of the scrape
// contract, and the CI smoke job greps for exactly these lines.
func WriteExposition(out io.Writer, families []metrics.FamilySnapshot) error {
	w := bufio.NewWriter(out)
	for _, f := range families {
		w.WriteString("# HELP ")
		w.WriteString(f.Name)
		w.WriteByte(' ')
		w.WriteString(escapeHelp(f.Help))
		w.WriteByte('\n')
		w.WriteString("# TYPE ")
		w.WriteString(f.Name)
		w.WriteByte(' ')
		w.WriteString(f.Kind.String())
		w.WriteByte('\n')
		for _, s := range f.Samples {
			if f.Kind == metrics.KindHistogram {
				writeHistogram(w, f, s)
				continue
			}
			w.WriteString(f.Name)
			writeLabels(w, f.LabelNames, s.LabelValues, "", "")
			w.WriteByte(' ')
			w.WriteString(formatValue(s.Value))
			w.WriteByte('\n')
		}
	}
	return w.Flush()
}

// writeHistogram renders one histogram series: cumulative _bucket
// lines (fixed upper bounds plus +Inf), then _sum and _count.
func writeHistogram(w *bufio.Writer, f metrics.FamilySnapshot, s metrics.Sample) {
	h := s.Hist
	if h == nil {
		return
	}
	for _, b := range h.Buckets {
		w.WriteString(f.Name)
		w.WriteString("_bucket")
		writeLabels(w, f.LabelNames, s.LabelValues, "le", formatValue(b.LE))
		w.WriteByte(' ')
		w.WriteString(strconv.FormatInt(b.Count, 10))
		writeExemplar(w, b.Exemplar, b.ExemplarValue)
		w.WriteByte('\n')
	}
	w.WriteString(f.Name)
	w.WriteString("_bucket")
	writeLabels(w, f.LabelNames, s.LabelValues, "le", "+Inf")
	w.WriteByte(' ')
	w.WriteString(strconv.FormatInt(h.Count, 10))
	writeExemplar(w, h.InfExemplar, h.InfExemplarValue)
	w.WriteByte('\n')

	w.WriteString(f.Name)
	w.WriteString("_sum")
	writeLabels(w, f.LabelNames, s.LabelValues, "", "")
	w.WriteByte(' ')
	w.WriteString(formatValue(h.Sum))
	w.WriteByte('\n')

	w.WriteString(f.Name)
	w.WriteString("_count")
	writeLabels(w, f.LabelNames, s.LabelValues, "", "")
	w.WriteByte(' ')
	w.WriteString(strconv.FormatInt(h.Count, 10))
	w.WriteByte('\n')
}

// writeExemplar appends an OpenMetrics-style exemplar suffix
// (` # {trace_id="..."} <value>`) to a bucket line. Prometheus's
// text parser ignores it; OpenMetrics scrapers link the bucket to
// the recorded trace.
func writeExemplar(w *bufio.Writer, traceID string, value float64) {
	if traceID == "" {
		return
	}
	w.WriteString(` # {trace_id="`)
	w.WriteString(traceID)
	w.WriteString(`"} `)
	w.WriteString(formatValue(value))
}
