package obs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"repro/internal/antientropy"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/rebalance"
	"repro/internal/store"
	"repro/internal/trace"
)

// Config wires an admin server.
type Config struct {
	// Registry backs GET /metrics. Required.
	Registry *metrics.Registry
	// UDR, when set, enables GET /status and the POST /admin/*
	// control operations. A metrics-only endpoint leaves it nil.
	UDR *core.UDR
	// AdminTimeout bounds each control operation (default 15s: a
	// rebalance pass streams partitions over the backbone).
	AdminTimeout time.Duration
	// Tracer, when set, backs the GET /trace/* views. Nil serves the
	// routes with empty results (tracing disabled, not an error).
	Tracer *trace.Recorder
}

// Server is the admin HTTP surface of one udrd process:
//
//	GET  /metrics           Prometheus text exposition
//	GET  /healthz           liveness probe
//	GET  /status            topology + placement epochs + replication lag (JSON)
//	GET  /trace/recent      newest sampled traces (?n=)
//	GET  /trace/slow        slowest traces since startup (?n=)
//	GET  /trace/{id}        one trace as a span tree
//	GET  /debug/pprof/*     net/http/pprof
//	POST /admin/repair      anti-entropy round (all partitions or ?partition=)
//	POST /admin/move        ?partition= &target= [&release=true]
//	POST /admin/rebalance   plan + execute a rebalancing pass
//
// The admin operations mirror the udrctl LDAP extended operations,
// including their error classes: unknown partition/element → 404,
// conflicting or in-flight move → 409, disabled subsystem → 409.
type Server struct {
	cfg   Config
	mux   *http.ServeMux
	hs    *http.Server
	start time.Time
}

// NewServer builds the server; Serve or Handler make it reachable.
func NewServer(cfg Config) *Server {
	if cfg.AdminTimeout <= 0 {
		cfg.AdminTimeout = 15 * time.Second
	}
	s := &Server{cfg: cfg, mux: http.NewServeMux(), start: time.Now()}
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/status", s.handleStatus)
	s.mux.HandleFunc("/trace/recent", s.handleTraceRecent)
	s.mux.HandleFunc("/trace/slow", s.handleTraceSlow)
	s.mux.HandleFunc("/trace/", s.handleTraceGet)
	s.mux.HandleFunc("/admin/repair", s.handleRepair)
	s.mux.HandleFunc("/admin/move", s.handleMove)
	s.mux.HandleFunc("/admin/rebalance", s.handleRebalance)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.hs = &http.Server{Handler: s.mux}
	return s
}

// Handler returns the route table (httptest and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Serve serves HTTP on the listener until Close.
func (s *Server) Serve(ln net.Listener) error {
	err := s.hs.Serve(ln)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Close immediately closes the listener and all connections.
func (s *Server) Close() error { return s.hs.Close() }

// writeJSON renders v with a status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// errorJSON is the admin error body.
type errorJSON struct {
	Error string `json:"error"`
}

// httpCode maps control-plane errors onto HTTP status codes, the same
// classes moveResultCode gives udrctl over LDAP.
func httpCode(err error) int {
	switch {
	case errors.Is(err, core.ErrUnknownPartition), errors.Is(err, core.ErrUnknownElement):
		return http.StatusNotFound
	case errors.Is(err, core.ErrMigrationInFlight), errors.Is(err, rebalance.ErrConflict):
		return http.StatusConflict
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

// requireUDR guards the topology-backed endpoints.
func (s *Server) requireUDR(w http.ResponseWriter) bool {
	if s.cfg.UDR == nil {
		writeJSON(w, http.StatusServiceUnavailable, errorJSON{Error: "not available on this endpoint: no topology attached"})
		return false
	}
	return true
}

// requirePost guards the mutating admin operations.
func requirePost(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, errorJSON{Error: "use POST"})
		return false
	}
	return true
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", ExpositionContentType)
	WriteExposition(w, s.cfg.Registry.Gather())
}

// HealthResponse is the /healthz body.
type HealthResponse struct {
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptimeSeconds"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:        "ok",
		UptimeSeconds: time.Since(s.start).Seconds(),
	})
}

// ReplicaStatus is one partition copy in the /status view.
type ReplicaStatus struct {
	Element    string `json:"element"`
	Site       string `json:"site"`
	Role       string `json:"role"`
	Up         bool   `json:"up"`
	Rows       int    `json:"rows"`
	CSN        uint64 `json:"csn"`
	AppliedCSN uint64 `json:"appliedCsn"`
}

// PeerLag is one replication sender's shipping state as seen from the
// partition master.
type PeerLag struct {
	Peer       string `json:"peer"`
	AckedCSN   uint64 `json:"ackedCsn"`
	QueueDepth int    `json:"queueDepth"`
	// LagRecords is master CSN minus the peer's acked CSN.
	LagRecords uint64 `json:"lagRecords"`
	// AcksPending is the quorum watermark minus the peer's acked CSN:
	// records the peer still owes before it catches the quorum.
	AcksPending uint64 `json:"acksPending,omitempty"`
}

// PartitionStatus is one partition-table entry plus live replication
// state.
type PartitionStatus struct {
	ID        string `json:"id"`
	HomeSite  string `json:"homeSite"`
	Epoch     uint64 `json:"epoch"`
	MasterCSN uint64 `json:"masterCsn"`
	// Durability is the master's commit durability level (async,
	// dual-seq, quorum, sync-all).
	Durability string `json:"durability,omitempty"`
	// QuorumWatermark is the highest CSN durable under the master's
	// quorum policy; commits at or below it have their quorum of acks.
	QuorumWatermark uint64          `json:"quorumWatermark,omitempty"`
	Replicas        []ReplicaStatus `json:"replicas"`
	ReplicationLag  []PeerLag       `json:"replicationLag,omitempty"`
}

// ElementStatus is one storage element in the /status view.
type ElementStatus struct {
	ID         string   `json:"id"`
	Site       string   `json:"site"`
	Down       bool     `json:"down"`
	Partitions []string `json:"partitions"`
}

// MigrationStatus is one in-flight partition move.
type MigrationStatus struct {
	Partition string `json:"partition"`
	Phase     string `json:"phase"`
}

// CacheStatus is one site's FE/PoA subscriber read cache in the
// /status view: occupancy, hit/miss churn and the most recent
// epoch-bump invalidation (a fresh failover or migration shows up
// here as a partly guarded cache).
type CacheStatus struct {
	Site                     string `json:"site"`
	Entries                  int    `json:"entries"`
	Capacity                 int    `json:"capacity"`
	Hits                     uint64 `json:"hits"`
	Misses                   uint64 `json:"misses"`
	Evictions                uint64 `json:"evictions"`
	InvalidationsEpoch       uint64 `json:"invalidationsEpoch"`
	InvalidationsCSN         uint64 `json:"invalidationsCsn"`
	StaleRejects             uint64 `json:"staleRejects"`
	LastInvalidatedPartition string `json:"lastInvalidatedPartition,omitempty"`
	LastInvalidationEpoch    uint64 `json:"lastInvalidationEpoch,omitempty"`
}

// StatusResponse is the /status body: the consolidated OaM view —
// topology, placement epochs, replication lag, in-flight migrations,
// per-site FE cache state.
type StatusResponse struct {
	Sites      []string          `json:"sites"`
	Elements   []ElementStatus   `json:"elements"`
	Partitions []PartitionStatus `json:"partitions"`
	Migrations []MigrationStatus `json:"migrations"`
	Caches     []CacheStatus     `json:"caches,omitempty"`
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if !s.requireUDR(w) {
		return
	}
	writeJSON(w, http.StatusOK, s.status())
}

func (s *Server) status() StatusResponse {
	u := s.cfg.UDR
	resp := StatusResponse{Sites: u.Sites(), Migrations: []MigrationStatus{}}
	for _, elID := range u.Elements() {
		el := u.Element(elID)
		if el == nil {
			continue
		}
		resp.Elements = append(resp.Elements, ElementStatus{
			ID:         el.ID(),
			Site:       el.Site(),
			Down:       el.Down(),
			Partitions: el.Partitions(),
		})
	}
	for _, partID := range u.Partitions() {
		part, ok := u.Partition(partID)
		if !ok {
			continue
		}
		ps := PartitionStatus{ID: part.ID, HomeSite: part.HomeSite, Epoch: part.Epoch}
		for i, ref := range part.Replicas {
			rs := ReplicaStatus{
				Element: ref.Element,
				Site:    ref.Site,
				Role:    "slave",
			}
			if i == 0 {
				rs.Role = "master"
			}
			if el := u.Element(ref.Element); el != nil {
				rs.Up = !el.Down()
				if pr := el.Replica(partID); pr != nil {
					rs.Rows = pr.Store.Len()
					rs.CSN = pr.Store.CSN()
					rs.AppliedCSN = pr.Store.AppliedCSN()
					if i == 0 && pr.Store.Role() == store.Master {
						ps.MasterCSN = pr.Store.CSN()
						ps.Durability = pr.Repl.Durability().String()
						ps.QuorumWatermark = pr.Repl.QuorumWatermark()
						pending := pr.Repl.WatermarkLag()
						for _, st := range pr.Repl.SenderStats() {
							lag := uint64(0)
							if ps.MasterCSN > st.AckedCSN {
								lag = ps.MasterCSN - st.AckedCSN
							}
							ps.ReplicationLag = append(ps.ReplicationLag, PeerLag{
								Peer:        string(st.Peer),
								AckedCSN:    st.AckedCSN,
								QueueDepth:  st.QueueDepth,
								LagRecords:  lag,
								AcksPending: pending[st.Peer],
							})
						}
					}
				}
			}
			ps.Replicas = append(ps.Replicas, rs)
		}
		resp.Partitions = append(resp.Partitions, ps)
	}
	for part, phase := range u.MigrationsInFlight() {
		resp.Migrations = append(resp.Migrations, MigrationStatus{
			Partition: part, Phase: phase.String(),
		})
	}
	for _, cs := range u.CacheStats() {
		resp.Caches = append(resp.Caches, CacheStatus{
			Site:                     cs.Site,
			Entries:                  cs.Entries,
			Capacity:                 cs.Capacity,
			Hits:                     cs.Hits,
			Misses:                   cs.Misses,
			Evictions:                cs.Evictions,
			InvalidationsEpoch:       cs.InvalidationsEpoch,
			InvalidationsCSN:         cs.InvalidationsCSN,
			StaleRejects:             cs.StaleRejects,
			LastInvalidatedPartition: cs.LastInvalidatedPartition,
			LastInvalidationEpoch:    cs.LastInvalidationEpoch,
		})
	}
	return resp
}

// RepairRound is one anti-entropy peer round in the /admin/repair
// response.
type RepairRound struct {
	Partition         string `json:"partition"`
	Peer              string `json:"peer"`
	InSync            bool   `json:"inSync"`
	LeavesDiffed      int    `json:"leavesDiffed"`
	RowsShipped       int    `json:"rowsShipped"`
	RowsPulled        int    `json:"rowsPulled"`
	RowsRepairedLocal int    `json:"rowsRepairedLocal"`
	RowsRepairedPeer  int    `json:"rowsRepairedPeer"`
	Truncated         bool   `json:"truncated"`
	WatermarkAdvanced bool   `json:"watermarkAdvanced"`
}

// RepairResponse is the /admin/repair body.
type RepairResponse struct {
	Rounds []RepairRound `json:"rounds"`
	Error  string        `json:"error,omitempty"`
}

func repairRounds(stats []antientropy.Stats) []RepairRound {
	out := make([]RepairRound, 0, len(stats))
	for _, st := range stats {
		out = append(out, RepairRound{
			Partition:         st.Partition,
			Peer:              string(st.Peer),
			InSync:            st.InSync,
			LeavesDiffed:      st.LeavesDiffed,
			RowsShipped:       st.RowsShipped,
			RowsPulled:        st.RowsPulled,
			RowsRepairedLocal: st.RowsRepairedLocal,
			RowsRepairedPeer:  st.RowsRepairedPeer,
			Truncated:         st.Truncated,
			WatermarkAdvanced: st.WatermarkAdvanced,
		})
	}
	return out
}

func (s *Server) handleRepair(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) || !s.requireUDR(w) {
		return
	}
	u := s.cfg.UDR
	if !u.Config().AntiEntropy {
		writeJSON(w, http.StatusConflict, errorJSON{Error: "anti-entropy repair is disabled"})
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.AdminTimeout)
	defer cancel()
	var (
		stats []antientropy.Stats
		err   error
	)
	if part := r.FormValue("partition"); part != "" {
		stats, err = u.RepairPartition(ctx, part)
	} else {
		stats, err = u.RepairAll(ctx)
	}
	resp := RepairResponse{Rounds: repairRounds(stats)}
	if err != nil {
		resp.Error = err.Error()
		writeJSON(w, httpCode(err), resp)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// MoveResponse is the /admin/move body: the migration report.
type MoveResponse struct {
	Partition      string  `json:"partition"`
	Source         string  `json:"source"`
	Target         string  `json:"target"`
	Phase          string  `json:"phase"`
	RowsCopied     int     `json:"rowsCopied"`
	Batches        int     `json:"batches"`
	CatchUpRecords uint64  `json:"catchUpRecords"`
	FreezeSeconds  float64 `json:"freezeSeconds"`
	Seconds        float64 `json:"seconds"`
	Released       bool    `json:"released"`
	PeersLeft      int     `json:"peersLeftBehind"`
	Aborted        bool    `json:"aborted"`
	Error          string  `json:"error,omitempty"`
}

func moveResponse(rep *rebalance.Report, err error) MoveResponse {
	resp := MoveResponse{}
	if rep != nil {
		resp = MoveResponse{
			Partition:      rep.Partition,
			Source:         rep.Source,
			Target:         rep.Target,
			Phase:          rep.Phase.String(),
			RowsCopied:     rep.RowsCopied,
			Batches:        rep.Batches,
			CatchUpRecords: rep.CatchUpRecords,
			FreezeSeconds:  rep.FreezeDuration.Seconds(),
			Seconds:        rep.Duration.Seconds(),
			Released:       rep.Released,
			PeersLeft:      rep.PeersLeftBehind(),
			Aborted:        rep.Aborted,
		}
	}
	if err != nil {
		resp.Error = err.Error()
	}
	return resp
}

func (s *Server) handleMove(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) || !s.requireUDR(w) {
		return
	}
	part := r.FormValue("partition")
	target := r.FormValue("target")
	if part == "" || target == "" {
		writeJSON(w, http.StatusBadRequest, errorJSON{Error: "move wants ?partition= and ?target="})
		return
	}
	release := r.FormValue("release") == "true"
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.AdminTimeout)
	defer cancel()
	rep, err := s.cfg.UDR.MigratePartition(ctx, part, target, release)
	if err != nil {
		writeJSON(w, httpCode(err), moveResponse(rep, err))
		return
	}
	writeJSON(w, http.StatusOK, moveResponse(rep, nil))
}

// RebalanceResponse is the /admin/rebalance body.
type RebalanceResponse struct {
	Planned int            `json:"planned"`
	Failed  int            `json:"failed"`
	Moves   []MoveResponse `json:"moves"`
	Error   string         `json:"error,omitempty"`
}

func (s *Server) handleRebalance(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) || !s.requireUDR(w) {
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.AdminTimeout)
	defer cancel()
	res, err := s.cfg.UDR.Rebalance(ctx)
	resp := RebalanceResponse{Planned: len(res.Plan), Failed: res.Failed, Moves: []MoveResponse{}}
	for i, rep := range res.Reports {
		mv := moveResponse(rep, nil)
		if rep == nil {
			mv = MoveResponse{
				Partition: res.Plan[i].Partition,
				Source:    res.Plan[i].From,
				Target:    res.Plan[i].To,
				Aborted:   true,
				Error:     "rejected",
			}
		}
		resp.Moves = append(resp.Moves, mv)
	}
	if err != nil {
		resp.Error = err.Error()
		writeJSON(w, httpCode(err), resp)
		return
	}
	if res.Failed > 0 {
		resp.Error = fmt.Sprintf("%d of %d moves failed", res.Failed, len(res.Plan))
		writeJSON(w, http.StatusInternalServerError, resp)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}
