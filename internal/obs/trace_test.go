package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// traceServer serves the obs surface over a recorder pre-loaded with
// one synthetic two-span trace.
func traceServer(t *testing.T) (*trace.Recorder, trace.ID, *httptest.Server) {
	t.Helper()
	rec := trace.New(trace.Config{SampleRate: 1})
	root := rec.StartRoot("fe.MOCall", "eu-south/HLR-FE")
	child := rec.StartChild(root.Ctx(), "session.exec", "eu-south/fe-0")
	child.SetAttr("to", "eu-south/poa")
	child.End(nil)
	root.End(nil)
	ts := httptest.NewServer(NewServer(Config{Registry: metrics.NewRegistry(), Tracer: rec}).Handler())
	t.Cleanup(ts.Close)
	return rec, root.Ctx().Trace, ts
}

func getJSON(t *testing.T, url string, wantCode int, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		t.Fatalf("GET %s = %d, want %d", url, resp.StatusCode, wantCode)
	}
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatal(err)
		}
	}
}

func TestTraceRecentAndGet(t *testing.T) {
	_, id, ts := traceServer(t)

	var list TraceListResponse
	getJSON(t, ts.URL+"/trace/recent", http.StatusOK, &list)
	if len(list.Traces) != 1 || list.Traces[0].TraceID != id.String() {
		t.Fatalf("recent = %+v", list.Traces)
	}
	if list.Traces[0].Spans != 2 || list.Traces[0].Root.Name != "fe.MOCall" {
		t.Fatalf("summary = %+v", list.Traces[0])
	}

	var tr TraceResponse
	getJSON(t, ts.URL+"/trace/"+id.String(), http.StatusOK, &tr)
	if tr.Spans != 2 || len(tr.Roots) != 1 {
		t.Fatalf("trace = %+v", tr)
	}
	root := tr.Roots[0]
	if root.Name != "fe.MOCall" || root.Element != "eu-south/HLR-FE" || len(root.Children) != 1 {
		t.Fatalf("root = %+v", root)
	}
	if c := root.Children[0]; c.Name != "session.exec" || c.Attrs["to"] != "eu-south/poa" || c.ParentID != root.SpanID {
		t.Fatalf("child = %+v", c)
	}
}

func TestTraceSlow(t *testing.T) {
	rec, id, ts := traceServer(t)
	// A tail-worthy span: recorded directly with a synthetic duration
	// over the default threshold.
	h := rec.StartRoot("fe.IMSRegister", "americas/HSS-FE")
	h.EndWithDuration(3*time.Second, nil)

	var list TraceListResponse
	getJSON(t, ts.URL+"/trace/slow?n=1", http.StatusOK, &list)
	if len(list.Traces) != 1 {
		t.Fatalf("slow = %+v", list.Traces)
	}
	if got := list.Traces[0]; got.Root.Name != "fe.IMSRegister" || got.TraceID == id.String() {
		t.Fatalf("slowest = %+v", got)
	}
}

func TestTraceGetUnknownAndBadID(t *testing.T) {
	_, _, ts := traceServer(t)
	var e errorJSON
	getJSON(t, ts.URL+"/trace/00000000deadbeef", http.StatusNotFound, &e)
	if !strings.Contains(e.Error, "unknown trace") {
		t.Fatalf("error = %q", e.Error)
	}
	getJSON(t, ts.URL+"/trace/not-hex", http.StatusBadRequest, &e)
}

// TestTraceEndpointsWithoutTracer pins the disabled-tracing contract:
// the routes answer 200 with empty listings, not errors.
func TestTraceEndpointsWithoutTracer(t *testing.T) {
	ts := httptest.NewServer(NewServer(Config{Registry: metrics.NewRegistry()}).Handler())
	t.Cleanup(ts.Close)

	for _, path := range []string{"/trace/recent", "/trace/slow"} {
		var list TraceListResponse
		getJSON(t, ts.URL+path, http.StatusOK, &list)
		if len(list.Traces) != 0 || list.SampleRate != 0 {
			t.Fatalf("%s = %+v", path, list)
		}
	}
	getJSON(t, ts.URL+"/trace/00000000deadbeef", http.StatusNotFound, nil)
}

// TestExpositionExemplars checks the OpenMetrics-style exemplar
// suffix on histogram bucket lines.
func TestExpositionExemplars(t *testing.T) {
	reg := metrics.NewRegistry()
	var h metrics.Histogram
	reg.Histogram("udr_test_latency_seconds", "t.", "site").Attach(&h, "eu-south")
	h.Record(3 * time.Millisecond)
	h.SetExemplar(3*time.Millisecond, "00000000deadbeef")

	var sb strings.Builder
	if err := WriteExposition(&sb, reg.Gather()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	want := `# {trace_id="00000000deadbeef"} 0.003`
	if !strings.Contains(out, want) {
		t.Fatalf("exposition lacks exemplar %q:\n%s", want, out)
	}
}
