package obs

import (
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/trace"
)

// SpanJSON is one span in the /trace views, children nested. Span and
// trace IDs render as the same 16-hex-digit form udrctl prints and
// the metrics exemplars carry.
type SpanJSON struct {
	TraceID         string            `json:"traceId"`
	SpanID          string            `json:"spanId"`
	ParentID        string            `json:"parentId,omitempty"`
	Name            string            `json:"name"`
	Element         string            `json:"element"`
	Start           time.Time         `json:"start"`
	DurationSeconds float64           `json:"durationSeconds"`
	Error           string            `json:"error,omitempty"`
	Attrs           map[string]string `json:"attrs,omitempty"`
	Tail            bool              `json:"tail,omitempty"`
	Children        []SpanJSON        `json:"children,omitempty"`
}

func spanJSON(sp trace.Span) SpanJSON {
	out := SpanJSON{
		TraceID:         sp.Trace.String(),
		SpanID:          sp.ID.String(),
		Name:            sp.Name,
		Element:         sp.Element,
		Start:           sp.Start,
		DurationSeconds: sp.Duration.Seconds(),
		Error:           sp.Err,
		Tail:            sp.Tail,
	}
	if sp.Parent != 0 {
		out.ParentID = sp.Parent.String()
	}
	if len(sp.Attrs) > 0 {
		out.Attrs = make(map[string]string, len(sp.Attrs))
		for _, a := range sp.Attrs {
			out.Attrs[a.Key] = a.Value
		}
	}
	return out
}

func nodeJSON(n *trace.Node) SpanJSON {
	out := spanJSON(n.Span)
	for _, c := range n.Children {
		out.Children = append(out.Children, nodeJSON(c))
	}
	return out
}

// TraceSummaryJSON is one trace in the /trace/recent listing.
type TraceSummaryJSON struct {
	TraceID string   `json:"traceId"`
	Spans   int      `json:"spans"`
	Root    SpanJSON `json:"root"`
}

// TraceListResponse is the /trace/recent and /trace/slow body. An
// endpoint with no tracer attached (or nothing sampled yet) serves an
// empty listing, not an error.
type TraceListResponse struct {
	SampleRate float64            `json:"sampleRate"`
	Traces     []TraceSummaryJSON `json:"traces"`
}

// TraceResponse is the /trace/{id} body.
type TraceResponse struct {
	TraceID string     `json:"traceId"`
	Spans   int        `json:"spans"`
	Roots   []SpanJSON `json:"roots"`
}

// traceN parses the ?n= listing bound (default def, capped at 256).
func traceN(r *http.Request, def int) int {
	n := def
	if s := r.FormValue("n"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			n = v
		}
	}
	if n > 256 {
		n = 256
	}
	return n
}

func (s *Server) handleTraceRecent(w http.ResponseWriter, r *http.Request) {
	tr := s.cfg.Tracer
	resp := TraceListResponse{SampleRate: tr.SampleRate(), Traces: []TraceSummaryJSON{}}
	for _, sum := range tr.Recent(traceN(r, 20)) {
		resp.Traces = append(resp.Traces, TraceSummaryJSON{
			TraceID: sum.Trace.String(),
			Spans:   sum.Spans,
			Root:    spanJSON(sum.Root),
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleTraceSlow(w http.ResponseWriter, r *http.Request) {
	tr := s.cfg.Tracer
	resp := TraceListResponse{SampleRate: tr.SampleRate(), Traces: []TraceSummaryJSON{}}
	for _, root := range tr.Slow(traceN(r, 10)) {
		resp.Traces = append(resp.Traces, TraceSummaryJSON{
			TraceID: root.Trace.String(),
			Spans:   len(tr.Get(root.Trace)),
			Root:    spanJSON(root),
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleTraceGet(w http.ResponseWriter, r *http.Request) {
	idStr := strings.TrimPrefix(r.URL.Path, "/trace/")
	id, err := trace.ParseID(idStr)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorJSON{Error: "bad trace id: " + idStr})
		return
	}
	spans := s.cfg.Tracer.Get(id)
	if len(spans) == 0 {
		writeJSON(w, http.StatusNotFound, errorJSON{Error: "unknown trace (never sampled, or already overwritten): " + idStr})
		return
	}
	resp := TraceResponse{TraceID: id.String(), Spans: len(spans)}
	for _, n := range trace.BuildTree(spans) {
		resp.Roots = append(resp.Roots, nodeJSON(n))
	}
	writeJSON(w, http.StatusOK, resp)
}
