// Package ps implements the provisioning system (§2.4): the UDR
// client that creates, modifies and removes subscriptions. A PS
// instance is co-located with a UDR PoA (§3.3.3 decision 1) and holds
// a PolicyPS session: reads hit master copies only, so provisioning
// transactions never act on stale data — at the price of failing
// whenever the master is unreachable (PC/EC, the red points of
// Figure 6).
//
// The package also models batch provisioning (§3.3, §4.1): a long
// sequence of provisioning transactions whose fate under backbone
// glitches experiment E10 measures.
package ps

import (
	"context"
	"errors"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/se"
	"repro/internal/simnet"
	"repro/internal/store"
	"repro/internal/subscriber"
)

// PS is one provisioning system instance.
type PS struct {
	session *core.Session
	site    string

	// Provisioned / Failed count provisioning transactions.
	Provisioned metrics.Counter
	Failed      metrics.Counter
	// Latency tracks provisioning transaction latency.
	Latency metrics.Histogram
}

// New creates a PS at the given site, talking to the co-located PoA.
func New(net *simnet.Network, site, name string) *PS {
	return &PS{
		session: core.NewSession(net, simnet.MakeAddr(site, name), site, core.PolicyPS),
		site:    site,
	}
}

// NewWithSession creates a PS over an existing session.
func NewWithSession(site string, session *core.Session) *PS {
	return &PS{session: session, site: site}
}

// Session exposes the underlying session.
func (p *PS) Session() *core.Session { return p.session }

// Site returns the PS's site.
func (p *PS) Site() string { return p.site }

// Provision creates one subscription as a single UDR transaction
// (the UDC simplification of Figure 4: one write target, atomic).
func (p *PS) Provision(ctx context.Context, prof *subscriber.Profile) error {
	start := time.Now()
	_, err := p.session.Provision(ctx, prof)
	p.Latency.Record(time.Since(start))
	if err != nil {
		p.Failed.Inc()
		return err
	}
	p.Provisioned.Inc()
	return nil
}

// Activate flips the subscription active (the shop-floor SIM
// activation of §4.1: unattended, triggered when the user powers the
// device).
func (p *PS) Activate(ctx context.Context, subscriberID string) error {
	return p.modify(ctx, subscriberID,
		store.Mod{Kind: store.ModReplace, Attr: subscriber.AttrActive, Vals: []string{"TRUE"}})
}

// SetPremiumBarring sets or clears the hi-toll barring flag of §3.2's
// example, reading the current profile and writing the flag in one
// master-side transaction.
func (p *PS) SetPremiumBarring(ctx context.Context, subscriberID string, barred bool) error {
	val := "FALSE"
	if barred {
		val = "TRUE"
	}
	// Read + write in one storage-element transaction: PS reads are
	// master-copy reads precisely so this pattern is safe (§3.3.3).
	_, err := p.session.Exec(ctx, core.ExecReq{
		SubscriberID: subscriberID,
		Ops: []se.TxnOp{
			{Kind: se.TxnGet, Key: subscriberID},
			{Kind: se.TxnModify, Key: subscriberID, Mods: []store.Mod{{
				Kind: store.ModReplace, Attr: subscriber.AttrBarPremium, Vals: []string{val},
			}}},
		},
	})
	if err != nil {
		p.Failed.Inc()
	}
	return err
}

// SetCallForwarding sets the unconditional forwarding target.
func (p *PS) SetCallForwarding(ctx context.Context, subscriberID, forwardTo string) error {
	mod := store.Mod{Kind: store.ModReplace, Attr: subscriber.AttrForwardUncond}
	if forwardTo != "" {
		mod.Vals = []string{forwardTo}
	}
	return p.modify(ctx, subscriberID, mod)
}

// Deprovision removes a subscription.
func (p *PS) Deprovision(ctx context.Context, subscriberID string) error {
	start := time.Now()
	_, err := p.session.Deprovision(ctx, subscriberID)
	p.Latency.Record(time.Since(start))
	if err != nil {
		p.Failed.Inc()
		return err
	}
	return nil
}

func (p *PS) modify(ctx context.Context, subscriberID string, mods ...store.Mod) error {
	_, err := p.session.Exec(ctx, core.ExecReq{
		SubscriberID: subscriberID,
		Ops:          []se.TxnOp{{Kind: se.TxnModify, Key: subscriberID, Mods: mods}},
	})
	if err != nil {
		p.Failed.Inc()
	}
	return err
}

// BatchResult reports a provisioning batch run (§4.1).
type BatchResult struct {
	Total     int
	Succeeded int
	Failed    int
	// Aborted reports whether the batch stopped early (stop-on-error
	// mode, the batch style that loses hours of work to a 30 s
	// glitch).
	Aborted bool
	// FirstErr is the error that aborted or first failed the batch.
	FirstErr error
	Duration time.Duration
}

// FailureRate returns the failed fraction.
func (r BatchResult) FailureRate() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Failed) / float64(r.Total)
}

// RunBatch provisions profiles sequentially, pacing one transaction
// every interval (0 = as fast as possible). In stop-on-error mode the
// batch aborts on the first failure, modelling §4.1's "a network
// glitch as short as 30 seconds may cause a batch that's been running
// for hours to fail"; otherwise it continues and reports the failed
// subset the operator must re-apply manually.
func (p *PS) RunBatch(ctx context.Context, profiles []*subscriber.Profile, interval time.Duration, stopOnError bool) BatchResult {
	res := BatchResult{Total: len(profiles)}
	start := time.Now()
	for _, prof := range profiles {
		if interval > 0 {
			select {
			case <-time.After(interval):
			case <-ctx.Done():
				res.Aborted = true
				if res.FirstErr == nil {
					res.FirstErr = ctx.Err()
				}
				res.Duration = time.Since(start)
				return res
			}
		}
		if err := p.Provision(ctx, prof); err != nil {
			res.Failed++
			if res.FirstErr == nil {
				res.FirstErr = err
			}
			if stopOnError {
				res.Aborted = true
				break
			}
			continue
		}
		res.Succeeded++
	}
	res.Duration = time.Since(start)
	return res
}

// ErrNodeDown is injected by the pre-UDC model's failure hook.
var ErrNodeDown = errors.New("ps: provisioning target node down")

// PreUDCNetwork models the pre-UDC provisioning landscape of
// Figure 3: subscription data written to one HSS node and location
// tuples written to every SLF instance, with no transaction spanning
// them (§2.4: NF instances provide no cross-node transactionality).
// A failure between the writes leaves the network inconsistent,
// requiring manual intervention — the count experiment E2 compares
// against the UDC path's zero.
type PreUDCNetwork struct {
	HSS  map[string]*subscriber.Profile
	SLF1 map[string]string // identity -> HSS node address
	SLF2 map[string]string

	// FailAfter injects a crash after the n-th write of a
	// provisioning flow (1-based); 0 disables.
	FailAfter int

	// PartialStates counts provisioning flows that ended with some
	// but not all writes applied.
	PartialStates metrics.Counter
}

// NewPreUDC returns an empty pre-UDC provisioning model.
func NewPreUDC() *PreUDCNetwork {
	return &PreUDCNetwork{
		HSS:  make(map[string]*subscriber.Profile),
		SLF1: make(map[string]string),
		SLF2: make(map[string]string),
	}
}

// Provision runs the multi-node provisioning flow. Each write is a
// separate, unprotected step.
func (n *PreUDCNetwork) Provision(prof *subscriber.Profile) error {
	writes := 0
	step := func(apply func()) error {
		writes++
		if n.FailAfter > 0 && writes > n.FailAfter {
			if writes > 1 && writes <= 3 {
				n.PartialStates.Inc()
			}
			return ErrNodeDown
		}
		apply()
		return nil
	}
	// Write 1: subscription data on the HSS instance.
	if err := step(func() { n.HSS[prof.ID] = prof }); err != nil {
		return err
	}
	// Writes 2..3: identity-location tuples on every SLF instance.
	if err := step(func() {
		for _, id := range prof.Identities() {
			n.SLF1[id.String()] = "hss-1"
		}
	}); err != nil {
		return err
	}
	if err := step(func() {
		for _, id := range prof.Identities() {
			n.SLF2[id.String()] = "hss-1"
		}
	}); err != nil {
		return err
	}
	return nil
}

// Consistent reports whether the three nodes agree about a
// subscription (fully present or fully absent).
func (n *PreUDCNetwork) Consistent(prof *subscriber.Profile) bool {
	_, inHSS := n.HSS[prof.ID]
	id := prof.Identities()[0].String()
	_, inSLF1 := n.SLF1[id]
	_, inSLF2 := n.SLF2[id]
	return inHSS == inSLF1 && inSLF1 == inSLF2
}
