package ps

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/simnet"
	"repro/internal/subscriber"
)

func newUDR(t *testing.T) (*simnet.Network, *core.UDR) {
	t.Helper()
	net := simnet.New(simnet.FastConfig())
	u, err := core.New(net, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(u.Stop)
	return net, u
}

func ctxT(t *testing.T) context.Context {
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestProvisionAndActivate(t *testing.T) {
	net, u := newUDR(t)
	ctx := ctxT(t)
	site := u.Sites()[0]
	system := New(net, site, "ps-1")

	prof := subscriber.NewGenerator(u.Sites()...).Profile(1)
	prof.Active = false
	if err := system.Provision(ctx, prof); err != nil {
		t.Fatal(err)
	}
	if system.Provisioned.Value() != 1 {
		t.Fatalf("provisioned = %d", system.Provisioned.Value())
	}

	if err := system.Activate(ctx, prof.ID); err != nil {
		t.Fatal(err)
	}
	got, _, _, err := system.Session().ReadProfile(ctx,
		subscriber.Identity{Type: subscriber.IMSI, Value: prof.IMSIVal})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Active {
		t.Fatal("activation not applied")
	}
}

func TestSetPremiumBarring(t *testing.T) {
	net, u := newUDR(t)
	ctx := ctxT(t)
	site := u.Sites()[0]
	system := New(net, site, "ps-1")
	prof := subscriber.NewGenerator(u.Sites()...).Profile(2)
	if err := system.Provision(ctx, prof); err != nil {
		t.Fatal(err)
	}
	if err := system.SetPremiumBarring(ctx, prof.ID, true); err != nil {
		t.Fatal(err)
	}
	got, _, _, err := system.Session().ReadProfile(ctx,
		subscriber.Identity{Type: subscriber.MSISDN, Value: prof.MSISDNVal})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Services.BarPremium {
		t.Fatal("barring not applied")
	}
	if err := system.SetPremiumBarring(ctx, prof.ID, false); err != nil {
		t.Fatal(err)
	}
}

func TestSetCallForwarding(t *testing.T) {
	net, u := newUDR(t)
	ctx := ctxT(t)
	system := New(net, u.Sites()[0], "ps-1")
	prof := subscriber.NewGenerator(u.Sites()...).Profile(3)
	if err := system.Provision(ctx, prof); err != nil {
		t.Fatal(err)
	}
	if err := system.SetCallForwarding(ctx, prof.ID, "34612345678"); err != nil {
		t.Fatal(err)
	}
	got, _, _, _ := system.Session().ReadProfile(ctx,
		subscriber.Identity{Type: subscriber.IMSI, Value: prof.IMSIVal})
	if got.Services.ForwardUnconditional != "34612345678" {
		t.Fatalf("cfu = %q", got.Services.ForwardUnconditional)
	}
	// Clearing.
	if err := system.SetCallForwarding(ctx, prof.ID, ""); err != nil {
		t.Fatal(err)
	}
	got, _, _, _ = system.Session().ReadProfile(ctx,
		subscriber.Identity{Type: subscriber.IMSI, Value: prof.IMSIVal})
	if got.Services.ForwardUnconditional != "" {
		t.Fatalf("cfu not cleared: %q", got.Services.ForwardUnconditional)
	}
}

func TestDeprovision(t *testing.T) {
	net, u := newUDR(t)
	ctx := ctxT(t)
	system := New(net, u.Sites()[0], "ps-1")
	prof := subscriber.NewGenerator(u.Sites()...).Profile(4)
	if err := system.Provision(ctx, prof); err != nil {
		t.Fatal(err)
	}
	if err := system.Deprovision(ctx, prof.ID); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := system.Session().ReadProfile(ctx,
		subscriber.Identity{Type: subscriber.IMSI, Value: prof.IMSIVal}); err == nil {
		t.Fatal("deprovisioned subscription still readable")
	}
}

func TestProvisionFailsThroughPartition(t *testing.T) {
	net, u := newUDR(t)
	ctx := ctxT(t)
	site := u.Sites()[0]
	system := New(net, site, "ps-1")

	prof := subscriber.NewGenerator(u.Sites()...).Profile(5)
	// Home the profile away from the PS, then partition the PS's
	// site: the provisioning write cannot reach the master.
	for _, s := range u.Sites() {
		if s != site {
			prof.HomeRegion = s
			break
		}
	}
	net.Partition([]string{site})
	defer net.Heal()
	err := system.Provision(ctx, prof)
	if err == nil {
		t.Fatal("provisioning through a partition succeeded")
	}
	if system.Failed.Value() != 1 {
		t.Fatalf("failed counter = %d", system.Failed.Value())
	}
}

func TestRunBatchCompletes(t *testing.T) {
	net, u := newUDR(t)
	ctx := ctxT(t)
	system := New(net, u.Sites()[0], "ps-1")
	gen := subscriber.NewGenerator(u.Sites()...)
	var profiles []*subscriber.Profile
	for i := 10; i < 30; i++ {
		profiles = append(profiles, gen.Profile(i))
	}
	res := system.RunBatch(ctx, profiles, 0, true)
	if res.Succeeded != 20 || res.Failed != 0 || res.Aborted {
		t.Fatalf("batch = %+v", res)
	}
	if res.FailureRate() != 0 {
		t.Fatalf("failure rate = %v", res.FailureRate())
	}
}

func TestRunBatchStopOnErrorAborts(t *testing.T) {
	net, u := newUDR(t)
	ctx := ctxT(t)
	site := u.Sites()[0]
	system := New(net, site, "ps-1")
	gen := subscriber.NewGenerator(u.Sites()...)
	var profiles []*subscriber.Profile
	for i := 40; i < 60; i++ {
		profiles = append(profiles, gen.Profile(i))
	}

	// Glitch the batch mid-run (§4.1): let a few items complete
	// before the backbone drops.
	done := make(chan struct{})
	time.AfterFunc(20*time.Millisecond, func() {
		failure.Glitch(ctx, net, []string{site}, 50*time.Millisecond)
		close(done)
	})
	res := system.RunBatch(ctx, profiles, 2*time.Millisecond, true)
	<-done
	if !res.Aborted {
		t.Fatalf("batch not aborted: %+v", res)
	}
	if res.Succeeded == 0 {
		t.Fatal("nothing completed before the glitch")
	}
	if res.FirstErr == nil {
		t.Fatal("no first error recorded")
	}
}

func TestRunBatchContinueOnError(t *testing.T) {
	net, u := newUDR(t)
	ctx := ctxT(t)
	site := u.Sites()[0]
	system := New(net, site, "ps-1")
	gen := subscriber.NewGenerator(u.Sites()...)
	var profiles []*subscriber.Profile
	for i := 70; i < 90; i++ {
		profiles = append(profiles, gen.Profile(i))
	}
	done := failure.GlitchAsync(ctx, net, []string{site}, 30*time.Millisecond)
	res := system.RunBatch(ctx, profiles, 2*time.Millisecond, false)
	<-done
	if res.Aborted {
		t.Fatalf("lenient batch aborted: %+v", res)
	}
	if res.Succeeded+res.Failed != res.Total {
		t.Fatalf("accounting broken: %+v", res)
	}
	if res.Failed == 0 {
		t.Fatal("glitch caused no failures (local-region only?)")
	}
}

func TestRunBatchContextCancel(t *testing.T) {
	net, u := newUDR(t)
	system := New(net, u.Sites()[0], "ps-1")
	gen := subscriber.NewGenerator(u.Sites()...)
	var profiles []*subscriber.Profile
	for i := 0; i < 10; i++ {
		profiles = append(profiles, gen.Profile(100+i))
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := system.RunBatch(ctx, profiles, time.Millisecond, true)
	if !res.Aborted {
		t.Fatalf("cancelled batch not aborted: %+v", res)
	}
}

func TestPreUDCPartialStates(t *testing.T) {
	gen := subscriber.NewGenerator("r1")
	pre := NewPreUDC()

	// Healthy flow: consistent.
	if err := pre.Provision(gen.Profile(0)); err != nil {
		t.Fatal(err)
	}
	if !pre.Consistent(gen.Profile(0)) {
		t.Fatal("healthy flow inconsistent")
	}

	// Crash after the HSS write: HSS has data, SLFs don't.
	pre.FailAfter = 1
	if err := pre.Provision(gen.Profile(1)); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("err = %v", err)
	}
	if pre.Consistent(gen.Profile(1)) {
		t.Fatal("partial flow reported consistent")
	}
	if pre.PartialStates.Value() != 1 {
		t.Fatalf("partial states = %d", pre.PartialStates.Value())
	}

	// Crash after the first SLF write: two of three nodes updated.
	pre.FailAfter = 2
	if err := pre.Provision(gen.Profile(2)); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("err = %v", err)
	}
	if pre.Consistent(gen.Profile(2)) {
		t.Fatal("partial flow reported consistent")
	}

	// Crash before everything: nothing written, still consistent.
	pre.FailAfter = 3
	if err := pre.Provision(gen.Profile(3)); err != nil {
		t.Fatal(err)
	}
	if !pre.Consistent(gen.Profile(3)) {
		t.Fatal("complete flow inconsistent")
	}
}
