package ps

import "repro/internal/metrics"

// RegisterMetrics attaches the provisioning system's instruments to a
// registry. instance names this PS in the labels (a PS carries no
// name of its own). Safe to call again: Attach replaces any prior
// binding for the same label set.
func (p *PS) RegisterMetrics(reg *metrics.Registry, instance string) {
	reg.Counter("udr_ps_provisioned_total",
		"Provisioning transactions completed.",
		"site", "ps").Attach(&p.Provisioned, p.site, instance)
	reg.Counter("udr_ps_failed_total",
		"Provisioning transactions failed.",
		"site", "ps").Attach(&p.Failed, p.site, instance)
	reg.Histogram("udr_ps_latency_seconds",
		"Provisioning transaction latency.",
		"site", "ps").Attach(&p.Latency, p.site, instance)
}
