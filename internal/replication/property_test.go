package replication

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/store"
)

// mmWrite is one generated write in the multi-master convergence
// property test.
type mmWrite struct {
	Replica uint8 // which replica accepts the write
	Key     uint8 // %6 keys
	Attr    uint8 // %3 attrs
	Val     uint8
	Delete  bool
}

// applyDirect commits one write locally on a multi-master store.
func applyDirect(st *store.Store, w mmWrite) error {
	txn := st.Begin(store.ReadCommitted)
	key := fmt.Sprintf("k%d", w.Key%6)
	if w.Delete {
		txn.Delete(key)
	} else {
		txn.Put(key, store.Entry{
			fmt.Sprintf("a%d", w.Attr%3): {fmt.Sprint(w.Val)},
		})
	}
	_, err := txn.Commit()
	return err
}

// TestMultiMasterMergeConvergesProperty: three fully partitioned
// multi-master replicas accept arbitrary writes independently; after
// pairwise pull-based anti-entropy runs to fixpoint, all replicas
// hold identical state — for any write interleaving. This is the §5
// consistency-restoration contract: deterministic resolvers guarantee
// one single view regardless of merge order.
func TestMultiMasterMergeConvergesProperty(t *testing.T) {
	// Replicas are built through the package constructor with no
	// network attached; merges are driven in-process via
	// buildSyncResp/mergeRow, which is exactly what SyncWith
	// exchanges over the wire.
	g := func(writes []mmWrite) bool {
		const replicas = 3
		nodes := make([]*Node, replicas)
		reps := make([]*Replica, replicas)
		for i := range reps {
			nodes[i] = NewNode(nil, "")
			st := store.New(fmt.Sprintf("r%d", i))
			st.SetMultiMaster(true)
			reps[i] = nodes[i].AddReplica("p", st)
			reps[i].SetResolver(LWW{})
		}
		defer func() {
			for _, n := range nodes {
				n.Stop()
			}
		}()

		// Fully partitioned: writes land only on their replica.
		for _, w := range writes {
			if err := applyDirect(reps[w.Replica%replicas].Store(), w); err != nil {
				return false
			}
		}

		// Anti-entropy to fixpoint: every replica pulls every other
		// replica's dominant rows (the in-process equivalent of
		// SyncWith), twice to propagate transitively.
		for round := 0; round < 2; round++ {
			for i := range reps {
				for j := range reps {
					if i == j {
						continue
					}
					resp := reps[j].buildSyncResp(reps[i].Store().AllMeta())
					for _, row := range resp.Rows {
						reps[i].mergeRow(row)
					}
				}
			}
		}

		// All replicas identical (live rows and tombstones).
		for i := 1; i < replicas; i++ {
			if !storesEqual(reps[0].Store(), reps[i].Store()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(g, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// storesEqual compares the live contents of two stores.
func storesEqual(a, b *store.Store) bool {
	if a.Len() != b.Len() {
		return false
	}
	for _, k := range a.Keys() {
		ae, _, _ := a.GetCommitted(k)
		be, _, ok := b.GetCommitted(k)
		if !ok || !ae.Equal(be) {
			return false
		}
	}
	return true
}

// TestMergeRowIdempotentProperty: merging the same incoming row twice
// leaves the same state as merging it once.
func TestMergeRowIdempotentProperty(t *testing.T) {
	f := func(val1, val2 uint8, ts1, ts2 uint16) bool {
		node := NewNode(nil, "")
		defer node.Stop()
		st := store.New("local")
		st.SetMultiMaster(true)
		rep := node.AddReplica("p", st)
		rep.SetResolver(LWW{})

		// Seed a local version.
		txn := st.Begin(store.ReadCommitted)
		txn.Put("k", store.Entry{"v": {fmt.Sprint(val1)}})
		if _, err := txn.Commit(); err != nil {
			return false
		}

		incoming := RowTransfer{
			Key:   "k",
			Entry: store.Entry{"v": {fmt.Sprint(val2)}},
			Meta: store.Meta{
				WallTS: int64(ts2),
				VC:     map[string]uint64{"peer": uint64(ts1)%5 + 1},
			},
		}
		rep.mergeRow(incoming)
		after1, _, _ := st.GetAny("k")
		m1, _ := st.MetaOf("k")
		rep.mergeRow(incoming)
		after2, _, _ := st.GetAny("k")
		m2, _ := st.MetaOf("k")
		return after1.Equal(after2) && m1.VC.Compare(m2.VC) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
