package replication

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/simnet"
	"repro/internal/store"
)

// QuorumMode selects how the Quorum durability level derives its
// required acknowledgement set from the current peer topology.
type QuorumMode int

const (
	// QuorumMajority requires a majority of all copies (master plus
	// peers). The master's own commit counts as one vote, so with two
	// slaves a single slave ack completes the quorum — the classic
	// "durable at median-replica RTT" configuration.
	QuorumMajority QuorumMode = iota
	// QuorumCount requires a fixed number of peer acknowledgements
	// (clamped to the number of eligible peers, mirroring SyncAll's
	// "all configured peers" semantics when oversized).
	QuorumCount
	// QuorumSiteAware requires acknowledgements split by geography:
	// Local copies at the master's site (the master itself counts as
	// one) and Remote copies at other sites. "One local + one remote"
	// survives a full-site loss while paying only the nearest remote
	// peer's RTT.
	QuorumSiteAware
)

// QuorumPolicy configures the Quorum durability level. The zero value
// is a majority quorum.
type QuorumPolicy struct {
	Mode QuorumMode
	// K is the required peer-ack count for QuorumCount.
	K int
	// Local and Remote are the required copy counts per geography for
	// QuorumSiteAware. The master's own copy counts toward Local.
	Local, Remote int
}

// Majority returns the default majority policy.
func Majority() QuorumPolicy { return QuorumPolicy{Mode: QuorumMajority} }

// String renders the policy in the same syntax ParseQuorumPolicy
// accepts.
func (p QuorumPolicy) String() string {
	switch p.Mode {
	case QuorumCount:
		return fmt.Sprintf("k=%d", p.K)
	case QuorumSiteAware:
		return fmt.Sprintf("site:%d+%d", p.Local, p.Remote)
	}
	return "majority"
}

// ParseQuorumPolicy parses an operator-facing policy string:
//
//	majority          majority of all copies (default)
//	k=N               N peer acknowledgements
//	site              one local + one remote copy (site:1+1)
//	site:L+R          L local copies (master included) + R remote
func ParseQuorumPolicy(s string) (QuorumPolicy, error) {
	switch t := strings.TrimSpace(strings.ToLower(s)); {
	case t == "" || t == "majority":
		return QuorumPolicy{Mode: QuorumMajority}, nil
	case t == "site":
		return QuorumPolicy{Mode: QuorumSiteAware, Local: 1, Remote: 1}, nil
	case strings.HasPrefix(t, "site:"):
		parts := strings.SplitN(strings.TrimPrefix(t, "site:"), "+", 2)
		if len(parts) != 2 {
			return QuorumPolicy{}, fmt.Errorf("replication: bad site policy %q (want site:L+R)", s)
		}
		l, err1 := strconv.Atoi(parts[0])
		r, err2 := strconv.Atoi(parts[1])
		if err1 != nil || err2 != nil || l < 0 || r < 0 || l+r == 0 {
			return QuorumPolicy{}, fmt.Errorf("replication: bad site policy %q (want site:L+R)", s)
		}
		return QuorumPolicy{Mode: QuorumSiteAware, Local: l, Remote: r}, nil
	case strings.HasPrefix(t, "k=") || strings.HasPrefix(t, "count="):
		k, err := strconv.Atoi(t[strings.IndexByte(t, '=')+1:])
		if err != nil || k < 1 {
			return QuorumPolicy{}, fmt.Errorf("replication: bad count policy %q (want k=N)", s)
		}
		return QuorumPolicy{Mode: QuorumCount, K: k}, nil
	default:
		return QuorumPolicy{}, fmt.Errorf("replication: unknown quorum policy %q", s)
	}
}

// SetQuorumPolicy installs the policy the Quorum durability level
// evaluates. Waiters blocked on the old policy re-evaluate against the
// new one immediately.
func (r *Replica) SetQuorumPolicy(p QuorumPolicy) {
	r.mu.Lock()
	r.policy = p
	r.refreshQuorumLocked()
	r.mu.Unlock()
}

// QuorumPolicy returns the configured policy.
func (r *Replica) QuorumPolicy() QuorumPolicy {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.policy
}

// QuorumWatermark returns the highest CSN known to satisfy the quorum
// policy: every commit at or below it is applied on enough replicas
// that the configured quorum holds. Maintained on every peer
// acknowledgement while the replica masters its partition; monotonic
// across policy and peer changes.
func (r *Replica) QuorumWatermark() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.quorumWM
}

// QuorumSize returns the number of copies (master included) the
// current policy requires against the current peer set.
func (r *Replica) QuorumSize() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	needLocal, needRemote := r.requiredAcksLocked()
	return needLocal + needRemote + 1
}

// requiredAcksLocked derives the peer-ack requirement from the policy
// and the current eligible (non-standby) peer set. For QuorumCount
// and QuorumMajority the requirement is geography-blind and returned
// entirely in needLocal's place via needRemote=0 semantics — callers
// that need the split use eligibleLocked.
func (r *Replica) requiredAcksLocked() (needLocal, needRemote int) {
	local, remote := r.eligibleLocked()
	switch r.policy.Mode {
	case QuorumCount:
		k := r.policy.K
		if n := len(local) + len(remote); k > n {
			k = n
		}
		return k, 0
	case QuorumSiteAware:
		nl := r.policy.Local - 1 // the master is one local copy
		if nl < 0 {
			nl = 0
		}
		if nl > len(local) {
			nl = len(local)
		}
		nr := r.policy.Remote
		if nr > len(remote) {
			nr = len(remote)
		}
		return nl, nr
	default: // QuorumMajority
		n := len(local) + len(remote) + 1 // all copies, master included
		return n/2 + 1 - 1, 0             // majority minus the master's own vote
	}
}

// eligibleLocked splits the non-standby senders by geography relative
// to the master's site, in peer order.
func (r *Replica) eligibleLocked() (local, remote []*sender) {
	site := r.node.addr.Site()
	for _, p := range r.peers {
		s, ok := r.senders[p]
		if !ok || s.standby {
			continue
		}
		if p.Site() == site {
			local = append(local, s)
		} else {
			remote = append(remote, s)
		}
	}
	return local, remote
}

// kthAcked returns the k-th highest acknowledged CSN among the
// senders — the highest CSN at least k of them have confirmed. k=0
// imposes no constraint (reported as ^uint64(0), for min-combining).
func kthAcked(senders []*sender, k int) uint64 {
	if k <= 0 {
		return ^uint64(0)
	}
	if k > len(senders) {
		return 0
	}
	acked := make([]uint64, 0, len(senders))
	for _, s := range senders {
		acked = append(acked, s.ackedCSN())
	}
	sort.Slice(acked, func(i, j int) bool { return acked[i] > acked[j] })
	return acked[k-1]
}

// refreshQuorumLocked recomputes the quorum watermark from the current
// acknowledgement state and wakes any commit waiting on it. Called
// under r.mu whenever an ack arrives or the peer set / policy changes.
func (r *Replica) refreshQuorumLocked() {
	if r.store.MultiMaster() || r.store.Role() != store.Master {
		return
	}
	var wm uint64
	switch r.policy.Mode {
	case QuorumSiteAware:
		local, remote := r.eligibleLocked()
		needLocal, needRemote := r.requiredAcksLocked()
		wm = minU64(kthAcked(local, needLocal), kthAcked(remote, needRemote))
	default:
		local, remote := r.eligibleLocked()
		need, _ := r.requiredAcksLocked()
		wm = kthAcked(append(local, remote...), need)
	}
	if head := r.headCSN.Load(); wm > head {
		// No peer requirement (or acks racing ahead of the stage):
		// the quorum frontier never passes the staged head.
		wm = head
	}
	if wm > r.quorumWM {
		r.quorumWM = wm
	}
	if r.ackCh != nil {
		close(r.ackCh)
		r.ackCh = nil
	}
}

func minU64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// noteAck is called by a sender (outside its own lock) after its
// acknowledged CSN advanced.
func (r *Replica) noteAck() {
	r.mu.Lock()
	r.refreshQuorumLocked()
	r.mu.Unlock()
}

// ackSignal returns a channel closed on the next acknowledgement (or
// peer-set / policy change), created lazily so idle replicas pay
// nothing.
func (r *Replica) ackSignal() <-chan struct{} {
	r.mu.Lock()
	if r.ackCh == nil {
		r.ackCh = make(chan struct{})
	}
	ch := r.ackCh
	r.mu.Unlock()
	return ch
}

// WatermarkLag returns, per peer, how many quorum-durable commits the
// peer has not yet acknowledged: distance behind the quorum watermark
// rather than the master's head. A straggler behind a slow WAN link
// shows up here even while commits keep completing at quorum
// latency; the rebalance cutover drain and anti-entropy re-attach use
// it to pick catch-up targets that are actually durable.
func (r *Replica) WatermarkLag() map[simnet.Addr]uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	wm := r.quorumWM
	out := make(map[simnet.Addr]uint64, len(r.senders))
	for a, s := range r.senders {
		if acked := s.ackedCSN(); wm > acked {
			out[a] = wm - acked
		} else {
			out[a] = 0
		}
	}
	return out
}
