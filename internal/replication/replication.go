// Package replication keeps the multiple copies of every data piece
// in sync (§3.1 decision 2, §3.2, §3.3.1).
//
// Master/slave mode (the paper's baseline design):
//
//   - Every partition has one master copy handling all writes and one
//     or more slave copies.
//   - The master ships committed transactions (CommitRecords) to each
//     slave strictly in commit-sequence-number order, reproducing the
//     master's serialization order at every slave (§3.2).
//   - Shipping is asynchronous by default (§3.3.1 decision 2): the
//     commit does not wait for propagation, so a master failure can
//     lose the un-replicated tail — the durability gap E4 measures.
//   - DualSeq and SyncAll durability levels implement the §5
//     evolution: commit waits for one (in sequence) or all slaves.
//   - Quorum (see quorum.go) is the tunable middle ground: commit
//     waits for k of n acks (count, majority or site-aware), so a
//     durable write pays the median replica's RTT, not the slowest's.
//
// Multi-master mode (§5 evolution): every replica accepts writes;
// records propagate asynchronously to peers and are merged using
// per-row version vectors; after a partition heals, anti-entropy
// SyncWith calls run the paper's "consistency restoration process".
package replication

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/simnet"
	"repro/internal/store"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// Durability selects how many replicas must confirm a transaction
// before its commit returns (§5's tunable durability).
type Durability int

const (
	// Async commits after the local apply only; replication happens
	// in the background (§3.3.1 decision 2, the paper's default).
	Async Durability = iota
	// DualSeq applies the transaction in sequence to the master and
	// its first slave, committing only when both report success
	// (§5). If the slave is unreachable the commit fails, but the
	// master keeps the data ("leaving just one of the replicas
	// updated is acceptable").
	DualSeq
	// SyncAll waits for every slave: the Cassandra-like high end.
	SyncAll
	// Quorum waits until the configured QuorumPolicy is satisfied —
	// k of n peer acks, a majority of all copies, or a site-aware
	// split ("one local + one remote") — so a durable commit pays the
	// median replica's RTT instead of the slowest's, and stays live
	// with a replica down. Stragglers catch up asynchronously behind
	// the quorum watermark.
	Quorum
)

// String returns the durability level name.
func (d Durability) String() string {
	switch d {
	case Async:
		return "async"
	case DualSeq:
		return "dual-seq"
	case SyncAll:
		return "sync-all"
	case Quorum:
		return "quorum"
	}
	return fmt.Sprintf("Durability(%d)", int(d))
}

// ParseDurability parses an operator-facing durability level name.
func ParseDurability(s string) (Durability, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "async", "":
		return Async, nil
	case "dual-seq", "dualseq":
		return DualSeq, nil
	case "sync-all", "syncall", "sync":
		return SyncAll, nil
	case "quorum":
		return Quorum, nil
	}
	return Async, fmt.Errorf("replication: unknown durability %q", s)
}

// ErrDurability reports a commit that could not reach its required
// replica count.
var ErrDurability = errors.New("replication: durability requirement not met")

// Message types exchanged between replicas. They are exported so the
// storage element's simnet handler can route them here.

// ApplyMsg carries a CSN-ordered batch of commit records from master
// to slave. Batching keeps the replication stream efficient over the
// high-latency backbone (one round trip amortizes many commits)
// without weakening the ordering guarantee: records inside a batch
// are applied strictly in order.
type ApplyMsg struct {
	Partition string
	Recs      []*store.CommitRecord
}

// ApplyResp acknowledges an ApplyMsg.
type ApplyResp struct {
	AppliedCSN uint64
}

// MMApplyMsg carries a batch of commit records between multi-master
// peers.
type MMApplyMsg struct {
	Partition string
	Recs      []*store.CommitRecord
}

// MMApplyResp acknowledges an MMApplyMsg.
type MMApplyResp struct{}

// SyncReqMsg asks a peer for every row whose version is not dominated
// by the requester's (anti-entropy pull).
type SyncReqMsg struct {
	Partition string
	Have      map[string]store.Meta
}

// RowTransfer is one row in an anti-entropy response.
type RowTransfer struct {
	Key   string
	Entry store.Entry
	Meta  store.Meta
}

// SyncRespMsg answers a SyncReqMsg.
type SyncRespMsg struct {
	Rows []RowTransfer
}

// Resolver merges two concurrent versions of a row (§5: "trying to
// merge the different views into one single, consistent view"). It
// must be deterministic and symmetric so that both replicas converge
// without further communication.
type Resolver interface {
	Resolve(key string, a store.Entry, am store.Meta, b store.Entry, bm store.Meta) (store.Entry, store.Meta)
}

// Replica is one partition replica's replication state.
type Replica struct {
	partition string
	node      *Node
	store     *store.Store

	mu         sync.Mutex
	durability Durability
	policy     QuorumPolicy
	peers      []simnet.Addr
	senders    map[simnet.Addr]*sender
	resolver   Resolver

	// quorumWM is the highest CSN satisfying the quorum policy; ackCh
	// (lazily created) is closed whenever it may have advanced.
	quorumWM uint64
	ackCh    chan struct{}
	// headCSN mirrors the highest CSN staged through commitPipeline.
	// The quorum refresh runs under r.mu on every ack and must not
	// touch the store's commit lock (the commit path holds it while
	// taking r.mu), so the head is tracked here atomically.
	headCSN atomic.Uint64

	// Conflicts counts concurrent-write conflicts resolved in
	// multi-master mode.
	Conflicts metrics.Counter
	// Shipped counts records handed to background senders.
	Shipped metrics.Counter
	// AckWait records how long quorum commits waited for their
	// acknowledgements (the udr_replication_quorum_ack_wait_seconds
	// histogram).
	AckWait metrics.Histogram
}

// Node multiplexes the replication traffic of every partition replica
// hosted by one storage element address.
type Node struct {
	net  *simnet.Network
	addr simnet.Addr

	mu       sync.RWMutex
	replicas map[string]*Replica

	// RetryInterval is how long a background sender waits after a
	// failed ship before retrying (partition probing cadence).
	RetryInterval time.Duration
	// CallTimeout bounds each replication RPC.
	CallTimeout time.Duration
	// InFlightWindow bounds each non-standby sender's unacknowledged
	// backlog (records). When a straggler falls further behind, its
	// oldest queued records are shed: the peer's stream gaps and the
	// periodic anti-entropy repair re-attaches it, so one slow WAN
	// link bounds its memory instead of growing without limit. Zero
	// means unbounded (the default).
	InFlightWindow int

	// tracer is the optional span recorder; atomic so the commit path
	// and background senders read it without locks.
	tracer atomic.Pointer[trace.Recorder]
}

// SetTracer installs the span recorder recording repl.send and
// repl.ackwait spans for traced commits.
func (n *Node) SetTracer(tr *trace.Recorder) { n.tracer.Store(tr) }

// NewNode returns a replication node for the storage element at addr.
func NewNode(net *simnet.Network, addr simnet.Addr) *Node {
	return &Node{
		net:           net,
		addr:          addr,
		replicas:      make(map[string]*Replica),
		RetryInterval: 5 * time.Millisecond,
		CallTimeout:   50 * time.Millisecond,
	}
}

// Addr returns the node's network address.
func (n *Node) Addr() simnet.Addr { return n.addr }

// AddReplica registers a partition replica backed by st. The caller
// chooses the store's role; the replica ships outbound records only
// while the store is (multi-)master.
func (n *Node) AddReplica(partition string, st *store.Store) *Replica {
	r := &Replica{
		partition: partition,
		node:      n,
		store:     st,
		senders:   make(map[simnet.Addr]*sender),
		resolver:  LWW{},
	}
	// Seed the staged-head mirror from the store (nonzero after WAL
	// recovery) so quorum accounting starts from the recovered CSN.
	r.headCSN.Store(st.CSN())
	st.SetCommitPipeline(r.commitPipeline)
	n.mu.Lock()
	n.replicas[partition] = r
	n.mu.Unlock()
	return r
}

// Replica returns the replica for a partition, or nil.
func (n *Node) Replica(partition string) *Replica {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.replicas[partition]
}

// RemoveReplica stops a replica's senders and unregisters it (replica
// retirement after a released migration). Later messages for the
// partition get the unknown-partition error.
func (n *Node) RemoveReplica(partition string) {
	n.mu.Lock()
	r := n.replicas[partition]
	delete(n.replicas, partition)
	n.mu.Unlock()
	if r != nil {
		r.stopSenders()
	}
}

// Stop terminates all background senders.
func (n *Node) Stop() {
	n.mu.RLock()
	defer n.mu.RUnlock()
	for _, r := range n.replicas {
		r.stopSenders()
	}
}

// HandleMessage processes a replication message. It reports handled =
// false for messages belonging to other subsystems so the storage
// element can route them elsewhere.
func (n *Node) HandleMessage(ctx context.Context, from simnet.Addr, msg any) (resp any, handled bool, err error) {
	switch m := msg.(type) {
	case ApplyMsg:
		r := n.Replica(m.Partition)
		if r == nil {
			return nil, true, fmt.Errorf("replication: unknown partition %q", m.Partition)
		}
		for _, rec := range m.Recs {
			if err := r.store.ApplyReplicated(rec); err != nil {
				return nil, true, err
			}
		}
		return ApplyResp{AppliedCSN: r.store.AppliedCSN()}, true, nil
	case MMApplyMsg:
		r := n.Replica(m.Partition)
		if r == nil {
			return nil, true, fmt.Errorf("replication: unknown partition %q", m.Partition)
		}
		for _, rec := range m.Recs {
			r.mergeRecord(rec)
		}
		return MMApplyResp{}, true, nil
	case SyncReqMsg:
		r := n.Replica(m.Partition)
		if r == nil {
			return nil, true, fmt.Errorf("replication: unknown partition %q", m.Partition)
		}
		return r.buildSyncResp(m.Have), true, nil
	default:
		return nil, false, nil
	}
}

// Store returns the replica's backing store.
func (r *Replica) Store() *store.Store { return r.store }

// Partition returns the partition ID.
func (r *Replica) Partition() string { return r.partition }

// SetDurability selects the commit durability level.
func (r *Replica) SetDurability(d Durability) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.durability = d
	r.refreshQuorumLocked()
}

// Durability returns the current level.
func (r *Replica) Durability() Durability {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.durability
}

// SetResolver installs the multi-master conflict resolver.
func (r *Replica) SetResolver(res Resolver) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.resolver = res
}

// SetPeers replaces the replication targets (slave addresses for a
// master; peer masters in multi-master mode) and (re)starts their
// background senders.
func (r *Replica) SetPeers(peers ...simnet.Addr) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.stopSendersLocked()
	r.peers = append([]simnet.Addr(nil), peers...)
	for _, p := range r.peers {
		r.senders[p] = newSender(r, p)
	}
	r.refreshQuorumLocked()
}

// AddStandbyPeer attaches one replication target without disturbing
// the senders — and queued records — of the existing peers (SetPeers
// restarts every sender, dropping unshipped tails). Migration uses it
// to attach the bulk-copy target to the live stream; the new sender
// ships only records committed after the attach, so the caller must
// prime the peer's applied watermark to the attach-point CSN.
//
// The peer is standby: excluded from the DualSeq/SyncAll durability
// wait. Until its watermark is primed (after the bulk copy) it
// rejects every batch on a CSN gap, and making client commits wait on
// it would fail their durability deadline for the whole copy phase.
// The cutover drain checks its applied watermark directly; a standby
// peer is removed (RemovePeer) or replaced by SetPeers at cutover, so
// the flag never needs clearing.
func (r *Replica) AddStandbyPeer(p simnet.Addr) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.senders[p]; ok {
		return
	}
	r.peers = append(r.peers, p)
	s := newSender(r, p)
	s.standby = true
	r.senders[p] = s
}

// RemovePeer detaches one replication target, stopping its sender and
// dropping whatever it had queued. The other peers' senders are
// untouched.
func (r *Replica) RemovePeer(p simnet.Addr) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.senders[p]; ok {
		s.stop()
		delete(r.senders, p)
	}
	for i, q := range r.peers {
		if q == p {
			r.peers = append(r.peers[:i], r.peers[i+1:]...)
			break
		}
	}
	// Shrinking the peer set can complete a pending quorum (a dead
	// peer no longer counts toward n): re-evaluate and wake waiters.
	r.refreshQuorumLocked()
}

// Peers returns the current replication targets.
func (r *Replica) Peers() []simnet.Addr {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]simnet.Addr(nil), r.peers...)
}

func (r *Replica) stopSenders() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.stopSendersLocked()
}

func (r *Replica) stopSendersLocked() {
	for a, s := range r.senders {
		s.stop()
		delete(r.senders, a)
	}
}

// Lag returns, per peer, how many committed records have not yet been
// acknowledged — the staleness window behind E5's slave reads.
func (r *Replica) Lag() map[simnet.Addr]uint64 {
	// Read the CSN before taking r.mu: the commit path holds the
	// store's commit lock while taking r.mu, so the reverse order
	// here would risk deadlock.
	csn := r.store.CSN()
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[simnet.Addr]uint64, len(r.senders))
	for a, s := range r.senders {
		acked := s.ackedCSN()
		if csn > acked {
			out[a] = csn - acked
		} else {
			out[a] = 0
		}
	}
	return out
}

// WaitCaughtUp blocks until every peer has acknowledged the master's
// current CSN or the context expires.
func (r *Replica) WaitCaughtUp(ctx context.Context) error {
	target := r.store.CSN()
	for {
		allCaught := true
		r.mu.Lock()
		for _, s := range r.senders {
			if s.ackedCSN() < target {
				allCaught = false
				break
			}
		}
		r.mu.Unlock()
		if allCaught {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(500 * time.Microsecond):
		}
	}
}

// CommitPipeline exposes the replica's commit processing so a
// storage element can chain other commit-time work (WAL staging) in
// front of replication shipping. The stage phase must run in commit
// order (under the store's commit lock); the returned wait, if any,
// carries the synchronous-durability wait and runs after the lock is
// released.
func (r *Replica) CommitPipeline(rec *store.CommitRecord) (wait func() error, err error) {
	return r.commitPipeline(rec)
}

// commitPipeline runs under the store's commit lock for every local
// commit. It enqueues the record to every peer — that is the ordered
// part — and, for DualSeq and SyncAll, returns a wait that blocks
// until the required replicas acknowledge. Waiting outside the
// commit lock lets concurrent synchronous commits overlap their
// replication round trips instead of serializing them.
func (r *Replica) commitPipeline(rec *store.CommitRecord) (func() error, error) {
	r.headCSN.Store(rec.CSN)
	// Sampled commits register per-peer send watches at enqueue time.
	// The watch start doubles as the ack-wait span start, so by
	// construction the ack-wait span can only end at or after every
	// counted peer's send span ends — the attribution invariant the
	// chaos harness asserts. Unsampled commits skip all of it: the
	// cost is one atomic load and one bool test.
	tr := r.node.tracer.Load()
	traced := tr != nil && rec.Trace.Sampled
	var traceStart time.Time
	if traced {
		traceStart = time.Now()
	}
	r.mu.Lock()
	durability := r.durability
	mm := r.store.MultiMaster()
	// Hand the record to background senders in commit order so
	// ordered delivery is preserved even for sync modes (the
	// synchronous wait below rides the same per-peer ordered queue).
	for _, s := range r.senders {
		s.enqueue(rec)
		if traced && !s.standby {
			s.addWatch(rec.CSN, rec.Trace, traceStart)
		}
	}
	r.Shipped.Inc()
	var senders []*sender
	quorumDone := false
	switch {
	case mm || durability == Async:
	case durability == Quorum:
		// The quorum wait rides the watermark, not a fixed sender
		// list, so peers added or removed mid-wait are accounted for.
		if nl, nr := r.requiredAcksLocked(); nl+nr == 0 {
			// No eligible peers (single-copy partition, or every peer
			// standby): the local commit is the whole quorum.
			if rec.CSN > r.quorumWM {
				r.quorumWM = rec.CSN
			}
			quorumDone = true
		}
	default:
		senders = make([]*sender, 0, len(r.peers))
		for _, p := range r.peers {
			// Standby peers (a migration target mid-bulk-copy) never
			// gate commit durability: their stream is gap-stuck until
			// the copy primes their watermark.
			if s, ok := r.senders[p]; ok && !s.standby {
				senders = append(senders, s)
			}
		}
	}
	r.mu.Unlock()

	if !mm && durability == Quorum && !quorumDone {
		return r.quorumWait(rec, tr, traceStart), nil
	}
	if len(senders) == 0 {
		return nil, nil
	}

	// Synchronous durability: wait for the required number of peers
	// to acknowledge this CSN, in sequence (first peer first),
	// matching §5's dual-in-sequence description.
	need := 1
	if durability == SyncAll {
		need = len(senders)
	}
	timeout := r.node.CallTimeout
	csn := rec.CSN
	tc := rec.Trace
	if !traced {
		tr = nil
	}
	elem := string(r.node.addr)
	mode := durability.String()
	return func() error {
		deadline := time.Now().Add(timeout)
		var werr error
	wait:
		for i := 0; i < need; i++ {
			s := senders[i]
			for s.ackedCSN() < csn {
				if time.Now().After(deadline) {
					werr = fmt.Errorf("%w: peer %s did not confirm CSN %d (%s)",
						ErrDurability, s.peer, csn, durability)
					break wait
				}
				time.Sleep(100 * time.Microsecond)
			}
		}
		tr.RecordSpan(tc, "repl.ackwait", elem, traceStart,
			time.Since(traceStart), werr, trace.Attr{Key: "mode", Value: mode})
		return werr
	}, nil
}

// quorumWait builds the wait closure for a Quorum commit: block until
// the quorum watermark covers csn (event-driven — senders wake it on
// every acknowledgement) or the durability deadline expires. On
// timeout the commit returns ErrDurability but the record stays
// applied locally and keeps shipping; a late quorum still advances the
// watermark.
func (r *Replica) quorumWait(rec *store.CommitRecord, tr *trace.Recorder, enq time.Time) func() error {
	timeout := r.node.CallTimeout
	csn := rec.CSN
	tc := rec.Trace
	if tr != nil && !tc.Sampled {
		tr = nil
	}
	done := func(start time.Time, err error) error {
		if err == nil {
			d := time.Since(start)
			r.AckWait.Record(d)
			if tr != nil {
				r.AckWait.SetExemplar(d, tc.Trace.String())
			}
		}
		// The span window runs from replication enqueue (shared with the
		// per-peer send watches) to now, so its duration dominates
		// every counted peer's send span by construction. "need" is the
		// peer-ack requirement, letting verifiers pick the counted set
		// (the need fastest sends) out of the recorded siblings.
		if tr != nil {
			tr.RecordSpan(tc, "repl.ackwait", string(r.node.addr), enq,
				time.Since(enq), err, trace.Attr{Key: "mode", Value: "quorum"},
				trace.Attr{Key: "need", Value: fmt.Sprint(r.QuorumSize() - 1)})
		}
		return err
	}
	return func() error {
		start := time.Now()
		deadline := start.Add(timeout)
		for {
			if r.QuorumWatermark() >= csn {
				return done(start, nil)
			}
			ch := r.ackSignal()
			// Re-check after subscribing: an ack between the check and
			// the subscription would otherwise be missed.
			if r.QuorumWatermark() >= csn {
				return done(start, nil)
			}
			remain := time.Until(deadline)
			if remain <= 0 {
				return done(start, fmt.Errorf("%w: quorum (%s) not reached for CSN %d",
					ErrDurability, r.QuorumPolicy(), csn))
			}
			t := time.NewTimer(remain)
			select {
			case <-ch:
				t.Stop()
			case <-t.C:
			}
		}
	}
}

// WaitQuorum blocks until the quorum watermark reaches the master's
// CSN at the time of the call — every commit so far is quorum-durable
// — or the context expires. The catch-up counterpart of WaitCaughtUp
// under quorum mode: it does not require stragglers.
func (r *Replica) WaitQuorum(ctx context.Context) error {
	target := r.store.CSN()
	for {
		if r.QuorumWatermark() >= target {
			return nil
		}
		ch := r.ackSignal()
		if r.QuorumWatermark() >= target {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ch:
		}
	}
}

// Promote turns a slave replica into the partition master after the
// previous master failed: the store starts accepting writes and its
// commit sequence continues from the replication high-water mark.
func (r *Replica) Promote(newPeers ...simnet.Addr) {
	r.store.SetCSN(r.store.AppliedCSN())
	r.store.SetRole(store.Master)
	r.headCSN.Store(r.store.AppliedCSN())
	r.SetPeers(newPeers...)
}

// Demote turns the replica back into a slave (post-repair rejoin).
func (r *Replica) Demote() {
	r.store.SetRole(store.Slave)
	r.SetPeers() // stop shipping
}

// mergeRecord applies a peer's record in multi-master mode using
// version-vector dominance; concurrent versions go through the
// resolver.
func (r *Replica) mergeRecord(rec *store.CommitRecord) {
	for _, op := range rec.Ops {
		incoming := RowTransfer{
			Key:   op.Key,
			Entry: op.Entry,
			Meta: store.Meta{
				CSN:       rec.CSN,
				WallTS:    rec.WallTS,
				VC:        op.VC,
				Tombstone: op.Kind == store.OpDelete,
			},
		}
		r.mergeRow(incoming)
	}
}

// mergeRow merges one incoming row version into the local store.
func (r *Replica) mergeRow(in RowTransfer) {
	localEntry, localMeta, exists := r.store.GetAny(in.Key)
	if !exists {
		r.store.PutDirect(in.Key, in.Entry, in.Meta)
		return
	}
	switch localMeta.VC.Compare(in.Meta.VC) {
	case vclock.Equal: // already have it
		return
	case vclock.Before: // incoming dominates
		r.store.PutDirect(in.Key, in.Entry, in.Meta)
	case vclock.After: // local dominates
		return
	default: // concurrent — true conflict
		r.mu.Lock()
		res := r.resolver
		r.mu.Unlock()
		r.Conflicts.Inc()
		merged, mergedMeta := res.Resolve(in.Key, localEntry, localMeta, in.Entry, in.Meta)
		mergedMeta.VC = localMeta.VC.Merge(in.Meta.VC)
		r.store.PutDirect(in.Key, merged, mergedMeta)
	}
}

// MergeRepair merges a row version received from the anti-entropy
// repair subsystem and reports whether the local row changed. Rows
// carrying version vectors (multi-master mode) follow the vclock
// dominance rules of mergeRow; master/slave rows — whose CSNs are not
// comparable across a failover — go through the configured resolver,
// whose determinism and symmetry make both replicas converge to the
// same version without further communication.
//
// The read-resolve-write sequence runs as a compare-and-swap loop: a
// commit or stream apply landing between the read and the write
// fails the CompareAndPut and the merge re-resolves against the
// fresh version, so repair can never roll a row back behind
// concurrent progress.
func (r *Replica) MergeRepair(in RowTransfer) (changed bool) {
	for attempt := 0; attempt < 8; attempt++ {
		localEntry, localMeta, exists := r.store.GetAny(in.Key)
		if !exists {
			if r.store.CompareAndPut(in.Key, store.Meta{}, false, in.Entry, in.Meta) {
				return true
			}
			continue
		}

		var merged store.Entry
		var mergedMeta store.Meta
		if len(localMeta.VC) > 0 || len(in.Meta.VC) > 0 {
			switch localMeta.VC.Compare(in.Meta.VC) {
			case vclock.Equal, vclock.After: // local is current or newer
				return false
			case vclock.Before: // incoming dominates
				merged, mergedMeta = in.Entry, in.Meta
			default: // concurrent — true conflict
				r.mu.Lock()
				res := r.resolver
				r.mu.Unlock()
				r.Conflicts.Inc()
				merged, mergedMeta = res.Resolve(in.Key, localEntry, localMeta, in.Entry, in.Meta)
				mergedMeta.VC = localMeta.VC.Merge(in.Meta.VC)
			}
		} else {
			if metaEqual(localMeta, in.Meta) && localEntry.Equal(in.Entry) {
				return false
			}
			r.mu.Lock()
			res := r.resolver
			r.mu.Unlock()
			merged, mergedMeta = res.Resolve(in.Key, localEntry, localMeta, in.Entry, in.Meta)
			if metaEqual(mergedMeta, localMeta) && merged.Equal(localEntry) {
				return false
			}
		}
		if r.store.CompareAndPut(in.Key, localMeta, true, merged, mergedMeta) {
			return true
		}
	}
	// Contention every attempt: leave the row to the next round.
	return false
}

// metaEqual compares the version-relevant metadata fields.
func metaEqual(a, b store.Meta) bool {
	return a.CSN == b.CSN && a.WallTS == b.WallTS &&
		a.Tombstone == b.Tombstone && a.VC.Compare(b.VC) == vclock.Equal
}

// buildSyncResp returns every row whose local version is not known to
// the requester (missing, newer or concurrent). Rows are collected
// zero-copy (shared immutable versions) and sorted afterwards for a
// deterministic wire order.
func (r *Replica) buildSyncResp(have map[string]store.Meta) SyncRespMsg {
	var resp SyncRespMsg
	r.store.ForEachAny(func(k string, e store.Entry, m store.Meta) bool {
		if hm, known := have[k]; known {
			// Skip rows the requester already dominates.
			if c := hm.VC.Compare(m.VC); c == vclock.Equal || c == vclock.After {
				return true
			}
		}
		resp.Rows = append(resp.Rows, RowTransfer{Key: k, Entry: e, Meta: m})
		return true
	})
	sort.Slice(resp.Rows, func(i, j int) bool { return resp.Rows[i].Key < resp.Rows[j].Key })
	return resp
}

// SyncWith pulls the peer's divergent rows and merges them locally:
// one direction of the paper's post-partition consistency
// restoration. Run it in both directions (or twice, swapping roles)
// to fully converge two replicas.
func (r *Replica) SyncWith(ctx context.Context, peer simnet.Addr) (merged int, err error) {
	req := SyncReqMsg{Partition: r.partition, Have: r.store.AllMeta()}
	raw, err := r.node.net.Call(ctx, r.node.addr, peer, req)
	if err != nil {
		return 0, err
	}
	resp, ok := raw.(SyncRespMsg)
	if !ok {
		return 0, fmt.Errorf("replication: unexpected sync response %T", raw)
	}
	for _, row := range resp.Rows {
		r.mergeRow(row)
		merged++
	}
	return merged, nil
}

// SenderStats describes one peer sender's shipping state: the
// per-sender throughput and batch-size metrics behind E18's
// replication column and the OaM lag view.
type SenderStats struct {
	Peer simnet.Addr
	// AckedCSN is the highest CSN the peer has confirmed.
	AckedCSN uint64
	// QueueDepth is the number of records awaiting shipment.
	QueueDepth int
	// BatchCap is the current adaptive batch-size ceiling.
	BatchCap int
	// Batches and Records count completed round trips and records
	// delivered; Records/Batches is the achieved amortization.
	Batches int64
	Records int64
	// Shed counts records dropped by the per-peer in-flight window;
	// nonzero means the peer's stream gapped and is waiting on
	// anti-entropy re-attach.
	Shed int64
}

// SenderStats returns a snapshot of every peer sender's shipping
// metrics, ordered like Peers().
func (r *Replica) SenderStats() []SenderStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SenderStats, 0, len(r.peers))
	for _, p := range r.peers {
		s, ok := r.senders[p]
		if !ok {
			continue
		}
		s.mu.Lock()
		out = append(out, SenderStats{
			Peer:       p,
			AckedCSN:   s.acked,
			QueueDepth: len(s.queue),
			BatchCap:   s.batchCap,
			Batches:    s.batches.Value(),
			Records:    s.records.Value(),
			Shed:       s.shed.Value(),
		})
		s.mu.Unlock()
	}
	return out
}

// Batch sizing bounds: the adaptive cap starts at minBatch so a lone
// commit ships with minimum latency, grows toward maxBatch while a
// backlog is draining (partition heal, burst), and shrinks back once
// the queue runs shallow.
const (
	minBatch = 16
	maxBatch = 256
)

// sendWatch tracks one traced commit awaiting this peer's
// acknowledgement: the data behind a repl.send span. start is the
// replication-enqueue instant, shared with the commit's ack-wait span.
type sendWatch struct {
	csn   uint64
	tc    trace.Ctx
	start time.Time
}

// maxSendWatches bounds the per-peer watch list; a straggling peer
// sheds the oldest watches (losing their send spans) instead of
// growing without limit.
const maxSendWatches = 64

// sender ships one replica's commit records to one peer, in order.
type sender struct {
	r    *Replica
	peer simnet.Addr

	mu      sync.Mutex
	queue   []*store.CommitRecord
	watches []sendWatch
	acked   uint64
	// standby excludes the peer from synchronous durability waits
	// (set once at creation, before the sender is published).
	standby bool
	// batchCap is the adaptive per-round-trip record ceiling.
	batchCap int
	wake     chan struct{}
	done     chan struct{}

	// batch is the run loop's scratch slice, reused across round
	// trips so steady-state shipping allocates nothing per batch.
	batch []*store.CommitRecord

	batches metrics.Counter
	records metrics.Counter
	// shed counts records dropped by the in-flight window; a nonzero
	// value means the peer's stream gapped and anti-entropy repair
	// must re-attach it.
	shed metrics.Counter
}

func newSender(r *Replica, peer simnet.Addr) *sender {
	s := &sender{
		r:        r,
		peer:     peer,
		batchCap: minBatch,
		wake:     make(chan struct{}, 1),
		done:     make(chan struct{}),
	}
	go s.run()
	return s
}

func (s *sender) enqueue(rec *store.CommitRecord) {
	s.mu.Lock()
	s.queue = append(s.queue, rec)
	s.mu.Unlock()
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// addWatch registers a traced commit for a repl.send span when this
// peer acknowledges its CSN. Called with r.mu held (same order as
// SenderStats: r.mu then s.mu).
func (s *sender) addWatch(csn uint64, tc trace.Ctx, start time.Time) {
	s.mu.Lock()
	if len(s.watches) >= maxSendWatches {
		n := copy(s.watches, s.watches[1:])
		s.watches = s.watches[:n]
	}
	s.watches = append(s.watches, sendWatch{csn: csn, tc: tc, start: start})
	s.mu.Unlock()
}

func (s *sender) ackedCSN() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.acked
}

func (s *sender) stop() {
	select {
	case <-s.done:
	default:
		close(s.done)
	}
}

// run delivers queue records in order, retrying across partitions.
// Retrying from the first unacknowledged record preserves the
// master's serialization order at the slave (§3.2); batching
// amortizes backbone round trips across many commits. The batch
// slice is owned by this loop and reused every round trip; the batch
// ceiling adapts to queue depth.
func (s *sender) run() {
	for {
		s.mu.Lock()
		// Per-peer in-flight window: a straggler behind a slow WAN
		// link sheds its oldest queued records instead of holding them
		// (and their row images) without bound. The peer's stream gaps
		// — its next delivered batch is rejected on the CSN gap —
		// until the periodic anti-entropy repair advances its
		// watermark and re-attaches it; quorum commits never waited on
		// it anyway. Shedding happens only here, between round trips,
		// so the queue prefix always matches the batch in flight.
		// Standby peers are exempt: migration owns their backlog.
		if w := s.r.node.InFlightWindow; w > 0 && !s.standby && len(s.queue) > w {
			drop := len(s.queue) - w
			clear(s.queue[:drop])
			m := copy(s.queue, s.queue[drop:])
			clear(s.queue[m:])
			s.queue = s.queue[:m]
			s.shed.Add(int64(drop))
		}
		depth := len(s.queue)
		n := depth
		if n > s.batchCap {
			n = s.batchCap
		}
		batch := append(s.batch[:0], s.queue[:n]...)
		s.batch = batch
		s.mu.Unlock()

		if len(batch) == 0 {
			select {
			case <-s.done:
				return
			case <-s.wake:
				continue
			}
		}

		ctx, cancel := context.WithTimeout(context.Background(), s.r.node.CallTimeout)
		var msg any
		if s.r.store.MultiMaster() {
			msg = MMApplyMsg{Partition: s.r.partition, Recs: batch}
		} else {
			msg = ApplyMsg{Partition: s.r.partition, Recs: batch}
		}
		_, err := s.r.node.net.Call(ctx, s.r.node.addr, s.peer, msg)
		cancel()

		if err != nil {
			select {
			case <-s.done:
				return
			case <-time.After(s.r.node.RetryInterval):
			}
			continue
		}

		last := batch[len(batch)-1]
		s.batches.Inc()
		s.records.Add(int64(len(batch)))
		s.mu.Lock()
		// Drop the scratch slice's references too, or an idle sender
		// would pin the last batch's records (and their row images)
		// until the next round trip overwrites them.
		clear(batch)
		// Compact the queue in place: the retained capacity is reused
		// by future enqueues and the consumed slots are cleared so
		// shipped records become collectible immediately.
		m := copy(s.queue, s.queue[len(batch):])
		clear(s.queue[m:])
		s.queue = s.queue[:m]
		advanced := false
		if last.CSN > s.acked {
			s.acked = last.CSN
			advanced = true
		}
		// Pop the watches this ack completes; their spans are recorded
		// below, before noteAck wakes quorum waiters, so a counted
		// peer's send span always ends before the ack-wait span does.
		var acked []sendWatch
		if len(s.watches) > 0 {
			i := 0
			for i < len(s.watches) && s.watches[i].csn <= s.acked {
				i++
			}
			if i > 0 {
				acked = append(acked, s.watches[:i]...)
				n := copy(s.watches, s.watches[i:])
				s.watches = s.watches[:n]
			}
		}
		// Adapt the ceiling: a backlog deeper than what we just
		// shipped means round trips are the bottleneck — grow; a
		// batch well under the ceiling means traffic is light —
		// shrink back toward minimum latency.
		switch {
		case depth > n && s.batchCap < maxBatch:
			s.batchCap *= 2
		case n < s.batchCap/2 && s.batchCap > minBatch:
			s.batchCap /= 2
		}
		s.mu.Unlock()
		if len(acked) > 0 {
			if tr := s.r.node.tracer.Load(); tr != nil {
				// The ack instant is captured before noteAck broadcasts,
				// so the commit's ack-wait span — which can only end
				// after the broadcast — bounds every recorded send span.
				ackTime := time.Now()
				for _, w := range acked {
					tr.RecordSpan(w.tc, "repl.send", string(s.r.node.addr),
						w.start, ackTime.Sub(w.start), nil,
						trace.Attr{Key: "peer", Value: string(s.peer)},
						trace.Attr{Key: "csn", Value: fmt.Sprint(w.csn)})
				}
			}
		}
		if advanced {
			// Outside s.mu: the replica takes r.mu then s.mu when it
			// polls acked CSNs, so notifying under s.mu would invert
			// the lock order.
			s.r.noteAck()
		}
	}
}
