package replication

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/simnet"
	"repro/internal/store"
)

// rig builds a master and N slaves for one partition over a fast
// simnet, wiring slave nodes' handlers.
type rig struct {
	net    *simnet.Network
	master *Replica
	slaves []*Replica
	nodes  []*Node
}

func newRig(t *testing.T, slaves int, sites ...string) *rig {
	return newTunedRig(t, slaves, nil, sites...)
}

// newTunedRig is newRig with a per-node tuning hook that runs before
// any sender goroutine starts, so tests can set Node knobs without
// racing the background senders.
func newTunedRig(t *testing.T, slaves int, tune func(*Node), sites ...string) *rig {
	t.Helper()
	if len(sites) != slaves+1 {
		t.Fatalf("need %d sites", slaves+1)
	}
	n := simnet.New(simnet.FastConfig())
	r := &rig{net: n}

	newNode := func(site, name string) *Node {
		addr := simnet.MakeAddr(site, name)
		node := NewNode(n, addr)
		node.RetryInterval = time.Millisecond
		node.CallTimeout = 100 * time.Millisecond
		if tune != nil {
			tune(node)
		}
		n.Register(addr, func(ctx context.Context, from simnet.Addr, msg any) (any, error) {
			resp, handled, err := node.HandleMessage(ctx, from, msg)
			if !handled {
				return nil, fmt.Errorf("unhandled %T", msg)
			}
			return resp, err
		})
		return node
	}

	masterNode := newNode(sites[0], "m")
	ms := store.New("m")
	r.master = masterNode.AddReplica("p1", ms)
	r.nodes = append(r.nodes, masterNode)

	var peerAddrs []simnet.Addr
	for i := 0; i < slaves; i++ {
		node := newNode(sites[i+1], fmt.Sprintf("s%d", i))
		ss := store.New(fmt.Sprintf("s%d", i))
		ss.SetRole(store.Slave)
		rep := node.AddReplica("p1", ss)
		r.slaves = append(r.slaves, rep)
		r.nodes = append(r.nodes, node)
		peerAddrs = append(peerAddrs, node.Addr())
	}
	r.master.SetPeers(peerAddrs...)
	t.Cleanup(func() {
		for _, node := range r.nodes {
			node.Stop()
		}
	})
	return r
}

func (r *rig) commit(t *testing.T, key, val string) *store.CommitRecord {
	t.Helper()
	txn := r.master.Store().Begin(store.ReadCommitted)
	txn.Put(key, store.Entry{"v": {val}})
	rec, err := txn.Commit()
	if err != nil {
		t.Fatalf("commit: %v", err)
	}
	return rec
}

func waitFor(t *testing.T, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("timeout: " + msg)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestAsyncReplicationDelivers(t *testing.T) {
	r := newRig(t, 2, "eu", "us", "apac")
	for i := 0; i < 10; i++ {
		r.commit(t, fmt.Sprintf("k%d", i), fmt.Sprint(i))
	}
	for _, s := range r.slaves {
		s := s
		waitFor(t, func() bool { return s.Store().AppliedCSN() == 10 }, "slave catch-up")
		e, _, ok := s.Store().GetCommitted("k7")
		if !ok || e.First("v") != "7" {
			t.Fatalf("slave row = %v %v", e, ok)
		}
	}
}

func TestAsyncCommitDoesNotWait(t *testing.T) {
	// Async commit latency must not include the backbone RTT
	// (§3.3.1 decision 2).
	cfg := simnet.FastConfig()
	cfg.Backbone.Latency = 20 * time.Millisecond
	n := simnet.New(cfg)
	node := NewNode(n, simnet.MakeAddr("eu", "m"))
	defer node.Stop()
	ms := store.New("m")
	rep := node.AddReplica("p1", ms)

	snode := NewNode(n, simnet.MakeAddr("us", "s"))
	defer snode.Stop()
	ss := store.New("s")
	ss.SetRole(store.Slave)
	snode.AddReplica("p1", ss)
	n.Register(snode.Addr(), func(ctx context.Context, from simnet.Addr, msg any) (any, error) {
		resp, _, err := snode.HandleMessage(ctx, from, msg)
		return resp, err
	})
	rep.SetPeers(snode.Addr())

	start := time.Now()
	txn := ms.Begin(store.ReadCommitted)
	txn.Put("k", store.Entry{"v": {"1"}})
	if _, err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 10*time.Millisecond {
		t.Fatalf("async commit took %v (waited for backbone?)", d)
	}
}

func TestOrderPreservedAcrossPartition(t *testing.T) {
	// Commits during a partition must arrive at the slave in CSN
	// order after healing (§3.2's serialization-order guarantee).
	r := newRig(t, 1, "eu", "us")
	r.commit(t, "k1", "1")
	waitFor(t, func() bool { return r.slaves[0].Store().AppliedCSN() == 1 }, "pre-partition sync")

	r.net.Partition([]string{"eu"})
	for i := 2; i <= 6; i++ {
		r.commit(t, fmt.Sprintf("k%d", i), fmt.Sprint(i))
	}
	time.Sleep(10 * time.Millisecond)
	if got := r.slaves[0].Store().AppliedCSN(); got != 1 {
		t.Fatalf("slave advanced during partition: %d", got)
	}

	r.net.Heal()
	waitFor(t, func() bool { return r.slaves[0].Store().AppliedCSN() == 6 }, "post-heal catch-up")
	for i := 1; i <= 6; i++ {
		e, _, ok := r.slaves[0].Store().GetCommitted(fmt.Sprintf("k%d", i))
		if !ok || e.First("v") != fmt.Sprint(i) {
			t.Fatalf("k%d = %v %v", i, e, ok)
		}
	}
}

func TestLagTracking(t *testing.T) {
	r := newRig(t, 1, "eu", "us")
	r.net.Partition([]string{"eu"})
	for i := 0; i < 5; i++ {
		r.commit(t, fmt.Sprintf("k%d", i), "x")
	}
	lag := r.master.Lag()
	if lag[r.nodes[1].Addr()] != 5 {
		t.Fatalf("lag = %v, want 5", lag)
	}
	r.net.Heal()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := r.master.WaitCaughtUp(ctx); err != nil {
		t.Fatal(err)
	}
	lag = r.master.Lag()
	if lag[r.nodes[1].Addr()] != 0 {
		t.Fatalf("lag after catch-up = %v", lag)
	}
}

func TestDualSeqFailsWhenSlaveUnreachable(t *testing.T) {
	// §5: dual-in-sequence commits only when both replicas report
	// success; the master keeps the data on failure.
	r := newRig(t, 1, "eu", "us")
	r.master.SetDurability(DualSeq)

	// Reachable: commit succeeds.
	r.commit(t, "k1", "1")

	r.net.Partition([]string{"eu"})
	txn := r.master.Store().Begin(store.ReadCommitted)
	txn.Put("k2", store.Entry{"v": {"2"}})
	_, err := txn.Commit()
	if !errors.Is(err, ErrDurability) {
		t.Fatalf("err = %v, want ErrDurability", err)
	}
	// Master keeps the data ("leaving just one of the replicas
	// updated is acceptable").
	if _, _, ok := r.master.Store().GetCommitted("k2"); !ok {
		t.Fatal("master lost the data")
	}
	r.net.Heal()
	// After healing the stranded record still reaches the slave
	// (background sender keeps the queue).
	waitFor(t, func() bool { return r.slaves[0].Store().AppliedCSN() == 2 }, "stranded record delivery")
}

func TestSyncAllWaitsForEverySlave(t *testing.T) {
	r := newRig(t, 2, "eu", "us", "apac")
	r.master.SetDurability(SyncAll)
	r.commit(t, "k1", "1")
	// Both slaves must already have the record when commit returned.
	for i, s := range r.slaves {
		if s.Store().AppliedCSN() != 1 {
			t.Fatalf("slave %d applied = %d at commit return", i, s.Store().AppliedCSN())
		}
	}
}

func TestPromoteContinuesSequence(t *testing.T) {
	r := newRig(t, 1, "eu", "us")
	for i := 0; i < 5; i++ {
		r.commit(t, fmt.Sprintf("k%d", i), "x")
	}
	waitFor(t, func() bool { return r.slaves[0].Store().AppliedCSN() == 5 }, "sync")

	// Master dies; slave promotes.
	r.net.SetDown(r.nodes[0].Addr(), true)
	r.slaves[0].Promote()
	if r.slaves[0].Store().Role() != store.Master {
		t.Fatal("not promoted")
	}
	txn := r.slaves[0].Store().Begin(store.ReadCommitted)
	txn.Put("k5", store.Entry{"v": {"5"}})
	rec, err := txn.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if rec.CSN != 6 {
		t.Fatalf("promoted CSN = %d, want 6", rec.CSN)
	}
}

func TestMultiMasterConvergence(t *testing.T) {
	// Two multi-master replicas accept writes during a partition,
	// diverge, and converge after anti-entropy (§5).
	n := simnet.New(simnet.FastConfig())
	mk := func(site, id string) (*Node, *Replica) {
		node := NewNode(n, simnet.MakeAddr(site, id))
		node.RetryInterval = time.Millisecond
		st := store.New(id)
		st.SetMultiMaster(true)
		rep := node.AddReplica("p1", st)
		rep.SetResolver(LWW{})
		n.Register(node.Addr(), func(ctx context.Context, from simnet.Addr, msg any) (any, error) {
			resp, _, err := node.HandleMessage(ctx, from, msg)
			return resp, err
		})
		return node, rep
	}
	nodeA, repA := mk("eu", "a")
	nodeB, repB := mk("us", "b")
	defer nodeA.Stop()
	defer nodeB.Stop()
	repA.SetPeers(nodeB.Addr())
	repB.SetPeers(nodeA.Addr())

	n.Partition([]string{"eu"})

	// Conflicting writes on both sides.
	txn := repA.Store().Begin(store.ReadCommitted)
	txn.Put("k", store.Entry{"v": {"from-a"}})
	if _, err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(2 * time.Millisecond) // ensure b's write is later (LWW winner)
	txn = repB.Store().Begin(store.ReadCommitted)
	txn.Put("k", store.Entry{"v": {"from-b"}})
	if _, err := txn.Commit(); err != nil {
		t.Fatal(err)
	}

	n.Heal()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	// Consistency restoration: pull in both directions.
	if _, err := repA.SyncWith(ctx, nodeB.Addr()); err != nil {
		t.Fatal(err)
	}
	if _, err := repB.SyncWith(ctx, nodeA.Addr()); err != nil {
		t.Fatal(err)
	}

	ea, _, _ := repA.Store().GetCommitted("k")
	eb, _, _ := repB.Store().GetCommitted("k")
	if !ea.Equal(eb) {
		t.Fatalf("replicas diverged: %v vs %v", ea, eb)
	}
	if ea.First("v") != "from-b" {
		t.Fatalf("LWW winner = %v, want from-b", ea)
	}
	if repA.Conflicts.Value()+repB.Conflicts.Value() == 0 {
		t.Fatal("no conflict recorded")
	}
}

func TestMultiMasterAsyncPropagation(t *testing.T) {
	// Without a partition, multi-master writes propagate to peers
	// through the normal background senders.
	n := simnet.New(simnet.FastConfig())
	nodeA := NewNode(n, simnet.MakeAddr("eu", "a"))
	nodeB := NewNode(n, simnet.MakeAddr("us", "b"))
	defer nodeA.Stop()
	defer nodeB.Stop()
	stA, stB := store.New("a"), store.New("b")
	stA.SetMultiMaster(true)
	stB.SetMultiMaster(true)
	repA := nodeA.AddReplica("p1", stA)
	repB := nodeB.AddReplica("p1", stB)
	for _, pair := range []struct {
		node *Node
	}{{nodeA}, {nodeB}} {
		node := pair.node
		n.Register(node.Addr(), func(ctx context.Context, from simnet.Addr, msg any) (any, error) {
			resp, _, err := node.HandleMessage(ctx, from, msg)
			return resp, err
		})
	}
	repA.SetPeers(nodeB.Addr())
	repB.SetPeers(nodeA.Addr())

	txn := stA.Begin(store.ReadCommitted)
	txn.Put("k", store.Entry{"v": {"hello"}})
	if _, err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		e, _, ok := stB.GetCommitted("k")
		return ok && e.First("v") == "hello"
	}, "multi-master propagation")
}

func TestSubscriberMergeBarringOr(t *testing.T) {
	// §3.2's pay-call barring example: a concurrent un-bar and bar
	// must resolve to barred (safety bias).
	a := store.Entry{
		"objectClass": {"udrSubscription"},
		"barPremium":  {"TRUE"},
		"sqn":         {"5"},
	}
	b := store.Entry{
		"objectClass": {"udrSubscription"},
		"barPremium":  {"FALSE"},
		"sqn":         {"9"},
	}
	am := store.Meta{WallTS: 100}
	bm := store.Meta{WallTS: 200} // b is newer (would win LWW)
	merged, _ := SubscriberMerge{}.Resolve("k", a, am, b, bm)
	if merged.First("barPremium") != "TRUE" {
		t.Fatalf("barPremium = %v, want TRUE (safety bias)", merged.First("barPremium"))
	}
	if merged.First("sqn") != "9" {
		t.Fatalf("sqn = %v, want max 9", merged.First("sqn"))
	}
}

func TestSubscriberMergeDeterministicSymmetric(t *testing.T) {
	a := store.Entry{"objectClass": {"udrSubscription"}, "sqn": {"3"}, "cfu": {"123"}}
	b := store.Entry{"objectClass": {"udrSubscription"}, "sqn": {"7"}}
	am := store.Meta{WallTS: 100}
	bm := store.Meta{WallTS: 100, CSN: 2} // tie on WallTS
	m1, _ := SubscriberMerge{}.Resolve("k", a, am, b, bm)
	m2, _ := SubscriberMerge{}.Resolve("k", b, bm, a, am)
	if !m1.Equal(m2) {
		t.Fatalf("merge not symmetric: %v vs %v", m1, m2)
	}
}

func TestLWWTombstone(t *testing.T) {
	alive := store.Entry{"v": {"1"}}
	am := store.Meta{WallTS: 100}
	bm := store.Meta{WallTS: 200, Tombstone: true}
	merged, mm := LWW{}.Resolve("k", alive, am, nil, bm)
	if !mm.Tombstone {
		t.Fatalf("newer delete should win: %v %v", merged, mm)
	}
}

func TestHandleMessageUnknownPartition(t *testing.T) {
	n := simnet.New(simnet.FastConfig())
	node := NewNode(n, simnet.MakeAddr("eu", "x"))
	defer node.Stop()
	_, handled, err := node.HandleMessage(context.Background(), "eu/y",
		ApplyMsg{Partition: "nope", Recs: []*store.CommitRecord{{CSN: 1}}})
	if !handled || err == nil {
		t.Fatalf("unknown partition: handled=%v err=%v", handled, err)
	}
	resp, handled, err := node.HandleMessage(context.Background(), "eu/y", "not-replication")
	if handled || err != nil || resp != nil {
		t.Fatal("foreign message should pass through")
	}
}

// TestStandbyPeerExcludedFromDurabilityWait pins the migration
// bulk-copy contract: a standby peer (gap-stuck until its watermark
// is primed) must not gate synchronous commit durability, while the
// regular peers still must.
func TestStandbyPeerExcludedFromDurabilityWait(t *testing.T) {
	r := newRig(t, 1, "eu", "us")
	r.master.SetDurability(SyncAll)
	// A standby peer at an address nobody serves: its sender can
	// never deliver, exactly like a migration target mid-copy.
	r.master.AddStandbyPeer(simnet.MakeAddr("eu", "nobody"))

	txn := r.master.Store().Begin(store.ReadCommitted)
	txn.Put("k", store.Entry{"v": {"1"}})
	if _, err := txn.Commit(); err != nil {
		t.Fatalf("sync-all commit gated by standby peer: %v", err)
	}
	if applied := r.slaves[0].Store().AppliedCSN(); applied != 1 {
		t.Fatalf("regular peer did not confirm: applied=%d", applied)
	}
	// RemovePeer detaches only the named peer; the standby one stays
	// listed but still must not gate the (now peerless) wait.
	r.master.RemovePeer(r.nodes[1].Addr())
	txn = r.master.Store().Begin(store.ReadCommitted)
	txn.Put("k2", store.Entry{"v": {"2"}})
	if _, err := txn.Commit(); err != nil {
		t.Fatalf("commit with only a standby peer: %v", err)
	}
}
