package replication

import (
	"fmt"
	"testing"

	"repro/internal/store"
	"repro/internal/subscriber"
	"repro/internal/vclock"
)

// subEntry builds a minimal subscriber-classed entry.
func subEntry(attrs map[string]string) store.Entry {
	e := store.Entry{subscriber.AttrObjectClass: {subscriber.ObjectClass}}
	for k, v := range attrs {
		e[k] = []string{v}
	}
	return e
}

func TestLWWTieBreakOnCSN(t *testing.T) {
	a := store.Entry{"v": {"a"}}
	b := store.Entry{"v": {"b"}}
	am := store.Meta{WallTS: 100, CSN: 7}
	bm := store.Meta{WallTS: 100, CSN: 9}
	merged, mm := LWW{}.Resolve("k", a, am, b, bm)
	if merged.First("v") != "b" || mm.CSN != 9 {
		t.Fatalf("CSN tie-break picked %v %v, want b/9", merged, mm)
	}
}

func TestLWWTieBreakOnCanonicalContent(t *testing.T) {
	// Identical metadata: the winner must be decided by canonical
	// content, identically on both replicas.
	a := store.Entry{"v": {"aaa"}}
	b := store.Entry{"v": {"zzz"}}
	m := store.Meta{WallTS: 100, CSN: 5}
	m1, _ := LWW{}.Resolve("k", a, m, b, m)
	m2, _ := LWW{}.Resolve("k", b, m, a, m)
	if !m1.Equal(m2) {
		t.Fatalf("content tie-break not symmetric: %v vs %v", m1, m2)
	}
}

func TestLWWSymmetricAcrossCases(t *testing.T) {
	cases := []struct {
		name   string
		a, b   store.Entry
		am, bm store.Meta
	}{
		{"wallts", store.Entry{"v": {"1"}}, store.Entry{"v": {"2"}},
			store.Meta{WallTS: 1}, store.Meta{WallTS: 2}},
		{"csn", store.Entry{"v": {"1"}}, store.Entry{"v": {"2"}},
			store.Meta{WallTS: 5, CSN: 1}, store.Meta{WallTS: 5, CSN: 2}},
		{"tombstone-newer", store.Entry{"v": {"1"}}, nil,
			store.Meta{WallTS: 1}, store.Meta{WallTS: 2, Tombstone: true}},
		{"tombstone-older", nil, store.Entry{"v": {"2"}},
			store.Meta{WallTS: 2, Tombstone: true}, store.Meta{WallTS: 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e1, m1 := LWW{}.Resolve("k", tc.a, tc.am, tc.b, tc.bm)
			e2, m2 := LWW{}.Resolve("k", tc.b, tc.bm, tc.a, tc.am)
			if !e1.Equal(e2) || m1.Tombstone != m2.Tombstone ||
				m1.WallTS != m2.WallTS || m1.CSN != m2.CSN {
				t.Fatalf("asymmetric: (%v %v) vs (%v %v)", e1, m1, e2, m2)
			}
		})
	}
}

func TestSubscriberMergeAllBarringFlagsOr(t *testing.T) {
	a := subEntry(map[string]string{
		subscriber.AttrBarOutgoing: "TRUE",
		subscriber.AttrBarPremium:  "FALSE",
		subscriber.AttrSQN:         "3",
	})
	b := subEntry(map[string]string{
		subscriber.AttrBarRoaming: "TRUE",
		subscriber.AttrBarPremium: "FALSE",
		subscriber.AttrSQN:        "4",
	})
	merged, _ := SubscriberMerge{}.Resolve("k", a, store.Meta{WallTS: 10}, b, store.Meta{WallTS: 20})
	for _, attr := range []string{subscriber.AttrBarOutgoing, subscriber.AttrBarRoaming} {
		if merged.First(attr) != "TRUE" {
			t.Errorf("%s = %q, want TRUE (set by one side)", attr, merged.First(attr))
		}
	}
	if merged.First(subscriber.AttrBarPremium) == "TRUE" {
		t.Error("barPremium became TRUE though neither side barred it")
	}
}

func TestSubscriberMergeSQNNeverRegresses(t *testing.T) {
	// The newer write carries the *smaller* SQN; max-merge must keep
	// the larger one (replaying SQN backwards breaks authentication).
	older := subEntry(map[string]string{subscriber.AttrSQN: "900"})
	newer := subEntry(map[string]string{subscriber.AttrSQN: "17"})
	merged, _ := SubscriberMerge{}.Resolve("k",
		older, store.Meta{WallTS: 10}, newer, store.Meta{WallTS: 99})
	if merged.First(subscriber.AttrSQN) != "900" {
		t.Fatalf("sqn = %v, want 900", merged.First(subscriber.AttrSQN))
	}
}

func TestSubscriberMergeTombstoneFallsBackToLWW(t *testing.T) {
	alive := subEntry(map[string]string{subscriber.AttrBarPremium: "TRUE"})
	am := store.Meta{WallTS: 300}
	bm := store.Meta{WallTS: 200, Tombstone: true}
	merged, mm := SubscriberMerge{}.Resolve("k", alive, am, nil, bm)
	if mm.Tombstone {
		t.Fatalf("older delete beat newer write: %v %v", merged, mm)
	}
	_, mm2 := SubscriberMerge{}.Resolve("k", alive, store.Meta{WallTS: 100}, nil, bm)
	if !mm2.Tombstone {
		t.Fatal("newer delete lost to older write")
	}
}

func TestSubscriberMergeNonSubscriberFallsBackToLWW(t *testing.T) {
	a := store.Entry{"v": {"a"}, subscriber.AttrBarPremium: {"TRUE"}}
	b := store.Entry{"v": {"b"}}
	merged, _ := SubscriberMerge{}.Resolve("k",
		a, store.Meta{WallTS: 1}, b, store.Meta{WallTS: 2})
	// Plain LWW: the newer row wins wholesale, no barring OR.
	if merged.First("v") != "b" || merged.First(subscriber.AttrBarPremium) == "TRUE" {
		t.Fatalf("non-subscriber rows must use plain LWW: %v", merged)
	}
}

func TestSubscriberMergeIdempotent(t *testing.T) {
	// Merging the merge result against either input must not change
	// it again — the property that makes bidirectional anti-entropy
	// converge in one exchange.
	a := subEntry(map[string]string{
		subscriber.AttrBarPremium: "TRUE",
		subscriber.AttrSQN:        "42",
		subscriber.AttrArea:       "north",
	})
	b := subEntry(map[string]string{
		subscriber.AttrBarRoaming: "TRUE",
		subscriber.AttrSQN:        "99",
		subscriber.AttrArea:       "south",
	})
	am := store.Meta{WallTS: 10, CSN: 1}
	bm := store.Meta{WallTS: 20, CSN: 2}
	merged, mm := SubscriberMerge{}.Resolve("k", a, am, b, bm)
	again, _ := SubscriberMerge{}.Resolve("k", a, am, merged, mm)
	if !again.Equal(merged) {
		t.Fatalf("re-merge changed the result: %v vs %v", again, merged)
	}
}

func TestMergeRepairVClockPaths(t *testing.T) {
	n := newRig(t, 1, "eu", "us")
	master := n.master

	// Missing row installs directly.
	in := RowTransfer{Key: "new", Entry: store.Entry{"v": {"x"}},
		Meta: store.Meta{CSN: 1, WallTS: 1}}
	if !master.MergeRepair(in) {
		t.Fatal("missing row not installed")
	}
	if master.MergeRepair(in) {
		t.Fatal("identical row reported as changed")
	}

	// Dominating vector wins; dominated vector is a no-op.
	master.Store().PutDirect("vc", store.Entry{"v": {"old"}},
		store.Meta{WallTS: 1, VC: vclock.VC{"a": 1}})
	if !master.MergeRepair(RowTransfer{Key: "vc", Entry: store.Entry{"v": {"new"}},
		Meta: store.Meta{WallTS: 2, VC: vclock.VC{"a": 2}}}) {
		t.Fatal("dominating version rejected")
	}
	if e, _, _ := master.Store().GetCommitted("vc"); e.First("v") != "new" {
		t.Fatalf("dominating version not installed: %v", e)
	}
	if master.MergeRepair(RowTransfer{Key: "vc", Entry: store.Entry{"v": {"stale"}},
		Meta: store.Meta{WallTS: 0, VC: vclock.VC{"a": 1}}}) {
		t.Fatal("dominated version applied")
	}

	// Concurrent vectors go through the resolver and merge clocks.
	if !master.MergeRepair(RowTransfer{Key: "vc", Entry: store.Entry{"v": {"other"}},
		Meta: store.Meta{WallTS: 9, VC: vclock.VC{"b": 1}}}) {
		t.Fatal("concurrent version not merged")
	}
	_, m, _ := master.Store().GetCommitted("vc")
	if m.VC.Get("a") != 2 || m.VC.Get("b") != 1 {
		t.Fatalf("clocks not merged: %v", m.VC)
	}
}

func TestMergeRepairResolverPath(t *testing.T) {
	n := newRig(t, 1, "eu", "us")
	master := n.master
	n.commit(t, "k", "local")
	_, localMeta, _ := master.Store().GetCommitted("k")

	// Older incoming version loses and changes nothing.
	if master.MergeRepair(RowTransfer{Key: "k", Entry: store.Entry{"v": {"stale"}},
		Meta: store.Meta{CSN: 1, WallTS: localMeta.WallTS - 10}}) {
		t.Fatal("older version won the resolver")
	}
	// Newer incoming version wins.
	if !master.MergeRepair(RowTransfer{Key: "k", Entry: store.Entry{"v": {"fresh"}},
		Meta: store.Meta{CSN: 1, WallTS: localMeta.WallTS + 10}}) {
		t.Fatal("newer version lost the resolver")
	}
	if e, _, _ := master.Store().GetCommitted("k"); e.First("v") != "fresh" {
		t.Fatalf("resolver winner not installed: %v", e)
	}
}

func TestCmpVersionsOrdering(t *testing.T) {
	e := store.Entry{"v": {"x"}}
	for i, tc := range []struct {
		am, bm store.Meta
		want   int
	}{
		{store.Meta{WallTS: 2}, store.Meta{WallTS: 1}, 1},
		{store.Meta{WallTS: 1}, store.Meta{WallTS: 2}, -1},
		{store.Meta{WallTS: 1, CSN: 5}, store.Meta{WallTS: 1, CSN: 3}, 1},
		{store.Meta{WallTS: 1, CSN: 3}, store.Meta{WallTS: 1, CSN: 5}, -1},
		{store.Meta{WallTS: 1, CSN: 1}, store.Meta{WallTS: 1, CSN: 1}, 0},
	} {
		got := cmpVersions(e, tc.am, e, tc.bm)
		switch {
		case tc.want > 0 && got <= 0, tc.want < 0 && got >= 0, tc.want == 0 && got != 0:
			t.Errorf("case %d: cmpVersions = %d, want sign %d", i, got, tc.want)
		}
	}
	// Tombstones canonicalize distinctly from any live content.
	if cmpVersions(nil, store.Meta{WallTS: 1, Tombstone: true}, e, store.Meta{WallTS: 1}) == 0 {
		t.Error("tombstone vs live content compared equal")
	}
}

func TestResolverSwapUsedByMergeRecord(t *testing.T) {
	// mergeRecord must route true conflicts through the configured
	// resolver; a counting resolver proves the path.
	n := newRig(t, 1, "eu", "us")
	master := n.master
	master.Store().SetMultiMaster(true)
	calls := 0
	master.SetResolver(countingResolver{&calls})

	master.Store().PutDirect("k", store.Entry{"v": {"local"}},
		store.Meta{WallTS: 5, VC: vclock.VC{"m": 1}})
	master.mergeRecord(&store.CommitRecord{
		CSN: 9, WallTS: 9, Origin: "peer",
		Ops: []store.Op{{Kind: store.OpPut, Key: "k",
			Entry: store.Entry{"v": {"remote"}}, VC: vclock.VC{"p": 1}}},
	})
	if calls != 1 {
		t.Fatalf("resolver invoked %d times, want 1", calls)
	}
	if got := master.Conflicts.Value(); got != 1 {
		t.Fatalf("Conflicts = %d, want 1", got)
	}
}

type countingResolver struct{ n *int }

func (c countingResolver) Resolve(key string, a store.Entry, am store.Meta, b store.Entry, bm store.Meta) (store.Entry, store.Meta) {
	*c.n++
	return LWW{}.Resolve(key, a, am, b, bm)
}

func TestCanonicalDeterministic(t *testing.T) {
	// Attribute and value ordering must not affect the canonical
	// form (map iteration order is random in Go).
	for i := 0; i < 20; i++ {
		a := store.Entry{"x": {"1", "2"}, "y": {"3"}, "z": {"4"}}
		b := store.Entry{"z": {"4"}, "y": {"3"}, "x": {"2", "1"}}
		if canonical(a, store.Meta{}) != canonical(b, store.Meta{}) {
			t.Fatalf("canonical unstable: %q vs %q (iter %d)",
				canonical(a, store.Meta{}), canonical(b, store.Meta{}), i)
		}
	}
	if canonical(nil, store.Meta{Tombstone: true}) == canonical(store.Entry{}, store.Meta{}) {
		t.Fatal("tombstone canonical collides with empty entry")
	}
	_ = fmt.Sprint() // keep fmt for future cases
}
