package replication

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/simnet"
	"repro/internal/store"
)

func TestParseQuorumPolicy(t *testing.T) {
	cases := []struct {
		in   string
		want QuorumPolicy
	}{
		{"majority", QuorumPolicy{Mode: QuorumMajority}},
		{"", QuorumPolicy{Mode: QuorumMajority}},
		{"k=2", QuorumPolicy{Mode: QuorumCount, K: 2}},
		{"count=3", QuorumPolicy{Mode: QuorumCount, K: 3}},
		{"site", QuorumPolicy{Mode: QuorumSiteAware, Local: 1, Remote: 1}},
		{"site:2+1", QuorumPolicy{Mode: QuorumSiteAware, Local: 2, Remote: 1}},
	}
	for _, c := range cases {
		got, err := ParseQuorumPolicy(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseQuorumPolicy(%q) = %+v, %v; want %+v", c.in, got, err, c.want)
		}
		if rt, err := ParseQuorumPolicy(got.String()); err != nil || rt != got {
			t.Errorf("round trip %q -> %q failed: %+v, %v", c.in, got, rt, err)
		}
	}
	for _, bad := range []string{"k=0", "k=x", "site:+1", "site:1", "site:-1+1", "best-effort"} {
		if _, err := ParseQuorumPolicy(bad); err == nil {
			t.Errorf("ParseQuorumPolicy(%q) accepted", bad)
		}
	}
}

func TestQuorumMajorityPaysMedianNotMax(t *testing.T) {
	// Three copies, one slave near (2ms) and one far (30ms): a
	// majority quorum (master + 1 slave) must complete at roughly the
	// near slave's RTT, not the far one's.
	r := newRig(t, 2, "eu", "us", "apac")
	r.net.SetLink("eu", "us", simnet.Link{Latency: 2 * time.Millisecond})
	r.net.SetLink("eu", "apac", simnet.Link{Latency: 30 * time.Millisecond})
	r.master.SetDurability(Quorum)

	start := time.Now()
	rec := r.commit(t, "k1", "v1")
	elapsed := time.Since(start)
	if elapsed >= 60*time.Millisecond {
		t.Fatalf("quorum commit took %v, ~max-replica RTT; want ~median", elapsed)
	}
	if wm := r.master.QuorumWatermark(); wm < rec.CSN {
		t.Fatalf("watermark %d < committed CSN %d", wm, rec.CSN)
	}
	if got := r.master.QuorumSize(); got != 2 {
		t.Fatalf("QuorumSize = %d, want 2 (majority of 3)", got)
	}
}

func TestQuorumLiveWithReplicaDown(t *testing.T) {
	// sync-all stalls when any peer is down; a majority quorum keeps
	// committing.
	r := newRig(t, 2, "eu", "us", "apac")
	r.master.SetDurability(Quorum)
	r.net.Partition([]string{"apac"})

	rec := r.commit(t, "k1", "v1")
	waitFor(t, func() bool { return r.master.QuorumWatermark() >= rec.CSN }, "quorum with peer down")

	r.master.SetDurability(SyncAll)
	txn := r.master.Store().Begin(store.ReadCommitted)
	txn.Put("k2", store.Entry{"v": {"v2"}})
	if _, err := txn.Commit(); !errors.Is(err, ErrDurability) {
		t.Fatalf("sync-all with peer down: err = %v, want ErrDurability", err)
	}
}

func TestQuorumCountKofNAckAfterTimeout(t *testing.T) {
	// k=2 with one slave partitioned away: the commit misses its
	// durability deadline, but the record stays applied and the late
	// ack still completes the quorum after the heal.
	r := newTunedRig(t, 2, func(n *Node) { n.CallTimeout = 20 * time.Millisecond },
		"eu", "us", "apac")
	r.master.SetDurability(Quorum)
	r.master.SetQuorumPolicy(QuorumPolicy{Mode: QuorumCount, K: 2})
	r.net.Partition([]string{"apac"})

	txn := r.master.Store().Begin(store.ReadCommitted)
	txn.Put("k1", store.Entry{"v": {"v1"}})
	rec, err := txn.Commit()
	if !errors.Is(err, ErrDurability) {
		t.Fatalf("k=2 with a peer down: err = %v, want ErrDurability", err)
	}
	if _, _, ok := r.master.Store().GetCommitted("k1"); !ok {
		t.Fatal("timed-out quorum commit lost locally")
	}
	if wm := r.master.QuorumWatermark(); wm >= rec.CSN {
		t.Fatalf("watermark %d covers CSN %d before the quorum exists", wm, rec.CSN)
	}

	r.net.Heal()
	waitFor(t, func() bool { return r.master.QuorumWatermark() >= rec.CSN }, "late ack completes quorum")
}

func TestQuorumSiteAware(t *testing.T) {
	// Master in eu with a local eu slave and two remote slaves. A
	// site:2+1 policy needs the local slave AND one remote: local acks
	// alone must not complete the quorum.
	r := newTunedRig(t, 3, func(n *Node) { n.CallTimeout = 20 * time.Millisecond },
		"eu", "eu", "us", "apac")
	r.master.SetDurability(Quorum)
	r.master.SetQuorumPolicy(QuorumPolicy{Mode: QuorumSiteAware, Local: 2, Remote: 1})
	if got := r.master.QuorumSize(); got != 3 {
		t.Fatalf("QuorumSize = %d, want 3 (2 local + 1 remote)", got)
	}

	// Cut eu off: the local slave acks, no remote can.
	r.net.Partition([]string{"eu"})
	txn := r.master.Store().Begin(store.ReadCommitted)
	txn.Put("k1", store.Entry{"v": {"v1"}})
	if _, err := txn.Commit(); !errors.Is(err, ErrDurability) {
		t.Fatalf("site-aware quorum with remotes cut: err = %v, want ErrDurability", err)
	}

	// One remote reachable is enough; the other may stay away.
	r.net.PartitionGroups([]string{"eu", "us"}, []string{"apac"})
	rec := r.commit(t, "k2", "v2")
	waitFor(t, func() bool { return r.master.QuorumWatermark() >= rec.CSN },
		"local + one remote completes site-aware quorum")
}

func TestQuorumPeerChangeMidWait(t *testing.T) {
	// Removing a dead peer mid-wait shrinks n and completes a pending
	// quorum from acks already received.
	r := newRig(t, 2, "eu", "us", "apac")
	r.master.SetDurability(Quorum)
	r.master.SetQuorumPolicy(QuorumPolicy{Mode: QuorumCount, K: 2})
	apac := r.nodes[2].Addr()
	r.net.Partition([]string{"apac"})

	done := make(chan error, 1)
	go func() {
		txn := r.master.Store().Begin(store.ReadCommitted)
		txn.Put("k1", store.Entry{"v": {"v1"}})
		_, err := txn.Commit()
		done <- err
	}()

	// Let the live slave ack, then drop the dead peer.
	waitFor(t, func() bool {
		for _, st := range r.master.SenderStats() {
			if st.Peer != apac && st.AckedCSN >= 1 {
				return true
			}
		}
		return false
	}, "live slave ack")
	r.master.RemovePeer(apac)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("commit after dead-peer removal: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("quorum wait did not re-evaluate after RemovePeer")
	}

	// Replacing the peer set mid-wait must not strand the waiter: the
	// commit record was queued to the old senders, so the wait times
	// out with ErrDurability instead of hanging.
	r.net.Partition([]string{"us", "apac"})
	go func() {
		txn := r.master.Store().Begin(store.ReadCommitted)
		txn.Put("k2", store.Entry{"v": {"v2"}})
		_, err := txn.Commit()
		done <- err
	}()
	time.Sleep(2 * time.Millisecond)
	r.master.SetPeers(r.nodes[1].Addr(), r.nodes[2].Addr())
	select {
	case err := <-done:
		if err != nil && !errors.Is(err, ErrDurability) {
			t.Fatalf("commit across SetPeers: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("quorum wait hung across SetPeers")
	}
}

func TestQuorumWatermarkLagAndWaitQuorum(t *testing.T) {
	// A partitioned straggler accumulates watermark lag while quorum
	// commits proceed; WaitQuorum returns where WaitCaughtUp times out.
	r := newRig(t, 2, "eu", "us", "apac")
	r.master.SetDurability(Quorum)
	apac := r.nodes[2].Addr()
	r.net.Partition([]string{"apac"})

	var last *store.CommitRecord
	for i := 0; i < 5; i++ {
		last = r.commit(t, "k", "v")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := r.master.WaitQuorum(ctx); err != nil {
		t.Fatalf("WaitQuorum with straggler: %v", err)
	}
	if wm := r.master.QuorumWatermark(); wm != last.CSN {
		t.Fatalf("watermark = %d, want %d", wm, last.CSN)
	}
	if lag := r.master.WatermarkLag()[apac]; lag != last.CSN {
		t.Fatalf("straggler watermark lag = %d, want %d", lag, last.CSN)
	}

	short, cancel2 := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel2()
	if err := r.master.WaitCaughtUp(short); err == nil {
		t.Fatal("WaitCaughtUp returned with a straggler behind")
	}
}

func TestQuorumNoPeersIsLocal(t *testing.T) {
	// A single-copy partition under Quorum durability commits locally:
	// the master is the whole quorum.
	n := simnet.New(simnet.FastConfig())
	node := NewNode(n, simnet.MakeAddr("eu", "m"))
	defer node.Stop()
	rep := node.AddReplica("p1", store.New("m"))
	rep.SetDurability(Quorum)

	txn := rep.Store().Begin(store.ReadCommitted)
	txn.Put("k1", store.Entry{"v": {"v1"}})
	rec, err := txn.Commit()
	if err != nil {
		t.Fatalf("commit: %v", err)
	}
	if wm := rep.QuorumWatermark(); wm != rec.CSN {
		t.Fatalf("watermark = %d, want %d", wm, rec.CSN)
	}
}

func TestInFlightWindowShedsStraggler(t *testing.T) {
	r := newTunedRig(t, 2, func(n *Node) { n.InFlightWindow = 8 },
		"eu", "us", "apac")
	r.master.SetDurability(Quorum)
	apac := r.nodes[2].Addr()
	straggler := r.slaves[1]
	r.net.Partition([]string{"apac"})

	var last *store.CommitRecord
	for i := 0; i < 50; i++ {
		last = r.commit(t, "k", "v")
	}
	waitFor(t, func() bool { return r.master.QuorumWatermark() >= last.CSN }, "quorum progress")

	// Nothing was delivered to the partitioned peer, so the window
	// settles at exactly 8 queued records with the other 42 shed.
	waitFor(t, func() bool {
		for _, st := range r.master.SenderStats() {
			if st.Peer == apac {
				return st.Shed == 42 && st.QueueDepth == 8
			}
		}
		return false
	}, "window sheds the straggler's backlog")

	// Heal: the gapped stream stays stuck until a repair primes the
	// watermark (anti-entropy's WatermarkReq does this in production).
	r.net.Heal()
	time.Sleep(20 * time.Millisecond)
	if straggler.Store().AppliedCSN() != 0 {
		t.Fatal("gapped stream applied records out of order")
	}
	straggler.Store().SetAppliedCSN(last.CSN - 8)
	waitFor(t, func() bool {
		for _, st := range r.master.SenderStats() {
			if st.Peer == apac {
				return st.AckedCSN == last.CSN
			}
		}
		return false
	}, "re-attached straggler drains the window")
}
