package replication

import (
	"sort"
	"strconv"
	"strings"

	"repro/internal/store"
	"repro/internal/subscriber"
)

// LWW is the last-writer-wins resolver: the version with the higher
// commit wall-clock timestamp survives; ties break deterministically
// on a canonical serialization so both replicas pick the same winner.
type LWW struct{}

// Resolve implements Resolver.
func (LWW) Resolve(key string, a store.Entry, am store.Meta, b store.Entry, bm store.Meta) (store.Entry, store.Meta) {
	if cmpVersions(a, am, b, bm) >= 0 {
		return a.Clone(), am
	}
	return b.Clone(), bm
}

// cmpVersions orders two row versions: by WallTS, then CSN, then
// canonical content. It returns >0 when a wins, <0 when b wins.
func cmpVersions(a store.Entry, am store.Meta, b store.Entry, bm store.Meta) int {
	switch {
	case am.WallTS != bm.WallTS:
		if am.WallTS > bm.WallTS {
			return 1
		}
		return -1
	case am.CSN != bm.CSN:
		if am.CSN > bm.CSN {
			return 1
		}
		return -1
	default:
		return strings.Compare(canonical(a, am), canonical(b, bm))
	}
}

// canonical renders an entry deterministically for tie-breaking.
func canonical(e store.Entry, m store.Meta) string {
	if m.Tombstone {
		return "\x00tombstone"
	}
	keys := make([]string, 0, len(e))
	for k := range e {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		sb.WriteString(k)
		sb.WriteByte('=')
		vs := append([]string(nil), e[k]...)
		sort.Strings(vs)
		sb.WriteString(strings.Join(vs, ","))
		sb.WriteByte(';')
	}
	return sb.String()
}

// SubscriberMerge is a field-level resolver specialized for
// subscriber profiles, illustrating §5's consistency restoration with
// domain knowledge instead of blunt LWW:
//
//   - barring flags merge with OR (safety bias: if either side barred
//     the call type, stay barred — the paper's §3.2 example of kids
//     dialling a hi-toll number makes the cost asymmetry clear);
//   - the authentication sequence number takes the maximum (replaying
//     an SQN backwards would break authentication);
//   - location data follows the newer write (mobility is
//     time-ordered);
//   - everything else follows last-writer-wins.
//
// Deletion conflicts resolve by timestamp (LWW on existence).
type SubscriberMerge struct{}

// Resolve implements Resolver.
func (SubscriberMerge) Resolve(key string, a store.Entry, am store.Meta, b store.Entry, bm store.Meta) (store.Entry, store.Meta) {
	// Existence conflicts: pure LWW.
	if am.Tombstone || bm.Tombstone {
		return LWW{}.Resolve(key, a, am, b, bm)
	}
	// Non-subscriber rows fall back to LWW.
	if a.First(subscriber.AttrObjectClass) != subscriber.ObjectClass ||
		b.First(subscriber.AttrObjectClass) != subscriber.ObjectClass {
		return LWW{}.Resolve(key, a, am, b, bm)
	}

	newer, newerMeta, older := a, am, b
	if cmpVersions(a, am, b, bm) < 0 {
		newer, newerMeta, older = b, bm, a
	}
	merged := newer.Clone()

	// Safety-biased OR for barring flags.
	for _, attr := range []string{
		subscriber.AttrBarOutgoing,
		subscriber.AttrBarPremium,
		subscriber.AttrBarRoaming,
	} {
		if older.First(attr) == "TRUE" || newer.First(attr) == "TRUE" {
			merged[attr] = []string{"TRUE"}
		}
	}

	// Max-merge the authentication sequence number.
	an, _ := strconv.ParseUint(newer.First(subscriber.AttrSQN), 10, 64)
	bn, _ := strconv.ParseUint(older.First(subscriber.AttrSQN), 10, 64)
	if bn > an {
		merged[subscriber.AttrSQN] = []string{strconv.FormatUint(bn, 10)}
	}

	return merged, newerMeta
}
