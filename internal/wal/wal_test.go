package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/store"
)

// seg1 is the first segment's file name — the entire log for tests
// that never checkpoint.
var seg1 = fmt.Sprintf("%s%08d%s", segPrefix, 1, segSuffix)

func commitN(t *testing.T, s *store.Store, l *Log, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		txn := s.Begin(store.ReadCommitted)
		txn.Put(fmt.Sprintf("k%04d", i), store.Entry{"v": {fmt.Sprint(i)}})
		rec, err := txn.Commit()
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
}

func TestAppendSyncRecover(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Periodic)
	if err != nil {
		t.Fatal(err)
	}
	s := store.New("r1")
	commitN(t, s, l, 10)
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	recovered := store.New("r1")
	csn, replayed, err := Recover(dir, recovered)
	if err != nil {
		t.Fatal(err)
	}
	if csn != 10 || replayed != 10 {
		t.Fatalf("csn=%d replayed=%d", csn, replayed)
	}
	if recovered.Len() != 10 || recovered.CSN() != 10 {
		t.Fatalf("len=%d csn=%d", recovered.Len(), recovered.CSN())
	}
	e, _, ok := recovered.GetCommitted("k0007")
	if !ok || e.First("v") != "7" {
		t.Fatalf("row = %v %v", e, ok)
	}
}

func TestUnsyncedTailLost(t *testing.T) {
	// The paper's periodic-save trade-off: a crash loses the
	// un-synced tail (§3.1, §4.2).
	dir := t.TempDir()
	l, err := Open(dir, Periodic)
	if err != nil {
		t.Fatal(err)
	}
	s := store.New("r1")
	commitN(t, s, l, 5)
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	// Five more commits, never synced.
	for i := 5; i < 10; i++ {
		txn := s.Begin(store.ReadCommitted)
		txn.Put(fmt.Sprintf("k%04d", i), store.Entry{"v": {fmt.Sprint(i)}})
		rec, _ := txn.Commit()
		l.Append(rec)
	}
	if got := l.Pending(); got != 5 {
		t.Fatalf("pending = %d, want 5", got)
	}
	l.Close() // crash: no final sync

	recovered := store.New("r1")
	csn, _, err := Recover(dir, recovered)
	if err != nil {
		t.Fatal(err)
	}
	if csn > 5 {
		// Buffered writes may straddle the bufio boundary; we may
		// recover a few more than the synced 5, but never all 10.
		if csn == 10 {
			t.Fatalf("recovered all %d commits despite missing sync", csn)
		}
	}
	if csn < 5 {
		t.Fatalf("lost synced commits: csn = %d", csn)
	}
}

func TestSyncEveryCommitLosesNothing(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, SyncEveryCommit)
	if err != nil {
		t.Fatal(err)
	}
	s := store.New("r1")
	commitN(t, s, l, 10)
	if l.Pending() != 0 {
		t.Fatalf("pending = %d in sync mode", l.Pending())
	}
	l.Close() // crash is harmless: everything synced

	recovered := store.New("r1")
	csn, _, err := Recover(dir, recovered)
	if err != nil {
		t.Fatal(err)
	}
	if csn != 10 || recovered.Len() != 10 {
		t.Fatalf("csn=%d len=%d", csn, recovered.Len())
	}
}

func TestCheckpointPrunesLog(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Periodic)
	if err != nil {
		t.Fatal(err)
	}
	s := store.New("r1")
	commitN(t, s, l, 20)
	if err := l.Checkpoint(s); err != nil {
		t.Fatal(err)
	}
	// The sealed segment holding the 20 commits is gone; appends
	// continue in a fresh segment.
	if _, err := os.Stat(segPath(dir, 1)); !os.IsNotExist(err) {
		t.Fatalf("sealed segment survived checkpoint: %v", err)
	}
	fi, err := os.Stat(segPath(dir, 2))
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != 0 {
		t.Fatalf("active segment size after checkpoint = %d", fi.Size())
	}
	// More commits after the snapshot.
	for i := 20; i < 25; i++ {
		txn := s.Begin(store.ReadCommitted)
		txn.Put(fmt.Sprintf("k%04d", i), store.Entry{"v": {fmt.Sprint(i)}})
		rec, _ := txn.Commit()
		l.Append(rec)
	}
	l.Sync()
	l.Close()

	recovered := store.New("r1")
	csn, replayed, err := Recover(dir, recovered)
	if err != nil {
		t.Fatal(err)
	}
	if csn != 25 || recovered.Len() != 25 {
		t.Fatalf("csn=%d len=%d", csn, recovered.Len())
	}
	if replayed != 5 {
		t.Fatalf("replayed = %d, want 5 (snapshot covered the rest)", replayed)
	}
}

func TestSnapshotPreservesTombstones(t *testing.T) {
	dir := t.TempDir()
	l, _ := Open(dir, Periodic)
	s := store.New("r1")
	commitN(t, s, l, 3)
	txn := s.Begin(store.ReadCommitted)
	txn.Delete("k0001")
	rec, _ := txn.Commit()
	l.Append(rec)
	if err := l.Checkpoint(s); err != nil {
		t.Fatal(err)
	}
	l.Close()

	recovered := store.New("r1")
	if _, _, err := Recover(dir, recovered); err != nil {
		t.Fatal(err)
	}
	if recovered.Len() != 2 {
		t.Fatalf("len = %d, want 2", recovered.Len())
	}
	m, ok := recovered.MetaOf("k0001")
	if !ok || !m.Tombstone {
		t.Fatalf("tombstone lost: %v %v", m, ok)
	}
}

func TestRecoverEmptyDir(t *testing.T) {
	s := store.New("r1")
	csn, replayed, err := Recover(t.TempDir(), s)
	if err != nil || csn != 0 || replayed != 0 {
		t.Fatalf("empty recover: %d %d %v", csn, replayed, err)
	}
}

func TestTornTailDiscarded(t *testing.T) {
	dir := t.TempDir()
	l, _ := Open(dir, SyncEveryCommit)
	s := store.New("r1")
	commitN(t, s, l, 5)
	l.Close()

	// Corrupt the tail: append garbage bytes.
	f, err := os.OpenFile(filepath.Join(dir, seg1), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0x01, 0x02, 0x03})
	f.Close()

	recovered := store.New("r1")
	csn, _, err := Recover(dir, recovered)
	if err != nil {
		t.Fatal(err)
	}
	if csn != 5 {
		t.Fatalf("csn = %d after torn tail", csn)
	}
}

func TestClosedLogRejectsOps(t *testing.T) {
	dir := t.TempDir()
	l, _ := Open(dir, Periodic)
	l.Close()
	if err := l.Append(&store.CommitRecord{CSN: 1}); err != ErrClosed {
		t.Fatalf("append after close = %v", err)
	}
	if err := l.Sync(); err != ErrClosed {
		t.Fatalf("sync after close = %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double close = %v", err)
	}
}

func TestPeriodicFlusher(t *testing.T) {
	dir := t.TempDir()
	l, _ := Open(dir, Periodic)
	l.StartPeriodic(5 * time.Millisecond)
	s := store.New("r1")
	commitN(t, s, l, 3)
	deadline := time.Now().Add(2 * time.Second)
	for l.Pending() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("periodic flusher never synced")
		}
		time.Sleep(2 * time.Millisecond)
	}
	l.Close()
}

func TestModeString(t *testing.T) {
	if Periodic.String() != "periodic" || SyncEveryCommit.String() != "sync-every-commit" {
		t.Fatal("mode strings")
	}
}

func TestRecoverSlaveAppliedCSN(t *testing.T) {
	dir := t.TempDir()
	l, _ := Open(dir, Periodic)
	s := store.New("slave")
	s.SetRole(store.Slave)
	// Simulate replicated applies then snapshot.
	for i := 1; i <= 4; i++ {
		rec := &store.CommitRecord{CSN: uint64(i), Origin: "m", Ops: []store.Op{
			{Kind: store.OpPut, Key: fmt.Sprintf("k%d", i), Entry: store.Entry{"v": {"x"}}},
		}}
		if err := s.ApplyReplicated(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Checkpoint(s); err != nil {
		t.Fatal(err)
	}
	l.Close()

	recovered := store.New("slave")
	recovered.SetRole(store.Slave)
	if _, _, err := Recover(dir, recovered); err != nil {
		t.Fatal(err)
	}
	if recovered.AppliedCSN() != 4 {
		t.Fatalf("applied CSN = %d", recovered.AppliedCSN())
	}
}
