// Compact binary codec for commit records.
//
// The seed WAL serialized every record through encoding/gob, which
// re-transmits type descriptors, reflects over every field and
// allocates per record. The hot write path (§2.3: location updates and
// SQN advances dominate) deserves a fixed, length-prefixed layout:
//
//	frame   := uvarint(len(payload)) payload crc32(payload)
//	payload := uvarint(CSN) uvarint(WallTS) str(Origin)
//	           uvarint(nOps) op*
//	op      := byte(Kind) str(Key) entry mods vc
//	entry   := uvarint(0)                    -- nil entry (deletes)
//	         | uvarint(nAttrs+1) attr*       -- counted attributes
//	attr    := str(name) uvarint(nVals) str(val)*
//	mods    := uvarint(nMods) (byte(Kind) str(attr) uvarint(nVals) str(val)*)*
//	vc      := uvarint(nIDs) (str(id) uvarint(counter))*
//	str     := uvarint(len) bytes
//
// The CRC closes the frame so recovery can tell a torn tail (short
// read: the crash cut a batch mid-write — truncated silently) from a
// corrupt record (surfaced as an error; the tail may hold good data).
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"repro/internal/store"
	"repro/internal/vclock"
)

// ErrCorrupt reports a frame whose checksum or structure is invalid.
var ErrCorrupt = errors.New("wal: corrupt record")

// errShort reports a truncated payload: a torn tail, not corruption.
var errShort = errors.New("wal: short record")

// maxFrame bounds one record frame; a length prefix beyond it is
// treated as corruption rather than an allocation request.
const maxFrame = 64 << 20

// appendString appends a uvarint-counted string.
func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// appendEntry appends an entry with a nil/present discriminator.
func appendEntry(b []byte, e store.Entry) []byte {
	if e == nil {
		return binary.AppendUvarint(b, 0)
	}
	b = binary.AppendUvarint(b, uint64(len(e))+1)
	for name, vals := range e {
		b = appendString(b, name)
		b = binary.AppendUvarint(b, uint64(len(vals)))
		for _, v := range vals {
			b = appendString(b, v)
		}
	}
	return b
}

// appendRecord appends the payload encoding of rec (no frame).
func appendRecord(b []byte, rec *store.CommitRecord) []byte {
	b = binary.AppendUvarint(b, rec.CSN)
	b = binary.AppendUvarint(b, uint64(rec.WallTS))
	b = appendString(b, rec.Origin)
	b = binary.AppendUvarint(b, uint64(len(rec.Ops)))
	for i := range rec.Ops {
		op := &rec.Ops[i]
		b = append(b, byte(op.Kind))
		b = appendString(b, op.Key)
		b = appendEntry(b, op.Entry)
		b = binary.AppendUvarint(b, uint64(len(op.Mods)))
		for _, m := range op.Mods {
			b = append(b, byte(m.Kind))
			b = appendString(b, m.Attr)
			b = binary.AppendUvarint(b, uint64(len(m.Vals)))
			for _, v := range m.Vals {
				b = appendString(b, v)
			}
		}
		b = binary.AppendUvarint(b, uint64(len(op.VC)))
		for id, n := range op.VC {
			b = appendString(b, id)
			b = binary.AppendUvarint(b, n)
		}
	}
	return b
}

// appendFrame appends payload as one framed record: length prefix,
// payload bytes, CRC32 trailer.
func appendFrame(b, payload []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(payload)))
	b = append(b, payload...)
	return binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(payload))
}

// decoder walks one payload.
type decoder struct {
	buf []byte
	off int
}

func (d *decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		return 0, errShort
	}
	d.off += n
	return v, nil
}

func (d *decoder) count(limit uint64) (int, error) {
	v, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if v > limit {
		return 0, fmt.Errorf("%w: count %d", ErrCorrupt, v)
	}
	return int(v), nil
}

func (d *decoder) byte() (byte, error) {
	if d.off >= len(d.buf) {
		return 0, errShort
	}
	b := d.buf[d.off]
	d.off++
	return b, nil
}

func (d *decoder) string() (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if uint64(len(d.buf)-d.off) < n {
		return "", errShort
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s, nil
}

func (d *decoder) strings(n int) ([]string, error) {
	if n == 0 {
		return nil, nil
	}
	out := make([]string, n)
	for i := range out {
		s, err := d.string()
		if err != nil {
			return nil, err
		}
		out[i] = s
	}
	return out, nil
}

// maxCount caps decoded element counts: anything larger than the
// payload could possibly hold is corruption, not data.
func (d *decoder) maxCount() uint64 { return uint64(len(d.buf)) + 1 }

func (d *decoder) entry() (store.Entry, error) {
	n, err := d.count(d.maxCount())
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	e := make(store.Entry, n-1)
	for i := 0; i < n-1; i++ {
		name, err := d.string()
		if err != nil {
			return nil, err
		}
		nv, err := d.count(d.maxCount())
		if err != nil {
			return nil, err
		}
		vals, err := d.strings(nv)
		if err != nil {
			return nil, err
		}
		e[name] = vals
	}
	return e, nil
}

// decodeRecord parses one payload into rec.
func decodeRecord(payload []byte, rec *store.CommitRecord) error {
	d := decoder{buf: payload}
	var err error
	if rec.CSN, err = d.uvarint(); err != nil {
		return err
	}
	ts, err := d.uvarint()
	if err != nil {
		return err
	}
	rec.WallTS = int64(ts)
	if rec.Origin, err = d.string(); err != nil {
		return err
	}
	nOps, err := d.count(d.maxCount())
	if err != nil {
		return err
	}
	rec.Ops = make([]store.Op, nOps)
	for i := range rec.Ops {
		op := &rec.Ops[i]
		k, err := d.byte()
		if err != nil {
			return err
		}
		op.Kind = store.OpKind(k)
		if op.Key, err = d.string(); err != nil {
			return err
		}
		if op.Entry, err = d.entry(); err != nil {
			return err
		}
		nMods, err := d.count(d.maxCount())
		if err != nil {
			return err
		}
		if nMods > 0 {
			op.Mods = make([]store.Mod, nMods)
			for j := range op.Mods {
				mk, err := d.byte()
				if err != nil {
					return err
				}
				op.Mods[j].Kind = store.ModKind(mk)
				if op.Mods[j].Attr, err = d.string(); err != nil {
					return err
				}
				nv, err := d.count(d.maxCount())
				if err != nil {
					return err
				}
				if op.Mods[j].Vals, err = d.strings(nv); err != nil {
					return err
				}
			}
		}
		nVC, err := d.count(d.maxCount())
		if err != nil {
			return err
		}
		if nVC > 0 {
			op.VC = make(vclock.VC, nVC)
			for j := 0; j < nVC; j++ {
				id, err := d.string()
				if err != nil {
					return err
				}
				n, err := d.uvarint()
				if err != nil {
					return err
				}
				op.VC[id] = n
			}
		}
	}
	if d.off != len(payload) {
		return fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(payload)-d.off)
	}
	return nil
}

// readFrame parses one framed record starting at buf[off]. It returns
// the decoded record and the offset just past the frame. A torn tail
// (any short read) returns errShort; a bad CRC or structure returns
// ErrCorrupt.
func readFrame(buf []byte, off int, rec *store.CommitRecord) (next int, err error) {
	plen, n := binary.Uvarint(buf[off:])
	if n == 0 {
		return off, errShort
	}
	if n < 0 {
		// An overflowing length varint can never be a crash-truncated
		// write; it is corruption and must not be silently truncated.
		return off, fmt.Errorf("%w: frame length varint overflow", ErrCorrupt)
	}
	if plen > maxFrame {
		return off, fmt.Errorf("%w: frame length %d", ErrCorrupt, plen)
	}
	start := off + n
	end := start + int(plen)
	if end+4 > len(buf) {
		return off, errShort
	}
	payload := buf[start:end]
	want := binary.LittleEndian.Uint32(buf[end : end+4])
	if crc32.ChecksumIEEE(payload) != want {
		return off, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	if err := decodeRecord(payload, rec); err != nil {
		if errors.Is(err, errShort) {
			err = fmt.Errorf("%w: truncated payload inside intact frame", ErrCorrupt)
		}
		return off, err
	}
	return end + 4, nil
}
