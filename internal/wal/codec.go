// Compact binary codec for commit records.
//
// The seed WAL serialized every record through encoding/gob, which
// re-transmits type descriptors, reflects over every field and
// allocates per record. The hot write path (§2.3: location updates and
// SQN advances dominate) deserves a fixed, length-prefixed layout:
//
//	frame   := uvarint(len(payload)) payload crc32(payload)
//	payload := uvarint(CSN) uvarint(WallTS) str(Origin)
//	           uvarint(nOps) op*
//	op      := byte(Kind) str(Key) entry mods vc
//	entry   := uvarint(0)                    -- nil entry (deletes)
//	         | uvarint(nAttrs+1) attr*       -- counted attributes
//	attr    := str(name) uvarint(nVals) str(val)*
//	mods    := uvarint(nMods) (byte(Kind) str(attr) uvarint(nVals) str(val)*)*
//	vc      := uvarint(nIDs) (str(id) uvarint(counter))*
//	str     := uvarint(len) bytes
//
// The CRC closes the frame so recovery can tell a torn tail (short
// read: the crash cut a batch mid-write — truncated silently) from a
// corrupt record (surfaced as an error; the tail may hold good data).
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"repro/internal/store"
	"repro/internal/vclock"
)

// ErrCorrupt reports a frame whose checksum or structure is invalid.
var ErrCorrupt = errors.New("wal: corrupt record")

// errShort reports a truncated payload: a torn tail, not corruption.
var errShort = errors.New("wal: short record")

// maxFrame bounds one record frame; a length prefix beyond it is
// treated as corruption rather than an allocation request.
const maxFrame = 64 << 20

// appendString appends a uvarint-counted string.
func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// appendEntry appends an entry with a nil/present discriminator.
func appendEntry(b []byte, e store.Entry) []byte {
	if e == nil {
		return binary.AppendUvarint(b, 0)
	}
	b = binary.AppendUvarint(b, uint64(len(e))+1)
	for name, vals := range e {
		b = appendString(b, name)
		b = binary.AppendUvarint(b, uint64(len(vals)))
		for _, v := range vals {
			b = appendString(b, v)
		}
	}
	return b
}

// appendRecord appends the payload encoding of rec (no frame).
func appendRecord(b []byte, rec *store.CommitRecord) []byte {
	b = binary.AppendUvarint(b, rec.CSN)
	b = binary.AppendUvarint(b, uint64(rec.WallTS))
	b = appendString(b, rec.Origin)
	b = binary.AppendUvarint(b, uint64(len(rec.Ops)))
	for i := range rec.Ops {
		op := &rec.Ops[i]
		b = append(b, byte(op.Kind))
		b = appendString(b, op.Key)
		b = appendEntry(b, op.Entry)
		b = binary.AppendUvarint(b, uint64(len(op.Mods)))
		for _, m := range op.Mods {
			b = append(b, byte(m.Kind))
			b = appendString(b, m.Attr)
			b = binary.AppendUvarint(b, uint64(len(m.Vals)))
			for _, v := range m.Vals {
				b = appendString(b, v)
			}
		}
		b = appendVC(b, op.VC)
	}
	return b
}

// appendFrame appends payload as one framed record: length prefix,
// payload bytes, CRC32 trailer.
func appendFrame(b, payload []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(payload)))
	b = append(b, payload...)
	return binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(payload))
}

// appendVC appends a version vector: uvarint(nIDs) (str uvarint)*.
func appendVC(b []byte, vc vclock.VC) []byte {
	b = binary.AppendUvarint(b, uint64(len(vc)))
	for id, n := range vc {
		b = appendString(b, id)
		b = binary.AppendUvarint(b, n)
	}
	return b
}

// decoder walks one payload.
type decoder struct {
	buf []byte
	off int
	// spans is per-entry scratch for the compact decode below.
	spans []attrSpan
}

type attrSpan struct {
	name       string
	start, end int
}

func (d *decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		return 0, errShort
	}
	d.off += n
	return v, nil
}

func (d *decoder) count(limit uint64) (int, error) {
	v, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if v > limit {
		return 0, fmt.Errorf("%w: count %d", ErrCorrupt, v)
	}
	return int(v), nil
}

func (d *decoder) byte() (byte, error) {
	if d.off >= len(d.buf) {
		return 0, errShort
	}
	b := d.buf[d.off]
	d.off++
	return b, nil
}

func (d *decoder) string() (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if uint64(len(d.buf)-d.off) < n {
		return "", errShort
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s, nil
}

func (d *decoder) strings(n int) ([]string, error) {
	if n == 0 {
		return nil, nil
	}
	out := make([]string, n)
	for i := range out {
		s, err := d.string()
		if err != nil {
			return nil, err
		}
		out[i] = s
	}
	return out, nil
}

// maxCount caps decoded element counts: anything larger than the
// payload could possibly hold is corruption, not data.
func (d *decoder) maxCount() uint64 { return uint64(len(d.buf)) + 1 }

// entry decodes an entry straight into the store's compact resident
// layout: attribute names interned, all values packed into one
// backing array carved into capacity-clamped sub-slices (see
// store/intern.go). Decoded entries become resident rows verbatim on
// replay and snapshot load, so building them tight here is what keeps
// a recovered element as small as a freshly provisioned one.
func (d *decoder) entry() (store.Entry, error) {
	n, err := d.count(d.maxCount())
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	nAttr := n - 1
	if cap(d.spans) < nAttr {
		d.spans = make([]attrSpan, nAttr)
	}
	spans := d.spans[:nAttr]
	// back must be fresh per entry: its final array is retained by the
	// entry's value slices.
	back := make([]string, 0, nAttr)
	for i := range spans {
		name, err := d.string()
		if err != nil {
			return nil, err
		}
		nv, err := d.count(d.maxCount())
		if err != nil {
			return nil, err
		}
		start := len(back)
		for j := 0; j < nv; j++ {
			v, err := d.string()
			if err != nil {
				return nil, err
			}
			back = append(back, v)
		}
		spans[i] = attrSpan{name: store.Intern(name), start: start, end: len(back)}
	}
	// Sub-slice only after all appends: growth may have moved the
	// backing array, and every span must point into the final one.
	e := make(store.Entry, nAttr)
	for _, sp := range spans {
		if sp.start == sp.end {
			e[sp.name] = nil // zero values round-trip as nil
			continue
		}
		e[sp.name] = back[sp.start:sp.end:sp.end]
	}
	return e, nil
}

// vc decodes a version vector written by appendVC.
func (d *decoder) vc() (vclock.VC, error) {
	n, err := d.count(d.maxCount())
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	vc := make(vclock.VC, n)
	for i := 0; i < n; i++ {
		id, err := d.string()
		if err != nil {
			return nil, err
		}
		c, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		vc[id] = c
	}
	return vc, nil
}

// decodeRecord parses one payload into rec.
func decodeRecord(payload []byte, rec *store.CommitRecord) error {
	d := decoder{buf: payload}
	var err error
	if rec.CSN, err = d.uvarint(); err != nil {
		return err
	}
	ts, err := d.uvarint()
	if err != nil {
		return err
	}
	rec.WallTS = int64(ts)
	if rec.Origin, err = d.string(); err != nil {
		return err
	}
	nOps, err := d.count(d.maxCount())
	if err != nil {
		return err
	}
	rec.Ops = make([]store.Op, nOps)
	for i := range rec.Ops {
		op := &rec.Ops[i]
		k, err := d.byte()
		if err != nil {
			return err
		}
		op.Kind = store.OpKind(k)
		if op.Key, err = d.string(); err != nil {
			return err
		}
		if op.Entry, err = d.entry(); err != nil {
			return err
		}
		nMods, err := d.count(d.maxCount())
		if err != nil {
			return err
		}
		if nMods > 0 {
			op.Mods = make([]store.Mod, nMods)
			for j := range op.Mods {
				mk, err := d.byte()
				if err != nil {
					return err
				}
				op.Mods[j].Kind = store.ModKind(mk)
				attr, err := d.string()
				if err != nil {
					return err
				}
				op.Mods[j].Attr = store.Intern(attr)
				nv, err := d.count(d.maxCount())
				if err != nil {
					return err
				}
				if op.Mods[j].Vals, err = d.strings(nv); err != nil {
					return err
				}
			}
		}
		if op.VC, err = d.vc(); err != nil {
			return err
		}
	}
	if d.off != len(payload) {
		return fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(payload)-d.off)
	}
	return nil
}

// readFrame parses one framed record starting at buf[off]. It returns
// the decoded record and the offset just past the frame. A torn tail
// (any short read) returns errShort; a bad CRC or structure returns
// ErrCorrupt.
func readFrame(buf []byte, off int, rec *store.CommitRecord) (next int, err error) {
	plen, n := binary.Uvarint(buf[off:])
	if n == 0 {
		return off, errShort
	}
	if n < 0 {
		// An overflowing length varint can never be a crash-truncated
		// write; it is corruption and must not be silently truncated.
		return off, fmt.Errorf("%w: frame length varint overflow", ErrCorrupt)
	}
	if plen > maxFrame {
		return off, fmt.Errorf("%w: frame length %d", ErrCorrupt, plen)
	}
	start := off + n
	end := start + int(plen)
	if end+4 > len(buf) {
		return off, errShort
	}
	payload := buf[start:end]
	want := binary.LittleEndian.Uint32(buf[end : end+4])
	if crc32.ChecksumIEEE(payload) != want {
		return off, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	if err := decodeRecord(payload, rec); err != nil {
		if errors.Is(err, errShort) {
			err = fmt.Errorf("%w: truncated payload inside intact frame", ErrCorrupt)
		}
		return off, err
	}
	return end + 4, nil
}
