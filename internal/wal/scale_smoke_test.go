package wal

import (
	"fmt"
	"os"
	"testing"
	"time"

	"repro/internal/store"
)

// TestScaleSmoke is the CI scale-smoke job (make scale-smoke): it
// provisions a ~100k-subscriber element through the commit pipeline,
// checkpoints it under live suffix traffic, crashes, and asserts that
// recovery (a) reproduces the exact pre-crash store digest and (b)
// fits a wall-clock budget — the bounded-recovery claim of PR 9 at a
// size where a whole-log O(history) replay would already hurt.
//
// Gated behind SCALE_SMOKE=1: the provisioning loop is deliberately
// heavy for an ordinary `go test ./...` run.
func TestScaleSmoke(t *testing.T) {
	if os.Getenv("SCALE_SMOKE") == "" {
		t.Skip("set SCALE_SMOKE=1 to run the scale smoke test")
	}
	const (
		subs   = 100_000
		batch  = 1000
		suffix = 1000
		// Generous on shared CI iron; local runs finish in ~1s. The
		// budget still catches a regression to whole-history replay or
		// an accidental O(n^2) in image load.
		recoveryBudget = 30 * time.Second
	)

	dir := t.TempDir()
	l, err := Open(dir, Periodic)
	if err != nil {
		t.Fatal(err)
	}
	s := store.New("scale")
	s.SetCommitHook(l.Append)

	for i := 0; i < subs; i += batch {
		txn := s.Begin(store.ReadCommitted)
		for j := i; j < i+batch; j++ {
			txn.Put(fmt.Sprintf("imsi-%09d", j), store.Entry{
				"objectClass": {"subscriber"},
				"imsi":        {fmt.Sprintf("24001%09d", j)},
				"msisdn":      {fmt.Sprintf("4670%08d", j)},
				"cell":        {fmt.Sprintf("cell-%04d", j%4096)},
			})
		}
		if _, err := txn.Commit(); err != nil {
			t.Fatal(err)
		}
	}

	if err := l.Checkpoint(s); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint suffix: what recovery must replay — and all of it.
	for i := 0; i < suffix; i++ {
		txn := s.Begin(store.ReadCommitted)
		txn.Modify(fmt.Sprintf("imsi-%09d", i), store.Mod{
			Kind: store.ModReplace, Attr: "cell", Vals: []string{"cell-moved"},
		})
		if _, err := txn.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	// Crash: no checkpoint of the suffix, just process death.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	recovered := store.New("scale")
	start := time.Now()
	st, err := RecoverWithStats(dir, recovered)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	t.Logf("recovered %d rows (image %d + replayed %d, skipped %d) in %s",
		recovered.Len(), st.SnapshotRows, st.Replayed, st.Skipped, elapsed)

	if st.SnapshotRows != subs {
		t.Fatalf("image rows = %d, want %d", st.SnapshotRows, subs)
	}
	if st.Replayed != suffix {
		t.Fatalf("replayed = %d, want the %d-record suffix only", st.Replayed, suffix)
	}
	if st.Skipped != 0 {
		t.Fatalf("recovery re-read %d pre-checkpoint records", st.Skipped)
	}
	if elapsed > recoveryBudget {
		t.Fatalf("recovery took %s, budget %s", elapsed, recoveryBudget)
	}
	assertStoresEqual(t, s, recovered)
}
