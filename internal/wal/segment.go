// Log segmentation and streaming frame reads.
//
// The log is a sequence of numbered segment files (wal-00000001.seg,
// wal-00000002.seg, ...). Appends always go to the highest-numbered
// segment; a checkpoint seals the active segment and opens the next
// one, so "truncating the prefix covered by the image" is just
// deleting whole sealed files — no rewrite, no byte surgery on a live
// file. Recovery replays segments in order with a bounded read
// buffer, so restart memory is O(max frame), not O(log size).
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

const (
	segPrefix = "wal-"
	segSuffix = ".seg"
	// snapshot generations: snap-00000001.img, ...; the in-flight
	// image is written under tmpSuffix and renamed into place.
	snapPrefix = "snap-"
	snapSuffix = ".img"
	tmpSuffix  = ".tmp"
)

func segPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%08d%s", segPrefix, seq, segSuffix))
}

func snapPath(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%08d%s", snapPrefix, gen, snapSuffix))
}

// listSeqs returns the sorted sequence numbers of files named
// <prefix>NNN<suffix> in dir. A missing directory is an empty log,
// not an error.
func listSeqs(dir, prefix, suffix string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, fmt.Errorf("wal: %w", err)
	}
	var seqs []uint64
	for _, ent := range ents {
		name := ent.Name()
		if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
			continue
		}
		mid := name[len(prefix) : len(name)-len(suffix)]
		n, perr := strconv.ParseUint(mid, 10, 64)
		if perr != nil {
			continue
		}
		seqs = append(seqs, n)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// sweepTemps removes in-flight image files left by a checkpoint that
// crashed before its rename. They were never part of the durable
// state, so deleting them is the crash-recovery arm of the
// no-leaked-temp-file contract.
func sweepTemps(dir string) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, ent := range ents {
		if strings.HasSuffix(ent.Name(), tmpSuffix) {
			os.Remove(filepath.Join(dir, ent.Name()))
		}
	}
}

// fsyncDir makes directory-entry changes (rename, create, unlink)
// durable. Renaming a file persists its new name only once the
// directory itself is synced; skipping this is the classic
// lost-rename crash bug.
func fsyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: dir open: %w", err)
	}
	err = d.Sync()
	cerr := d.Close()
	if err != nil {
		return fmt.Errorf("wal: dir fsync: %w", err)
	}
	if cerr != nil {
		return fmt.Errorf("wal: dir close: %w", cerr)
	}
	return nil
}

// frameScan reads CRC-framed payloads from a stream one at a time,
// reusing one scratch buffer: memory is O(largest frame) regardless
// of file size. It distinguishes a clean end (io.EOF at a frame
// boundary) from a torn tail (errShort: the data ends inside a frame)
// from corruption (ErrCorrupt: an intact-length frame fails its
// checksum).
type frameScan struct {
	r       *bufio.Reader
	scratch []byte
	// consumed is the stream offset just past the last intact frame —
	// the truncation point when the frame after it is torn.
	consumed int64
}

func newFrameScan(r io.Reader) *frameScan {
	return &frameScan{r: bufio.NewReaderSize(r, 256<<10)}
}

// next returns the next frame payload, valid only until the following
// call.
func (fs *frameScan) next() ([]byte, error) {
	var plen uint64
	var shift, n uint
	for {
		b, err := fs.r.ReadByte()
		if err == io.EOF {
			if n == 0 {
				return nil, io.EOF
			}
			return nil, errShort
		}
		if err != nil {
			return nil, fmt.Errorf("wal: read: %w", err)
		}
		n++
		if n > binary.MaxVarintLen64 {
			return nil, fmt.Errorf("%w: frame length varint overflow", ErrCorrupt)
		}
		plen |= uint64(b&0x7f) << shift
		if b < 0x80 {
			break
		}
		shift += 7
	}
	if plen > maxFrame {
		return nil, fmt.Errorf("%w: frame length %d", ErrCorrupt, plen)
	}
	need := int(plen) + 4
	if cap(fs.scratch) < need {
		fs.scratch = make([]byte, need)
	}
	buf := fs.scratch[:need]
	if _, err := io.ReadFull(fs.r, buf); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, errShort
		}
		return nil, fmt.Errorf("wal: read: %w", err)
	}
	payload := buf[:plen]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(buf[plen:]) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	fs.consumed += int64(n) + int64(need)
	return payload, nil
}
