package wal

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/store"
	"repro/internal/vclock"
)

func TestCodecRoundTrip(t *testing.T) {
	recs := []*store.CommitRecord{
		{CSN: 1, WallTS: 1700000000000001, Origin: "se-eu-1/p0", Ops: []store.Op{
			{Kind: store.OpPut, Key: "sub-1", Entry: store.Entry{
				"msisdn": {"34600000001"}, "imsi": {"214010000000001", "214010000000002"},
			}},
		}},
		{CSN: 2, Origin: "", Ops: []store.Op{
			{Kind: store.OpDelete, Key: "sub-2"}, // nil entry
		}},
		{CSN: 1 << 40, WallTS: -7, Origin: "m", Ops: []store.Op{
			{Kind: store.OpModify, Key: "sub-3",
				Entry: store.Entry{"area": {"LA-7"}},
				Mods: []store.Mod{
					{Kind: store.ModReplace, Attr: "area", Vals: []string{"LA-7"}},
					{Kind: store.ModDelete, Attr: "tmp"},
				},
				VC: vclock.VC{"a": 3, "b": 9},
			},
			{Kind: store.OpPut, Key: "sub-4", Entry: store.Entry{"empty": nil}},
		}},
		{CSN: 9}, // no ops
	}
	var buf []byte
	for _, rec := range recs {
		buf = appendFrame(buf, appendRecord(nil, rec))
	}
	off := 0
	for i, want := range recs {
		var got store.CommitRecord
		next, err := readFrame(buf, off, &got)
		if err != nil {
			t.Fatalf("rec %d: %v", i, err)
		}
		off = next
		// The codec decodes empty op lists as nil; normalize.
		w := *want
		if len(w.Ops) == 0 {
			w.Ops = nil
		}
		if len(got.Ops) == 0 {
			got.Ops = nil
		}
		if !reflect.DeepEqual(&got, &w) {
			t.Fatalf("rec %d round trip:\n got %+v\nwant %+v", i, got, w)
		}
	}
	if off != len(buf) {
		t.Fatalf("decoded %d of %d bytes", off, len(buf))
	}
}

func TestCodecTruncationAndCorruption(t *testing.T) {
	rec := &store.CommitRecord{CSN: 7, WallTS: 42, Origin: "o", Ops: []store.Op{
		{Kind: store.OpPut, Key: "k", Entry: store.Entry{"v": {"1"}}},
	}}
	frame := appendFrame(nil, appendRecord(nil, rec))

	// Every strict prefix is a torn tail: error, never a panic or a
	// bogus record.
	for n := 0; n < len(frame); n++ {
		var got store.CommitRecord
		if _, err := readFrame(frame[:n], 0, &got); err == nil {
			t.Fatalf("prefix %d/%d decoded successfully", n, len(frame))
		}
	}
	// A flipped payload byte must fail the checksum.
	bad := append([]byte(nil), frame...)
	bad[len(bad)/2] ^= 0xFF
	var got store.CommitRecord
	if _, err := readFrame(bad, 0, &got); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt frame: err = %v, want ErrCorrupt", err)
	}
	// An overflowing length varint is corruption, never a torn tail:
	// silently truncating here would destroy the good frames after it.
	overflow := bytes.Repeat([]byte{0xFF}, 11)
	if _, err := readFrame(overflow, 0, &got); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("varint overflow: err = %v, want ErrCorrupt", err)
	}
}

// TestGroupCommitConcurrentDurable hammers one sync-every-commit log
// from many goroutines and verifies the core guarantee: every Append
// that returned success is durable across a crash-style close, even
// though cohorts shared fsyncs.
func TestGroupCommitConcurrentDurable(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, SyncEveryCommit)
	if err != nil {
		t.Fatal(err)
	}
	const gors, perG = 8, 30
	var csn atomic.Uint64
	var wg sync.WaitGroup
	for g := 0; g < gors; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				rec := &store.CommitRecord{
					CSN:    csn.Add(1),
					Origin: "m",
					Ops: []store.Op{{Kind: store.OpPut, Key: fmt.Sprintf("g%d-k%d", g, i),
						Entry: store.Entry{"v": {fmt.Sprint(i)}}}},
				}
				if err := l.Append(rec); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if p := l.Pending(); p != 0 {
		t.Fatalf("pending = %d after sync-mode appends", p)
	}
	t.Logf("appends=%d fsyncs=%d (%.1f appends/fsync)",
		l.Appends(), l.Syncs(), float64(l.Appends())/float64(l.Syncs()))
	l.Close() // crash: harmless, every append was acknowledged durable

	recovered := store.New("r")
	gotCSN, replayed, err := Recover(dir, recovered)
	if err != nil {
		t.Fatal(err)
	}
	if want := uint64(gors * perG); gotCSN != want || replayed != gors*perG {
		t.Fatalf("csn=%d replayed=%d, want %d", gotCSN, replayed, want)
	}
	if recovered.Len() != gors*perG {
		t.Fatalf("rows = %d, want %d", recovered.Len(), gors*perG)
	}
}

// TestTornTailBatchRecovery cuts a crash mid batch-write and verifies
// recovery keeps every intact frame, truncates the torn tail off the
// file, and that post-recovery appends are then fully readable.
func TestTornTailBatchRecovery(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, SyncEveryCommit)
	if err != nil {
		t.Fatal(err)
	}
	s := store.New("r1")
	commitN(t, s, l, 6)
	l.Close()

	// Tear the last frame: drop its trailing 3 bytes, as if the crash
	// cut the cohort write short.
	path := filepath.Join(dir, seg1)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	recovered := store.New("r1")
	csn, replayed, err := Recover(dir, recovered)
	if err != nil {
		t.Fatal(err)
	}
	if csn != 5 || replayed != 5 {
		t.Fatalf("csn=%d replayed=%d, want 5", csn, replayed)
	}

	// The torn bytes must be gone: append more records and recover
	// again; everything must be readable.
	l2, err := Open(dir, SyncEveryCommit)
	if err != nil {
		t.Fatal(err)
	}
	recovered.SetRole(store.Master)
	commitN2 := func(n int) {
		for i := 0; i < n; i++ {
			txn := recovered.Begin(store.ReadCommitted)
			txn.Put(fmt.Sprintf("post-%d", i), store.Entry{"v": {"x"}})
			rec, err := txn.Commit()
			if err != nil {
				t.Fatal(err)
			}
			if err := l2.Append(rec); err != nil {
				t.Fatal(err)
			}
		}
	}
	commitN2(4)
	l2.Close()

	final := store.New("r1")
	csn, replayed, err = Recover(dir, final)
	if err != nil {
		t.Fatal(err)
	}
	if csn != 9 || replayed != 9 {
		t.Fatalf("after re-append: csn=%d replayed=%d, want 9", csn, replayed)
	}
	if _, _, ok := final.GetCommitted("post-3"); !ok {
		t.Fatal("post-recovery append lost")
	}
}

// TestRecoverSurfacesMidFileCorruption distinguishes the two failure
// shapes: a torn tail is truncated silently (crash artifact), but a
// corrupt frame with intact records after it must surface an error
// and leave the file alone — silently truncating would destroy
// durably-fsynced commits.
func TestRecoverSurfacesMidFileCorruption(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, SyncEveryCommit)
	if err != nil {
		t.Fatal(err)
	}
	s := store.New("r1")
	commitN(t, s, l, 5)
	l.Close()

	path := filepath.Join(dir, seg1)
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the second frame's payload: frames are
	// identical in size, so frame 2 starts at len/5.
	mut := append([]byte(nil), buf...)
	mut[len(buf)/5+4] ^= 0xFF
	if err := os.WriteFile(path, mut, 0o644); err != nil {
		t.Fatal(err)
	}

	recovered := store.New("r1")
	if _, _, err := Recover(dir, recovered); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("recover over corruption: err = %v, want ErrCorrupt", err)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(mut) {
		t.Fatalf("recover truncated a corrupt (not torn) log: %d -> %d bytes", len(mut), len(after))
	}
}

// TestGroupCommitAppendSyncSnapshotRace drives Append (through the
// store commit pipeline), Sync and Snapshot concurrently; run under
// -race this is the scheduler's memory-safety gauntlet, and the final
// recovery must still see every committed row.
func TestGroupCommitAppendSyncSnapshotRace(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, SyncEveryCommit)
	if err != nil {
		t.Fatal(err)
	}
	s := store.New("r1")
	s.SetCommitPipeline(func(rec *store.CommitRecord) (func() error, error) {
		ticket, needSync, err := l.AppendStage(rec)
		if err != nil {
			return nil, err
		}
		if !needSync {
			return nil, nil
		}
		return func() error { return l.WaitDurable(ticket) }, nil
	})

	const gors, perG = 4, 25
	var wg sync.WaitGroup
	for g := 0; g < gors; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				txn := s.Begin(store.ReadCommitted)
				txn.Put(fmt.Sprintf("g%d-k%d", g, i), store.Entry{"v": {fmt.Sprint(i)}})
				if _, err := txn.Commit(); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	stop := make(chan struct{})
	wg.Add(2)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = l.Sync()
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			if err := l.Checkpoint(s); err != nil {
				t.Error(err)
				return
			}
		}
		close(stop)
	}()
	wg.Wait()
	_ = l.Sync()
	l.Close()

	recovered := store.New("r1")
	if _, _, err := Recover(dir, recovered); err != nil {
		t.Fatal(err)
	}
	if recovered.Len() != gors*perG {
		t.Fatalf("rows = %d, want %d", recovered.Len(), gors*perG)
	}
	if recovered.CSN() != uint64(gors*perG) {
		t.Fatalf("csn = %d, want %d", recovered.CSN(), gors*perG)
	}
}

// TestCrashMidCohortProperty is the randomized crash-restart property
// test for the group-commit write path: concurrent appenders hammer a
// sync-every-commit log while a "killer" goroutine snapshots the live
// log file at a random moment — exactly what a machine crash mid
// cohort write leaves on disk, including a possibly torn final frame.
// Recovery from the copy must yield (a) a contiguous CSN prefix 1..m
// with no gaps and no corruption error, and (b) every append whose
// durable acknowledgement happened strictly before the copy started —
// fsynced bytes cannot be lost by a later crash.
func TestCrashMidCohortProperty(t *testing.T) {
	for round := 0; round < 4; round++ {
		rng := rand.New(rand.NewSource(int64(100 + round)))
		dir := t.TempDir()
		l, err := Open(dir, SyncEveryCommit)
		if err != nil {
			t.Fatal(err)
		}

		// Drive through the store commit pipeline, like the storage
		// element does: staging happens under the commit lock, so WAL
		// order equals CSN order and recovery must yield a contiguous
		// CSN prefix.
		s := store.New("crash")
		s.SetCommitPipeline(func(rec *store.CommitRecord) (func() error, error) {
			ticket, needSync, err := l.AppendStage(rec)
			if err != nil {
				return nil, err
			}
			if !needSync {
				return nil, nil
			}
			return func() error { return l.WaitDurable(ticket) }, nil
		})

		const gors, perG = 6, 25
		acked := make([]atomic.Bool, gors*perG+1)
		var wg sync.WaitGroup
		for g := 0; g < gors; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < perG; i++ {
					txn := s.Begin(store.ReadCommitted)
					txn.Put(fmt.Sprintf("g%d-k%d", g, i), store.Entry{"v": {fmt.Sprint(i)}})
					rec, err := txn.Commit()
					if err != nil {
						t.Error(err)
						return
					}
					acked[rec.CSN].Store(true)
				}
			}(g)
		}

		// The kill: after a random slice of the run, copy the live log
		// file byte-for-byte. Reading while the leader writes may catch
		// a cohort mid-write — the torn-tail shape recovery must eat.
		// (A crash can surface unsynced written bytes or cut a cohort
		// short; it can never lose fsynced bytes, so the copy is a
		// faithful crash image.)
		time.Sleep(time.Duration(rng.Intn(4000)) * time.Microsecond)
		ackedBefore := make([]bool, len(acked))
		for i := range acked {
			ackedBefore[i] = acked[i].Load()
		}
		crashDir := t.TempDir()
		buf, err := os.ReadFile(filepath.Join(dir, seg1))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(crashDir, seg1), buf, 0o644); err != nil {
			t.Fatal(err)
		}
		wg.Wait()
		l.Close()

		recovered := store.New("crash")
		gotCSN, replayed, err := Recover(crashDir, recovered)
		if err != nil {
			t.Fatalf("round %d: recover over crash copy: %v", round, err)
		}
		// (a) contiguous prefix: CSNs are assigned by an atomic counter
		// and staged in commit order, so the replayed set must be
		// exactly 1..m.
		if uint64(replayed) != gotCSN {
			t.Fatalf("round %d: replayed %d records but reached CSN %d — gap in the prefix",
				round, replayed, gotCSN)
		}
		// (b) durable-acknowledged before the copy ⇒ present.
		for c := uint64(1); c < uint64(len(ackedBefore)); c++ {
			if ackedBefore[c] && c > gotCSN {
				t.Fatalf("round %d: CSN %d was acknowledged durable before the crash copy but recovery stopped at %d",
					round, c, gotCSN)
			}
		}
		t.Logf("round %d: copied %d bytes, recovered prefix 1..%d", round, len(buf), gotCSN)
	}
}

// TestTornTailEveryOffset sweeps a synced multi-record log through
// every truncation offset: each one is a legal crash artifact and must
// recover to a contiguous prefix, never an error, and re-opening the
// truncated file for new appends must leave a fully readable log.
func TestTornTailEveryOffset(t *testing.T) {
	master := t.TempDir()
	l, err := Open(master, SyncEveryCommit)
	if err != nil {
		t.Fatal(err)
	}
	s := store.New("r1")
	const n = 5
	commitN(t, s, l, n)
	l.Close()
	buf, err := os.ReadFile(filepath.Join(master, seg1))
	if err != nil {
		t.Fatal(err)
	}

	lastCSN := uint64(0)
	for off := len(buf); off >= 0; off-- {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, seg1), buf[:off], 0o644); err != nil {
			t.Fatal(err)
		}
		recovered := store.New("r1")
		gotCSN, replayed, err := Recover(dir, recovered)
		if err != nil {
			t.Fatalf("offset %d: %v", off, err)
		}
		if uint64(replayed) != gotCSN {
			t.Fatalf("offset %d: replayed=%d csn=%d — gap", off, replayed, gotCSN)
		}
		if gotCSN > lastCSN && off != len(buf) {
			t.Fatalf("offset %d: recovered MORE (%d) than a longer prefix did (%d)", off, gotCSN, lastCSN)
		}
		lastCSN = gotCSN

		// The torn bytes must be gone: append and re-recover.
		l2, err := Open(dir, SyncEveryCommit)
		if err != nil {
			t.Fatal(err)
		}
		recovered.SetRole(store.Master)
		txn := recovered.Begin(store.ReadCommitted)
		txn.Put("post", store.Entry{"v": {"x"}})
		rec, err := txn.Commit()
		if err != nil {
			t.Fatal(err)
		}
		if err := l2.Append(rec); err != nil {
			t.Fatal(err)
		}
		l2.Close()
		final := store.New("r1")
		finalCSN, _, err := Recover(dir, final)
		if err != nil {
			t.Fatalf("offset %d: recover after re-append: %v", off, err)
		}
		if finalCSN != gotCSN+1 {
			t.Fatalf("offset %d: post-truncation append lost (csn %d, want %d)", off, finalCSN, gotCSN+1)
		}
	}
	// Sanity: the untruncated log recovers every record.
	recovered := store.New("r1")
	gotCSN, _, err := Recover(master, recovered)
	if err != nil || gotCSN != n {
		t.Fatalf("full recovery: csn=%d err=%v", gotCSN, err)
	}
}

// TestNoGroupCommitStillDurable pins the E18 baseline knob: with
// coalescing off every append pays its own fsync and durability is
// unchanged.
func TestNoGroupCommitStillDurable(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, SyncEveryCommit)
	if err != nil {
		t.Fatal(err)
	}
	l.SetGroupCommit(false)
	s := store.New("r1")
	commitN(t, s, l, 10)
	if l.Syncs() != 10 || l.Appends() != 10 {
		t.Fatalf("appends=%d syncs=%d, want 10/10 without group commit",
			l.Appends(), l.Syncs())
	}
	l.Close()
	recovered := store.New("r1")
	csn, _, err := Recover(dir, recovered)
	if err != nil || csn != 10 {
		t.Fatalf("csn=%d err=%v", csn, err)
	}
}
