// Checkpoint image codec.
//
// PR 3 removed gob from the log because corruption was undetectable;
// the snapshot kept it until now. The image reuses the log's framing
// so every byte is covered by a CRC and recovery can tell a good
// image from a torn or rotted one:
//
//	file    := magic frame(header) frame(batch)* frame(end)
//	magic   := "UDRSNAP" byte(version)
//	header  := 'H' str(replicaID) uvarint(CSN) uvarint(AppliedCSN)
//	batch   := 'B' uvarint(nRows) row*
//	row     := str(key) entry meta
//	meta    := uvarint(CSN) uvarint(WallTS) byte(flags) vc
//	end     := 'E' uvarint(totalRows)
//
// entry, vc, str and the frame layout are the log codec's (codec.go).
// The end frame doubles as a completeness marker: an image without
// one was cut short, however plausible its prefix looks.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"repro/internal/store"
)

// ErrSnapshotCorrupt reports a checkpoint image that fails its
// magic, checksum, structure or completeness check. It is distinct
// from log ErrCorrupt so callers can see which artifact is damaged;
// recovery reacts by falling back to the previous intact generation.
var ErrSnapshotCorrupt = errors.New("wal: corrupt snapshot")

const (
	snapMagic         = "UDRSNAP\x01"
	snapTagHdr        = 'H'
	snapTagRows       = 'B'
	snapTagEnd        = 'E'
	metaFlagTombstone = 1
	// snapBatchTarget is the payload size at which a row batch is
	// framed and handed to the buffered writer.
	snapBatchTarget = 64 << 10
)

// snapHeader is the decoded header (+ totals once the end frame is
// read).
type snapHeader struct {
	replicaID  string
	csn        uint64
	appliedCSN uint64
	rows       int64
}

func appendMeta(b []byte, m store.Meta) []byte {
	b = binary.AppendUvarint(b, m.CSN)
	b = binary.AppendUvarint(b, uint64(m.WallTS))
	var flags byte
	if m.Tombstone {
		flags |= metaFlagTombstone
	}
	b = append(b, flags)
	return appendVC(b, m.VC)
}

func (d *decoder) meta() (store.Meta, error) {
	var m store.Meta
	var err error
	if m.CSN, err = d.uvarint(); err != nil {
		return m, err
	}
	ts, err := d.uvarint()
	if err != nil {
		return m, err
	}
	m.WallTS = int64(ts)
	flags, err := d.byte()
	if err != nil {
		return m, err
	}
	m.Tombstone = flags&metaFlagTombstone != 0
	if m.VC, err = d.vc(); err != nil {
		return m, err
	}
	return m, nil
}

// writeSnapshot streams a full image of s into dir as generation gen
// and makes it durable: tmp file → fsync → rename → directory fsync.
// It runs outside any store or log lock — ForEachAny takes each
// shard's read lock briefly and the captured entries are immutable
// COW versions, so commits flow while the image streams. Rows
// committed after the watermark may appear in the image with
// CSN > csn; replay is idempotent (post-images, not deltas), so the
// suffix replay simply reinstalls them.
//
// The temp file is removed on every failure path — unless the
// configured crash hook aborted the pass, in which case the on-disk
// state is deliberately left exactly as a real crash would, for the
// crash-at-every-point test.
func writeSnapshot(dir string, gen uint64, s *store.Store, csn, appliedCSN uint64,
	hook func(CheckpointStep) error) (written int64, rows int64, err error) {
	tmp := snapPath(dir, gen) + tmpSuffix
	f, err := os.Create(tmp)
	if err != nil {
		return 0, 0, fmt.Errorf("wal: snapshot create: %w", err)
	}
	cleanup := true
	defer func() {
		if err != nil && cleanup {
			if f != nil {
				f.Close()
			}
			os.Remove(tmp)
		}
	}()
	fire := func(step CheckpointStep) error {
		if hook == nil {
			return nil
		}
		if herr := hook(step); herr != nil {
			cleanup = false // simulated crash: leave artifacts in place
			return herr
		}
		return nil
	}

	w := bufio.NewWriterSize(f, 256<<10)
	if _, err = w.WriteString(snapMagic); err != nil {
		return 0, 0, fmt.Errorf("wal: snapshot write: %w", err)
	}

	hdr := binary.AppendUvarint(append([]byte{snapTagHdr}, // header payload
		appendString(nil, s.ReplicaID())...), csn)
	hdr = binary.AppendUvarint(hdr, appliedCSN)
	if _, err = w.Write(appendFrame(nil, hdr)); err != nil {
		return 0, 0, fmt.Errorf("wal: snapshot write: %w", err)
	}

	// Row batches: encode into a scratch payload, frame it whenever it
	// crosses the target size. Encoding happens inside the ForEachAny
	// callback (under one shard's read lock), but it is pure memory
	// work; file writes happen through the buffered writer.
	payload := make([]byte, 0, snapBatchTarget+4096)
	frame := make([]byte, 0, snapBatchTarget+4096)
	batchRows := 0
	var werr error
	emit := func() bool {
		p := binary.AppendUvarint([]byte{snapTagRows}, uint64(batchRows))
		p = append(p, payload...)
		frame = appendFrame(frame[:0], p)
		if _, werr = w.Write(frame); werr != nil {
			return false
		}
		payload = payload[:0]
		batchRows = 0
		return true
	}
	s.ForEachAny(func(key string, e store.Entry, m store.Meta) bool {
		payload = appendString(payload, key)
		payload = appendEntry(payload, e)
		payload = appendMeta(payload, m)
		rows++
		batchRows++
		if len(payload) >= snapBatchTarget {
			return emit()
		}
		return true
	})
	if werr != nil {
		err = fmt.Errorf("wal: snapshot write: %w", werr)
		return 0, 0, err
	}
	if batchRows > 0 && !emit() {
		err = fmt.Errorf("wal: snapshot write: %w", werr)
		return 0, 0, err
	}

	end := binary.AppendUvarint([]byte{snapTagEnd}, uint64(rows))
	if _, err = w.Write(appendFrame(frame[:0], end)); err != nil {
		return 0, 0, fmt.Errorf("wal: snapshot write: %w", err)
	}
	if err = w.Flush(); err != nil {
		return 0, 0, fmt.Errorf("wal: snapshot flush: %w", err)
	}
	if err = fire(StepImageWritten); err != nil {
		return 0, 0, err
	}
	if err = f.Sync(); err != nil {
		return 0, 0, fmt.Errorf("wal: snapshot fsync: %w", err)
	}
	st, serr := f.Stat()
	if serr == nil {
		written = st.Size()
	}
	if err = f.Close(); err != nil {
		f = nil // already closed; cleanup must not double-close
		return 0, 0, fmt.Errorf("wal: snapshot close: %w", err)
	}
	f = nil
	if err = fire(StepImageSynced); err != nil {
		return 0, 0, err
	}

	// Durability ordering from here on is the crux of the bugfix:
	//  1. rename tmp → final   (atomic swap of the image name)
	//  2. fsync the directory  (the rename itself becomes durable)
	//  3. only then may the caller prune the log prefix / old images.
	// A crash between 1 and 2 can leave the OLD directory contents on
	// disk; if the prefix had already been pruned, acked commits would
	// exist in neither image nor log. With the fsync in between, prune
	// only ever runs once the new image's directory entry is on disk.
	if err = os.Rename(tmp, snapPath(dir, gen)); err != nil {
		return 0, 0, fmt.Errorf("wal: snapshot rename: %w", err)
	}
	if err = fire(StepRenamed); err != nil {
		return 0, 0, err
	}
	if err = fsyncDir(dir); err != nil {
		return 0, 0, err
	}
	if err = fire(StepDirSynced); err != nil {
		return 0, 0, err
	}
	return written, rows, nil
}

// readSnapshot streams one image, verifying magic, per-frame CRCs,
// structure and the end marker. install is called for every row when
// non-nil; a verify-only pass passes nil. Any integrity failure maps
// to ErrSnapshotCorrupt.
func readSnapshot(path string, install func(key string, e store.Entry, m store.Meta)) (snapHeader, error) {
	var hdr snapHeader
	f, err := os.Open(path)
	if err != nil {
		return hdr, err
	}
	defer f.Close()

	br := bufio.NewReaderSize(f, 256<<10)
	magic := make([]byte, len(snapMagic))
	if _, err := io.ReadFull(br, magic); err != nil || string(magic) != snapMagic {
		return hdr, fmt.Errorf("%w: bad magic in %s", ErrSnapshotCorrupt, path)
	}

	fs := &frameScan{r: br}
	corrupt := func(why string) (snapHeader, error) {
		return hdr, fmt.Errorf("%w: %s in %s", ErrSnapshotCorrupt, why, path)
	}
	payload, err := fs.next()
	if err != nil {
		return corrupt("unreadable header frame")
	}
	d := decoder{buf: payload}
	tag, err := d.byte()
	if err != nil || tag != snapTagHdr {
		return corrupt("missing header")
	}
	if hdr.replicaID, err = d.string(); err != nil {
		return corrupt("bad header")
	}
	if hdr.csn, err = d.uvarint(); err != nil {
		return corrupt("bad header")
	}
	if hdr.appliedCSN, err = d.uvarint(); err != nil {
		return corrupt("bad header")
	}

	var rows int64
	var bd decoder // reused across batches so the span scratch persists
	for {
		payload, err := fs.next()
		if err != nil {
			// io.EOF here means the end marker never arrived: the
			// image was cut short, even though every present frame
			// checks out.
			return corrupt("truncated or unreadable frame")
		}
		d := &bd
		d.buf, d.off = payload, 0
		tag, err := d.byte()
		if err != nil {
			return corrupt("empty frame")
		}
		switch tag {
		case snapTagRows:
			n, err := d.count(d.maxCount())
			if err != nil {
				return corrupt("bad batch count")
			}
			for i := 0; i < n; i++ {
				key, err := d.string()
				if err != nil {
					return corrupt("bad row key")
				}
				e, err := d.entry()
				if err != nil {
					return corrupt("bad row entry")
				}
				m, err := d.meta()
				if err != nil {
					return corrupt("bad row meta")
				}
				if install != nil {
					install(key, e, m)
				}
				rows++
			}
			if d.off != len(payload) {
				return corrupt("trailing bytes in batch")
			}
		case snapTagEnd:
			want, err := d.uvarint()
			if err != nil || d.off != len(payload) {
				return corrupt("bad end frame")
			}
			if int64(want) != rows {
				return corrupt(fmt.Sprintf("row count mismatch: image says %d, read %d", want, rows))
			}
			if _, err := fs.next(); err != io.EOF {
				return corrupt("data past end frame")
			}
			hdr.rows = rows
			return hdr, nil
		default:
			return corrupt("unknown frame tag")
		}
	}
}
