// Incremental, non-blocking checkpointing.
//
// The seed implementation held the store's stable-snapshot section —
// which excludes every commit — for the whole collect/encode/write/
// truncate cycle: seconds of write freeze at millions of resident
// subscribers. The checkpoint is now split so the stable section
// covers only a segment rotation (microseconds):
//
//  1. Watermark (stop-the-world, O(1)): inside StableSnapshot, read
//     the commit CSN and rotate the log onto a fresh segment. Commit
//     records are staged under the store's commit lock, so every
//     record in the sealed segments has CSN ≤ the watermark, and every
//     later commit lands in the new segment.
//  2. Image (concurrent): stream the store shard-by-shard into a
//     CRC-framed snapshot file while commits flow. Installed entries
//     are immutable COW versions, so captured rows need no copying
//     and no store-wide lock; a row committed after the watermark may
//     be captured at its newer version, which is harmless because
//     suffix replay reinstalls post-images idempotently.
//  3. Durability point: fsync image, rename into place, fsync the
//     directory. Only past this point is the image allowed to replace
//     any log prefix.
//  4. Prune (concurrent): delete sealed segments — whole files, no
//     byte-level truncation — and all snapshot generations older than
//     the previous one, which is kept as the corruption fallback.
//
// Crash anywhere in the cycle is safe by construction: before step 3
// completes, recovery uses the previous image + all segments; after
// it, the new image + the surviving suffix. Nothing is ever deleted
// before its replacement's directory entry is on disk.
package wal

import (
	"fmt"
	"os"
	"time"

	"repro/internal/store"
)

// CheckpointStep identifies the durability milestones inside a
// checkpoint pass, in order. The crash-at-every-point test aborts the
// pass at each step to prove recovery holds across any crash
// boundary.
type CheckpointStep int

const (
	// StepImageWritten: image bytes handed to the OS, not fsynced.
	StepImageWritten CheckpointStep = iota
	// StepImageSynced: temp image fsynced and closed, not yet renamed.
	StepImageSynced
	// StepRenamed: renamed to its final name; the directory entry is
	// not yet durable.
	StepRenamed
	// StepDirSynced: directory fsynced — the image is now the durable
	// recovery root; pruning has not started.
	StepDirSynced
	// StepPruned: sealed segments and superseded images deleted.
	StepPruned
)

// rotateSegment seals the active segment and switches appends to the
// next one. Called from inside the store's stable-snapshot section:
// no commit can stage concurrently, so flushing the staged buffer
// here makes the sealing segment self-contained, holding exactly the
// records up to the checkpoint watermark.
func (l *Log) rotateSegment() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.stateErrLocked(); err != nil {
		return err
	}
	// Drain any in-flight group flush: its leader holds l.file.
	for l.flushing {
		l.cond.Wait()
		if err := l.stateErrLocked(); err != nil {
			return err
		}
	}
	// Write+fsync the staged records into the sealing segment. Their
	// waiters are released as durable — truthfully, unlike the seed's
	// truncation path which released them against a not-yet-durable
	// image.
	if err := l.flushLocked(); err != nil {
		return err
	}
	if err := l.file.Close(); err != nil {
		l.failed = fmt.Errorf("wal: seal segment: %w", err)
		l.cond.Broadcast()
		return l.failed
	}
	// From here the log has no usable file handle until the new
	// segment opens; any failure must poison the log so later appends
	// fail coherently instead of writing into a closed descriptor.
	nf, err := os.OpenFile(segPath(l.dir, l.segSeq+1), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		l.failed = fmt.Errorf("wal: open segment: %w", err)
		l.cond.Broadcast()
		return l.failed
	}
	// The new segment's directory entry must be durable before any
	// append into it is acknowledged, or a crash could unlink fsynced
	// records wholesale.
	if err := fsyncDir(l.dir); err != nil {
		nf.Close()
		l.failed = fmt.Errorf("wal: segment %w", err)
		l.cond.Broadcast()
		return l.failed
	}
	l.file = nf
	l.segSeq++
	return nil
}

// Checkpoint writes a durable image of s and drops the log prefix it
// covers. Commits continue to flow for all but the watermark step;
// E24 measures the residual commit-latency impact. One checkpoint
// runs at a time; callers must be the store's single checkpoint
// driver (records are staged under the store's commit lock, which the
// watermark step relies on).
func (l *Log) Checkpoint(s *store.Store) error {
	l.ckptMu.Lock()
	defer l.ckptMu.Unlock()
	start := time.Now()

	var csn, appliedCSN uint64
	var rotErr error
	s.StableSnapshot(func(c, a uint64) {
		csn, appliedCSN = c, a
		rotErr = l.rotateSegment()
	})
	if rotErr != nil {
		return rotErr
	}

	l.mu.Lock()
	gen := l.snapGen + 1
	sealedThrough := l.segSeq - 1
	hook := l.hook
	l.mu.Unlock()

	written, rows, err := writeSnapshot(l.dir, gen, s, csn, appliedCSN, hook)
	if err != nil {
		return err
	}
	l.mu.Lock()
	l.snapGen = gen
	l.mu.Unlock()

	if err := l.prune(gen, sealedThrough); err != nil {
		return err
	}
	if hook != nil {
		if err := hook(StepPruned); err != nil {
			return err
		}
	}

	l.ckpts.Add(1)
	l.ckptNanos.Store(time.Since(start).Nanoseconds())
	l.ckptCSN.Store(csn)
	l.ckptBytes.Store(written)
	l.ckptRows.Store(rows)
	return nil
}

// prune deletes the log prefix the generation-gen image covers: every
// sealed segment ≤ sealedThrough (all their records have CSN ≤ the
// image watermark) and every snapshot generation older than gen-1.
// The immediately previous generation survives as the fallback for a
// later corruption of gen. Only called after the image's directory
// entry is durable; a crash mid-prune merely leaves extra files that
// recovery skips and the next checkpoint re-prunes.
func (l *Log) prune(gen, sealedThrough uint64) error {
	segs, err := listSeqs(l.dir, segPrefix, segSuffix)
	if err != nil {
		return err
	}
	for _, q := range segs {
		if q <= sealedThrough {
			if err := os.Remove(segPath(l.dir, q)); err != nil {
				return fmt.Errorf("wal: prune segment: %w", err)
			}
		}
	}
	gens, err := listSeqs(l.dir, snapPrefix, snapSuffix)
	if err != nil {
		return err
	}
	for _, g := range gens {
		if g+1 < gen {
			if err := os.Remove(snapPath(l.dir, g)); err != nil {
				return fmt.Errorf("wal: prune snapshot: %w", err)
			}
		}
	}
	l.mu.Lock()
	if sealedThrough+1 > l.firstSeg {
		l.firstSeg = sealedThrough + 1
	}
	l.mu.Unlock()
	return nil
}

// CheckpointStats is a point-in-time view of checkpoint activity,
// exported as the udr_wal_checkpoint_* metric family.
type CheckpointStats struct {
	// Checkpoints completed over the log's life.
	Checkpoints uint64
	// LastDuration is the wall time of the last completed pass.
	LastDuration time.Duration
	// LastCSN is the last completed pass's watermark.
	LastCSN uint64
	// LastBytes / LastRows describe the last image.
	LastBytes int64
	LastRows  int64
	// Segments is the number of log segments on disk, including the
	// active one. Growth means checkpoints are falling behind log
	// production.
	Segments uint64
}

// CheckpointStats returns current checkpoint counters.
func (l *Log) CheckpointStats() CheckpointStats {
	l.mu.Lock()
	segs := l.segSeq - l.firstSeg + 1
	l.mu.Unlock()
	return CheckpointStats{
		Checkpoints:  l.ckpts.Load(),
		LastDuration: time.Duration(l.ckptNanos.Load()),
		LastCSN:      l.ckptCSN.Load(),
		LastBytes:    l.ckptBytes.Load(),
		LastRows:     l.ckptRows.Load(),
		Segments:     segs,
	}
}
