package wal

import (
	"errors"
	"fmt"
	"os"
	"testing"

	"repro/internal/store"
)

var errSimCrash = errors.New("simulated crash")

// commitRange commits keys [lo,hi) durably, mixing puts and modifies
// so a double replay of any record over snapshot state would be
// visible (a re-applied delta would duplicate values; post-image
// replay must not).
func commitRange(t *testing.T, s *store.Store, l *Log, lo, hi int) {
	t.Helper()
	for i := lo; i < hi; i++ {
		txn := s.Begin(store.ReadCommitted)
		key := fmt.Sprintf("sub-%04d", i%7) // revisit keys: later versions supersede
		if i%3 == 0 {
			txn.Put(key, store.Entry{"imsi": {fmt.Sprint(i)}, "objectClass": {"subscriber"}})
		} else {
			txn.Modify(key, store.Mod{Kind: store.ModAdd, Attr: "visit", Vals: []string{fmt.Sprint(i)}})
		}
		rec, err := txn.Commit()
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
}

// assertStoresEqual compares full row state including metadata.
func assertStoresEqual(t *testing.T, want, got *store.Store) {
	t.Helper()
	if want.Len() != got.Len() {
		t.Fatalf("len: want %d got %d", want.Len(), got.Len())
	}
	want.ForEachAny(func(key string, e store.Entry, m store.Meta) bool {
		ge, gm, ok := got.GetAny(key)
		if !ok {
			t.Fatalf("row %q lost", key)
		}
		if !e.Equal(ge) {
			t.Fatalf("row %q: want %v got %v", key, e, ge)
		}
		if m.CSN != gm.CSN || m.Tombstone != gm.Tombstone {
			t.Fatalf("row %q meta: want %+v got %+v", key, m, gm)
		}
		return true
	})
	if want.CSN() != got.CSN() {
		t.Fatalf("csn: want %d got %d", want.CSN(), got.CSN())
	}
}

// TestCheckpointCrashAtEveryPoint kills a checkpoint at each
// durability milestone — after the image write, after its fsync,
// after the rename, after the directory fsync, after pruning — plus
// the lost-rename variant where the crash undoes a renamed-but-not-
// dir-synced image. Every acknowledged-durable commit must survive
// recovery, and nothing may double-apply, regardless of where the
// kill lands.
func TestCheckpointCrashAtEveryPoint(t *testing.T) {
	steps := []struct {
		name     string
		step     CheckpointStep
		artifact func(t *testing.T, dir string) // post-crash disk surgery
	}{
		{"after-image-write", StepImageWritten, func(t *testing.T, dir string) {
			// The tmp image was never fsynced: a real crash can leave
			// any prefix of it. Cut it in half.
			tmp := snapPath(dir, 2) + tmpSuffix
			fi, err := os.Stat(tmp)
			if err != nil {
				t.Fatalf("expected in-flight tmp image: %v", err)
			}
			if err := os.Truncate(tmp, fi.Size()/2); err != nil {
				t.Fatal(err)
			}
		}},
		{"after-image-fsync", StepImageSynced, nil},
		{"after-rename", StepRenamed, nil},
		{"after-rename-dirent-lost", StepRenamed, func(t *testing.T, dir string) {
			// The rename was not followed by a directory fsync, so the
			// crash may revert it: the new image vanishes. This is the
			// exact ordering bug the seed had — it truncated the log
			// at this point and lost acked writes.
			if err := os.Remove(snapPath(dir, 2)); err != nil {
				t.Fatal(err)
			}
		}},
		{"after-dir-fsync", StepDirSynced, nil},
		{"after-prune", StepPruned, nil},
	}
	for _, tc := range steps {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			l, err := Open(dir, SyncEveryCommit)
			if err != nil {
				t.Fatal(err)
			}
			s := store.New("r1")
			commitRange(t, s, l, 0, 8)
			if err := l.Checkpoint(s); err != nil { // gen 1, clean
				t.Fatal(err)
			}
			commitRange(t, s, l, 8, 14)

			l.hook = func(step CheckpointStep) error {
				if step == tc.step {
					return errSimCrash
				}
				return nil
			}
			if err := l.Checkpoint(s); !errors.Is(err, errSimCrash) {
				t.Fatalf("checkpoint = %v, want simulated crash", err)
			}
			l.Close() // crash: no final sync; everything was acked durable

			if tc.artifact != nil {
				tc.artifact(t, dir)
			}

			recovered := store.New("r1")
			st, err := RecoverWithStats(dir, recovered)
			if err != nil {
				t.Fatalf("recover: %v (stats %+v)", err, st)
			}
			assertStoresEqual(t, s, recovered)

			// Recovery must also leave a log a reopened element can
			// keep appending to, and a second recovery must agree.
			l2, err := Open(dir, SyncEveryCommit)
			if err != nil {
				t.Fatal(err)
			}
			commitRange(t, recovered, l2, 14, 16)
			l2.Close()
			again := store.New("r1")
			if _, err := RecoverWithStats(dir, again); err != nil {
				t.Fatal(err)
			}
			assertStoresEqual(t, recovered, again)
		})
	}
}

// TestCheckpointCommitsFlowDuringImage proves the checkpoint is
// non-blocking: a durable commit issued while the image is being
// written (from inside the crash hook, i.e. strictly between the
// watermark and the image's durability point) must complete instead
// of deadlocking, and must survive recovery. The seed implementation
// held the store's stable-snapshot section across the whole image
// write, so this exact sequence would hang forever.
func TestCheckpointCommitsFlowDuringImage(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, SyncEveryCommit)
	if err != nil {
		t.Fatal(err)
	}
	s := store.New("r1")
	commitRange(t, s, l, 0, 6)

	midCkpt := 0
	l.hook = func(step CheckpointStep) error {
		if step == StepImageWritten {
			commitRange(t, s, l, 100, 103) // commits during the image write
			midCkpt = 3
		}
		return nil
	}
	if err := l.Checkpoint(s); err != nil {
		t.Fatal(err)
	}
	if midCkpt != 3 {
		t.Fatal("hook never ran")
	}
	l.Close()

	recovered := store.New("r1")
	st, err := RecoverWithStats(dir, recovered)
	if err != nil {
		t.Fatal(err)
	}
	assertStoresEqual(t, s, recovered)
	// The mid-checkpoint commits are above the watermark: they must
	// have been replayed from the post-rotation segment.
	if st.Replayed != midCkpt {
		t.Fatalf("replayed %d, want %d (mid-checkpoint suffix)", st.Replayed, midCkpt)
	}
}

// TestRecoverReplaysOnlySuffix asserts the bounded-restart contract:
// after a checkpoint at CSN W, recovery installs the image and
// replays exactly the records above W.
func TestRecoverReplaysOnlySuffix(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, SyncEveryCommit)
	if err != nil {
		t.Fatal(err)
	}
	s := store.New("r1")
	commitRange(t, s, l, 0, 20)
	if err := l.Checkpoint(s); err != nil {
		t.Fatal(err)
	}
	commitRange(t, s, l, 20, 25)
	l.Close()

	recovered := store.New("r1")
	st, err := RecoverWithStats(dir, recovered)
	if err != nil {
		t.Fatal(err)
	}
	if st.Replayed != 5 || st.Skipped != 0 {
		t.Fatalf("replayed=%d skipped=%d, want 5/0", st.Replayed, st.Skipped)
	}
	if st.SnapshotCSN != 20 || st.SnapshotGen != 1 {
		t.Fatalf("snapshot csn=%d gen=%d", st.SnapshotCSN, st.SnapshotGen)
	}
	if st.CSN != 25 {
		t.Fatalf("csn=%d", st.CSN)
	}
	assertStoresEqual(t, s, recovered)
}

// TestCorruptImageFallsBackToPreviousGeneration flips a byte in the
// newest image of a log whose previous generation and full segment
// suffix are still on disk (the crash-before-prune window) and
// expects recovery to reject the bad image with ErrSnapshotCorrupt
// accounting, fall back, and reconstruct everything from the older
// image plus replay.
func TestCorruptImageFallsBackToPreviousGeneration(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, SyncEveryCommit)
	if err != nil {
		t.Fatal(err)
	}
	s := store.New("r1")
	commitRange(t, s, l, 0, 8)
	if err := l.Checkpoint(s); err != nil { // gen 1
		t.Fatal(err)
	}
	commitRange(t, s, l, 8, 14)
	// Second checkpoint crashes after the image is durable but before
	// pruning: gen 2 exists, gen 1 and all segments survive.
	l.hook = func(step CheckpointStep) error {
		if step == StepDirSynced {
			return errSimCrash
		}
		return nil
	}
	if err := l.Checkpoint(s); !errors.Is(err, errSimCrash) {
		t.Fatalf("checkpoint = %v", err)
	}
	l.Close()

	// Bit-rot the newest image mid-file.
	path := snapPath(dir, 2)
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)/2] ^= 0x40
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	recovered := store.New("r1")
	st, err := RecoverWithStats(dir, recovered)
	if err != nil {
		t.Fatalf("recover should fall back, got %v", err)
	}
	if st.CorruptSnapshots != 1 || st.SnapshotGen != 1 {
		t.Fatalf("stats %+v, want 1 corrupt image and fallback to gen 1", st)
	}
	assertStoresEqual(t, s, recovered)

	// With every generation corrupt, recovery must refuse: the log
	// prefix those images covered may already be pruned, so replaying
	// segments alone could resurrect a truncated past as if it were
	// current.
	g1, err := os.ReadFile(snapPath(dir, 1))
	if err != nil {
		t.Fatal(err)
	}
	g1[len(g1)/3] ^= 0x40
	if err := os.WriteFile(snapPath(dir, 1), g1, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := RecoverWithStats(dir, store.New("r1")); !errors.Is(err, ErrSnapshotCorrupt) {
		t.Fatalf("all-corrupt recover = %v, want ErrSnapshotCorrupt", err)
	}
}

// TestTornFrameInSealedSegmentIsCorruption: sealed segments are
// flushed and fsynced before the log moves past them, so a short
// frame there can only be damage — recovery must surface it, not
// truncate it away like an active-segment torn tail.
func TestTornFrameInSealedSegment(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, SyncEveryCommit)
	if err != nil {
		t.Fatal(err)
	}
	s := store.New("r1")
	commitRange(t, s, l, 0, 5)
	// Crash the checkpoint before its image is durable: segment 1 is
	// sealed but nothing covers it.
	l.hook = func(step CheckpointStep) error { return errSimCrash }
	if err := l.Checkpoint(s); !errors.Is(err, errSimCrash) {
		t.Fatalf("checkpoint = %v", err)
	}
	l.hook = nil
	commitRange(t, s, l, 5, 8)
	l.Close()

	seg := segPath(dir, 1)
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, fi.Size()-2); err != nil {
		t.Fatal(err)
	}
	if _, err := RecoverWithStats(dir, store.New("r1")); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("sealed torn frame recover = %v, want ErrCorrupt", err)
	}
}

// TestCheckpointStatsAndSegments sanity-checks the metrics surface.
func TestCheckpointStatsAndSegments(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Periodic)
	if err != nil {
		t.Fatal(err)
	}
	s := store.New("r1")
	commitRange(t, s, l, 0, 10)
	if st := l.CheckpointStats(); st.Checkpoints != 0 || st.Segments != 1 {
		t.Fatalf("pre stats %+v", st)
	}
	if err := l.Checkpoint(s); err != nil {
		t.Fatal(err)
	}
	st := l.CheckpointStats()
	if st.Checkpoints != 1 || st.Segments != 1 || st.LastCSN != 10 || st.LastRows == 0 || st.LastBytes == 0 {
		t.Fatalf("post stats %+v", st)
	}
	l.Close()
}
