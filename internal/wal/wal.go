// Package wal gives a storage element's RAM-resident stores their
// disk protection (§3.1 decision 1): every store saves its data to
// local persistent storage on a periodic basis, so a storage-element
// failure loses at most the un-synced tail of recent commits — the
// durability window experiments E4 and E12 measure.
//
// Two modes are supported:
//
//   - Periodic (the paper's default): commit records are buffered and
//     flushed+fsynced on an interval. Fast commits, bounded loss.
//   - SyncEveryCommit (the paper's footnote 6: "dump transactions to
//     disk before committing for 100% guaranteed durability, but that
//     would slow down storage elements too much"): every append is
//     flushed and fsynced before the commit returns.
//
// A Log persists one store (one partition replica). Snapshots compact
// the log: the full store image is written atomically, then the log
// restarts empty.
package wal

import (
	"bufio"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/store"
)

// Mode selects the durability mode.
type Mode int

const (
	// Periodic buffers appends and syncs on an interval (or explicit
	// Sync calls).
	Periodic Mode = iota
	// SyncEveryCommit flushes and fsyncs every append before
	// returning: the 100%-durability mode.
	SyncEveryCommit
)

// String returns the mode name.
func (m Mode) String() string {
	if m == SyncEveryCommit {
		return "sync-every-commit"
	}
	return "periodic"
}

const (
	logName      = "wal.log"
	snapName     = "snapshot.gob"
	snapTempName = "snapshot.gob.tmp"
)

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log closed")

// Log is the write-ahead log + snapshot manager for one store.
type Log struct {
	dir  string
	mode Mode

	mu     sync.Mutex
	file   *os.File
	buf    *bufio.Writer
	enc    *gob.Encoder
	closed bool

	// pending counts appends since the last sync (the at-risk
	// durability window).
	pending int

	stopPeriodic chan struct{}
	wg           sync.WaitGroup
}

// Open creates or opens the log in dir.
func Open(dir string, mode Mode) (*Log, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(dir, logName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{dir: dir, mode: mode, file: f}
	l.buf = bufio.NewWriter(f)
	l.enc = gob.NewEncoder(l.buf)
	return l, nil
}

// Dir returns the log directory.
func (l *Log) Dir() string { return l.dir }

// Mode returns the durability mode.
func (l *Log) Mode() Mode { return l.mode }

// Append persists one commit record according to the mode.
func (l *Log) Append(rec *store.CommitRecord) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if err := l.enc.Encode(rec); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	l.pending++
	if l.mode == SyncEveryCommit {
		return l.syncLocked()
	}
	return nil
}

// Sync flushes buffered records and fsyncs the file.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if err := l.buf.Flush(); err != nil {
		return fmt.Errorf("wal: flush: %w", err)
	}
	if err := l.file.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	l.pending = 0
	return nil
}

// Pending returns the number of appended-but-unsynced records: the
// commits that would be lost if the element failed right now.
func (l *Log) Pending() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.pending
}

// StartPeriodic launches the background flusher with the given
// interval. It is a no-op in SyncEveryCommit mode.
func (l *Log) StartPeriodic(interval time.Duration) {
	if l.mode == SyncEveryCommit {
		return
	}
	l.mu.Lock()
	if l.stopPeriodic != nil || l.closed {
		l.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	l.stopPeriodic = stop
	l.mu.Unlock()

	l.wg.Add(1)
	go func() {
		defer l.wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				_ = l.Sync()
			case <-stop:
				return
			}
		}
	}()
}

// snapshot is the on-disk snapshot format.
type snapshot struct {
	ReplicaID  string
	CSN        uint64
	AppliedCSN uint64
	Rows       []snapRow
}

type snapRow struct {
	Key   string
	Entry store.Entry
	Meta  store.Meta
}

// Snapshot atomically writes a full image of s and truncates the log.
// This is the paper's periodic RAM→disk save at its coarsest. The
// whole cycle — row collection, file write, log truncation — runs
// inside the store's stable-snapshot section, which excludes commits
// and replicated applies: a multi-row transaction can never be
// captured half-installed, and a record can never be truncated away
// unless the image already covers it. Commits stall for the duration;
// that is the §3.1 periodic-save cost, paid at snapshot cadence.
func (l *Log) Snapshot(s *store.Store) error {
	var err error
	s.StableSnapshot(func(csn, appliedCSN uint64) {
		snap := snapshot{
			ReplicaID:  s.ReplicaID(),
			CSN:        csn,
			AppliedCSN: appliedCSN,
		}
		// Shared immutable row versions are collected in place — safe
		// to encode after the iteration since installed entries are
		// never mutated, only replaced.
		s.ForEachAny(func(key string, e store.Entry, m store.Meta) bool {
			snap.Rows = append(snap.Rows, snapRow{Key: key, Entry: e, Meta: m})
			return true
		})
		err = l.writeSnapshotLocked(&snap)
	})
	return err
}

// writeSnapshotLocked persists the image and truncates the log. The
// caller holds the store's stable-snapshot section.
func (l *Log) writeSnapshotLocked(snap *snapshot) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}

	tmp := filepath.Join(l.dir, snapTempName)
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	w := bufio.NewWriter(f)
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		f.Close()
		return fmt.Errorf("wal: snapshot encode: %w", err)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("wal: snapshot flush: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: snapshot fsync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: snapshot close: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(l.dir, snapName)); err != nil {
		return fmt.Errorf("wal: snapshot rename: %w", err)
	}

	// Truncate the log: everything it held is in the snapshot.
	if err := l.buf.Flush(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := l.file.Close(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	nf, err := os.OpenFile(filepath.Join(l.dir, logName), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.file = nf
	l.buf = bufio.NewWriter(nf)
	l.enc = gob.NewEncoder(l.buf)
	l.pending = 0
	return nil
}

// Close stops the periodic flusher and closes the file WITHOUT a
// final sync: data appended since the last sync is lost, exactly like
// the RAM contents of a failed storage element. Call Sync first for a
// clean shutdown.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	stop := l.stopPeriodic
	l.stopPeriodic = nil
	f := l.file
	l.mu.Unlock()

	if stop != nil {
		close(stop)
	}
	l.wg.Wait()
	return f.Close()
}

// Recover rebuilds a store from dir: snapshot first, then replay of
// every intact log record. It returns the recovered commit CSN and
// the number of replayed records. Torn tail records (a crash mid
// write) are discarded, like a real redo pass.
func Recover(dir string, s *store.Store) (csn uint64, replayed int, err error) {
	// Load the snapshot if present.
	snapPath := filepath.Join(dir, snapName)
	if f, err2 := os.Open(snapPath); err2 == nil {
		var snap snapshot
		derr := gob.NewDecoder(bufio.NewReader(f)).Decode(&snap)
		f.Close()
		if derr != nil {
			return 0, 0, fmt.Errorf("wal: snapshot decode: %w", derr)
		}
		for _, r := range snap.Rows {
			s.PutDirect(r.Key, r.Entry, r.Meta)
		}
		s.SetCSN(snap.CSN)
		s.SetAppliedCSN(snap.AppliedCSN)
		csn = snap.CSN
	} else if !errors.Is(err2, os.ErrNotExist) {
		return 0, 0, fmt.Errorf("wal: %w", err2)
	}

	// Replay the log.
	f, err2 := os.Open(filepath.Join(dir, logName))
	if err2 != nil {
		if errors.Is(err2, os.ErrNotExist) {
			return csn, 0, nil
		}
		return 0, 0, fmt.Errorf("wal: %w", err2)
	}
	defer f.Close()
	dec := gob.NewDecoder(bufio.NewReader(f))
	for {
		var rec store.CommitRecord
		if derr := dec.Decode(&rec); derr != nil {
			if derr == io.EOF || errors.Is(derr, io.ErrUnexpectedEOF) {
				break // clean end or torn tail
			}
			// A corrupt record ends the redo pass; later records
			// cannot be trusted to be in order.
			break
		}
		if rec.CSN <= csn {
			continue // already covered by the snapshot
		}
		s.Replay(&rec)
		csn = rec.CSN
		replayed++
	}
	return csn, replayed, nil
}
