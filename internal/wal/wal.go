// Package wal gives a storage element's RAM-resident stores their
// disk protection (§3.1 decision 1): every store saves its data to
// local persistent storage on a periodic basis, so a storage-element
// failure loses at most the un-synced tail of recent commits — the
// durability window experiments E4 and E12 measure.
//
// Two modes are supported:
//
//   - Periodic (the paper's default): commit records are buffered and
//     flushed+fsynced on an interval. Fast commits, bounded loss.
//   - SyncEveryCommit (the paper's footnote 6: "dump transactions to
//     disk before committing for 100% guaranteed durability, but that
//     would slow down storage elements too much"): every append is
//     flushed and fsynced before the commit returns.
//
// The durable mode is built around group commit: concurrent appenders
// stage framed records into a shared buffer and one of them — the
// cohort leader — writes and fsyncs the whole buffer in a single pass.
// N concurrent durable commits therefore cost ~1 fsync instead of N,
// while each Append still returns only after the fsync covering its
// record has landed. The AppendStage/WaitDurable split lets the
// storage element stage under the store's commit lock (preserving
// WAL order == CSN order) and pay the fsync wait outside it, so
// commits on one partition overlap their durability waits. E18 and
// BenchmarkWALGroupCommitParallel measure the amortization.
//
// A Log persists one store (one partition replica) as numbered
// segment files plus CRC-framed checkpoint images (segment.go,
// snapshot.go). Checkpoints compact the log incrementally: the image
// streams while commits flow, and the covered prefix is dropped by
// deleting whole sealed segments (checkpoint.go).
package wal

import (
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/store"
)

// Mode selects the durability mode.
type Mode int

const (
	// Periodic buffers appends and syncs on an interval (or explicit
	// Sync calls).
	Periodic Mode = iota
	// SyncEveryCommit flushes and fsyncs every append before
	// returning: the 100%-durability mode.
	SyncEveryCommit
)

// String returns the mode name.
func (m Mode) String() string {
	if m == SyncEveryCommit {
		return "sync-every-commit"
	}
	return "periodic"
}

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log closed")

// encScratch pools per-append payload encode buffers.
var encScratch = sync.Pool{
	New: func() any { b := make([]byte, 0, 512); return &b },
}

// Log is the write-ahead log + snapshot manager for one store.
type Log struct {
	dir  string
	mode Mode

	mu   sync.Mutex
	cond *sync.Cond // durableSeq advance / leader handoff

	file   *os.File
	closed bool
	// failed poisons the log after a write or fsync error, by design
	// permanently: after a failed fsync the kernel may have dropped
	// the dirty pages, so a later fsync that "succeeds" proves
	// nothing about the lost writes — retrying would fake
	// durability. Every later operation reports the original error;
	// Failed exposes the state so an owner can fail the element over
	// to a replica rather than keep committing in RAM only.
	failed error

	// stage holds framed records not yet written+synced; spare is the
	// second half of the double buffer, swapped in while a leader
	// writes the first.
	stage []byte
	spare []byte
	// stagedSeq counts records ever staged; durableSeq counts records
	// covered by a completed fsync (or snapshot). A ticket is a
	// stagedSeq value: the record is durable once durableSeq reaches
	// it.
	stagedSeq   uint64
	durableSeq  uint64
	flushing    bool
	groupCommit bool

	// appends / syncs count records staged and fsyncs issued: the
	// group-commit amortization ratio E18 reports.
	appends atomic.Uint64
	syncs   atomic.Uint64

	// segSeq is the active segment's sequence number; firstSeg the
	// oldest segment still on disk; snapGen the newest durable
	// checkpoint image generation. All under l.mu.
	segSeq   uint64
	firstSeg uint64
	snapGen  uint64

	// ckptMu serializes checkpoint passes (checkpoint.go).
	ckptMu sync.Mutex
	// hook, when set (tests only), is called at each CheckpointStep;
	// a non-nil return aborts the pass like a crash at that point.
	hook func(CheckpointStep) error

	ckpts     atomic.Uint64
	ckptNanos atomic.Int64
	ckptCSN   atomic.Uint64
	ckptBytes atomic.Int64
	ckptRows  atomic.Int64

	stopPeriodic chan struct{}
	wg           sync.WaitGroup
}

// Open creates or opens the log in dir. Group commit is enabled by
// default; SetGroupCommit(false) restores the one-fsync-per-append
// behavior (the E18 baseline).
func Open(dir string, mode Mode) (*Log, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	// A checkpoint that crashed mid-image leaves a .tmp file behind;
	// it was never durable state, so sweep it.
	sweepTemps(dir)

	segs, err := listSeqs(dir, segPrefix, segSuffix)
	if err != nil {
		return nil, err
	}
	seq, first := uint64(1), uint64(1)
	created := len(segs) == 0
	if !created {
		seq, first = segs[len(segs)-1], segs[0]
	}
	f, err := os.OpenFile(segPath(dir, seq), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	if created {
		// The first segment's directory entry must be durable before
		// any append into it is acknowledged.
		if err := fsyncDir(dir); err != nil {
			f.Close()
			return nil, err
		}
	}
	gens, err := listSeqs(dir, snapPrefix, snapSuffix)
	if err != nil {
		f.Close()
		return nil, err
	}
	var gen uint64
	if len(gens) > 0 {
		gen = gens[len(gens)-1]
	}
	l := &Log{dir: dir, mode: mode, file: f, groupCommit: true,
		segSeq: seq, firstSeg: first, snapGen: gen}
	l.cond = sync.NewCond(&l.mu)
	return l, nil
}

// Dir returns the log directory.
func (l *Log) Dir() string { return l.dir }

// Mode returns the durability mode.
func (l *Log) Mode() Mode { return l.mode }

// SetGroupCommit toggles fsync coalescing in SyncEveryCommit mode.
// With it off, every Append performs its own flush+fsync while
// holding the log lock — the seed behavior E18 compares against.
func (l *Log) SetGroupCommit(on bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.groupCommit = on
}

// Failed returns the write/fsync error that poisoned the log, or nil.
// A non-nil result is permanent (see the failed field): the disk
// state is untrusted and the element should fail over, not retry.
func (l *Log) Failed() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.failed
}

// Appends returns the number of records staged over the log's life.
func (l *Log) Appends() uint64 { return l.appends.Load() }

// Syncs returns the number of fsyncs issued over the log's life. The
// appends/syncs ratio is the group-commit amortization factor.
func (l *Log) Syncs() uint64 { return l.syncs.Load() }

// Append persists one commit record according to the mode: staged
// only (Periodic), or staged and durable before returning
// (SyncEveryCommit). Equivalent to AppendStage followed by waiting on
// the returned ticket.
func (l *Log) Append(rec *store.CommitRecord) error {
	ticket, wait, err := l.AppendStage(rec)
	if err != nil {
		return err
	}
	if wait {
		return l.WaitDurable(ticket)
	}
	return nil
}

// AppendStage encodes and stages one commit record and returns its
// durability ticket. Staging order is durable order, so callers that
// need WAL order to match commit order stage while holding their
// commit lock and wait on the ticket after releasing it. wait reports
// whether the mode requires a WaitDurable call before the commit may
// be acknowledged (SyncEveryCommit).
func (l *Log) AppendStage(rec *store.CommitRecord) (ticket uint64, wait bool, err error) {
	bp := encScratch.Get().(*[]byte)
	payload := appendRecord((*bp)[:0], rec)

	l.mu.Lock()
	if err := l.stateErrLocked(); err != nil {
		l.mu.Unlock()
		*bp = payload[:0]
		encScratch.Put(bp)
		return 0, false, err
	}
	l.stage = appendFrame(l.stage, payload)
	l.stagedSeq++
	ticket = l.stagedSeq
	l.appends.Add(1)

	if l.mode == SyncEveryCommit && !l.groupCommit {
		// Baseline path: one flush+fsync per append, fully serialized
		// under the log lock (after any in-flight group flush drains).
		for l.flushing {
			l.cond.Wait()
		}
		// The drained flush may have poisoned or closed the log;
		// flushing anyway would fake durability on untrusted disk
		// state.
		if serr := l.stateErrLocked(); serr != nil {
			l.mu.Unlock()
			*bp = payload[:0]
			encScratch.Put(bp)
			return 0, false, serr
		}
		err = l.flushLocked()
		l.mu.Unlock()
		*bp = payload[:0]
		encScratch.Put(bp)
		return ticket, false, err
	}
	if l.mode == Periodic && len(l.stage) >= periodicSpill && !l.flushing {
		// Write (no fsync) once the buffer runs full, like the seed's
		// bufio writer: the periodic mode's at-risk window stays the
		// in-memory tail, not the whole interval's worth of commits.
		// Skipped while a flush leader holds the file — interleaving
		// would reorder records on disk.
		if _, werr := l.file.Write(l.stage); werr != nil {
			l.failed = fmt.Errorf("wal: write: %w", werr)
		} else {
			l.spare, l.stage = l.stage[:0], l.spare[:0]
		}
	}
	l.mu.Unlock()
	*bp = payload[:0]
	encScratch.Put(bp)
	return ticket, l.mode == SyncEveryCommit, nil
}

// periodicSpill is the staged-byte threshold past which Periodic mode
// writes the buffer to the file without fsyncing it.
const periodicSpill = 4 << 10

// WaitDurable blocks until the record behind ticket is covered by an
// fsync (or a snapshot). The first waiter to find no flush in flight
// becomes the cohort leader: it takes the whole staged buffer, writes
// it and fsyncs once for every record in it; the rest wait on the
// condition variable.
func (l *Log) WaitDurable(ticket uint64) error {
	_, err := l.WaitDurableEx(ticket)
	return err
}

// WaitDurableEx is WaitDurable plus attribution: led reports whether
// this caller became the group-commit cohort leader and performed the
// fsync itself (vs riding another goroutine's flush). Tracing uses it
// to label wal.fsync spans leader/follower.
func (l *Log) WaitDurableEx(ticket uint64) (led bool, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.waitDurableLocked(ticket)
}

func (l *Log) waitDurableLocked(ticket uint64) (led bool, err error) {
	for {
		if l.durableSeq >= ticket {
			return led, nil
		}
		if l.failed != nil {
			return led, l.failed
		}
		if l.closed {
			return led, ErrClosed
		}
		if !l.flushing {
			l.flushing = true
			led = true
			l.mu.Unlock()
			// Leader's staging window: yield once so commits already
			// running on other goroutines can stage into this cohort
			// before the fsync freezes it. Costs one scheduler pass
			// (~100ns) against the ~100µs fsync it amortizes; without
			// it a single-CPU box fsyncs cohorts of one because
			// waiting committers never get scheduled to stage.
			runtime.Gosched()
			l.mu.Lock()
			upTo := l.stagedSeq
			buf := l.stage
			l.stage = l.spare[:0]
			l.mu.Unlock()

			werr := l.writeAndSync(buf)

			l.mu.Lock()
			l.spare = buf[:0]
			l.flushing = false
			if werr != nil {
				l.failed = werr
				l.cond.Broadcast()
				return led, werr
			}
			if upTo > l.durableSeq {
				l.durableSeq = upTo
			}
			l.cond.Broadcast()
			continue
		}
		l.cond.Wait()
	}
}

// writeAndSync writes buf and fsyncs the file. Called with l.mu
// released but flushing ownership held (or with l.mu held on the
// no-group-commit path), which serializes access to l.file against
// snapshot rotation.
func (l *Log) writeAndSync(buf []byte) error {
	if len(buf) > 0 {
		if _, err := l.file.Write(buf); err != nil {
			return fmt.Errorf("wal: write: %w", err)
		}
	}
	if err := l.file.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	l.syncs.Add(1)
	return nil
}

// flushLocked writes and fsyncs the staged buffer while holding l.mu.
func (l *Log) flushLocked() error {
	upTo := l.stagedSeq
	buf := l.stage
	l.stage = l.spare[:0]
	err := l.writeAndSync(buf)
	l.spare = buf[:0]
	if err != nil {
		l.failed = err
		l.cond.Broadcast()
		return err
	}
	if upTo > l.durableSeq {
		l.durableSeq = upTo
	}
	l.cond.Broadcast()
	return nil
}

// stateErrLocked reports the closed/poisoned state.
func (l *Log) stateErrLocked() error {
	if l.closed {
		return ErrClosed
	}
	return l.failed
}

// Sync makes every staged record durable before returning. Appends
// that race it may or may not be covered, like any group commit
// cohort boundary.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.stateErrLocked(); err != nil {
		return err
	}
	_, err := l.waitDurableLocked(l.stagedSeq)
	return err
}

// Pending returns the number of appended-but-unsynced records: the
// commits that would be lost if the element failed right now.
func (l *Log) Pending() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return int(l.stagedSeq - l.durableSeq)
}

// StartPeriodic launches the background flusher with the given
// interval. It is a no-op in SyncEveryCommit mode.
func (l *Log) StartPeriodic(interval time.Duration) {
	if l.mode == SyncEveryCommit {
		return
	}
	l.mu.Lock()
	if l.stopPeriodic != nil || l.closed {
		l.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	l.stopPeriodic = stop
	l.mu.Unlock()

	l.wg.Add(1)
	go func() {
		defer l.wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				_ = l.Sync()
			case <-stop:
				return
			}
		}
	}()
}

// Close stops the periodic flusher and closes the file WITHOUT a
// final sync: data appended since the last sync is lost, exactly like
// the RAM contents of a failed storage element. Call Sync first for a
// clean shutdown.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	// Let an in-flight group flush finish with the file open; its
	// cohort keeps the durability it was promised.
	for l.flushing {
		l.cond.Wait()
	}
	l.closed = true
	stop := l.stopPeriodic
	l.stopPeriodic = nil
	f := l.file
	l.cond.Broadcast()
	l.mu.Unlock()

	if stop != nil {
		close(stop)
	}
	l.wg.Wait()
	return f.Close()
}

// RecoverStats describes what one recovery pass did; E24 and the
// scale smoke assert on it (suffix-only replay, bounded restart).
type RecoverStats struct {
	// CSN / AppliedCSN are the recovered store's positions.
	CSN        uint64
	AppliedCSN uint64
	// SnapshotGen / SnapshotCSN / SnapshotRows describe the image the
	// recovery started from (zero values if none existed).
	SnapshotGen  uint64
	SnapshotCSN  uint64
	SnapshotRows int64
	// CorruptSnapshots counts image generations rejected before an
	// intact one loaded.
	CorruptSnapshots int
	// Replayed counts log records applied — the post-checkpoint
	// suffix only. Skipped counts records below the image watermark
	// (sealed-segment leftovers a crashed prune didn't remove).
	Replayed int
	Skipped  int
	// Segments is the number of segment files scanned.
	Segments int
	// TornTail reports that the last segment ended mid-frame (crash
	// during a batch write) and was truncated at the last intact
	// frame boundary.
	TornTail bool
}

// Recover rebuilds a store from dir: newest intact checkpoint image
// first, then streaming replay of the log suffix above the image
// watermark.
func Recover(dir string, s *store.Store) (csn uint64, replayed int, err error) {
	st, err := RecoverWithStats(dir, s)
	return st.CSN, st.Replayed, err
}

// RecoverWithStats is Recover with the full pass description.
//
// Memory is O(largest frame), not O(log size): the image and every
// segment are read through a streaming frame scanner, so a restart at
// 10M subscribers does not double-buffer the dataset.
//
// Failure handling, from benign to fatal:
//   - A torn tail in the LAST segment is a crash artifact: replay
//     stops at the last intact frame and the partial frame is
//     truncated off so post-recovery appends start clean.
//   - A corrupt newest image (ErrSnapshotCorrupt) falls back to the
//     previous generation, which pruning deliberately retains; the
//     segments still on disk then carry the delta. The rejection is
//     reported in CorruptSnapshots.
//   - A corrupt record mid-segment, a torn frame in a SEALED segment,
//     or no intact image generation at all is real damage, not a
//     crash artifact: surfaced as an error without truncating, and
//     the element owner decides (typically reseed from a replica).
func RecoverWithStats(dir string, s *store.Store) (RecoverStats, error) {
	var st RecoverStats

	// Newest intact image wins. Each candidate is verified with a
	// streaming pass BEFORE any row is installed, so a corrupt image
	// can never half-populate the store it is rejected from.
	gens, err := listSeqs(dir, snapPrefix, snapSuffix)
	if err != nil {
		return st, err
	}
	for i := len(gens) - 1; i >= 0; i-- {
		path := snapPath(dir, gens[i])
		if _, verr := readSnapshot(path, nil); verr != nil {
			if errors.Is(verr, ErrSnapshotCorrupt) {
				st.CorruptSnapshots++
				continue
			}
			return st, verr
		}
		hdr, lerr := readSnapshot(path, func(key string, e store.Entry, m store.Meta) {
			// Decoded entries are fresh compact copies: install them
			// without the defensive clone.
			s.PutOwned(key, e, m)
		})
		if lerr != nil {
			// The file passed verification a moment ago; treat a
			// second-pass failure as I/O trouble, not a fallback case.
			return st, lerr
		}
		s.SetCSN(hdr.csn)
		s.SetAppliedCSN(hdr.appliedCSN)
		st.SnapshotGen = gens[i]
		st.SnapshotCSN = hdr.csn
		st.SnapshotRows = hdr.rows
		st.CSN = hdr.csn
		st.AppliedCSN = hdr.appliedCSN
		break
	}
	if st.CorruptSnapshots > 0 && st.SnapshotGen == 0 {
		// Generations existed but none verified. The log prefix they
		// covered may already be pruned; recovering from the segments
		// alone could silently resurrect a truncated past.
		return st, fmt.Errorf("%w: no intact generation among %d", ErrSnapshotCorrupt, len(gens))
	}

	// Replay segments oldest→newest, one bounded frame at a time.
	segs, err := listSeqs(dir, segPrefix, segSuffix)
	if err != nil {
		return st, err
	}
	st.Segments = len(segs)
	var rec store.CommitRecord
	for i, seq := range segs {
		path := segPath(dir, seq)
		f, oerr := os.Open(path)
		if oerr != nil {
			return st, fmt.Errorf("wal: %w", oerr)
		}
		fs := newFrameScan(f)
		for {
			payload, rerr := fs.next()
			if rerr == io.EOF {
				break
			}
			if rerr != nil {
				f.Close()
				if !errors.Is(rerr, errShort) {
					// Checksum/structure failure inside a complete
					// frame: corruption. Records already replayed are
					// good; everything after is untrusted and must not
					// be silently truncated away.
					return st, fmt.Errorf("wal: recover %s at offset %d: %w", path, fs.consumed, rerr)
				}
				if i != len(segs)-1 {
					// Sealed segments are flushed+fsynced before the
					// active segment moves on; a short frame here is
					// damage, not a crash artifact.
					return st, fmt.Errorf("wal: recover %s at offset %d: torn frame in sealed segment: %w", path, fs.consumed, ErrCorrupt)
				}
				// Torn tail of the active segment: the crash cut a
				// cohort write short. Truncate at the last intact
				// frame so post-recovery appends start clean.
				if terr := os.Truncate(path, fs.consumed); terr != nil {
					return st, fmt.Errorf("wal: truncate torn tail: %w", terr)
				}
				st.TornTail = true
				break
			}
			rec = store.CommitRecord{}
			if derr := decodeRecord(payload, &rec); derr != nil {
				f.Close()
				if errors.Is(derr, errShort) {
					derr = fmt.Errorf("%w: truncated payload inside intact frame", ErrCorrupt)
				}
				return st, fmt.Errorf("wal: recover %s: %w", path, derr)
			}
			if rec.CSN <= st.SnapshotCSN {
				st.Skipped++
				continue
			}
			s.Replay(&rec)
			if rec.CSN > st.CSN {
				st.CSN = rec.CSN
			}
			st.Replayed++
		}
		f.Close()
	}
	return st, nil
}
