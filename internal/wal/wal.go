// Package wal gives a storage element's RAM-resident stores their
// disk protection (§3.1 decision 1): every store saves its data to
// local persistent storage on a periodic basis, so a storage-element
// failure loses at most the un-synced tail of recent commits — the
// durability window experiments E4 and E12 measure.
//
// Two modes are supported:
//
//   - Periodic (the paper's default): commit records are buffered and
//     flushed+fsynced on an interval. Fast commits, bounded loss.
//   - SyncEveryCommit (the paper's footnote 6: "dump transactions to
//     disk before committing for 100% guaranteed durability, but that
//     would slow down storage elements too much"): every append is
//     flushed and fsynced before the commit returns.
//
// The durable mode is built around group commit: concurrent appenders
// stage framed records into a shared buffer and one of them — the
// cohort leader — writes and fsyncs the whole buffer in a single pass.
// N concurrent durable commits therefore cost ~1 fsync instead of N,
// while each Append still returns only after the fsync covering its
// record has landed. The AppendStage/WaitDurable split lets the
// storage element stage under the store's commit lock (preserving
// WAL order == CSN order) and pay the fsync wait outside it, so
// commits on one partition overlap their durability waits. E18 and
// BenchmarkWALGroupCommitParallel measure the amortization.
//
// A Log persists one store (one partition replica). Snapshots compact
// the log: the full store image is written atomically, then the log
// restarts empty.
package wal

import (
	"bufio"
	"encoding/gob"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/store"
)

// Mode selects the durability mode.
type Mode int

const (
	// Periodic buffers appends and syncs on an interval (or explicit
	// Sync calls).
	Periodic Mode = iota
	// SyncEveryCommit flushes and fsyncs every append before
	// returning: the 100%-durability mode.
	SyncEveryCommit
)

// String returns the mode name.
func (m Mode) String() string {
	if m == SyncEveryCommit {
		return "sync-every-commit"
	}
	return "periodic"
}

const (
	logName      = "wal.log"
	snapName     = "snapshot.gob"
	snapTempName = "snapshot.gob.tmp"
)

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log closed")

// encScratch pools per-append payload encode buffers.
var encScratch = sync.Pool{
	New: func() any { b := make([]byte, 0, 512); return &b },
}

// Log is the write-ahead log + snapshot manager for one store.
type Log struct {
	dir  string
	mode Mode

	mu   sync.Mutex
	cond *sync.Cond // durableSeq advance / leader handoff

	file   *os.File
	closed bool
	// failed poisons the log after a write or fsync error, by design
	// permanently: after a failed fsync the kernel may have dropped
	// the dirty pages, so a later fsync that "succeeds" proves
	// nothing about the lost writes — retrying would fake
	// durability. Every later operation reports the original error;
	// Failed exposes the state so an owner can fail the element over
	// to a replica rather than keep committing in RAM only.
	failed error

	// stage holds framed records not yet written+synced; spare is the
	// second half of the double buffer, swapped in while a leader
	// writes the first.
	stage []byte
	spare []byte
	// stagedSeq counts records ever staged; durableSeq counts records
	// covered by a completed fsync (or snapshot). A ticket is a
	// stagedSeq value: the record is durable once durableSeq reaches
	// it.
	stagedSeq   uint64
	durableSeq  uint64
	flushing    bool
	groupCommit bool

	// appends / syncs count records staged and fsyncs issued: the
	// group-commit amortization ratio E18 reports.
	appends atomic.Uint64
	syncs   atomic.Uint64

	stopPeriodic chan struct{}
	wg           sync.WaitGroup
}

// Open creates or opens the log in dir. Group commit is enabled by
// default; SetGroupCommit(false) restores the one-fsync-per-append
// behavior (the E18 baseline).
func Open(dir string, mode Mode) (*Log, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(dir, logName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{dir: dir, mode: mode, file: f, groupCommit: true}
	l.cond = sync.NewCond(&l.mu)
	return l, nil
}

// Dir returns the log directory.
func (l *Log) Dir() string { return l.dir }

// Mode returns the durability mode.
func (l *Log) Mode() Mode { return l.mode }

// SetGroupCommit toggles fsync coalescing in SyncEveryCommit mode.
// With it off, every Append performs its own flush+fsync while
// holding the log lock — the seed behavior E18 compares against.
func (l *Log) SetGroupCommit(on bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.groupCommit = on
}

// Failed returns the write/fsync error that poisoned the log, or nil.
// A non-nil result is permanent (see the failed field): the disk
// state is untrusted and the element should fail over, not retry.
func (l *Log) Failed() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.failed
}

// Appends returns the number of records staged over the log's life.
func (l *Log) Appends() uint64 { return l.appends.Load() }

// Syncs returns the number of fsyncs issued over the log's life. The
// appends/syncs ratio is the group-commit amortization factor.
func (l *Log) Syncs() uint64 { return l.syncs.Load() }

// Append persists one commit record according to the mode: staged
// only (Periodic), or staged and durable before returning
// (SyncEveryCommit). Equivalent to AppendStage followed by waiting on
// the returned ticket.
func (l *Log) Append(rec *store.CommitRecord) error {
	ticket, wait, err := l.AppendStage(rec)
	if err != nil {
		return err
	}
	if wait {
		return l.WaitDurable(ticket)
	}
	return nil
}

// AppendStage encodes and stages one commit record and returns its
// durability ticket. Staging order is durable order, so callers that
// need WAL order to match commit order stage while holding their
// commit lock and wait on the ticket after releasing it. wait reports
// whether the mode requires a WaitDurable call before the commit may
// be acknowledged (SyncEveryCommit).
func (l *Log) AppendStage(rec *store.CommitRecord) (ticket uint64, wait bool, err error) {
	bp := encScratch.Get().(*[]byte)
	payload := appendRecord((*bp)[:0], rec)

	l.mu.Lock()
	if err := l.stateErrLocked(); err != nil {
		l.mu.Unlock()
		*bp = payload[:0]
		encScratch.Put(bp)
		return 0, false, err
	}
	l.stage = appendFrame(l.stage, payload)
	l.stagedSeq++
	ticket = l.stagedSeq
	l.appends.Add(1)

	if l.mode == SyncEveryCommit && !l.groupCommit {
		// Baseline path: one flush+fsync per append, fully serialized
		// under the log lock (after any in-flight group flush drains).
		for l.flushing {
			l.cond.Wait()
		}
		// The drained flush may have poisoned or closed the log;
		// flushing anyway would fake durability on untrusted disk
		// state.
		if serr := l.stateErrLocked(); serr != nil {
			l.mu.Unlock()
			*bp = payload[:0]
			encScratch.Put(bp)
			return 0, false, serr
		}
		err = l.flushLocked()
		l.mu.Unlock()
		*bp = payload[:0]
		encScratch.Put(bp)
		return ticket, false, err
	}
	if l.mode == Periodic && len(l.stage) >= periodicSpill && !l.flushing {
		// Write (no fsync) once the buffer runs full, like the seed's
		// bufio writer: the periodic mode's at-risk window stays the
		// in-memory tail, not the whole interval's worth of commits.
		// Skipped while a flush leader holds the file — interleaving
		// would reorder records on disk.
		if _, werr := l.file.Write(l.stage); werr != nil {
			l.failed = fmt.Errorf("wal: write: %w", werr)
		} else {
			l.spare, l.stage = l.stage[:0], l.spare[:0]
		}
	}
	l.mu.Unlock()
	*bp = payload[:0]
	encScratch.Put(bp)
	return ticket, l.mode == SyncEveryCommit, nil
}

// periodicSpill is the staged-byte threshold past which Periodic mode
// writes the buffer to the file without fsyncing it.
const periodicSpill = 4 << 10

// WaitDurable blocks until the record behind ticket is covered by an
// fsync (or a snapshot). The first waiter to find no flush in flight
// becomes the cohort leader: it takes the whole staged buffer, writes
// it and fsyncs once for every record in it; the rest wait on the
// condition variable.
func (l *Log) WaitDurable(ticket uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.waitDurableLocked(ticket)
}

func (l *Log) waitDurableLocked(ticket uint64) error {
	for {
		if l.durableSeq >= ticket {
			return nil
		}
		if l.failed != nil {
			return l.failed
		}
		if l.closed {
			return ErrClosed
		}
		if !l.flushing {
			l.flushing = true
			l.mu.Unlock()
			// Leader's staging window: yield once so commits already
			// running on other goroutines can stage into this cohort
			// before the fsync freezes it. Costs one scheduler pass
			// (~100ns) against the ~100µs fsync it amortizes; without
			// it a single-CPU box fsyncs cohorts of one because
			// waiting committers never get scheduled to stage.
			runtime.Gosched()
			l.mu.Lock()
			upTo := l.stagedSeq
			buf := l.stage
			l.stage = l.spare[:0]
			l.mu.Unlock()

			werr := l.writeAndSync(buf)

			l.mu.Lock()
			l.spare = buf[:0]
			l.flushing = false
			if werr != nil {
				l.failed = werr
				l.cond.Broadcast()
				return werr
			}
			if upTo > l.durableSeq {
				l.durableSeq = upTo
			}
			l.cond.Broadcast()
			continue
		}
		l.cond.Wait()
	}
}

// writeAndSync writes buf and fsyncs the file. Called with l.mu
// released but flushing ownership held (or with l.mu held on the
// no-group-commit path), which serializes access to l.file against
// snapshot rotation.
func (l *Log) writeAndSync(buf []byte) error {
	if len(buf) > 0 {
		if _, err := l.file.Write(buf); err != nil {
			return fmt.Errorf("wal: write: %w", err)
		}
	}
	if err := l.file.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	l.syncs.Add(1)
	return nil
}

// flushLocked writes and fsyncs the staged buffer while holding l.mu.
func (l *Log) flushLocked() error {
	upTo := l.stagedSeq
	buf := l.stage
	l.stage = l.spare[:0]
	err := l.writeAndSync(buf)
	l.spare = buf[:0]
	if err != nil {
		l.failed = err
		l.cond.Broadcast()
		return err
	}
	if upTo > l.durableSeq {
		l.durableSeq = upTo
	}
	l.cond.Broadcast()
	return nil
}

// stateErrLocked reports the closed/poisoned state.
func (l *Log) stateErrLocked() error {
	if l.closed {
		return ErrClosed
	}
	return l.failed
}

// Sync makes every staged record durable before returning. Appends
// that race it may or may not be covered, like any group commit
// cohort boundary.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.stateErrLocked(); err != nil {
		return err
	}
	return l.waitDurableLocked(l.stagedSeq)
}

// Pending returns the number of appended-but-unsynced records: the
// commits that would be lost if the element failed right now.
func (l *Log) Pending() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return int(l.stagedSeq - l.durableSeq)
}

// StartPeriodic launches the background flusher with the given
// interval. It is a no-op in SyncEveryCommit mode.
func (l *Log) StartPeriodic(interval time.Duration) {
	if l.mode == SyncEveryCommit {
		return
	}
	l.mu.Lock()
	if l.stopPeriodic != nil || l.closed {
		l.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	l.stopPeriodic = stop
	l.mu.Unlock()

	l.wg.Add(1)
	go func() {
		defer l.wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				_ = l.Sync()
			case <-stop:
				return
			}
		}
	}()
}

// snapshot is the on-disk snapshot format.
type snapshot struct {
	ReplicaID  string
	CSN        uint64
	AppliedCSN uint64
	Rows       []snapRow
}

type snapRow struct {
	Key   string
	Entry store.Entry
	Meta  store.Meta
}

// Snapshot atomically writes a full image of s and truncates the log.
// This is the paper's periodic RAM→disk save at its coarsest. The
// whole cycle — row collection, file write, log truncation — runs
// inside the store's stable-snapshot section, which excludes commits
// and replicated applies: a multi-row transaction can never be
// captured half-installed, and a record can never be truncated away
// unless the image already covers it. Commits stall for the duration;
// that is the §3.1 periodic-save cost, paid at snapshot cadence.
func (l *Log) Snapshot(s *store.Store) error {
	var err error
	s.StableSnapshot(func(csn, appliedCSN uint64) {
		snap := snapshot{
			ReplicaID:  s.ReplicaID(),
			CSN:        csn,
			AppliedCSN: appliedCSN,
		}
		// Shared immutable row versions are collected in place — safe
		// to encode after the iteration since installed entries are
		// never mutated, only replaced.
		s.ForEachAny(func(key string, e store.Entry, m store.Meta) bool {
			snap.Rows = append(snap.Rows, snapRow{Key: key, Entry: e, Meta: m})
			return true
		})
		err = l.writeSnapshotLocked(&snap)
	})
	return err
}

// writeSnapshotLocked persists the image and truncates the log. The
// caller holds the store's stable-snapshot section.
func (l *Log) writeSnapshotLocked(snap *snapshot) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.stateErrLocked(); err != nil {
		return err
	}
	// Drain any in-flight group flush: it holds l.file.
	for l.flushing {
		l.cond.Wait()
		if err := l.stateErrLocked(); err != nil {
			return err
		}
	}

	tmp := filepath.Join(l.dir, snapTempName)
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	w := bufio.NewWriter(f)
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		f.Close()
		return fmt.Errorf("wal: snapshot encode: %w", err)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("wal: snapshot flush: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: snapshot fsync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: snapshot close: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(l.dir, snapName)); err != nil {
		return fmt.Errorf("wal: snapshot rename: %w", err)
	}

	// Truncate the log: everything it held — staged or written — is
	// in the snapshot image, so staged bytes are simply dropped and
	// their waiters released as durable.
	if err := l.file.Close(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	nf, err := os.OpenFile(filepath.Join(l.dir, logName), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.file = nf
	l.stage = l.stage[:0]
	l.durableSeq = l.stagedSeq
	l.cond.Broadcast()
	return nil
}

// Close stops the periodic flusher and closes the file WITHOUT a
// final sync: data appended since the last sync is lost, exactly like
// the RAM contents of a failed storage element. Call Sync first for a
// clean shutdown.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	// Let an in-flight group flush finish with the file open; its
	// cohort keeps the durability it was promised.
	for l.flushing {
		l.cond.Wait()
	}
	l.closed = true
	stop := l.stopPeriodic
	l.stopPeriodic = nil
	f := l.file
	l.cond.Broadcast()
	l.mu.Unlock()

	if stop != nil {
		close(stop)
	}
	l.wg.Wait()
	return f.Close()
}

// Recover rebuilds a store from dir: snapshot first, then replay of
// every intact log record. It returns the recovered commit CSN and
// the number of replayed records. A torn tail (a crash mid batch
// write) is discarded AND truncated off the file, so records appended
// after recovery are never hidden behind unreadable garbage. A record
// failing its checksum mid-file is different — that is corruption,
// not a crash artifact, and anything after it is untrusted: Recover
// returns an error without truncating, and the element owner decides
// (typically reseed from a replica).
func Recover(dir string, s *store.Store) (csn uint64, replayed int, err error) {
	// Load the snapshot if present.
	snapPath := filepath.Join(dir, snapName)
	if f, err2 := os.Open(snapPath); err2 == nil {
		var snap snapshot
		derr := gob.NewDecoder(bufio.NewReader(f)).Decode(&snap)
		f.Close()
		if derr != nil {
			return 0, 0, fmt.Errorf("wal: snapshot decode: %w", derr)
		}
		for _, r := range snap.Rows {
			s.PutDirect(r.Key, r.Entry, r.Meta)
		}
		s.SetCSN(snap.CSN)
		s.SetAppliedCSN(snap.AppliedCSN)
		csn = snap.CSN
	} else if !errors.Is(err2, os.ErrNotExist) {
		return 0, 0, fmt.Errorf("wal: %w", err2)
	}
	snapCSN := csn

	// Replay the log.
	path := filepath.Join(dir, logName)
	buf, err2 := os.ReadFile(path)
	if err2 != nil {
		if errors.Is(err2, os.ErrNotExist) {
			return csn, 0, nil
		}
		return 0, 0, fmt.Errorf("wal: %w", err2)
	}
	off := 0
	for off < len(buf) {
		var rec store.CommitRecord
		next, derr := readFrame(buf, off, &rec)
		if derr != nil {
			if !errors.Is(derr, errShort) {
				// A checksum or structure failure inside a complete
				// frame is corruption, not a crash artifact: the
				// records already replayed are good, but everything
				// after the bad frame is untrusted and must not be
				// silently truncated away. Surface it; the element
				// owner decides (reseed from a replica).
				return 0, 0, fmt.Errorf("wal: recover at offset %d: %w", off, derr)
			}
			// Torn tail: the crash cut a cohort write short. The redo
			// pass ends here and the partial frame is cut off so
			// post-recovery appends start at a clean frame boundary.
			if terr := os.Truncate(path, int64(off)); terr != nil {
				return 0, 0, fmt.Errorf("wal: truncate torn tail: %w", terr)
			}
			break
		}
		off = next
		if rec.CSN <= snapCSN {
			continue // already covered by the snapshot
		}
		s.Replay(&rec)
		if rec.CSN > csn {
			csn = rec.CSN
		}
		replayed++
	}
	return csn, replayed, nil
}
