package rebalance

import (
	"fmt"
	"sort"
	"strings"
)

// PartitionLoad is one master partition's contribution to an
// element's load.
type PartitionLoad struct {
	Partition string
	// Rows is the live row count, the RAM footprint proxy.
	Rows int
	// CommitRate is the recent commit throughput (records shipped);
	// it breaks ties between equally sized partitions so the hotter
	// one stays put.
	CommitRate int64
}

// ElementLoad is one storage element's load snapshot, the planner's
// input (core.UDR.ElementLoads builds it from store row counts and
// replication SenderStats).
type ElementLoad struct {
	Element string
	Site    string
	// Masters lists the master partitions hosted, with their loads.
	Masters []PartitionLoad
	// Hosted is every partition with any replica here; the planner
	// never moves a master onto an element already holding a copy.
	Hosted map[string]bool
}

// rows sums the element's master rows.
func (l *ElementLoad) rows() int {
	n := 0
	for _, p := range l.Masters {
		n += p.Rows
	}
	return n
}

// MoveSpec is one planned move.
type MoveSpec struct {
	Partition string
	From, To  string
	Rows      int
}

// String renders the move.
func (s MoveSpec) String() string {
	return fmt.Sprintf("move %s %s->%s (%d rows)", s.Partition, s.From, s.To, s.Rows)
}

// PlanOpts tunes the planner.
type PlanOpts struct {
	// Tolerance is the acceptable master-row spread as a fraction of
	// the mean element load (default 0.10): elements within it are
	// considered balanced.
	Tolerance float64
	// MaxMoves bounds the plan length (default 8). Migrations are not
	// free — each ships a partition over the backbone — so the plan
	// converges toward balance rather than chasing it exactly.
	MaxMoves int
}

// Plan computes a bounded move list that narrows the master-row
// spread across elements: repeatedly take the most loaded element and
// move its best-fitting master partition to the least loaded element
// that holds no replica of it. The greedy choice is the partition
// closest to half the load gap (never the whole gap — that would just
// swap the imbalance). Deterministic for a given input: ties break on
// element and partition IDs.
func Plan(loads []ElementLoad, opts PlanOpts) []MoveSpec {
	if opts.Tolerance <= 0 {
		opts.Tolerance = 0.10
	}
	if opts.MaxMoves <= 0 {
		opts.MaxMoves = 8
	}
	if len(loads) < 2 {
		return nil
	}

	// Work on a private copy, sorted for determinism.
	work := make([]ElementLoad, len(loads))
	for i, l := range loads {
		cp := l
		cp.Masters = append([]PartitionLoad(nil), l.Masters...)
		sort.Slice(cp.Masters, func(a, b int) bool { return cp.Masters[a].Partition < cp.Masters[b].Partition })
		cp.Hosted = make(map[string]bool, len(l.Hosted))
		for p := range l.Hosted {
			cp.Hosted[p] = true
		}
		work[i] = cp
	}
	sort.Slice(work, func(a, b int) bool { return work[a].Element < work[b].Element })

	total := 0
	for i := range work {
		total += work[i].rows()
	}
	mean := float64(total) / float64(len(work))
	slack := mean * opts.Tolerance
	if slack < 1 {
		slack = 1
	}

	var plan []MoveSpec
	// moved guards against chained moves of one partition inside one
	// plan (A→B then B→C): the executor runs moves concurrently, so a
	// second hop would race the first and spuriously conflict. One
	// hop per partition per pass; the next pass replans.
	moved := make(map[string]bool)
	for len(plan) < opts.MaxMoves {
		// Heaviest and lightest elements this round.
		hi, lo := 0, 0
		for i := range work {
			if work[i].rows() > work[hi].rows() {
				hi = i
			}
			if work[i].rows() < work[lo].rows() {
				lo = i
			}
		}
		gap := work[hi].rows() - work[lo].rows()
		if float64(gap) <= slack {
			break
		}

		// Lightest eligible receiver: no replica of the candidate. Try
		// receivers lightest-first so the move lands where it helps
		// most; within the heaviest element pick the partition closest
		// to half the gap (strictly under the gap, so the spread
		// shrinks and the loop terminates), colder first on ties.
		order := make([]int, 0, len(work))
		for i := range work {
			if i != hi {
				order = append(order, i)
			}
		}
		sort.Slice(order, func(a, b int) bool {
			ra, rb := work[order[a]].rows(), work[order[b]].rows()
			if ra != rb {
				return ra < rb
			}
			return work[order[a]].Element < work[order[b]].Element
		})

		var spec *MoveSpec
		var toIdx, fromPart int
		for _, to := range order {
			if work[hi].rows()-work[to].rows() <= int(slack) {
				break // every remaining receiver is as loaded as the donor
			}
			target := float64(work[hi].rows()-work[to].rows()) / 2
			best, bestDist := -1, 0.0
			for pi, p := range work[hi].Masters {
				if moved[p.Partition] || work[to].Hosted[p.Partition] {
					continue
				}
				if p.Rows == 0 {
					continue // ships nothing, shrinks nothing: not worth a freeze
				}
				if p.Rows >= work[hi].rows()-work[to].rows() {
					continue // would overshoot and swap the imbalance
				}
				dist := target - float64(p.Rows)
				if dist < 0 {
					dist = -dist
				}
				if best == -1 || dist < bestDist ||
					(dist == bestDist && p.CommitRate < work[hi].Masters[best].CommitRate) {
					best, bestDist = pi, dist
				}
			}
			if best >= 0 {
				p := work[hi].Masters[best]
				spec = &MoveSpec{Partition: p.Partition, From: work[hi].Element, To: work[to].Element, Rows: p.Rows}
				toIdx, fromPart = to, best
				break
			}
		}
		if spec == nil {
			break // no legal move narrows the spread
		}

		// Apply the move to the working model. The donor keeps a slave
		// copy after the move (non-release migration), so it stays in
		// Hosted: no later move may bounce the partition back.
		p := work[hi].Masters[fromPart]
		work[hi].Masters = append(work[hi].Masters[:fromPart], work[hi].Masters[fromPart+1:]...)
		work[toIdx].Masters = append(work[toIdx].Masters, p)
		work[toIdx].Hosted[p.Partition] = true
		moved[p.Partition] = true
		plan = append(plan, *spec)
	}
	return plan
}

// PlanString renders a plan for operator output.
func PlanString(plan []MoveSpec) string {
	if len(plan) == 0 {
		return "balanced: no moves\n"
	}
	var b strings.Builder
	for _, s := range plan {
		b.WriteString(s.String())
		b.WriteByte('\n')
	}
	return b.String()
}
