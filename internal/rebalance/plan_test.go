package rebalance

import (
	"testing"
)

func load(el, site string, hosted []string, masters ...PartitionLoad) ElementLoad {
	h := make(map[string]bool)
	for _, p := range hosted {
		h[p] = true
	}
	for _, m := range masters {
		h[m.Partition] = true
	}
	return ElementLoad{Element: el, Site: site, Masters: masters, Hosted: h}
}

func TestPlanBalancedIsEmpty(t *testing.T) {
	plan := Plan([]ElementLoad{
		load("se-a", "a", nil, PartitionLoad{Partition: "p1", Rows: 100}),
		load("se-b", "a", nil, PartitionLoad{Partition: "p2", Rows: 100}),
	}, PlanOpts{})
	if len(plan) != 0 {
		t.Fatalf("balanced cluster planned %v", plan)
	}
}

func TestPlanMovesTowardEmptyElement(t *testing.T) {
	plan := Plan([]ElementLoad{
		load("se-a", "a", nil,
			PartitionLoad{Partition: "p1", Rows: 100},
			PartitionLoad{Partition: "p2", Rows: 100},
			PartitionLoad{Partition: "p3", Rows: 100},
			PartitionLoad{Partition: "p4", Rows: 100}),
		load("se-b", "b", nil),
	}, PlanOpts{})
	if len(plan) != 2 {
		t.Fatalf("plan = %v, want 2 moves", plan)
	}
	moved := 0
	for _, s := range plan {
		if s.From != "se-a" || s.To != "se-b" {
			t.Fatalf("unexpected direction: %v", s)
		}
		moved += s.Rows
	}
	if moved != 200 {
		t.Fatalf("moved %d rows, want 200 (half)", moved)
	}
}

func TestPlanRespectsHosting(t *testing.T) {
	// se-b already hosts replicas of everything but p3: only p3 may
	// move there.
	plan := Plan([]ElementLoad{
		load("se-a", "a", nil,
			PartitionLoad{Partition: "p1", Rows: 100},
			PartitionLoad{Partition: "p2", Rows: 100},
			PartitionLoad{Partition: "p3", Rows: 100}),
		load("se-b", "b", []string{"p1", "p2"}),
	}, PlanOpts{})
	if len(plan) != 1 || plan[0].Partition != "p3" {
		t.Fatalf("plan = %v, want exactly [move p3]", plan)
	}
}

func TestPlanNeverSwapsImbalance(t *testing.T) {
	// One giant partition: moving it would just relocate the hot spot.
	plan := Plan([]ElementLoad{
		load("se-a", "a", nil, PartitionLoad{Partition: "p1", Rows: 1000}),
		load("se-b", "b", nil, PartitionLoad{Partition: "p2", Rows: 10}),
	}, PlanOpts{})
	if len(plan) != 0 {
		t.Fatalf("plan = %v, want none (indivisible hot partition)", plan)
	}
}

func TestPlanBoundedMoves(t *testing.T) {
	masters := make([]PartitionLoad, 20)
	for i := range masters {
		masters[i] = PartitionLoad{Partition: string(rune('a' + i)), Rows: 50}
	}
	plan := Plan([]ElementLoad{
		load("se-a", "a", nil, masters...),
		load("se-b", "b", nil),
		load("se-c", "c", nil),
	}, PlanOpts{MaxMoves: 3})
	if len(plan) > 3 {
		t.Fatalf("plan length %d exceeds MaxMoves", len(plan))
	}
}

func TestPlanDeterministic(t *testing.T) {
	mk := func() []ElementLoad {
		return []ElementLoad{
			load("se-b", "b", nil),
			load("se-a", "a", nil,
				PartitionLoad{Partition: "p2", Rows: 80},
				PartitionLoad{Partition: "p1", Rows: 80},
				PartitionLoad{Partition: "p3", Rows: 40}),
			load("se-c", "c", nil, PartitionLoad{Partition: "p4", Rows: 60}),
		}
	}
	a, b := Plan(mk(), PlanOpts{}), Plan(mk(), PlanOpts{})
	if len(a) != len(b) {
		t.Fatalf("plans differ in length: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("plans differ at %d: %v vs %v", i, a[i], b[i])
		}
	}
	if len(a) == 0 {
		t.Fatal("expected at least one move")
	}
}

func TestPlanSkipsEmptyPartitions(t *testing.T) {
	// The gap is wide but only empty partitions could move: shipping
	// them shrinks nothing, so the plan must be empty.
	plan := Plan([]ElementLoad{
		load("se-a", "a", nil,
			PartitionLoad{Partition: "hot", Rows: 500},
			PartitionLoad{Partition: "empty1"},
			PartitionLoad{Partition: "empty2"}),
		load("se-b", "b", []string{"hot"}),
	}, PlanOpts{})
	if len(plan) != 0 {
		t.Fatalf("plan = %v, want none (only empty partitions movable)", plan)
	}
}

func TestPlanOneHopPerPartition(t *testing.T) {
	// Moves execute concurrently: a plan must never chain two hops of
	// the same partition.
	masters := make([]PartitionLoad, 6)
	for i := range masters {
		masters[i] = PartitionLoad{Partition: string(rune('a' + i)), Rows: 100}
	}
	plan := Plan([]ElementLoad{
		load("se-a", "a", nil, masters...),
		load("se-b", "b", nil),
		load("se-c", "c", nil),
	}, PlanOpts{MaxMoves: 10})
	seen := make(map[string]bool)
	for _, s := range plan {
		if seen[s.Partition] {
			t.Fatalf("partition %s moved twice in one plan: %v", s.Partition, plan)
		}
		seen[s.Partition] = true
	}
	if len(plan) == 0 {
		t.Fatal("expected moves")
	}
}
