package rebalance

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/replication"
	"repro/internal/simnet"
	"repro/internal/store"
)

// Errors reported by migrations.
var (
	// ErrConflict reports a move whose target already hosts a replica
	// of the partition (a master move onto a slave copy is a failover,
	// not a migration).
	ErrConflict = errors.New("rebalance: target already hosts a replica of the partition")
	// ErrAborted wraps any phase failure: the move was rolled back and
	// the source is still authoritative.
	ErrAborted = errors.New("rebalance: migration aborted")
	// ErrSourceLost is returned (wrapped) by a Move.Commit callback
	// when the partition table no longer names the source as master —
	// a concurrent failover won the race. The abort rollback must NOT
	// re-promote the source then: another replica holds the master
	// role, and a second master would fork the commit sequence.
	ErrSourceLost = errors.New("rebalance: source lost mastership mid-migration")
)

// Phase identifies how far a migration progressed.
type Phase int

// Migration phases, in execution order.
const (
	PhasePrepare Phase = iota
	PhaseCopy
	PhaseCatchUp
	PhaseCutover
	PhaseRelease
	PhaseDone
)

// String returns the phase name.
func (p Phase) String() string {
	switch p {
	case PhasePrepare:
		return "prepare"
	case PhaseCopy:
		return "copy"
	case PhaseCatchUp:
		return "catch-up"
	case PhaseCutover:
		return "cutover"
	case PhaseRelease:
		return "release"
	case PhaseDone:
		return "done"
	}
	return fmt.Sprintf("Phase(%d)", int(p))
}

// Replica is the migrator's view of one hosted partition replica.
type Replica struct {
	Store *store.Store
	Repl  *replication.Replica
}

// Host is the slice of a storage element the migrator drives. se.Element
// implements it; the indirection keeps this package importable from se
// (which hosts the protocol Peer) without a cycle.
type Host interface {
	ID() string
	Site() string
	Addr() simnet.Addr
	Down() bool
	// MigrationHandle returns the hosted replica of a partition.
	MigrationHandle(partition string) (Replica, bool)
	// AddMigrationTarget hosts a fresh slave replica for an incoming
	// migration (wiping any stale on-disk state for the partition).
	AddMigrationTarget(partition string) (Replica, error)
	// DropReplica removes a hosted replica and its on-disk state
	// (abort rollback, source retirement).
	DropReplica(partition string) error
	// PersistReplica snapshots the replica's store to its WAL so the
	// bulk-copied rows survive a crash (the copied prefix never went
	// through the commit log). No-op without a WAL.
	PersistReplica(partition string) error
}

// Move describes one partition migration.
type Move struct {
	Partition string
	Source    Host
	Target    Host
	// Durability is applied to the promoted target's replication.
	Durability replication.Durability
	// Release retires the source replica after cutover instead of
	// demoting it to a slave copy.
	Release bool
	// Commit is invoked exactly once, at the cutover point: the source
	// is frozen at frozenCSN, the target has applied every commit up
	// to it, roles are already flipped. It must atomically repoint the
	// partition table at the target and bump the placement epoch. An
	// error rolls the roles back and aborts. May be nil (tests,
	// table-less deployments).
	Commit func(frozenCSN uint64) error
}

// Report describes one migration's outcome and cost.
type Report struct {
	Partition      string
	Source, Target string
	// SnapshotCSN is the source CSN at stream-attach: every commit at
	// or below it ships in the bulk copy; later commits ride the live
	// stream.
	SnapshotCSN uint64
	// RowsCopied / Batches measure the bulk copy.
	RowsCopied int
	Batches    int
	// FrozenCSN is the source CSN the cutover handed over at.
	FrozenCSN uint64
	// CatchUpRecords counts live-stream commits the target applied
	// between snapshot and cutover.
	CatchUpRecords uint64
	// FreezeDuration is the client-visible write-freeze window.
	FreezeDuration time.Duration
	// Duration is the whole migration, bulk copy included.
	Duration time.Duration
	// Phase is the last phase reached (PhaseDone on success).
	Phase Phase
	// Aborted reports a rolled-back migration; Err holds the cause.
	Aborted bool
	Err     error
	// ReleaseErr reports a post-cutover release failure — most
	// seriously a failed target WAL snapshot, which leaves the
	// bulk-copied prefix (never in the target's commit log)
	// unrecoverable across a target crash. The move itself committed;
	// the operator must re-snapshot or re-seed before trusting the
	// new master's durability.
	ReleaseErr error
	// Released reports the source replica was retired.
	Released bool
	// LeftBehind lists replication peers that had not applied
	// FrozenCSN when the freeze deadline expired (partitioned slaves).
	// Their replication stream is gap-stuck on the new master — the
	// records they miss are not in its fresh sender queues — until an
	// anti-entropy round repairs and re-attaches them after heal.
	LeftBehind []simnet.Addr
}

// PeersLeftBehind counts the peers the cutover left behind.
func (r *Report) PeersLeftBehind() int { return len(r.LeftBehind) }

// String renders the report as one operator-facing line.
func (r *Report) String() string {
	if r.Aborted {
		return fmt.Sprintf("migrate %s %s->%s ABORTED at %s: %v",
			r.Partition, r.Source, r.Target, r.Phase, r.Err)
	}
	line := fmt.Sprintf("migrate %s %s->%s rows=%d batches=%d catch-up=%d freeze=%s left-behind=%d released=%t",
		r.Partition, r.Source, r.Target, r.RowsCopied, r.Batches,
		r.CatchUpRecords, r.FreezeDuration, len(r.LeftBehind), r.Released)
	if r.ReleaseErr != nil {
		line += fmt.Sprintf(" RELEASE-ERROR=%v (target not crash-durable until re-snapshotted)", r.ReleaseErr)
	}
	return line
}

// Hooks are test-only injection points between phases (fault-schedule
// tests cut the network at exact phase boundaries through them).
type Hooks struct {
	// AfterCopy runs after the bulk copy completes, before catch-up.
	AfterCopy func()
	// BeforeCutover runs after catch-up converges, before the freeze.
	BeforeCutover func()
}

// Migrator executes partition moves. The zero value is usable; the
// knobs default sensibly for the simulated network scale.
type Migrator struct {
	Net *simnet.Network

	// BatchRows bounds rows per bulk-copy round trip (default 128).
	BatchRows int
	// LagThreshold is the stream lag (records) at which catch-up ends
	// and cutover starts (default 64). Under sustained writes the
	// observed lag floors at the replication pipeline depth (write
	// rate × round-trip time), so the threshold must sit above it;
	// whatever lag remains is drained inside the cutover freeze, one
	// or two batch round trips.
	LagThreshold uint64
	// CatchUpTimeout bounds the catch-up phase (default 2s).
	CatchUpTimeout time.Duration
	// FreezeTimeout bounds the cutover write-freeze: the target must
	// confirm the frozen CSN within it or the move aborts; other peers
	// get best-effort drain until it expires (default 100ms).
	FreezeTimeout time.Duration
	// CallTimeout bounds each protocol RPC (default 50ms).
	CallTimeout time.Duration

	// Hooks are test-only phase-boundary injection points.
	Hooks Hooks
}

func (m *Migrator) batchRows() int {
	if m.BatchRows > 0 {
		return m.BatchRows
	}
	return 128
}

func (m *Migrator) lagThreshold() uint64 {
	if m.LagThreshold > 0 {
		return m.LagThreshold
	}
	return 64
}

func (m *Migrator) catchUpTimeout() time.Duration {
	if m.CatchUpTimeout > 0 {
		return m.CatchUpTimeout
	}
	return 2 * time.Second
}

func (m *Migrator) freezeTimeout() time.Duration {
	if m.FreezeTimeout > 0 {
		return m.FreezeTimeout
	}
	return 100 * time.Millisecond
}

func (m *Migrator) call(ctx context.Context, from, to simnet.Addr, req any) (any, error) {
	timeout := m.CallTimeout
	if timeout == 0 {
		timeout = 50 * time.Millisecond
	}
	cctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	return m.Net.Call(cctx, from, to, req)
}

// progress polls the target's applied watermark over the network (from
// the source address, so reachability is the real source→target path).
func (m *Migrator) progress(ctx context.Context, from, to simnet.Addr, partition string) (ProgressResp, error) {
	raw, err := m.call(ctx, from, to, ProgressReq{Partition: partition})
	if err != nil {
		return ProgressResp{}, err
	}
	resp, ok := raw.(ProgressResp)
	if !ok {
		return ProgressResp{}, fmt.Errorf("rebalance: unexpected progress response %T", raw)
	}
	return resp, nil
}

// Run executes one migration. On success the target is the partition
// master and the report's Phase is PhaseDone. On any failure before
// the Commit callback returns, the move is rolled back — the target
// replica is dropped, the source keeps the master role — and the
// returned error wraps ErrAborted. The report is always non-nil.
func (m *Migrator) Run(ctx context.Context, mv Move) (*Report, error) {
	start := time.Now()
	rep := &Report{
		Partition: mv.Partition,
		Source:    mv.Source.ID(),
		Target:    mv.Target.ID(),
		Phase:     PhasePrepare,
	}
	abort := func(err error) (*Report, error) {
		rep.Aborted = true
		rep.Err = err
		rep.Duration = time.Since(start)
		// Both wraps survive errors.Is: callers branch on ErrAborted
		// for the rollback guarantee and on the cause (ErrConflict,
		// ErrSourceLost, network errors) for the error class.
		return rep, fmt.Errorf("%w: %s %s->%s at %s: %w",
			ErrAborted, mv.Partition, rep.Source, rep.Target, rep.Phase, err)
	}

	// Prepare: the source must master the partition, the target must
	// not host any copy of it, both ends must be up.
	if mv.Source.Down() {
		return abort(fmt.Errorf("source element %s is down", rep.Source))
	}
	if mv.Target.Down() {
		return abort(fmt.Errorf("target element %s is down", rep.Target))
	}
	src, ok := mv.Source.MigrationHandle(mv.Partition)
	if !ok {
		return abort(fmt.Errorf("source does not host %s", mv.Partition))
	}
	if src.Store.Role() != store.Master {
		return abort(fmt.Errorf("source replica of %s is not the master", mv.Partition))
	}
	if _, hosted := mv.Target.MigrationHandle(mv.Partition); hosted {
		return abort(ErrConflict)
	}

	// Bulk copy: host the target replica, attach it to the live
	// replication stream under a momentary freeze (so no commit can
	// slip between the snapshot CSN and the sender attach), then
	// stream the snapshot. Records committed during the copy are both
	// racy-included in the iteration and re-delivered by the stream;
	// post-images are full rows, so double apply converges.
	rep.Phase = PhaseCopy
	tgt, err := mv.Target.AddMigrationTarget(mv.Partition)
	if err != nil {
		return abort(err)
	}
	srcAddr, tgtAddr := mv.Source.Addr(), mv.Target.Addr()
	rollback := func() {
		src.Repl.RemovePeer(tgtAddr)
		_ = mv.Target.DropReplica(mv.Partition)
	}

	snapCSN, release := src.Store.FreezeWrites()
	src.Repl.AddStandbyPeer(tgtAddr)
	release()
	rep.SnapshotCSN = snapCSN

	// Collect the snapshot zero-copy — entries are immutable shared
	// versions, so this gathers references, not row data — and ship in
	// batches outside the iteration: a network round trip under a
	// shard read lock would stall that shard's writers for the RTT.
	rows := make([]replication.RowTransfer, 0, src.Store.Len())
	src.Store.ForEachAny(func(key string, e store.Entry, meta store.Meta) bool {
		rows = append(rows, replication.RowTransfer{Key: key, Entry: e, Meta: meta})
		return true
	})
	var shipErr error
	for off := 0; off < len(rows) && shipErr == nil; off += m.batchRows() {
		end := off + m.batchRows()
		if end > len(rows) {
			end = len(rows)
		}
		_, shipErr = m.call(ctx, srcAddr, tgtAddr,
			RowBatchMsg{Partition: mv.Partition, Rows: rows[off:end]})
		if shipErr == nil {
			rep.RowsCopied += end - off
			rep.Batches++
		}
	}
	if shipErr == nil {
		_, shipErr = m.call(ctx, srcAddr, tgtAddr, WatermarkMsg{Partition: mv.Partition, CSN: snapCSN})
	}
	if shipErr != nil {
		rollback()
		return abort(shipErr)
	}
	if m.Hooks.AfterCopy != nil {
		m.Hooks.AfterCopy()
	}

	// Catch-up: the target applies the live stream until its lag
	// behind the source master falls under the threshold.
	rep.Phase = PhaseCatchUp
	deadline := time.Now().Add(m.catchUpTimeout())
	for {
		p, err := m.progress(ctx, srcAddr, tgtAddr, mv.Partition)
		if err == nil && src.Store.CSN()-p.AppliedCSN <= m.lagThreshold() {
			break
		}
		if time.Now().After(deadline) {
			if err == nil {
				err = fmt.Errorf("lag %d above threshold at deadline", src.Store.CSN()-p.AppliedCSN)
			}
			rollback()
			return abort(fmt.Errorf("catch-up: %w", err))
		}
		if cerr := ctx.Err(); cerr != nil {
			rollback()
			return abort(cerr)
		}
		time.Sleep(200 * time.Microsecond)
	}
	if m.Hooks.BeforeCutover != nil {
		m.Hooks.BeforeCutover()
	}

	// Cutover: freeze source commits, drain the stream to the target
	// (required) and the other peers (best-effort within the freeze
	// budget), flip roles, commit the table flip, unfreeze. The source
	// stays authoritative until Commit returns nil.
	rep.Phase = PhaseCutover
	origPeers := src.Repl.Peers()
	frozenCSN, release := src.Store.FreezeWrites()
	freezeStart := time.Now()
	unfreeze := func() {
		rep.FreezeDuration = time.Since(freezeStart)
		release()
	}
	rep.FrozenCSN = frozenCSN
	rep.CatchUpRecords = frozenCSN - snapCSN

	freezeDeadline := time.Now().Add(m.freezeTimeout())
	for {
		p, err := m.progress(ctx, srcAddr, tgtAddr, mv.Partition)
		if err == nil && p.AppliedCSN >= frozenCSN {
			break
		}
		if time.Now().After(freezeDeadline) {
			if err == nil {
				err = fmt.Errorf("target applied %d < frozen %d at freeze deadline", p.AppliedCSN, frozenCSN)
			}
			unfreeze()
			rollback()
			return abort(fmt.Errorf("cutover drain: %w", err))
		}
		time.Sleep(100 * time.Microsecond)
	}
	// Best-effort drain of the remaining peers so they can follow the
	// new master's stream without an anti-entropy round. Unreachable
	// peers are left behind, exactly like a failover leaves them.
	for _, peer := range origPeers {
		if peer == tgtAddr {
			continue
		}
		for {
			p, err := m.progress(ctx, srcAddr, peer, mv.Partition)
			if err == nil && p.AppliedCSN >= frozenCSN {
				break
			}
			if time.Now().After(freezeDeadline) {
				rep.LeftBehind = append(rep.LeftBehind, peer)
				break
			}
			time.Sleep(100 * time.Microsecond)
		}
	}

	// Role flip under the freeze: the target becomes master and ships
	// to every old peer plus (unless released) the demoted source; the
	// source stops shipping and rejoins as a slave at the frozen
	// watermark. No commit can land anywhere in between: the source is
	// frozen and the partition table still routes to it.
	src.Repl.RemovePeer(tgtAddr)
	targetPeers := make([]simnet.Addr, 0, len(origPeers))
	for _, peer := range origPeers {
		if peer != tgtAddr {
			targetPeers = append(targetPeers, peer)
		}
	}
	if !mv.Release {
		targetPeers = append(targetPeers, srcAddr)
	}
	tgt.Repl.Promote(targetPeers...)
	tgt.Repl.SetDurability(mv.Durability)
	src.Repl.Demote()
	src.Store.SetAppliedCSN(frozenCSN)

	if mv.Commit != nil {
		if err := mv.Commit(frozenCSN); err != nil {
			tgt.Repl.Demote()
			if !errors.Is(err, ErrSourceLost) {
				// The table still points at the source, which is whole
				// through frozenCSN: give it the master role back. The
				// restored peer set excludes the target — its replica
				// is about to be dropped, and re-adding it as a
				// regular peer would gate synchronous commits on an
				// undeliverable sender.
				restorePeers := make([]simnet.Addr, 0, len(origPeers))
				for _, peer := range origPeers {
					if peer != tgtAddr {
						restorePeers = append(restorePeers, peer)
					}
				}
				src.Store.SetRole(store.Master)
				src.Repl.SetPeers(restorePeers...)
			}
			// ErrSourceLost: a concurrent failover promoted another
			// replica; the source stays the demoted slave it already
			// is — re-promoting it would create a second master.
			// Rollback completes before the freeze lifts so no client
			// commit can observe the half-unwound state.
			rollback()
			unfreeze()
			return abort(fmt.Errorf("commit: %w", err))
		}
	}
	unfreeze()

	// Release: retire or keep the source copy; persist the target's
	// bulk-copied prefix (it never went through the target's WAL).
	// Failures here cannot un-commit the move — they surface on the
	// report for the operator instead.
	rep.Phase = PhaseRelease
	if mv.Release {
		if err := mv.Source.DropReplica(mv.Partition); err == nil {
			rep.Released = true
		} else {
			rep.ReleaseErr = err
		}
	}
	if err := mv.Target.PersistReplica(mv.Partition); err != nil && rep.ReleaseErr == nil {
		rep.ReleaseErr = err
	}

	rep.Phase = PhaseDone
	rep.Duration = time.Since(start)
	return rep, nil
}
