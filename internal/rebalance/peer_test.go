package rebalance

import (
	"context"
	"testing"

	"repro/internal/replication"
	"repro/internal/store"
)

func TestPeerRowBatchWatermarkProgress(t *testing.T) {
	p := NewPeer()
	st := store.New("el/p1")
	st.SetRole(store.Slave)
	p.Register("p1", st)

	rows := []replication.RowTransfer{
		{Key: "k1", Entry: store.Entry{"v": {"1"}}, Meta: store.Meta{CSN: 3}},
		{Key: "k2", Entry: store.Entry{"v": {"2"}}, Meta: store.Meta{CSN: 5, Tombstone: true}},
	}
	raw, handled, err := p.HandleMessage(context.Background(), "", RowBatchMsg{Partition: "p1", Rows: rows})
	if !handled || err != nil {
		t.Fatalf("row batch: handled=%v err=%v", handled, err)
	}
	if resp := raw.(RowBatchResp); resp.Applied != 2 {
		t.Fatalf("applied = %d", resp.Applied)
	}
	if e, _, ok := st.GetCommitted("k1"); !ok || e.First("v") != "1" {
		t.Fatalf("k1 = %v %v", e, ok)
	}
	if _, _, ok := st.GetCommitted("k2"); ok {
		t.Fatal("tombstone row visible as live")
	}
	if _, m, ok := st.GetAny("k2"); !ok || !m.Tombstone {
		t.Fatal("tombstone not installed")
	}

	if _, handled, err = p.HandleMessage(context.Background(), "", WatermarkMsg{Partition: "p1", CSN: 7}); !handled || err != nil {
		t.Fatalf("watermark: %v %v", handled, err)
	}
	raw, _, err = p.HandleMessage(context.Background(), "", ProgressReq{Partition: "p1"})
	if err != nil {
		t.Fatal(err)
	}
	prog := raw.(ProgressResp)
	if prog.AppliedCSN != 7 || prog.Rows != 1 {
		t.Fatalf("progress = %+v", prog)
	}

	p.Unregister("p1")
	if _, handled, err = p.HandleMessage(context.Background(), "", ProgressReq{Partition: "p1"}); !handled || err == nil {
		t.Fatal("unregistered partition still served")
	}
	// Foreign messages pass through.
	if _, handled, _ = p.HandleMessage(context.Background(), "", struct{}{}); handled {
		t.Fatal("peer claimed a foreign message")
	}
}

func TestWatermarkNeverRewinds(t *testing.T) {
	p := NewPeer()
	st := store.New("el/p1")
	st.SetRole(store.Slave)
	p.Register("p1", st)
	// The live stream already applied past the snapshot point (young
	// partition: records ship and ack before the watermark message
	// lands). Priming with the older snapshot CSN must be a no-op.
	st.SetAppliedCSN(3)
	if _, _, err := p.HandleMessage(context.Background(), "", WatermarkMsg{Partition: "p1", CSN: 0}); err != nil {
		t.Fatal(err)
	}
	if got := st.AppliedCSN(); got != 3 {
		t.Fatalf("watermark rewound to %d", got)
	}
	if _, _, err := p.HandleMessage(context.Background(), "", WatermarkMsg{Partition: "p1", CSN: 9}); err != nil {
		t.Fatal(err)
	}
	if got := st.AppliedCSN(); got != 9 {
		t.Fatalf("watermark did not advance: %d", got)
	}
}
