// Package rebalance implements live partition migration and elastic
// rebalancing: moving a partition replica — including the master role
// — from one storage element to another while front-end and
// provisioning traffic keeps flowing.
//
// The paper's scale story (§3.4.2 scale-out by site, §3.5 selective
// placement) assumes partitions can be *re*-placed as load grows; the
// subsystem makes placement a runtime operation:
//
//   - A Migrator executes one move in phases: bulk copy (consistent
//     snapshot streamed over the network), catch-up (the target joins
//     the live replication stream at the snapshot watermark), cutover
//     (a bounded write-freeze drains in-flight commits, hands over the
//     master role and bumps the placement epoch) and release (the
//     source demotes to slave or retires). The source stays
//     authoritative until cutover commits; an abort at any earlier
//     phase rolls the target back and leaves the cluster untouched.
//   - A load model and planner (Plan) turn per-element master row
//     counts into a bounded list of moves, the policy loop behind
//     elastic rebalancing (core.UDR.Rebalance).
//
// This file is the wire protocol: the messages a migration target
// serves and the Peer that answers them on behalf of a storage
// element's hosted replicas.
package rebalance

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/metrics"
	"repro/internal/replication"
	"repro/internal/simnet"
	"repro/internal/store"
)

// RowBatchMsg carries one batch of snapshot rows from the migration
// source to the target. Batches arrive sequentially (the migrator
// round-trips each one) and strictly before the WatermarkMsg, so the
// target installs them blindly: no stream apply can interleave, the
// target's replication watermark is still unset and gap-stuck.
type RowBatchMsg struct {
	Partition string
	Rows      []replication.RowTransfer
}

// RowBatchResp acknowledges a RowBatchMsg.
type RowBatchResp struct {
	Applied int
}

// WatermarkMsg primes the target's replication high-water mark to the
// snapshot CSN after the last row batch: every commit at or below CSN
// is reflected in the shipped rows, so the target can start applying
// the live stream at CSN+1.
type WatermarkMsg struct {
	Partition string
	CSN       uint64
}

// WatermarkResp acknowledges a WatermarkMsg.
type WatermarkResp struct{}

// ProgressReq asks a replica how far it has applied. The migrator
// polls the target with it during catch-up and cutover; sender
// acknowledgements cannot serve here because a freshly attached peer's
// sender has seen none of the pre-attach records.
type ProgressReq struct {
	Partition string
}

// ProgressResp answers a ProgressReq.
type ProgressResp struct {
	AppliedCSN uint64
	Rows       int
}

// Peer serves the migration protocol for the partition replicas
// hosted on one storage element, mirroring the antientropy.Peer and
// replication.Node handler idiom.
type Peer struct {
	mu    sync.RWMutex
	parts map[string]*store.Store

	// RowsReceived counts snapshot rows installed; Batches counts
	// row batches served.
	RowsReceived metrics.Counter
	Batches      metrics.Counter
}

// NewPeer returns an empty protocol server.
func NewPeer() *Peer {
	return &Peer{parts: make(map[string]*store.Store)}
}

// Register serves the migration protocol for a partition replica,
// replacing any previous registration (element recovery rebuilds the
// store and re-registers).
func (p *Peer) Register(partition string, st *store.Store) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.parts[partition] = st
}

// Unregister stops serving a partition (replica dropped).
func (p *Peer) Unregister(partition string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.parts, partition)
}

func (p *Peer) part(partition string) (*store.Store, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	st := p.parts[partition]
	if st == nil {
		return nil, fmt.Errorf("rebalance: partition %q not hosted here", partition)
	}
	return st, nil
}

// HandleMessage processes a migration-protocol message. It reports
// handled = false for messages belonging to other subsystems so the
// storage element can route them elsewhere.
func (p *Peer) HandleMessage(ctx context.Context, from simnet.Addr, msg any) (resp any, handled bool, err error) {
	switch m := msg.(type) {
	case RowBatchMsg:
		st, err := p.part(m.Partition)
		if err != nil {
			return nil, true, err
		}
		for _, row := range m.Rows {
			st.PutDirect(row.Key, row.Entry, row.Meta)
		}
		p.RowsReceived.Add(int64(len(m.Rows)))
		p.Batches.Inc()
		return RowBatchResp{Applied: len(m.Rows)}, true, nil
	case WatermarkMsg:
		st, err := p.part(m.Partition)
		if err != nil {
			return nil, true, err
		}
		// Advance only: on a young partition (snapshot CSN 0 or near
		// it) the live stream may have applied records past the
		// snapshot point before this message lands — rewinding the
		// watermark would make the already-acked records re-deliverable
		// by nobody and gap-stick the stream forever.
		st.AdvanceAppliedCSN(m.CSN)
		return WatermarkResp{}, true, nil
	case ProgressReq:
		st, err := p.part(m.Partition)
		if err != nil {
			return nil, true, err
		}
		return ProgressResp{AppliedCSN: st.AppliedCSN(), Rows: st.Len()}, true, nil
	default:
		return nil, false, nil
	}
}
