package auth

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func testKey(t *testing.T) [KeyLen]byte {
	t.Helper()
	k, err := ParseKey("000102030405060708090a0b0c0d0e0f")
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestParseKey(t *testing.T) {
	if _, err := ParseKey("zz"); err == nil {
		t.Fatal("bad hex accepted")
	}
	if _, err := ParseKey("0001"); !errors.Is(err, ErrBadKey) {
		t.Fatal("short key accepted")
	}
	k, err := ParseKey(strings.Repeat("ab", 16))
	if err != nil {
		t.Fatal(err)
	}
	if k[0] != 0xab || k[15] != 0xab {
		t.Fatalf("key = %x", k)
	}
}

func TestGenerateVerifyRoundTrip(t *testing.T) {
	k := testKey(t)
	rand := Challenge(42)
	const sqn = 100
	v := GenerateVector(k, rand, sqn, [AmfLen]byte{0x80, 0x00})

	got, err := VerifyAUTN(k, v.RAND, v.AUTN, sqn-1)
	if err != nil {
		t.Fatal(err)
	}
	if got != sqn {
		t.Fatalf("recovered SQN = %d, want %d", got, sqn)
	}
}

func TestVectorComponentsDiffer(t *testing.T) {
	k := testKey(t)
	v := GenerateVector(k, Challenge(1), 1, [AmfLen]byte{})
	// The derivation offsets must make the outputs distinct.
	if string(v.CK[:]) == string(v.IK[:]) {
		t.Fatal("CK == IK")
	}
	if string(v.XRES[:]) == string(v.CK[:ResLen]) {
		t.Fatal("XRES == CK prefix")
	}
}

func TestMACFailureOnWrongKey(t *testing.T) {
	k := testKey(t)
	k2 := k
	k2[0] ^= 0xFF
	v := GenerateVector(k, Challenge(7), 50, [AmfLen]byte{})
	if _, err := VerifyAUTN(k2, v.RAND, v.AUTN, 49); !errors.Is(err, ErrMACFailure) {
		t.Fatalf("err = %v, want MAC failure", err)
	}
}

func TestMACFailureOnTamperedAUTN(t *testing.T) {
	k := testKey(t)
	v := GenerateVector(k, Challenge(7), 50, [AmfLen]byte{})
	v.AUTN[10] ^= 0x01 // flip a MAC bit
	if _, err := VerifyAUTN(k, v.RAND, v.AUTN, 49); !errors.Is(err, ErrMACFailure) {
		t.Fatalf("err = %v, want MAC failure", err)
	}
}

func TestSyncFailureOnReplay(t *testing.T) {
	k := testKey(t)
	v := GenerateVector(k, Challenge(7), 50, [AmfLen]byte{})
	// USIM has already seen SQN 50: replay must be rejected.
	if _, err := VerifyAUTN(k, v.RAND, v.AUTN, 50); !errors.Is(err, ErrSyncFailure) {
		t.Fatalf("err = %v, want sync failure", err)
	}
	// Far-future SQN (beyond the window) also rejected.
	vFuture := GenerateVector(k, Challenge(8), 50+sqnDelta+1, [AmfLen]byte{})
	if _, err := VerifyAUTN(k, vFuture.RAND, vFuture.AUTN, 50); !errors.Is(err, ErrSyncFailure) {
		t.Fatalf("err = %v, want sync failure", err)
	}
}

func TestSQNEncodingBounds(t *testing.T) {
	for _, sqn := range []uint64{0, 1, MaxSQN, MaxSQN + 5} {
		b := sqnBytes(sqn)
		got := sqnFromBytes(b)
		if got != sqn&MaxSQN {
			t.Fatalf("sqn %d round-tripped to %d", sqn, got)
		}
	}
}

func TestChallengeDeterministicDistinct(t *testing.T) {
	if Challenge(1) != Challenge(1) {
		t.Fatal("challenge not deterministic")
	}
	if Challenge(1) == Challenge(2) {
		t.Fatal("challenges collide")
	}
}

func TestRoundTripProperty(t *testing.T) {
	k := testKey(t)
	f := func(seed uint64, sqn32 uint32, amf [2]byte) bool {
		sqn := uint64(sqn32) + 1 // >= 1 so highestSeen=sqn-1 is valid
		v := GenerateVector(k, Challenge(seed), sqn, amf)
		got, err := VerifyAUTN(k, v.RAND, v.AUTN, sqn-1)
		return err == nil && got == sqn
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDifferentKeysDifferentVectorsProperty(t *testing.T) {
	f := func(a, b [16]byte, seed uint64) bool {
		if a == b {
			return true
		}
		va := GenerateVector(a, Challenge(seed), 1, [AmfLen]byte{})
		vb := GenerateVector(b, Challenge(seed), 1, [AmfLen]byte{})
		return va.XRES != vb.XRES
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
