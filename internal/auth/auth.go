// Package auth implements a simplified MILENAGE-style authentication
// vector computation (3GPP TS 35.206 shape) for the UDR's
// authentication procedures: the HLR/HSS front-end fetches the
// permanent key K and sequence number SQN from the subscriber
// profile, derives an authentication vector, and writes the advanced
// SQN back — which is why the paper's authentication procedure counts
// as a write (§3.5 fn 8 context).
//
// The derivation functions follow MILENAGE's structure (AES-128 as
// the kernel, XOR offsets per output) but use fixed rotation/offset
// constants; this preserves the computational shape and the
// freshness/resynchronization semantics without claiming
// test-vector-level TS 35.206 conformance.
package auth

import (
	"crypto/aes"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
)

// Sizes of the vector components (3GPP TS 33.102).
const (
	KeyLen   = 16 // K: permanent subscriber key
	RandLen  = 16 // RAND: network challenge
	ResLen   = 8  // RES/XRES: expected response
	CKLen    = 16 // CK: cipher key
	IKLen    = 16 // IK: integrity key
	AutnLen  = 16 // AUTN: authentication token
	MacALen  = 8  // MAC-A inside AUTN
	SqnLen   = 6  // SQN: 48-bit sequence number
	AmfLen   = 2  // AMF: authentication management field
	MaxSQN   = (1 << 48) - 1
	sqnDelta = 32 // resync window (accepted SQN distance)
)

// Errors returned by the verification path.
var (
	ErrBadKey = errors.New("auth: key must be 16 bytes")
	// ErrMACFailure reports an AUTN whose MAC does not match: the
	// network is not authentic (or keys diverged).
	ErrMACFailure = errors.New("auth: MAC failure")
	// ErrSyncFailure reports an SQN outside the acceptance window:
	// the USIM and the HSS must resynchronize.
	ErrSyncFailure = errors.New("auth: SQN out of range (resync required)")
)

// Vector is one authentication vector (quintet) as delivered to a
// serving node.
type Vector struct {
	RAND [RandLen]byte
	XRES [ResLen]byte
	CK   [CKLen]byte
	IK   [IKLen]byte
	AUTN [AutnLen]byte
}

// ParseKey decodes the profile's hex-encoded permanent key.
func ParseKey(hexKey string) ([KeyLen]byte, error) {
	var k [KeyLen]byte
	raw, err := hex.DecodeString(hexKey)
	if err != nil {
		return k, fmt.Errorf("auth: bad key encoding: %v", err)
	}
	if len(raw) != KeyLen {
		return k, ErrBadKey
	}
	copy(k[:], raw)
	return k, nil
}

// encryptBlock runs the AES kernel E_K(in XOR x).
func encryptBlock(k [KeyLen]byte, in [16]byte, x [16]byte) [16]byte {
	blk, err := aes.NewCipher(k[:])
	if err != nil {
		// aes.NewCipher only fails on bad key sizes, which the array
		// type precludes.
		panic(err)
	}
	var tmp, out [16]byte
	for i := range tmp {
		tmp[i] = in[i] ^ x[i]
	}
	blk.Encrypt(out[:], tmp[:])
	return out
}

// offsets differentiating the five output functions (MILENAGE's c1..c5
// role, simplified to single-byte sentinels).
var offsets = [5]byte{0x00, 0x01, 0x02, 0x04, 0x08}

// f builds output i from the common intermediate value.
func f(k [KeyLen]byte, intermediate [16]byte, i int) [16]byte {
	var c [16]byte
	c[15] = offsets[i]
	return encryptBlock(k, intermediate, c)
}

// sqnBytes encodes a 48-bit SQN.
func sqnBytes(sqn uint64) [SqnLen]byte {
	var out [SqnLen]byte
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], sqn&MaxSQN)
	copy(out[:], b[2:])
	return out
}

// sqnFromBytes decodes a 48-bit SQN.
func sqnFromBytes(b [SqnLen]byte) uint64 {
	var full [8]byte
	copy(full[2:], b[:])
	return binary.BigEndian.Uint64(full[:])
}

// GenerateVector derives the authentication vector for a challenge.
// amf is the authentication management field (zeroed by callers that
// don't use it).
func GenerateVector(k [KeyLen]byte, rand [RandLen]byte, sqn uint64, amf [AmfLen]byte) Vector {
	// Common intermediate: E_K(RAND).
	intermediate := encryptBlock(k, rand, [16]byte{})

	// MAC-A over SQN||AMF (f1).
	var sqnAmf [16]byte
	sb := sqnBytes(sqn)
	copy(sqnAmf[0:6], sb[:])
	copy(sqnAmf[6:8], amf[:])
	copy(sqnAmf[8:14], sb[:])
	copy(sqnAmf[14:16], amf[:])
	macBlock := f(k, xor16(intermediate, sqnAmf), 0)

	// RES (f2), CK (f3), IK (f4), AK (f5).
	resBlock := f(k, intermediate, 1)
	ckBlock := f(k, intermediate, 2)
	ikBlock := f(k, intermediate, 3)
	akBlock := f(k, intermediate, 4)

	var v Vector
	v.RAND = rand
	copy(v.XRES[:], resBlock[:ResLen])
	v.CK = ckBlock
	v.IK = ikBlock

	// AUTN = (SQN xor AK) || AMF || MAC-A.
	for i := 0; i < SqnLen; i++ {
		v.AUTN[i] = sb[i] ^ akBlock[i]
	}
	copy(v.AUTN[6:8], amf[:])
	copy(v.AUTN[8:16], macBlock[:MacALen])
	return v
}

func xor16(a, b [16]byte) [16]byte {
	var out [16]byte
	for i := range out {
		out[i] = a[i] ^ b[i]
	}
	return out
}

// VerifyAUTN runs the USIM side: recover the SQN from AUTN, check the
// MAC and the freshness window against the USIM's highest seen SQN.
// It returns the recovered SQN on success.
func VerifyAUTN(k [KeyLen]byte, rand [RandLen]byte, autn [AutnLen]byte, highestSeen uint64) (uint64, error) {
	intermediate := encryptBlock(k, rand, [16]byte{})
	akBlock := f(k, intermediate, 4)

	var sb [SqnLen]byte
	for i := 0; i < SqnLen; i++ {
		sb[i] = autn[i] ^ akBlock[i]
	}
	sqn := sqnFromBytes(sb)
	var amf [AmfLen]byte
	copy(amf[:], autn[6:8])

	// Recompute MAC-A.
	var sqnAmf [16]byte
	copy(sqnAmf[0:6], sb[:])
	copy(sqnAmf[6:8], amf[:])
	copy(sqnAmf[8:14], sb[:])
	copy(sqnAmf[14:16], amf[:])
	macBlock := f(k, xor16(intermediate, sqnAmf), 0)
	for i := 0; i < MacALen; i++ {
		if autn[8+i] != macBlock[i] {
			return 0, ErrMACFailure
		}
	}
	if sqn <= highestSeen || sqn > highestSeen+sqnDelta {
		return sqn, ErrSyncFailure
	}
	return sqn, nil
}

// Challenge derives a deterministic RAND from a seed, for
// reproducible tests and workloads (a real HSS uses a CSPRNG; the
// distinction is irrelevant to the procedures under study).
func Challenge(seed uint64) [RandLen]byte {
	var r [RandLen]byte
	binary.BigEndian.PutUint64(r[:8], seed)
	binary.BigEndian.PutUint64(r[8:], seed^0x9e3779b97f4a7c15)
	return r
}
