package se

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/simnet"
	"repro/internal/store"
	"repro/internal/subscriber"
	"repro/internal/wal"
)

func call(t *testing.T, n *simnet.Network, to simnet.Addr, msg any) (any, error) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return n.Call(ctx, simnet.MakeAddr("test", "client"), to, msg)
}

func newElement(t *testing.T, n *simnet.Network, id, site string) *Element {
	t.Helper()
	el := New(n, Config{ID: id, Site: site})
	t.Cleanup(el.Stop)
	return el
}

func TestTxnPutGet(t *testing.T) {
	n := simnet.New(simnet.FastConfig())
	el := newElement(t, n, "se-1", "eu")
	if _, err := el.AddReplica("p1", store.Master); err != nil {
		t.Fatal(err)
	}

	resp, err := call(t, n, el.Addr(), TxnReq{
		Partition: "p1",
		Ops: []TxnOp{
			{Kind: TxnPut, Key: "sub-1", Entry: store.Entry{"msisdn": {"34600000001"}}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.(TxnResp).CSN != 1 {
		t.Fatalf("csn = %d", resp.(TxnResp).CSN)
	}

	resp, err = call(t, n, el.Addr(), TxnReq{
		Partition: "p1",
		Ops:       []TxnOp{{Kind: TxnGet, Key: "sub-1"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	r := resp.(TxnResp)
	if !r.Results[0].Found || r.Results[0].Entry.First("msisdn") != "34600000001" {
		t.Fatalf("get = %+v", r.Results[0])
	}
	if r.Role != store.Master {
		t.Fatalf("role = %v", r.Role)
	}
	if el.Reads.Value() != 1 || el.Writes.Value() != 1 {
		t.Fatalf("reads=%d writes=%d", el.Reads.Value(), el.Writes.Value())
	}
}

func TestTxnAtomicReadModify(t *testing.T) {
	n := simnet.New(simnet.FastConfig())
	el := newElement(t, n, "se-1", "eu")
	el.AddReplica("p1", store.Master)

	call(t, n, el.Addr(), TxnReq{Partition: "p1", Ops: []TxnOp{
		{Kind: TxnPut, Key: "k", Entry: store.Entry{"bar": {"FALSE"}}},
	}})
	resp, err := call(t, n, el.Addr(), TxnReq{Partition: "p1", Ops: []TxnOp{
		{Kind: TxnGet, Key: "k"},
		{Kind: TxnModify, Key: "k", Mods: []store.Mod{{Kind: store.ModReplace, Attr: "bar", Vals: []string{"TRUE"}}}},
		{Kind: TxnGet, Key: "k"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	r := resp.(TxnResp)
	if r.Results[0].Entry.First("bar") != "FALSE" {
		t.Fatalf("pre-image = %v", r.Results[0].Entry)
	}
	// The third op reads the transaction's own write.
	if r.Results[2].Entry.First("bar") != "TRUE" {
		t.Fatalf("read-your-writes = %v", r.Results[2].Entry)
	}
}

func TestTxnCompare(t *testing.T) {
	n := simnet.New(simnet.FastConfig())
	el := newElement(t, n, "se-1", "eu")
	el.AddReplica("p1", store.Master)
	call(t, n, el.Addr(), TxnReq{Partition: "p1", Ops: []TxnOp{
		{Kind: TxnPut, Key: "k", Entry: store.Entry{"active": {"TRUE"}}},
	}})
	resp, _ := call(t, n, el.Addr(), TxnReq{Partition: "p1", Ops: []TxnOp{
		{Kind: TxnCompare, Key: "k", Attr: "active", Value: "TRUE"},
		{Kind: TxnCompare, Key: "k", Attr: "active", Value: "FALSE"},
		{Kind: TxnCompare, Key: "missing", Attr: "x", Value: "1"},
	}})
	r := resp.(TxnResp)
	if !r.Results[0].CompareOK || r.Results[1].CompareOK {
		t.Fatalf("compare = %+v", r.Results)
	}
	if r.Results[2].Found {
		t.Fatal("compare on missing row should report not-found")
	}
}

func TestUnknownPartition(t *testing.T) {
	n := simnet.New(simnet.FastConfig())
	el := newElement(t, n, "se-1", "eu")
	_, err := call(t, n, el.Addr(), TxnReq{Partition: "nope"})
	if err == nil || !errors.Is(err, ErrUnknownPartition) {
		t.Fatalf("err = %v", err)
	}
}

func TestSlaveRejectsWriteServesRead(t *testing.T) {
	n := simnet.New(simnet.FastConfig())
	el := newElement(t, n, "se-1", "eu")
	pr, _ := el.AddReplica("p1", store.Slave)
	pr.Store.ApplyReplicated(&store.CommitRecord{CSN: 1, Origin: "m", Ops: []store.Op{
		{Kind: store.OpPut, Key: "k", Entry: store.Entry{"v": {"1"}}},
	}})

	// Read succeeds.
	resp, err := call(t, n, el.Addr(), TxnReq{Partition: "p1", Ops: []TxnOp{{Kind: TxnGet, Key: "k"}}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.(TxnResp).Role != store.Slave {
		t.Fatal("role should be slave")
	}
	// Write fails.
	_, err = call(t, n, el.Addr(), TxnReq{Partition: "p1", Ops: []TxnOp{
		{Kind: TxnPut, Key: "k", Entry: store.Entry{"v": {"2"}}},
	}})
	if !errors.Is(err, store.ErrReadOnly) {
		t.Fatalf("err = %v", err)
	}
}

func TestFind(t *testing.T) {
	n := simnet.New(simnet.FastConfig())
	el := newElement(t, n, "se-1", "eu")
	el.AddReplica("p1", store.Master)
	call(t, n, el.Addr(), TxnReq{Partition: "p1", Ops: []TxnOp{
		{Kind: TxnPut, Key: "sub-7", Entry: store.Entry{
			"msisdn": {"34600000007"},
			"impu":   {"sip:+34600000007@ims", "tel:+34600000007"},
		}},
	}})

	resp, err := call(t, n, el.Addr(), FindReq{
		Identity: subscriber.Identity{Type: subscriber.MSISDN, Value: "34600000007"},
	})
	if err != nil {
		t.Fatal(err)
	}
	f := resp.(FindResp)
	if !f.Found || f.SubscriberID != "sub-7" || f.Partition != "p1" {
		t.Fatalf("find = %+v", f)
	}

	// Multi-valued attribute search.
	resp, _ = call(t, n, el.Addr(), FindReq{
		Identity: subscriber.Identity{Type: subscriber.IMPU, Value: "tel:+34600000007"},
	})
	if !resp.(FindResp).Found {
		t.Fatal("IMPU find failed")
	}

	// Miss.
	resp, _ = call(t, n, el.Addr(), FindReq{
		Identity: subscriber.Identity{Type: subscriber.MSISDN, Value: "nope"},
	})
	if resp.(FindResp).Found {
		t.Fatal("found a ghost")
	}
}

func TestFindIndexedMatchesLegacyScan(t *testing.T) {
	n := simnet.New(simnet.FastConfig())
	idxEl := New(n, Config{ID: "se-idx", Site: "eu"})
	scanEl := New(n, Config{ID: "se-scan", Site: "eu", LegacyFindScan: true})
	t.Cleanup(idxEl.Stop)
	t.Cleanup(scanEl.Stop)
	for _, el := range []*Element{idxEl, scanEl} {
		if _, err := el.AddReplica("p1", store.Master); err != nil {
			t.Fatal(err)
		}
		call(t, n, el.Addr(), TxnReq{Partition: "p1", Ops: []TxnOp{
			{Kind: TxnPut, Key: "sub-1", Entry: store.Entry{"imsi": {"214010000000001"}}},
			{Kind: TxnPut, Key: "sub-2", Entry: store.Entry{"impu": {"sip:2@ims", "tel:2"}}},
		}})
	}

	probes := []subscriber.Identity{
		{Type: subscriber.IMSI, Value: "214010000000001"},
		{Type: subscriber.IMPU, Value: "tel:2"},
		{Type: subscriber.IMSI, Value: "ghost"},
	}
	for _, id := range probes {
		a, err := call(t, n, idxEl.Addr(), FindReq{Identity: id})
		if err != nil {
			t.Fatal(err)
		}
		b, err := call(t, n, scanEl.Addr(), FindReq{Identity: id})
		if err != nil {
			t.Fatal(err)
		}
		if a.(FindResp) != b.(FindResp) {
			t.Fatalf("id %v: indexed %+v, scan %+v", id, a, b)
		}
	}

	// The index tracks writes: re-pointing an identity moves the
	// answer, deleting the row clears it.
	call(t, n, idxEl.Addr(), TxnReq{Partition: "p1", Ops: []TxnOp{
		{Kind: TxnModify, Key: "sub-1", Mods: []store.Mod{
			{Kind: store.ModReplace, Attr: "imsi", Vals: []string{"214010000000009"}}}},
	}})
	resp, _ := call(t, n, idxEl.Addr(), FindReq{
		Identity: subscriber.Identity{Type: subscriber.IMSI, Value: "214010000000001"}})
	if resp.(FindResp).Found {
		t.Fatal("stale identity still resolvable")
	}
	resp, _ = call(t, n, idxEl.Addr(), FindReq{
		Identity: subscriber.Identity{Type: subscriber.IMSI, Value: "214010000000009"}})
	if f := resp.(FindResp); !f.Found || f.SubscriberID != "sub-1" {
		t.Fatalf("re-pointed identity = %+v", f)
	}
	call(t, n, idxEl.Addr(), TxnReq{Partition: "p1", Ops: []TxnOp{{Kind: TxnDelete, Key: "sub-2"}}})
	resp, _ = call(t, n, idxEl.Addr(), FindReq{
		Identity: subscriber.Identity{Type: subscriber.IMPU, Value: "tel:2"}})
	if resp.(FindResp).Found {
		t.Fatal("deleted row still resolvable through the index")
	}
}

func TestFindSkipsSlaves(t *testing.T) {
	n := simnet.New(simnet.FastConfig())
	el := newElement(t, n, "se-1", "eu")
	pr, _ := el.AddReplica("p1", store.Slave)
	pr.Store.ApplyReplicated(&store.CommitRecord{CSN: 1, Origin: "m", Ops: []store.Op{
		{Kind: store.OpPut, Key: "sub-1", Entry: store.Entry{"msisdn": {"1"}}},
	}})
	resp, _ := call(t, n, el.Addr(), FindReq{
		Identity: subscriber.Identity{Type: subscriber.MSISDN, Value: "1"},
	})
	if resp.(FindResp).Found {
		t.Fatal("find should only consult master replicas")
	}
}

func TestStatus(t *testing.T) {
	n := simnet.New(simnet.FastConfig())
	el := newElement(t, n, "se-1", "eu")
	el.AddReplica("p1", store.Master)
	el.AddReplica("p2", store.Slave)
	resp, err := call(t, n, el.Addr(), StatusReq{})
	if err != nil {
		t.Fatal(err)
	}
	st := resp.(StatusResp)
	if st.ID != "se-1" || len(st.Replicas) != 2 {
		t.Fatalf("status = %+v", st)
	}
	if st.Replicas[0].Partition != "p1" || st.Replicas[0].Role != store.Master {
		t.Fatalf("replica status = %+v", st.Replicas[0])
	}
}

func TestCrashRecoverWithWAL(t *testing.T) {
	n := simnet.New(simnet.FastConfig())
	dir := t.TempDir()
	el := New(n, Config{
		ID: "se-1", Site: "eu",
		WALDir: dir, WALMode: wal.SyncEveryCommit,
	})
	t.Cleanup(el.Stop)
	if _, err := el.AddReplica("p1", store.Master); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 5; i++ {
		if _, err := call(t, n, el.Addr(), TxnReq{Partition: "p1", Ops: []TxnOp{
			{Kind: TxnPut, Key: fmt.Sprintf("k%d", i), Entry: store.Entry{"v": {fmt.Sprint(i)}}},
		}}); err != nil {
			t.Fatal(err)
		}
	}

	el.Crash()
	if !el.Down() {
		t.Fatal("not down")
	}
	if _, err := call(t, n, el.Addr(), TxnReq{Partition: "p1"}); !errors.Is(err, simnet.ErrUnreachable) {
		t.Fatalf("crashed element reachable: %v", err)
	}

	replayed, err := el.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if replayed["p1"] != 5 {
		t.Fatalf("replayed = %v", replayed)
	}
	resp, err := call(t, n, el.Addr(), TxnReq{Partition: "p1", Ops: []TxnOp{{Kind: TxnGet, Key: "k3"}}})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.(TxnResp).Results[0].Found {
		t.Fatal("data lost across recovery")
	}
}

func TestCrashWithoutWALLosesData(t *testing.T) {
	// RAM-only element: crash loses everything (the §3.1 hazard the
	// WAL exists to mitigate).
	n := simnet.New(simnet.FastConfig())
	el := newElement(t, n, "se-1", "eu")
	el.AddReplica("p1", store.Master)
	call(t, n, el.Addr(), TxnReq{Partition: "p1", Ops: []TxnOp{
		{Kind: TxnPut, Key: "k", Entry: store.Entry{"v": {"1"}}},
	}})
	el.Crash()
	if _, err := el.Recover(); err != nil {
		t.Fatal(err)
	}
	resp, err := call(t, n, el.Addr(), TxnReq{Partition: "p1", Ops: []TxnOp{{Kind: TxnGet, Key: "k"}}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.(TxnResp).Results[0].Found {
		t.Fatal("RAM data survived a crash without WAL")
	}
}

func TestRecoverNotCrashed(t *testing.T) {
	n := simnet.New(simnet.FastConfig())
	el := newElement(t, n, "se-1", "eu")
	if _, err := el.Recover(); err == nil {
		t.Fatal("recover on a live element should fail")
	}
}

func TestCapacityEnforced(t *testing.T) {
	n := simnet.New(simnet.FastConfig())
	el := New(n, Config{ID: "se-1", Site: "eu", CapacityPerPartition: 2})
	t.Cleanup(el.Stop)
	el.AddReplica("p1", store.Master)
	for i := 0; i < 2; i++ {
		if _, err := call(t, n, el.Addr(), TxnReq{Partition: "p1", Ops: []TxnOp{
			{Kind: TxnPut, Key: fmt.Sprintf("k%d", i), Entry: store.Entry{"v": {"1"}}},
		}}); err != nil {
			t.Fatal(err)
		}
	}
	_, err := call(t, n, el.Addr(), TxnReq{Partition: "p1", Ops: []TxnOp{
		{Kind: TxnPut, Key: "k2", Entry: store.Entry{"v": {"1"}}},
	}})
	if !errors.Is(err, store.ErrStoreFull) {
		t.Fatalf("err = %v", err)
	}
}

func TestPartitionsSorted(t *testing.T) {
	n := simnet.New(simnet.FastConfig())
	el := newElement(t, n, "se-1", "eu")
	el.AddReplica("p-z", store.Master)
	el.AddReplica("p-a", store.Slave)
	ps := el.Partitions()
	if len(ps) != 2 || ps[0] != "p-a" {
		t.Fatalf("partitions = %v", ps)
	}
}

func TestPeriodicSnapshotCompactsWAL(t *testing.T) {
	n := simnet.New(simnet.FastConfig())
	dir := t.TempDir()
	el := New(n, Config{
		ID: "se-1", Site: "eu",
		WALDir: dir, WALMode: wal.SyncEveryCommit,
		CheckpointInterval: 10 * time.Millisecond,
	})
	t.Cleanup(el.Stop)
	if _, err := el.AddReplica("p1", store.Master); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := call(t, n, el.Addr(), TxnReq{Partition: "p1", Ops: []TxnOp{
			{Kind: TxnPut, Key: fmt.Sprintf("k%d", i), Entry: store.Entry{"v": {fmt.Sprint(i)}}},
		}}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for el.Checkpoints.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("snapshotter never ran")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Crash and recover: the data must come back from the snapshot
	// (+ any tail), not be lost.
	el.Crash()
	if _, err := el.Recover(); err != nil {
		t.Fatal(err)
	}
	resp, err := call(t, n, el.Addr(), TxnReq{Partition: "p1", Ops: []TxnOp{{Kind: TxnGet, Key: "k15"}}})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.(TxnResp).Results[0].Found {
		t.Fatal("data lost after snapshot + recover")
	}
}

func TestCheckpointAllManual(t *testing.T) {
	n := simnet.New(simnet.FastConfig())
	el := New(n, Config{
		ID: "se-1", Site: "eu",
		WALDir: t.TempDir(), WALMode: wal.Periodic,
	})
	t.Cleanup(el.Stop)
	el.AddReplica("p1", store.Master)
	el.AddReplica("p2", store.Slave)
	if got := el.CheckpointAll(); got != 2 {
		t.Fatalf("snapshotted %d replicas, want 2", got)
	}
}

// TestTxnObserver pins the server-side op-history hook: the observer
// runs synchronously inside the request handler, sees the client's
// tag, and — crucially for the consistency checker — still receives
// the assigned CSN when a commit applied but its durability wait
// failed (the transaction took effect despite the client-visible
// error).
func TestTxnObserver(t *testing.T) {
	n := simnet.New(simnet.FastConfig())
	el := newElement(t, n, "se-1", "eu")
	pr, err := el.AddReplica("p1", store.Master)
	if err != nil {
		t.Fatal(err)
	}

	type seen struct {
		tag string
		csn uint64
		err error
	}
	var events []seen
	el.SetTxnObserver(func(_ simnet.Addr, req TxnReq, resp TxnResp, err error) {
		events = append(events, seen{req.Tag, resp.CSN, err})
	})

	if _, err := call(t, n, el.Addr(), TxnReq{
		Partition: "p1",
		Tag:       "op-1",
		Ops:       []TxnOp{{Kind: TxnPut, Key: "sub-1", Entry: store.Entry{"v": {"1"}}}},
	}); err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].tag != "op-1" || events[0].csn != 1 || events[0].err != nil {
		t.Fatalf("observer events = %+v", events)
	}

	// Durability-wait failure: commit applies, client gets an error,
	// the observer must still see the CSN (attribution for lost acks).
	pipeErr := errors.New("durability wait failed")
	pr.Store.SetCommitPipeline(func(rec *store.CommitRecord) (func() error, error) {
		return func() error { return pipeErr }, nil
	})
	if _, err := call(t, n, el.Addr(), TxnReq{
		Partition: "p1",
		Tag:       "op-2",
		Ops:       []TxnOp{{Kind: TxnPut, Key: "sub-2", Entry: store.Entry{"v": {"2"}}}},
	}); err == nil {
		t.Fatal("durability failure not surfaced to the client")
	}
	if len(events) != 2 || events[1].tag != "op-2" || events[1].csn != 2 || events[1].err == nil {
		t.Fatalf("observer events = %+v", events)
	}
	if _, _, ok := pr.Store.GetCommitted("sub-2"); !ok {
		t.Fatal("commit with failed durability wait should still be applied")
	}
}
