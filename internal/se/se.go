// Package se implements the storage element (SE), the unit of storage
// in the UDR architecture (§2.3, §3.4.1): a shared-nothing group of
// two to four blades holding one primary partition copy plus one or
// two secondary copies of other partitions, all in RAM, with periodic
// disk saves and replication endpoints.
//
// One Element owns several partition replicas (store.Store instances),
// a WAL per replica, and a replication.Node. It serves three kinds of
// traffic at a single simnet address:
//
//   - client transactions (TxnReq) from LDAP servers / front-ends,
//   - replication messages from peer elements,
//   - identity-search fan-out (FindReq) from cached location stages.
package se

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/antientropy"
	"repro/internal/metrics"
	"repro/internal/rebalance"
	"repro/internal/replication"
	"repro/internal/simnet"
	"repro/internal/store"
	"repro/internal/subscriber"
	"repro/internal/trace"
	"repro/internal/wal"
)

// Errors returned to clients.
var (
	ErrUnknownPartition = errors.New("se: partition not hosted here")
	ErrBadRequest       = errors.New("se: malformed request")
	// ErrStalePlacement is the retryable referral a request carrying
	// an out-of-date placement epoch gets: the partition's master
	// moved (migration cutover, failover) since the caller read its
	// placement. The caller must refresh the partition table and
	// retry instead of treating the response as authoritative — a
	// write accepted under a stale epoch could land on a demoted
	// master and be lost.
	ErrStalePlacement = errors.New("se: stale placement epoch, refresh and retry")
)

// TxnOpKind enumerates the operations a one-shot transaction may
// carry.
type TxnOpKind int

// Transaction operation kinds.
const (
	TxnGet TxnOpKind = iota
	TxnPut
	TxnModify
	TxnDelete
	TxnCompare
)

// TxnOp is one operation inside a TxnReq.
type TxnOp struct {
	Kind  TxnOpKind
	Key   string
	Entry store.Entry // for TxnPut
	Mods  []store.Mod // for TxnModify
	Attr  string      // for TxnCompare
	Value string      // for TxnCompare
}

// TxnReq executes a one-shot transaction against one partition
// replica on this element. All writes apply atomically at commit;
// reads see READ_COMMITTED state (§3.2). Transactions spanning
// multiple elements are the client's problem — exactly as in the
// paper, no cross-SE guarantees exist.
type TxnReq struct {
	Partition string
	Iso       store.Isolation
	Ops       []TxnOp
	// Tag is an opaque client-supplied operation label, carried
	// through the PoA unchanged and handed to the element's
	// TxnObserver. The consistency checker uses it to attribute
	// server-side commit windows to client operations whose response
	// was lost in a partition.
	Tag string
	// Epoch is the placement epoch the caller routed under (0 skips
	// the check). A mismatch against the replica's current epoch gets
	// the ErrStalePlacement referral: the partition's master moved
	// since the caller read its placement.
	Epoch uint64
	// ReturnPostImage asks the element to copy each write op's
	// committed post-image (and its commit CSN) into the matching
	// OpResult slot. The PoA sets it when a front-end read cache wants
	// to write-through its own commits without a second round trip.
	ReturnPostImage bool
	// Trace is the caller's trace context: the element's se.txn span
	// and the whole durability chain below it (WAL stage/fsync,
	// replication send and ack wait) nest under it.
	Trace trace.Ctx
}

// TraceCtx implements trace.Carrier.
func (r TxnReq) TraceCtx() trace.Ctx { return r.Trace }

// WithTraceCtx implements trace.Carrier: the network uses it to nest
// the receiving element's spans under the per-hop net.call span.
func (r TxnReq) WithTraceCtx(tc trace.Ctx) any { r.Trace = tc; return r }

// OpResult is the per-operation outcome inside a TxnResp.
type OpResult struct {
	Entry     store.Entry
	Meta      store.Meta
	Found     bool
	CompareOK bool
}

// TxnResp reports a transaction's results.
type TxnResp struct {
	Results []OpResult
	// CSN is the commit sequence number assigned (0 for read-only).
	CSN uint64
	// Role echoes the serving replica's role so clients can tell a
	// potentially stale slave read from a master read.
	Role store.Role
}

// FindReq asks the element to search its hosted master replicas for a
// subscription with the given identity: the expensive path behind
// cached-locator misses (§3.5).
type FindReq struct {
	Identity subscriber.Identity
}

// FindResp answers a FindReq.
type FindResp struct {
	Found        bool
	SubscriberID string
	Partition    string
}

// StatusReq asks for element status (OaM poll).
type StatusReq struct{}

// ReplicaStatus describes one hosted replica.
type ReplicaStatus struct {
	Partition  string
	Role       store.Role
	Rows       int
	CSN        uint64
	AppliedCSN uint64
}

// StatusResp answers a StatusReq.
type StatusResp struct {
	ID       string
	Site     string
	Blades   int
	Replicas []ReplicaStatus
}

// Config configures an Element.
type Config struct {
	// ID names the element (e.g. "se-eu-1").
	ID string
	// Site is the geographic site (blade cluster) hosting it.
	Site string
	// Blades is the number of blades forming the element (2–4,
	// §3.4.1); it only feeds capacity accounting.
	Blades int
	// CapacityPerPartition bounds rows per hosted master partition
	// (the scaled 2M-subscriber SE limit); 0 = unbounded.
	CapacityPerPartition int
	// WALDir, when non-empty, enables disk persistence under
	// WALDir/<partition>/.
	WALDir string
	// WALMode selects periodic or sync-every-commit durability.
	WALMode wal.Mode
	// WALInterval is the periodic flush interval (default 50ms).
	WALInterval time.Duration
	// WALNoGroupCommit disables fsync coalescing in sync-every-commit
	// mode: every commit pays its own fsync, serialized — the seed
	// behavior E18 compares against. Leave false for group commit.
	WALNoGroupCommit bool
	// CheckpointInterval, when non-zero, runs an incremental WAL
	// checkpoint on every replica on this cadence — the paper's §3.1
	// "saves data in RAM to local persistent storage on a periodic
	// basis". The image streams while commits flow; only the covered
	// log prefix is dropped.
	CheckpointInterval time.Duration
	// AntiEntropy enables Merkle-digest replica repair: every hosted
	// replica keeps a hash tree over its rows and serves the repair
	// protocol; master replicas additionally run repair rounds.
	AntiEntropy bool
	// RepairInterval is the periodic repair cadence for hosted master
	// replicas; 0 disables the periodic tick (rounds then run only on
	// RepairNow / heal triggers).
	RepairInterval time.Duration
	// RepairMaxRows caps row transfers per repair round per peer (the
	// backbone bandwidth cap); 0 = unlimited.
	RepairMaxRows int
	// LegacyFindScan forces identity FindReq resolution through the
	// legacy full-partition scan and disables identity-index
	// maintenance on hosted stores. The scan cost is the reason the
	// paper's provisioned location maps exist; E9 and E17 set this to
	// keep measuring it against the indexed path.
	LegacyFindScan bool
}

// TxnObserver observes every one-shot transaction the element serves.
// It runs synchronously inside the element's request handler — after
// the commit installed, before the response leaves the element — so an
// observer sees the authoritative outcome (including the CSN of
// commits whose response is later lost to a partition) without racing
// the system under test. resp carries the assigned CSN even when err
// is non-nil and the transaction still applied (a durability-wait
// failure); a zero CSN with a non-nil err means nothing was installed.
// Observers must be fast and must not call back into the element.
type TxnObserver func(from simnet.Addr, req TxnReq, resp TxnResp, err error)

// Element is one storage element.
type Element struct {
	cfg  Config
	net  *simnet.Network
	addr simnet.Addr
	node *replication.Node

	mu        sync.RWMutex
	replicas  map[string]*PartitionReplica
	repairers map[string]*antientropy.Repairer
	// epochs holds each hosted partition's placement epoch, pushed by
	// the topology owner at every master change; requests carrying an
	// older epoch get the ErrStalePlacement referral.
	epochs map[string]uint64
	txnObs TxnObserver
	// installObs fans out every hosted store's install observer (see
	// store.SetInstallObserver) tagged with the owning partition; the
	// UDR wires the site's FE read cache freshness tracking here.
	installObs func(partition string, rec *store.CommitRecord)
	down       bool

	// ae serves the anti-entropy repair protocol; sched paces master
	// repair rounds. Both are nil unless cfg.AntiEntropy.
	ae    *antientropy.Peer
	sched *antientropy.Scheduler

	// reb serves the partition-migration protocol (always on: any
	// element can become a migration source or target).
	reb *rebalance.Peer

	ckptStop chan struct{}
	ckptWG   sync.WaitGroup

	// Reads / Writes count client operations served.
	Reads  metrics.Counter
	Writes metrics.Counter
	// Checkpoints counts completed checkpoint passes.
	Checkpoints metrics.Counter

	// tracer is the optional span recorder (atomic: the commit path
	// reads it without locks).
	tracer atomic.Pointer[trace.Recorder]
}

// SetTracer installs the span recorder for this element's se.txn /
// se.commit / wal.* spans and its replication node's repl.* spans.
func (e *Element) SetTracer(tr *trace.Recorder) {
	e.tracer.Store(tr)
	e.node.SetTracer(tr)
}

// PartitionReplica bundles one partition copy's moving parts.
type PartitionReplica struct {
	Partition string
	Store     *store.Store
	Repl      *replication.Replica
	Log       *wal.Log
	// Tracker is the anti-entropy Merkle tracker (nil unless the
	// element runs with AntiEntropy).
	Tracker *antientropy.Tracker
}

// New creates an element and registers it on the network at
// "<site>/<id>".
func New(net *simnet.Network, cfg Config) *Element {
	if cfg.Blades == 0 {
		cfg.Blades = 2
	}
	if cfg.WALInterval == 0 {
		cfg.WALInterval = 50 * time.Millisecond
	}
	e := &Element{
		cfg:       cfg,
		net:       net,
		addr:      simnet.MakeAddr(cfg.Site, cfg.ID),
		replicas:  make(map[string]*PartitionReplica),
		repairers: make(map[string]*antientropy.Repairer),
		epochs:    make(map[string]uint64),
		reb:       rebalance.NewPeer(),
	}
	e.node = replication.NewNode(net, e.addr)
	if cfg.AntiEntropy {
		e.ae = antientropy.NewPeer()
		e.sched = antientropy.NewScheduler(cfg.RepairInterval, func(ctx context.Context) {
			e.RepairRound(ctx)
		})
		e.sched.Start()
	}
	net.Register(e.addr, e.handle)
	if cfg.WALDir != "" && cfg.CheckpointInterval > 0 {
		e.startCheckpointer()
	}
	return e
}

// startCheckpointer launches the periodic WAL-compaction pass.
func (e *Element) startCheckpointer() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.startCheckpointerLocked()
}

// startCheckpointerLocked is the e.mu-held variant (element recovery
// restarts the pass while already holding the lock). Keeping the
// WaitGroup Add under the same lock stopCheckpointer reads under gives
// Add/Wait the happens-before ordering the race detector demands.
func (e *Element) startCheckpointerLocked() {
	if e.ckptStop != nil {
		return
	}
	stop := make(chan struct{})
	e.ckptStop = stop

	e.ckptWG.Add(1)
	go func() {
		defer e.ckptWG.Done()
		t := time.NewTicker(e.cfg.CheckpointInterval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				e.CheckpointAll()
			}
		}
	}()
}

// stopCheckpointer halts the periodic pass (crash or shutdown).
func (e *Element) stopCheckpointer() {
	e.mu.Lock()
	stop := e.ckptStop
	e.ckptStop = nil
	e.mu.Unlock()
	if stop != nil {
		close(stop)
		e.ckptWG.Wait()
	}
}

// CheckpointAll runs an incremental checkpoint on every replica's
// WAL: a durable store image plus pruning of the covered log prefix.
// It returns the number of replicas checkpointed.
func (e *Element) CheckpointAll() int {
	e.mu.RLock()
	prs := make([]*PartitionReplica, 0, len(e.replicas))
	if !e.down {
		for _, pr := range e.replicas {
			if pr.Log != nil {
				prs = append(prs, pr)
			}
		}
	}
	e.mu.RUnlock()
	n := 0
	for _, pr := range prs {
		if err := pr.Log.Checkpoint(pr.Store); err == nil {
			n++
		}
	}
	if n > 0 {
		e.Checkpoints.Inc()
	}
	return n
}

// Addr returns the element's network address.
func (e *Element) Addr() simnet.Addr { return e.addr }

// ID returns the element ID.
func (e *Element) ID() string { return e.cfg.ID }

// Site returns the hosting site.
func (e *Element) Site() string { return e.cfg.Site }

// Node exposes the replication node (topology wiring).
func (e *Element) Node() *replication.Node { return e.node }

// AddReplica hosts a partition replica with the given role. The
// returned PartitionReplica carries the store and replication handle
// for topology wiring.
func (e *Element) AddReplica(partition string, role store.Role) (*PartitionReplica, error) {
	e.mu.RLock()
	_, dup := e.replicas[partition]
	e.mu.RUnlock()
	if dup {
		return nil, fmt.Errorf("se %s: already hosts a replica of %q", e.cfg.ID, partition)
	}
	st := store.New(e.cfg.ID + "/" + partition)
	st.SetRole(role)
	if !e.cfg.LegacyFindScan {
		st.SetIndexedAttrs(subscriber.IdentityAttrs...)
	}
	if role == store.Master && e.cfg.CapacityPerPartition > 0 {
		st.SetCapacity(e.cfg.CapacityPerPartition)
	}
	e.wireInstallObserver(partition, st)
	pr := &PartitionReplica{Partition: partition, Store: st}

	if e.cfg.WALDir != "" {
		l, err := wal.Open(e.cfg.WALDir+"/"+partition, e.cfg.WALMode)
		if err != nil {
			return nil, fmt.Errorf("se %s: %w", e.cfg.ID, err)
		}
		l.SetGroupCommit(!e.cfg.WALNoGroupCommit)
		l.StartPeriodic(e.cfg.WALInterval)
		pr.Log = l
	}

	pr.Repl = e.node.AddReplica(partition, st)
	if pr.Log != nil {
		st.SetCommitPipeline(e.commitPipeline(pr.Log, pr.Repl))
	}
	e.attachAntiEntropy(pr)
	e.reb.Register(partition, st)

	e.mu.Lock()
	e.replicas[partition] = pr
	e.mu.Unlock()
	return pr, nil
}

// SetInstallObserver installs fn to observe every commit record any
// hosted replica installs (local commit or replicated apply), tagged
// with the partition. Applies to replicas added or recovered later
// too. The record is shared and must not be mutated.
func (e *Element) SetInstallObserver(fn func(partition string, rec *store.CommitRecord)) {
	e.mu.Lock()
	e.installObs = fn
	e.mu.Unlock()
}

// wireInstallObserver connects one store's install hook to the
// element-level observer. The indirection survives observer swaps and
// Recover's store replacement.
func (e *Element) wireInstallObserver(partition string, st *store.Store) {
	st.SetInstallObserver(func(rec *store.CommitRecord) {
		e.mu.RLock()
		fn := e.installObs
		e.mu.RUnlock()
		if fn != nil {
			fn(partition, rec)
		}
	})
}

// SetPartitionEpoch installs a hosted partition's placement epoch
// (pushed by the topology owner at master changes).
func (e *Element) SetPartitionEpoch(partition string, epoch uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.epochs[partition] = epoch
}

// PartitionEpoch returns the hosted partition's placement epoch (0 if
// never set).
func (e *Element) PartitionEpoch(partition string) uint64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.epochs[partition]
}

// DropReplica retires a hosted replica: senders stop, the WAL closes
// and its on-disk state is removed so a later re-hosting of the
// partition cannot replay a retired history. Used by migration abort
// rollback (target side) and released migrations (source side).
func (e *Element) DropReplica(partition string) error {
	e.mu.Lock()
	pr := e.replicas[partition]
	delete(e.replicas, partition)
	delete(e.repairers, partition)
	delete(e.epochs, partition)
	e.mu.Unlock()
	if pr == nil {
		return fmt.Errorf("%w: %q", ErrUnknownPartition, partition)
	}
	pr.Repl.SetPeers() // stop senders
	e.node.RemoveReplica(partition)
	e.reb.Unregister(partition)
	if pr.Log != nil {
		_ = pr.Log.Close()
		if e.cfg.WALDir != "" {
			_ = os.RemoveAll(e.cfg.WALDir + "/" + partition)
		}
	}
	return nil
}

// MigrationHandle implements rebalance.Host.
func (e *Element) MigrationHandle(partition string) (rebalance.Replica, bool) {
	pr := e.Replica(partition)
	if pr == nil {
		return rebalance.Replica{}, false
	}
	return rebalance.Replica{Store: pr.Store, Repl: pr.Repl}, true
}

// AddMigrationTarget implements rebalance.Host: host a fresh slave
// replica for an incoming migration. Stale on-disk WAL state for the
// partition (a previous hosting) is wiped first — replaying a retired
// history under bulk-copied rows would corrupt recovery.
func (e *Element) AddMigrationTarget(partition string) (rebalance.Replica, error) {
	if e.cfg.WALDir != "" {
		if err := os.RemoveAll(e.cfg.WALDir + "/" + partition); err != nil {
			return rebalance.Replica{}, fmt.Errorf("se %s: wipe stale wal: %w", e.cfg.ID, err)
		}
	}
	pr, err := e.AddReplica(partition, store.Slave)
	if err != nil {
		return rebalance.Replica{}, err
	}
	return rebalance.Replica{Store: pr.Store, Repl: pr.Repl}, nil
}

// PersistReplica implements rebalance.Host: snapshot the replica's
// store into its WAL so state that never went through the commit log
// (a migration's bulk-copied prefix) survives a crash. No-op without
// a WAL.
func (e *Element) PersistReplica(partition string) error {
	pr := e.Replica(partition)
	if pr == nil {
		return fmt.Errorf("%w: %q", ErrUnknownPartition, partition)
	}
	if pr.Log == nil {
		return nil
	}
	return pr.Log.Checkpoint(pr.Store)
}

var _ rebalance.Host = (*Element)(nil)

// commitPipeline chains WAL persistence in front of replication
// shipping as the store's two-phase commit hook. Both stage phases —
// WAL record staging and replication enqueue — run under the store's
// commit lock, so WAL order and per-peer ship order equal CSN order.
// The durability waits (the WAL group-commit fsync, then the
// synchronous-replication acks, when either applies) run after the
// lock is released: concurrent durable commits stage in order but
// share one cohort fsync instead of queueing N fsyncs behind the
// lock.
func (e *Element) commitPipeline(log *wal.Log, repl *replication.Replica) func(*store.CommitRecord) (func() error, error) {
	return func(rec *store.CommitRecord) (func() error, error) {
		// Sampled commits time the WAL stage and fsync phases; the
		// unsampled path pays one atomic load and a bool test.
		tr := e.tracer.Load()
		traced := tr != nil && rec.Trace.Sampled
		var stageStart time.Time
		if traced {
			stageStart = time.Now()
		}
		ticket, needSync, err := log.AppendStage(rec)
		if traced {
			tr.RecordSpan(rec.Trace, "wal.stage", string(e.addr),
				stageStart, time.Since(stageStart), err)
		}
		if err != nil {
			return nil, err
		}
		replWait, err := repl.CommitPipeline(rec)
		if err != nil {
			return nil, err
		}
		if !needSync && replWait == nil {
			return nil, nil
		}
		elem := string(e.addr)
		return func() error {
			if needSync {
				if traced {
					fsyncStart := time.Now()
					led, werr := log.WaitDurableEx(ticket)
					// Group commit attribution: did this commit lead the
					// fsync cohort or ride another goroutine's flush?
					role := "follower"
					if led {
						role = "leader"
					}
					tr.RecordSpan(rec.Trace, "wal.fsync", elem, fsyncStart,
						time.Since(fsyncStart), werr, trace.Attr{Key: "role", Value: role})
					if werr != nil {
						return werr
					}
				} else if err := log.WaitDurable(ticket); err != nil {
					return err
				}
			}
			if replWait != nil {
				return replWait()
			}
			return nil
		}, nil
	}
}

// attachAntiEntropy builds the Merkle tracker and repairer of one
// replica and registers it with the protocol server.
func (e *Element) attachAntiEntropy(pr *PartitionReplica) {
	if e.ae == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.attachAntiEntropyLocked(pr)
}

// attachAntiEntropyLocked is the e.mu-held variant (element recovery
// rebinds trackers while already holding the lock). Registration
// replaces any previous tracker/repairer for the partition.
func (e *Element) attachAntiEntropyLocked(pr *PartitionReplica) {
	pr.Tracker = antientropy.NewTracker(pr.Store)
	e.ae.Register(pr.Partition, pr.Tracker, pr.Repl)
	rep := antientropy.NewRepairer(e.net, e.addr, pr.Partition, pr.Tracker, pr.Repl)
	rep.MaxRowsPerRound = e.cfg.RepairMaxRows
	e.repairers[pr.Partition] = rep
}

// Repairer returns the anti-entropy repairer for a hosted partition,
// or nil when the element runs without anti-entropy.
func (e *Element) Repairer(partition string) *antientropy.Repairer {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.repairers[partition]
}

// AntiEntropyPeer returns the element's repair-protocol server (its
// slave-side row-repair counters feed the metrics registry), or nil
// when the element runs without anti-entropy.
func (e *Element) AntiEntropyPeer() *antientropy.Peer { return e.ae }

// RebalancePeer returns the element's migration-protocol server (its
// rows-received/batch counters feed the metrics registry).
func (e *Element) RebalancePeer() *rebalance.Peer { return e.reb }

// RepairNow kicks an immediate repair round (heal triggers, OaM).
// It is a no-op without anti-entropy.
func (e *Element) RepairNow() {
	if e.sched != nil {
		e.sched.Kick()
	}
}

// RepairRound repairs every hosted (multi-)master replica against its
// replication peers and returns the per-peer stats. Slave replicas
// are skipped: their masters repair them.
func (e *Element) RepairRound(ctx context.Context) []antientropy.Stats {
	e.mu.RLock()
	if e.down {
		e.mu.RUnlock()
		return nil
	}
	reps := make([]*antientropy.Repairer, 0, len(e.repairers))
	for _, p := range e.partitionsLocked() {
		if r := e.repairers[p]; r != nil {
			reps = append(reps, r)
		}
	}
	e.mu.RUnlock()
	var out []antientropy.Stats
	for _, r := range reps {
		st := r.Replica().Store()
		if st.Role() != store.Master && !st.MultiMaster() {
			continue
		}
		for _, peer := range r.Replica().Peers() {
			stats, err := r.RepairPeer(ctx, peer)
			if err != nil {
				continue // unreachable peer: next round retries
			}
			out = append(out, stats)
		}
	}
	return out
}

// RepairPartition repairs one hosted partition against its peers.
func (e *Element) RepairPartition(ctx context.Context, partition string) ([]antientropy.Stats, error) {
	r := e.Repairer(partition)
	if r == nil {
		return nil, fmt.Errorf("se %s: no anti-entropy repairer for %q", e.cfg.ID, partition)
	}
	var out []antientropy.Stats
	var firstErr error
	for _, peer := range r.Replica().Peers() {
		stats, err := r.RepairPeer(ctx, peer)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		out = append(out, stats)
	}
	return out, firstErr
}

// SetTxnObserver installs (or, with nil, removes) the element's
// transaction observer. See TxnObserver for the calling contract.
func (e *Element) SetTxnObserver(fn TxnObserver) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.txnObs = fn
}

// Replica returns the hosted replica for a partition, or nil.
func (e *Element) Replica(partition string) *PartitionReplica {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.replicas[partition]
}

// Partitions lists hosted partitions, sorted.
func (e *Element) Partitions() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]string, 0, len(e.replicas))
	for p := range e.replicas {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Crash simulates a complete element failure (§3.1): the element
// disappears from the network and — because data lives in RAM — all
// store contents are dropped. WAL files survive on "disk" with only
// their synced contents.
func (e *Element) Crash() {
	e.stopCheckpointer()
	if e.sched != nil {
		e.sched.Stop()
	}
	e.net.SetDown(e.addr, true)
	e.node.Stop()
	e.mu.Lock()
	defer e.mu.Unlock()
	e.down = true
	for _, pr := range e.replicas {
		if pr.Log != nil {
			pr.Log.Close() // no final sync: unsynced tail is lost
		}
	}
}

// Recover restores a crashed element: stores are rebuilt from their
// WAL directories (snapshot + redo of the synced tail) and the
// element rejoins the network. Replication peers must be re-wired by
// the topology owner. It returns the number of replayed commit
// records per partition.
func (e *Element) Recover() (map[string]int, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.down {
		return nil, errors.New("se: not crashed")
	}
	replayed := make(map[string]int)
	for part, pr := range e.replicas {
		st := store.New(e.cfg.ID + "/" + part)
		st.SetRole(pr.Store.Role())
		st.SetMultiMaster(pr.Store.MultiMaster())
		if !e.cfg.LegacyFindScan {
			st.SetIndexedAttrs(subscriber.IdentityAttrs...)
		}
		if pr.Store.Role() == store.Master && e.cfg.CapacityPerPartition > 0 {
			st.SetCapacity(e.cfg.CapacityPerPartition)
		}
		e.wireInstallObserver(part, st)
		if e.cfg.WALDir != "" {
			dir := e.cfg.WALDir + "/" + part
			_, n, err := wal.Recover(dir, st)
			if err != nil {
				return nil, fmt.Errorf("se %s: recover %s: %w", e.cfg.ID, part, err)
			}
			replayed[part] = n
			l, err := wal.Open(dir, e.cfg.WALMode)
			if err != nil {
				return nil, err
			}
			l.SetGroupCommit(!e.cfg.WALNoGroupCommit)
			l.StartPeriodic(e.cfg.WALInterval)
			pr.Log = l
		}
		pr.Store = st
		pr.Repl = e.node.AddReplica(part, st)
		if pr.Log != nil {
			st.SetCommitPipeline(e.commitPipeline(pr.Log, pr.Repl))
		}
		if e.ae != nil {
			e.attachAntiEntropyLocked(pr)
		}
		e.reb.Register(part, st)
	}
	e.down = false
	e.net.SetDown(e.addr, false)
	if e.sched != nil {
		e.sched.Start()
	}
	if e.cfg.WALDir != "" && e.cfg.CheckpointInterval > 0 {
		e.startCheckpointerLocked()
	}
	return replayed, nil
}

// Down reports whether the element is crashed.
func (e *Element) Down() bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.down
}

// Stop shuts the element down cleanly (final WAL sync).
func (e *Element) Stop() {
	e.stopCheckpointer()
	if e.sched != nil {
		e.sched.Stop()
	}
	e.node.Stop()
	e.net.Unregister(e.addr)
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, pr := range e.replicas {
		if pr.Log != nil {
			_ = pr.Log.Sync()
			_ = pr.Log.Close()
		}
	}
}

// handle is the element's simnet handler.
func (e *Element) handle(ctx context.Context, from simnet.Addr, msg any) (any, error) {
	// Replication traffic first, then the anti-entropy protocol.
	if resp, handled, err := e.node.HandleMessage(ctx, from, msg); handled {
		return resp, err
	}
	if e.ae != nil {
		if resp, handled, err := e.ae.HandleMessage(ctx, from, msg); handled {
			return resp, err
		}
	}
	if resp, handled, err := e.reb.HandleMessage(ctx, from, msg); handled {
		return resp, err
	}
	switch m := msg.(type) {
	case TxnReq:
		return e.applyTxn(from, m)
	case FindReq:
		return e.find(m), nil
	case StatusReq:
		return e.status(), nil
	default:
		return nil, fmt.Errorf("%w: %T", ErrBadRequest, msg)
	}
}

// applyTxn wraps the transaction in an se.txn span when the request
// carries a trace context and a recorder is installed.
func (e *Element) applyTxn(from simnet.Addr, req TxnReq) (TxnResp, error) {
	tr := e.tracer.Load()
	if tr == nil || !req.Trace.Valid() {
		return e.applyTxnInner(from, req)
	}
	span := tr.StartChild(req.Trace, "se.txn", string(e.addr))
	req.Trace = span.Ctx()
	resp, err := e.applyTxnInner(from, req)
	// Sampled only: formatting the attr would otherwise be a per-op
	// allocation on the unsampled fast path.
	if resp.CSN != 0 && req.Trace.Sampled {
		span.SetAttr("csn", fmt.Sprint(resp.CSN))
	}
	span.End(err)
	return resp, err
}

// applyTxnInner runs a one-shot transaction.
func (e *Element) applyTxnInner(from simnet.Addr, req TxnReq) (TxnResp, error) {
	e.mu.RLock()
	pr := e.replicas[req.Partition]
	epoch := e.epochs[req.Partition]
	obs := e.txnObs
	e.mu.RUnlock()
	if pr == nil {
		return TxnResp{}, fmt.Errorf("%w: %q", ErrUnknownPartition, req.Partition)
	}
	if req.Epoch != 0 && epoch != 0 && req.Epoch != epoch {
		// The caller routed under an epoch that is no longer this
		// replica's: the master moved (cutover, failover) after the
		// caller read its placement. Refuse before executing anything —
		// accepting a stale-epoch write here could land it on a demoted
		// master — with the retryable referral.
		return TxnResp{}, fmt.Errorf("%w: partition %s at epoch %d, request epoch %d",
			ErrStalePlacement, req.Partition, epoch, req.Epoch)
	}

	txn := pr.Store.Begin(req.Iso)
	resp := TxnResp{Role: pr.Store.Role()}
	wrote := false
	for _, op := range req.Ops {
		var res OpResult
		switch op.Kind {
		case TxnGet:
			entry, found := txn.Get(op.Key)
			var m store.Meta
			if found {
				_, m, _ = pr.Store.GetCommitted(op.Key)
			}
			res = OpResult{Entry: entry, Meta: m, Found: found}
			e.Reads.Inc()
		case TxnCompare:
			entry, found := txn.Get(op.Key)
			res.Found = found
			if found {
				for _, v := range entry[op.Attr] {
					if v == op.Value {
						res.CompareOK = true
						break
					}
				}
			}
			e.Reads.Inc()
		case TxnPut:
			txn.Put(op.Key, op.Entry)
			wrote = true
		case TxnModify:
			txn.Modify(op.Key, op.Mods...)
			wrote = true
		case TxnDelete:
			txn.Delete(op.Key)
			wrote = true
		default:
			txn.Abort()
			return TxnResp{}, fmt.Errorf("%w: op kind %d", ErrBadRequest, op.Kind)
		}
		resp.Results = append(resp.Results, res)
	}

	var rec *store.CommitRecord
	var err error
	if wrote {
		// se.commit covers install, WAL stage/fsync and the
		// synchronous-replication wait; those phases record their own
		// child spans under it via the record's trace context.
		commitSpan := e.tracer.Load().StartChild(req.Trace, "se.commit", string(e.addr))
		txn.SetTrace(commitSpan.Ctx())
		rec, err = txn.Commit()
		commitSpan.End(err)
	} else {
		rec, err = txn.Commit()
	}
	if rec != nil {
		// Set even on error: a durability-wait failure (WAL fsync,
		// synchronous replication) still installed the transaction,
		// and the observer needs the authoritative CSN.
		resp.CSN = rec.CSN
	}
	if err == nil && rec != nil && req.ReturnPostImage {
		fillPostImages(&resp, req.Ops, rec)
	}
	if obs != nil {
		obs(from, req, resp, err)
	}
	if err != nil {
		return TxnResp{}, err
	}
	if wrote {
		e.Writes.Inc()
	}
	return resp, nil
}

// fillPostImages copies each committed write's post-image into the
// matching OpResult slot. rec.Ops holds the installed writes in
// request order (reads stage nothing), so one cursor pairs them. The
// entries are the store's shared immutable post-images — safe to ship
// and cache, never to mutate.
func fillPostImages(resp *TxnResp, ops []TxnOp, rec *store.CommitRecord) {
	ri := 0
	for i, op := range ops {
		switch op.Kind {
		case TxnPut, TxnModify, TxnDelete:
			if ri >= len(rec.Ops) || i >= len(resp.Results) {
				return
			}
			rop := rec.Ops[ri]
			ri++
			resp.Results[i].Entry = rop.Entry
			resp.Results[i].Found = rop.Kind != store.OpDelete
			resp.Results[i].Meta = store.Meta{
				CSN:       rec.CSN,
				WallTS:    rec.WallTS,
				Tombstone: rop.Kind == store.OpDelete,
			}
		}
	}
}

// find resolves an identity against hosted master replicas: the
// expensive path behind cached-locator misses (§3.5). Each replica
// answers from its secondary identity index in O(log n) per element;
// with LegacyFindScan the original full scan runs instead — its cost
// is the reason the paper's provisioned location maps exist, and E9
// and E17 measure it.
func (e *Element) find(req FindReq) FindResp {
	idType := req.Identity.Type
	value := req.Identity.Value
	var attr string
	switch idType {
	case subscriber.IMSI:
		attr = subscriber.AttrIMSI
	case subscriber.MSISDN:
		attr = subscriber.AttrMSISDN
	case subscriber.IMPI:
		attr = subscriber.AttrIMPI
	case subscriber.IMPU:
		attr = subscriber.AttrIMPU
	default:
		return FindResp{}
	}

	e.mu.RLock()
	prs := make([]*PartitionReplica, 0, len(e.replicas))
	for _, pr := range e.replicas {
		if pr.Store.Role() == store.Master {
			prs = append(prs, pr)
		}
	}
	e.mu.RUnlock()

	var out FindResp
	for _, pr := range prs {
		if !e.cfg.LegacyFindScan && pr.Store.IndexesAttr(attr) {
			// Indexed path: a miss is authoritative — no live row in
			// this partition carries the value.
			if key, ok := pr.Store.LookupByAttr(attr, value); ok {
				return FindResp{Found: true, SubscriberID: key, Partition: pr.Partition}
			}
			continue
		}
		pr.Store.ForEach(func(key string, entry store.Entry, _ store.Meta) bool {
			for _, v := range entry[attr] {
				if v == value {
					out = FindResp{Found: true, SubscriberID: key, Partition: pr.Partition}
					return false
				}
			}
			return true
		})
		if out.Found {
			break
		}
	}
	return out
}

func (e *Element) status() StatusResp {
	e.mu.RLock()
	defer e.mu.RUnlock()
	resp := StatusResp{ID: e.cfg.ID, Site: e.cfg.Site, Blades: e.cfg.Blades}
	for _, p := range e.partitionsLocked() {
		pr := e.replicas[p]
		resp.Replicas = append(resp.Replicas, ReplicaStatus{
			Partition:  p,
			Role:       pr.Store.Role(),
			Rows:       pr.Store.Len(),
			CSN:        pr.Store.CSN(),
			AppliedCSN: pr.Store.AppliedCSN(),
		})
	}
	return resp
}

func (e *Element) partitionsLocked() []string {
	out := make([]string, 0, len(e.replicas))
	for p := range e.replicas {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}
