package locator

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/simnet"
	"repro/internal/subscriber"
)

func id(t subscriber.IdentityType, v string) subscriber.Identity {
	return subscriber.Identity{Type: t, Value: v}
}

func TestStageLookup(t *testing.T) {
	s := NewStage("eu", Provisioned, true)
	ids := []subscriber.Identity{
		id(subscriber.IMSI, "21401000000001"),
		id(subscriber.MSISDN, "34600000001"),
	}
	s.PutProfile(ids, Placement{SubscriberID: "sub-1", Partition: "p-eu-0"})

	for _, i := range ids {
		p, err := s.Lookup(context.Background(), i)
		if err != nil {
			t.Fatal(err)
		}
		if p.SubscriberID != "sub-1" || p.Partition != "p-eu-0" {
			t.Fatalf("placement = %+v", p)
		}
	}
	if s.Len() != 2 {
		t.Fatalf("len = %d", s.Len())
	}
	if s.Hits.Value() != 2 {
		t.Fatalf("hits = %d", s.Hits.Value())
	}
}

func TestStageMissProvisioned(t *testing.T) {
	s := NewStage("eu", Provisioned, true)
	_, err := s.Lookup(context.Background(), id(subscriber.IMSI, "nope"))
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	if s.Misses.Value() != 1 {
		t.Fatalf("misses = %d", s.Misses.Value())
	}
}

func TestStageRemove(t *testing.T) {
	s := NewStage("eu", Provisioned, true)
	ids := []subscriber.Identity{id(subscriber.IMSI, "1")}
	s.PutProfile(ids, Placement{SubscriberID: "sub-1", Partition: "p"})
	s.RemoveProfile(ids)
	if _, err := s.Lookup(context.Background(), ids[0]); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestStageNotReady(t *testing.T) {
	s := NewStage("new-site", Provisioned, false)
	if s.Ready() {
		t.Fatal("unsynced provisioned stage should not be ready")
	}
	_, err := s.Lookup(context.Background(), id(subscriber.IMSI, "1"))
	if !errors.Is(err, ErrNotReady) {
		t.Fatalf("err = %v", err)
	}
}

func TestCachedStageStartsReady(t *testing.T) {
	s := NewStage("new-site", Cached, false)
	if !s.Ready() {
		t.Fatal("cached stage should start ready (no sync needed, §3.5)")
	}
}

func TestCachedMissResolvesAndCaches(t *testing.T) {
	s := NewStage("eu", Cached, false)
	calls := 0
	s.SetMissResolver(func(ctx context.Context, i subscriber.Identity) (Placement, int, error) {
		calls++
		return Placement{SubscriberID: "sub-1", Partition: "p-x"}, 7, nil
	})
	p, err := s.Lookup(context.Background(), id(subscriber.MSISDN, "34600000001"))
	if err != nil || p.Partition != "p-x" {
		t.Fatalf("lookup: %v %v", p, err)
	}
	if s.FanOutQueries.Value() != 7 {
		t.Fatalf("fan-out = %d", s.FanOutQueries.Value())
	}
	// Second lookup must hit the cache.
	if _, err := s.Lookup(context.Background(), id(subscriber.MSISDN, "34600000001")); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("resolver called %d times", calls)
	}
	if s.Hits.Value() != 1 || s.Misses.Value() != 1 {
		t.Fatalf("hits=%d misses=%d", s.Hits.Value(), s.Misses.Value())
	}
}

func TestCachedMissResolverError(t *testing.T) {
	s := NewStage("eu", Cached, false)
	boom := errors.New("boom")
	s.SetMissResolver(func(ctx context.Context, i subscriber.Identity) (Placement, int, error) {
		return Placement{}, 3, boom
	})
	if _, err := s.Lookup(context.Background(), id(subscriber.IMSI, "x")); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestSyncFromPeer(t *testing.T) {
	net := simnet.New(simnet.FastConfig())
	peer := NewStage("eu", Provisioned, true)
	for i := 0; i < 100; i++ {
		peer.PutProfile(
			[]subscriber.Identity{id(subscriber.IMSI, fmt.Sprintf("imsi-%03d", i))},
			Placement{SubscriberID: fmt.Sprintf("sub-%03d", i), Partition: "p-eu-0"})
	}
	peerAddr := simnet.MakeAddr("eu", "locator")
	net.Register(peerAddr, func(ctx context.Context, from simnet.Addr, msg any) (any, error) {
		resp, handled, err := peer.HandleMessage(ctx, from, msg)
		if !handled {
			return nil, errors.New("unhandled")
		}
		return resp, err
	})

	fresh := NewStage("us", Provisioned, false)
	n, err := fresh.SyncFrom(context.Background(), net, simnet.MakeAddr("us", "locator"), peerAddr)
	if err != nil {
		t.Fatal(err)
	}
	if n != 100 || fresh.Len() != 100 {
		t.Fatalf("synced %d, len %d", n, fresh.Len())
	}
	if !fresh.Ready() {
		t.Fatal("stage not ready after sync")
	}
	p, err := fresh.Lookup(context.Background(), id(subscriber.IMSI, "imsi-042"))
	if err != nil || p.SubscriberID != "sub-042" {
		t.Fatalf("post-sync lookup: %v %v", p, err)
	}
}

func TestSyncFromUnreachablePeer(t *testing.T) {
	net := simnet.New(simnet.FastConfig())
	net.AddSite("us")
	fresh := NewStage("us", Provisioned, false)
	_, err := fresh.SyncFrom(context.Background(), net,
		simnet.MakeAddr("us", "locator"), simnet.MakeAddr("eu", "locator"))
	if err == nil {
		t.Fatal("sync from missing peer should fail")
	}
	if fresh.Ready() {
		t.Fatal("stage must stay not-ready after failed sync")
	}
}

func TestStageHeightGrowsLogarithmically(t *testing.T) {
	s := NewStage("eu", Provisioned, true)
	heights := map[int]int{}
	for _, n := range []int{100, 10000} {
		s2 := NewStage("eu", Provisioned, true)
		for i := 0; i < n; i++ {
			s2.PutProfile(
				[]subscriber.Identity{id(subscriber.IMSI, fmt.Sprintf("i%08d", i))},
				Placement{SubscriberID: "s", Partition: "p"})
		}
		heights[n] = s2.Height()
	}
	if heights[10000] < heights[100] {
		t.Fatalf("height decreased with N: %v", heights)
	}
	_ = s
}

func TestHashLocatorO1AndNoSelectivePlacement(t *testing.T) {
	h := NewHashLocator([]string{"p-0", "p-1", "p-2"})
	if h.SupportsSelectivePlacement() {
		t.Fatal("hash locator must not support selective placement (§3.5)")
	}
	s := NewStage("eu", Provisioned, true)
	if !s.SupportsSelectivePlacement() {
		t.Fatal("stage must support selective placement")
	}

	imsi := id(subscriber.IMSI, "21401000000042")
	p, err := h.Lookup(context.Background(), imsi)
	if err != nil || p.Partition == "" {
		t.Fatalf("hash lookup: %v %v", p, err)
	}
	// Deterministic.
	p2, _ := h.Lookup(context.Background(), imsi)
	if p.Partition != p2.Partition {
		t.Fatal("hash placement not deterministic")
	}
}

func TestHashLocatorSplitsIdentitiesOfOneSubscriber(t *testing.T) {
	// The paper's §3.5 objection: each identity hashes independently,
	// so one subscription's identities usually land on different
	// partitions. Verify the phenomenon exists across a population.
	h := NewHashLocator([]string{"p-0", "p-1", "p-2", "p-3"})
	split := 0
	for i := 0; i < 100; i++ {
		imsi := id(subscriber.IMSI, fmt.Sprintf("21401%09d", i))
		msisdn := id(subscriber.MSISDN, fmt.Sprintf("346%08d", i))
		if h.PlacementFor(imsi) != h.PlacementFor(msisdn) {
			split++
		}
	}
	if split == 0 {
		t.Fatal("expected identity splits under hashing")
	}
}

func TestHashLocatorSubIDFixup(t *testing.T) {
	h := NewHashLocator([]string{"p-0"})
	ids := []subscriber.Identity{id(subscriber.MSISDN, "34600000001")}
	h.PutProfile(ids, Placement{SubscriberID: "sub-1", Partition: "ignored"})
	p, err := h.Lookup(context.Background(), ids[0])
	if err != nil || p.SubscriberID != "sub-1" || p.Partition != "p-0" {
		t.Fatalf("lookup: %+v %v", p, err)
	}
	h.RemoveProfile(ids)
	p, _ = h.Lookup(context.Background(), ids[0])
	if p.SubscriberID != "" {
		t.Fatalf("fixup survived removal: %+v", p)
	}
}

func TestDumpSorted(t *testing.T) {
	s := NewStage("eu", Provisioned, true)
	s.PutProfile([]subscriber.Identity{id(subscriber.MSISDN, "2")}, Placement{SubscriberID: "b", Partition: "p"})
	s.PutProfile([]subscriber.Identity{id(subscriber.IMSI, "1")}, Placement{SubscriberID: "a", Partition: "p"})
	d := s.Dump()
	if len(d) != 2 || d[0].IdentityKey > d[1].IdentityKey {
		t.Fatalf("dump = %v", d)
	}
}

func TestModeString(t *testing.T) {
	if Provisioned.String() != "provisioned" || Cached.String() != "cached" {
		t.Fatal("mode strings")
	}
}

func TestStageInvalidatePartition(t *testing.T) {
	s := NewStage("eu", Cached, true)
	s.PutProfile([]subscriber.Identity{id(subscriber.IMSI, "1"), id(subscriber.MSISDN, "11")},
		Placement{SubscriberID: "a", Partition: "p-dead"})
	s.PutProfile([]subscriber.Identity{id(subscriber.IMSI, "2")},
		Placement{SubscriberID: "b", Partition: "p-live"})
	if n := s.InvalidatePartition("p-dead"); n != 2 {
		t.Fatalf("evicted %d, want 2", n)
	}
	if _, err := s.Lookup(context.Background(), id(subscriber.IMSI, "1")); err == nil {
		t.Fatal("stale placement survived invalidation")
	}
	if p, err := s.Lookup(context.Background(), id(subscriber.IMSI, "2")); err != nil || p.Partition != "p-live" {
		t.Fatalf("live placement evicted: %+v %v", p, err)
	}
	if n := s.InvalidatePartition("p-dead"); n != 0 {
		t.Fatalf("second invalidation evicted %d", n)
	}
}

func TestHashLocatorInvalidatePartitionIsNoop(t *testing.T) {
	h := NewHashLocator([]string{"p-0"})
	h.PutProfile([]subscriber.Identity{id(subscriber.MSISDN, "1")}, Placement{SubscriberID: "s", Partition: "p-0"})
	if n := h.InvalidatePartition("p-0"); n != 0 {
		t.Fatalf("hash locator evicted %d; the ring has no per-partition state", n)
	}
}
