// Package locator implements the UDR's data location stage (§3.3.1,
// §3.5): the component at every point of access that resolves a
// subscriber identity (IMSI, MSISDN, IMPU, …) to the partition — and
// hence storage element — holding the subscriber's data, locally,
// without long packet exchanges over the backbone.
//
// The paper's design uses state-full identity-location maps rather
// than hashing because the UDR must support multiple indexes (one per
// identity type) and selective placement of subscriber data. The maps
// are ordered indexes, so lookup cost grows as O(log N) with the
// subscriber count. Two management variants exist (§3.5):
//
//   - Provisioned: the provisioning flow writes the maps; a new stage
//     must copy every entry from a peer before serving (availability
//     dip on scale-out, §3.4.2).
//   - Cached: maps are built on the fly; no dip on scale-out, but a
//     cache miss must locate the subscriber by querying many or all
//     storage elements.
//
// The package also provides the consistent-hashing alternative the
// paper rejects, so experiment E8 can compare both.
package locator

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/btree"
	"repro/internal/chash"
	"repro/internal/metrics"
	"repro/internal/simnet"
	"repro/internal/subscriber"
	"repro/internal/trace"
)

// Placement records where a subscription lives.
type Placement struct {
	SubscriberID string
	Partition    string
}

// Errors returned by lookups.
var (
	// ErrNotFound reports an identity with no mapping.
	ErrNotFound = errors.New("locator: identity not found")
	// ErrNotReady reports a stage still synchronizing its maps
	// (§3.4.2: "operations issued on the PoA realized by the new
	// blade cluster cannot be handled" during sync).
	ErrNotReady = errors.New("locator: location stage not ready")
)

// Locator resolves identities to placements.
type Locator interface {
	// Lookup resolves one identity.
	Lookup(ctx context.Context, id subscriber.Identity) (Placement, error)
	// PutProfile indexes a subscription under all its identities.
	PutProfile(ids []subscriber.Identity, p Placement)
	// RemoveProfile removes all identity mappings of a subscription.
	RemoveProfile(ids []subscriber.Identity)
	// InvalidatePartition evicts every placement pointing at the
	// partition and returns how many were dropped. PoAs call it when
	// a resolved placement turns out stale (the partition was retired
	// or re-placed behind the locator's back) so the next lookup
	// re-resolves instead of replaying the stale mapping forever.
	InvalidatePartition(partition string) int
	// SupportsSelectivePlacement reports whether the locator can pin
	// a subscription to an arbitrary partition (§3.5's regulatory /
	// home-region requirement).
	SupportsSelectivePlacement() bool
}

// Mode selects how a Stage's maps are managed.
type Mode int

const (
	// Provisioned maps are written by the provisioning flow and
	// copied wholesale on scale-out.
	Provisioned Mode = iota
	// Cached maps fill on demand; misses fan out via the
	// MissResolver.
	Cached
)

// String returns the mode name.
func (m Mode) String() string {
	if m == Cached {
		return "cached"
	}
	return "provisioned"
}

// MissResolver locates a subscription the hard way — by asking
// storage elements — when a cached stage misses (§3.5: "every cache
// miss implies locating the subscriber data by querying multiple or
// even all the SE in the system"). It returns the placement and the
// number of SEs queried (E9 reports the fan-out cost).
type MissResolver func(ctx context.Context, id subscriber.Identity) (Placement, int, error)

// MapEntry is one identity mapping, the unit of stage-to-stage sync.
type MapEntry struct {
	IdentityKey string
	Placement   Placement
}

// SyncReq asks a peer stage for its full identity-location map.
type SyncReq struct{}

// SyncResp carries the map; Entries arrive sorted by identity key.
type SyncResp struct {
	Entries []MapEntry
}

// Stage is one data location stage instance: the state-full
// identity-location map of the paper. It is safe for concurrent use.
type Stage struct {
	site string
	mode Mode

	mu    sync.RWMutex
	byID  *btree.Map[Placement]
	ready bool

	missResolver MissResolver

	// Hits and Misses count lookups; FanOutQueries counts SE queries
	// performed by miss resolution in cached mode.
	Hits          metrics.Counter
	Misses        metrics.Counter
	FanOutQueries metrics.Counter

	// tracer is the optional span recorder behind locator.lookup spans.
	tracer atomic.Pointer[trace.Recorder]
}

// SetTracer installs the span recorder; Lookup then records a
// locator.lookup span for requests whose context carries a sampled
// trace.
func (s *Stage) SetTracer(tr *trace.Recorder) { s.tracer.Store(tr) }

// NewStage returns a stage for the given site. Provisioned stages
// start ready only if primed is true (the first stage of a network is
// primed empty; later stages must sync).
func NewStage(site string, mode Mode, primed bool) *Stage {
	return &Stage{
		site:  site,
		mode:  mode,
		byID:  btree.New[Placement](),
		ready: primed || mode == Cached,
	}
}

// Site returns the owning site.
func (s *Stage) Site() string { return s.site }

// Mode returns the map-management mode.
func (s *Stage) Mode() Mode { return s.mode }

// SetMissResolver installs the cached-mode miss path.
func (s *Stage) SetMissResolver(r MissResolver) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.missResolver = r
}

// Ready reports whether the stage can serve lookups.
func (s *Stage) Ready() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ready
}

// SetReady overrides readiness (tests and failover drills).
func (s *Stage) SetReady(ready bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ready = ready
}

// Len returns the number of identity mappings held.
func (s *Stage) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.byID.Len()
}

// Height exposes the underlying tree height, the O(log N) factor E8
// reports.
func (s *Stage) Height() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.byID.Height()
}

// Lookup implements Locator.
func (s *Stage) Lookup(ctx context.Context, id subscriber.Identity) (Placement, error) {
	if tr := s.tracer.Load(); tr != nil {
		if tc := trace.FromContext(ctx); tc.Sampled && tc.Valid() {
			span := tr.StartChild(tc, "locator.lookup", s.site+"/locator")
			span.SetAttr("mode", s.mode.String())
			p, hit, fanout, err := s.lookup(ctx, id)
			if hit {
				span.SetAttr("result", "hit")
			} else {
				span.SetAttr("result", "miss")
			}
			if fanout > 0 {
				span.SetAttr("fanout", fmt.Sprint(fanout))
			}
			span.End(err)
			return p, err
		}
	}
	p, _, _, err := s.lookup(ctx, id)
	return p, err
}

// lookup is the span-free body; hit and fanout feed the span attrs.
func (s *Stage) lookup(ctx context.Context, id subscriber.Identity) (p Placement, hit bool, fanout int, err error) {
	s.mu.RLock()
	if !s.ready {
		s.mu.RUnlock()
		return Placement{}, false, 0, ErrNotReady
	}
	p, ok := s.byID.Get(id.String())
	resolver := s.missResolver
	s.mu.RUnlock()

	if ok {
		s.Hits.Inc()
		return p, true, 0, nil
	}
	s.Misses.Inc()
	if s.mode == Cached && resolver != nil {
		p, queried, err := resolver(ctx, id)
		s.FanOutQueries.Add(int64(queried))
		if err != nil {
			return Placement{}, false, queried, err
		}
		s.mu.Lock()
		s.byID.Set(id.String(), p)
		s.mu.Unlock()
		return p, false, queried, nil
	}
	return Placement{}, false, 0, fmt.Errorf("%w: %s", ErrNotFound, id)
}

// PutProfile implements Locator.
func (s *Stage) PutProfile(ids []subscriber.Identity, p Placement) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, id := range ids {
		s.byID.Set(id.String(), p)
	}
}

// RemoveProfile implements Locator.
func (s *Stage) RemoveProfile(ids []subscriber.Identity) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, id := range ids {
		s.byID.Delete(id.String())
	}
}

// InvalidatePartition implements Locator: every identity mapped to
// the partition is evicted. Provisioned stages relearn evicted
// entries from the provisioning flow; cached stages re-resolve on the
// next miss.
func (s *Stage) InvalidatePartition(partition string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	var stale []string
	s.byID.Ascend(func(k string, p Placement) bool {
		if p.Partition == partition {
			stale = append(stale, k)
		}
		return true
	})
	for _, k := range stale {
		s.byID.Delete(k)
	}
	return len(stale)
}

// SupportsSelectivePlacement implements Locator: state-full maps can
// pin any subscription anywhere.
func (s *Stage) SupportsSelectivePlacement() bool { return true }

// Dump returns every mapping in identity-key order (sync serving).
func (s *Stage) Dump() []MapEntry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]MapEntry, 0, s.byID.Len())
	s.byID.Ascend(func(k string, p Placement) bool {
		out = append(out, MapEntry{IdentityKey: k, Placement: p})
		return true
	})
	return out
}

// Load bulk-installs mappings (sync receiving).
func (s *Stage) Load(entries []MapEntry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range entries {
		s.byID.Set(e.IdentityKey, e.Placement)
	}
}

// HandleMessage serves stage-to-stage sync requests over simnet.
func (s *Stage) HandleMessage(ctx context.Context, from simnet.Addr, msg any) (any, bool, error) {
	switch msg.(type) {
	case SyncReq:
		return SyncResp{Entries: s.Dump()}, true, nil
	default:
		return nil, false, nil
	}
}

// SyncFrom copies the full identity-location map from a peer stage
// over the network, then marks this stage ready. This is the §3.4.2
// scale-out procedure whose duration E9 measures; until it completes,
// Lookup fails with ErrNotReady.
func (s *Stage) SyncFrom(ctx context.Context, net *simnet.Network, self, peer simnet.Addr) (entries int, err error) {
	raw, err := net.Call(ctx, self, peer, SyncReq{})
	if err != nil {
		return 0, fmt.Errorf("locator: sync from %s: %w", peer, err)
	}
	resp, ok := raw.(SyncResp)
	if !ok {
		return 0, fmt.Errorf("locator: unexpected sync response %T", raw)
	}
	s.Load(resp.Entries)
	s.mu.Lock()
	s.ready = true
	s.mu.Unlock()
	return len(resp.Entries), nil
}

// HashLocator is the consistent-hashing alternative (§3.5). Each
// lookup hashes the identity directly onto a partition ring: O(1) in
// the subscriber count, no per-subscriber state — but the placement
// is dictated by the hash, so selective placement is impossible, and
// every identity of a subscription must be inserted as its own ring
// key ("multiple replicas being each replica indexed by a different
// identity"), which the paper deems impractical for the UDR's
// identity count.
type HashLocator struct {
	ring *chash.Ring

	mu sync.RWMutex
	// subID fixes up the subscriber ID for identities we have seen;
	// the partition always comes from the hash.
	subID map[string]string
}

// NewHashLocator builds a hash locator over the given partitions.
func NewHashLocator(partitions []string) *HashLocator {
	r := chash.New(128)
	for _, p := range partitions {
		r.Add(p)
	}
	return &HashLocator{ring: r, subID: make(map[string]string)}
}

// Lookup implements Locator in O(1) w.r.t. the subscriber count.
func (h *HashLocator) Lookup(ctx context.Context, id subscriber.Identity) (Placement, error) {
	part := h.ring.Locate(id.String())
	if part == "" {
		return Placement{}, ErrNotFound
	}
	h.mu.RLock()
	sub := h.subID[id.String()]
	h.mu.RUnlock()
	return Placement{SubscriberID: sub, Partition: part}, nil
}

// PutProfile implements Locator. Only the subscriber-ID fix-up is
// stored; the hash dictates the partition.
func (h *HashLocator) PutProfile(ids []subscriber.Identity, p Placement) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, id := range ids {
		h.subID[id.String()] = p.SubscriberID
	}
}

// RemoveProfile implements Locator.
func (h *HashLocator) RemoveProfile(ids []subscriber.Identity) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, id := range ids {
		delete(h.subID, id.String())
	}
}

// InvalidatePartition implements Locator. The hash dictates every
// placement, so there is no per-partition state to evict: re-placing
// a partition's data is exactly what the ring cannot express (§3.5's
// argument against hashing) and the method reports zero evictions.
func (h *HashLocator) InvalidatePartition(partition string) int { return 0 }

// SupportsSelectivePlacement implements Locator: a hash cannot honor
// a requested placement.
func (h *HashLocator) SupportsSelectivePlacement() bool { return false }

// PlacementFor reports where the hash would place an identity — used
// by E8 to demonstrate that co-placement of a subscription's multiple
// identities is not guaranteed.
func (h *HashLocator) PlacementFor(id subscriber.Identity) string {
	return h.ring.Locate(id.String())
}

var (
	_ Locator = (*Stage)(nil)
	_ Locator = (*HashLocator)(nil)
)
