package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/rebalance"
	"repro/internal/se"
	"repro/internal/store"
)

// MigrateOption tunes one migration (tests inject phase hooks).
type MigrateOption func(*rebalance.Migrator)

// WithMigrateHooks installs phase-boundary hooks on the move.
func WithMigrateHooks(h rebalance.Hooks) MigrateOption {
	return func(m *rebalance.Migrator) { m.Hooks = h }
}

// newMigrator builds a migrator with the UDR's tuning.
func (u *UDR) newMigrator() *rebalance.Migrator {
	return &rebalance.Migrator{
		Net:            u.net,
		BatchRows:      u.cfg.MigrateBatchRows,
		CatchUpTimeout: u.cfg.MigrateCatchUpTimeout,
		FreezeTimeout:  u.cfg.MigrateFreezeTimeout,
	}
}

// MigratePartition moves a partition's master replica onto the target
// storage element — same site or cross-site — while client traffic
// keeps flowing: bulk copy, stream catch-up, bounded write-freeze
// cutover with a placement-epoch bump, then source demotion (or
// retirement when release is true). The source stays authoritative
// until the cutover commits; any earlier failure rolls the target
// back and returns an error wrapping rebalance.ErrAborted. The report
// is non-nil whenever the move got past validation.
func (u *UDR) MigratePartition(ctx context.Context, partID, targetID string, release bool, opts ...MigrateOption) (*rebalance.Report, error) {
	u.mu.Lock()
	part, ok := u.parts[partID]
	if !ok {
		u.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrUnknownPartition, partID)
	}
	tgtEl := u.elements[targetID]
	if tgtEl == nil {
		u.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrUnknownElement, targetID)
	}
	srcEl := u.elements[part.Master().Element]
	if srcEl == nil {
		u.mu.Unlock()
		return nil, fmt.Errorf("core: master element of %q unavailable", partID)
	}
	if srcEl.ID() == targetID {
		u.mu.Unlock()
		return nil, fmt.Errorf("%w: partition %q is already mastered on %s",
			rebalance.ErrConflict, partID, targetID)
	}
	for _, ref := range part.Replicas {
		if ref.Element == targetID {
			u.mu.Unlock()
			return nil, fmt.Errorf("%w: %s on %s", rebalance.ErrConflict, partID, targetID)
		}
	}
	if _, inflight := u.migrating[partID]; inflight {
		u.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrMigrationInFlight, partID)
	}
	u.migrating[partID] = rebalance.PhaseCopy
	u.mu.Unlock()
	defer func() {
		u.mu.Lock()
		delete(u.migrating, partID)
		u.mu.Unlock()
	}()

	mig := u.newMigrator()
	for _, opt := range opts {
		opt(mig)
	}
	// Chain phase tracking in front of any caller-installed hooks so
	// the /status and metrics views see how far an in-flight move got.
	user := mig.Hooks
	mig.Hooks = rebalance.Hooks{
		AfterCopy: func() {
			u.setMigrationPhase(partID, rebalance.PhaseCatchUp)
			if user.AfterCopy != nil {
				user.AfterCopy()
			}
		},
		BeforeCutover: func() {
			u.setMigrationPhase(partID, rebalance.PhaseCutover)
			if user.BeforeCutover != nil {
				user.BeforeCutover()
			}
		},
	}
	mv := rebalance.Move{
		Partition:  partID,
		Source:     srcEl,
		Target:     tgtEl,
		Durability: u.cfg.Durability,
		Release:    release,
		Commit: func(frozenCSN uint64) error {
			return u.commitMigration(partID, srcEl, tgtEl, release)
		},
	}
	return mig.Run(ctx, mv)
}

// setMigrationPhase records how far an in-flight move progressed.
func (u *UDR) setMigrationPhase(partID string, ph rebalance.Phase) {
	u.mu.Lock()
	if _, ok := u.migrating[partID]; ok {
		u.migrating[partID] = ph
	}
	u.mu.Unlock()
}

// MigrationsInFlight snapshots the partitions with a move in flight
// and the phase each last reported — the OaM migration-progress view.
func (u *UDR) MigrationsInFlight() map[string]rebalance.Phase {
	u.mu.RLock()
	defer u.mu.RUnlock()
	out := make(map[string]rebalance.Phase, len(u.migrating))
	for p, ph := range u.migrating {
		out[p] = ph
	}
	return out
}

// commitMigration flips the partition table at the cutover point: the
// target becomes the master entry, the source demotes to a slave
// entry (or leaves the table when released), the home site follows
// the master, and the placement epoch advances on every hosting
// element — all atomically under the topology lock, so a PoA reads
// either the old placement (and gets referred by the demoted source)
// or the new one.
func (u *UDR) commitMigration(partID string, srcEl, tgtEl *se.Element, release bool) error {
	u.mu.Lock()
	defer u.mu.Unlock()
	part, ok := u.parts[partID]
	if !ok {
		return fmt.Errorf("%w: partition %q vanished mid-migration", rebalance.ErrSourceLost, partID)
	}
	srcID := part.Master().Element
	if srcID != srcEl.ID() {
		return fmt.Errorf("%w: partition %q master is %s, not %s",
			rebalance.ErrSourceLost, partID, srcID, srcEl.ID())
	}
	replicas := make([]ReplicaRef, 0, len(part.Replicas)+1)
	replicas = append(replicas, ReplicaRef{
		Element: tgtEl.ID(), Site: tgtEl.Site(), Addr: tgtEl.Addr(),
	})
	replicas = append(replicas, part.Replicas[1:]...)
	if !release {
		replicas = append(replicas, ReplicaRef{
			Element: srcEl.ID(), Site: srcEl.Site(), Addr: srcEl.Addr(),
		})
	}
	part.Replicas = replicas
	part.HomeSite = tgtEl.Site()
	part.Epoch++
	u.pushEpochLocked(part)
	if release {
		srcEl.SetPartitionEpoch(partID, 0) // no longer hosts the partition
	}
	return nil
}

// ElementLoads snapshots every element's load for the rebalancing
// planner: master partition row counts plus recent commit shipping
// rates from the replication sender metrics.
func (u *UDR) ElementLoads() []rebalance.ElementLoad {
	u.mu.RLock()
	els := make([]*se.Element, 0, len(u.elements))
	for _, el := range u.elements {
		els = append(els, el)
	}
	u.mu.RUnlock()
	sort.Slice(els, func(i, j int) bool { return els[i].ID() < els[j].ID() })

	out := make([]rebalance.ElementLoad, 0, len(els))
	for _, el := range els {
		if el.Down() {
			continue
		}
		load := rebalance.ElementLoad{
			Element: el.ID(),
			Site:    el.Site(),
			Hosted:  make(map[string]bool),
		}
		for _, partID := range el.Partitions() {
			pr := el.Replica(partID)
			if pr == nil {
				continue
			}
			load.Hosted[partID] = true
			if pr.Store.Role() != store.Master {
				continue
			}
			var rate int64
			for _, s := range pr.Repl.SenderStats() {
				rate += s.Records
			}
			load.Masters = append(load.Masters, rebalance.PartitionLoad{
				Partition:  partID,
				Rows:       pr.Store.Len(),
				CommitRate: rate,
			})
		}
		out = append(out, load)
	}
	return out
}

// RebalanceResult is one rebalancing pass: the computed plan and the
// per-move outcomes (parallel to Plan; a nil report marks a move that
// failed validation).
type RebalanceResult struct {
	Plan    []rebalance.MoveSpec
	Reports []*rebalance.Report
	// Failed counts moves that aborted or failed validation.
	Failed int
}

// String renders the pass for operator output.
func (r *RebalanceResult) String() string {
	var b strings.Builder
	b.WriteString(rebalance.PlanString(r.Plan))
	for i, rep := range r.Reports {
		if rep == nil {
			fmt.Fprintf(&b, "move %s: rejected\n", r.Plan[i].Partition)
			continue
		}
		b.WriteString(rep.String())
		b.WriteByte('\n')
	}
	if len(r.Plan) > 0 {
		fmt.Fprintf(&b, "rebalance total: %d moves planned, %d failed\n", len(r.Plan), r.Failed)
	}
	return b.String()
}

// Rebalance computes a move plan from the current per-element load
// and executes it with the configured concurrency cap. Sources demote
// to slaves (moves never shrink the replica set). Partial failure is
// reported, not fatal: an aborted move leaves its partition where it
// was, and the next pass replans from the actual state.
func (u *UDR) Rebalance(ctx context.Context) (*RebalanceResult, error) {
	plan := rebalance.Plan(u.ElementLoads(), rebalance.PlanOpts{
		MaxMoves: u.cfg.RebalanceMaxMoves,
	})
	res := &RebalanceResult{Plan: plan, Reports: make([]*rebalance.Report, len(plan))}
	if len(plan) == 0 {
		return res, nil
	}

	conc := u.cfg.RebalanceConcurrency
	if conc <= 0 {
		conc = 2
	}
	sem := make(chan struct{}, conc)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for i, mvSpec := range plan {
		wg.Add(1)
		go func(i int, spec rebalance.MoveSpec) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			rep, err := u.MigratePartition(ctx, spec.Partition, spec.To, false)
			mu.Lock()
			defer mu.Unlock()
			res.Reports[i] = rep
			if err != nil {
				res.Failed++
				if firstErr == nil && !errors.Is(err, rebalance.ErrAborted) {
					firstErr = err
				}
			}
		}(i, mvSpec)
	}
	wg.Wait()
	return res, firstErr
}
