package core

import (
	"context"
	"fmt"

	"repro/internal/fecache"
	"repro/internal/locator"
	"repro/internal/se"
	"repro/internal/simnet"
	"repro/internal/store"
	"repro/internal/subscriber"
	"repro/internal/trace"
)

// Session is a client-side handle to the UDR through one point of
// access, carrying the client's policy class. Application front-ends
// hold PolicyFE sessions against the PoA closest to them (§3.3.2
// decision 1); the provisioning system holds a PolicyPS session
// co-located with a PoA (§3.3.3 decision 1).
//
// A Session is safe for concurrent use.
type Session struct {
	net    *simnet.Network
	from   simnet.Addr
	poa    simnet.Addr
	policy Policy
	// cache, when attached, serves cacheable single-Get FE reads
	// in-process — the co-located FE skips even the client→PoA hop on
	// a hit, which is where the hot-key read multiplier comes from.
	cache *fecache.Cache
	// tracer, when attached, records a session.exec span per Exec —
	// as a child when the caller's context already carries a trace
	// (an FE procedure root), else as a new root.
	tracer *trace.Recorder
}

// NewSession creates a session from a client address to the PoA of
// the given site.
func NewSession(net *simnet.Network, from simnet.Addr, poaSite string, policy Policy) *Session {
	return &Session{
		net:    net,
		from:   from,
		poa:    simnet.MakeAddr(poaSite, "poa"),
		policy: policy,
	}
}

// AttachCache wires the PoA's FE read cache into the session for the
// in-process fast path. Only meaningful for front-ends co-located
// with their PoA (the paper's deployment); attach before issuing
// traffic — the field is not synchronized against in-flight calls.
func (s *Session) AttachCache(c *fecache.Cache) { s.cache = c }

// AttachTracer wires the span recorder. Attach before issuing
// traffic, like AttachCache.
func (s *Session) AttachTracer(tr *trace.Recorder) { s.tracer = tr }

// Policy returns the session's client class.
func (s *Session) Policy() Policy { return s.policy }

// PoASite returns the site of the PoA this session uses.
func (s *Session) PoASite() string { return s.poa.Site() }

// Exec runs a one-shot transaction. Target the subscription either
// with id (identity resolution at the PoA) or subID+partition from a
// previous response.
func (s *Session) Exec(ctx context.Context, req ExecReq) (*ExecResp, error) {
	if s.tracer == nil {
		return s.exec(ctx, req)
	}
	var span trace.SpanHandle
	if parent := trace.FromContext(ctx); parent.Valid() {
		span = s.tracer.StartChild(parent, "session.exec", string(s.from))
	} else {
		span = s.tracer.StartRoot("session.exec", string(s.from))
	}
	req.Trace = span.Ctx()
	resp, err := s.exec(ctx, req)
	span.End(err)
	return resp, err
}

func (s *Session) exec(ctx context.Context, req ExecReq) (*ExecResp, error) {
	req.Policy = s.policy
	req.ReadOnly = true
	for _, op := range req.Ops {
		if op.Kind != se.TxnGet && op.Kind != se.TxnCompare {
			req.ReadOnly = false
			break
		}
	}
	if s.cache != nil && s.policy == PolicyFE && req.ReadOnly &&
		len(req.Ops) == 1 && req.Ops[0].Kind == se.TxnGet {
		if key, ok := cacheLookupKey(s.cache, req); ok {
			v, st := s.cacheProbe(req.Trace, key)
			if st == fecache.Hit {
				resp := cachedResp(s.poa, key, v)
				return &resp, nil
			}
			// Missed (or guarded) here; tell the PoA not to probe and
			// double-count — it still re-checks the guard state.
			req.cacheChecked = true
		}
	}
	raw, err := s.net.Call(ctx, s.from, s.poa, req)
	if err != nil {
		return nil, err
	}
	resp, ok := raw.(ExecResp)
	if !ok {
		return nil, fmt.Errorf("core: unexpected PoA response %T", raw)
	}
	return &resp, nil
}

// cacheProbe is the session-side fast-path probe plus an optional
// cache.probe span for sampled traces.
func (s *Session) cacheProbe(tc trace.Ctx, key string) (fecache.Value, fecache.LookupState) {
	if s.tracer != nil && tc.Sampled {
		span := s.tracer.StartChild(tc, "cache.probe", string(s.from))
		v, st := s.cache.Lookup(key)
		span.SetAttr("status", st.String())
		span.End(nil)
		return v, st
	}
	return s.cache.Lookup(key)
}

// ReadProfile fetches and decodes a subscriber profile by identity.
// It also returns the row metadata (CSN) so callers can measure
// staleness, and the role of the serving replica.
func (s *Session) ReadProfile(ctx context.Context, id subscriber.Identity) (*subscriber.Profile, store.Meta, store.Role, error) {
	resp, err := s.Exec(ctx, ExecReq{
		Identity: id,
		Ops:      []se.TxnOp{{Kind: se.TxnGet}},
	})
	if err != nil {
		return nil, store.Meta{}, 0, err
	}
	if !resp.Results[0].Found {
		return nil, store.Meta{}, resp.Role, fmt.Errorf("%w: %s", ErrUnknownSubscriber, id)
	}
	p, err := subscriber.FromEntry(resp.Results[0].Entry)
	if err != nil {
		return nil, store.Meta{}, resp.Role, err
	}
	return p, resp.Results[0].Meta, resp.Role, nil
}

// Modify applies attribute modifications to a subscription located by
// identity, as one transaction.
func (s *Session) Modify(ctx context.Context, id subscriber.Identity, mods ...store.Mod) (*ExecResp, error) {
	return s.Exec(ctx, ExecReq{
		Identity: id,
		Ops:      []se.TxnOp{{Kind: se.TxnModify, Mods: mods}},
	})
}

// Provision creates a subscription (PS sessions).
func (s *Session) Provision(ctx context.Context, p *subscriber.Profile) (*ProvisionResp, error) {
	raw, err := s.net.Call(ctx, s.from, s.poa, ProvisionReq{Profile: p})
	if err != nil {
		return nil, err
	}
	resp, ok := raw.(ProvisionResp)
	if !ok {
		return nil, fmt.Errorf("core: unexpected PoA response %T", raw)
	}
	return &resp, nil
}

// ProvisionAt creates a subscription on a pinned partition
// (selective placement, §3.5).
func (s *Session) ProvisionAt(ctx context.Context, p *subscriber.Profile, partition string) (*ProvisionResp, error) {
	raw, err := s.net.Call(ctx, s.from, s.poa, ProvisionReq{Profile: p, PartitionHint: partition})
	if err != nil {
		return nil, err
	}
	resp, ok := raw.(ProvisionResp)
	if !ok {
		return nil, fmt.Errorf("core: unexpected PoA response %T", raw)
	}
	return &resp, nil
}

// Deprovision removes a subscription.
func (s *Session) Deprovision(ctx context.Context, subscriberID string) (*DeprovisionResp, error) {
	raw, err := s.net.Call(ctx, s.from, s.poa, DeprovisionReq{SubscriberID: subscriberID})
	if err != nil {
		return nil, err
	}
	resp, ok := raw.(DeprovisionResp)
	if !ok {
		return nil, fmt.Errorf("core: unexpected PoA response %T", raw)
	}
	return &resp, nil
}

// Locate resolves an identity to its placement without reading data.
func (s *Session) Locate(ctx context.Context, id subscriber.Identity) (locator.Placement, error) {
	raw, err := s.net.Call(ctx, s.from, s.poa, LocateReq{Identity: id})
	if err != nil {
		return locator.Placement{}, err
	}
	resp, ok := raw.(LocateResp)
	if !ok {
		return locator.Placement{}, fmt.Errorf("core: unexpected PoA response %T", raw)
	}
	return resp.Placement, nil
}
