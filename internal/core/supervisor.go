package core

import (
	"sync"
	"time"

	"repro/internal/metrics"
)

// Supervisor is the OSS-side availability watchdog: it polls the
// partition table and promotes a surviving slave whenever a master's
// element has been down longer than the grace period. Failover-driven
// repair is what keeps per-subscriber availability at five nines when
// elements fail (§2.3 req 3, E14).
type Supervisor struct {
	u        *UDR
	interval time.Duration
	grace    time.Duration

	mu        sync.Mutex
	downSince map[string]time.Time
	stop      chan struct{}
	wg        sync.WaitGroup

	// Failovers counts promotions performed.
	Failovers metrics.Counter
}

// NewSupervisor creates a watchdog polling every interval and
// promoting after grace of continuous master downtime.
func (u *UDR) NewSupervisor(interval, grace time.Duration) *Supervisor {
	return &Supervisor{
		u:         u,
		interval:  interval,
		grace:     grace,
		downSince: make(map[string]time.Time),
	}
}

// Start launches the watchdog.
func (s *Supervisor) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stop != nil {
		return
	}
	s.stop = make(chan struct{})
	s.wg.Add(1)
	go s.run(s.stop)
}

// Stop halts the watchdog.
func (s *Supervisor) Stop() {
	s.mu.Lock()
	stop := s.stop
	s.stop = nil
	s.mu.Unlock()
	if stop != nil {
		close(stop)
		s.wg.Wait()
	}
}

func (s *Supervisor) run(stop chan struct{}) {
	defer s.wg.Done()
	t := time.NewTicker(s.interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			s.sweep()
		}
	}
}

// sweep checks every partition master and promotes where needed.
func (s *Supervisor) sweep() {
	now := time.Now()
	for _, partID := range s.u.Partitions() {
		part, ok := s.u.Partition(partID)
		if !ok {
			continue
		}
		el := s.u.Element(part.Master().Element)
		if el == nil {
			continue
		}
		if !el.Down() {
			s.mu.Lock()
			delete(s.downSince, partID)
			s.mu.Unlock()
			continue
		}
		s.mu.Lock()
		since, seen := s.downSince[partID]
		if !seen {
			s.downSince[partID] = now
			s.mu.Unlock()
			continue
		}
		s.mu.Unlock()
		if now.Sub(since) < s.grace {
			continue
		}
		if _, err := s.u.Failover(partID); err == nil {
			s.Failovers.Inc()
			s.mu.Lock()
			delete(s.downSince, partID)
			s.mu.Unlock()
		}
	}
}
