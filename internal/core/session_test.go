package core

import (
	"errors"
	"testing"

	"repro/internal/locator"
	"repro/internal/se"
	"repro/internal/simnet"
	"repro/internal/store"
	"repro/internal/subscriber"
)

func TestSessionLocate(t *testing.T) {
	net, u, profiles := testUDR(t, 3)
	ctx := ctxT(t)
	site := u.Sites()[0]
	sess := NewSession(net, simnet.MakeAddr(site, "fe"), site, PolicyFE)

	p := profiles[0]
	placement, err := sess.Locate(ctx, subscriber.Identity{Type: subscriber.IMSI, Value: p.IMSIVal})
	if err != nil {
		t.Fatal(err)
	}
	if placement.SubscriberID != p.ID {
		t.Fatalf("placement = %+v", placement)
	}
	part, ok := u.Partition(placement.Partition)
	if !ok || part.HomeSite != p.HomeRegion {
		t.Fatalf("partition %s home %s, want %s", placement.Partition, part.HomeSite, p.HomeRegion)
	}

	if _, err := sess.Locate(ctx, subscriber.Identity{Type: subscriber.MSISDN, Value: "nope"}); !errors.Is(err, locator.ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestSessionPolicyAccessors(t *testing.T) {
	net, u, _ := testUDR(t, 0)
	site := u.Sites()[0]
	fe := NewSession(net, simnet.MakeAddr(site, "fe"), site, PolicyFE)
	ps := NewSession(net, simnet.MakeAddr(site, "ps"), site, PolicyPS)
	if fe.Policy() != PolicyFE || ps.Policy() != PolicyPS {
		t.Fatal("policy accessors")
	}
	if fe.PoASite() != site {
		t.Fatalf("poa site = %s", fe.PoASite())
	}
	if PolicyFE.String() != "FE" || PolicyPS.String() != "PS" {
		t.Fatal("policy strings")
	}
}

func TestSessionExecByKnownPartition(t *testing.T) {
	// A client that cached the placement from a previous response can
	// skip identity resolution entirely.
	net, u, profiles := testUDR(t, 3)
	ctx := ctxT(t)
	site := u.Sites()[0]
	sess := NewSession(net, simnet.MakeAddr(site, "fe"), site, PolicyFE)
	p := profiles[0]

	first, err := sess.Exec(ctx, ExecReq{
		Identity: subscriber.Identity{Type: subscriber.IMSI, Value: p.IMSIVal},
		Ops:      []se.TxnOp{{Kind: se.TxnGet}},
	})
	if err != nil {
		t.Fatal(err)
	}
	second, err := sess.Exec(ctx, ExecReq{
		SubscriberID: first.SubscriberID,
		Partition:    first.Partition,
		Ops:          []se.TxnOp{{Kind: se.TxnGet, Key: first.SubscriberID}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !second.Results[0].Found {
		t.Fatal("partition-addressed read missed")
	}
}

func TestSessionExecEmptyOpKeyDefaultsToSubscriber(t *testing.T) {
	net, u, profiles := testUDR(t, 1)
	ctx := ctxT(t)
	site := u.Sites()[0]
	sess := NewSession(net, simnet.MakeAddr(site, "fe"), site, PolicyFE)
	p := profiles[0]
	resp, err := sess.Exec(ctx, ExecReq{
		Identity: subscriber.Identity{Type: subscriber.MSISDN, Value: p.MSISDNVal},
		Ops:      []se.TxnOp{{Kind: se.TxnGet}}, // Key left empty
	})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Results[0].Found || resp.Results[0].Entry.First(subscriber.AttrID) != p.ID {
		t.Fatalf("resp = %+v", resp.Results[0])
	}
}

func TestSessionModifyReadBack(t *testing.T) {
	net, u, profiles := testUDR(t, 1)
	ctx := ctxT(t)
	site := u.Sites()[0]
	sess := NewSession(net, simnet.MakeAddr(site, "ps"), site, PolicyPS)
	p := profiles[0]
	id := subscriber.Identity{Type: subscriber.IMSI, Value: p.IMSIVal}

	if _, err := sess.Modify(ctx, id, barReplace(subscriber.AttrBarOutgoing, "TRUE")); err != nil {
		t.Fatal(err)
	}
	got, _, role, err := sess.ReadProfile(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Services.BarOutgoing {
		t.Fatal("modify lost")
	}
	if role.String() != "master" {
		t.Fatalf("PS read served by %v", role)
	}
}

// barReplace builds a single-attribute replace mod.
func barReplace(attr, val string) store.Mod {
	return store.Mod{Kind: store.ModReplace, Attr: attr, Vals: []string{val}}
}
