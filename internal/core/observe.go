package core

import (
	"sort"

	"repro/internal/fecache"
	"repro/internal/locator"
	"repro/internal/metrics"
	"repro/internal/replication"
	"repro/internal/se"
	"repro/internal/store"
	"repro/internal/wal"
)

// RegisterMetrics exports the UDR's instruments into a registry under
// the udr_* namespace, per-site/per-element/per-partition labeled —
// the substrate internal/obs serves as GET /metrics.
//
// Topology-scoped families (per-element counters, per-partition
// replication lag, migration progress) register gather-time
// collectors that enumerate the *current* topology on every scrape,
// so scale-out sites, failovers and migrations show up without
// re-registration. Instruments that cannot be collected dynamically
// (the PoA latency histograms) are attached per site; RegisterMetrics
// is idempotent and re-runs automatically after AddSite, so new sites
// get theirs too.
func (u *UDR) RegisterMetrics(reg *metrics.Registry) {
	u.mu.Lock()
	first := u.obsReg != reg
	u.obsReg = reg
	u.mu.Unlock()
	if first {
		u.registerCollectors(reg)
	}
	u.attachInstruments(reg)
}

// obsRegistry returns the registry RegisterMetrics installed, or nil.
func (u *UDR) obsRegistry() *metrics.Registry {
	u.mu.RLock()
	defer u.mu.RUnlock()
	return u.obsReg
}

// elementsSnapshot lists the hosted elements, sorted by ID.
func (u *UDR) elementsSnapshot() []*se.Element {
	u.mu.RLock()
	defer u.mu.RUnlock()
	out := make([]*se.Element, 0, len(u.elements))
	for _, id := range u.elementIDsLocked() {
		out = append(out, u.elements[id])
	}
	return out
}

func (u *UDR) elementIDsLocked() []string {
	ids := make([]string, 0, len(u.elements))
	for id := range u.elements {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// CacheStats snapshots every site's FE/PoA cache counters,
// sorted by site for stable scrape output. Sites without a cache are
// skipped.
func (u *UDR) CacheStats() []fecache.Stats {
	u.mu.RLock()
	caches := make([]*fecache.Cache, 0, len(u.poas))
	for _, poa := range u.poas {
		if poa.cache != nil {
			caches = append(caches, poa.cache)
		}
	}
	u.mu.RUnlock()
	out := make([]fecache.Stats, 0, len(caches))
	for _, c := range caches {
		out = append(out, c.Stats())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Site < out[j].Site })
	return out
}

// attachInstruments binds the per-site instruments that live inside
// subsystem structs. Attach replaces any prior binding, so the pass
// is idempotent and safe to re-run after topology changes.
func (u *UDR) attachInstruments(reg *metrics.Registry) {
	latency := reg.Histogram("udr_poa_op_latency_seconds",
		"Per-operation latency through a site's point of access.", "site")
	u.mu.RLock()
	poas := make(map[string]*AccessPoint, len(u.poas))
	for site, poa := range u.poas {
		poas[site] = poa
	}
	u.mu.RUnlock()
	for site, poa := range poas {
		latency.Attach(&poa.Latency, site)
	}

	// Quorum ack-wait latency: recorded by the master's commit
	// pipeline when Quorum durability is active. Attached on every
	// replica so a promoted slave's histogram is already bound.
	ackWait := reg.Histogram("udr_replication_quorum_ack_wait_seconds",
		"Time a Quorum-durability commit waited for its quorum of acknowledgements.",
		"site", "element", "partition")
	for _, el := range u.elementsSnapshot() {
		for _, partID := range el.Partitions() {
			if pr := el.Replica(partID); pr != nil {
				ackWait.Attach(&pr.Repl.AckWait, el.Site(), el.ID(), partID)
			}
		}
	}

	reg.Counter("udr_net_messages_total",
		"Simulated-network delivery attempts.").Attach(&u.net.Messages)
	reg.Counter("udr_net_drops_total",
		"Simulated-network messages lost to link loss, partitions or down endpoints.").Attach(&u.net.Drops)
}

// registerCollectors installs the gather-time collectors for every
// topology-scoped family. Called once per registry.
func (u *UDR) registerCollectors(reg *metrics.Registry) {
	// Storage-element client-operation counters.
	reg.Counter("udr_se_reads_total",
		"Client read operations served by a storage element.",
		"site", "element").Collect(func(emit metrics.Emit) {
		for _, el := range u.elementsSnapshot() {
			emit(float64(el.Reads.Value()), el.Site(), el.ID())
		}
	})
	reg.Counter("udr_se_writes_total",
		"Client write operations served by a storage element.",
		"site", "element").Collect(func(emit metrics.Emit) {
		for _, el := range u.elementsSnapshot() {
			emit(float64(el.Writes.Value()), el.Site(), el.ID())
		}
	})
	reg.Counter("udr_se_snapshots_total",
		"Completed WAL-compaction snapshot passes.",
		"site", "element").Collect(func(emit metrics.Emit) {
		for _, el := range u.elementsSnapshot() {
			emit(float64(el.Checkpoints.Value()), el.Site(), el.ID())
		}
	})

	// WAL group-commit amortization: appends, fsyncs and the ratio.
	walStats := func(el *se.Element) (appends, syncs uint64) {
		for _, partID := range el.Partitions() {
			if pr := el.Replica(partID); pr != nil && pr.Log != nil {
				appends += pr.Log.Appends()
				syncs += pr.Log.Syncs()
			}
		}
		return
	}
	reg.Counter("udr_wal_appends_total",
		"Commit records staged to the write-ahead logs of an element.",
		"site", "element").Collect(func(emit metrics.Emit) {
		for _, el := range u.elementsSnapshot() {
			a, _ := walStats(el)
			emit(float64(a), el.Site(), el.ID())
		}
	})
	reg.Counter("udr_wal_fsyncs_total",
		"fsyncs issued by the write-ahead logs of an element.",
		"site", "element").Collect(func(emit metrics.Emit) {
		for _, el := range u.elementsSnapshot() {
			_, s := walStats(el)
			emit(float64(s), el.Site(), el.ID())
		}
	})
	reg.Gauge("udr_wal_fsyncs_per_commit",
		"fsyncs divided by staged commit records: the group-commit amortization ratio (1 = no coalescing).",
		"site", "element").Collect(func(emit metrics.Emit) {
		for _, el := range u.elementsSnapshot() {
			a, s := walStats(el)
			ratio := 0.0
			if a > 0 {
				ratio = float64(s) / float64(a)
			}
			emit(ratio, el.Site(), el.ID())
		}
	})

	// Incremental checkpoint activity, per partition replica: pass
	// count, last image size/watermark/duration, and the on-disk
	// segment count (whose growth means checkpointing is falling
	// behind log production).
	type ckptStat struct {
		name, help string
		gauge      bool
		value      func(cs wal.CheckpointStats) float64
	}
	for _, c := range []ckptStat{
		{"udr_wal_checkpoints_total",
			"Incremental checkpoints completed by a partition replica's WAL.",
			false, func(cs wal.CheckpointStats) float64 { return float64(cs.Checkpoints) }},
		{"udr_wal_checkpoint_duration_seconds",
			"Wall time of the last completed checkpoint pass.",
			true, func(cs wal.CheckpointStats) float64 { return cs.LastDuration.Seconds() }},
		{"udr_wal_checkpoint_bytes",
			"Size of the last checkpoint image on disk.",
			true, func(cs wal.CheckpointStats) float64 { return float64(cs.LastBytes) }},
		{"udr_wal_checkpoint_rows",
			"Rows captured by the last checkpoint image.",
			true, func(cs wal.CheckpointStats) float64 { return float64(cs.LastRows) }},
		{"udr_wal_checkpoint_csn",
			"Commit watermark covered by the last checkpoint image.",
			true, func(cs wal.CheckpointStats) float64 { return float64(cs.LastCSN) }},
		{"udr_wal_segments",
			"Log segment files on disk, including the active one.",
			true, func(cs wal.CheckpointStats) float64 { return float64(cs.Segments) }},
	} {
		c := c
		collect := func(emit metrics.Emit) {
			for _, el := range u.elementsSnapshot() {
				for _, partID := range el.Partitions() {
					if pr := el.Replica(partID); pr != nil && pr.Log != nil {
						emit(c.value(pr.Log.CheckpointStats()), el.Site(), el.ID(), partID)
					}
				}
			}
		}
		if c.gauge {
			reg.Gauge(c.name, c.help, "site", "element", "partition").Collect(collect)
		} else {
			reg.Counter(c.name, c.help, "site", "element", "partition").Collect(collect)
		}
	}

	// Replication shipping: per-partition counters on the mastering
	// element, per-peer queue depth and lag.
	reg.Counter("udr_replication_shipped_total",
		"Commit records handed to a master replica's background senders.",
		"site", "element", "partition").Collect(func(emit metrics.Emit) {
		for _, el := range u.elementsSnapshot() {
			for _, partID := range el.Partitions() {
				if pr := el.Replica(partID); pr != nil && pr.Store.Role() == store.Master {
					emit(float64(pr.Repl.Shipped.Value()), el.Site(), el.ID(), partID)
				}
			}
		}
	})
	reg.Counter("udr_replication_conflicts_total",
		"Concurrent-write conflicts resolved in multi-master mode.",
		"site", "element", "partition").Collect(func(emit metrics.Emit) {
		for _, el := range u.elementsSnapshot() {
			for _, partID := range el.Partitions() {
				if pr := el.Replica(partID); pr != nil {
					emit(float64(pr.Repl.Conflicts.Value()), el.Site(), el.ID(), partID)
				}
			}
		}
	})
	reg.Gauge("udr_replication_queue_depth",
		"Commit records awaiting shipment to a replication peer.",
		"site", "element", "partition", "peer").Collect(func(emit metrics.Emit) {
		for _, el := range u.elementsSnapshot() {
			for _, partID := range el.Partitions() {
				pr := el.Replica(partID)
				if pr == nil || pr.Store.Role() != store.Master {
					continue
				}
				for _, st := range pr.Repl.SenderStats() {
					emit(float64(st.QueueDepth), el.Site(), el.ID(), partID, string(st.Peer))
				}
			}
		}
	})
	reg.Gauge("udr_replication_lag_records",
		"Master CSN minus the peer's acknowledged CSN: shipped-batch lag in commit records.",
		"site", "element", "partition", "peer").Collect(func(emit metrics.Emit) {
		for _, el := range u.elementsSnapshot() {
			for _, partID := range el.Partitions() {
				pr := el.Replica(partID)
				if pr == nil || pr.Store.Role() != store.Master {
					continue
				}
				csn := pr.Store.CSN()
				for _, st := range pr.Repl.SenderStats() {
					lag := uint64(0)
					if csn > st.AckedCSN {
						lag = csn - st.AckedCSN
					}
					emit(float64(lag), el.Site(), el.ID(), partID, string(st.Peer))
				}
			}
		}
	})

	// Quorum durability: the configured quorum size on masters running
	// at Quorum level, and per-peer commit records still pending behind
	// the quorum watermark (stragglers catching up asynchronously).
	reg.Gauge("udr_replication_quorum_size",
		"Copies (master included) a Quorum-durability commit must reach before acknowledging.",
		"site", "element", "partition").Collect(func(emit metrics.Emit) {
		for _, el := range u.elementsSnapshot() {
			for _, partID := range el.Partitions() {
				pr := el.Replica(partID)
				if pr == nil || pr.Store.Role() != store.Master ||
					pr.Repl.Durability() != replication.Quorum {
					continue
				}
				emit(float64(pr.Repl.QuorumSize()), el.Site(), el.ID(), partID)
			}
		}
	})
	reg.Gauge("udr_replication_acks_pending",
		"Commit records a peer still has to acknowledge to reach the master's quorum watermark.",
		"site", "element", "partition", "peer").Collect(func(emit metrics.Emit) {
		for _, el := range u.elementsSnapshot() {
			for _, partID := range el.Partitions() {
				pr := el.Replica(partID)
				if pr == nil || pr.Store.Role() != store.Master {
					continue
				}
				for peer, pending := range pr.Repl.WatermarkLag() {
					emit(float64(pending), el.Site(), el.ID(), partID, string(peer))
				}
			}
		}
	})

	// Anti-entropy repair progress (master-side repairers plus the
	// slave-side repair server).
	type aeCount struct {
		name, help string
		value      func(el *se.Element) int64
	}
	for _, c := range []aeCount{
		{"udr_antientropy_rounds_total",
			"Anti-entropy repair rounds run by an element's repairers.",
			func(el *se.Element) (n int64) {
				for _, p := range el.Partitions() {
					if r := el.Repairer(p); r != nil {
						n += r.Rounds.Value()
					}
				}
				return
			}},
		{"udr_antientropy_insync_rounds_total",
			"Repair rounds that ended at the root digest comparison (replicas already in sync).",
			func(el *se.Element) (n int64) {
				for _, p := range el.Partitions() {
					if r := el.Repairer(p); r != nil {
						n += r.InSyncRounds.Value()
					}
				}
				return
			}},
		{"udr_antientropy_rows_shipped_total",
			"Divergent rows shipped to peers by repair rounds.",
			func(el *se.Element) (n int64) {
				for _, p := range el.Partitions() {
					if r := el.Repairer(p); r != nil {
						n += r.RowsShipped.Value()
					}
				}
				return
			}},
		{"udr_antientropy_rows_pulled_total",
			"Divergent rows pulled from peers by repair rounds.",
			func(el *se.Element) (n int64) {
				for _, p := range el.Partitions() {
					if r := el.Repairer(p); r != nil {
						n += r.RowsPulled.Value()
					}
				}
				return
			}},
		{"udr_antientropy_rows_repaired_total",
			"Incoming repair rows that changed a local row (slave-side repair server).",
			func(el *se.Element) int64 {
				if p := el.AntiEntropyPeer(); p != nil {
					return p.RowsRepaired.Value()
				}
				return 0
			}},
	} {
		c := c
		reg.Counter(c.name, c.help, "site", "element").Collect(func(emit metrics.Emit) {
			for _, el := range u.elementsSnapshot() {
				emit(float64(c.value(el)), el.Site(), el.ID())
			}
		})
	}

	// Migration progress: per-element transfer counters plus the
	// in-flight phase gauge (phase numbers follow rebalance.Phase:
	// 1=copy, 2=catch-up, 3=cutover).
	reg.Counter("udr_rebalance_rows_received_total",
		"Partition rows received by an element acting as migration target.",
		"site", "element").Collect(func(emit metrics.Emit) {
		for _, el := range u.elementsSnapshot() {
			emit(float64(el.RebalancePeer().RowsReceived.Value()), el.Site(), el.ID())
		}
	})
	reg.Counter("udr_rebalance_batches_received_total",
		"Bulk-copy batches received by an element acting as migration target.",
		"site", "element").Collect(func(emit metrics.Emit) {
		for _, el := range u.elementsSnapshot() {
			emit(float64(el.RebalancePeer().Batches.Value()), el.Site(), el.ID())
		}
	})
	reg.Gauge("udr_migration_phase",
		"Phase of an in-flight partition migration (1=copy, 2=catch-up, 3=cutover); absent when no move is in flight.",
		"partition").Collect(func(emit metrics.Emit) {
		for part, phase := range u.MigrationsInFlight() {
			emit(float64(int(phase)), part)
		}
	})
	reg.Gauge("udr_migrations_in_flight",
		"Number of partition migrations currently executing.").Collect(func(emit metrics.Emit) {
		emit(float64(len(u.MigrationsInFlight())))
	})

	// Partition table: placement epochs and per-replica row counts.
	reg.Gauge("udr_placement_epoch",
		"Placement epoch of a partition (bumps on failover and migration cutover).",
		"partition").Collect(func(emit metrics.Emit) {
		for _, partID := range u.Partitions() {
			if part, ok := u.Partition(partID); ok {
				emit(float64(part.Epoch), partID)
			}
		}
	})
	reg.Gauge("udr_partition_rows",
		"Rows held by one partition replica.",
		"site", "element", "partition", "role").Collect(func(emit metrics.Emit) {
		for _, el := range u.elementsSnapshot() {
			for _, partID := range el.Partitions() {
				if pr := el.Replica(partID); pr != nil {
					emit(float64(pr.Store.Len()), el.Site(), el.ID(), partID, pr.Store.Role().String())
				}
			}
		}
	})

	// FE/PoA subscriber read cache: hit ratio, churn and the two
	// invalidation streams (replication CSN advance vs placement-epoch
	// bump). Families are always registered; sites without a cache
	// simply emit no samples.
	reg.Counter("udr_fe_cache_hits_total",
		"Reads served from a site's FE/PoA subscriber cache.",
		"site").Collect(func(emit metrics.Emit) {
		for _, s := range u.CacheStats() {
			emit(float64(s.Hits), s.Site)
		}
	})
	reg.Counter("udr_fe_cache_misses_total",
		"Cacheable reads that fell through to the storage elements.",
		"site").Collect(func(emit metrics.Emit) {
		for _, s := range u.CacheStats() {
			emit(float64(s.Misses), s.Site)
		}
	})
	reg.Counter("udr_fe_cache_evictions_total",
		"Entries dropped from a site's FE/PoA cache by the LRU capacity bound.",
		"site").Collect(func(emit metrics.Emit) {
		for _, s := range u.CacheStats() {
			emit(float64(s.Evictions), s.Site)
		}
	})
	reg.Counter("udr_fe_cache_invalidations_total",
		"Cache entries invalidated, by reason: csn (refreshed in place by the replication stream) or epoch (guarded after a failover/migration epoch bump).",
		"site", "reason").Collect(func(emit metrics.Emit) {
		for _, s := range u.CacheStats() {
			emit(float64(s.InvalidationsCSN), s.Site, "csn")
			emit(float64(s.InvalidationsEpoch), s.Site, "epoch")
		}
	})
	reg.Counter("udr_fe_cache_stale_rejects_total",
		"Slave read responses rejected for carrying a CSN below the key's per-PoA staleness floor.",
		"site").Collect(func(emit metrics.Emit) {
		for _, s := range u.CacheStats() {
			emit(float64(s.StaleRejects), s.Site)
		}
	})
	reg.Gauge("udr_fe_cache_entries",
		"Entries resident in a site's FE/PoA subscriber cache.",
		"site").Collect(func(emit metrics.Emit) {
		for _, s := range u.CacheStats() {
			emit(float64(s.Entries), s.Site)
		}
	})

	// PoA service outcomes and location-stage lookups.
	reg.Counter("udr_poa_ops_total",
		"Operations through a site's point of access by outcome.",
		"site", "outcome").Collect(func(emit metrics.Emit) {
		u.mu.RLock()
		poas := make(map[string]*AccessPoint, len(u.poas))
		for site, poa := range u.poas {
			poas[site] = poa
		}
		u.mu.RUnlock()
		for site, poa := range poas {
			emit(float64(poa.Served.Value()), site, "served")
			emit(float64(poa.Failed.Value()), site, "failed")
		}
	})
	reg.Counter("udr_locator_lookups_total",
		"Identity lookups against a site's data location stage by result.",
		"site", "result").Collect(func(emit metrics.Emit) {
		u.mu.RLock()
		stages := make(map[string]*locator.Stage, len(u.stages))
		for site, st := range u.stages {
			stages[site] = st
		}
		u.mu.RUnlock()
		for site, st := range stages {
			emit(float64(st.Hits.Value()), site, "hit")
			emit(float64(st.Misses.Value()), site, "miss")
		}
	})
	reg.Counter("udr_locator_fanout_queries_total",
		"Storage-element queries issued by cached-locator miss resolution.",
		"site").Collect(func(emit metrics.Emit) {
		u.mu.RLock()
		stages := make(map[string]*locator.Stage, len(u.stages))
		for site, st := range u.stages {
			stages[site] = st
		}
		u.mu.RUnlock()
		for site, st := range stages {
			emit(float64(st.FanOutQueries.Value()), site)
		}
	})

	// Request-tracing recorder activity. Families exist (at zero)
	// even when tracing is disabled so dashboards need not special-
	// case; trace.Recorder.Stats tolerates a nil receiver.
	reg.Counter("udr_trace_spans_total",
		"Spans recorded into the trace ring (head- or tail-sampled).").Collect(func(emit metrics.Emit) {
		emit(float64(u.cfg.Trace.Stats().Spans))
	})
	reg.Counter("udr_trace_sampled_total",
		"Traces selected by the head sampler.").Collect(func(emit metrics.Emit) {
		emit(float64(u.cfg.Trace.Stats().Sampled))
	})
	reg.Counter("udr_trace_dropped_total",
		"Buffered spans overwritten before being read.").Collect(func(emit metrics.Emit) {
		emit(float64(u.cfg.Trace.Stats().Dropped))
	})
}
