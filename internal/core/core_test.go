package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/locator"
	"repro/internal/replication"
	"repro/internal/se"
	"repro/internal/simnet"
	"repro/internal/store"
	"repro/internal/subscriber"
)

// testUDR builds the paper's Figure 2 layout on a fast network and
// seeds n subscribers across the three regions.
func testUDR(t *testing.T, n int, mutate ...func(*Config)) (*simnet.Network, *UDR, []*subscriber.Profile) {
	t.Helper()
	net := simnet.New(simnet.FastConfig())
	cfg := DefaultConfig()
	for _, m := range mutate {
		m(&cfg)
	}
	u, err := New(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(u.Stop)

	gen := subscriber.NewGenerator(u.Sites()...)
	var profiles []*subscriber.Profile
	for i := 0; i < n; i++ {
		p := gen.Profile(i)
		if err := u.SeedDirect(p); err != nil {
			t.Fatal(err)
		}
		profiles = append(profiles, p)
	}
	return net, u, profiles
}

func ctxT(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestTopologyMatchesFigure2(t *testing.T) {
	_, u, _ := testUDR(t, 0)
	parts := u.Partitions()
	if len(parts) != 3 {
		t.Fatalf("partitions = %v", parts)
	}
	// Every partition has a master plus two slaves, all on distinct
	// sites (geographically disperse copies).
	for _, id := range parts {
		p, ok := u.Partition(id)
		if !ok || len(p.Replicas) != 3 {
			t.Fatalf("partition %s replicas = %+v", id, p.Replicas)
		}
		sites := map[string]bool{}
		for _, r := range p.Replicas {
			sites[r.Site] = true
		}
		if len(sites) != 3 {
			t.Fatalf("partition %s not geographically disperse: %+v", id, p.Replicas)
		}
		if p.Master().Site != p.HomeSite {
			t.Fatalf("partition %s master not at home site", id)
		}
	}
	// Every SE hosts 3 replicas: 1 master + 2 slaves (Figure 2's
	// described layout).
	for _, elID := range u.Elements() {
		el := u.Element(elID)
		if got := len(el.Partitions()); got != 3 {
			t.Fatalf("element %s hosts %d replicas", elID, got)
		}
	}
}

func TestFEReadEverySite(t *testing.T) {
	net, u, profiles := testUDR(t, 9)
	ctx := ctxT(t)
	if err := u.WaitReplication(ctx); err != nil {
		t.Fatal(err)
	}
	for _, site := range u.Sites() {
		sess := NewSession(net, simnet.MakeAddr(site, "fe"), site, PolicyFE)
		for _, p := range profiles[:3] {
			got, _, _, err := sess.ReadProfile(ctx, subscriber.Identity{Type: subscriber.MSISDN, Value: p.MSISDNVal})
			if err != nil {
				t.Fatalf("site %s read %s: %v", site, p.ID, err)
			}
			if got.ID != p.ID {
				t.Fatalf("got %s want %s", got.ID, p.ID)
			}
		}
	}
}

func TestFEReadServedLocally(t *testing.T) {
	// With RF=3 every site holds a replica of everything: FE reads
	// must be served by the co-located element (§3.3.2 decision 2).
	net, u, profiles := testUDR(t, 3)
	ctx := ctxT(t)
	if err := u.WaitReplication(ctx); err != nil {
		t.Fatal(err)
	}
	site := u.Sites()[0]
	sess := NewSession(net, simnet.MakeAddr(site, "fe"), site, PolicyFE)
	for _, p := range profiles {
		resp, err := sess.Exec(ctx, ExecReq{
			Identity: subscriber.Identity{Type: subscriber.IMSI, Value: p.IMSIVal},
			Ops:      []se.TxnOp{{Kind: se.TxnGet}},
		})
		if err != nil {
			t.Fatal(err)
		}
		if resp.ServedBy.Site() != site {
			t.Fatalf("read for %s served by %s, want local site %s", p.ID, resp.ServedBy, site)
		}
	}
}

func TestProvisionAndReadBack(t *testing.T) {
	net, u, _ := testUDR(t, 0)
	ctx := ctxT(t)
	sites := u.Sites()
	ps := NewSession(net, simnet.MakeAddr(sites[0], "ps"), sites[0], PolicyPS)

	p := subscriber.NewGenerator(sites...).Profile(100)
	p.HomeRegion = sites[1]
	resp, err := ps.Provision(ctx, p)
	if err != nil {
		t.Fatal(err)
	}
	if resp.LocatorUpdateFailures != 0 {
		t.Fatalf("locator failures = %d", resp.LocatorUpdateFailures)
	}
	// Selective placement: the partition's home site is the profile's
	// home region (§3.5).
	part, _ := u.Partition(resp.Partition)
	if part.HomeSite != sites[1] {
		t.Fatalf("placed at %s, want %s", part.HomeSite, sites[1])
	}
	// Readable from every site by every identity.
	if err := u.WaitReplication(ctx); err != nil {
		t.Fatal(err)
	}
	for _, site := range sites {
		fe := NewSession(net, simnet.MakeAddr(site, "fe"), site, PolicyFE)
		for _, id := range p.Identities() {
			got, _, _, err := fe.ReadProfile(ctx, id)
			if err != nil {
				t.Fatalf("site %s id %s: %v", site, id, err)
			}
			if got.ID != p.ID {
				t.Fatalf("wrong profile for %s", id)
			}
		}
	}
}

func TestProvisionAtPinnedPartition(t *testing.T) {
	net, u, _ := testUDR(t, 0)
	ctx := ctxT(t)
	sites := u.Sites()
	ps := NewSession(net, simnet.MakeAddr(sites[0], "ps"), sites[0], PolicyPS)
	p := subscriber.NewGenerator(sites...).Profile(200)
	pin := u.Partitions()[2]
	resp, err := ps.ProvisionAt(ctx, p, pin)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Partition != pin {
		t.Fatalf("placed at %s, want pinned %s", resp.Partition, pin)
	}
}

func TestDeprovisionRemovesEverything(t *testing.T) {
	net, u, profiles := testUDR(t, 3)
	ctx := ctxT(t)
	site := u.Sites()[0]
	ps := NewSession(net, simnet.MakeAddr(site, "ps"), site, PolicyPS)

	victim := profiles[0]
	if _, err := ps.Deprovision(ctx, victim.ID); err != nil {
		t.Fatal(err)
	}
	fe := NewSession(net, simnet.MakeAddr(site, "fe"), site, PolicyFE)
	_, _, _, err := fe.ReadProfile(ctx, subscriber.Identity{Type: subscriber.MSISDN, Value: victim.MSISDNVal})
	if err == nil {
		t.Fatal("deprovisioned subscriber still readable")
	}
	// Location maps cleaned at every site.
	for _, s := range u.Sites() {
		if _, err := u.Stage(s).Lookup(ctx, subscriber.Identity{Type: subscriber.IMSI, Value: victim.IMSIVal}); !errors.Is(err, locator.ErrNotFound) {
			t.Fatalf("site %s still maps the victim: %v", s, err)
		}
	}
}

func TestPartitionCoverA(t *testing.T) {
	// The heart of §3.2/§4.1: on a partition, FE reads keep working
	// everywhere (slave reads), PS writes fail for partitions whose
	// master is on the other side.
	net, u, profiles := testUDR(t, 9)
	ctx := ctxT(t)
	if err := u.WaitReplication(ctx); err != nil {
		t.Fatal(err)
	}
	sites := u.Sites()
	isolated := sites[0]
	net.Partition([]string{isolated})

	// FE reads at the isolated site: all data still readable (local
	// replicas hold everything at RF=3).
	fe := NewSession(net, simnet.MakeAddr(isolated, "fe"), isolated, PolicyFE)
	for _, p := range profiles {
		if _, _, _, err := fe.ReadProfile(ctx, subscriber.Identity{Type: subscriber.MSISDN, Value: p.MSISDNVal}); err != nil {
			t.Fatalf("FE read during partition: %v", err)
		}
	}

	// PS writes at the isolated site: succeed only for the partition
	// mastered locally, fail for remote masters (C over A).
	ps := NewSession(net, simnet.MakeAddr(isolated, "ps"), isolated, PolicyPS)
	var ok, failed int
	for _, p := range profiles {
		_, err := ps.Exec(ctx, ExecReq{
			Identity: subscriber.Identity{Type: subscriber.IMSI, Value: p.IMSIVal},
			Ops: []se.TxnOp{{Kind: se.TxnModify, Mods: []store.Mod{{
				Kind: store.ModReplace, Attr: subscriber.AttrBarPremium, Vals: []string{"TRUE"},
			}}}},
		})
		if err != nil {
			if !errors.Is(err, ErrMasterUnreachable) {
				t.Fatalf("unexpected error class: %v", err)
			}
			failed++
		} else {
			ok++
		}
	}
	// 9 subscribers over 3 home sites: 3 mastered locally, 6 remote.
	if ok != 3 || failed != 6 {
		t.Fatalf("writes ok=%d failed=%d, want 3/6", ok, failed)
	}

	net.Heal()
	// After the partition every write works again.
	if _, err := ps.Exec(ctx, ExecReq{
		Identity: subscriber.Identity{Type: subscriber.IMSI, Value: profiles[1].IMSIVal},
		Ops: []se.TxnOp{{Kind: se.TxnModify, Mods: []store.Mod{{
			Kind: store.ModReplace, Attr: subscriber.AttrBarPremium, Vals: []string{"FALSE"},
		}}}},
	}); err != nil {
		t.Fatalf("write after heal: %v", err)
	}
}

func TestPSReadsRequireMaster(t *testing.T) {
	// §3.3.3: PS reads are master-only, so they fail during the
	// partition even though a local slave copy exists.
	net, u, profiles := testUDR(t, 3)
	ctx := ctxT(t)
	if err := u.WaitReplication(ctx); err != nil {
		t.Fatal(err)
	}
	sites := u.Sites()
	isolated := sites[0]

	// Pick a subscriber mastered elsewhere.
	var remote *subscriber.Profile
	for _, p := range profiles {
		if p.HomeRegion != isolated {
			remote = p
			break
		}
	}
	net.Partition([]string{isolated})
	defer net.Heal()

	ps := NewSession(net, simnet.MakeAddr(isolated, "ps"), isolated, PolicyPS)
	_, _, _, err := ps.ReadProfile(ctx, subscriber.Identity{Type: subscriber.IMSI, Value: remote.IMSIVal})
	if err == nil {
		t.Fatal("PS read of remote-mastered data succeeded during partition")
	}
	// The same read succeeds for an FE (slave read).
	fe := NewSession(net, simnet.MakeAddr(isolated, "fe"), isolated, PolicyFE)
	if _, _, _, err := fe.ReadProfile(ctx, subscriber.Identity{Type: subscriber.IMSI, Value: remote.IMSIVal}); err != nil {
		t.Fatalf("FE read failed: %v", err)
	}
}

func TestFESlaveReadsDisabledAblation(t *testing.T) {
	// With FESlaveReads=false every FE read goes to the master.
	net, u, profiles := testUDR(t, 3, func(c *Config) { c.FESlaveReads = false })
	ctx := ctxT(t)
	site := u.Sites()[0]
	var remote *subscriber.Profile
	for _, p := range profiles {
		if p.HomeRegion != site {
			remote = p
			break
		}
	}
	fe := NewSession(net, simnet.MakeAddr(site, "fe"), site, PolicyFE)
	resp, err := fe.Exec(ctx, ExecReq{
		Identity: subscriber.Identity{Type: subscriber.IMSI, Value: remote.IMSIVal},
		Ops:      []se.TxnOp{{Kind: se.TxnGet}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Role != store.Master || resp.ServedBy.Site() == site {
		t.Fatalf("read served by %s role %v, want remote master", resp.ServedBy, resp.Role)
	}
}

func TestFailoverRestoresWrites(t *testing.T) {
	net, u, profiles := testUDR(t, 3)
	ctx := ctxT(t)
	if err := u.WaitReplication(ctx); err != nil {
		t.Fatal(err)
	}
	victim := profiles[0]
	partID := ""
	for _, id := range u.Partitions() {
		p, _ := u.Partition(id)
		if p.HomeSite == victim.HomeRegion {
			partID = id
			break
		}
	}
	part, _ := u.Partition(partID)
	u.Element(part.Master().Element).Crash()

	site := u.Sites()[1]
	ps := NewSession(net, simnet.MakeAddr(site, "ps"), site, PolicyPS)
	writeReq := ExecReq{
		Identity: subscriber.Identity{Type: subscriber.IMSI, Value: victim.IMSIVal},
		Ops: []se.TxnOp{{Kind: se.TxnModify, Mods: []store.Mod{{
			Kind: store.ModReplace, Attr: subscriber.AttrBarOutgoing, Vals: []string{"TRUE"},
		}}}},
	}
	if _, err := ps.Exec(ctx, writeReq); err == nil {
		t.Fatal("write succeeded with dead master")
	}

	newMaster, err := u.Failover(partID)
	if err != nil {
		t.Fatal(err)
	}
	if newMaster.Element == part.Master().Element {
		t.Fatal("failover picked the dead element")
	}
	if _, err := ps.Exec(ctx, writeReq); err != nil {
		t.Fatalf("write after failover: %v", err)
	}
	// Reads reflect the write.
	got, _, _, err := ps.ReadProfile(ctx, subscriber.Identity{Type: subscriber.IMSI, Value: victim.IMSIVal})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Services.BarOutgoing {
		t.Fatal("write lost across failover")
	}
}

func TestQuorumFailoverPromotesAckedSlave(t *testing.T) {
	// Crash-restart durability contract: a quorum-acked write survives
	// master failover because the most-caught-up live slave — which by
	// the quorum holds the write — is the one promoted.
	net, u, profiles := testUDR(t, 3, func(c *Config) { c.Durability = replication.Quorum })
	ctx := ctxT(t)
	if err := u.WaitReplication(ctx); err != nil {
		t.Fatal(err)
	}
	victim := profiles[0]
	var partID string
	for _, id := range u.Partitions() {
		p, _ := u.Partition(id)
		if p.HomeSite == victim.HomeRegion {
			partID = id
			break
		}
	}
	part, _ := u.Partition(partID)
	// Cut off the FIRST slave in table order, so a naive
	// first-reachable failover would promote it after the heal even
	// though it missed the quorum-acked write.
	stale := part.Replicas[1]
	acked := part.Replicas[2]
	net.Partition([]string{stale.Site})

	// Quorum write with one replica down: master + the reachable slave
	// are the majority, so the commit succeeds where sync-all stalls.
	ps := NewSession(net, simnet.MakeAddr(part.HomeSite, "ps"), part.HomeSite, PolicyPS)
	writeReq := ExecReq{
		Identity: subscriber.Identity{Type: subscriber.IMSI, Value: victim.IMSIVal},
		Ops: []se.TxnOp{{Kind: se.TxnModify, Mods: []store.Mod{{
			Kind: store.ModReplace, Attr: subscriber.AttrBarOutgoing, Vals: []string{"TRUE"},
		}}}},
	}
	if _, err := ps.Exec(ctx, writeReq); err != nil {
		t.Fatalf("quorum write with straggler partitioned: %v", err)
	}

	// Master dies before the straggler ever sees the write; then the
	// partition heals, so BOTH slaves are reachable at repair time.
	u.Element(part.Master().Element).Crash()
	net.Heal()

	newMaster, err := u.Failover(partID)
	if err != nil {
		t.Fatal(err)
	}
	if newMaster.Element != acked.Element {
		t.Fatalf("failover promoted %s; most-caught-up acked slave is %s",
			newMaster.Element, acked.Element)
	}
	got, _, _, err := ps.ReadProfile(ctx, subscriber.Identity{Type: subscriber.IMSI, Value: victim.IMSIVal})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Services.BarOutgoing {
		t.Fatal("quorum-acked write lost across failover")
	}

	// The promoted master carries the configured durability level:
	// after the straggler is repaired (its stream is gapped, so it
	// needs the reseed anti-entropy would perform), the next quorum
	// write completes against it.
	if err := u.ReseedSlave(partID, stale.Element); err != nil {
		t.Fatal(err)
	}
	writeReq.Ops[0].Mods[0].Attr = subscriber.AttrBarRoaming
	if _, err := ps.Exec(ctx, writeReq); err != nil {
		t.Fatalf("quorum write on promoted master: %v", err)
	}
	pr := u.Element(newMaster.Element).Replica(partID)
	if lvl := pr.Repl.Durability(); lvl != replication.Quorum {
		t.Fatalf("promoted master durability = %v, want Quorum", lvl)
	}
}

func TestSupervisorAutoFailover(t *testing.T) {
	net, u, profiles := testUDR(t, 3)
	ctx := ctxT(t)
	if err := u.WaitReplication(ctx); err != nil {
		t.Fatal(err)
	}
	sup := u.NewSupervisor(2*time.Millisecond, 5*time.Millisecond)
	sup.Start()
	defer sup.Stop()

	victim := profiles[0]
	var partID string
	for _, id := range u.Partitions() {
		p, _ := u.Partition(id)
		if p.HomeSite == victim.HomeRegion {
			partID = id
		}
	}
	part, _ := u.Partition(partID)
	u.Element(part.Master().Element).Crash()

	// Wait for the watchdog to promote.
	deadline := time.Now().Add(5 * time.Second)
	for {
		p, _ := u.Partition(partID)
		if p.Master().Element != part.Master().Element {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("supervisor never failed over")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if sup.Failovers.Value() == 0 {
		t.Fatal("failover not counted")
	}
	_ = net
}

func TestReseedSlave(t *testing.T) {
	_, u, profiles := testUDR(t, 3)
	ctx := ctxT(t)
	if err := u.WaitReplication(ctx); err != nil {
		t.Fatal(err)
	}
	partID := u.Partitions()[0]
	part, _ := u.Partition(partID)
	slaveRef := part.Replicas[1]

	// Wipe the slave's store to simulate a replaced element.
	slaveEl := u.Element(slaveRef.Element)
	fresh := store.New("fresh")
	fresh.SetRole(store.Slave)
	slaveEl.Replica(partID).Store = fresh

	if err := u.ReseedSlave(partID, slaveRef.Element); err != nil {
		t.Fatal(err)
	}
	reseeded := slaveEl.Replica(partID).Store
	masterStore := u.Element(part.Master().Element).Replica(partID).Store
	if reseeded.Len() != masterStore.Len() {
		t.Fatalf("reseeded len = %d, master = %d", reseeded.Len(), masterStore.Len())
	}
	_ = profiles
}

func TestMultiMasterWritesBothSidesAndConverge(t *testing.T) {
	net, u, profiles := testUDR(t, 3, func(c *Config) { c.MultiMaster = true })
	ctx := ctxT(t)
	if err := u.WaitReplication(ctx); err != nil {
		t.Fatal(err)
	}
	sites := u.Sites()
	isolated := sites[0]
	var remote *subscriber.Profile
	for _, p := range profiles {
		if p.HomeRegion != isolated {
			remote = p
			break
		}
	}

	net.Partition([]string{isolated})

	// Writes succeed on BOTH sides (availability restored, §5).
	psA := NewSession(net, simnet.MakeAddr(isolated, "ps"), isolated, PolicyPS)
	psB := NewSession(net, simnet.MakeAddr(remote.HomeRegion, "ps"), remote.HomeRegion, PolicyPS)
	id := subscriber.Identity{Type: subscriber.IMSI, Value: remote.IMSIVal}
	if _, err := psA.Exec(ctx, ExecReq{Identity: id, Ops: []se.TxnOp{{
		Kind: se.TxnModify, Mods: []store.Mod{{Kind: store.ModReplace, Attr: subscriber.AttrBarPremium, Vals: []string{"TRUE"}}},
	}}}); err != nil {
		t.Fatalf("isolated-side write: %v", err)
	}
	time.Sleep(2 * time.Millisecond)
	if _, err := psB.Exec(ctx, ExecReq{Identity: id, Ops: []se.TxnOp{{
		Kind: se.TxnModify, Mods: []store.Mod{{Kind: store.ModReplace, Attr: subscriber.AttrForwardUncond, Vals: []string{"34699999999"}}},
	}}}); err != nil {
		t.Fatalf("majority-side write: %v", err)
	}

	net.Heal()
	// Consistency restoration across the partition's replicas.
	var partID string
	for _, pid := range u.Partitions() {
		p, _ := u.Partition(pid)
		if p.HomeSite == remote.HomeRegion {
			partID = pid
		}
	}
	if _, err := u.RestoreConsistency(ctx, partID); err != nil {
		t.Fatal(err)
	}

	// All replicas converge; the merge keeps the barring (safety
	// bias) and the newer forwarding target.
	part, _ := u.Partition(partID)
	var entries []store.Entry
	for _, ref := range part.Replicas {
		st := u.Element(ref.Element).Replica(partID).Store
		e, _, ok := st.GetCommitted(remote.ID)
		if !ok {
			t.Fatalf("replica %s lost the row", ref.Element)
		}
		entries = append(entries, e)
	}
	for i := 1; i < len(entries); i++ {
		if !entries[0].Equal(entries[i]) {
			t.Fatalf("replicas diverged:\n%v\n%v", entries[0], entries[i])
		}
	}
	if entries[0].First(subscriber.AttrBarPremium) != "TRUE" {
		t.Fatalf("barring lost in merge: %v", entries[0])
	}
	if entries[0].First(subscriber.AttrForwardUncond) != "34699999999" {
		t.Fatalf("newer write lost in merge: %v", entries[0])
	}
}

func TestScaleOutAddSite(t *testing.T) {
	net, u, profiles := testUDR(t, 30)
	ctx := ctxT(t)
	syncTime, entries, err := u.AddSite(ctx, SiteSpec{Name: "apac", SEs: 1, PartitionsPerSE: 1})
	if err != nil {
		t.Fatal(err)
	}
	if entries == 0 {
		t.Fatal("no entries synced")
	}
	if syncTime <= 0 {
		t.Fatal("no sync time measured")
	}
	// The new PoA serves lookups for pre-existing subscribers.
	fe := NewSession(net, simnet.MakeAddr("apac", "fe"), "apac", PolicyFE)
	p := profiles[0]
	got, _, _, err := fe.ReadProfile(ctx, subscriber.Identity{Type: subscriber.MSISDN, Value: p.MSISDNVal})
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != p.ID {
		t.Fatalf("got %s", got.ID)
	}
	// New partitions exist for the new region.
	found := false
	for _, pid := range u.Partitions() {
		if part, _ := u.Partition(pid); part.HomeSite == "apac" {
			found = true
		}
	}
	if !found {
		t.Fatal("no apac partitions created")
	}
}

func TestCachedLocatorMissFanOut(t *testing.T) {
	net, u, profiles := testUDR(t, 6, func(c *Config) { c.LocatorMode = locator.Cached })
	ctx := ctxT(t)
	// Settle replication: the FE read below may be served by a local
	// slave copy, which is only guaranteed complete once the seeding
	// commits have shipped.
	if err := u.WaitReplication(ctx); err != nil {
		t.Fatal(err)
	}
	site := u.Sites()[0]
	fe := NewSession(net, simnet.MakeAddr(site, "fe"), site, PolicyFE)
	p := profiles[4]
	got, _, _, err := fe.ReadProfile(ctx, subscriber.Identity{Type: subscriber.MSISDN, Value: p.MSISDNVal})
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != p.ID {
		t.Fatalf("got %s", got.ID)
	}
	stage := u.Stage(site)
	if stage.Misses.Value() == 0 || stage.FanOutQueries.Value() == 0 {
		t.Fatalf("expected fan-out: misses=%d queries=%d",
			stage.Misses.Value(), stage.FanOutQueries.Value())
	}
	// Second read hits the cache.
	before := stage.Hits.Value()
	if _, _, _, err := fe.ReadProfile(ctx, subscriber.Identity{Type: subscriber.MSISDN, Value: p.MSISDNVal}); err != nil {
		t.Fatal(err)
	}
	if stage.Hits.Value() != before+1 {
		t.Fatal("cache not used on second read")
	}
}

func TestDurabilityDualSeq(t *testing.T) {
	net, u, profiles := testUDR(t, 3, func(c *Config) { c.Durability = replication.DualSeq })
	ctx := ctxT(t)
	site := u.Sites()[0]
	ps := NewSession(net, simnet.MakeAddr(site, "ps"), site, PolicyPS)
	p := profiles[0]
	// Normal operation: dual-seq write succeeds.
	if _, err := ps.Exec(ctx, ExecReq{
		Identity: subscriber.Identity{Type: subscriber.IMSI, Value: p.IMSIVal},
		Ops: []se.TxnOp{{Kind: se.TxnModify, Mods: []store.Mod{{
			Kind: store.ModReplace, Attr: subscriber.AttrSMSEnabled, Vals: []string{"FALSE"},
		}}}},
	}); err != nil {
		t.Fatal(err)
	}
	// Isolate the master's site: the first slave is unreachable, so
	// dual-seq commits fail even though the master is writable.
	net.Partition([]string{p.HomeRegion})
	psHome := NewSession(net, simnet.MakeAddr(p.HomeRegion, "ps"), p.HomeRegion, PolicyPS)
	_, err := psHome.Exec(ctx, ExecReq{
		Identity: subscriber.Identity{Type: subscriber.IMSI, Value: p.IMSIVal},
		Ops: []se.TxnOp{{Kind: se.TxnModify, Mods: []store.Mod{{
			Kind: store.ModReplace, Attr: subscriber.AttrSMSEnabled, Vals: []string{"TRUE"},
		}}}},
	})
	net.Heal()
	if err == nil {
		t.Fatal("dual-seq write succeeded with unreachable slave")
	}
}

func TestExecUnknownIdentity(t *testing.T) {
	net, u, _ := testUDR(t, 1)
	ctx := ctxT(t)
	site := u.Sites()[0]
	fe := NewSession(net, simnet.MakeAddr(site, "fe"), site, PolicyFE)
	_, _, _, err := fe.ReadProfile(ctx, subscriber.Identity{Type: subscriber.MSISDN, Value: "nope"})
	if err == nil {
		t.Fatal("unknown identity read succeeded")
	}
}

func TestPoAStatsAccumulate(t *testing.T) {
	net, u, profiles := testUDR(t, 2)
	ctx := ctxT(t)
	site := u.Sites()[0]
	fe := NewSession(net, simnet.MakeAddr(site, "fe"), site, PolicyFE)
	for i := 0; i < 5; i++ {
		fe.ReadProfile(ctx, subscriber.Identity{Type: subscriber.MSISDN, Value: profiles[0].MSISDNVal})
	}
	ap := u.PoA(site)
	if ap.Served.Value() < 5 {
		t.Fatalf("served = %d", ap.Served.Value())
	}
	if ap.Latency.Count() < 5 {
		t.Fatalf("latency samples = %d", ap.Latency.Count())
	}
}
