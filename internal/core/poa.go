package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fecache"
	"repro/internal/locator"
	"repro/internal/metrics"
	"repro/internal/se"
	"repro/internal/simnet"
	"repro/internal/store"
	"repro/internal/subscriber"
	"repro/internal/trace"
)

// Messages between client sessions and a PoA.

// ExecReq executes a one-shot transaction against the subscription's
// partition. The target is either an identity (resolved through the
// PoA's local location stage, §3.3.1 decision 1) or a known
// subscriber ID + partition from a previous call.
type ExecReq struct {
	Identity     subscriber.Identity
	SubscriberID string
	Partition    string
	Ops          []se.TxnOp
	Policy       Policy
	ReadOnly     bool
	// Tag is an opaque operation label copied onto the storage-element
	// transaction, where the element's TxnObserver can see it (the
	// consistency harness's server-side attribution hook).
	Tag string
	// Trace is the caller's trace context; the PoA's poa.exec span and
	// everything below it (cache probe, locator lookup, the SE hop)
	// nest under it.
	Trace trace.Ctx
	// cacheChecked marks that a session-side probe of the PoA's FE
	// cache already missed for this request, so the PoA must not
	// probe (and double-count a miss) again.
	cacheChecked bool
}

// TraceCtx implements trace.Carrier.
func (r ExecReq) TraceCtx() trace.Ctx { return r.Trace }

// WithTraceCtx implements trace.Carrier: the network uses it to nest
// the PoA's spans under the per-hop net.call span.
func (r ExecReq) WithTraceCtx(tc trace.Ctx) any { r.Trace = tc; return r }

// ExecResp reports the outcome.
type ExecResp struct {
	Results      []se.OpResult
	CSN          uint64
	ServedBy     simnet.Addr
	Role         store.Role
	Partition    string
	SubscriberID string
}

// ProvisionReq creates a subscription (PS traffic). The placement
// follows the profile's home region unless PartitionHint pins it
// (selective placement, §3.5).
type ProvisionReq struct {
	Profile       *subscriber.Profile
	PartitionHint string
}

// ProvisionResp reports where the subscription landed.
type ProvisionResp struct {
	Partition string
	// LocatorUpdateFailures counts remote location stages that could
	// not be updated (partitioned away); they will miss lookups for
	// this subscription until repaired.
	LocatorUpdateFailures int
}

// DeprovisionReq removes a subscription.
type DeprovisionReq struct {
	SubscriberID string
}

// DeprovisionResp reports the outcome.
type DeprovisionResp struct {
	LocatorUpdateFailures int
}

// LocateReq resolves an identity without touching subscriber data.
type LocateReq struct {
	Identity subscriber.Identity
}

// LocateResp carries the placement.
type LocateResp struct {
	Placement locator.Placement
}

// AccessPoint is one site's PoA: the L4-balanced LDAP server farm of
// §3.4.1 reduced to its observable behaviour — an endpoint that
// resolves data location locally and forwards operations to storage
// elements, applying the per-policy routing rules.
type AccessPoint struct {
	u    *UDR
	site string
	addr simnet.Addr

	mu sync.Mutex
	// tokens models finite LDAP processing capacity: one token per
	// LDAP server process; each op holds a token for serviceTime.
	tokens      chan struct{}
	serviceTime time.Duration

	// cache is the site's FE subscriber read cache (nil unless
	// Config.FECache); set before the PoA is registered, never after.
	cache *fecache.Cache
	// lbSeq rotates cacheable read-through misses across warm
	// co-located replicas when Config.FECacheSlaveLB is set.
	lbSeq atomic.Uint64

	// Served and Failed count operations by outcome; Stale is
	// incremented by sessions that detected a stale slave read
	// (E5's accounting hook).
	Served  metrics.Counter
	Failed  metrics.Counter
	Latency metrics.Histogram
}

func newAccessPoint(u *UDR, site string, ldapServers int) *AccessPoint {
	ap := &AccessPoint{
		u:           u,
		site:        site,
		addr:        simnet.MakeAddr(site, "poa"),
		serviceTime: u.cfg.LDAPServiceTime,
	}
	if ldapServers > 0 && ap.serviceTime > 0 {
		ap.tokens = make(chan struct{}, ldapServers)
		for i := 0; i < ldapServers; i++ {
			ap.tokens <- struct{}{}
		}
	}
	return ap
}

// Site returns the PoA's site.
func (ap *AccessPoint) Site() string { return ap.site }

// Cache returns the PoA's FE read cache (nil when disabled).
func (ap *AccessPoint) Cache() *fecache.Cache { return ap.cache }

// SetLDAPServers resizes the modelled LDAP server pool (scale-up,
// §3.4.1: the balancer detects new servers automatically).
func (ap *AccessPoint) SetLDAPServers(n int) {
	ap.mu.Lock()
	defer ap.mu.Unlock()
	if n <= 0 || ap.serviceTime == 0 {
		ap.tokens = nil
		return
	}
	t := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		t <- struct{}{}
	}
	ap.tokens = t
}

// acquire blocks until an LDAP server slot is free, then simulates
// the per-op service time.
func (ap *AccessPoint) acquire(ctx context.Context) (release func(), err error) {
	ap.mu.Lock()
	tokens := ap.tokens
	ap.mu.Unlock()
	if tokens == nil {
		return func() {}, nil
	}
	select {
	case <-tokens:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return func() {
		time.AfterFunc(ap.serviceTime, func() { tokens <- struct{}{} })
	}, nil
}

// handle is the PoA's simnet handler.
func (ap *AccessPoint) handle(ctx context.Context, from simnet.Addr, msg any) (any, error) {
	release, err := ap.acquire(ctx)
	if err != nil {
		return nil, err
	}
	defer release()

	start := time.Now()
	var resp any
	var traceID string
	switch m := msg.(type) {
	case ExecReq:
		if m.Trace.Sampled {
			traceID = m.Trace.Trace.String()
		}
		resp, err = ap.exec(ctx, m)
	case ProvisionReq:
		resp, err = ap.provision(ctx, m)
	case DeprovisionReq:
		resp, err = ap.deprovision(ctx, m)
	case LocateReq:
		var p locator.Placement
		p, err = ap.locate(ctx, m.Identity)
		resp = LocateResp{Placement: p}
	default:
		err = fmt.Errorf("core: PoA got unexpected %T", msg)
	}
	if err != nil {
		ap.Failed.Inc()
		return nil, err
	}
	ap.Served.Inc()
	d := time.Since(start)
	ap.Latency.Record(d)
	if traceID != "" {
		// Exemplar: link this latency bucket to the concrete trace
		// that paid it, so a p99 spike on the scrape resolves to a
		// span tree.
		ap.Latency.SetExemplar(d, traceID)
	}
	return resp, nil
}

// locate resolves an identity through the site-local stage.
func (ap *AccessPoint) locate(ctx context.Context, id subscriber.Identity) (locator.Placement, error) {
	stage := ap.u.Stage(ap.site)
	if stage == nil {
		return locator.Placement{}, errors.New("core: no location stage at " + ap.site)
	}
	return stage.Lookup(ctx, id)
}

// exec routes a transaction per the paper's policy table:
//
//	read-only + FE  → nearest replica (slave reads allowed, §3.3.2),
//	                  fall back across replicas on failure (reads
//	                  survive partitions that strand the master);
//	read-only + PS  → master only (§3.3.3);
//	writes          → master only (§3.2); in multi-master mode (§5)
//	                  nearest replica.
func (ap *AccessPoint) exec(ctx context.Context, req ExecReq) (ExecResp, error) {
	if tr := ap.u.Tracer(); tr != nil && req.Trace.Valid() {
		span := tr.StartChild(req.Trace, "poa.exec", string(ap.addr))
		req.Trace = span.Ctx()
		// In-process propagation: the locator stage reads the context
		// to hang its lookup span under poa.exec. Sampled only — the
		// locator records nothing otherwise, and context injection is
		// the one allocation on this path.
		if req.Trace.Sampled {
			ctx = trace.NewContext(ctx, span.Ctx())
		}
		resp, err := ap.execInner(ctx, req)
		span.End(err)
		return resp, err
	}
	return ap.execInner(ctx, req)
}

func (ap *AccessPoint) execInner(ctx context.Context, req ExecReq) (ExecResp, error) {
	cacheable := ap.cacheableRead(req)
	if cacheable && !req.cacheChecked {
		if key, ok := cacheLookupKey(ap.cache, req); ok {
			v, st := ap.cacheProbe(req.Trace, key)
			if st == fecache.Hit {
				return cachedResp(ap.addr, key, v), nil
			}
			req.cacheChecked = true
		}
	}
	partID := req.Partition
	subID := req.SubscriberID
	switch {
	case subID != "" && partID == "":
		// DN-addressed access: the subscription ID is itself an
		// index in the location maps.
		p, err := ap.locate(ctx, subscriber.Identity{Type: subscriber.UID, Value: subID})
		if err != nil {
			return ExecResp{}, err
		}
		partID = p.Partition
	case subID == "":
		p, err := ap.locate(ctx, req.Identity)
		if err != nil {
			return ExecResp{}, err
		}
		subID, partID = p.SubscriberID, p.Partition
	}
	// Rewrite op keys: clients address ops by subscriber; the keys
	// are already subscriber IDs, so nothing to translate — but we
	// validate emptiness here once.
	for i := range req.Ops {
		if req.Ops[i].Key == "" {
			req.Ops[i].Key = subID
		}
	}

	if cacheable && !req.cacheChecked {
		// The identity had no cache alias before locate resolved it;
		// probe once more by primary key before going remote.
		v, st := ap.cacheProbe(req.Trace, subID)
		if st == fecache.Hit {
			return cachedResp(ap.addr, subID, v), nil
		}
		req.cacheChecked = true
	}
	// An epoch-guarded key (resident entry whose floor predates the
	// current placement epoch) must read master-direct: CSNs are not
	// comparable across a master change, so neither a slave response
	// nor a re-fill can be validated against the old floor.
	guarded := cacheable && ap.cache.Peek(subID) == fecache.Guarded

	// Placement-refresh loop: a request that races a migration
	// cutover or failover gets a stale-placement referral from the
	// demoted master (or a read-only refusal from a commit that
	// parked on the cutover freeze). Both mean "your placement is
	// stale, not unavailable": re-read the partition table — the
	// cutover flipped it atomically with the epoch — and retry.
	const maxPlacementRefresh = 4
	var lastErr error
	for attempt := 0; attempt < maxPlacementRefresh; attempt++ {
		part, ok := ap.u.Partition(partID)
		if !ok {
			// A placement pointing at a partition the table no longer
			// knows is stale forever: evict it so the next lookup
			// re-resolves instead of replaying the dead mapping.
			if stage := ap.u.Stage(ap.site); stage != nil {
				stage.InvalidatePartition(partID)
			}
			return ExecResp{}, fmt.Errorf("core: unknown partition %q", partID)
		}
		targets := ap.orderTargets(part, req, guarded)
		txn := se.TxnReq{Partition: partID, Iso: store.ReadCommitted,
			Ops: req.Ops, Tag: req.Tag, Epoch: part.Epoch,
			ReturnPostImage: ap.cache != nil && !req.ReadOnly,
			Trace:           req.Trace}

		referred := false
		for _, ref := range targets {
			raw, err := ap.u.net.Call(ctx, ap.addr, ref.Addr, txn)
			if err != nil {
				lastErr = err
				if errors.Is(err, se.ErrStalePlacement) || errors.Is(err, store.ErrReadOnly) {
					referred = true
					break
				}
				continue
			}
			resp, ok := raw.(se.TxnResp)
			if !ok {
				return ExecResp{}, fmt.Errorf("core: unexpected SE response %T", raw)
			}
			fromMaster := resp.Role == store.Master
			if cacheable && !guarded && len(resp.Results) == 1 {
				r0 := resp.Results[0]
				if !fromMaster {
					if fl := ap.cache.Floor(subID); fl > 0 && (!r0.Found || r0.Meta.CSN < fl) {
						// The slave is behind what this PoA already
						// served or committed for the key; try the
						// next replica rather than regress.
						ap.cache.RecordStaleReject()
						lastErr = errStaleRead
						continue
					}
				}
				ap.cache.Fill(partID, part.Epoch, ref.Element, fromMaster,
					subID, r0.Entry, r0.Meta, r0.Found)
			}
			if ap.cache != nil && !req.ReadOnly {
				ap.writeThrough(partID, part.Epoch, req.Ops, resp)
			}
			return ExecResp{
				Results:      resp.Results,
				CSN:          resp.CSN,
				ServedBy:     ref.Addr,
				Role:         resp.Role,
				Partition:    partID,
				SubscriberID: subID,
			}, nil
		}
		if referred {
			// Let the in-flight cutover settle before re-reading the
			// table; the freeze window is bounded.
			time.Sleep(200 * time.Microsecond)
			continue
		}
		if len(targets) == 1 {
			return ExecResp{}, fmt.Errorf("%w: %v", ErrMasterUnreachable, lastErr)
		}
		return ExecResp{}, fmt.Errorf("%w: %v", ErrNoReplica, lastErr)
	}
	return ExecResp{}, fmt.Errorf("%w: %v", ErrMasterUnreachable, lastErr)
}

// orderTargets returns the replicas to try, in order.
func (ap *AccessPoint) orderTargets(part Partition, req ExecReq, guarded bool) []ReplicaRef {
	master := part.Replicas[0]
	slaveReadsOK := req.ReadOnly && req.Policy == PolicyFE && ap.u.cfg.FESlaveReads

	if ap.u.cfg.MultiMaster && !req.ReadOnly {
		// Multi-master: prefer the co-located replica for writes,
		// then the rest (availability over consistency, §5).
		return ap.nearestFirst(part.Replicas)
	}
	if guarded {
		// Cross-epoch guard: master only, no fallbacks — a stale
		// slave could silently regress below the old-lineage floor.
		return []ReplicaRef{master}
	}
	if slaveReadsOK {
		if ap.cacheableRead(req) {
			return ap.cacheTargets(part)
		}
		// Nearest replica first (a co-located slave turns a
		// backbone round trip into a LAN one, §3.3.2), then the
		// remaining replicas as fallbacks.
		return ap.nearestFirst(part.Replicas)
	}
	// Master only: writes (§3.2) and every PS operation (§3.3.3).
	return []ReplicaRef{master}
}

// cacheTargets orders replicas for a cacheable read miss: co-located
// replicas that are safe fill sources — the master, or slaves the
// cache has observed applying the current lineage ("warm") — rotated
// when FECacheSlaveLB spreads hot-key misses; master-first when no
// local replica is safe (cold cache after an epoch bump); then the
// remaining replicas as reachability fallbacks, whose responses the
// caller still validates against the key's staleness floor.
func (ap *AccessPoint) cacheTargets(part Partition) []ReplicaRef {
	master := part.Replicas[0]
	var pref []ReplicaRef
	for _, r := range part.Replicas {
		if r.Site != ap.site {
			continue
		}
		if r.Element == master.Element || ap.cache.Warm(part.ID, r.Element) {
			pref = append(pref, r)
		}
	}
	if len(pref) == 0 {
		pref = append(pref, master)
	} else if len(pref) > 1 && ap.u.cfg.FECacheSlaveLB {
		off := int(ap.lbSeq.Add(1)) % len(pref)
		rot := make([]ReplicaRef, 0, len(pref))
		rot = append(rot, pref[off:]...)
		pref = append(rot, pref[:off]...)
	}
	out := pref
	seen := make(map[string]bool, len(part.Replicas))
	for _, r := range pref {
		seen[r.Element] = true
	}
	for _, r := range ap.nearestFirst(part.Replicas) {
		if !seen[r.Element] {
			seen[r.Element] = true
			out = append(out, r)
		}
	}
	return out
}

// cacheProbe is Lookup plus an optional cache.probe span when the
// request carries a sampled trace context.
func (ap *AccessPoint) cacheProbe(tc trace.Ctx, key string) (fecache.Value, fecache.LookupState) {
	if tc.Sampled {
		if tr := ap.u.Tracer(); tr != nil {
			span := tr.StartChild(tc, "cache.probe", string(ap.addr))
			v, st := ap.cache.Lookup(key)
			span.SetAttr("status", st.String())
			span.End(nil)
			return v, st
		}
	}
	return ap.cache.Lookup(key)
}

// errStaleRead marks a slave response rejected for being below the
// PoA's staleness floor for the key.
var errStaleRead = errors.New("core: slave response below the PoA staleness floor")

// cacheableRead reports whether the FE cache can serve or fill this
// request: a single-Get front-end read. PS reads stay master-only by
// policy, and multi-op transactions are not worth caching.
func (ap *AccessPoint) cacheableRead(req ExecReq) bool {
	return ap.cache != nil && req.ReadOnly && req.Policy == PolicyFE &&
		len(req.Ops) == 1 && req.Ops[0].Kind == se.TxnGet
}

// writeThrough pushes this PoA's committed post-images into the cache
// so the next read of the written subscriber — any local client's —
// is served fresh without a round trip.
func (ap *AccessPoint) writeThrough(part string, epoch uint64, ops []se.TxnOp, resp se.TxnResp) {
	for i, op := range ops {
		if i >= len(resp.Results) {
			return
		}
		switch op.Kind {
		case se.TxnPut, se.TxnModify, se.TxnDelete:
			res := resp.Results[i]
			if res.Meta.CSN == 0 {
				continue // element did not return the post-image
			}
			ap.cache.WriteThrough(part, epoch, op.Key, res.Entry, res.Meta, res.Meta.Tombstone)
		}
	}
}

// cacheLookupKey resolves the primary key a cacheable read addresses:
// directly via SubscriberID or the op key, or through the cache's
// secondary-identity aliases.
func cacheLookupKey(c *fecache.Cache, req ExecReq) (string, bool) {
	if req.SubscriberID != "" {
		return req.SubscriberID, true
	}
	if len(req.Ops) == 1 && req.Ops[0].Key != "" {
		return req.Ops[0].Key, true
	}
	id := req.Identity
	if id.Value == "" {
		return "", false
	}
	if id.Type == subscriber.UID {
		return id.Value, true
	}
	if attr := identityAttr(id.Type); attr != "" {
		return c.ResolveIdentity(attr, id.Value)
	}
	return "", false
}

// identityAttr maps an identity type to the entry attribute indexed
// for it (empty for UID, which is the primary key itself).
func identityAttr(t subscriber.IdentityType) string {
	switch t {
	case subscriber.IMSI:
		return subscriber.AttrIMSI
	case subscriber.MSISDN:
		return subscriber.AttrMSISDN
	case subscriber.IMPI:
		return subscriber.AttrIMPI
	case subscriber.IMPU:
		return subscriber.AttrIMPU
	}
	return ""
}

// cachedResp shapes a cache hit as a normal ExecResp carrying the
// Cached role, so clients and the consistency checkers can account
// for cache-served reads.
func cachedResp(servedBy simnet.Addr, key string, v fecache.Value) ExecResp {
	return ExecResp{
		Results:      []se.OpResult{{Entry: v.Entry, Meta: v.Meta, Found: v.Found}},
		CSN:          v.Meta.CSN,
		ServedBy:     servedBy,
		Role:         store.Cached,
		Partition:    v.Part,
		SubscriberID: key,
	}
}

// nearestFirst orders replicas: co-located with this PoA first, then
// master, then the rest.
func (ap *AccessPoint) nearestFirst(replicas []ReplicaRef) []ReplicaRef {
	out := make([]ReplicaRef, 0, len(replicas))
	for _, r := range replicas {
		if r.Site == ap.site {
			out = append(out, r)
		}
	}
	for _, r := range replicas {
		if r.Site != ap.site {
			out = append(out, r)
		}
	}
	return out
}

// provision creates the subscription row on the chosen partition's
// master and updates the identity-location maps (§2.4: in a UDC
// network the PS writes one single place, transactionally).
func (ap *AccessPoint) provision(ctx context.Context, req ProvisionReq) (ProvisionResp, error) {
	p := req.Profile
	partID := req.PartitionHint
	if partID == "" {
		var err error
		partID, err = ap.u.choosePartition(p.HomeRegion)
		if err != nil {
			return ProvisionResp{}, err
		}
	}
	part, ok := ap.u.Partition(partID)
	if !ok {
		return ProvisionResp{}, fmt.Errorf("core: unknown partition %q", partID)
	}

	txn := se.TxnReq{
		Partition: partID,
		Iso:       store.ReadCommitted,
		Ops:       []se.TxnOp{{Kind: se.TxnPut, Key: p.ID, Entry: p.ToEntry()}},
	}
	target := part.Master()
	if ap.u.cfg.MultiMaster {
		target = ap.nearestFirst(part.Replicas)[0]
	}
	if _, err := ap.u.net.Call(ctx, ap.addr, target.Addr, txn); err != nil {
		return ProvisionResp{}, fmt.Errorf("%w: %v", ErrMasterUnreachable, err)
	}

	failures := ap.updateLocators(ctx, p.Identities(),
		locator.Placement{SubscriberID: p.ID, Partition: partID}, false)
	return ProvisionResp{Partition: partID, LocatorUpdateFailures: failures}, nil
}

// deprovision deletes the subscription row and its map entries.
func (ap *AccessPoint) deprovision(ctx context.Context, req DeprovisionReq) (DeprovisionResp, error) {
	// Read the profile first (master copy: this is PS traffic) so we
	// know every identity to unmap.
	exec, err := ap.exec(ctx, ExecReq{
		SubscriberID: req.SubscriberID,
		Ops:          []se.TxnOp{{Kind: se.TxnGet, Key: req.SubscriberID}},
		Policy:       PolicyPS,
		ReadOnly:     true,
	})
	if err != nil {
		return DeprovisionResp{}, err
	}
	if !exec.Results[0].Found {
		return DeprovisionResp{}, fmt.Errorf("%w: %s", ErrUnknownSubscriber, req.SubscriberID)
	}
	prof, err := subscriber.FromEntry(exec.Results[0].Entry)
	if err != nil {
		return DeprovisionResp{}, err
	}
	if _, err := ap.exec(ctx, ExecReq{
		SubscriberID: req.SubscriberID,
		Partition:    exec.Partition,
		Ops:          []se.TxnOp{{Kind: se.TxnDelete, Key: req.SubscriberID}},
		Policy:       PolicyPS,
	}); err != nil {
		return DeprovisionResp{}, err
	}
	failures := ap.updateLocators(ctx, prof.Identities(), locator.Placement{}, true)
	return DeprovisionResp{LocatorUpdateFailures: failures}, nil
}

// updateLocators updates every site's identity-location maps. The
// local stage updates in-process; remote stages are updated over the
// backbone and may fail during partitions (counted, not fatal:
// §3.4.2's availability consequence of state-full maps).
func (ap *AccessPoint) updateLocators(ctx context.Context, ids []subscriber.Identity, placement locator.Placement, remove bool) (failures int) {
	if ap.u.cfg.LocatorMode != locator.Provisioned {
		// Cached stages learn on the fly; prime only the local one.
		if stage := ap.u.Stage(ap.site); stage != nil {
			if remove {
				stage.RemoveProfile(ids)
			} else {
				stage.PutProfile(ids, placement)
			}
		}
		return 0
	}
	for _, site := range ap.u.Sites() {
		stage := ap.u.Stage(site)
		if stage == nil {
			continue
		}
		if site == ap.site {
			if remove {
				stage.RemoveProfile(ids)
			} else {
				stage.PutProfile(ids, placement)
			}
			continue
		}
		// Remote map update rides the backbone: model it as one
		// network call to the remote locator endpoint. A dedicated
		// message type keeps the stage handler small.
		msg := locatorUpdate{IDs: ids, Placement: placement, Remove: remove}
		if _, err := ap.u.net.Call(ctx, ap.addr, simnet.MakeAddr(site, "locator"), msg); err != nil {
			failures++
		}
	}
	return failures
}

// locatorUpdate is the provisioning-driven map update message.
type locatorUpdate struct {
	IDs       []subscriber.Identity
	Placement locator.Placement
	Remove    bool
}

// locatorUpdateAck acknowledges a locatorUpdate.
type locatorUpdateAck struct{}
