// Package core assembles the UDR NF — the paper's contribution: a
// geo-distributed, RAM-resident, partitioned subscriber database with
// master/slave replication, per-site points of access with local data
// location stages, and the CAP/PACELC policy knobs of §3–§5.
//
// A UDR instance owns:
//
//   - one blade cluster per site, hosting storage elements and LDAP
//     server capacity (internal/cluster, internal/se),
//   - one data location stage per site (internal/locator),
//   - one AccessPoint (PoA) per site, the endpoint front-ends and the
//     provisioning system talk to,
//   - the partition table: every partition has a home site, a master
//     replica and R-1 geographically disperse slave replicas (§3.1).
//
// The CAP-relevant design decisions are runtime policy:
//
//   - front-end transactions may read slave copies (§3.3.2) — fast
//     but possibly stale (PA/EL);
//   - provisioning transactions read master copies only (§3.3.3) and
//     need the master reachable to write — consistent but
//     partition-fragile (PC/EC);
//   - replication durability is tunable per §5 (async, dual-
//     in-sequence, sync-all);
//   - multi-master mode (§5) lifts the master-only write rule and
//     adds version-vector merge with post-partition restoration.
package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/antientropy"
	"repro/internal/cluster"
	"repro/internal/fecache"
	"repro/internal/locator"
	"repro/internal/metrics"
	"repro/internal/rebalance"
	"repro/internal/replication"
	"repro/internal/se"
	"repro/internal/simnet"
	"repro/internal/store"
	"repro/internal/subscriber"
	"repro/internal/trace"
	"repro/internal/wal"
)

// Errors surfaced to UDR clients.
var (
	// ErrMasterUnreachable reports a write (or PS read) that could
	// not reach the partition master: the paper's
	// consistency-over-availability outcome on a partition (§3.2).
	ErrMasterUnreachable = errors.New("core: partition master unreachable")
	// ErrNoReplica reports a read that could not reach any replica.
	ErrNoReplica = errors.New("core: no replica reachable")
	// ErrUnknownSubscriber reports a failed identity resolution.
	ErrUnknownSubscriber = errors.New("core: unknown subscriber")
	// ErrNoCapacity reports placement failure at provisioning time.
	ErrNoCapacity = errors.New("core: no partition with spare capacity in requested region")
	// ErrMigrationInFlight reports a second migration requested for a
	// partition whose move has not finished.
	ErrMigrationInFlight = errors.New("core: partition migration already in flight")
	// ErrUnknownPartition reports a control-plane request naming a
	// partition absent from the table.
	ErrUnknownPartition = errors.New("core: unknown partition")
	// ErrUnknownElement reports a control-plane request naming a
	// storage element this UDR does not host.
	ErrUnknownElement = errors.New("core: unknown element")
)

// Policy identifies the client class, which selects the paper's
// per-class routing rules.
type Policy int

const (
	// PolicyFE is an application front-end: read-mostly, slave reads
	// allowed (§3.3.2) — PA/EL.
	PolicyFE Policy = iota
	// PolicyPS is the provisioning system: master-copy reads only
	// (§3.3.3) — PC/EC.
	PolicyPS
)

// String returns the policy name.
func (p Policy) String() string {
	if p == PolicyPS {
		return "PS"
	}
	return "FE"
}

// SiteSpec sizes one site of the UDR.
type SiteSpec struct {
	// Name is the site (and region) name.
	Name string
	// SEs is the number of storage elements.
	SEs int
	// PartitionsPerSE is how many home partitions each SE masters.
	PartitionsPerSE int
	// LDAPServers is the initial stateless LDAP server count behind
	// the PoA (0 disables the service-capacity model).
	LDAPServers int
	// Blades sizes the blade cluster (0 = 16).
	Blades int
}

// Config configures a UDR NF.
type Config struct {
	// Sites lists the deployment sites (one blade cluster each).
	Sites []SiteSpec
	// ReplicationFactor is copies per partition including the master
	// (the paper's SEs hold "one or two" secondaries; default 2).
	ReplicationFactor int
	// Durability is the default commit durability (§3.3.1: Async).
	Durability replication.Durability
	// QuorumPolicy configures the Quorum durability level (majority,
	// fixed count or site-aware). Zero value: majority of all copies.
	QuorumPolicy replication.QuorumPolicy
	// LocatorMode selects provisioned or cached location maps.
	LocatorMode locator.Mode
	// MultiMaster enables the §5 evolution.
	MultiMaster bool
	// FESlaveReads allows front-end reads on slave copies (§3.3.2,
	// default true; set false for the ablation bench).
	FESlaveReads bool
	// FECache enables the per-site FE/PoA subscriber read cache
	// (internal/fecache): repeat FE reads are served at the access
	// layer, invalidated by the replication-stream CSN, placement-epoch
	// bumps and local write-through. Off by default; experiments and
	// the chaos harness flip it explicitly.
	FECache bool
	// FECacheCapacity bounds entries per site cache (0 selects
	// fecache.DefaultCapacity). Eviction drops the per-key staleness
	// floor with the entry — capacity is a staleness-protection bound,
	// not just a memory bound.
	FECacheCapacity int
	// FECacheSlaveLB rotates cacheable read-through misses across the
	// co-located replicas the cache has proven warm, spreading hot-key
	// miss load off the master under the same bounded-staleness
	// contract (floors still reject regressions).
	FECacheSlaveLB bool
	// CapacityPerSE bounds subscribers per master partition store
	// (scaled stand-in for the 2M/SE limit); 0 = unbounded.
	CapacityPerSE int
	// WALDir enables disk persistence under WALDir/<element>/.
	WALDir string
	// WALMode selects periodic or sync-every-commit durability.
	WALMode wal.Mode
	// WALInterval is the periodic WAL flush interval.
	WALInterval time.Duration
	// CheckpointInterval, when non-zero, runs an incremental WAL
	// checkpoint (durable store image + log prefix prune) on every
	// storage element at this cadence. Requires WALDir.
	CheckpointInterval time.Duration
	// WALNoGroupCommit disables WAL fsync coalescing in
	// sync-every-commit mode (one fsync per commit, serialized): the
	// E18 baseline. Leave false for group commit.
	WALNoGroupCommit bool
	// LDAPServiceTime is the PoA's per-operation service time used
	// to model finite LDAP server capacity (E7); 0 disables.
	LDAPServiceTime time.Duration
	// AntiEntropy enables Merkle-digest replica repair (E16): every
	// replica keeps a hash tree over its rows; masters periodically
	// exchange digests with slaves and ship only divergent rows, and
	// each site's cluster watches for partition heals to trigger an
	// immediate repair round.
	AntiEntropy bool
	// RepairInterval is the periodic repair cadence; 0 disables the
	// periodic tick (repairs then run on heal detection and on
	// demand via RepairPartition / RepairAll / udrctl repair).
	RepairInterval time.Duration
	// RepairMaxRows caps row transfers per repair round per peer
	// (the backbone bandwidth cap); 0 = unlimited.
	RepairMaxRows int
	// HealPollInterval is the partition-heal detection poll cadence
	// (default 10ms at the compressed sim scale).
	HealPollInterval time.Duration
	// LegacyFindScan forces the storage elements' identity search
	// (the §3.5 cached-locator fallback) through the legacy
	// full-partition scan instead of the secondary identity index,
	// and disables index maintenance. E9/E17 use it to keep the scan
	// cost measurable.
	LegacyFindScan bool
	// RebalanceOnAddSite runs a rebalancing pass after a scale-out
	// site joins (§3.4.2), migrating master partitions onto the new
	// capacity so it takes load immediately instead of only serving
	// future subscribers. Off by default: E9 measures the bare join.
	RebalanceOnAddSite bool
	// RebalanceMaxMoves bounds one rebalancing pass (default 8).
	RebalanceMaxMoves int
	// RebalanceConcurrency caps concurrently executing moves in a
	// rebalancing pass (default 2; each move streams a partition over
	// the backbone).
	RebalanceConcurrency int
	// MigrateBatchRows bounds rows per migration bulk-copy round trip
	// (default 128).
	MigrateBatchRows int
	// MigrateCatchUpTimeout bounds a migration's catch-up phase
	// (default 2s).
	MigrateCatchUpTimeout time.Duration
	// MigrateFreezeTimeout bounds a migration's cutover write-freeze
	// (default 100ms): the client-visible blip ceiling E20 measures.
	MigrateFreezeTimeout time.Duration
	// Trace, when non-nil, wires end-to-end request tracing through
	// every layer built by New: the network's per-hop spans, each
	// element's transaction/commit/WAL/replication spans, each
	// location stage's lookup spans and the PoA's exec and cache
	// spans. Sampling policy lives in the recorder (head rate plus
	// slow/error tail capture); a nil recorder costs nothing.
	Trace *trace.Recorder
}

// DefaultConfig returns the paper's baseline: three sites (the
// Figure 2 layout), one SE per site each mastering one partition,
// replication factor 3 (every SE also carries the other two
// partitions as slaves), async replication, provisioned maps, FE
// slave reads on.
func DefaultConfig() Config {
	return Config{
		Sites: []SiteSpec{
			{Name: "eu-south", SEs: 1, PartitionsPerSE: 1},
			{Name: "eu-north", SEs: 1, PartitionsPerSE: 1},
			{Name: "americas", SEs: 1, PartitionsPerSE: 1},
		},
		ReplicationFactor: 3,
		Durability:        replication.Async,
		LocatorMode:       locator.Provisioned,
		FESlaveReads:      true,
	}
}

// ReplicaRef names one replica of a partition.
type ReplicaRef struct {
	Element string
	Site    string
	Addr    simnet.Addr
}

// Partition is one entry of the partition table. Replicas[0] is the
// current master.
type Partition struct {
	ID       string
	HomeSite string
	Replicas []ReplicaRef
	// Epoch is the placement epoch: bumped at every master change
	// (failover, migration cutover) and pushed to the hosting
	// elements, so a request routed under a stale placement gets a
	// retryable referral instead of landing on a demoted master.
	Epoch uint64
}

// Master returns the current master replica.
func (p *Partition) Master() ReplicaRef { return p.Replicas[0] }

// UDR is one User Data Repository network function.
type UDR struct {
	net *simnet.Network
	cfg Config

	mu       sync.RWMutex
	sites    []string
	clusters map[string]*cluster.Cluster
	elements map[string]*se.Element
	stages   map[string]*locator.Stage
	poas     map[string]*AccessPoint
	parts    map[string]*Partition
	partIDs  []string
	// rr tracks round-robin placement per home site.
	rr map[string]int
	// migrating marks partitions with a move in flight, tracking the
	// phase the move last reported (the /status and metrics view).
	migrating map[string]rebalance.Phase

	// obsReg is the metrics registry RegisterMetrics installed, if
	// any; AddSite re-runs the attach pass against it so new sites'
	// histograms are exported too.
	obsReg *metrics.Registry

	seq int // element numbering for scale-out
}

// New builds and wires a UDR NF on the given network.
func New(net *simnet.Network, cfg Config) (*UDR, error) {
	if cfg.ReplicationFactor == 0 {
		cfg.ReplicationFactor = 2
	}
	if len(cfg.Sites) == 0 {
		return nil, errors.New("core: no sites configured")
	}
	u := &UDR{
		net:       net,
		cfg:       cfg,
		clusters:  make(map[string]*cluster.Cluster),
		elements:  make(map[string]*se.Element),
		stages:    make(map[string]*locator.Stage),
		poas:      make(map[string]*AccessPoint),
		parts:     make(map[string]*Partition),
		rr:        make(map[string]int),
		migrating: make(map[string]rebalance.Phase),
	}
	if cfg.Trace != nil {
		net.SetTracer(cfg.Trace)
	}
	// All bootstrap sites start with ready (empty) location stages;
	// only scale-out sites added later must sync before serving
	// (§3.4.2).
	for _, spec := range cfg.Sites {
		if err := u.buildSite(spec, true); err != nil {
			return nil, err
		}
	}
	if err := u.assignPartitions(cfg.Sites); err != nil {
		return nil, err
	}
	return u, nil
}

// buildSite creates the cluster, SEs, location stage and PoA of one
// site. first marks the bootstrap site whose provisioned stage starts
// ready.
func (u *UDR) buildSite(spec SiteSpec, first bool) error {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.buildSiteLocked(spec, first)
}

func (u *UDR) buildSiteLocked(spec SiteSpec, primed bool) error {
	if spec.SEs == 0 {
		spec.SEs = 1
	}
	if spec.PartitionsPerSE == 0 {
		spec.PartitionsPerSE = 1
	}
	site := spec.Name
	if _, dup := u.clusters[site]; dup {
		return fmt.Errorf("core: duplicate site %q", site)
	}
	u.net.AddSite(site)

	cl := cluster.New(cluster.Config{Site: site, Blades: spec.Blades})
	u.clusters[site] = cl
	if u.cfg.AntiEntropy {
		// OSS-side heal detection: the moment the backbone heals,
		// kick an immediate repair round on this site's elements
		// instead of waiting for the next periodic tick.
		cl.StartHealWatch(u.net, u.cfg.HealPollInterval, func(string) {
			u.kickSiteRepairs(site)
		})
	}
	if spec.LDAPServers > 0 {
		if _, err := cl.AddLDAPServers(spec.LDAPServers); err != nil {
			return err
		}
	}

	for i := 0; i < spec.SEs; i++ {
		u.seq++
		cfg := se.Config{
			ID:                   fmt.Sprintf("se-%s-%d", site, i),
			Site:                 site,
			CapacityPerPartition: u.cfg.CapacityPerSE,
			WALMode:              u.cfg.WALMode,
			WALInterval:          u.cfg.WALInterval,
			WALNoGroupCommit:     u.cfg.WALNoGroupCommit,
			CheckpointInterval:   u.cfg.CheckpointInterval,
			AntiEntropy:          u.cfg.AntiEntropy,
			RepairInterval:       u.cfg.RepairInterval,
			RepairMaxRows:        u.cfg.RepairMaxRows,
			LegacyFindScan:       u.cfg.LegacyFindScan,
		}
		if u.cfg.WALDir != "" {
			cfg.WALDir = u.cfg.WALDir + "/" + cfg.ID
		}
		el := se.New(u.net, cfg)
		if u.cfg.Trace != nil {
			el.SetTracer(u.cfg.Trace)
		}
		if err := cl.HostSE(el); err != nil {
			return err
		}
		u.elements[el.ID()] = el
	}

	stage := locator.NewStage(site, u.cfg.LocatorMode, primed)
	if u.cfg.Trace != nil {
		stage.SetTracer(u.cfg.Trace)
	}
	if u.cfg.LocatorMode == locator.Cached {
		stage.SetMissResolver(u.missResolver(site))
	}
	u.stages[site] = stage
	u.net.Register(simnet.MakeAddr(site, "locator"),
		func(ctx context.Context, from simnet.Addr, msg any) (any, error) {
			if upd, ok := msg.(locatorUpdate); ok {
				if upd.Remove {
					stage.RemoveProfile(upd.IDs)
				} else {
					stage.PutProfile(upd.IDs, upd.Placement)
				}
				return locatorUpdateAck{}, nil
			}
			resp, handled, err := stage.HandleMessage(ctx, from, msg)
			if !handled {
				return nil, fmt.Errorf("core: locator got unexpected %T", msg)
			}
			return resp, err
		})

	poa := newAccessPoint(u, site, spec.LDAPServers)
	if u.cfg.FECache {
		cache := fecache.New(site, u.cfg.FECacheCapacity)
		poa.cache = cache
		// Every commit a site element installs — local commit or
		// replicated apply — feeds the cache's freshness tracking
		// under the element's current placement epoch for the
		// partition.
		for _, el := range u.siteElementsLocked(site) {
			el := el
			el.SetInstallObserver(func(part string, rec *store.CommitRecord) {
				cache.Observe(part, el.ID(), el.PartitionEpoch(part), rec)
			})
		}
	}
	u.poas[site] = poa
	u.net.Register(simnet.MakeAddr(site, "poa"), poa.handle)

	u.sites = append(u.sites, site)
	sort.Strings(u.sites)
	return nil
}

// assignPartitions creates every site's home partitions and wires
// replication to slave replicas on the following sites (ring order),
// reproducing the Figure 2 placement.
func (u *UDR) assignPartitions(specs []SiteSpec) error {
	u.mu.Lock()
	defer u.mu.Unlock()
	for _, spec := range specs {
		if err := u.assignSitePartitionsLocked(spec); err != nil {
			return err
		}
	}
	return nil
}

func (u *UDR) assignSitePartitionsLocked(spec SiteSpec) error {
	site := spec.Name
	if spec.SEs == 0 {
		spec.SEs = 1
	}
	if spec.PartitionsPerSE == 0 {
		spec.PartitionsPerSE = 1
	}
	siteSEs := u.siteElementsLocked(site)
	if len(siteSEs) == 0 {
		return fmt.Errorf("core: site %q has no storage elements", site)
	}

	total := spec.SEs * spec.PartitionsPerSE
	for i := 0; i < total; i++ {
		partID := fmt.Sprintf("p-%s-%d", site, i)
		masterEl := siteSEs[i%len(siteSEs)]
		part := &Partition{ID: partID, HomeSite: site}

		masterRep, err := masterEl.AddReplica(partID, store.Master)
		if err != nil {
			return err
		}
		part.Replicas = append(part.Replicas, ReplicaRef{
			Element: masterEl.ID(), Site: site, Addr: masterEl.Addr(),
		})

		// Slaves on the next sites in ring order: geographically
		// disperse copies (§3.1 decision 2).
		slaveAddrs := make([]simnet.Addr, 0, u.cfg.ReplicationFactor-1)
		idx := indexOf(u.sites, site)
		for k := 1; k < u.cfg.ReplicationFactor && k < len(u.sites); k++ {
			slaveSite := u.sites[(idx+k)%len(u.sites)]
			slaveSEs := u.siteElementsLocked(slaveSite)
			if len(slaveSEs) == 0 {
				continue
			}
			slaveEl := slaveSEs[i%len(slaveSEs)]
			slaveRep, err := slaveEl.AddReplica(partID, store.Slave)
			if err != nil {
				return err
			}
			if u.cfg.MultiMaster {
				slaveRep.Store.SetMultiMaster(true)
				slaveRep.Repl.SetResolver(replication.SubscriberMerge{})
			}
			part.Replicas = append(part.Replicas, ReplicaRef{
				Element: slaveEl.ID(), Site: slaveSite, Addr: slaveEl.Addr(),
			})
			slaveAddrs = append(slaveAddrs, slaveEl.Addr())
		}

		masterRep.Repl.SetQuorumPolicy(u.cfg.QuorumPolicy)
		masterRep.Repl.SetDurability(u.cfg.Durability)
		if u.cfg.MultiMaster {
			masterRep.Store.SetMultiMaster(true)
			masterRep.Repl.SetResolver(replication.SubscriberMerge{})
			// In multi-master mode every replica ships to every
			// other replica.
			for _, ref := range part.Replicas {
				el := u.elements[ref.Element]
				rep := el.Replica(partID)
				var peers []simnet.Addr
				for _, other := range part.Replicas {
					if other.Addr != ref.Addr {
						peers = append(peers, other.Addr)
					}
				}
				rep.Repl.SetPeers(peers...)
			}
		} else {
			masterRep.Repl.SetPeers(slaveAddrs...)
		}

		part.Epoch = 1
		u.pushEpochLocked(part)
		u.parts[partID] = part
		u.partIDs = append(u.partIDs, partID)
	}
	sort.Strings(u.partIDs)
	return nil
}

// pushEpochLocked installs a partition's current placement epoch on
// every element hosting one of its replicas. The push is an
// in-process OSS action (like Failover's promote), so it reaches even
// elements the backbone has partitioned away.
func (u *UDR) pushEpochLocked(part *Partition) {
	for _, ref := range part.Replicas {
		if el := u.elements[ref.Element]; el != nil {
			el.SetPartitionEpoch(part.ID, part.Epoch)
		}
	}
	// Every site's FE cache learns the bump, not just replica sites:
	// any PoA may hold entries for the partition, and CSNs are not
	// comparable across the master change.
	for _, poa := range u.poas {
		if poa.cache != nil {
			poa.cache.OnEpochBump(part.ID, part.Epoch)
		}
	}
}

func indexOf(list []string, s string) int {
	for i, v := range list {
		if v == s {
			return i
		}
	}
	return -1
}

func (u *UDR) siteElementsLocked(site string) []*se.Element {
	var out []*se.Element
	for _, el := range u.elements {
		if el.Site() == site {
			out = append(out, el)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID() < out[j].ID() })
	return out
}

// Net returns the underlying network.
func (u *UDR) Net() *simnet.Network { return u.net }

// Config returns the configuration (a copy).
func (u *UDR) Config() Config { return u.cfg }

// Tracer returns the configured span recorder (nil when tracing is
// off).
func (u *UDR) Tracer() *trace.Recorder { return u.cfg.Trace }

// Sites lists deployment sites, sorted.
func (u *UDR) Sites() []string {
	u.mu.RLock()
	defer u.mu.RUnlock()
	return append([]string(nil), u.sites...)
}

// PoAAddr returns the PoA address at a site.
func (u *UDR) PoAAddr(site string) simnet.Addr { return simnet.MakeAddr(site, "poa") }

// Partitions lists partition IDs, sorted.
func (u *UDR) Partitions() []string {
	u.mu.RLock()
	defer u.mu.RUnlock()
	return append([]string(nil), u.partIDs...)
}

// Partition returns a copy of a partition-table entry.
func (u *UDR) Partition(id string) (Partition, bool) {
	u.mu.RLock()
	defer u.mu.RUnlock()
	p, ok := u.parts[id]
	if !ok {
		return Partition{}, false
	}
	cp := *p
	cp.Replicas = append([]ReplicaRef(nil), p.Replicas...)
	return cp, true
}

// Element returns a hosted storage element by ID.
func (u *UDR) Element(id string) *se.Element {
	u.mu.RLock()
	defer u.mu.RUnlock()
	return u.elements[id]
}

// Elements lists hosted element IDs, sorted.
func (u *UDR) Elements() []string {
	u.mu.RLock()
	defer u.mu.RUnlock()
	out := make([]string, 0, len(u.elements))
	for id := range u.elements {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Stage returns a site's location stage.
func (u *UDR) Stage(site string) *locator.Stage {
	u.mu.RLock()
	defer u.mu.RUnlock()
	return u.stages[site]
}

// PoA returns a site's access point.
func (u *UDR) PoA(site string) *AccessPoint {
	u.mu.RLock()
	defer u.mu.RUnlock()
	return u.poas[site]
}

// Cluster returns a site's blade cluster.
func (u *UDR) Cluster(site string) *cluster.Cluster {
	u.mu.RLock()
	defer u.mu.RUnlock()
	return u.clusters[site]
}

// missResolver builds the cached-locator fan-out: ask every element
// (nearest site first) whether it masters the identity (§3.5).
func (u *UDR) missResolver(site string) locator.MissResolver {
	self := simnet.MakeAddr(site, "locator-miss")
	return func(ctx context.Context, id subscriber.Identity) (locator.Placement, int, error) {
		u.mu.RLock()
		els := make([]*se.Element, 0, len(u.elements))
		for _, el := range u.elements {
			els = append(els, el)
		}
		u.mu.RUnlock()
		// Nearest-first: local site elements, then the rest sorted.
		sort.Slice(els, func(i, j int) bool {
			li, lj := els[i].Site() == site, els[j].Site() == site
			if li != lj {
				return li
			}
			return els[i].ID() < els[j].ID()
		})
		queried := 0
		for _, el := range els {
			queried++
			raw, err := u.net.Call(ctx, self, el.Addr(), se.FindReq{Identity: id})
			if err != nil {
				continue
			}
			resp, ok := raw.(se.FindResp)
			if ok && resp.Found {
				return locator.Placement{
					SubscriberID: resp.SubscriberID,
					Partition:    resp.Partition,
				}, queried, nil
			}
		}
		return locator.Placement{}, queried, fmt.Errorf("%w: %s", ErrUnknownSubscriber, id)
	}
}

// Failover promotes the most-caught-up reachable live slave of a
// partition to master (OSS-triggered repair after an SE failure) and
// returns the new master reference.
//
// Candidates are ranked by how many live slave peers their site can
// currently reach — the OSS never promotes into a network cut when a
// better-connected slave exists, because a master isolated with the
// failed one serves nobody. Reachability to the old master itself is
// deliberately not counted: being co-partitioned with the failure is
// what the failover routes around.
//
// Among equally connected candidates the highest applied CSN wins:
// the replication stream is CSN-ordered, so slave states are prefixes
// of the master's commit order and the most-caught-up slave holds a
// superset of every other slave. Under Quorum durability any
// quorum-acked commit was applied by at least one slave — promoting
// the most-caught-up one therefore preserves every quorum-acked write
// whenever any acking slave is still live (the contract E19's quorum
// column checks). Remaining ties keep the partition-table order, so
// the choice is deterministic.
func (u *UDR) Failover(partID string) (ReplicaRef, error) {
	u.mu.Lock()
	defer u.mu.Unlock()
	part, ok := u.parts[partID]
	if !ok {
		return ReplicaRef{}, fmt.Errorf("core: unknown partition %q", partID)
	}
	best := -1
	bestScore := -1
	var bestCSN uint64
	for i := 1; i < len(part.Replicas); i++ {
		ref := part.Replicas[i]
		el := u.elements[ref.Element]
		if el == nil || el.Down() {
			continue
		}
		pr := el.Replica(partID)
		if pr == nil {
			continue
		}
		score := 0
		for j := 1; j < len(part.Replicas); j++ {
			if j == i {
				continue
			}
			other := part.Replicas[j]
			if otherEl := u.elements[other.Element]; otherEl == nil || otherEl.Down() {
				continue
			}
			if !u.net.Partitioned(ref.Site, other.Site) {
				score++
			}
		}
		applied := pr.Store.AppliedCSN()
		if score > bestScore || (score == bestScore && applied > bestCSN) {
			best, bestScore, bestCSN = i, score, applied
		}
	}
	if best == -1 {
		return ReplicaRef{}, fmt.Errorf("core: partition %q has no live replica", partID)
	}
	ref := part.Replicas[best]
	el := u.elements[ref.Element]
	// Promote: the slave's commit sequence continues from its
	// replication high-water mark; transactions the old master
	// committed but had not replicated (or, under async, not even
	// shipped) are lost — the paper's durability gap (§3.3.1).
	var peers []simnet.Addr
	for j, other := range part.Replicas {
		if j != best {
			if otherEl := u.elements[other.Element]; otherEl != nil && !otherEl.Down() {
				peers = append(peers, other.Addr)
			}
		}
	}
	rep := el.Replica(partID).Repl
	rep.Promote(peers...)
	// The promoted replica was a slave, whose durability level was
	// never set: carry the configured level and quorum policy over so
	// post-failover commits keep the same contract.
	rep.SetQuorumPolicy(u.cfg.QuorumPolicy)
	rep.SetDurability(u.cfg.Durability)
	// Reorder the partition table: new master first. The master
	// moved, so the placement epoch advances and every replica
	// learns it — requests routed under the old placement now get
	// the retryable referral.
	part.Replicas[0], part.Replicas[best] = part.Replicas[best], part.Replicas[0]
	part.Epoch++
	u.pushEpochLocked(part)
	return part.Replicas[0], nil
}

// ReseedSlave bulk-copies the current master state of a partition
// into the replica hosted on element elID and re-attaches it to the
// master's replication stream. This models the OSS-driven restore of
// a repaired storage element.
func (u *UDR) ReseedSlave(partID, elID string) error {
	u.mu.Lock()
	defer u.mu.Unlock()
	part, ok := u.parts[partID]
	if !ok {
		return fmt.Errorf("core: unknown partition %q", partID)
	}
	masterEl := u.elements[part.Master().Element]
	targetEl := u.elements[elID]
	if masterEl == nil || targetEl == nil {
		return fmt.Errorf("core: unknown element")
	}
	masterRep := masterEl.Replica(partID)
	targetRep := targetEl.Replica(partID)
	if masterRep == nil || targetRep == nil {
		return fmt.Errorf("core: partition %q not hosted on both elements", partID)
	}
	st := masterRep.Store
	tgt := targetRep.Store
	tgt.SetRole(store.Slave)
	// Zero-copy bulk transfer: entries are immutable shared versions
	// and PutDirect installs its own copy.
	st.ForEachAny(func(key string, e store.Entry, m store.Meta) bool {
		tgt.PutDirect(key, e, m)
		return true
	})
	tgt.SetAppliedCSN(st.CSN())
	// Re-attach to the master's shipping list.
	var peers []simnet.Addr
	seen := map[simnet.Addr]bool{}
	for _, ref := range part.Replicas[1:] {
		if el := u.elements[ref.Element]; el != nil && !el.Down() {
			if !seen[ref.Addr] {
				peers = append(peers, ref.Addr)
				seen[ref.Addr] = true
			}
		}
	}
	masterRep.Repl.SetPeers(peers...)
	return nil
}

// AddSite scales the UDR out with a new site at runtime (§3.4.2): new
// cluster, SEs, a location stage that must sync its identity-location
// maps from a peer site before its PoA can serve, and fresh home
// partitions for future subscribers. It returns the stage sync
// duration and entry count — the availability dip E9 measures.
func (u *UDR) AddSite(ctx context.Context, spec SiteSpec) (syncTime time.Duration, entries int, err error) {
	u.mu.Lock()
	if len(u.sites) == 0 {
		u.mu.Unlock()
		return 0, 0, errors.New("core: cannot scale out an empty UDR")
	}
	peerSite := u.sites[0]
	if err := u.buildSiteLocked(spec, false); err != nil {
		u.mu.Unlock()
		return 0, 0, err
	}
	if err := u.assignSitePartitionsLocked(spec); err != nil {
		u.mu.Unlock()
		return 0, 0, err
	}
	stage := u.stages[spec.Name]
	u.mu.Unlock()

	// Re-run the metrics attach pass so the new site's PoA histogram
	// is exported (collectors pick the new elements up on their own).
	if reg := u.obsRegistry(); reg != nil {
		u.attachInstruments(reg)
	}

	if u.cfg.LocatorMode == locator.Provisioned {
		start := time.Now()
		n, err := stage.SyncFrom(ctx, u.net,
			simnet.MakeAddr(spec.Name, "locator"),
			simnet.MakeAddr(peerSite, "locator"))
		if err != nil {
			return time.Since(start), n, err
		}
		syncTime = time.Since(start)
		entries = n
	}
	// Without rebalancing, a scale-out site only receives *future*
	// subscribers (fresh home partitions): existing load never moves,
	// which is the placement gap the paper's §3.4.2 story glosses
	// over. Flag-gated so E9 keeps measuring the bare join.
	if u.cfg.RebalanceOnAddSite {
		if _, err := u.Rebalance(ctx); err != nil {
			return syncTime, entries, fmt.Errorf("core: post-scale-out rebalance: %w", err)
		}
	}
	return syncTime, entries, nil
}

// choosePartition picks a partition for a new subscription:
// selective placement in the home region when possible (§3.5), else
// global round-robin.
func (u *UDR) choosePartition(region string) (string, error) {
	u.mu.Lock()
	defer u.mu.Unlock()
	var candidates []string
	for _, id := range u.partIDs {
		if u.parts[id].HomeSite == region {
			candidates = append(candidates, id)
		}
	}
	key := region
	if len(candidates) == 0 {
		candidates = u.partIDs
		key = ""
	}
	if len(candidates) == 0 {
		return "", ErrNoCapacity
	}
	i := u.rr[key] % len(candidates)
	u.rr[key]++
	return candidates[i], nil
}

// SeedDirect loads a subscriber straight into the partition master
// store and every location stage, bypassing the network: bulk test
// and benchmark setup only.
func (u *UDR) SeedDirect(p *subscriber.Profile) error {
	partID, err := u.choosePartition(p.HomeRegion)
	if err != nil {
		return err
	}
	u.mu.RLock()
	part := u.parts[partID]
	masterEl := u.elements[part.Master().Element]
	stages := make([]*locator.Stage, 0, len(u.stages))
	for _, st := range u.stages {
		stages = append(stages, st)
	}
	u.mu.RUnlock()

	rep := masterEl.Replica(partID)
	txn := rep.Store.Begin(store.ReadCommitted)
	txn.Put(p.ID, p.ToEntry())
	if _, err := txn.Commit(); err != nil {
		return err
	}
	placement := locator.Placement{SubscriberID: p.ID, Partition: partID}
	if u.cfg.LocatorMode == locator.Provisioned {
		for _, st := range stages {
			st.PutProfile(p.Identities(), placement)
		}
	}
	return nil
}

// kickSiteRepairs requests an immediate anti-entropy round from every
// element at a site (heal-watcher callback).
func (u *UDR) kickSiteRepairs(site string) {
	u.mu.RLock()
	els := u.siteElementsLocked(site)
	u.mu.RUnlock()
	for _, el := range els {
		el.RepairNow()
	}
}

// RepairPartition runs one anti-entropy repair round for a partition
// from its current master replica to every replication peer, and
// returns the per-peer stats. The UDR must run with AntiEntropy.
func (u *UDR) RepairPartition(ctx context.Context, partID string) ([]antientropy.Stats, error) {
	u.mu.RLock()
	part, ok := u.parts[partID]
	var el *se.Element
	if ok {
		el = u.elements[part.Master().Element]
	}
	u.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownPartition, partID)
	}
	if el == nil || el.Down() {
		return nil, fmt.Errorf("core: master element of %q unavailable", partID)
	}
	return el.RepairPartition(ctx, partID)
}

// RepairAll runs a repair round for every partition (udrctl repair,
// heal recovery). Unreachable peers are skipped; the first error is
// reported after every partition was attempted.
func (u *UDR) RepairAll(ctx context.Context) ([]antientropy.Stats, error) {
	var out []antientropy.Stats
	var firstErr error
	for _, partID := range u.Partitions() {
		stats, err := u.RepairPartition(ctx, partID)
		out = append(out, stats...)
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return out, firstErr
}

// RestoreConsistency runs the paper's §5 post-partition consistency
// restoration for one partition in multi-master mode: every replica
// pulls the divergent rows of every other replica and merges them
// (deterministic resolvers guarantee convergence). It returns the
// total number of rows merged.
func (u *UDR) RestoreConsistency(ctx context.Context, partID string) (merged int, err error) {
	u.mu.RLock()
	part, ok := u.parts[partID]
	if !ok {
		u.mu.RUnlock()
		return 0, fmt.Errorf("core: unknown partition %q", partID)
	}
	refs := append([]ReplicaRef(nil), part.Replicas...)
	u.mu.RUnlock()

	for _, ref := range refs {
		el := u.Element(ref.Element)
		if el == nil || el.Down() {
			continue
		}
		pr := el.Replica(partID)
		if pr == nil {
			continue
		}
		for _, peer := range refs {
			if peer.Addr == ref.Addr {
				continue
			}
			if peerEl := u.Element(peer.Element); peerEl == nil || peerEl.Down() {
				continue
			}
			n, serr := pr.Repl.SyncWith(ctx, peer.Addr)
			if serr != nil {
				err = serr
				continue
			}
			merged += n
		}
	}
	return merged, err
}

// RestoreAll runs RestoreConsistency for every partition.
func (u *UDR) RestoreAll(ctx context.Context) (merged int, err error) {
	for _, partID := range u.Partitions() {
		n, serr := u.RestoreConsistency(ctx, partID)
		merged += n
		if serr != nil {
			err = serr
		}
	}
	return merged, err
}

// WaitReplication blocks until every master's replication streams are
// fully acknowledged (test/bench settling).
func (u *UDR) WaitReplication(ctx context.Context) error {
	u.mu.RLock()
	reps := make([]*replication.Replica, 0, len(u.parts))
	for id, part := range u.parts {
		el := u.elements[part.Master().Element]
		if el != nil && !el.Down() {
			if pr := el.Replica(id); pr != nil {
				reps = append(reps, pr.Repl)
			}
		}
	}
	u.mu.RUnlock()
	for _, r := range reps {
		if err := r.WaitCaughtUp(ctx); err != nil {
			return err
		}
	}
	return nil
}

// Stop shuts down every element cleanly. Heal watchers stop before
// u.mu is taken: their callback acquires u.mu (kickSiteRepairs), so
// waiting for them under the lock would deadlock with a heal that
// lands at shutdown.
func (u *UDR) Stop() {
	u.mu.RLock()
	cls := make([]*cluster.Cluster, 0, len(u.clusters))
	for _, cl := range u.clusters {
		cls = append(cls, cl)
	}
	u.mu.RUnlock()
	for _, cl := range cls {
		cl.StopHealWatch()
	}

	u.mu.Lock()
	defer u.mu.Unlock()
	for _, el := range u.elements {
		el.Stop()
	}
	for _, site := range u.sites {
		u.net.Unregister(simnet.MakeAddr(site, "poa"))
		u.net.Unregister(simnet.MakeAddr(site, "locator"))
	}
}
