package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/antientropy"
	"repro/internal/ldap"
	"repro/internal/locator"
	"repro/internal/rebalance"
	"repro/internal/replication"
	"repro/internal/se"
	"repro/internal/simnet"
	"repro/internal/store"
	"repro/internal/subscriber"
	"repro/internal/trace"
)

// LDAPBackend adapts a UDR session to the ldap.Backend interface,
// realizing the UDC-mandated LDAP northbound interface (§1). cmd/udrd
// serves it over TCP; tests serve it over in-memory pipes.
type LDAPBackend struct {
	session *Session
	timeout time.Duration
	// topology, when set via WithTopology, enables the OaM status
	// extended operation.
	topology *UDR
}

// NewLDAPBackend returns a backend executing operations through the
// given session (whose policy class determines routing).
func NewLDAPBackend(session *Session) *LDAPBackend {
	return &LDAPBackend{session: session, timeout: 2 * time.Second}
}

// WithTopology attaches the UDR so the backend can serve the OaM
// status extended operation (the OSS consolidated view of §2.4).
func (b *LDAPBackend) WithTopology(u *UDR) *LDAPBackend {
	b.topology = u
	return b
}

// Extended implements ldap.ExtendedBackend: the OaM status dump and
// the anti-entropy repair trigger.
func (b *LDAPBackend) Extended(name string, value []byte) (ldap.Result, []byte) {
	switch name {
	case ldap.OIDStatus:
		if b.topology == nil {
			return ldap.Result{Code: ldap.ResultUnwillingToPerform, Message: "status not available on this endpoint"}, nil
		}
		return ldap.Result{Code: ldap.ResultSuccess}, []byte(b.statusText())
	case ldap.OIDRepair:
		if b.topology == nil {
			return ldap.Result{Code: ldap.ResultUnwillingToPerform, Message: "repair not available on this endpoint"}, nil
		}
		if !b.topology.Config().AntiEntropy {
			return ldap.Result{Code: ldap.ResultUnwillingToPerform, Message: "anti-entropy repair is disabled"}, nil
		}
		ctx, cancel := context.WithTimeout(context.Background(), b.timeout)
		defer cancel()
		stats, err := b.topology.RepairAll(ctx)
		text := repairText(stats)
		if err != nil {
			return ldap.Result{Code: ldap.ResultOther, Message: err.Error()}, []byte(text)
		}
		return ldap.Result{Code: ldap.ResultSuccess}, []byte(text)
	case ldap.OIDMove:
		if b.topology == nil {
			return ldap.Result{Code: ldap.ResultUnwillingToPerform, Message: "move not available on this endpoint"}, nil
		}
		fields := strings.Fields(string(value))
		if len(fields) != 2 {
			return ldap.Result{Code: ldap.ResultProtocolError, Message: "move wants '<partition> <target-element>'"}, nil
		}
		ctx, cancel := context.WithTimeout(context.Background(), b.timeout)
		defer cancel()
		rep, err := b.topology.MigratePartition(ctx, fields[0], fields[1], false)
		if err != nil {
			var text []byte
			if rep != nil {
				text = []byte(rep.String() + "\n")
			}
			return ldap.Result{Code: moveResultCode(err), Message: err.Error()}, text
		}
		return ldap.Result{Code: ldap.ResultSuccess}, []byte(rep.String() + "\n")
	case ldap.OIDRebalance:
		if b.topology == nil {
			return ldap.Result{Code: ldap.ResultUnwillingToPerform, Message: "rebalance not available on this endpoint"}, nil
		}
		ctx, cancel := context.WithTimeout(context.Background(), b.timeout)
		defer cancel()
		res, err := b.topology.Rebalance(ctx)
		text := []byte(res.String())
		if err != nil {
			return ldap.Result{Code: ldap.ResultOther, Message: err.Error()}, text
		}
		if res.Failed > 0 {
			return ldap.Result{Code: ldap.ResultOther,
				Message: fmt.Sprintf("%d of %d moves failed", res.Failed, len(res.Plan))}, text
		}
		return ldap.Result{Code: ldap.ResultSuccess}, text
	case ldap.OIDTrace:
		if b.topology == nil {
			return ldap.Result{Code: ldap.ResultUnwillingToPerform, Message: "trace not available on this endpoint"}, nil
		}
		return b.traceExtended(strings.TrimSpace(string(value)))
	default:
		return ldap.Result{Code: ldap.ResultProtocolError, Message: "unknown extended op " + name}, nil
	}
}

// traceExtended serves the request-trace extended operation: "recent"
// (or an empty value) and "slow" list sampled traces, a 16-hex-digit
// trace id renders that trace's span tree.
func (b *LDAPBackend) traceExtended(arg string) (ldap.Result, []byte) {
	tr := b.topology.Tracer()
	if tr == nil {
		return ldap.Result{Code: ldap.ResultUnwillingToPerform, Message: "tracing is disabled on this server"}, nil
	}
	listing := func(header string, sums []trace.TraceSummary) []byte {
		var sb strings.Builder
		fmt.Fprintf(&sb, "%d %s (sample rate %g)\n", len(sums), header, tr.SampleRate())
		for _, s := range sums {
			fmt.Fprintf(&sb, "%s  %-24s %12s  %d spans\n", s.Trace, s.Root.Name, s.Root.Duration, s.Spans)
		}
		return []byte(sb.String())
	}
	switch arg {
	case "", "recent":
		return ldap.Result{Code: ldap.ResultSuccess}, listing("recent traces", tr.Recent(20))
	case "slow":
		roots := tr.Slow(10)
		sums := make([]trace.TraceSummary, 0, len(roots))
		for _, root := range roots {
			sums = append(sums, trace.TraceSummary{Trace: root.Trace, Root: root, Spans: len(tr.Get(root.Trace))})
		}
		return ldap.Result{Code: ldap.ResultSuccess}, listing("slowest traces", sums)
	default:
		id, err := trace.ParseID(arg)
		if err != nil {
			return ldap.Result{Code: ldap.ResultProtocolError, Message: "trace wants 'recent', 'slow' or a trace id: " + arg}, nil
		}
		spans := tr.Get(id)
		if len(spans) == 0 {
			return ldap.Result{Code: ldap.ResultNoSuchObject, Message: "unknown trace (never sampled, or already overwritten): " + arg}, nil
		}
		return ldap.Result{Code: ldap.ResultSuccess}, []byte(trace.RenderTree(spans))
	}
}

// moveResultCode maps migration errors onto LDAP result codes so
// udrctl can distinguish operator mistakes from transient conflicts.
func moveResultCode(err error) ldap.ResultCode {
	switch {
	case errors.Is(err, ErrMigrationInFlight):
		return ldap.ResultBusy
	case errors.Is(err, rebalance.ErrConflict):
		return ldap.ResultUnwillingToPerform
	case errors.Is(err, ErrUnknownPartition), errors.Is(err, ErrUnknownElement):
		return ldap.ResultNoSuchObject
	default:
		return ldap.ResultOther
	}
}

// repairText renders a repair round as the operator-facing report.
func repairText(stats []antientropy.Stats) string {
	var sb strings.Builder
	shipped, pulled := 0, 0
	for _, s := range stats {
		state := fmt.Sprintf("leaves=%d shipped=%d pulled=%d repaired(local/peer)=%d/%d",
			s.LeavesDiffed, s.RowsShipped, s.RowsPulled, s.RowsRepairedLocal, s.RowsRepairedPeer)
		if s.InSync {
			state = "in sync"
		}
		extra := ""
		if s.Truncated {
			extra = " (truncated: bandwidth cap)"
		}
		if s.WatermarkAdvanced {
			extra += " (stream re-attached)"
		}
		fmt.Fprintf(&sb, "repair %-16s peer=%-24s %s%s\n", s.Partition, s.Peer, state, extra)
		shipped += s.RowsShipped
		pulled += s.RowsPulled
	}
	fmt.Fprintf(&sb, "repair total: %d peer rounds, %d rows shipped, %d rows pulled\n",
		len(stats), shipped, pulled)
	return sb.String()
}

// statusText renders the topology as the operator-facing status dump.
func (b *LDAPBackend) statusText() string {
	u := b.topology
	var sb strings.Builder
	fmt.Fprintf(&sb, "sites: %s\n", strings.Join(u.Sites(), ", "))
	for _, partID := range u.Partitions() {
		part, ok := u.Partition(partID)
		if !ok {
			continue
		}
		line := fmt.Sprintf("partition %s home=%s", part.ID, part.HomeSite)
		if el := u.Element(part.Master().Element); el != nil && !el.Down() {
			if pr := el.Replica(partID); pr != nil && pr.Store.Role() == store.Master {
				line += fmt.Sprintf(" durability=%s", pr.Repl.Durability())
				if pr.Repl.Durability() == replication.Quorum {
					line += fmt.Sprintf(" quorum=%s ack-watermark=%d/%d",
						pr.Repl.QuorumPolicy(), pr.Repl.QuorumWatermark(), pr.Store.CSN())
				}
			}
		}
		sb.WriteString(line + "\n")
		for i, ref := range part.Replicas {
			role := "slave "
			if i == 0 {
				role = "master"
			}
			state := "up"
			rows := "?"
			if el := u.Element(ref.Element); el != nil {
				if el.Down() {
					state = "DOWN"
				} else if pr := el.Replica(partID); pr != nil {
					rows = fmt.Sprint(pr.Store.Len())
				}
			}
			fmt.Fprintf(&sb, "  %s %-24s site=%-12s rows=%-8s %s\n",
				role, ref.Element, ref.Site, rows, state)
		}
	}
	for _, cs := range u.CacheStats() {
		line := fmt.Sprintf("fe-cache %-12s entries=%d/%d hits=%d misses=%d evictions=%d invalidations(csn/epoch)=%d/%d",
			cs.Site, cs.Entries, cs.Capacity, cs.Hits, cs.Misses,
			cs.Evictions, cs.InvalidationsCSN, cs.InvalidationsEpoch)
		if cs.LastInvalidatedPartition != "" {
			line += fmt.Sprintf(" last-inv=%s@%d", cs.LastInvalidatedPartition, cs.LastInvalidationEpoch)
		}
		sb.WriteString(line + "\n")
	}
	return sb.String()
}

// Bind implements ldap.Backend. The reproduction accepts any
// credentials (directory ACLs are out of the paper's scope) but
// rejects empty DNs on non-anonymous binds for shape.
func (b *LDAPBackend) Bind(dn, password string) ldap.Result {
	if password != "" && dn == "" {
		return ldap.Result{Code: ldap.ResultInvalidCredentials}
	}
	return ldap.Result{Code: ldap.ResultSuccess}
}

// identityFromFilter extracts the subscriber identity an equality
// filter selects, walking AND nodes (e.g. "(&(objectClass=...)
// (msisdn=123))").
func identityFromFilter(f ldap.Filter) (subscriber.Identity, bool) {
	switch f.Kind {
	case ldap.FilterEquality:
		switch f.Attr {
		case subscriber.AttrIMSI:
			return subscriber.Identity{Type: subscriber.IMSI, Value: f.Value}, true
		case subscriber.AttrMSISDN:
			return subscriber.Identity{Type: subscriber.MSISDN, Value: f.Value}, true
		case subscriber.AttrIMPI:
			return subscriber.Identity{Type: subscriber.IMPI, Value: f.Value}, true
		case subscriber.AttrIMPU:
			return subscriber.Identity{Type: subscriber.IMPU, Value: f.Value}, true
		}
	case ldap.FilterAnd:
		for _, c := range f.Children {
			if id, ok := identityFromFilter(c); ok {
				return id, true
			}
		}
	}
	return subscriber.Identity{}, false
}

// Search implements ldap.Backend. Base-object searches address an
// entry by DN; subtree searches need an identity-bearing equality
// filter (the UDR is an indexed subscriber store, not a general
// directory). Equality filters over identity attributes route through
// the location stage and, on a cached-locator miss, the storage
// elements' secondary identity indexes — never a partition scan
// unless the UDR runs with LegacyFindScan.
func (b *LDAPBackend) Search(req *ldap.SearchRequest) ([]ldap.SearchEntry, ldap.Result) {
	ctx, cancel := context.WithTimeout(context.Background(), b.timeout)
	defer cancel()

	var exec *ExecResp
	var err error
	if req.Scope == ldap.ScopeBaseObject {
		id, perr := subscriber.ParseDN(req.BaseDN)
		if perr != nil {
			return nil, ldap.Result{Code: ldap.ResultNoSuchObject, Message: perr.Error()}
		}
		exec, err = b.session.Exec(ctx, ExecReq{
			SubscriberID: id,
			Partition:    "", // resolved by probing; avoid when possible
			Identity:     subscriber.Identity{},
			Ops:          []se.TxnOp{{Kind: se.TxnGet, Key: id}},
		})
	} else {
		id, ok := identityFromFilter(req.Filter)
		if !ok {
			return nil, ldap.Result{
				Code:    ldap.ResultUnwillingToPerform,
				Message: "search filter must select a subscriber identity",
			}
		}
		exec, err = b.session.Exec(ctx, ExecReq{
			Identity: id,
			Ops:      []se.TxnOp{{Kind: se.TxnGet}},
		})
	}
	if err != nil {
		return nil, resultFromErr(err)
	}
	if !exec.Results[0].Found {
		return nil, ldap.Result{Code: ldap.ResultNoSuchObject}
	}
	entry := exec.Results[0].Entry
	if !req.Filter.Matches(entry) {
		return nil, ldap.Result{Code: ldap.ResultSuccess} // zero matches
	}
	attrs := projectAttrs(entry, req.Attributes, req.TypesOnly)
	return []ldap.SearchEntry{{
		DN:    subscriber.DN(exec.SubscriberID),
		Attrs: attrs,
	}}, ldap.Result{Code: ldap.ResultSuccess}
}

// projectAttrs applies the requested attribute selection.
func projectAttrs(entry store.Entry, want []string, typesOnly bool) map[string][]string {
	out := make(map[string][]string)
	include := func(a string) bool {
		if len(want) == 0 {
			return true
		}
		for _, w := range want {
			if w == a || w == "*" {
				return true
			}
		}
		return false
	}
	for a, vs := range entry {
		if !include(a) {
			continue
		}
		if typesOnly {
			out[a] = nil
		} else {
			out[a] = append([]string(nil), vs...)
		}
	}
	return out
}

// Compare implements ldap.Backend.
func (b *LDAPBackend) Compare(dn, attr, value string) ldap.Result {
	ctx, cancel := context.WithTimeout(context.Background(), b.timeout)
	defer cancel()
	id, err := subscriber.ParseDN(dn)
	if err != nil {
		return ldap.Result{Code: ldap.ResultNoSuchObject, Message: err.Error()}
	}
	exec, err := b.session.Exec(ctx, ExecReq{
		SubscriberID: id,
		Ops:          []se.TxnOp{{Kind: se.TxnCompare, Key: id, Attr: attr, Value: value}},
	})
	if err != nil {
		return resultFromErr(err)
	}
	if !exec.Results[0].Found {
		return ldap.Result{Code: ldap.ResultNoSuchObject}
	}
	if exec.Results[0].CompareOK {
		return ldap.Result{Code: ldap.ResultCompareTrue}
	}
	return ldap.Result{Code: ldap.ResultCompareFalse}
}

// Write implements ldap.Backend: the batch executes as one
// storage-element transaction when all DNs target the same
// subscription's partition; otherwise it degrades to per-partition
// transactions with no cross-SE atomicity — the honest §3.2
// behaviour.
func (b *LDAPBackend) Write(ops []ldap.WriteOp) ldap.Result {
	ctx, cancel := context.WithTimeout(context.Background(), b.timeout)
	defer cancel()

	// Group ops by subscriber ID (the partition follows from it).
	type group struct {
		subID string
		ops   []se.TxnOp
	}
	var groups []group
	index := map[string]int{}
	for _, w := range ops {
		subID, err := subscriber.ParseDN(w.DN)
		if err != nil {
			return ldap.Result{Code: ldap.ResultNoSuchObject, Message: err.Error()}
		}
		var op se.TxnOp
		switch w.Kind {
		case ldap.WriteAdd:
			entry := store.Entry{}
			for a, vs := range w.Attrs {
				entry[a] = append([]string(nil), vs...)
			}
			op = se.TxnOp{Kind: se.TxnPut, Key: subID, Entry: entry}
		case ldap.WriteModify:
			var mods []store.Mod
			for _, c := range w.Changes {
				kind := store.ModAdd
				switch c.Op {
				case ldap.ChangeReplace:
					kind = store.ModReplace
				case ldap.ChangeDelete:
					kind = store.ModDelete
				}
				mods = append(mods, store.Mod{Kind: kind, Attr: c.Attr, Vals: c.Vals})
			}
			op = se.TxnOp{Kind: se.TxnModify, Key: subID, Mods: mods}
		case ldap.WriteDelete:
			op = se.TxnOp{Kind: se.TxnDelete, Key: subID}
		}
		if gi, ok := index[subID]; ok {
			groups[gi].ops = append(groups[gi].ops, op)
		} else {
			index[subID] = len(groups)
			groups = append(groups, group{subID: subID, ops: []se.TxnOp{op}})
		}
	}

	for _, g := range groups {
		// Adds carry no prior location mapping: route via provision
		// when the op set is a pure add of a subscriber entry.
		if len(g.ops) == 1 && g.ops[0].Kind == se.TxnPut {
			if prof, err := subscriber.FromEntry(g.ops[0].Entry); err == nil {
				if _, err := b.session.Provision(ctx, prof); err != nil {
					return resultFromErr(err)
				}
				continue
			}
		}
		if _, err := b.session.Exec(ctx, ExecReq{
			SubscriberID: g.subID,
			Ops:          g.ops,
		}); err != nil {
			return resultFromErr(err)
		}
	}
	return ldap.Result{Code: ldap.ResultSuccess}
}

// resultFromErr maps core/network errors onto LDAP result codes.
func resultFromErr(err error) ldap.Result {
	switch {
	case errors.Is(err, ErrUnknownSubscriber), errors.Is(err, locator.ErrNotFound):
		return ldap.Result{Code: ldap.ResultNoSuchObject, Message: err.Error()}
	case errors.Is(err, locator.ErrNotReady), errors.Is(err, se.ErrStalePlacement),
		errors.Is(err, ErrMigrationInFlight):
		return ldap.Result{Code: ldap.ResultBusy, Message: err.Error()}
	case errors.Is(err, ErrMasterUnreachable), errors.Is(err, ErrNoReplica),
		errors.Is(err, simnet.ErrUnreachable), errors.Is(err, simnet.ErrLost):
		return ldap.Result{Code: ldap.ResultUnavailable, Message: err.Error()}
	case errors.Is(err, store.ErrStoreFull):
		return ldap.Result{Code: ldap.ResultUnwillingToPerform, Message: err.Error()}
	case errors.Is(err, context.DeadlineExceeded):
		return ldap.Result{Code: ldap.ResultTimeLimitExceeded, Message: err.Error()}
	default:
		return ldap.Result{Code: ldap.ResultOther, Message: err.Error()}
	}
}
