package core

import (
	"testing"

	"repro/internal/ldap"
	"repro/internal/se"
	"repro/internal/simnet"
	"repro/internal/store"
	"repro/internal/subscriber"
	"time"
)

func TestIdentityFromFilter(t *testing.T) {
	cases := []struct {
		filter ldap.Filter
		want   subscriber.Identity
		ok     bool
	}{
		{ldap.Eq("msisdn", "123"), subscriber.Identity{Type: subscriber.MSISDN, Value: "123"}, true},
		{ldap.Eq("imsi", "456"), subscriber.Identity{Type: subscriber.IMSI, Value: "456"}, true},
		{ldap.Eq("impi", "a@b"), subscriber.Identity{Type: subscriber.IMPI, Value: "a@b"}, true},
		{ldap.Eq("impu", "sip:x"), subscriber.Identity{Type: subscriber.IMPU, Value: "sip:x"}, true},
		{ldap.And(ldap.Eq("objectClass", "udrSubscription"), ldap.Eq("msisdn", "789")),
			subscriber.Identity{Type: subscriber.MSISDN, Value: "789"}, true},
		{ldap.Eq("objectClass", "udrSubscription"), subscriber.Identity{}, false},
		{ldap.Present("msisdn"), subscriber.Identity{}, false},
	}
	for _, c := range cases {
		got, ok := identityFromFilter(c.filter)
		if ok != c.ok || got != c.want {
			t.Errorf("identityFromFilter(%s) = %v,%v want %v,%v", c.filter, got, ok, c.want, c.ok)
		}
	}
}

func TestProjectAttrs(t *testing.T) {
	entry := store.Entry{"a": {"1"}, "b": {"2", "3"}, "c": {"4"}}

	all := projectAttrs(entry, nil, false)
	if len(all) != 3 {
		t.Fatalf("all = %v", all)
	}
	sel := projectAttrs(entry, []string{"b"}, false)
	if len(sel) != 1 || len(sel["b"]) != 2 {
		t.Fatalf("selected = %v", sel)
	}
	star := projectAttrs(entry, []string{"*"}, false)
	if len(star) != 3 {
		t.Fatalf("star = %v", star)
	}
	typesOnly := projectAttrs(entry, nil, true)
	if len(typesOnly) != 3 || typesOnly["a"] != nil {
		t.Fatalf("typesOnly = %v", typesOnly)
	}
	// The projection must be a copy.
	sel["b"][0] = "mutated"
	if entry["b"][0] != "2" {
		t.Fatal("projection leaked the entry")
	}
}

func TestResultFromErr(t *testing.T) {
	cases := []struct {
		err  error
		want ldap.ResultCode
	}{
		{ErrUnknownSubscriber, ldap.ResultNoSuchObject},
		{ErrMasterUnreachable, ldap.ResultUnavailable},
		{ErrNoReplica, ldap.ResultUnavailable},
		{simnet.ErrUnreachable, ldap.ResultUnavailable},
		{store.ErrStoreFull, ldap.ResultUnwillingToPerform},
	}
	for _, c := range cases {
		if got := resultFromErr(c.err); got.Code != c.want {
			t.Errorf("resultFromErr(%v) = %v, want %v", c.err, got.Code, c.want)
		}
	}
}

func TestLDAPBackendBind(t *testing.T) {
	b := NewLDAPBackend(nil)
	if r := b.Bind("cn=x", "pw"); r.Code != ldap.ResultSuccess {
		t.Fatalf("bind = %v", r)
	}
	if r := b.Bind("", ""); r.Code != ldap.ResultSuccess {
		t.Fatalf("anonymous bind = %v", r)
	}
	if r := b.Bind("", "pw"); r.Code != ldap.ResultInvalidCredentials {
		t.Fatalf("password without DN = %v", r)
	}
}

func TestLDAPBackendSearchBadFilter(t *testing.T) {
	net, u, _ := testUDR(t, 1)
	_ = net
	site := u.Sites()[0]
	b := NewLDAPBackend(NewSession(u.Net(), simnet.MakeAddr(site, "b"), site, PolicyFE))
	_, res := b.Search(&ldap.SearchRequest{
		BaseDN: subscriber.BaseDN,
		Scope:  ldap.ScopeWholeSubtree,
		Filter: ldap.Present("objectClass"), // no identity
	})
	if res.Code != ldap.ResultUnwillingToPerform {
		t.Fatalf("res = %v", res)
	}
	_, res = b.Search(&ldap.SearchRequest{
		BaseDN: "cn=not-a-subscriber-dn",
		Scope:  ldap.ScopeBaseObject,
		Filter: ldap.Present("objectClass"),
	})
	if res.Code != ldap.ResultNoSuchObject {
		t.Fatalf("bad DN res = %v", res)
	}
}

func TestLDAPBackendWriteGroupsOneTxn(t *testing.T) {
	// Multiple changes to one subscription inside an LDAP
	// transaction must land as ONE storage-element commit.
	net, u, profiles := testUDR(t, 1)
	ctx := ctxT(t)
	if err := u.WaitReplication(ctx); err != nil {
		t.Fatal(err)
	}
	p := profiles[0]
	site := u.Sites()[0]
	b := NewLDAPBackend(NewSession(net, simnet.MakeAddr(site, "b"), site, PolicyPS))

	// Find the master store to watch its CSN.
	placement, err := u.Stage(site).Lookup(ctx, subscriber.Identity{Type: subscriber.IMSI, Value: p.IMSIVal})
	if err != nil {
		t.Fatal(err)
	}
	part, _ := u.Partition(placement.Partition)
	masterStore := u.Element(part.Master().Element).Replica(placement.Partition).Store
	before := masterStore.CSN()

	res := b.Write([]ldap.WriteOp{
		{Kind: ldap.WriteModify, DN: subscriber.DN(p.ID), Changes: []ldap.Change{
			{Op: ldap.ChangeReplace, Attr: subscriber.AttrBarPremium, Vals: []string{"TRUE"}},
		}},
		{Kind: ldap.WriteModify, DN: subscriber.DN(p.ID), Changes: []ldap.Change{
			{Op: ldap.ChangeReplace, Attr: subscriber.AttrSMSEnabled, Vals: []string{"FALSE"}},
		}},
	})
	if res.Code != ldap.ResultSuccess {
		t.Fatalf("write = %v", res)
	}
	if got := masterStore.CSN(); got != before+1 {
		t.Fatalf("CSN advanced by %d, want 1 (atomic grouping)", got-before)
	}
	e, _, _ := masterStore.GetCommitted(p.ID)
	if e.First(subscriber.AttrBarPremium) != "TRUE" || e.First(subscriber.AttrSMSEnabled) != "FALSE" {
		t.Fatalf("entry = %v", e)
	}
}

func TestLDAPBackendCompareMissing(t *testing.T) {
	net, u, _ := testUDR(t, 1)
	site := u.Sites()[0]
	b := NewLDAPBackend(NewSession(net, simnet.MakeAddr(site, "b"), site, PolicyFE))
	r := b.Compare(subscriber.DN("sub-missing"), "active", "TRUE")
	if r.Code != ldap.ResultNoSuchObject {
		t.Fatalf("compare missing = %v", r)
	}
}

func TestOrderTargetsPolicies(t *testing.T) {
	_, u, _ := testUDR(t, 0)
	site := u.Sites()[0]
	ap := u.PoA(site)
	partID := ""
	for _, id := range u.Partitions() {
		p, _ := u.Partition(id)
		if p.HomeSite != site {
			partID = id // mastered remotely
			break
		}
	}
	part, _ := u.Partition(partID)

	// FE read-only: nearest (local) replica first.
	targets := ap.orderTargets(part, ExecReq{ReadOnly: true, Policy: PolicyFE}, false)
	if len(targets) != 3 || targets[0].Site != site {
		t.Fatalf("FE read targets = %+v", targets)
	}
	// FE write: master only.
	targets = ap.orderTargets(part, ExecReq{ReadOnly: false, Policy: PolicyFE}, false)
	if len(targets) != 1 || targets[0] != part.Master() {
		t.Fatalf("FE write targets = %+v", targets)
	}
	// PS read: master only.
	targets = ap.orderTargets(part, ExecReq{ReadOnly: true, Policy: PolicyPS}, false)
	if len(targets) != 1 || targets[0] != part.Master() {
		t.Fatalf("PS read targets = %+v", targets)
	}
}

func TestPoALDAPCapacityTokens(t *testing.T) {
	// With one modelled LDAP server and a long service time, two
	// concurrent ops serialize.
	net := simnet.New(simnet.FastConfig())
	cfg := Config{
		Sites:             []SiteSpec{{Name: "solo", SEs: 1, PartitionsPerSE: 1, LDAPServers: 1}},
		ReplicationFactor: 1,
		LDAPServiceTime:   20 * 1000 * 1000, // 20ms
	}
	u, err := New(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer u.Stop()
	p := subscriber.NewGenerator("solo").Profile(0)
	if err := u.SeedDirect(p); err != nil {
		t.Fatal(err)
	}
	ctx := ctxT(t)
	sess := NewSession(net, simnet.MakeAddr("solo", "fe"), "solo", PolicyFE)

	read := func() error {
		_, err := sess.Exec(ctx, ExecReq{
			Identity: subscriber.Identity{Type: subscriber.IMSI, Value: p.IMSIVal},
			Ops:      []se.TxnOp{{Kind: se.TxnGet}},
		})
		return err
	}
	// First op holds the single token for ~20ms; the second must
	// wait for it.
	errs := make(chan error, 2)
	start := time.Now()
	go func() { errs <- read() }()
	go func() { errs <- read() }()
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Fatalf("two ops with one server finished in %v; token model not limiting", elapsed)
	}
}
