package core

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/rebalance"
	"repro/internal/se"
	"repro/internal/simnet"
	"repro/internal/store"
	"repro/internal/subscriber"
)

// migrationUDR builds a two-site, two-SE-per-site UDR (so every
// partition has elements hosting no replica — eligible migration
// targets) and seeds n subscribers pinned onto one partition. It
// returns the loaded partition and an element hosting no replica of
// it.
func migrationUDR(t *testing.T, n int, mutate ...func(*Config)) (*simnet.Network, *UDR, string, string, []*subscriber.Profile) {
	t.Helper()
	net := simnet.New(simnet.FastConfig())
	cfg := DefaultConfig()
	cfg.Sites = []SiteSpec{
		{Name: "eu-south", SEs: 2, PartitionsPerSE: 1},
		{Name: "eu-north", SEs: 2, PartitionsPerSE: 1},
	}
	cfg.ReplicationFactor = 2
	for _, m := range mutate {
		m(&cfg)
	}
	u, err := New(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(u.Stop)

	partID := "p-eu-south-0"
	ps := NewSession(net, simnet.MakeAddr("eu-south", "seed-ps"), "eu-south", PolicyPS)
	gen := subscriber.NewGenerator(u.Sites()...)
	var profiles []*subscriber.Profile
	for i := 0; i < n; i++ {
		p := gen.Profile(i)
		if _, err := ps.ProvisionAt(ctxT(t), p, partID); err != nil {
			t.Fatal(err)
		}
		profiles = append(profiles, p)
	}

	part, _ := u.Partition(partID)
	hosted := make(map[string]bool)
	for _, ref := range part.Replicas {
		hosted[ref.Element] = true
	}
	target := ""
	for _, elID := range u.Elements() {
		if !hosted[elID] {
			target = elID
			break
		}
	}
	if target == "" {
		t.Fatal("no eligible migration target in topology")
	}
	return net, u, partID, target, profiles
}

// TestMigrateMovesMaster pins the basic move: rows arrive, the target
// becomes the table master with a bumped epoch, the source demotes to
// a serving slave, and reads and writes keep working afterwards.
func TestMigrateMovesMaster(t *testing.T) {
	net, u, partID, target, profiles := migrationUDR(t, 40)
	before, _ := u.Partition(partID)
	source := before.Master().Element

	rep, err := u.MigratePartition(ctxT(t), partID, target, false)
	if err != nil {
		t.Fatalf("migrate: %v", err)
	}
	if rep.Phase != rebalance.PhaseDone || rep.Aborted {
		t.Fatalf("report = %+v", rep)
	}
	if rep.RowsCopied != 40 {
		t.Fatalf("rows copied = %d, want 40", rep.RowsCopied)
	}

	after, _ := u.Partition(partID)
	if after.Master().Element != target {
		t.Fatalf("master = %s, want %s", after.Master().Element, target)
	}
	if after.Epoch != before.Epoch+1 {
		t.Fatalf("epoch = %d, want %d", after.Epoch, before.Epoch+1)
	}
	if got := u.Element(target).Replica(partID).Store.Role(); got != store.Master {
		t.Fatalf("target role = %v", got)
	}
	if got := u.Element(source).Replica(partID).Store.Role(); got != store.Slave {
		t.Fatalf("source role = %v", got)
	}
	// The demoted source must still appear in the replica set and
	// follow the new master's stream.
	found := false
	for _, ref := range after.Replicas[1:] {
		if ref.Element == source {
			found = true
		}
	}
	if !found {
		t.Fatalf("source %s missing from replica set %v", source, after.Replicas)
	}

	// Traffic after the move: a write through the PoA lands on the new
	// master and replicates back to the demoted source.
	ps := NewSession(net, simnet.MakeAddr("eu-south", "post-ps"), "eu-south", PolicyPS)
	p0 := profiles[0]
	if _, err := ps.Modify(ctxT(t), subscriber.Identity{Type: subscriber.UID, Value: p0.ID},
		store.Mod{Kind: store.ModReplace, Attr: "postMove", Vals: []string{"yes"}}); err != nil {
		t.Fatalf("post-move write: %v", err)
	}
	if err := u.WaitReplication(ctxT(t)); err != nil {
		t.Fatal(err)
	}
	e, _, ok := u.Element(source).Replica(partID).Store.GetCommitted(p0.ID)
	if !ok || e.First("postMove") != "yes" {
		t.Fatalf("demoted source did not follow the new master's stream: %v", e)
	}
}

// TestMigrateUnderLoad is the acceptance bar: the master moves while
// concurrent FE/PS traffic hammers the partition, with zero lost
// acknowledged writes and zero client-visible errors — stale-epoch
// referrals and the bounded cutover freeze are absorbed by the PoA's
// placement-refresh retry.
func TestMigrateUnderLoad(t *testing.T) {
	net, u, partID, target, profiles := migrationUDR(t, 24)
	ctx := ctxT(t)

	type acked struct {
		mu   sync.Mutex
		last string
	}
	ackedVals := make([]acked, len(profiles))
	var wg sync.WaitGroup
	var writeErrs, readErrs atomic32
	stop := make(chan struct{})

	// Clients pace themselves: simnet spins sub-millisecond latencies,
	// so unthrottled tight loops would starve the migrator (and every
	// other goroutine) on small CI machines.
	const pace = time.Millisecond
	const writers = 2
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := NewSession(net, simnet.MakeAddr("eu-south", fmt.Sprintf("load-ps-%d", w)), "eu-south", PolicyPS)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				case <-time.After(pace):
				}
				key := w + writers*(i%(len(profiles)/writers)) // disjoint key sets per writer
				val := fmt.Sprintf("w%d-i%d", w, i)
				_, err := sess.Exec(ctx, ExecReq{
					SubscriberID: profiles[key].ID,
					Partition:    partID,
					Ops: []se.TxnOp{{Kind: se.TxnModify, Key: profiles[key].ID,
						Mods: []store.Mod{{Kind: store.ModReplace, Attr: "loadVal", Vals: []string{val}}}}},
				})
				if err != nil {
					writeErrs.inc()
					continue
				}
				ackedVals[key].mu.Lock()
				ackedVals[key].last = val
				ackedVals[key].mu.Unlock()
			}
		}(w)
	}
	for r := 0; r < 1; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			sess := NewSession(net, simnet.MakeAddr("eu-north", fmt.Sprintf("load-fe-%d", r)), "eu-north", PolicyFE)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				case <-time.After(pace):
				}
				_, err := sess.Exec(ctx, ExecReq{
					SubscriberID: profiles[i%len(profiles)].ID,
					Partition:    partID,
					Ops:          []se.TxnOp{{Kind: se.TxnGet}},
				})
				if err != nil {
					readErrs.inc()
				}
			}
		}(r)
	}

	time.Sleep(20 * time.Millisecond) // let traffic build
	rep, err := u.MigratePartition(ctx, partID, target, false)
	time.Sleep(20 * time.Millisecond) // traffic across the new placement
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatalf("migrate under load: %v", err)
	}
	if rep.FreezeDuration > 500*time.Millisecond {
		t.Fatalf("freeze window %v exceeds the configured bound", rep.FreezeDuration)
	}
	if we, re := writeErrs.load(), readErrs.load(); we != 0 || re != 0 {
		t.Fatalf("client-visible errors during migration: %d writes, %d reads", we, re)
	}

	// Zero lost acknowledged writes: the new master must hold, for
	// every key, the last acknowledged value (writes are sequential
	// per key, so a trailing unacknowledged attempt is the only other
	// legal value — and there is none, since no write errored).
	st := u.Element(target).Replica(partID).Store
	for k := range profiles {
		ackedVals[k].mu.Lock()
		want := ackedVals[k].last
		ackedVals[k].mu.Unlock()
		if want == "" {
			continue
		}
		e, _, ok := st.GetCommitted(profiles[k].ID)
		if !ok {
			t.Fatalf("key %s vanished across migration", profiles[k].ID)
		}
		if got := e.First("loadVal"); got != want {
			t.Fatalf("key %s: acknowledged write lost: master has %q, last ack was %q",
				profiles[k].ID, got, want)
		}
	}
	t.Logf("moved %d rows, catch-up %d records, freeze %v, 0 client errors",
		rep.RowsCopied, rep.CatchUpRecords, rep.FreezeDuration)
}

// atomic32 is a tiny test counter.
type atomic32 struct {
	mu sync.Mutex
	n  int
}

func (a *atomic32) inc() { a.mu.Lock(); a.n++; a.mu.Unlock() }
func (a *atomic32) load() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.n
}

// TestMigrateAbortMatrix aborts a migration at every pre-commit phase
// boundary and asserts the invariant the design doc promises: the
// source stays authoritative, the target holds no replica, the epoch
// does not move, and traffic keeps flowing.
func TestMigrateAbortMatrix(t *testing.T) {
	cases := []struct {
		name  string
		phase rebalance.Phase
		hooks func(net *simnet.Network) rebalance.Hooks
	}{
		{"mid-copy", rebalance.PhaseCopy, func(net *simnet.Network) rebalance.Hooks {
			// Cut before the move starts: the first row batch fails.
			net.Partition([]string{"eu-north"})
			return rebalance.Hooks{}
		}},
		{"mid-catch-up", rebalance.PhaseCatchUp, func(net *simnet.Network) rebalance.Hooks {
			return rebalance.Hooks{AfterCopy: func() {
				net.Partition([]string{"eu-north"})
			}}
		}},
		{"mid-cutover", rebalance.PhaseCutover, func(net *simnet.Network) rebalance.Hooks {
			return rebalance.Hooks{BeforeCutover: func() {
				net.Partition([]string{"eu-north"})
			}}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			net, u, partID, _, profiles := migrationUDR(t, 12, func(c *Config) {
				c.MigrateCatchUpTimeout = 50 * time.Millisecond
				c.MigrateFreezeTimeout = 20 * time.Millisecond
			})
			// Force a cross-site target so the cut severs the move.
			target := "se-eu-north-1"
			before, _ := u.Partition(partID)
			source := before.Master().Element

			rep, err := u.MigratePartition(ctxT(t), partID, target, false,
				WithMigrateHooks(tc.hooks(net)))
			if !errors.Is(err, rebalance.ErrAborted) {
				t.Fatalf("err = %v, want ErrAborted", err)
			}
			if rep.Phase != tc.phase {
				t.Fatalf("aborted at %s, want %s", rep.Phase, tc.phase)
			}
			net.Heal()

			after, _ := u.Partition(partID)
			if after.Master().Element != source {
				t.Fatalf("master moved to %s despite abort", after.Master().Element)
			}
			if after.Epoch != before.Epoch {
				t.Fatalf("epoch moved %d -> %d despite abort", before.Epoch, after.Epoch)
			}
			if u.Element(target).Replica(partID) != nil {
				t.Fatal("aborted target still hosts a replica")
			}
			if got := u.Element(source).Replica(partID).Store.Role(); got != store.Master {
				t.Fatalf("source role = %v after abort", got)
			}
			// The cluster still serves and converges.
			ps := NewSession(net, simnet.MakeAddr("eu-south", "abort-ps"), "eu-south", PolicyPS)
			if _, err := ps.Modify(ctxT(t), subscriber.Identity{Type: subscriber.UID, Value: profiles[0].ID},
				store.Mod{Kind: store.ModReplace, Attr: "postAbort", Vals: []string{"ok"}}); err != nil {
				t.Fatalf("write after abort: %v", err)
			}
			if err := u.WaitReplication(ctxT(t)); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestMigrateRelease retires the source replica: it leaves the table
// and the element, and its on-disk state is gone.
func TestMigrateRelease(t *testing.T) {
	net, u, partID, target, profiles := migrationUDR(t, 10)
	before, _ := u.Partition(partID)
	source := before.Master().Element

	rep, err := u.MigratePartition(ctxT(t), partID, target, true)
	if err != nil {
		t.Fatalf("migrate: %v", err)
	}
	if !rep.Released {
		t.Fatalf("report = %+v, want Released", rep)
	}
	if u.Element(source).Replica(partID) != nil {
		t.Fatal("released source still hosts the replica")
	}
	after, _ := u.Partition(partID)
	for _, ref := range after.Replicas {
		if ref.Element == source {
			t.Fatalf("released source still in the table: %v", after.Replicas)
		}
	}
	if after.HomeSite != u.Element(target).Site() {
		t.Fatalf("home site = %s, want the target's", after.HomeSite)
	}
	// The moved partition still serves all its rows.
	fe := NewSession(net, simnet.MakeAddr("eu-north", "rel-fe"), "eu-north", PolicyFE)
	for _, p := range profiles {
		got, _, _, err := fe.ReadProfile(ctxT(t), subscriber.Identity{Type: subscriber.UID, Value: p.ID})
		if err != nil || got.ID != p.ID {
			t.Fatalf("read %s after release: %v", p.ID, err)
		}
	}
}

// TestMigrateValidation pins the control-plane error classes: unknown
// partition and element, a target already hosting a replica, a move
// onto the current master, and the in-flight conflict.
func TestMigrateValidation(t *testing.T) {
	_, u, partID, target, _ := migrationUDR(t, 4)
	ctx := ctxT(t)
	part, _ := u.Partition(partID)

	if _, err := u.MigratePartition(ctx, "p-nope", target, false); err == nil ||
		!strings.Contains(err.Error(), "unknown partition") {
		t.Fatalf("unknown partition: %v", err)
	}
	if _, err := u.MigratePartition(ctx, partID, "se-nope", false); err == nil ||
		!strings.Contains(err.Error(), "unknown element") {
		t.Fatalf("unknown element: %v", err)
	}
	if _, err := u.MigratePartition(ctx, partID, part.Replicas[1].Element, false); !errors.Is(err, rebalance.ErrConflict) {
		t.Fatalf("target hosts replica: %v", err)
	}
	if _, err := u.MigratePartition(ctx, partID, part.Master().Element, false); err == nil {
		t.Fatal("move onto the current master accepted")
	}

	// In-flight conflict: hold a migration open at the copy boundary.
	hold := make(chan struct{})
	entered := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		_, err := u.MigratePartition(ctx, partID, target, false,
			WithMigrateHooks(rebalance.Hooks{AfterCopy: func() {
				close(entered)
				<-hold
			}}))
		done <- err
	}()
	<-entered
	if _, err := u.MigratePartition(ctx, partID, target, false); !errors.Is(err, ErrMigrationInFlight) {
		t.Fatalf("in-flight conflict: %v", err)
	}
	close(hold)
	if err := <-done; err != nil {
		t.Fatalf("held migration failed: %v", err)
	}
}

// TestMigrateStaleEpochReferral pins the referral path: after a move,
// a request stamped with the old epoch gets the retryable
// ErrStalePlacement from any replica instead of being served.
func TestMigrateStaleEpochReferral(t *testing.T) {
	net, u, partID, target, profiles := migrationUDR(t, 4)
	before, _ := u.Partition(partID)
	staleEpoch := before.Epoch
	oldMaster := before.Master()

	if _, err := u.MigratePartition(ctxT(t), partID, target, false); err != nil {
		t.Fatal(err)
	}
	_, err := net.Call(ctxT(t), simnet.MakeAddr("eu-south", "stale-cli"), oldMaster.Addr, se.TxnReq{
		Partition: partID,
		Epoch:     staleEpoch,
		Ops:       []se.TxnOp{{Kind: se.TxnGet, Key: profiles[0].ID}},
	})
	if !errors.Is(err, se.ErrStalePlacement) {
		t.Fatalf("stale-epoch request got %v, want ErrStalePlacement", err)
	}
}

// TestRebalanceAfterAddSite pins the scale-out placement gap fix: a
// site added with RebalanceOnAddSite takes over existing master
// partitions, not just future subscribers.
func TestRebalanceAfterAddSite(t *testing.T) {
	net := simnet.New(simnet.FastConfig())
	cfg := DefaultConfig()
	cfg.Sites = []SiteSpec{{Name: "eu-south", SEs: 1, PartitionsPerSE: 4}}
	cfg.ReplicationFactor = 1
	cfg.RebalanceOnAddSite = true
	u, err := New(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(u.Stop)
	gen := subscriber.NewGenerator(u.Sites()...)
	for i := 0; i < 120; i++ {
		if err := u.SeedDirect(gen.Profile(i)); err != nil {
			t.Fatal(err)
		}
	}

	if _, _, err := u.AddSite(ctxT(t), SiteSpec{Name: "apac", SEs: 1, PartitionsPerSE: 1}); err != nil {
		t.Fatal(err)
	}
	newEl := u.Element("se-apac-0")
	masters := 0
	rows := 0
	for _, partID := range newEl.Partitions() {
		pr := newEl.Replica(partID)
		if pr.Store.Role() == store.Master {
			masters++
			rows += pr.Store.Len()
		}
	}
	// Its own fresh (empty) home partition plus at least one migrated
	// loaded partition.
	if masters < 2 || rows == 0 {
		t.Fatalf("new site took %d masters / %d rows; rebalance did not move load", masters, rows)
	}
	// Reads of migrated subscribers still resolve through the maps.
	fe := NewSession(net, simnet.MakeAddr("apac", "fe"), "apac", PolicyFE)
	if _, _, _, err := fe.ReadProfile(ctxT(t), subscriber.Identity{Type: subscriber.UID, Value: gen.Profile(0).ID}); err != nil {
		t.Fatalf("read after rebalance: %v", err)
	}
}

// TestRebalanceBalanced pins the no-op: a balanced cluster plans no
// moves.
func TestRebalanceBalanced(t *testing.T) {
	_, u, _ := testUDR(t, 30)
	res, err := u.Rebalance(ctxT(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Plan) != 0 {
		t.Fatalf("balanced cluster planned %v", res.Plan)
	}
}
