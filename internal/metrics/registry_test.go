package metrics

import (
	"sync"
	"testing"
	"time"
)

func findFamily(t *testing.T, snaps []FamilySnapshot, name string) FamilySnapshot {
	t.Helper()
	for _, f := range snaps {
		if f.Name == name {
			return f
		}
	}
	t.Fatalf("family %q not gathered", name)
	return FamilySnapshot{}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("udr_test_total", "help", "site").With("eu")
	b := r.Counter("udr_test_total", "help", "site").With("eu")
	if a != b {
		t.Fatal("same name+labels returned distinct counters")
	}
	a.Add(3)
	if b.Value() != 3 {
		t.Fatalf("value = %d, want 3", b.Value())
	}
}

func TestRegistryMismatchPanics(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: no panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	r.Counter("udr_a_total", "h", "site")
	expectPanic("kind change", func() { r.Gauge("udr_a_total", "h", "site") })
	expectPanic("label count change", func() { r.Counter("udr_a_total", "h", "site", "el") })
	expectPanic("label name change", func() { r.Counter("udr_a_total", "h", "element") })
	expectPanic("bad metric name", func() { r.Counter("udr-bad", "h") })
	expectPanic("bad label name", func() { r.Counter("udr_b_total", "h", "le-gal") })
	expectPanic("label value arity", func() { r.Counter("udr_c_total", "h", "site").With("eu", "x") })
}

func TestRegistryPopulationModes(t *testing.T) {
	r := NewRegistry()

	r.Counter("udr_owned_total", "registry-owned", "site").With("eu").Add(7)

	var ext Counter
	ext.Add(11)
	r.Counter("udr_attached_total", "attached", "site").Attach(&ext, "us")

	r.Gauge("udr_fn", "func-backed", "site").Func(func() float64 { return 2.5 }, "eu")

	r.Gauge("udr_collected", "collector-backed", "part").Collect(func(emit Emit) {
		emit(1, "p1")
		emit(2, "p0") // out of order: Gather must sort
	})

	snaps := r.Gather()

	if f := findFamily(t, snaps, "udr_owned_total"); f.Samples[0].Value != 7 {
		t.Fatalf("owned = %v", f.Samples[0].Value)
	}
	if f := findFamily(t, snaps, "udr_attached_total"); f.Samples[0].Value != 11 {
		t.Fatalf("attached = %v", f.Samples[0].Value)
	}
	if f := findFamily(t, snaps, "udr_fn"); f.Samples[0].Value != 2.5 {
		t.Fatalf("func = %v", f.Samples[0].Value)
	}
	f := findFamily(t, snaps, "udr_collected")
	if len(f.Samples) != 2 || f.Samples[0].LabelValues[0] != "p0" || f.Samples[1].LabelValues[0] != "p1" {
		t.Fatalf("collector samples unsorted: %+v", f.Samples)
	}

	// Families gathered in name order.
	for i := 1; i < len(snaps); i++ {
		if snaps[i-1].Name >= snaps[i].Name {
			t.Fatalf("families unsorted: %s before %s", snaps[i-1].Name, snaps[i].Name)
		}
	}
}

func TestRegistryAttachReplaces(t *testing.T) {
	r := NewRegistry()
	v := r.Counter("udr_re_total", "h", "site")
	var first, second Counter
	first.Add(1)
	second.Add(2)
	v.Attach(&first, "eu")
	v.Attach(&second, "eu") // same labels: replaces, no duplicate series
	f := findFamily(t, r.Gather(), "udr_re_total")
	if len(f.Samples) != 1 || f.Samples[0].Value != 2 {
		t.Fatalf("samples = %+v, want single value 2", f.Samples)
	}
}

func TestRegistryEmptyFamilyStillGathered(t *testing.T) {
	r := NewRegistry()
	r.Histogram("udr_idle_seconds", "never recorded", "site")
	f := findFamily(t, r.Gather(), "udr_idle_seconds")
	if len(f.Samples) != 0 {
		t.Fatalf("idle family has %d samples", len(f.Samples))
	}
}

func TestHistogramExportCumulative(t *testing.T) {
	var h Histogram
	h.Record(3 * time.Microsecond)   // bucket 1: [2µs, 4µs)
	h.Record(3 * time.Microsecond)   // bucket 1
	h.Record(100 * time.Microsecond) // bucket 6: [64µs, 128µs)
	h.Record(time.Hour)              // beyond export bound: +Inf only

	e := h.Export()
	if len(e.Buckets) != exportBucketCount {
		t.Fatalf("bucket count = %d, want %d", len(e.Buckets), exportBucketCount)
	}
	if e.Buckets[0].LE != 2e-06 || e.Buckets[1].LE != 4e-06 {
		t.Fatalf("bucket bounds = %v, %v", e.Buckets[0].LE, e.Buckets[1].LE)
	}
	if e.Buckets[0].Count != 0 {
		t.Fatalf("le=2µs count = %d, want 0", e.Buckets[0].Count)
	}
	if e.Buckets[1].Count != 2 {
		t.Fatalf("le=4µs count = %d, want 2 (cumulative)", e.Buckets[1].Count)
	}
	if e.Buckets[6].Count != 3 {
		t.Fatalf("le=128µs count = %d, want 3 (cumulative)", e.Buckets[6].Count)
	}
	last := e.Buckets[exportBucketCount-1]
	if last.Count != 3 {
		t.Fatalf("last bound count = %d, want 3 (hour-long outlier excluded)", last.Count)
	}
	if e.Count != 4 {
		t.Fatalf("total = %d, want 4 (+Inf catches the outlier)", e.Count)
	}
	wantSum := float64(int64(3+3+100)+time.Hour.Microseconds()) / 1e6
	if e.Sum != wantSum {
		t.Fatalf("sum = %v, want %v", e.Sum, wantSum)
	}
}

func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	vec := r.Counter("udr_conc_total", "h", "worker")
	r.Gauge("udr_conc_collected", "h", "worker").Collect(func(emit Emit) {
		emit(1, "fixed")
	})
	hist := r.Histogram("udr_conc_seconds", "h", "worker")

	var wg sync.WaitGroup
	workers := []string{"a", "b", "c", "d"}
	for _, w := range workers {
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func(w string) {
				defer wg.Done()
				for n := 0; n < 200; n++ {
					vec.With(w).Inc()
					hist.With(w).Record(time.Duration(n) * time.Microsecond)
				}
			}(w)
		}
	}
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < 50; n++ {
				r.Gather()
			}
		}()
	}
	wg.Wait()

	f := findFamily(t, r.Gather(), "udr_conc_total")
	if len(f.Samples) != len(workers) {
		t.Fatalf("series = %d, want %d", len(f.Samples), len(workers))
	}
	for _, s := range f.Samples {
		if s.Value != 800 {
			t.Fatalf("worker %v = %v, want 800", s.LabelValues, s.Value)
		}
	}
}
