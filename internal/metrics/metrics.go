// Package metrics provides the measurement primitives used by every
// experiment in this repository: latency histograms, availability
// accounting, staleness counters and throughput meters.
//
// All types are safe for concurrent use. The histogram uses fixed
// logarithmic buckets so recording is lock-free and allocation-free,
// which keeps the act of measuring from perturbing the latencies
// being measured.
package metrics

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// bucketCount is the number of logarithmic latency buckets.
// Bucket i covers [2^i, 2^(i+1)) microseconds, i in [0, bucketCount).
// 2^63 µs is far beyond any latency we measure.
const bucketCount = 64

// Histogram is a lock-free logarithmic latency histogram.
// The zero value is ready to use.
type Histogram struct {
	buckets [bucketCount]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64 // microseconds
	min     atomic.Int64 // microseconds; math.MaxInt64 when empty
	max     atomic.Int64 // microseconds
	once    sync.Once
	// exemplars holds one trace-linked observation per export bucket
	// (slot exportBucketCount is the +Inf bucket). Lock-free pointer
	// publish, last writer wins: sampled requests overwrite the slot
	// their latency lands in, so a scrape's p99 bucket carries the ID
	// of a recent trace that actually paid that latency.
	exemplars [exportBucketCount + 1]atomic.Pointer[exemplar]
}

// exemplar links one observation to the trace that produced it
// (OpenMetrics exemplars).
type exemplar struct {
	traceID string
	value   float64 // seconds
}

func (h *Histogram) init() {
	h.once.Do(func() { h.min.Store(math.MaxInt64) })
}

// bucketFor returns the bucket index for a duration.
func bucketFor(d time.Duration) int {
	us := d.Microseconds()
	if us < 1 {
		return 0
	}
	b := 63 - bits.LeadingZeros64(uint64(us))
	if b >= bucketCount {
		b = bucketCount - 1
	}
	return b
}

// Record adds one observation.
func (h *Histogram) Record(d time.Duration) {
	h.init()
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	h.buckets[bucketFor(d)].Add(1)
	h.count.Add(1)
	h.sum.Add(us)
	for {
		cur := h.min.Load()
		if us >= cur || h.min.CompareAndSwap(cur, us) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if us <= cur || h.max.CompareAndSwap(cur, us) {
			break
		}
	}
}

// SetExemplar attaches a trace ID to the export bucket d falls in.
// Call it only for observations already Recorded and only for sampled
// traces; the unsampled hot path never touches the slots.
func (h *Histogram) SetExemplar(d time.Duration, traceID string) {
	if traceID == "" {
		return
	}
	b := bucketFor(d)
	if b >= exportBucketCount {
		b = exportBucketCount // +Inf slot
	}
	h.exemplars[b].Store(&exemplar{traceID: traceID, value: d.Seconds()})
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Mean returns the mean of recorded observations.
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load()/n) * time.Microsecond
}

// Min returns the smallest recorded observation.
func (h *Histogram) Min() time.Duration {
	h.init()
	m := h.min.Load()
	if m == math.MaxInt64 {
		return 0
	}
	return time.Duration(m) * time.Microsecond
}

// Max returns the largest recorded observation.
func (h *Histogram) Max() time.Duration {
	return time.Duration(h.max.Load()) * time.Microsecond
}

// Percentile returns an upper-bound estimate of the p-th percentile
// (p in [0,100]). The estimate is the upper edge of the logarithmic
// bucket containing the percentile, so it is within 2x of the true
// value, which is adequate for the order-of-magnitude comparisons the
// experiments make.
func (h *Histogram) Percentile(p float64) time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	rank := int64(math.Ceil(p / 100 * float64(n)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := 0; i < bucketCount; i++ {
		cum += h.buckets[i].Load()
		if cum >= rank {
			// Upper edge of bucket i is 2^(i+1) µs.
			return time.Duration(1<<uint(i+1)) * time.Microsecond
		}
	}
	return h.Max()
}

// Snapshot captures the histogram's state for reporting.
type Snapshot struct {
	Count          int64
	Mean, Min, Max time.Duration
	P50, P95, P99  time.Duration
	P999           time.Duration
}

// Snapshot returns a point-in-time summary.
func (h *Histogram) Snapshot() Snapshot {
	return Snapshot{
		Count: h.Count(),
		Mean:  h.Mean(),
		Min:   h.Min(),
		Max:   h.Max(),
		P50:   h.Percentile(50),
		P95:   h.Percentile(95),
		P99:   h.Percentile(99),
		P999:  h.Percentile(99.9),
	}
}

// String renders the snapshot as a single report row.
func (s Snapshot) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v max=%v",
		s.Count, s.Mean, s.P50, s.P95, s.P99, s.Max)
}

// Counter is an atomic event counter. The zero value is ready to use.
type Counter struct{ n atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds delta.
func (c *Counter) Add(delta int64) { c.n.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n.Load() }

// Gauge is an atomic float64 instantaneous value. The zero value is
// ready to use.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// exportBucketCount caps the number of histogram buckets exposed to
// scrapers: buckets 0..exportBucketCount-1 get explicit upper bounds
// (2^1 µs .. 2^exportBucketCount µs ≈ 67s); everything above folds
// into the +Inf bucket. The bound set is fixed, so rate() and
// histogram_quantile() work across scrapes.
const exportBucketCount = 26

// HistogramBucket is one cumulative bucket of an exported histogram.
type HistogramBucket struct {
	// LE is the inclusive upper bound in seconds.
	LE float64
	// Count is the cumulative observation count at or below LE.
	Count int64
	// Exemplar is the trace ID of one observation that landed in this
	// bucket ("" when none); ExemplarValue is that observation's
	// latency in seconds.
	Exemplar      string
	ExemplarValue float64
}

// HistogramExport is a scraper-facing histogram snapshot with
// Prometheus-style cumulative buckets.
type HistogramExport struct {
	Buckets []HistogramBucket
	// Count is the total observation count (the +Inf bucket).
	Count int64
	// Sum is the observation sum in seconds.
	Sum float64
	// InfExemplar / InfExemplarValue carry the +Inf bucket's exemplar.
	InfExemplar      string
	InfExemplarValue float64
}

// Export snapshots the histogram with cumulative buckets in seconds.
// Count is derived from the bucket array (not the separate count
// field) so the exported snapshot is always internally consistent:
// the +Inf bucket equals Count even if observations land mid-export.
func (h *Histogram) Export() *HistogramExport {
	out := &HistogramExport{
		Buckets: make([]HistogramBucket, exportBucketCount),
		Sum:     float64(h.sum.Load()) / 1e6,
	}
	var cum int64
	for i := 0; i < bucketCount; i++ {
		n := h.buckets[i].Load()
		cum += n
		if i < exportBucketCount {
			out.Buckets[i] = HistogramBucket{
				// Upper edge of bucket i is 2^(i+1) µs.
				LE:    float64(int64(1)<<uint(i+1)) / 1e6,
				Count: cum,
			}
			if ex := h.exemplars[i].Load(); ex != nil {
				out.Buckets[i].Exemplar = ex.traceID
				out.Buckets[i].ExemplarValue = ex.value
			}
		}
	}
	out.Count = cum
	if ex := h.exemplars[exportBucketCount].Load(); ex != nil {
		out.InfExemplar = ex.traceID
		out.InfExemplarValue = ex.value
	}
	return out
}

// Availability tracks success/failure outcomes and derives an
// availability ratio, the metric behind the paper's five-nines
// requirement (§2.3 req 3). The zero value is ready to use.
type Availability struct {
	ok   atomic.Int64
	fail atomic.Int64
}

// Success records a served request.
func (a *Availability) Success() { a.ok.Add(1) }

// Failure records a rejected or failed request.
func (a *Availability) Failure() { a.fail.Add(1) }

// Ratio returns served/(served+failed), or 1 when nothing was recorded:
// a system that received no requests was never observed unavailable.
func (a *Availability) Ratio() float64 {
	ok, fail := a.ok.Load(), a.fail.Load()
	if ok+fail == 0 {
		return 1
	}
	return float64(ok) / float64(ok+fail)
}

// Counts returns the raw success and failure counts.
func (a *Availability) Counts() (ok, fail int64) { return a.ok.Load(), a.fail.Load() }

// Nines converts an availability ratio into "number of nines",
// e.g. 0.99999 -> 5.0. A ratio of 1 reports +Inf nines.
func Nines(ratio float64) float64 {
	if ratio >= 1 {
		return math.Inf(1)
	}
	if ratio <= 0 {
		return 0
	}
	return -math.Log10(1 - ratio)
}

// Meter measures throughput over its lifetime.
type Meter struct {
	start time.Time
	n     atomic.Int64
}

// NewMeter returns a meter whose clock starts now.
func NewMeter() *Meter { return &Meter{start: time.Now()} }

// Mark records n events.
func (m *Meter) Mark(n int64) { m.n.Add(n) }

// Rate returns events per second since the meter was created.
func (m *Meter) Rate() float64 {
	elapsed := time.Since(m.start).Seconds()
	if elapsed <= 0 {
		return 0
	}
	return float64(m.n.Load()) / elapsed
}

// Count returns the number of marked events.
func (m *Meter) Count() int64 { return m.n.Load() }

// Series is a named sequence of (x, y) points used by experiment
// reports, e.g. "availability vs time" or "lookup cost vs N".
type Series struct {
	Name   string
	mu     sync.Mutex
	points []Point
}

// Point is one sample in a Series.
type Point struct {
	X, Y float64
}

// NewSeries returns an empty named series.
func NewSeries(name string) *Series { return &Series{Name: name} }

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.points = append(s.points, Point{x, y})
}

// Points returns a sorted-by-X copy of the series.
func (s *Series) Points() []Point {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Point, len(s.points))
	copy(out, s.points)
	sort.Slice(out, func(i, j int) bool { return out[i].X < out[j].X })
	return out
}

// Len returns the number of points.
func (s *Series) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.points)
}
