package metrics

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Percentile(50) != 0 {
		t.Fatalf("empty histogram not zeroed: count=%d mean=%v p50=%v",
			h.Count(), h.Mean(), h.Percentile(50))
	}
	if h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("empty histogram min/max: %v %v", h.Min(), h.Max())
	}
}

func TestHistogramSingleValue(t *testing.T) {
	var h Histogram
	h.Record(100 * time.Microsecond)
	if h.Count() != 1 {
		t.Fatalf("count = %d, want 1", h.Count())
	}
	if h.Mean() != 100*time.Microsecond {
		t.Fatalf("mean = %v, want 100µs", h.Mean())
	}
	if h.Min() != 100*time.Microsecond || h.Max() != 100*time.Microsecond {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
}

func TestHistogramPercentileBounds(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	// p50 of 1..1000 µs is ~500µs; log-bucket estimate must be within
	// one power of two above.
	p50 := h.Percentile(50)
	if p50 < 500*time.Microsecond || p50 > 1024*time.Microsecond {
		t.Fatalf("p50 = %v, want within [500µs, 1024µs]", p50)
	}
	p99 := h.Percentile(99)
	if p99 < 990*time.Microsecond || p99 > 2048*time.Microsecond {
		t.Fatalf("p99 = %v, want within [990µs, 2048µs]", p99)
	}
	if h.Percentile(100) < h.Percentile(50) {
		t.Fatal("percentiles not monotone")
	}
}

func TestHistogramNegativeDurationClamped(t *testing.T) {
	var h Histogram
	h.Record(-5 * time.Microsecond)
	if h.Count() != 1 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Min() != 0 {
		t.Fatalf("min = %v, want 0", h.Min())
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	const workers, perWorker = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Record(time.Duration(i%100) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if h.Count() != workers*perWorker {
		t.Fatalf("count = %d, want %d", h.Count(), workers*perWorker)
	}
}

func TestSnapshotString(t *testing.T) {
	var h Histogram
	h.Record(time.Millisecond)
	s := h.Snapshot()
	if s.Count != 1 {
		t.Fatalf("snapshot count = %d", s.Count)
	}
	if s.String() == "" {
		t.Fatal("empty snapshot string")
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Fatalf("counter = %d, want 42", c.Value())
	}
}

func TestAvailabilityRatio(t *testing.T) {
	var a Availability
	if a.Ratio() != 1 {
		t.Fatalf("empty availability = %v, want 1", a.Ratio())
	}
	for i := 0; i < 99; i++ {
		a.Success()
	}
	a.Failure()
	if got := a.Ratio(); math.Abs(got-0.99) > 1e-9 {
		t.Fatalf("ratio = %v, want 0.99", got)
	}
	ok, fail := a.Counts()
	if ok != 99 || fail != 1 {
		t.Fatalf("counts = %d/%d", ok, fail)
	}
}

func TestNines(t *testing.T) {
	cases := []struct {
		ratio float64
		want  float64
	}{
		{0.9, 1},
		{0.99, 2},
		{0.999, 3},
		{0.99999, 5},
	}
	for _, c := range cases {
		if got := Nines(c.ratio); math.Abs(got-c.want) > 0.01 {
			t.Errorf("Nines(%v) = %v, want %v", c.ratio, got, c.want)
		}
	}
	if !math.IsInf(Nines(1), 1) {
		t.Error("Nines(1) should be +Inf")
	}
	if Nines(0) != 0 {
		t.Error("Nines(0) should be 0")
	}
}

func TestMeter(t *testing.T) {
	m := NewMeter()
	m.Mark(100)
	if m.Count() != 100 {
		t.Fatalf("count = %d", m.Count())
	}
	time.Sleep(time.Millisecond)
	if m.Rate() <= 0 {
		t.Fatalf("rate = %v, want > 0", m.Rate())
	}
}

func TestSeriesSortedPoints(t *testing.T) {
	s := NewSeries("test")
	s.Add(3, 30)
	s.Add(1, 10)
	s.Add(2, 20)
	pts := s.Points()
	if len(pts) != 3 || s.Len() != 3 {
		t.Fatalf("len = %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].X < pts[i-1].X {
			t.Fatalf("points not sorted: %v", pts)
		}
	}
	if pts[0].Y != 10 || pts[2].Y != 30 {
		t.Fatalf("wrong values: %v", pts)
	}
}

func TestBucketFor(t *testing.T) {
	if bucketFor(0) != 0 {
		t.Error("bucket for 0")
	}
	if bucketFor(time.Microsecond) != 0 {
		t.Error("bucket for 1µs")
	}
	if bucketFor(2*time.Microsecond) != 1 {
		t.Error("bucket for 2µs")
	}
	if bucketFor(1024*time.Microsecond) != 10 {
		t.Error("bucket for 1024µs")
	}
}
