// Registry: the exportable metrics surface.
//
// A Registry names instruments, attaches label sets to them, and
// snapshots everything with Gather — the substrate the Prometheus
// exposition in internal/obs serves. Instruments stay the lock-free
// primitives of this package; the registry only adds naming, labels
// and enumeration, so recording costs nothing extra.
//
// Three ways to populate a family:
//
//   - With(values...) creates a registry-owned instrument;
//   - Attach(inst, values...) registers an instrument that already
//     lives inside a subsystem struct (the repo's dominant idiom:
//     se.Element.Reads, AccessPoint.Latency, ...);
//   - Collect(fn) registers a callback that emits samples at Gather
//     time — the shape for values derived from dynamic topology
//     (per-partition replication lag, migration phase), where the
//     label sets themselves change at runtime.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Kind is the exported metric family type.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String returns the Prometheus TYPE keyword.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Registry is a named, labeled metric family set. The zero value is
// not usable; call NewRegistry. All methods are safe for concurrent
// use.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// family is one named metric family: fixed kind and label names, a
// set of labeled children, and optional gather-time collectors.
type family struct {
	name   string
	help   string
	kind   Kind
	labels []string

	mu         sync.Mutex
	children   map[string]*child
	order      []string // insertion-keyed child keys, sorted at Gather
	collectors []func(emit Emit)
}

// child is one labeled series of a family. Exactly one of the value
// sources is set, matching the family kind.
type child struct {
	labelValues []string
	counter     *Counter
	gauge       *Gauge
	gaugeFn     func() float64
	hist        *Histogram
}

// Emit adds one sample from a Collect callback. The number of label
// values must match the family's label names.
type Emit func(value float64, labelValues ...string)

// nameValid reports a legal Prometheus metric or label name.
func nameValid(s string, label bool) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		letter := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(!label && c == ':')
		if !letter && !(i > 0 && c >= '0' && c <= '9') {
			return false
		}
	}
	return true
}

// family returns the named family, creating it on first use. A
// re-registration with a different kind, help or label set is a
// programming error and panics.
func (r *Registry) family(name, help string, kind Kind, labels []string) *family {
	if !nameValid(name, false) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !nameValid(l, true) {
			panic(fmt.Sprintf("metrics: invalid label name %q in %q", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("metrics: %q re-registered with different kind or labels", name))
		}
		for i := range labels {
			if f.labels[i] != labels[i] {
				panic(fmt.Sprintf("metrics: %q re-registered with different labels", name))
			}
		}
		return f
	}
	f := &family{
		name:     name,
		help:     help,
		kind:     kind,
		labels:   append([]string(nil), labels...),
		children: make(map[string]*child),
	}
	r.families[name] = f
	return f
}

// Counter returns the named counter family, creating it on first use.
func (r *Registry) Counter(name, help string, labelNames ...string) *CounterVec {
	return &CounterVec{r.family(name, help, KindCounter, labelNames)}
}

// Gauge returns the named gauge family, creating it on first use.
func (r *Registry) Gauge(name, help string, labelNames ...string) *GaugeVec {
	return &GaugeVec{r.family(name, help, KindGauge, labelNames)}
}

// Histogram returns the named histogram family, creating it on first
// use.
func (r *Registry) Histogram(name, help string, labelNames ...string) *HistogramVec {
	return &HistogramVec{r.family(name, help, KindHistogram, labelNames)}
}

// childKey joins label values into a map key. \xff cannot appear in
// UTF-8 text, so the join is unambiguous.
func childKey(values []string) string { return strings.Join(values, "\xff") }

// child returns the labeled child, creating it with mk on first use.
func (f *family) child(values []string, mk func() *child) *child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %q wants %d label values, got %d",
			f.name, len(f.labels), len(values)))
	}
	key := childKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	c := mk()
	c.labelValues = append([]string(nil), values...)
	f.children[key] = c
	f.order = append(f.order, key)
	return c
}

// replaceChild installs a child, overwriting any previous series with
// the same label values (re-registration after topology changes).
func (f *family) replaceChild(values []string, c *child) {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %q wants %d label values, got %d",
			f.name, len(f.labels), len(values)))
	}
	c.labelValues = append([]string(nil), values...)
	key := childKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.children[key]; !ok {
		f.order = append(f.order, key)
	}
	f.children[key] = c
}

// collect registers a gather-time sample callback.
func (f *family) collect(fn func(emit Emit)) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.collectors = append(f.collectors, fn)
}

// CounterVec is a labeled counter family.
type CounterVec struct{ f *family }

// With returns the registry-owned counter for the label values,
// creating it on first use.
func (v *CounterVec) With(labelValues ...string) *Counter {
	return v.f.child(labelValues, func() *child { return &child{counter: &Counter{}} }).counter
}

// Attach registers an externally owned counter as the series for the
// label values, replacing any previous series, and returns it.
func (v *CounterVec) Attach(c *Counter, labelValues ...string) *Counter {
	v.f.replaceChild(labelValues, &child{counter: c})
	return c
}

// Collect registers a callback that emits counter samples at Gather
// time. Emitted values must be monotonically non-decreasing per label
// set for counter semantics to hold.
func (v *CounterVec) Collect(fn func(emit Emit)) { v.f.collect(fn) }

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ f *family }

// With returns the registry-owned gauge for the label values,
// creating it on first use.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	return v.f.child(labelValues, func() *child { return &child{gauge: &Gauge{}} }).gauge
}

// Attach registers an externally owned gauge as the series for the
// label values, replacing any previous series, and returns it.
func (v *GaugeVec) Attach(g *Gauge, labelValues ...string) *Gauge {
	v.f.replaceChild(labelValues, &child{gauge: g})
	return g
}

// Func registers a callback sampled at Gather time as the series for
// the label values.
func (v *GaugeVec) Func(fn func() float64, labelValues ...string) {
	v.f.replaceChild(labelValues, &child{gaugeFn: fn})
}

// Collect registers a callback that emits gauge samples at Gather
// time — the shape for label sets that change with topology.
func (v *GaugeVec) Collect(fn func(emit Emit)) { v.f.collect(fn) }

// HistogramVec is a labeled histogram family.
type HistogramVec struct{ f *family }

// With returns the registry-owned histogram for the label values,
// creating it on first use.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	return v.f.child(labelValues, func() *child { return &child{hist: &Histogram{}} }).hist
}

// Attach registers an externally owned histogram as the series for
// the label values, replacing any previous series, and returns it.
func (v *HistogramVec) Attach(h *Histogram, labelValues ...string) *Histogram {
	v.f.replaceChild(labelValues, &child{hist: h})
	return h
}

// Sample is one gathered series of a family.
type Sample struct {
	LabelValues []string
	// Value is the counter or gauge value; unset for histograms.
	Value float64
	// Hist is the cumulative-bucket snapshot; nil unless the family
	// is a histogram.
	Hist *HistogramExport
}

// FamilySnapshot is one gathered metric family, ready for exposition.
type FamilySnapshot struct {
	Name       string
	Help       string
	Kind       Kind
	LabelNames []string
	Samples    []Sample
}

// Gather snapshots every family: registered children plus collector
// output, families sorted by name, samples sorted by label values. A
// family with no samples still appears (its HELP/TYPE header is part
// of the scrape contract).
func (r *Registry) Gather() []FamilySnapshot {
	r.mu.RLock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	out := make([]FamilySnapshot, 0, len(fams))
	for _, f := range fams {
		out = append(out, f.gather())
	}
	return out
}

func (f *family) gather() FamilySnapshot {
	f.mu.Lock()
	children := make([]*child, 0, len(f.children))
	for _, key := range f.order {
		children = append(children, f.children[key])
	}
	collectors := make([]func(Emit), len(f.collectors))
	copy(collectors, f.collectors)
	f.mu.Unlock()

	snap := FamilySnapshot{
		Name:       f.name,
		Help:       f.help,
		Kind:       f.kind,
		LabelNames: f.labels,
	}
	for _, c := range children {
		s := Sample{LabelValues: c.labelValues}
		switch {
		case c.counter != nil:
			s.Value = float64(c.counter.Value())
		case c.gauge != nil:
			s.Value = c.gauge.Value()
		case c.gaugeFn != nil:
			s.Value = c.gaugeFn()
		case c.hist != nil:
			s.Hist = c.hist.Export()
		}
		snap.Samples = append(snap.Samples, s)
	}
	for _, fn := range collectors {
		fn(func(value float64, labelValues ...string) {
			if len(labelValues) != len(f.labels) {
				panic(fmt.Sprintf("metrics: %q collector emitted %d label values, want %d",
					f.name, len(labelValues), len(f.labels)))
			}
			snap.Samples = append(snap.Samples, Sample{
				LabelValues: append([]string(nil), labelValues...),
				Value:       value,
			})
		})
	}
	sort.SliceStable(snap.Samples, func(i, j int) bool {
		a, b := snap.Samples[i].LabelValues, snap.Samples[j].LabelValues
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return snap
}
