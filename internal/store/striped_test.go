package store

import (
	"fmt"
	"sort"
	"sync"
	"testing"
)

// TestIdentityIndex covers the secondary-index contract on every
// install path: local commit, modify, delete, replicated apply and
// direct put.
func TestIdentityIndex(t *testing.T) {
	s := New("r1")
	s.SetIndexedAttrs("imsi", "impu")

	txn := s.Begin(ReadCommitted)
	txn.Put("k1", Entry{"imsi": {"111"}, "impu": {"sip:1", "tel:1"}})
	txn.Put("k2", Entry{"imsi": {"222"}})
	if _, err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if key, ok := s.LookupByAttr("imsi", "111"); !ok || key != "k1" {
		t.Fatalf("imsi 111 -> %q %v", key, ok)
	}
	if key, ok := s.LookupByAttr("impu", "tel:1"); !ok || key != "k1" {
		t.Fatalf("impu tel:1 -> %q %v", key, ok)
	}
	if !s.IndexesAttr("imsi") || s.IndexesAttr("msisdn") {
		t.Fatal("IndexesAttr wrong")
	}

	// A modify that changes the identity re-points the index and
	// drops the stale value.
	txn = s.Begin(ReadCommitted)
	txn.Modify("k1", Mod{Kind: ModReplace, Attr: "imsi", Vals: []string{"333"}})
	if _, err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.LookupByAttr("imsi", "111"); ok {
		t.Fatal("stale identity value still indexed")
	}
	if key, ok := s.LookupByAttr("imsi", "333"); !ok || key != "k1" {
		t.Fatalf("imsi 333 -> %q %v", key, ok)
	}

	// Delete unindexes every value of the row.
	txn = s.Begin(ReadCommitted)
	txn.Delete("k1")
	if _, err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	for _, probe := range [][2]string{{"imsi", "333"}, {"impu", "sip:1"}, {"impu", "tel:1"}} {
		if _, ok := s.LookupByAttr(probe[0], probe[1]); ok {
			t.Fatalf("deleted row still indexed under %s=%s", probe[0], probe[1])
		}
	}

	// Replicated applies maintain the slave's index too.
	slave := New("s")
	slave.SetRole(Slave)
	slave.SetIndexedAttrs("imsi")
	slave.ApplyReplicated(&CommitRecord{CSN: 1, Origin: "m", Ops: []Op{
		{Kind: OpPut, Key: "k9", Entry: Entry{"imsi": {"999"}}},
	}})
	if key, ok := slave.LookupByAttr("imsi", "999"); !ok || key != "k9" {
		t.Fatalf("slave index -> %q %v", key, ok)
	}
	slave.ApplyReplicated(&CommitRecord{CSN: 2, Origin: "m", Ops: []Op{
		{Kind: OpDelete, Key: "k9"},
	}})
	if _, ok := slave.LookupByAttr("imsi", "999"); ok {
		t.Fatal("slave index kept a replicated-deleted row")
	}

	// Direct puts (repair merge, snapshot load) maintain it as well,
	// including the tombstone install path.
	s.PutDirect("k3", Entry{"imsi": {"444"}}, Meta{CSN: 7, WallTS: 7})
	if key, ok := s.LookupByAttr("imsi", "444"); !ok || key != "k3" {
		t.Fatalf("direct put index -> %q %v", key, ok)
	}
	s.PutDirect("k3", nil, Meta{CSN: 8, WallTS: 8, Tombstone: true})
	if _, ok := s.LookupByAttr("imsi", "444"); ok {
		t.Fatal("tombstone install left the row indexed")
	}
}

// TestSetIndexedAttrsRebuilds covers enabling the index after rows
// exist (WAL recovery installs rows before the SE re-attaches).
func TestSetIndexedAttrsRebuilds(t *testing.T) {
	s := New("r1")
	txn := s.Begin(ReadCommitted)
	txn.Put("k1", Entry{"imsi": {"111"}})
	if _, err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.LookupByAttr("imsi", "111"); ok {
		t.Fatal("index answered before being enabled")
	}
	s.SetIndexedAttrs("imsi")
	if key, ok := s.LookupByAttr("imsi", "111"); !ok || key != "k1" {
		t.Fatalf("rebuilt index -> %q %v", key, ok)
	}
}

// TestForEachMetaAndAny covers the zero-copy iteration paths,
// tombstones included.
func TestForEachMetaAndAny(t *testing.T) {
	s := New("r1")
	txn := s.Begin(ReadCommitted)
	txn.Put("a", Entry{"v": {"1"}})
	txn.Put("b", Entry{"v": {"2"}})
	txn.Commit()
	txn = s.Begin(ReadCommitted)
	txn.Delete("b")
	txn.Commit()

	metas := map[string]Meta{}
	s.ForEachMeta(func(k string, m Meta) bool {
		metas[k] = m
		return true
	})
	if len(metas) != 2 || !metas["b"].Tombstone || metas["a"].Tombstone {
		t.Fatalf("metas = %+v", metas)
	}

	rows := map[string]bool{}
	s.ForEachAny(func(k string, e Entry, m Meta) bool {
		rows[k] = m.Tombstone
		if !m.Tombstone && e.First("v") != "1" {
			t.Fatalf("row %s = %v", k, e)
		}
		return true
	})
	if len(rows) != 2 || !rows["b"] {
		t.Fatalf("rows = %+v", rows)
	}

	// Early stop honored.
	n := 0
	s.ForEachMeta(func(string, Meta) bool { n++; return false })
	if n != 1 {
		t.Fatalf("visited %d", n)
	}
}

// TestAscendKeys covers the ordered key index range iteration.
func TestAscendKeys(t *testing.T) {
	s := New("r1")
	for _, k := range []string{"d", "a", "c", "b", "e"} {
		txn := s.Begin(ReadCommitted)
		txn.Put(k, Entry{"v": {"1"}})
		txn.Commit()
	}
	var got []string
	s.AscendKeys("b", "e", func(k string) bool {
		got = append(got, k)
		return true
	})
	if fmt.Sprint(got) != "[b c d]" {
		t.Fatalf("range = %v", got)
	}
}

// TestConcurrentEngineConsistency is the striped-engine property
// test: concurrent transactions on a master, the ordered replication
// stream applying onto a slave, and compare-and-put merges (the
// repair path) all race across shards. Afterwards every invariant the
// refactor must preserve is checked: CSN total order, live
// accounting, ordered key index, identity index consistency, and
// master/slave convergence. Run it under -race (CI does).
func TestConcurrentEngineConsistency(t *testing.T) {
	const (
		workers = 8
		perW    = 120
		keys    = 48
	)
	master := New("m")
	master.SetIndexedAttrs("imsi")
	slave := New("s")
	slave.SetRole(Slave)
	slave.SetIndexedAttrs("imsi")

	// The commit hook runs under commitMu, so records arrive here in
	// CSN order; the applier goroutine replays the stream onto the
	// slave concurrently with the writers.
	stream := make(chan *CommitRecord, workers*perW)
	master.SetCommitHook(func(rec *CommitRecord) error {
		stream <- rec
		return nil
	})
	var applied sync.WaitGroup
	applied.Add(1)
	go func() {
		defer applied.Done()
		for rec := range stream {
			if err := slave.ApplyReplicated(rec); err != nil {
				t.Errorf("apply: %v", err)
				return
			}
		}
	}()

	// Repair-style CAS traffic races the writers on the master: a
	// same-version CompareAndPut must succeed without corrupting
	// state, a stale-version one must fail.
	var cas sync.WaitGroup
	casStop := make(chan struct{})
	cas.Add(1)
	go func() {
		defer cas.Done()
		i := 0
		for {
			select {
			case <-casStop:
				return
			default:
			}
			key := fmt.Sprintf("k%02d", i%keys)
			if e, m, ok := master.GetAny(key); ok {
				master.CompareAndPut(key, m, true, e, m)
				stale := m
				stale.CSN++
				if master.CompareAndPut(key, stale, true, e, m) {
					t.Error("stale CompareAndPut succeeded")
					return
				}
			}
			i++
		}
	}()

	var wg sync.WaitGroup
	csnCh := make(chan uint64, workers*perW)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				key := fmt.Sprintf("k%02d", (w*perW+i)%keys)
				txn := master.Begin(ReadCommitted)
				switch i % 5 {
				case 0, 1, 2:
					txn.Put(key, Entry{"imsi": {"id-" + key}, "w": {fmt.Sprint(w)}})
				case 3:
					txn.Modify(key, Mod{Kind: ModReplace, Attr: "w", Vals: []string{fmt.Sprint(i)}})
				case 4:
					txn.Delete(key)
				}
				rec, err := txn.Commit()
				if err != nil {
					t.Error(err)
					return
				}
				csnCh <- rec.CSN
			}
		}(w)
	}
	wg.Wait()
	close(csnCh)
	close(casStop)
	cas.Wait()
	close(stream)
	applied.Wait()
	if t.Failed() {
		return // a goroutine already reported the failure
	}

	// CSN total order: every commit got a unique slot and the final
	// CSN equals the commit count.
	seen := make(map[uint64]bool)
	var maxCSN uint64
	for c := range csnCh {
		if seen[c] {
			t.Fatalf("duplicate CSN %d", c)
		}
		seen[c] = true
		if c > maxCSN {
			maxCSN = c
		}
	}
	if len(seen) != workers*perW || maxCSN != uint64(workers*perW) || master.CSN() != maxCSN {
		t.Fatalf("commits=%d max=%d csn=%d", len(seen), maxCSN, master.CSN())
	}

	// Live accounting and the ordered key index agree with a full
	// scan of the shards.
	var scanned []string
	master.ForEach(func(k string, _ Entry, _ Meta) bool {
		scanned = append(scanned, k)
		return true
	})
	sort.Strings(scanned)
	idxKeys := master.Keys()
	if fmt.Sprint(scanned) != fmt.Sprint(idxKeys) {
		t.Fatalf("key index drifted:\nscan = %v\nkeys = %v", scanned, idxKeys)
	}
	if master.Len() != len(scanned) {
		t.Fatalf("live = %d, scan = %d", master.Len(), len(scanned))
	}

	// Identity index: every live row resolves, no stale values.
	type liveRow struct{ key, id string }
	var rows []liveRow
	master.ForEach(func(k string, e Entry, _ Meta) bool {
		rows = append(rows, liveRow{k, e.First("imsi")})
		return true
	})
	for _, r := range rows {
		if r.id == "" {
			// A Modify that lands on a tombstoned row recreates it
			// from the mods alone, so a live row may legitimately
			// carry no imsi (its history ends delete→modify); there
			// is nothing for the index to resolve.
			continue
		}
		if key, ok := master.LookupByAttr("imsi", r.id); !ok || key != r.key {
			t.Fatalf("index: %s -> %q %v, want %s", r.id, key, ok, r.key)
		}
	}
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("k%02d", i)
		if master.isLive(key) {
			continue
		}
		if _, ok := master.LookupByAttr("imsi", "id-"+key); ok {
			t.Fatalf("dead row %s still indexed", key)
		}
	}

	// The slave replayed the full stream in order and converged.
	if slave.AppliedCSN() != master.CSN() {
		t.Fatalf("slave applied %d, master %d", slave.AppliedCSN(), master.CSN())
	}
	if slave.Len() != master.Len() {
		t.Fatalf("slave live %d, master %d", slave.Len(), master.Len())
	}
	master.ForEachAny(func(k string, e Entry, m Meta) bool {
		se, sm, ok := slave.GetAny(k)
		if !ok || sm.Tombstone != m.Tombstone || (!m.Tombstone && !e.Equal(se)) {
			t.Errorf("divergence at %s: master=%v/%v slave=%v/%v", k, e, m.Tombstone, se, sm.Tombstone)
			return false
		}
		return true
	})
}
