package store

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func entry(kv ...string) Entry {
	e := Entry{}
	for i := 0; i+1 < len(kv); i += 2 {
		e[kv[i]] = append(e[kv[i]], kv[i+1])
	}
	return e
}

func TestPutGetCommit(t *testing.T) {
	s := New("r1")
	txn := s.Begin(ReadCommitted)
	txn.Put("k1", entry("a", "1"))
	rec, err := txn.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if rec.CSN != 1 || len(rec.Ops) != 1 || rec.Origin != "r1" {
		t.Fatalf("rec = %+v", rec)
	}
	e, m, ok := s.GetCommitted("k1")
	if !ok || e.First("a") != "1" || m.CSN != 1 {
		t.Fatalf("get = %v %v %v", e, m, ok)
	}
	if s.Len() != 1 || s.CSN() != 1 {
		t.Fatalf("len=%d csn=%d", s.Len(), s.CSN())
	}
}

func TestReadCommittedIsolation(t *testing.T) {
	s := New("r1")
	seed := s.Begin(ReadCommitted)
	seed.Put("k", entry("v", "committed"))
	if _, err := seed.Commit(); err != nil {
		t.Fatal(err)
	}

	writer := s.Begin(ReadCommitted)
	writer.Put("k", entry("v", "uncommitted"))

	// A concurrent reader must see only the committed version.
	reader := s.Begin(ReadCommitted)
	e, ok := reader.Get("k")
	if !ok || e.First("v") != "committed" {
		t.Fatalf("reader saw %v (dirty read!)", e)
	}

	// The writer itself sees its own write.
	e, ok = writer.Get("k")
	if !ok || e.First("v") != "uncommitted" {
		t.Fatalf("writer saw %v (no read-your-writes)", e)
	}

	if _, err := writer.Commit(); err != nil {
		t.Fatal(err)
	}
	e, _, _ = s.GetCommitted("k")
	if e.First("v") != "uncommitted" {
		t.Fatalf("after commit: %v", e)
	}
}

func TestModifySemantics(t *testing.T) {
	s := New("r1")
	txn := s.Begin(ReadCommitted)
	txn.Put("k", entry("flags", "a"))
	if _, err := txn.Commit(); err != nil {
		t.Fatal(err)
	}

	txn = s.Begin(ReadCommitted)
	txn.Modify("k",
		Mod{Kind: ModAdd, Attr: "flags", Vals: []string{"b"}},
		Mod{Kind: ModReplace, Attr: "x", Vals: []string{"1"}},
	)
	if _, err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	e, _, _ := s.GetCommitted("k")
	if len(e["flags"]) != 2 || e.First("x") != "1" {
		t.Fatalf("entry = %v", e)
	}

	txn = s.Begin(ReadCommitted)
	txn.Modify("k",
		Mod{Kind: ModDelete, Attr: "flags", Vals: []string{"a"}},
		Mod{Kind: ModDelete, Attr: "x"},
	)
	if _, err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	e, _, _ = s.GetCommitted("k")
	if len(e["flags"]) != 1 || e["flags"][0] != "b" {
		t.Fatalf("flags = %v", e["flags"])
	}
	if _, ok := e["x"]; ok {
		t.Fatalf("x not deleted: %v", e)
	}
}

func TestModifyReplaceEmptyDeletesAttr(t *testing.T) {
	s := New("r1")
	txn := s.Begin(ReadCommitted)
	txn.Put("k", entry("a", "1"))
	txn.Commit()
	txn = s.Begin(ReadCommitted)
	txn.Modify("k", Mod{Kind: ModReplace, Attr: "a"})
	txn.Commit()
	e, _, _ := s.GetCommitted("k")
	if _, ok := e["a"]; ok {
		t.Fatalf("attr survived empty replace: %v", e)
	}
}

func TestDelete(t *testing.T) {
	s := New("r1")
	txn := s.Begin(ReadCommitted)
	txn.Put("k", entry("a", "1"))
	txn.Commit()
	txn = s.Begin(ReadCommitted)
	txn.Delete("k")
	rec, err := txn.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Ops[0].Kind != OpDelete {
		t.Fatalf("op = %v", rec.Ops[0])
	}
	if _, _, ok := s.GetCommitted("k"); ok {
		t.Fatal("deleted row still visible")
	}
	if s.Len() != 0 {
		t.Fatalf("len = %d", s.Len())
	}
	// Tombstone retained for anti-entropy.
	if m, ok := s.MetaOf("k"); !ok || !m.Tombstone {
		t.Fatalf("tombstone meta = %v %v", m, ok)
	}
}

func TestAtomicMultiRowCommit(t *testing.T) {
	s := New("r1")
	txn := s.Begin(ReadCommitted)
	txn.Put("a", entry("v", "1"))
	txn.Put("b", entry("v", "2"))
	txn.Delete("c")
	rec, err := txn.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if rec.CSN != 1 || len(rec.Ops) != 3 {
		t.Fatalf("rec = %+v", rec)
	}
	// All rows carry the same commit CSN: atomicity witness.
	_, ma, _ := s.GetCommitted("a")
	_, mb, _ := s.GetCommitted("b")
	if ma.CSN != mb.CSN {
		t.Fatalf("csns differ: %d %d", ma.CSN, mb.CSN)
	}
}

func TestReadOnlyCommitNoRecord(t *testing.T) {
	s := New("r1")
	txn := s.Begin(ReadCommitted)
	txn.Get("nothing")
	rec, err := txn.Commit()
	if err != nil || rec != nil {
		t.Fatalf("read-only commit: %v %v", rec, err)
	}
	if s.CSN() != 0 {
		t.Fatalf("csn = %d", s.CSN())
	}
}

func TestDoubleCommitFails(t *testing.T) {
	s := New("r1")
	txn := s.Begin(ReadCommitted)
	txn.Put("k", entry("a", "1"))
	if _, err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := txn.Commit(); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("second commit err = %v", err)
	}
}

func TestAbort(t *testing.T) {
	s := New("r1")
	txn := s.Begin(ReadCommitted)
	txn.Put("k", entry("a", "1"))
	txn.Abort()
	if _, err := txn.Commit(); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("commit after abort = %v", err)
	}
	if _, _, ok := s.GetCommitted("k"); ok {
		t.Fatal("aborted write visible")
	}
}

func TestSlaveRejectsWrites(t *testing.T) {
	s := New("r1")
	s.SetRole(Slave)
	txn := s.Begin(ReadCommitted)
	txn.Put("k", entry("a", "1"))
	if _, err := txn.Commit(); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("slave write err = %v", err)
	}
	// Multi-master mode lifts the restriction (§5).
	s.SetMultiMaster(true)
	txn = s.Begin(ReadCommitted)
	txn.Put("k", entry("a", "1"))
	if _, err := txn.Commit(); err != nil {
		t.Fatalf("multi-master write: %v", err)
	}
}

func TestCapacity(t *testing.T) {
	s := New("r1")
	s.SetCapacity(2)
	for i := 0; i < 2; i++ {
		txn := s.Begin(ReadCommitted)
		txn.Put(fmt.Sprintf("k%d", i), entry("a", "1"))
		if _, err := txn.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	txn := s.Begin(ReadCommitted)
	txn.Put("k2", entry("a", "1"))
	if _, err := txn.Commit(); !errors.Is(err, ErrStoreFull) {
		t.Fatalf("over-capacity err = %v", err)
	}
	// Updates to existing rows still work at capacity.
	txn = s.Begin(ReadCommitted)
	txn.Put("k0", entry("a", "2"))
	if _, err := txn.Commit(); err != nil {
		t.Fatalf("update at capacity: %v", err)
	}
	// Deleting frees a slot.
	txn = s.Begin(ReadCommitted)
	txn.Delete("k0")
	txn.Commit()
	txn = s.Begin(ReadCommitted)
	txn.Put("k2", entry("a", "1"))
	if _, err := txn.Commit(); err != nil {
		t.Fatalf("insert after delete: %v", err)
	}
}

func TestApplyReplicatedOrder(t *testing.T) {
	master := New("m")
	slave := New("s")
	slave.SetRole(Slave)

	var recs []*CommitRecord
	for i := 0; i < 3; i++ {
		txn := master.Begin(ReadCommitted)
		txn.Put(fmt.Sprintf("k%d", i), entry("v", fmt.Sprint(i)))
		rec, err := txn.Commit()
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, rec)
	}

	// Out-of-order apply must be rejected (serialization order
	// guarantee, §3.2).
	if err := slave.ApplyReplicated(recs[1]); !errors.Is(err, ErrBadCSN) {
		t.Fatalf("gap apply err = %v", err)
	}
	for _, rec := range recs {
		if err := slave.ApplyReplicated(rec); err != nil {
			t.Fatal(err)
		}
	}
	// Duplicate delivery is idempotent.
	if err := slave.ApplyReplicated(recs[2]); err != nil {
		t.Fatalf("duplicate apply err = %v", err)
	}
	if slave.AppliedCSN() != 3 || slave.Len() != 3 {
		t.Fatalf("applied=%d len=%d", slave.AppliedCSN(), slave.Len())
	}
	e, _, _ := slave.GetCommitted("k2")
	if e.First("v") != "2" {
		t.Fatalf("slave row = %v", e)
	}
}

func TestModifyPostImageConvergesSlave(t *testing.T) {
	// Slaves apply post-images, so they converge even for modify ops.
	master := New("m")
	slave := New("s")
	slave.SetRole(Slave)

	txn := master.Begin(ReadCommitted)
	txn.Put("k", entry("n", "1"))
	rec, _ := txn.Commit()
	slave.ApplyReplicated(rec)

	txn = master.Begin(ReadCommitted)
	txn.Modify("k", Mod{Kind: ModReplace, Attr: "n", Vals: []string{"2"}})
	rec, _ = txn.Commit()
	if rec.Ops[0].Entry.First("n") != "2" {
		t.Fatalf("post-image = %v", rec.Ops[0].Entry)
	}
	slave.ApplyReplicated(rec)
	e, _, _ := slave.GetCommitted("k")
	if e.First("n") != "2" {
		t.Fatalf("slave = %v", e)
	}
}

func TestCommitHookFailureSurfaces(t *testing.T) {
	s := New("r1")
	hookErr := errors.New("durability failed")
	s.SetCommitHook(func(rec *CommitRecord) error { return hookErr })
	txn := s.Begin(ReadCommitted)
	txn.Put("k", entry("a", "1"))
	_, err := txn.Commit()
	if !errors.Is(err, hookErr) {
		t.Fatalf("err = %v", err)
	}
	// Data stays committed locally (the paper's "one replica updated
	// is acceptable").
	if _, _, ok := s.GetCommitted("k"); !ok {
		t.Fatal("local data rolled back")
	}
}

func TestConcurrentCommitsSerialize(t *testing.T) {
	s := New("r1")
	const workers, per = 8, 50
	var wg sync.WaitGroup
	csns := make(chan uint64, workers*per)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				txn := s.Begin(ReadCommitted)
				txn.Put(fmt.Sprintf("w%d-k%d", w, i), entry("v", "1"))
				rec, err := txn.Commit()
				if err != nil {
					t.Error(err)
					return
				}
				csns <- rec.CSN
			}
		}(w)
	}
	wg.Wait()
	close(csns)
	seen := make(map[uint64]bool)
	for c := range csns {
		if seen[c] {
			t.Fatalf("duplicate CSN %d", c)
		}
		seen[c] = true
	}
	if len(seen) != workers*per || s.CSN() != uint64(workers*per) {
		t.Fatalf("commits=%d csn=%d", len(seen), s.CSN())
	}
}

func TestReplay(t *testing.T) {
	s := New("r1")
	rec := &CommitRecord{CSN: 5, Origin: "r1", Ops: []Op{
		{Kind: OpPut, Key: "k", Entry: entry("a", "1")},
	}}
	s.Replay(rec)
	if s.CSN() != 5 || s.Len() != 1 {
		t.Fatalf("csn=%d len=%d", s.CSN(), s.Len())
	}
	// Next commit continues the sequence.
	txn := s.Begin(ReadCommitted)
	txn.Put("k2", entry("a", "2"))
	rec2, _ := txn.Commit()
	if rec2.CSN != 6 {
		t.Fatalf("csn after replay = %d", rec2.CSN)
	}
}

func TestEntryCloneIndependent(t *testing.T) {
	e := entry("a", "1")
	c := e.Clone()
	c["a"][0] = "mutated"
	c["b"] = []string{"2"}
	if e.First("a") != "1" || len(e) != 1 {
		t.Fatalf("clone not independent: %v", e)
	}
	var nilE Entry
	if nilE.Clone() != nil {
		t.Fatal("nil clone should be nil")
	}
}

func TestGetReturnsImmutableVersion(t *testing.T) {
	// Reads hand back the installed copy-on-write version with zero
	// copying. A later commit must install a fresh version, never
	// mutate the one an earlier reader still holds.
	s := New("r1")
	txn := s.Begin(ReadCommitted)
	txn.Put("k", entry("a", "1"))
	txn.Commit()
	e1, _, _ := s.GetCommitted("k")

	txn = s.Begin(ReadCommitted)
	txn.Put("k", entry("a", "2"))
	txn.Commit()
	txn = s.Begin(ReadCommitted)
	txn.Modify("k", Mod{Kind: ModReplace, Attr: "a", Vals: []string{"3"}})
	txn.Commit()

	if e1.First("a") != "1" {
		t.Fatalf("old version mutated in place: %v", e1)
	}
	e2, _, _ := s.GetCommitted("k")
	if e2.First("a") != "3" {
		t.Fatalf("new version = %v", e2)
	}
	// The caller-supplied entry stays decoupled from the store.
	in := entry("a", "4")
	txn = s.Begin(ReadCommitted)
	txn.Put("k", in)
	txn.Commit()
	in["a"][0] = "mutated"
	e3, _, _ := s.GetCommitted("k")
	if e3.First("a") != "4" {
		t.Fatal("caller mutation leaked into the store")
	}
}

func TestMultiMasterTicksVC(t *testing.T) {
	s := New("r1")
	s.SetMultiMaster(true)
	txn := s.Begin(ReadCommitted)
	txn.Put("k", entry("a", "1"))
	rec, err := txn.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Ops[0].VC.Get("r1") != 1 {
		t.Fatalf("op VC = %v", rec.Ops[0].VC)
	}
	_, m, _ := s.GetCommitted("k")
	if m.VC.Get("r1") != 1 {
		t.Fatalf("row VC = %v", m.VC)
	}
	// Second write ticks again.
	txn = s.Begin(ReadCommitted)
	txn.Put("k", entry("a", "2"))
	rec, _ = txn.Commit()
	if rec.Ops[0].VC.Get("r1") != 2 {
		t.Fatalf("second op VC = %v", rec.Ops[0].VC)
	}
}

func TestWallTSMonotonic(t *testing.T) {
	s := New("r1")
	var last int64
	for i := 0; i < 100; i++ {
		txn := s.Begin(ReadCommitted)
		txn.Put("k", entry("a", fmt.Sprint(i)))
		rec, err := txn.Commit()
		if err != nil {
			t.Fatal(err)
		}
		if rec.WallTS <= last {
			t.Fatalf("WallTS not monotonic: %d then %d", last, rec.WallTS)
		}
		last = rec.WallTS
	}
}

func TestEntryEqualProperty(t *testing.T) {
	f := func(keys []uint8, vals []string) bool {
		e := Entry{}
		for i, k := range keys {
			attr := fmt.Sprintf("a%d", k%8)
			v := "v"
			if i < len(vals) {
				v = vals[i]
			}
			e[attr] = append(e[attr], v)
		}
		return e.Equal(e.Clone())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestKeysSorted(t *testing.T) {
	s := New("r1")
	for _, k := range []string{"z", "a", "m"} {
		txn := s.Begin(ReadCommitted)
		txn.Put(k, entry("v", "1"))
		txn.Commit()
	}
	keys := s.Keys()
	if len(keys) != 3 || keys[0] != "a" || keys[2] != "z" {
		t.Fatalf("keys = %v", keys)
	}
}

func TestForEachEarlyStop(t *testing.T) {
	s := New("r1")
	for i := 0; i < 10; i++ {
		txn := s.Begin(ReadCommitted)
		txn.Put(fmt.Sprintf("k%d", i), entry("v", "1"))
		txn.Commit()
	}
	count := 0
	s.ForEach(func(string, Entry, Meta) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("visited %d", count)
	}
}
