// Package store implements the in-RAM transactional storage engine
// that backs one partition replica inside a storage element.
//
// It realizes the paper's §3.2 design decisions:
//
//   - ACID is guaranteed only for transactions on one storage element;
//     a Store is the unit of atomicity.
//   - Isolation between concurrent transactions is READ_COMMITTED:
//     readers always see the latest committed row version and are
//     never blocked by writers; writers buffer a private write-set
//     applied atomically at commit.
//   - Commits are totally ordered by a commit sequence number (CSN).
//     The commit order *is* the serialization order the replication
//     stream must preserve at every slave copy (§3.2).
//
// A Store holds one partition replica; a storage element owns several
// Stores (its primary partition plus secondary copies).
package store

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/vclock"
)

// Isolation selects the transaction isolation level.
type Isolation int

const (
	// ReadCommitted is the paper's chosen level for intra-SE
	// transactions (§3.2 decision 2).
	ReadCommitted Isolation = iota
	// ReadUncommitted is the level "afforded" to transactions
	// spanning multiple storage elements (§3.2): no guarantees.
	// Within a single Store it behaves like ReadCommitted reads with
	// no atomicity expectations across Stores; the constant exists so
	// cross-SE coordinators can label their parts honestly.
	ReadUncommitted
)

// Errors returned by transaction operations.
var (
	ErrTxnDone   = errors.New("store: transaction already committed or aborted")
	ErrReadOnly  = errors.New("store: store is a slave replica; writes must go to the master copy")
	ErrNoRow     = errors.New("store: no such row")
	ErrBadCSN    = errors.New("store: replicated commit out of order")
	ErrStoreFull = errors.New("store: capacity exceeded")
)

// Entry is a row value: an LDAP-style attribute map. Attribute names
// map to one or more values.
type Entry map[string][]string

// Clone deep-copies the entry.
func (e Entry) Clone() Entry {
	if e == nil {
		return nil
	}
	out := make(Entry, len(e))
	for k, vs := range e {
		out[k] = append([]string(nil), vs...)
	}
	return out
}

// First returns the first value of an attribute, or "".
func (e Entry) First(attr string) string {
	if vs := e[attr]; len(vs) > 0 {
		return vs[0]
	}
	return ""
}

// Equal reports deep equality with another entry.
func (e Entry) Equal(o Entry) bool {
	if len(e) != len(o) {
		return false
	}
	for k, vs := range e {
		ws, ok := o[k]
		if !ok || len(vs) != len(ws) {
			return false
		}
		for i := range vs {
			if vs[i] != ws[i] {
				return false
			}
		}
	}
	return true
}

// ModKind is the kind of an attribute modification.
type ModKind int

// Attribute modification kinds, mirroring LDAP modify semantics.
const (
	ModAdd ModKind = iota
	ModReplace
	ModDelete
)

// Mod is one attribute modification inside a Modify operation.
type Mod struct {
	Kind ModKind
	Attr string
	Vals []string
}

// apply mutates e in place according to the modification.
func (m Mod) apply(e Entry) {
	switch m.Kind {
	case ModAdd:
		e[m.Attr] = append(e[m.Attr], m.Vals...)
	case ModReplace:
		if len(m.Vals) == 0 {
			delete(e, m.Attr)
		} else {
			e[m.Attr] = append([]string(nil), m.Vals...)
		}
	case ModDelete:
		if len(m.Vals) == 0 {
			delete(e, m.Attr)
			return
		}
		drop := make(map[string]bool, len(m.Vals))
		for _, v := range m.Vals {
			drop[v] = true
		}
		kept := e[m.Attr][:0]
		for _, v := range e[m.Attr] {
			if !drop[v] {
				kept = append(kept, v)
			}
		}
		if len(kept) == 0 {
			delete(e, m.Attr)
		} else {
			e[m.Attr] = kept
		}
	}
}

// OpKind is the kind of a committed write operation.
type OpKind int

// Write operation kinds.
const (
	OpPut OpKind = iota
	OpModify
	OpDelete
)

// Op is one write inside a committed transaction, in a form that can
// be shipped to slave replicas and replayed in order.
type Op struct {
	Kind OpKind
	Key  string
	// Entry is the full row image for OpPut — and also for OpModify,
	// where it carries the post-image so slaves converge even if
	// their pre-image drifted.
	Entry Entry
	Mods  []Mod // the logical modification, kept for audit/merge
	// VC is the row's version vector after this op, filled only in
	// multi-master mode so peers can detect concurrent writes (§5).
	VC vclock.VC
}

// CommitRecord is the replication/WAL unit: one committed transaction.
type CommitRecord struct {
	// CSN is the commit sequence number assigned by the master
	// store; slaves must apply records in strictly increasing CSN
	// order (§3.2's serialization-order guarantee).
	CSN uint64
	// WallTS is a wall-clock timestamp (UnixMicro) used by the
	// last-writer-wins resolver in multi-master mode (§5).
	WallTS int64
	// Origin is the replica ID that committed the transaction.
	Origin string
	Ops    []Op
}

// Meta is per-row metadata.
type Meta struct {
	// CSN of the commit that last wrote the row.
	CSN uint64
	// WallTS of that commit (UnixMicro).
	WallTS int64
	// VC is the row's version vector, maintained only in
	// multi-master mode (§5 evolution).
	VC vclock.VC
	// Tombstone marks a deleted row retained for replication and
	// multi-master anti-entropy.
	Tombstone bool
}

type row struct {
	entry Entry
	meta  Meta
}

// Role designates whether this replica accepts client writes.
type Role int

const (
	// Master is the copy handling all writes for the partition
	// (§3.2: "At every point in time for each piece of data there is
	// one copy handling all writes").
	Master Role = iota
	// Slave copies apply the master's replication stream only.
	Slave
)

// String returns the role name.
func (r Role) String() string {
	if r == Master {
		return "master"
	}
	return "slave"
}

// Store is one partition replica. It is safe for concurrent use.
type Store struct {
	replicaID string

	mu   sync.RWMutex
	rows map[string]*row
	role Role
	// multiMaster enables version-vector maintenance and lifts the
	// slave write restriction (§5 evolution).
	multiMaster bool
	// capacity bounds the number of live rows (the paper's 200 GB /
	// 2M-subscriber SE limit, scaled); 0 means unbounded.
	capacity int
	live     int

	// commitMu serializes commits so CSN order equals apply order.
	commitMu sync.Mutex
	csn      uint64
	// appliedCSN tracks the replication stream high-water mark on
	// slaves.
	appliedCSN uint64

	// commitHook, when set, is invoked under commitMu with every
	// record before the commit returns; the SE wires WAL append and
	// replication shipping through it.
	commitHook func(*CommitRecord) error

	// rowHook, when set, observes every installed row version (local
	// commits, replicated applies, WAL replay and direct puts). The
	// anti-entropy tracker keeps its Merkle tree current through it.
	// It runs under the row lock and must not call back into the
	// store; the entry is shared and must not be retained or mutated.
	rowHook func(key string, e Entry, m Meta)
}

// New returns an empty master store identified by replicaID.
func New(replicaID string) *Store {
	return &Store{
		replicaID: replicaID,
		rows:      make(map[string]*row),
		role:      Master,
	}
}

// ReplicaID returns the identifier used in version vectors and
// replication origins.
func (s *Store) ReplicaID() string { return s.replicaID }

// SetRole switches the replica role (used at failover promotion).
func (s *Store) SetRole(r Role) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.role = r
}

// Role returns the current role.
func (s *Store) Role() Role {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.role
}

// SetMultiMaster toggles multi-master mode (§5): writes are accepted
// regardless of role and rows carry version vectors.
func (s *Store) SetMultiMaster(on bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.multiMaster = on
}

// MultiMaster reports whether multi-master mode is on.
func (s *Store) MultiMaster() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.multiMaster
}

// SetCapacity bounds the number of live rows; 0 means unbounded.
func (s *Store) SetCapacity(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.capacity = n
}

// SetCommitHook installs fn to be called under the commit lock for
// every locally committed record (WAL append + replication shipping).
// A hook error aborts the commit.
func (s *Store) SetCommitHook(fn func(*CommitRecord) error) {
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	s.commitHook = fn
}

// SetRowHook installs fn to be called for every row version the store
// installs, whatever the path (commit, replication, replay, direct
// put). See the rowHook field contract.
func (s *Store) SetRowHook(fn func(key string, e Entry, m Meta)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rowHook = fn
}

// CSN returns the store's current commit sequence number.
func (s *Store) CSN() uint64 {
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	return s.csn
}

// AppliedCSN returns the replication high-water mark (slaves).
func (s *Store) AppliedCSN() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.appliedCSN
}

// Len returns the number of live (non-tombstone) rows.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.live
}

// GetCommitted returns the latest committed value and metadata of a
// row. The entry is a deep copy.
func (s *Store) GetCommitted(key string) (Entry, Meta, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	r, ok := s.rows[key]
	if !ok || r.meta.Tombstone {
		return nil, Meta{}, false
	}
	return r.entry.Clone(), r.meta, true
}

// Keys returns all live keys in sorted order.
func (s *Store) Keys() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, s.live)
	for k, r := range s.rows {
		if !r.meta.Tombstone {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// ForEach calls fn for every live row (deep-copied) until fn returns
// false. Iteration order is unspecified.
func (s *Store) ForEach(fn func(key string, e Entry, m Meta) bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for k, r := range s.rows {
		if r.meta.Tombstone {
			continue
		}
		if !fn(k, r.entry.Clone(), r.meta) {
			return
		}
	}
}

// writeOp is a buffered transaction write.
type writeOp struct {
	kind  OpKind
	entry Entry // for put
	mods  []Mod // for modify (accumulated)
}

// Txn is an in-flight transaction. A Txn is not safe for concurrent
// use by multiple goroutines (matching the one-session-one-txn model
// of the LDAP front end).
type Txn struct {
	s      *Store
	iso    Isolation
	writes map[string]*writeOp
	order  []string // write key order, for deterministic op output
	done   bool
}

// Begin starts a transaction at the given isolation level.
func (s *Store) Begin(iso Isolation) *Txn {
	return &Txn{s: s, iso: iso, writes: make(map[string]*writeOp)}
}

// Get returns the row as seen by this transaction: its own buffered
// writes first (read-your-writes), else the latest committed version
// (READ_COMMITTED: never uncommitted data from other transactions).
func (t *Txn) Get(key string) (Entry, bool) {
	if t.done {
		return nil, false
	}
	if w, ok := t.writes[key]; ok {
		switch w.kind {
		case OpDelete:
			return nil, false
		case OpPut:
			return w.entry.Clone(), true
		case OpModify:
			base, _, ok := t.s.GetCommitted(key)
			if !ok {
				base = Entry{}
			}
			for _, m := range w.mods {
				m.apply(base)
			}
			return base, true
		}
	}
	e, _, ok := t.s.GetCommitted(key)
	return e, ok
}

func (t *Txn) stage(key string) (w *writeOp, isNew bool) {
	w, ok := t.writes[key]
	if !ok {
		w = &writeOp{}
		t.writes[key] = w
		t.order = append(t.order, key)
	}
	return w, !ok
}

// Put buffers a full-row write.
func (t *Txn) Put(key string, e Entry) {
	w, _ := t.stage(key)
	w.kind = OpPut
	w.entry = e.Clone()
	w.mods = nil
}

// Modify buffers attribute modifications against the row.
func (t *Txn) Modify(key string, mods ...Mod) {
	w, isNew := t.stage(key)
	switch {
	case isNew:
		w.kind = OpModify
		w.mods = append(w.mods, mods...)
	case w.kind == OpPut:
		for _, m := range mods {
			m.apply(w.entry)
		}
	case w.kind == OpDelete:
		// Modifying a deleted row recreates it from the mods.
		w.kind = OpPut
		w.entry = Entry{}
		for _, m := range mods {
			m.apply(w.entry)
		}
	default:
		w.kind = OpModify
		w.mods = append(w.mods, mods...)
	}
}

// Delete buffers a row deletion.
func (t *Txn) Delete(key string) {
	w, _ := t.stage(key)
	w.kind = OpDelete
	w.entry = nil
	w.mods = nil
}

// Abort discards the transaction.
func (t *Txn) Abort() { t.done = true }

// Commit atomically applies the write-set, assigns the next CSN, runs
// the commit hook (WAL + replication) and returns the commit record.
// Read-only transactions return a nil record.
//
// The store-wide commit lock makes the CSN order identical to the
// apply order, which is what lets slaves reproduce the master's
// serialization order exactly (§3.2).
func (t *Txn) Commit() (*CommitRecord, error) {
	if t.done {
		return nil, ErrTxnDone
	}
	t.done = true
	if len(t.writes) == 0 {
		return nil, nil
	}

	s := t.s
	s.mu.RLock()
	roleOK := s.role == Master || s.multiMaster
	s.mu.RUnlock()
	if !roleOK {
		return nil, ErrReadOnly
	}

	s.commitMu.Lock()
	defer s.commitMu.Unlock()

	rec := &CommitRecord{
		CSN:    s.csn + 1,
		WallTS: nowMicro(),
		Origin: s.replicaID,
	}

	// Build ops and post-images under the row lock.
	s.mu.Lock()
	// Capacity check: count net new live rows.
	if s.capacity > 0 {
		delta := 0
		for _, key := range t.order {
			w := t.writes[key]
			r, exists := s.rows[key]
			liveNow := exists && !r.meta.Tombstone
			switch w.kind {
			case OpPut, OpModify:
				if !liveNow {
					delta++
				}
			case OpDelete:
				if liveNow {
					delta--
				}
			}
		}
		if s.live+delta > s.capacity {
			s.mu.Unlock()
			return nil, ErrStoreFull
		}
	}
	for _, key := range t.order {
		w := t.writes[key]
		op := Op{Key: key}
		switch w.kind {
		case OpPut:
			op.Kind = OpPut
			op.Entry = w.entry.Clone()
		case OpModify:
			op.Kind = OpModify
			op.Mods = append([]Mod(nil), w.mods...)
			base := Entry{}
			if r, ok := s.rows[key]; ok && !r.meta.Tombstone {
				base = r.entry.Clone()
			}
			for _, m := range w.mods {
				m.apply(base)
			}
			op.Entry = base // post-image
		case OpDelete:
			op.Kind = OpDelete
		}
		rec.Ops = append(rec.Ops, op)
	}
	s.applyOpsLocked(rec, true)
	s.mu.Unlock()

	if s.commitHook != nil {
		if err := s.commitHook(rec); err != nil {
			// Roll back is not possible after apply; the paper's
			// design has the same property (commit then replicate).
			// Hooks therefore only fail for full-durability mode
			// (dump-before-commit), where the SE treats a hook error
			// as fatal. We surface the error; the row state keeps the
			// committed data, matching a master that persists after
			// a failed synchronous replication (§5 dual-in-sequence
			// "leaving just one of the replicas updated is
			// acceptable").
			s.csn = rec.CSN
			return rec, err
		}
	}
	s.csn = rec.CSN
	return rec, nil
}

// applyOpsLocked installs a record's post-images. Callers hold s.mu.
// local marks a locally committed record (ticks the version vector in
// multi-master mode).
func (s *Store) applyOpsLocked(rec *CommitRecord, local bool) {
	for i := range rec.Ops {
		op := &rec.Ops[i]
		r, ok := s.rows[op.Key]
		if !ok {
			r = &row{}
			s.rows[op.Key] = r
		}
		wasLive := ok && !r.meta.Tombstone
		switch op.Kind {
		case OpPut, OpModify:
			r.entry = op.Entry.Clone()
			r.meta.Tombstone = false
			if !wasLive {
				s.live++
			}
		case OpDelete:
			r.entry = nil
			r.meta.Tombstone = true
			if wasLive {
				s.live--
			}
		}
		r.meta.CSN = rec.CSN
		r.meta.WallTS = rec.WallTS
		if s.multiMaster && local {
			r.meta.VC = r.meta.VC.Clone().Tick(s.replicaID)
			op.VC = r.meta.VC.Clone()
		} else if !local && len(op.VC) > 0 {
			r.meta.VC = op.VC.Clone()
		}
		if s.rowHook != nil {
			s.rowHook(op.Key, r.entry, r.meta)
		}
	}
}

// ApplyReplicated applies a master's commit record on a slave (or a
// peer's record in multi-master mode). Records must arrive in
// strictly increasing CSN order per origin stream; the caller (the
// replication session) enforces ordering and retransmission.
func (s *Store) ApplyReplicated(rec *CommitRecord) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if rec.CSN <= s.appliedCSN {
		// Duplicate delivery; idempotent skip.
		return nil
	}
	if rec.CSN != s.appliedCSN+1 {
		return fmt.Errorf("%w: have %d, got %d", ErrBadCSN, s.appliedCSN, rec.CSN)
	}
	s.applyOpsLocked(rec, false)
	s.appliedCSN = rec.CSN
	return nil
}

// SetAppliedCSN primes the replication high-water mark (used when a
// slave is seeded from a snapshot).
func (s *Store) SetAppliedCSN(csn uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.appliedCSN = csn
}

// SetCSN primes the commit sequence number (used by WAL recovery so
// the next local commit continues the sequence).
func (s *Store) SetCSN(csn uint64) {
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	s.csn = csn
}

// Replay applies a recovered commit record during WAL redo. Unlike
// ApplyReplicated it also advances the local CSN, because replayed
// records were this replica's own commits.
func (s *Store) Replay(rec *CommitRecord) {
	s.mu.Lock()
	s.applyOpsLocked(rec, false)
	s.mu.Unlock()
	s.commitMu.Lock()
	if rec.CSN > s.csn {
		s.csn = rec.CSN
	}
	s.commitMu.Unlock()
}

// PutDirect installs a row bypassing the transaction machinery. It is
// used by snapshot load, anti-entropy merge and bulk seeding. The
// meta is stored as given.
func (s *Store) PutDirect(key string, e Entry, m Meta) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.putLocked(key, e, m)
}

// CompareAndPut installs a row version only if the row's current
// state still matches the expected metadata (or expected absence).
// It reports whether the install happened. Anti-entropy merges use
// it to close the window between reading a row, resolving, and
// writing the result: a commit or stream apply that lands in between
// fails the compare and the merge retries against the fresh version.
func (s *Store) CompareAndPut(key string, expect Meta, expectExists bool, e Entry, m Meta) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.rows[key]
	if ok != expectExists {
		return false
	}
	if ok && !sameVersion(r.meta, expect) {
		return false
	}
	s.putLocked(key, e, m)
	return true
}

// sameVersion compares the version-identifying metadata fields.
func sameVersion(a, b Meta) bool {
	return a.CSN == b.CSN && a.WallTS == b.WallTS &&
		a.Tombstone == b.Tombstone && a.VC.Compare(b.VC) == vclock.Equal
}

// putLocked is the shared install path of PutDirect and
// CompareAndPut. Callers hold s.mu.
func (s *Store) putLocked(key string, e Entry, m Meta) {
	r, ok := s.rows[key]
	wasLive := ok && !r.meta.Tombstone
	if !ok {
		r = &row{}
		s.rows[key] = r
	}
	r.entry = e.Clone()
	r.meta = m
	if m.Tombstone && wasLive {
		s.live--
	} else if !m.Tombstone && !wasLive {
		s.live++
	}
	if s.rowHook != nil {
		s.rowHook(key, r.entry, r.meta)
	}
}

// MetaOf returns row metadata even for tombstones (anti-entropy needs
// tombstone versions).
func (s *Store) MetaOf(key string) (Meta, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	r, ok := s.rows[key]
	if !ok {
		return Meta{}, false
	}
	return r.meta, true
}

// AllMeta returns the metadata of every row including tombstones,
// used by the multi-master anti-entropy scan (§5).
func (s *Store) AllMeta() map[string]Meta {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]Meta, len(s.rows))
	for k, r := range s.rows {
		out[k] = r.meta
	}
	return out
}

// GetAny returns the row even if tombstoned (anti-entropy).
func (s *Store) GetAny(key string) (Entry, Meta, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	r, ok := s.rows[key]
	if !ok {
		return nil, Meta{}, false
	}
	return r.entry.Clone(), r.meta, true
}
