// Package store implements the in-RAM transactional storage engine
// that backs one partition replica inside a storage element.
//
// It realizes the paper's §3.2 design decisions:
//
//   - ACID is guaranteed only for transactions on one storage element;
//     a Store is the unit of atomicity.
//   - Isolation between concurrent transactions is READ_COMMITTED:
//     readers always see the latest committed row version and are
//     never blocked by writers; writers buffer a private write-set
//     applied atomically at commit.
//   - Commits are totally ordered by a commit sequence number (CSN).
//     The commit order *is* the serialization order the replication
//     stream must preserve at every slave copy (§3.2).
//
// The engine is built for the paper's §2.3 load profile — millions of
// RAM-resident subscribers under sustained concurrent FE/PS traffic:
//
//   - The row map is sharded into lock-striped buckets, so reads and
//     writes to different keys proceed in parallel; only the CSN
//     assignment itself is serialized (commitMu).
//   - Row versions are immutable copy-on-write values: every install
//     puts a fresh entry in place and never mutates an installed one,
//     so reads hand back the shared entry with zero copying. Callers
//     MUST treat entries returned by reads as read-only and Clone()
//     before mutating.
//   - An ordered key index (B-tree) serves Keys / range iteration
//     without a sort-per-call scan.
//   - Secondary indexes over configured identity attributes
//     (IMSI/MSISDN/IMPI/IMPU) are maintained on every install path —
//     local commit, replicated apply, repair merge, WAL replay — and
//     turn the §3.4 identity-search fallback from a full scan into an
//     O(log n) lookup.
//
// A Store holds one partition replica; a storage element owns several
// Stores (its primary partition plus secondary copies).
package store

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/btree"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// Isolation selects the transaction isolation level.
type Isolation int

const (
	// ReadCommitted is the paper's chosen level for intra-SE
	// transactions (§3.2 decision 2).
	ReadCommitted Isolation = iota
	// ReadUncommitted is the level "afforded" to transactions
	// spanning multiple storage elements (§3.2): no guarantees.
	// Within a single Store it behaves like ReadCommitted reads with
	// no atomicity expectations across Stores; the constant exists so
	// cross-SE coordinators can label their parts honestly.
	ReadUncommitted
)

// Errors returned by transaction operations.
var (
	ErrTxnDone   = errors.New("store: transaction already committed or aborted")
	ErrReadOnly  = errors.New("store: store is a slave replica; writes must go to the master copy")
	ErrNoRow     = errors.New("store: no such row")
	ErrBadCSN    = errors.New("store: replicated commit out of order")
	ErrStoreFull = errors.New("store: capacity exceeded")
)

// Entry is a row value: an LDAP-style attribute map. Attribute names
// map to one or more values.
//
// Entries returned by Store reads (GetCommitted, GetAny, ForEach and
// friends) are the installed copy-on-write versions, shared with the
// engine and with every other reader: they must be treated as
// immutable. Clone before mutating.
type Entry map[string][]string

// Clone deep-copies the entry into the compact resident layout:
// interned attribute names and one shared backing array for all value
// slices (see intern.go). The result is safe to mutate independently
// of e.
func (e Entry) Clone() Entry {
	return compactClone(e)
}

// First returns the first value of an attribute, or "".
func (e Entry) First(attr string) string {
	if vs := e[attr]; len(vs) > 0 {
		return vs[0]
	}
	return ""
}

// Equal reports deep equality with another entry.
func (e Entry) Equal(o Entry) bool {
	if len(e) != len(o) {
		return false
	}
	for k, vs := range e {
		ws, ok := o[k]
		if !ok || len(vs) != len(ws) {
			return false
		}
		for i := range vs {
			if vs[i] != ws[i] {
				return false
			}
		}
	}
	return true
}

// ModKind is the kind of an attribute modification.
type ModKind int

// Attribute modification kinds, mirroring LDAP modify semantics.
const (
	ModAdd ModKind = iota
	ModReplace
	ModDelete
)

// Mod is one attribute modification inside a Modify operation.
type Mod struct {
	Kind ModKind
	Attr string
	Vals []string
}

// apply mutates e in place according to the modification.
func (m Mod) apply(e Entry) {
	switch m.Kind {
	case ModAdd:
		e[m.Attr] = append(e[m.Attr], m.Vals...)
	case ModReplace:
		if len(m.Vals) == 0 {
			delete(e, m.Attr)
		} else {
			e[m.Attr] = append([]string(nil), m.Vals...)
		}
	case ModDelete:
		if len(m.Vals) == 0 {
			delete(e, m.Attr)
			return
		}
		drop := make(map[string]bool, len(m.Vals))
		for _, v := range m.Vals {
			drop[v] = true
		}
		kept := e[m.Attr][:0]
		for _, v := range e[m.Attr] {
			if !drop[v] {
				kept = append(kept, v)
			}
		}
		if len(kept) == 0 {
			delete(e, m.Attr)
		} else {
			e[m.Attr] = kept
		}
	}
}

// OpKind is the kind of a committed write operation.
type OpKind int

// Write operation kinds.
const (
	OpPut OpKind = iota
	OpModify
	OpDelete
)

// Op is one write inside a committed transaction, in a form that can
// be shipped to slave replicas and replayed in order.
type Op struct {
	Kind OpKind
	Key  string
	// Entry is the full row image for OpPut — and also for OpModify,
	// where it carries the post-image so slaves converge even if
	// their pre-image drifted.
	Entry Entry
	Mods  []Mod // the logical modification, kept for audit/merge
	// VC is the row's version vector after this op, filled only in
	// multi-master mode so peers can detect concurrent writes (§5).
	VC vclock.VC
}

// CommitRecord is the replication/WAL unit: one committed transaction.
type CommitRecord struct {
	// CSN is the commit sequence number assigned by the master
	// store; slaves must apply records in strictly increasing CSN
	// order (§3.2's serialization-order guarantee).
	CSN uint64
	// WallTS is a wall-clock timestamp (UnixMicro) used by the
	// last-writer-wins resolver in multi-master mode (§5).
	WallTS int64
	// Origin is the replica ID that committed the transaction.
	Origin string
	Ops    []Op
	// Trace is the commit span's trace context, carried in-memory to
	// the durability pipeline (WAL, replication) so their spans nest
	// under the commit. Never persisted or replicated: the WAL codec
	// and anti-entropy ignore it.
	Trace trace.Ctx
}

// Meta is per-row metadata.
type Meta struct {
	// CSN of the commit that last wrote the row.
	CSN uint64
	// WallTS of that commit (UnixMicro).
	WallTS int64
	// VC is the row's version vector, maintained only in
	// multi-master mode (§5 evolution).
	VC vclock.VC
	// Tombstone marks a deleted row retained for replication and
	// multi-master anti-entropy.
	Tombstone bool
}

type row struct {
	entry Entry
	meta  Meta
}

// Role designates whether this replica accepts client writes.
type Role int

const (
	// Master is the copy handling all writes for the partition
	// (§3.2: "At every point in time for each piece of data there is
	// one copy handling all writes").
	Master Role = iota
	// Slave copies apply the master's replication stream only.
	Slave
	// Cached marks a response served out of a front-end/PoA subscriber
	// cache rather than by a replica. No store ever holds this role;
	// it only travels in read responses so session-guarantee checkers
	// can account for cache-served reads.
	Cached
)

// String returns the role name.
func (r Role) String() string {
	switch r {
	case Master:
		return "master"
	case Cached:
		return "cached"
	default:
		return "slave"
	}
}

// numShards is the lock-stripe count. A power of two so the shard
// selection is a mask; 64 stripes keep writer collisions rare at
// realistic FE/PS concurrency while the per-store footprint stays
// trivial next to the row data.
const numShards = 64

// shard is one lock stripe of the row map.
type shard struct {
	mu   sync.RWMutex
	rows map[string]*row
}

// shardIndex places a key on its stripe (inlined FNV-1a, no
// allocation).
func shardIndex(key string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return h & (numShards - 1)
}

// identityIndex is the secondary index over configured identity
// attributes: attr → value → primary key. Identity values are unique
// per subscriber in the UDR data model; on a pathological collision
// the last installed row wins and removal is guarded so one row can
// never evict another row's mapping.
type identityIndex struct {
	// on is the lock-free fast path: stores with no indexed attrs
	// (LegacyFindScan elements) must not pay a global lock per
	// install just to discover the index is disabled.
	on    atomic.Bool
	mu    sync.RWMutex
	attrs []string
	vals  map[string]map[string]string
}

// update re-points the index at a row's new version. old/oldLive
// describe the replaced version, cur/curLive the installed one. It is
// called with the row's shard lock held, which serializes updates per
// key; the index's own lock serializes updates across shards.
func (ix *identityIndex) update(key string, old Entry, oldLive bool, cur Entry, curLive bool) {
	if !ix.on.Load() {
		return
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if len(ix.attrs) == 0 {
		return
	}
	for _, attr := range ix.attrs {
		if oldLive {
			for _, v := range old[attr] {
				if ix.vals[attr][v] == key {
					delete(ix.vals[attr], v)
				}
			}
		}
		if curLive {
			for _, v := range cur[attr] {
				m := ix.vals[attr]
				if m == nil {
					m = make(map[string]string)
					ix.vals[attr] = m
				}
				m[v] = key
			}
		}
	}
}

// Store is one partition replica. It is safe for concurrent use.
type Store struct {
	replicaID string

	// shards hold the rows, lock-striped by key hash.
	shards [numShards]shard

	// live counts non-tombstone rows across all shards.
	live atomic.Int64

	// mu guards replica-wide state: role, multi-master mode,
	// capacity and the row hook.
	mu   sync.RWMutex
	role Role
	// multiMaster enables version-vector maintenance and lifts the
	// slave write restriction (§5 evolution).
	multiMaster bool
	// capacity bounds the number of live rows (the paper's 200 GB /
	// 2M-subscriber SE limit, scaled); 0 means unbounded.
	capacity int
	// rowHook, when set, observes every installed row version (local
	// commits, replicated applies, WAL replay and direct puts). The
	// anti-entropy tracker keeps its Merkle tree current through it.
	// It runs under the row's shard lock — hooks for different keys
	// may run concurrently, hooks for one key run in install order —
	// and must not call back into the store; the entry is shared and
	// must not be retained or mutated.
	rowHook func(key string, e Entry, m Meta)
	// installObs, when set, observes every commit record this store
	// installs through the live paths — local commits (under commitMu,
	// in CSN order) and replicated applies (under applyMu, in stream
	// order, before the applied watermark advances so a caller that
	// has seen AppliedCSN reach N knows the observer ran for ≤ N).
	// WAL replay, snapshot seeding and repair merges do NOT fire it:
	// it exists for freshness tracking (the FE read cache), and those
	// paths reconstruct state rather than carry new commits. The
	// record and its entries are shared and must not be mutated.
	installObs func(rec *CommitRecord)

	// keyMu guards keys, the ordered index over live keys that backs
	// Keys and AscendKeys without a sort-per-call scan.
	keyMu sync.RWMutex
	keys  *btree.Map[struct{}]

	// idx is the secondary identity index (see SetIndexedAttrs).
	idx identityIndex

	// commitMu serializes commits so CSN order equals apply order.
	commitMu sync.Mutex
	csn      uint64
	// commitPipeline, when set, is invoked under commitMu with every
	// record before the commit returns; the SE wires WAL staging and
	// replication shipping through it. The wait closure it returns
	// (may be nil) runs after commitMu is released, so durability
	// waits — group-commit fsyncs, synchronous replication acks — do
	// not serialize commits behind one another.
	commitPipeline func(*CommitRecord) (wait func() error, err error)

	// applyMu serializes the replicated-apply path so the CSN
	// gap/duplicate check and the apply are atomic; appliedCSN is
	// the replication stream high-water mark on slaves.
	applyMu    sync.Mutex
	appliedCSN atomic.Uint64
}

// New returns an empty master store identified by replicaID.
func New(replicaID string) *Store {
	s := &Store{
		replicaID: replicaID,
		keys:      btree.New[struct{}](),
	}
	for i := range s.shards {
		s.shards[i].rows = make(map[string]*row)
	}
	return s
}

// shardFor returns the stripe holding key.
func (s *Store) shardFor(key string) *shard {
	return &s.shards[shardIndex(key)]
}

// ReplicaID returns the identifier used in version vectors and
// replication origins.
func (s *Store) ReplicaID() string { return s.replicaID }

// SetRole switches the replica role (used at failover promotion).
func (s *Store) SetRole(r Role) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.role = r
}

// Role returns the current role.
func (s *Store) Role() Role {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.role
}

// SetMultiMaster toggles multi-master mode (§5): writes are accepted
// regardless of role and rows carry version vectors.
func (s *Store) SetMultiMaster(on bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.multiMaster = on
}

// MultiMaster reports whether multi-master mode is on.
func (s *Store) MultiMaster() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.multiMaster
}

// SetCapacity bounds the number of live rows; 0 means unbounded.
func (s *Store) SetCapacity(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.capacity = n
}

// SetCommitHook installs fn to be called under the commit lock for
// every locally committed record (WAL append + replication shipping).
// A hook error aborts the commit. The whole hook runs under commitMu;
// hooks that block on durability should use SetCommitPipeline so the
// wait happens outside the lock.
func (s *Store) SetCommitHook(fn func(*CommitRecord) error) {
	if fn == nil {
		s.SetCommitPipeline(nil)
		return
	}
	s.SetCommitPipeline(func(rec *CommitRecord) (func() error, error) {
		return nil, fn(rec)
	})
}

// SetCommitPipeline installs the two-phase commit hook: fn runs under
// the commit lock (its side effects — WAL staging, replication
// enqueue — happen in CSN order), and the wait closure it returns, if
// any, runs after the lock is released and its error is returned from
// Commit. This is what lets concurrent durable commits share one
// group-commit fsync instead of serializing N fsyncs behind commitMu.
func (s *Store) SetCommitPipeline(fn func(*CommitRecord) (wait func() error, err error)) {
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	s.commitPipeline = fn
}

// SetRowHook installs fn to be called for every row version the store
// installs, whatever the path (commit, replication, replay, direct
// put). See the rowHook field contract.
func (s *Store) SetRowHook(fn func(key string, e Entry, m Meta)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rowHook = fn
}

// loadRowHook reads the current row hook.
func (s *Store) loadRowHook() func(key string, e Entry, m Meta) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.rowHook
}

// SetInstallObserver installs fn to be called with every commit record
// the store installs via Commit or ApplyReplicated. See the installObs
// field contract; unlike SetRowHook this slot is not used by the
// anti-entropy tracker, so both can coexist.
func (s *Store) SetInstallObserver(fn func(rec *CommitRecord)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.installObs = fn
}

// loadInstallObserver reads the current install observer.
func (s *Store) loadInstallObserver() func(rec *CommitRecord) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.installObs
}

// SetIndexedAttrs configures the secondary identity index over the
// given attributes and rebuilds it from the current live rows. Every
// later install path (commit, replicated apply, repair merge, WAL
// replay, direct put) keeps it current. Call it before the store
// takes concurrent traffic (the storage element does, at replica
// attach); no attributes disables the index.
func (s *Store) SetIndexedAttrs(attrs ...string) {
	s.idx.mu.Lock()
	s.idx.attrs = append([]string(nil), attrs...)
	s.idx.vals = make(map[string]map[string]string, len(attrs))
	s.idx.mu.Unlock()
	s.idx.on.Store(len(attrs) > 0)
	if len(attrs) == 0 {
		return
	}
	s.ForEach(func(key string, e Entry, _ Meta) bool {
		s.idx.update(key, nil, false, e, true)
		return true
	})
}

// IndexedAttrs returns the attributes the identity index covers.
func (s *Store) IndexedAttrs() []string {
	s.idx.mu.RLock()
	defer s.idx.mu.RUnlock()
	return append([]string(nil), s.idx.attrs...)
}

// IndexesAttr reports whether attr is covered by the identity index,
// in which case LookupByAttr answers are authoritative: a miss means
// no live row carries the value.
func (s *Store) IndexesAttr(attr string) bool {
	s.idx.mu.RLock()
	defer s.idx.mu.RUnlock()
	for _, a := range s.idx.attrs {
		if a == attr {
			return true
		}
	}
	return false
}

// LookupByAttr resolves an indexed attribute value to the primary key
// of the live row carrying it. It is the O(log n) replacement for the
// §3.4 identity full scan.
func (s *Store) LookupByAttr(attr, value string) (string, bool) {
	if !s.idx.on.Load() {
		return "", false
	}
	s.idx.mu.RLock()
	defer s.idx.mu.RUnlock()
	key, ok := s.idx.vals[attr][value]
	return key, ok
}

// CSN returns the store's current commit sequence number.
func (s *Store) CSN() uint64 {
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	return s.csn
}

// AppliedCSN returns the replication high-water mark (slaves).
func (s *Store) AppliedCSN() uint64 {
	return s.appliedCSN.Load()
}

// Len returns the number of live (non-tombstone) rows.
func (s *Store) Len() int {
	return int(s.live.Load())
}

// GetCommitted returns the latest committed value and metadata of a
// row. The entry is the shared immutable version: treat it as
// read-only and Clone before mutating.
func (s *Store) GetCommitted(key string) (Entry, Meta, bool) {
	sh := s.shardFor(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	r, ok := sh.rows[key]
	if !ok || r.meta.Tombstone {
		return nil, Meta{}, false
	}
	return r.entry, r.meta, true
}

// isLive reports whether a live (non-tombstone) row exists for key.
func (s *Store) isLive(key string) bool {
	sh := s.shardFor(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	r, ok := sh.rows[key]
	return ok && !r.meta.Tombstone
}

// Keys returns all live keys in sorted order, served from the ordered
// key index.
func (s *Store) Keys() []string {
	s.keyMu.RLock()
	defer s.keyMu.RUnlock()
	out := make([]string, 0, s.keys.Len())
	s.keys.Ascend(func(k string, _ struct{}) bool {
		out = append(out, k)
		return true
	})
	return out
}

// AscendKeys calls fn for every live key in [from, to) in ascending
// order until fn returns false. fn must not call back into the store.
func (s *Store) AscendKeys(from, to string, fn func(key string) bool) {
	s.keyMu.RLock()
	defer s.keyMu.RUnlock()
	s.keys.AscendRange(from, to, func(k string, _ struct{}) bool {
		return fn(k)
	})
}

// ForEach calls fn for every live row until fn returns false.
// Iteration order is unspecified. The entry is the shared immutable
// version; fn must not mutate it, retain it past a Clone, or call
// back into the store (it runs under the shard read lock).
func (s *Store) ForEach(fn func(key string, e Entry, m Meta) bool) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for k, r := range sh.rows {
			if r.meta.Tombstone {
				continue
			}
			if !fn(k, r.entry, r.meta) {
				sh.mu.RUnlock()
				return
			}
		}
		sh.mu.RUnlock()
	}
}

// ForEachAny calls fn for every row including tombstones until fn
// returns false: the zero-copy iteration behind anti-entropy tracker
// rebuilds, sync responses and WAL snapshots. The same sharing and
// no-reentrancy rules as ForEach apply.
func (s *Store) ForEachAny(fn func(key string, e Entry, m Meta) bool) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for k, r := range sh.rows {
			if !fn(k, r.entry, r.meta) {
				sh.mu.RUnlock()
				return
			}
		}
		sh.mu.RUnlock()
	}
}

// ForEachMeta calls fn for the metadata of every row including
// tombstones until fn returns false, without touching entries at all:
// the cheapest full iteration for consumers that only inspect
// versions. fn must not call back into the store.
func (s *Store) ForEachMeta(fn func(key string, m Meta) bool) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for k, r := range sh.rows {
			if !fn(k, r.meta) {
				sh.mu.RUnlock()
				return
			}
		}
		sh.mu.RUnlock()
	}
}

// FreezeWrites blocks every local commit until the returned release
// func runs, and returns the CSN of the last commit staged before the
// freeze. Migration uses it twice: a momentary freeze to attach the
// target to the replication stream exactly at the snapshot CSN, and
// the bounded cutover freeze that drains in-flight replication and
// hands over the master role. Replicated applies and direct puts are
// not blocked (the frozen store is a master; those paths are idle on
// it). The caller must not commit or read CSN on this store while
// frozen.
func (s *Store) FreezeWrites() (csn uint64, release func()) {
	s.commitMu.Lock()
	return s.csn, s.commitMu.Unlock
}

// StableSnapshot runs fn with the commit and replicated-apply paths
// excluded: while fn runs, no multi-row transaction can be observed
// half-installed across shards, and the CSN / applied-CSN passed to
// fn cover every installed row. The WAL snapshotter runs its whole
// collect-write-truncate cycle inside fn, so the log can never drop
// a commit record the snapshot image does not already contain.
// Single-row direct installs (repair merges, reseeding) may still
// interleave; they carry their own complete metadata. fn must not
// commit, apply records, or read CSNs on this store.
func (s *Store) StableSnapshot(fn func(csn, appliedCSN uint64)) {
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	s.applyMu.Lock()
	defer s.applyMu.Unlock()
	fn(s.csn, s.appliedCSN.Load())
}

// writeOp is a buffered transaction write.
type writeOp struct {
	key   string
	kind  OpKind
	entry Entry // for put
	mods  []Mod // for modify (accumulated)
}

// txnInlineWrites is the write-set size a Txn holds without any
// heap allocation beyond the Txn itself. Signaling transactions —
// location updates, SQN advances — touch one or two rows; only bulk
// provisioning batches spill.
const txnInlineWrites = 4

// txnIndexThreshold is the write-set size at which key lookup
// switches from a linear scan to a map index.
const txnIndexThreshold = 9

// Txn is an in-flight transaction. A Txn is not safe for concurrent
// use by multiple goroutines (matching the one-session-one-txn model
// of the LDAP front end).
//
// The write-set is an ordered slice (commit order = staging order)
// backed by inline storage: the common one-row signaling transaction
// costs a single allocation for the Txn itself. Lookups scan
// linearly until the set grows large enough to justify a map index.
type Txn struct {
	s      *Store
	iso    Isolation
	writes []writeOp
	inline [txnInlineWrites]writeOp
	// idx maps key → writes index, built once the write-set outgrows
	// a linear scan.
	idx  map[string]int
	done bool
	// tr is the trace context Commit stamps onto the commit record
	// (zero when the request is untraced).
	tr trace.Ctx
}

// SetTrace attaches a trace context to the transaction; Commit copies
// it onto the commit record for the durability pipeline's spans.
func (t *Txn) SetTrace(tc trace.Ctx) { t.tr = tc }

// Begin starts a transaction at the given isolation level.
func (s *Store) Begin(iso Isolation) *Txn {
	t := &Txn{s: s, iso: iso}
	t.writes = t.inline[:0]
	return t
}

// lookup returns the buffered write for key, or nil.
func (t *Txn) lookup(key string) *writeOp {
	if t.idx != nil {
		if i, ok := t.idx[key]; ok {
			return &t.writes[i]
		}
		return nil
	}
	for i := range t.writes {
		if t.writes[i].key == key {
			return &t.writes[i]
		}
	}
	return nil
}

// Get returns the row as seen by this transaction: its own buffered
// writes first (read-your-writes), else the latest committed version
// (READ_COMMITTED: never uncommitted data from other transactions).
// Committed entries are returned shared, like Store.GetCommitted.
func (t *Txn) Get(key string) (Entry, bool) {
	if t.done {
		return nil, false
	}
	if w := t.lookup(key); w != nil {
		switch w.kind {
		case OpDelete:
			return nil, false
		case OpPut:
			return w.entry.Clone(), true
		case OpModify:
			base, _, ok := t.s.GetCommitted(key)
			if ok {
				base = base.Clone()
			} else {
				base = Entry{}
			}
			for _, m := range w.mods {
				m.apply(base)
			}
			return base, true
		}
	}
	e, _, ok := t.s.GetCommitted(key)
	return e, ok
}

func (t *Txn) stage(key string) (w *writeOp, isNew bool) {
	if w := t.lookup(key); w != nil {
		return w, false
	}
	t.writes = append(t.writes, writeOp{key: key})
	if t.idx != nil {
		t.idx[key] = len(t.writes) - 1
	} else if len(t.writes) >= txnIndexThreshold {
		t.idx = make(map[string]int, 2*len(t.writes))
		for i := range t.writes {
			t.idx[t.writes[i].key] = i
		}
	}
	return &t.writes[len(t.writes)-1], true
}

// Put buffers a full-row write.
func (t *Txn) Put(key string, e Entry) {
	w, _ := t.stage(key)
	w.kind = OpPut
	w.entry = e.Clone()
	w.mods = nil
}

// Modify buffers attribute modifications against the row.
func (t *Txn) Modify(key string, mods ...Mod) {
	w, isNew := t.stage(key)
	switch {
	case isNew:
		w.kind = OpModify
		w.mods = append(w.mods, mods...)
	case w.kind == OpPut:
		for _, m := range mods {
			m.apply(w.entry)
		}
	case w.kind == OpDelete:
		// Modifying a deleted row recreates it from the mods.
		w.kind = OpPut
		w.entry = Entry{}
		for _, m := range mods {
			m.apply(w.entry)
		}
	default:
		w.kind = OpModify
		w.mods = append(w.mods, mods...)
	}
}

// Delete buffers a row deletion.
func (t *Txn) Delete(key string) {
	w, _ := t.stage(key)
	w.kind = OpDelete
	w.entry = nil
	w.mods = nil
}

// Abort discards the transaction.
func (t *Txn) Abort() { t.done = true }

// Commit atomically applies the write-set, assigns the next CSN, runs
// the commit hook (WAL + replication) and returns the commit record.
// Read-only transactions return a nil record.
//
// The store-wide commit lock makes the CSN order identical to the
// apply order, which is what lets slaves reproduce the master's
// serialization order exactly (§3.2). Rows install per shard: each
// individual row is only ever observed in a committed state, but a
// concurrent reader may see a multi-row transaction partially applied
// — row-granular READ_COMMITTED, the honest concurrent reading of the
// paper's isolation level.
func (t *Txn) Commit() (*CommitRecord, error) {
	if t.done {
		return nil, ErrTxnDone
	}
	t.done = true
	if len(t.writes) == 0 {
		return nil, nil
	}

	s := t.s
	s.commitMu.Lock()
	// The role gate lives under the commit lock: a commit parked on a
	// migration cutover's write-freeze must re-observe the demotion
	// the freeze protected, or it would install rows on a store that
	// stopped being the master while it waited (a lost write — the new
	// master never sees it).
	s.mu.RLock()
	roleOK := s.role == Master || s.multiMaster
	mm := s.multiMaster
	capacity := s.capacity
	s.mu.RUnlock()
	if !roleOK {
		s.commitMu.Unlock()
		return nil, ErrReadOnly
	}

	rec := &CommitRecord{
		CSN:    s.csn + 1,
		WallTS: nowMicro(),
		Origin: s.replicaID,
		Ops:    make([]Op, 0, len(t.writes)),
		Trace:  t.tr,
	}

	// Capacity check: count net new live rows. commitMu serializes
	// commits, so the check cannot race another commit; background
	// direct puts (seeding, repair) are accounted through the shared
	// live counter.
	if capacity > 0 {
		delta := 0
		for i := range t.writes {
			w := &t.writes[i]
			liveNow := s.isLive(w.key)
			switch w.kind {
			case OpPut, OpModify:
				if !liveNow {
					delta++
				}
			case OpDelete:
				if liveNow {
					delta--
				}
			}
		}
		if int(s.live.Load())+delta > capacity {
			s.commitMu.Unlock()
			return nil, ErrStoreFull
		}
	}

	// Build each op and install its post-image under the row's shard
	// lock, so the post-image computation and the install are atomic
	// per row. The txn is done, so write-set entries and mod slices
	// transfer into the record without copying; and because installed
	// entries are immutable copy-on-write values, the record and the
	// row share one post-image instead of cloning it twice.
	for wi := range t.writes {
		w := &t.writes[wi]
		op := Op{Key: w.key}
		sh := s.shardFor(w.key)
		sh.mu.Lock()
		r, exists := sh.rows[w.key]
		if !exists {
			r = &row{}
			sh.rows[w.key] = r
		}
		wasLive := exists && !r.meta.Tombstone
		oldEntry := r.entry
		switch w.kind {
		case OpPut:
			op.Kind = OpPut
			op.Entry = w.entry // txn is done; ownership transfers
			r.entry = op.Entry
			r.meta.Tombstone = false
		case OpModify:
			op.Kind = OpModify
			op.Mods = w.mods // ownership transfers
			base := Entry{}
			if wasLive {
				base = r.entry.Clone()
			}
			for _, m := range w.mods {
				m.apply(base)
			}
			op.Entry = base // post-image, shared with the row
			r.entry = base
			r.meta.Tombstone = false
		case OpDelete:
			op.Kind = OpDelete
			r.entry = nil
			r.meta.Tombstone = true
		}
		r.meta.CSN = rec.CSN
		r.meta.WallTS = rec.WallTS
		if mm {
			r.meta.VC = r.meta.VC.Clone().Tick(s.replicaID)
			op.VC = r.meta.VC.Clone()
		}
		s.finishInstallLocked(w.key, oldEntry, wasLive, r)
		sh.mu.Unlock()
		rec.Ops = append(rec.Ops, op)
	}

	if obs := s.loadInstallObserver(); obs != nil {
		obs(rec)
	}

	var wait func() error
	if s.commitPipeline != nil {
		var err error
		wait, err = s.commitPipeline(rec)
		if err != nil {
			// Roll back is not possible after apply; the paper's
			// design has the same property (commit then replicate).
			// Hooks therefore only fail for full-durability mode
			// (dump-before-commit), where the SE treats a hook error
			// as fatal. We surface the error; the row state keeps the
			// committed data, matching a master that persists after
			// a failed synchronous replication (§5 dual-in-sequence
			// "leaving just one of the replicas updated is
			// acceptable").
			s.csn = rec.CSN
			s.commitMu.Unlock()
			return rec, err
		}
	}
	s.csn = rec.CSN
	s.commitMu.Unlock()

	// Durability wait — group-commit fsync, synchronous replication
	// acks — happens outside commitMu: concurrent commits stage in
	// CSN order but share cohort fsyncs instead of queueing N of them.
	if wait != nil {
		if err := wait(); err != nil {
			return rec, err
		}
	}
	return rec, nil
}

// finishInstallLocked settles the side state of one installed row
// version: the live counter, the ordered key index, the identity
// index and the row hook. The caller holds the key's shard write
// lock; oldEntry/wasLive describe the replaced version. The hook is
// loaded per install, under the shard lock, so a tracker attached
// mid-commit cannot miss installs that land after its rebuild scan
// (NewTracker's hook-before-scan invariant).
func (s *Store) finishInstallLocked(key string, oldEntry Entry, wasLive bool, r *row) {
	nowLive := !r.meta.Tombstone
	if nowLive && !wasLive {
		s.live.Add(1)
		s.keyMu.Lock()
		s.keys.Set(key, struct{}{})
		s.keyMu.Unlock()
	} else if !nowLive && wasLive {
		s.live.Add(-1)
		s.keyMu.Lock()
		s.keys.Delete(key)
		s.keyMu.Unlock()
	}
	s.idx.update(key, oldEntry, wasLive, r.entry, nowLive)
	if hook := s.loadRowHook(); hook != nil {
		hook(key, r.entry, r.meta)
	}
}

// applyOps installs a record's post-images, locking each op's shard
// individually. local marks a locally committed record (ticks the
// version vector in multi-master mode).
func (s *Store) applyOps(rec *CommitRecord, local bool) {
	s.mu.RLock()
	mm := s.multiMaster
	s.mu.RUnlock()
	for i := range rec.Ops {
		op := &rec.Ops[i]
		sh := s.shardFor(op.Key)
		sh.mu.Lock()
		r, ok := sh.rows[op.Key]
		if !ok {
			r = &row{}
			sh.rows[op.Key] = r
		}
		wasLive := ok && !r.meta.Tombstone
		oldEntry := r.entry
		switch op.Kind {
		case OpPut, OpModify:
			// Post-images are immutable once committed, so the applied
			// row shares the record's entry instead of cloning it —
			// the same sharing the local install path uses.
			r.entry = op.Entry
			r.meta.Tombstone = false
		case OpDelete:
			r.entry = nil
			r.meta.Tombstone = true
		}
		r.meta.CSN = rec.CSN
		r.meta.WallTS = rec.WallTS
		if mm && local {
			r.meta.VC = r.meta.VC.Clone().Tick(s.replicaID)
			op.VC = r.meta.VC.Clone()
		} else if !local && len(op.VC) > 0 {
			r.meta.VC = op.VC.Clone()
		}
		s.finishInstallLocked(op.Key, oldEntry, wasLive, r)
		sh.mu.Unlock()
	}
}

// ApplyReplicated applies a master's commit record on a slave (or a
// peer's record in multi-master mode). Records must arrive in
// strictly increasing CSN order per origin stream; the caller (the
// replication session) enforces ordering and retransmission.
func (s *Store) ApplyReplicated(rec *CommitRecord) error {
	s.applyMu.Lock()
	defer s.applyMu.Unlock()
	applied := s.appliedCSN.Load()
	if rec.CSN <= applied {
		// Duplicate delivery; idempotent skip.
		return nil
	}
	if rec.CSN != applied+1 {
		return fmt.Errorf("%w: have %d, got %d", ErrBadCSN, applied, rec.CSN)
	}
	s.applyOps(rec, false)
	if obs := s.loadInstallObserver(); obs != nil {
		// Fire before the watermark advances: anyone who polls
		// AppliedCSN() up to rec.CSN may rely on observer effects
		// (cache freshness marks) being complete.
		obs(rec)
	}
	s.appliedCSN.Store(rec.CSN)
	return nil
}

// SetAppliedCSN primes the replication high-water mark (used when a
// slave is seeded from a snapshot, or re-attached after repair).
func (s *Store) SetAppliedCSN(csn uint64) {
	s.applyMu.Lock()
	defer s.applyMu.Unlock()
	s.appliedCSN.Store(csn)
}

// AdvanceAppliedCSN raises the replication high-water mark to csn
// only if it is currently lower, atomically with respect to stream
// applies (migration watermark priming: the live stream may already
// have applied past the snapshot point, and rewinding would gap-stick
// it on records nobody will re-deliver).
func (s *Store) AdvanceAppliedCSN(csn uint64) {
	s.applyMu.Lock()
	defer s.applyMu.Unlock()
	if s.appliedCSN.Load() < csn {
		s.appliedCSN.Store(csn)
	}
}

// SetCSN primes the commit sequence number (used by WAL recovery so
// the next local commit continues the sequence).
func (s *Store) SetCSN(csn uint64) {
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	s.csn = csn
}

// Replay applies a recovered commit record during WAL redo. Unlike
// ApplyReplicated it also advances the local CSN, because replayed
// records were this replica's own commits.
func (s *Store) Replay(rec *CommitRecord) {
	s.applyOps(rec, false)
	s.commitMu.Lock()
	if rec.CSN > s.csn {
		s.csn = rec.CSN
	}
	s.commitMu.Unlock()
}

// PutDirect installs a row bypassing the transaction machinery. It is
// used by snapshot load, anti-entropy merge and bulk seeding. The
// meta is stored as given.
func (s *Store) PutDirect(key string, e Entry, m Meta) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s.putShardLocked(sh, key, e, m)
}

// PutOwned is PutDirect without the defensive clone: ownership of e
// transfers to the store, and the caller must not retain or mutate it
// afterwards. Streaming snapshot load uses it so a multi-million-row
// image is decoded and installed with one allocation per row instead
// of two.
func (s *Store) PutOwned(key string, e Entry, m Meta) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	r, ok := sh.rows[key]
	wasLive := ok && !r.meta.Tombstone
	if !ok {
		r = &row{}
		sh.rows[key] = r
	}
	oldEntry := r.entry
	r.entry = e
	r.meta = m
	s.finishInstallLocked(key, oldEntry, wasLive, r)
}

// CompareAndPut installs a row version only if the row's current
// state still matches the expected metadata (or expected absence).
// It reports whether the install happened. Anti-entropy merges use
// it to close the window between reading a row, resolving, and
// writing the result: a commit or stream apply that lands in between
// fails the compare and the merge retries against the fresh version.
func (s *Store) CompareAndPut(key string, expect Meta, expectExists bool, e Entry, m Meta) bool {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	r, ok := sh.rows[key]
	if ok != expectExists {
		return false
	}
	if ok && !sameVersion(r.meta, expect) {
		return false
	}
	s.putShardLocked(sh, key, e, m)
	return true
}

// sameVersion compares the version-identifying metadata fields.
func sameVersion(a, b Meta) bool {
	return a.CSN == b.CSN && a.WallTS == b.WallTS &&
		a.Tombstone == b.Tombstone && a.VC.Compare(b.VC) == vclock.Equal
}

// putShardLocked is the shared install path of PutDirect and
// CompareAndPut. Callers hold sh.mu.
func (s *Store) putShardLocked(sh *shard, key string, e Entry, m Meta) {
	r, ok := sh.rows[key]
	wasLive := ok && !r.meta.Tombstone
	if !ok {
		r = &row{}
		sh.rows[key] = r
	}
	oldEntry := r.entry
	r.entry = e.Clone()
	r.meta = m
	s.finishInstallLocked(key, oldEntry, wasLive, r)
}

// MetaOf returns row metadata even for tombstones (anti-entropy needs
// tombstone versions).
func (s *Store) MetaOf(key string) (Meta, bool) {
	sh := s.shardFor(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	r, ok := sh.rows[key]
	if !ok {
		return Meta{}, false
	}
	return r.meta, true
}

// AllMeta returns the metadata of every row including tombstones,
// used by the multi-master anti-entropy scan (§5).
func (s *Store) AllMeta() map[string]Meta {
	out := make(map[string]Meta, s.Len())
	s.ForEachMeta(func(k string, m Meta) bool {
		out[k] = m
		return true
	})
	return out
}

// GetAny returns the row even if tombstoned (anti-entropy). Like
// GetCommitted, the entry is the shared immutable version.
func (s *Store) GetAny(key string) (Entry, Meta, bool) {
	sh := s.shardFor(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	r, ok := sh.rows[key]
	if !ok {
		return nil, Meta{}, false
	}
	return r.entry, r.meta, true
}
