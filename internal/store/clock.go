package store

import (
	"sync/atomic"
	"time"
)

// lastMicro makes nowMicro strictly monotonic even when the wall
// clock stalls between two commits, so last-writer-wins resolution
// never sees two local commits with equal timestamps.
var lastMicro atomic.Int64

func nowMicro() int64 {
	now := time.Now().UnixMicro()
	for {
		last := lastMicro.Load()
		if now <= last {
			now = last + 1
		}
		if lastMicro.CompareAndSwap(last, now) {
			return now
		}
	}
}
