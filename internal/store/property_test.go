package store

import (
	"fmt"
	"testing"
	"testing/quick"
)

// oracleOp is a generated operation for the model-based property
// tests.
type oracleOp struct {
	Kind   uint8 // %4: put, modify, delete, commit-split
	Key    uint8 // %8 keys
	Attr   uint8 // %4 attrs
	Val    uint8
	Delete bool
}

// TestStoreMatchesOracleProperty drives random committed transactions
// against a map-based oracle: after every commit the store's
// committed state must equal the oracle exactly.
func TestStoreMatchesOracleProperty(t *testing.T) {
	f := func(ops []oracleOp) bool {
		s := New("prop")
		oracle := map[string]Entry{}

		txn := s.Begin(ReadCommitted)
		pending := map[string]Entry{} // oracle's view of the open txn
		for k, v := range oracle {
			_ = k
			_ = v
		}
		snapshot := func() map[string]Entry {
			out := make(map[string]Entry, len(oracle))
			for k, v := range oracle {
				out[k] = v.Clone()
			}
			return out
		}
		base := snapshot()

		commit := func() bool {
			if _, err := txn.Commit(); err != nil {
				return false
			}
			for k, v := range pending {
				if v == nil {
					delete(oracle, k)
				} else {
					oracle[k] = v.Clone()
				}
			}
			// Committed state must match the oracle.
			if s.Len() != len(oracle) {
				return false
			}
			for k, want := range oracle {
				got, _, ok := s.GetCommitted(k)
				if !ok || !got.Equal(want) {
					return false
				}
			}
			txn = s.Begin(ReadCommitted)
			pending = map[string]Entry{}
			base = snapshot()
			return true
		}

		for _, op := range ops {
			key := fmt.Sprintf("k%d", op.Key%8)
			attr := fmt.Sprintf("a%d", op.Attr%4)
			val := fmt.Sprint(op.Val)
			switch op.Kind % 4 {
			case 0: // put
				e := Entry{attr: {val}}
				txn.Put(key, e)
				pending[key] = e.Clone()
			case 1: // modify (replace one attr)
				txn.Modify(key, Mod{Kind: ModReplace, Attr: attr, Vals: []string{val}})
				var cur Entry
				if p, ok := pending[key]; ok && p != nil {
					cur = p.Clone()
				} else if p, ok := pending[key]; ok && p == nil {
					cur = Entry{} // deleted in txn; modify recreates
				} else if b, ok := base[key]; ok {
					cur = b.Clone()
				} else {
					cur = Entry{}
				}
				cur[attr] = []string{val}
				pending[key] = cur
			case 2: // delete
				txn.Delete(key)
				pending[key] = nil
			case 3: // commit and start a new transaction
				if !commit() {
					return false
				}
			}
		}
		return commit()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestCSNStrictlyIncreasesProperty: every non-empty commit advances
// the CSN by exactly one, regardless of the op mix.
func TestCSNStrictlyIncreasesProperty(t *testing.T) {
	f := func(batches [][3]uint8) bool {
		s := New("prop")
		want := uint64(0)
		for _, b := range batches {
			txn := s.Begin(ReadCommitted)
			txn.Put(fmt.Sprintf("k%d", b[0]%4), Entry{"v": {fmt.Sprint(b[1])}})
			if b[2]%2 == 0 {
				txn.Delete(fmt.Sprintf("k%d", b[2]%4))
			}
			rec, err := txn.Commit()
			if err != nil {
				return false
			}
			want++
			if rec.CSN != want || s.CSN() != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestReplicaConvergenceProperty: applying the master's records in
// order onto a fresh slave reproduces the master state exactly, for
// arbitrary op mixes (the §3.2 serialization-order guarantee).
func TestReplicaConvergenceProperty(t *testing.T) {
	f := func(ops []oracleOp) bool {
		master := New("m")
		slave := New("s")
		slave.SetRole(Slave)

		var recs []*CommitRecord
		txn := master.Begin(ReadCommitted)
		dirty := false
		for _, op := range ops {
			key := fmt.Sprintf("k%d", op.Key%8)
			switch op.Kind % 4 {
			case 0:
				txn.Put(key, Entry{fmt.Sprintf("a%d", op.Attr%4): {fmt.Sprint(op.Val)}})
				dirty = true
			case 1:
				txn.Modify(key, Mod{Kind: ModAdd, Attr: fmt.Sprintf("a%d", op.Attr%4), Vals: []string{fmt.Sprint(op.Val)}})
				dirty = true
			case 2:
				txn.Delete(key)
				dirty = true
			case 3:
				rec, err := txn.Commit()
				if err != nil {
					return false
				}
				if rec != nil {
					recs = append(recs, rec)
				}
				txn = master.Begin(ReadCommitted)
				dirty = false
			}
		}
		if dirty {
			rec, err := txn.Commit()
			if err != nil {
				return false
			}
			if rec != nil {
				recs = append(recs, rec)
			}
		}

		for _, rec := range recs {
			if err := slave.ApplyReplicated(rec); err != nil {
				return false
			}
		}
		// Live state equal.
		if master.Len() != slave.Len() {
			return false
		}
		for _, k := range master.Keys() {
			me, _, _ := master.GetCommitted(k)
			se, _, ok := slave.GetCommitted(k)
			if !ok || !me.Equal(se) {
				return false
			}
		}
		return slave.AppliedCSN() == master.CSN()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
