package store

import (
	"strings"
	"sync"
)

// Attribute-name interning.
//
// A subscriber row carries the same handful of attribute names
// (objectClass, IMSI, MSISDN, serviceProfile, ...) as every other
// row, yet a naive Entry clone allocates a fresh copy of each name
// string per resident row. At the ROADMAP's millions-of-subscribers
// target those duplicate name bytes — plus the per-attribute value
// slice headers — dominate resident overhead. Interning collapses all
// copies of an attribute name to one shared string, and the compact
// clone below collapses a row's value slices into one backing array.
//
// The table is capped (entry count and string length) so hostile or
// high-cardinality attribute names degrade to the non-interned path
// instead of growing the table without bound.

const (
	// internMaxLen bounds the length of strings worth interning;
	// attribute names are short, long strings are likely values that
	// leaked into a name position.
	internMaxLen = 80
	// internMaxPerShard bounds each shard's table. 16 shards × 4096
	// names is far beyond any real subscriber schema.
	internMaxPerShard = 4096
	internShardCount  = 16
)

type internShard struct {
	mu sync.RWMutex
	m  map[string]string
}

var internTable [internShardCount]internShard

// Intern returns a canonical shared copy of s, so that repeated
// attribute names across millions of rows share one allocation. The
// returned string is cloned from s, so callers may hand in substrings
// of large decode buffers without retaining them.
func Intern(s string) string {
	if len(s) == 0 || len(s) > internMaxLen {
		return s
	}
	sh := &internTable[internHash(s)%internShardCount]
	sh.mu.RLock()
	v, ok := sh.m[s]
	sh.mu.RUnlock()
	if ok {
		return v
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if v, ok := sh.m[s]; ok {
		return v
	}
	if sh.m == nil {
		sh.m = make(map[string]string)
	}
	if len(sh.m) >= internMaxPerShard {
		return s
	}
	c := strings.Clone(s)
	sh.m[c] = c
	return c
}

// internHash is FNV-1a over the string bytes.
func internHash(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// compactClone deep-copies an entry into the tight resident layout:
// attribute names interned, and all value slices carved out of a
// single backing array (one allocation instead of one per attribute).
// Each sub-slice is capacity-clamped with a three-index slice, so a
// later append on any attribute reallocates instead of clobbering its
// neighbour — the clone stays safe to mutate, same as the naive copy.
func compactClone(e Entry) Entry {
	if e == nil {
		return nil
	}
	total := 0
	for _, vs := range e {
		total += len(vs)
	}
	out := make(Entry, len(e))
	back := make([]string, 0, total)
	for k, vs := range e {
		start := len(back)
		back = append(back, vs...)
		out[Intern(k)] = back[start:len(back):len(back)]
	}
	return out
}
