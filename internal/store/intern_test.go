package store

import (
	"strings"
	"testing"
	"unsafe"
)

func TestInternCanonicalizes(t *testing.T) {
	a := Intern("objectClass")
	b := Intern(string([]byte("objectClass"))) // distinct backing
	if a != b {
		t.Fatalf("interned values differ: %q %q", a, b)
	}
	if unsafe.StringData(a) != unsafe.StringData(b) {
		t.Fatal("interned copies do not share backing storage")
	}
	long := strings.Repeat("x", internMaxLen+1)
	if got := Intern(long); unsafe.StringData(got) != unsafe.StringData(long) {
		t.Fatal("over-length string should be returned as-is")
	}
	if got := Intern(""); got != "" {
		t.Fatalf("empty intern = %q", got)
	}
}

// TestCloneCompactLayout verifies the compact clone shares one
// backing array across attributes but stays mutation-safe.
func TestCloneCompactLayout(t *testing.T) {
	e := Entry{
		"imsi":         {"262011234567890"},
		"msisdn":       {"4915201234567", "4915207654321"},
		"objectClass":  {"subscriber", "top"},
		"empty":        {},
		"serviceFlags": {"a", "b", "c"},
	}
	c := e.Clone()
	if !c.Equal(e) {
		t.Fatalf("clone differs: %v vs %v", c, e)
	}

	// Appending to one attribute must not clobber a neighbour carved
	// from the same backing array: cap clamping forces a realloc.
	c["msisdn"] = append(c["msisdn"], "999")
	if got := len(c["msisdn"]); got != 3 {
		t.Fatalf("append lost: %v", c["msisdn"])
	}
	for k, vs := range e {
		if k == "msisdn" {
			continue
		}
		if !slicesEq(c[k], vs) {
			t.Fatalf("append to msisdn clobbered %q: %v vs %v", k, c[k], vs)
		}
	}

	// In-place value writes stay private to the clone.
	c2 := e.Clone()
	c2["imsi"][0] = "overwritten"
	if e["imsi"][0] != "262011234567890" {
		t.Fatal("clone mutation leaked into source")
	}

	// ModDelete's in-place filter must not disturb neighbours either.
	c3 := e.Clone()
	Mod{Kind: ModDelete, Attr: "objectClass", Vals: []string{"top"}}.apply(c3)
	if !slicesEq(c3["objectClass"], []string{"subscriber"}) {
		t.Fatalf("delete result: %v", c3["objectClass"])
	}
	if !slicesEq(c3["serviceFlags"], []string{"a", "b", "c"}) {
		t.Fatalf("delete clobbered neighbour: %v", c3["serviceFlags"])
	}

	if c := Entry(nil).Clone(); c != nil {
		t.Fatal("nil clone should be nil")
	}
}

func slicesEq(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
