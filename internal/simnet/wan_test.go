package simnet

import (
	"testing"
	"time"
)

func TestWANLinkPresets(t *testing.T) {
	m, err := WANLink(Metro)
	if err != nil {
		t.Fatal(err)
	}
	c, err := WANLink(Continental)
	if err != nil {
		t.Fatal(err)
	}
	ic, err := WANLink(Intercontinental)
	if err != nil {
		t.Fatal(err)
	}
	if !(m.Latency < c.Latency && c.Latency < ic.Latency) {
		t.Fatalf("latency ordering broken: %v %v %v", m.Latency, c.Latency, ic.Latency)
	}
	if _, err := WANLink(WANProfile("dial-up")); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

func TestApplyWANDefaultAndOverrides(t *testing.T) {
	n := New(FastConfig())
	n.AddSite("eu-south")
	n.AddSite("eu-north")
	n.AddSite("americas")
	spec := WANSpec{
		Default: Continental,
		Overrides: []WANPair{
			{A: "eu-south", B: "americas", Profile: Intercontinental},
			{A: "eu-north", B: "americas", Profile: Intercontinental},
		},
	}
	if err := n.ApplyWAN(spec); err != nil {
		t.Fatal(err)
	}
	cont, _ := WANLink(Continental)
	inter, _ := WANLink(Intercontinental)
	if got := n.LinkBetween("eu-south", "eu-north"); got != cont {
		t.Fatalf("eu-south<->eu-north = %+v, want continental", got)
	}
	for _, eu := range []string{"eu-south", "eu-north"} {
		if got := n.LinkBetween(eu, "americas"); got != inter {
			t.Fatalf("%s<->americas = %+v, want intercontinental", eu, got)
		}
		if got := n.LinkBetween("americas", eu); got != inter {
			t.Fatalf("americas<->%s = %+v, want intercontinental (reverse)", eu, got)
		}
	}
	// Intra-site links stay local.
	if got := n.LinkBetween("eu-south", "eu-south"); got != FastConfig().Local {
		t.Fatalf("local link overridden: %+v", got)
	}

	if err := n.ApplyWAN(WANSpec{Default: WANProfile("nope")}); err == nil {
		t.Fatal("bad default profile accepted")
	}
}

func TestReplicaRTTs(t *testing.T) {
	n := New(FastConfig())
	n.AddSite("a")
	n.AddSite("b")
	n.AddSite("c")
	if err := n.ApplyWAN(WANSpec{
		Default:   Metro,
		Overrides: []WANPair{{A: "a", B: "c", Profile: Intercontinental}},
	}); err != nil {
		t.Fatal(err)
	}
	rtts := n.ReplicaRTTs("a", "b", "c")
	if len(rtts) != 2 || rtts[0] >= rtts[1] {
		t.Fatalf("ReplicaRTTs = %v, want sorted ascending", rtts)
	}
	metro, _ := WANLink(Metro)
	wantMin := 2 * (metro.Latency + metro.Jitter/2)
	if rtts[0] != wantMin {
		t.Fatalf("min RTT = %v, want %v", rtts[0], wantMin)
	}
	if rtts[1] < 8*time.Millisecond {
		t.Fatalf("intercontinental RTT = %v, want >= 8ms", rtts[1])
	}
}
