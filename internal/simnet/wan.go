package simnet

import (
	"fmt"
	"sort"
	"time"
)

// WAN profiles: named latency/jitter/loss presets for the inter-site
// links of a geo-replicated deployment, at the simulator's 10x
// compressed time scale (a 30ms real-world one-way delay becomes 3ms
// here). Cross-site quorum experiments pick a profile per site pair so
// durable-commit latencies are measured against realistic RTT mixes
// instead of one uniform backbone.
//
// One-way figures, compressed scale:
//
//	metro             250µs ± 50µs,  loss 0       (same metro area)
//	continental       1.5ms ± 300µs, loss 0.01%   (same continent)
//	intercontinental  4ms   ± 800µs, loss 0.05%   (submarine cable)

// WANProfile names a preset inter-site link class.
type WANProfile string

const (
	// Metro is a same-metro-area fiber ring.
	Metro WANProfile = "metro"
	// Continental is a same-continent backbone span.
	Continental WANProfile = "continental"
	// Intercontinental is a submarine-cable span between continents.
	Intercontinental WANProfile = "intercontinental"
)

// WANLink returns the Link preset for a profile.
func WANLink(p WANProfile) (Link, error) {
	switch p {
	case Metro:
		return Link{
			Latency: 250 * time.Microsecond,
			Jitter:  50 * time.Microsecond,
			Timeout: 3 * time.Millisecond,
		}, nil
	case Continental:
		return Link{
			Latency: 1500 * time.Microsecond,
			Jitter:  300 * time.Microsecond,
			Loss:    0.0001,
			Timeout: 8 * time.Millisecond,
		}, nil
	case Intercontinental:
		return Link{
			Latency: 4 * time.Millisecond,
			Jitter:  800 * time.Microsecond,
			Loss:    0.0005,
			Timeout: 15 * time.Millisecond,
		}, nil
	}
	return Link{}, fmt.Errorf("simnet: unknown WAN profile %q", p)
}

// WANPair overrides the profile of one site pair (both directions).
type WANPair struct {
	A, B    string
	Profile WANProfile
}

// WANSpec describes a WAN topology: a default profile for every
// inter-site link plus per-site-pair overrides.
type WANSpec struct {
	Default   WANProfile
	Overrides []WANPair
}

// ApplyWAN installs a WAN topology over the registered sites: every
// inter-site pair gets the default profile's link, then the overrides
// are applied. Intra-site (Local) links are untouched. Sites named
// only in overrides are registered implicitly.
func (n *Network) ApplyWAN(spec WANSpec) error {
	def, err := WANLink(spec.Default)
	if err != nil {
		return err
	}
	for _, o := range spec.Overrides {
		if _, err := WANLink(o.Profile); err != nil {
			return err
		}
		n.AddSite(o.A)
		n.AddSite(o.B)
	}
	sites := n.Sites()
	for i, a := range sites {
		for _, b := range sites[i+1:] {
			n.SetLink(a, b, def)
		}
	}
	for _, o := range spec.Overrides {
		l, _ := WANLink(o.Profile)
		n.SetLink(o.A, o.B, l)
	}
	return nil
}

// RTTBetween reports the expected round-trip time between two sites
// under the current link parameters: twice the one-way latency plus
// the mean jitter in each direction. Experiments use it to compare
// measured commit latency against the topology's replica RTTs.
func (n *Network) RTTBetween(a, b string) time.Duration {
	l := n.LinkBetween(a, b)
	return 2 * (l.Latency + l.Jitter/2)
}

// ReplicaRTTs returns the sorted RTTs from one site to each of the
// given peer sites — the distribution a cross-site quorum commits
// against (median vs max is the quorum-vs-sync-all headline).
func (n *Network) ReplicaRTTs(from string, peers ...string) []time.Duration {
	out := make([]time.Duration, 0, len(peers))
	for _, p := range peers {
		out = append(out, n.RTTBetween(from, p))
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
