// Package simnet simulates the IP network a multi-national UDR NF
// runs over: fast local site LANs, a slower and less reliable
// inter-site backbone, and the partitions and glitches of §2.5, §4.1.
//
// Every component in this reproduction (storage elements, location
// stages, points of access, front-ends, the provisioning system)
// communicates exclusively through simnet endpoints, so link latency
// and partitions apply uniformly to client traffic, replication and
// location-map synchronization — the property the paper's CAP
// analysis rests on.
//
// The simulator delivers messages over real goroutines with real
// (scaled-down) sleeps; experiments document their time scale in
// EXPERIMENTS.md.
package simnet

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// Errors returned by network operations.
var (
	// ErrUnreachable reports a partitioned or down destination. It
	// models the timeout a real client would hit; the simulator
	// charges the link timeout before returning it.
	ErrUnreachable = errors.New("simnet: destination unreachable")
	// ErrLost reports a message dropped by the lossy backbone.
	ErrLost = errors.New("simnet: message lost")
	// ErrNoEndpoint reports a destination address nobody serves.
	ErrNoEndpoint = errors.New("simnet: no such endpoint")
)

// Addr identifies an endpoint as "site/process".
type Addr string

// MakeAddr builds an Addr from a site and process name.
func MakeAddr(site, process string) Addr {
	return Addr(site + "/" + process)
}

// Site returns the site component of the address.
func (a Addr) Site() string {
	if i := strings.IndexByte(string(a), '/'); i >= 0 {
		return string(a)[:i]
	}
	return string(a)
}

// Process returns the process component of the address ("" when the
// address has no process part).
func (a Addr) Process() string {
	if i := strings.IndexByte(string(a), '/'); i >= 0 {
		return string(a)[i+1:]
	}
	return ""
}

// Link describes one direction of connectivity between two sites.
type Link struct {
	// Latency is the one-way delivery delay.
	Latency time.Duration
	// Jitter adds a uniform random delay in [0, Jitter).
	Jitter time.Duration
	// Loss is the probability a message is dropped (0..1).
	Loss float64
	// Timeout is charged before reporting ErrUnreachable when the
	// destination is partitioned away or down. Zero means fail fast.
	Timeout time.Duration
}

// Handler processes a request delivered to an endpoint and returns a
// response. One-way messages are delivered through the same handler;
// their response is discarded.
type Handler func(ctx context.Context, from Addr, req any) (any, error)

type endpoint struct {
	addr    Addr
	handler Handler
	down    bool
}

// Config holds the default link parameters of a Network.
type Config struct {
	// Local is the intra-site link (blade-cluster LAN).
	Local Link
	// Backbone is the inter-site link (multi-national IP backbone).
	Backbone Link
	// Seed seeds the loss/jitter random source for reproducibility.
	Seed int64
}

// DefaultConfig mirrors the paper's setting at a 10x compressed time
// scale: sub-millisecond LAN, tens-of-milliseconds backbone scaled to
// low milliseconds.
func DefaultConfig() Config {
	return Config{
		Local:    Link{Latency: 50 * time.Microsecond, Jitter: 20 * time.Microsecond, Timeout: 2 * time.Millisecond},
		Backbone: Link{Latency: 2 * time.Millisecond, Jitter: 500 * time.Microsecond, Timeout: 10 * time.Millisecond},
		Seed:     1,
	}
}

// FastConfig is for unit tests: near-zero latencies so suites stay
// fast while preserving local < backbone ordering.
func FastConfig() Config {
	return Config{
		Local:    Link{Latency: 0, Jitter: 0},
		Backbone: Link{Latency: 200 * time.Microsecond, Jitter: 0},
		Seed:     1,
	}
}

// Network is the simulated IP network. It is safe for concurrent use.
type Network struct {
	cfg Config

	mu        sync.RWMutex
	rng       *rand.Rand
	sites     map[string]bool
	group     map[string]int // partition group per site; same group = reachable
	links     map[string]Link
	endpoints map[Addr]*endpoint

	// Messages counts every delivery attempt; Drops counts losses.
	Messages metrics.Counter
	Drops    metrics.Counter

	// tracer is the optional span recorder. Tracing never touches the
	// network's seeded rng, so enabling it cannot perturb a seeded
	// run's loss/jitter schedule.
	tracer atomic.Pointer[trace.Recorder]
}

// SetTracer installs the span recorder for per-hop net.call spans.
func (n *Network) SetTracer(tr *trace.Recorder) { n.tracer.Store(tr) }

// New returns a network with the given defaults.
func New(cfg Config) *Network {
	return &Network{
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		sites:     make(map[string]bool),
		group:     make(map[string]int),
		links:     make(map[string]Link),
		endpoints: make(map[Addr]*endpoint),
	}
}

// AddSite registers a site (a geographic location hosting one blade
// cluster in the paper's Figure 2 topology).
func (n *Network) AddSite(name string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.sites[name] = true
	if _, ok := n.group[name]; !ok {
		n.group[name] = 0
	}
}

// Sites returns all registered sites, sorted.
func (n *Network) Sites() []string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]string, 0, len(n.sites))
	for s := range n.sites {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

func linkKey(a, b string) string { return a + "->" + b }

// SetLink overrides the link parameters between two sites, in both
// directions.
func (n *Network) SetLink(a, b string, l Link) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.links[linkKey(a, b)] = l
	n.links[linkKey(b, a)] = l
}

// linkFor returns the effective link between two sites.
func (n *Network) linkFor(a, b string) Link {
	if a == b {
		return n.cfg.Local
	}
	if l, ok := n.links[linkKey(a, b)]; ok {
		return l
	}
	return n.cfg.Backbone
}

// LinkBetween reports the effective link parameters between two sites.
func (n *Network) LinkBetween(a, b string) Link {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.linkFor(a, b)
}

// Register installs a handler at addr. The site component is
// registered implicitly.
func (n *Network) Register(addr Addr, h Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	site := addr.Site()
	n.sites[site] = true
	if _, ok := n.group[site]; !ok {
		n.group[site] = 0
	}
	n.endpoints[addr] = &endpoint{addr: addr, handler: h}
}

// Unregister removes the endpoint at addr.
func (n *Network) Unregister(addr Addr) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.endpoints, addr)
}

// SetDown marks an endpoint crashed (true) or recovered (false),
// modelling storage-element or process failures.
func (n *Network) SetDown(addr Addr, down bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if ep, ok := n.endpoints[addr]; ok {
		ep.down = down
	}
}

// Partition splits the listed sites from every other site: a
// two-sided network partition. Sites within the same side still reach
// each other. Listed sites are registered if unknown.
func (n *Network) Partition(side []string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	in := make(map[string]bool, len(side))
	for _, s := range side {
		in[s] = true
		n.sites[s] = true
	}
	for s := range n.sites {
		if in[s] {
			n.group[s] = 1
		} else {
			n.group[s] = 0
		}
	}
}

// PartitionGroups installs an arbitrary partition: sites in different
// groups cannot reach each other. Unlisted sites join group 0.
func (n *Network) PartitionGroups(groups ...[]string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for s := range n.sites {
		n.group[s] = 0
	}
	for i, g := range groups {
		for _, s := range g {
			n.sites[s] = true
			n.group[s] = i + 1
		}
	}
}

// Heal removes all partitions.
func (n *Network) Heal() {
	n.mu.Lock()
	defer n.mu.Unlock()
	for s := range n.sites {
		n.group[s] = 0
	}
}

// Partitioned reports whether two sites are currently separated.
func (n *Network) Partitioned(a, b string) bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.group[a] != n.group[b]
}

// Reachable reports whether a call from one address to another would
// currently be delivered (ignoring loss).
func (n *Network) Reachable(from, to Addr) bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	ep, ok := n.endpoints[to]
	if !ok || ep.down {
		return false
	}
	return n.group[from.Site()] == n.group[to.Site()]
}

// delay computes the randomized one-way delay for a link.
func (n *Network) delay(l Link) time.Duration {
	d := l.Latency
	if l.Jitter > 0 {
		n.mu.Lock()
		d += time.Duration(n.rng.Int63n(int64(l.Jitter)))
		n.mu.Unlock()
	}
	return d
}

// lose reports whether a message on l should be dropped.
func (n *Network) lose(l Link) bool {
	if l.Loss <= 0 {
		return false
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.rng.Float64() < l.Loss
}

// spinThreshold is the delay below which sleep busy-waits. OS timers
// on shared hosts have ~1ms granularity, which would flatten the
// local-vs-backbone asymmetry the experiments measure; sub-
// millisecond link latencies therefore spin. Longer sleeps use a
// timer for all but the final spinThreshold and spin the remainder,
// so multi-millisecond WAN latencies land on target instead of
// overshooting by the timer granularity (E23 compares commit p50
// against replica RTTs at 1.5x tolerances).
const spinThreshold = time.Millisecond

func sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	deadline := time.Now().Add(d)
	if d >= spinThreshold {
		t := time.NewTimer(d - spinThreshold)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		}
		t.Stop()
	}
	for time.Now().Before(deadline) {
		if err := ctx.Err(); err != nil {
			return err
		}
		runtime.Gosched()
	}
	return nil
}

// lookup fetches the endpoint and partition status under one lock.
func (n *Network) lookup(from, to Addr) (h Handler, l Link, err error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	l = n.linkFor(from.Site(), to.Site())
	ep, ok := n.endpoints[to]
	if !ok {
		return nil, l, ErrNoEndpoint
	}
	if ep.down || n.group[from.Site()] != n.group[to.Site()] {
		return nil, l, ErrUnreachable
	}
	return ep.handler, l, nil
}

// Call performs a synchronous request/response exchange. It charges
// one-way latency in each direction, may drop the message on lossy
// links, and reports ErrUnreachable (after the link timeout) when the
// destination is partitioned away, down or missing.
//
// When a recorder is installed and the request is a trace.Carrier
// holding a sampled context, the hop records a net.call span and the
// delivered message carries the span's context, so the receiving
// element's spans nest under the hop. Unsampled requests pay one type
// assertion; the message is never copied.
func (n *Network) Call(ctx context.Context, from, to Addr, req any) (any, error) {
	if tr := n.tracer.Load(); tr != nil {
		if c, ok := req.(trace.Carrier); ok {
			if tc := c.TraceCtx(); tc.Sampled && tc.Valid() {
				span := tr.StartChild(tc, "net.call", string(from))
				span.SetAttr("to", string(to))
				resp, err := n.call(ctx, from, to, c.WithTraceCtx(span.Ctx()))
				span.End(err)
				return resp, err
			}
		}
	}
	return n.call(ctx, from, to, req)
}

func (n *Network) call(ctx context.Context, from, to Addr, req any) (any, error) {
	n.Messages.Inc()
	h, l, err := n.lookup(from, to)
	if err != nil {
		if err == ErrNoEndpoint {
			return nil, err
		}
		if serr := sleep(ctx, l.Timeout); serr != nil {
			return nil, serr
		}
		return nil, ErrUnreachable
	}
	if n.lose(l) {
		n.Drops.Inc()
		if serr := sleep(ctx, l.Timeout); serr != nil {
			return nil, serr
		}
		return nil, ErrLost
	}
	if err := sleep(ctx, n.delay(l)); err != nil {
		return nil, err
	}
	// The partition may have started while the request was in
	// flight; in that case the response never arrives.
	if !n.Reachable(from, to) {
		if serr := sleep(ctx, l.Timeout); serr != nil {
			return nil, serr
		}
		return nil, ErrUnreachable
	}
	resp, err := h(ctx, from, req)
	if err != nil {
		return nil, err
	}
	if n.lose(l) {
		n.Drops.Inc()
		if serr := sleep(ctx, l.Timeout); serr != nil {
			return nil, serr
		}
		return nil, ErrLost
	}
	if err := sleep(ctx, n.delay(l)); err != nil {
		return nil, err
	}
	return resp, nil
}

// Send delivers a one-way message asynchronously (used by the
// asynchronous replication of §3.3.1). Delivery failures are silent,
// exactly like a UDP datagram into a partition; senders that need
// acknowledgement use Call.
func (n *Network) Send(from, to Addr, msg any) {
	n.Messages.Inc()
	go func() {
		h, l, err := n.lookup(from, to)
		if err != nil || n.lose(l) {
			if err == nil {
				n.Drops.Inc()
			}
			return
		}
		if sleep(context.Background(), n.delay(l)) != nil {
			return
		}
		// Re-check reachability on arrival.
		if !n.Reachable(from, to) {
			return
		}
		h, _, err = n.lookup(from, to)
		if err != nil {
			return
		}
		_, _ = h(context.Background(), from, msg)
	}()
}

// String summarises the network state for diagnostics.
func (n *Network) String() string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return fmt.Sprintf("simnet{sites=%d endpoints=%d messages=%d drops=%d}",
		len(n.sites), len(n.endpoints), n.Messages.Value(), n.Drops.Value())
}
