package simnet

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func echoHandler(ctx context.Context, from Addr, req any) (any, error) {
	return req, nil
}

func newTestNet() *Network {
	n := New(FastConfig())
	n.AddSite("eu")
	n.AddSite("us")
	return n
}

func TestAddrParts(t *testing.T) {
	a := MakeAddr("eu", "se-1")
	if a.Site() != "eu" || a.Process() != "se-1" {
		t.Fatalf("addr parts = %q/%q", a.Site(), a.Process())
	}
	bare := Addr("nosite")
	if bare.Site() != "nosite" || bare.Process() != "" {
		t.Fatalf("bare addr = %q/%q", bare.Site(), bare.Process())
	}
}

func TestCallEcho(t *testing.T) {
	n := newTestNet()
	dst := MakeAddr("eu", "echo")
	n.Register(dst, echoHandler)
	got, err := n.Call(context.Background(), MakeAddr("eu", "client"), dst, "ping")
	if err != nil {
		t.Fatal(err)
	}
	if got != "ping" {
		t.Fatalf("got %v", got)
	}
	if n.Messages.Value() != 1 {
		t.Fatalf("messages = %d", n.Messages.Value())
	}
}

func TestCallNoEndpoint(t *testing.T) {
	n := newTestNet()
	_, err := n.Call(context.Background(), MakeAddr("eu", "c"), MakeAddr("eu", "missing"), 1)
	if !errors.Is(err, ErrNoEndpoint) {
		t.Fatalf("err = %v", err)
	}
}

func TestCallDownEndpoint(t *testing.T) {
	n := newTestNet()
	dst := MakeAddr("eu", "echo")
	n.Register(dst, echoHandler)
	n.SetDown(dst, true)
	_, err := n.Call(context.Background(), MakeAddr("eu", "c"), dst, 1)
	if !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v", err)
	}
	n.SetDown(dst, false)
	if _, err := n.Call(context.Background(), MakeAddr("eu", "c"), dst, 1); err != nil {
		t.Fatalf("after recovery: %v", err)
	}
}

func TestPartitionBlocksCrossSiteOnly(t *testing.T) {
	n := newTestNet()
	euSrv := MakeAddr("eu", "srv")
	usSrv := MakeAddr("us", "srv")
	n.Register(euSrv, echoHandler)
	n.Register(usSrv, echoHandler)

	n.Partition([]string{"eu"})
	if !n.Partitioned("eu", "us") {
		t.Fatal("eu/us should be partitioned")
	}
	if n.Partitioned("eu", "eu") {
		t.Fatal("eu/eu should not be partitioned")
	}

	// Cross-partition call fails.
	_, err := n.Call(context.Background(), MakeAddr("eu", "c"), usSrv, 1)
	if !errors.Is(err, ErrUnreachable) {
		t.Fatalf("cross-partition err = %v", err)
	}
	// Same-side call succeeds.
	if _, err := n.Call(context.Background(), MakeAddr("eu", "c"), euSrv, 1); err != nil {
		t.Fatalf("same-side call: %v", err)
	}

	n.Heal()
	if _, err := n.Call(context.Background(), MakeAddr("eu", "c"), usSrv, 1); err != nil {
		t.Fatalf("after heal: %v", err)
	}
}

func TestPartitionGroups(t *testing.T) {
	n := New(FastConfig())
	for _, s := range []string{"a", "b", "c"} {
		n.AddSite(s)
	}
	n.PartitionGroups([]string{"a"}, []string{"b"})
	if !n.Partitioned("a", "b") || !n.Partitioned("a", "c") || !n.Partitioned("b", "c") {
		t.Fatal("three-way partition not installed")
	}
	n.Heal()
	if n.Partitioned("a", "b") {
		t.Fatal("heal failed")
	}
}

func TestBackboneSlowerThanLocal(t *testing.T) {
	cfg := Config{
		Local:    Link{Latency: 0},
		Backbone: Link{Latency: 3 * time.Millisecond},
		Seed:     1,
	}
	n := New(cfg)
	local := MakeAddr("eu", "srv")
	remote := MakeAddr("us", "srv")
	n.Register(local, echoHandler)
	n.Register(remote, echoHandler)
	c := MakeAddr("eu", "client")

	t0 := time.Now()
	if _, err := n.Call(context.Background(), c, local, 1); err != nil {
		t.Fatal(err)
	}
	localD := time.Since(t0)

	t0 = time.Now()
	if _, err := n.Call(context.Background(), c, remote, 1); err != nil {
		t.Fatal(err)
	}
	remoteD := time.Since(t0)

	if remoteD < 6*time.Millisecond { // two one-way backbone hops
		t.Fatalf("backbone RTT = %v, want >= 6ms", remoteD)
	}
	if localD > remoteD {
		t.Fatalf("local %v slower than backbone %v", localD, remoteD)
	}
}

func TestLossyLink(t *testing.T) {
	cfg := FastConfig()
	cfg.Backbone.Loss = 1.0 // everything dropped
	n := New(cfg)
	dst := MakeAddr("us", "srv")
	n.Register(dst, echoHandler)
	_, err := n.Call(context.Background(), MakeAddr("eu", "c"), dst, 1)
	if !errors.Is(err, ErrLost) {
		t.Fatalf("err = %v, want ErrLost", err)
	}
	if n.Drops.Value() == 0 {
		t.Fatal("drop not counted")
	}
}

func TestSendOneWay(t *testing.T) {
	n := newTestNet()
	var got atomic.Int64
	dst := MakeAddr("eu", "sink")
	n.Register(dst, func(ctx context.Context, from Addr, req any) (any, error) {
		got.Add(int64(req.(int)))
		return nil, nil
	})
	n.Send(MakeAddr("eu", "c"), dst, 42)
	deadline := time.Now().Add(time.Second)
	for got.Load() != 42 {
		if time.Now().After(deadline) {
			t.Fatal("one-way message not delivered")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSendIntoPartitionSilentlyDropped(t *testing.T) {
	n := newTestNet()
	var got atomic.Int64
	dst := MakeAddr("us", "sink")
	n.Register(dst, func(ctx context.Context, from Addr, req any) (any, error) {
		got.Add(1)
		return nil, nil
	})
	n.Partition([]string{"eu"})
	n.Send(MakeAddr("eu", "c"), dst, 1)
	time.Sleep(5 * time.Millisecond)
	if got.Load() != 0 {
		t.Fatal("message crossed a partition")
	}
}

func TestContextCancellation(t *testing.T) {
	cfg := Config{
		Local:    Link{Latency: time.Second}, // long enough to cancel
		Backbone: Link{Latency: time.Second},
		Seed:     1,
	}
	n := New(cfg)
	dst := MakeAddr("eu", "srv")
	n.Register(dst, echoHandler)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := n.Call(ctx, MakeAddr("eu", "c"), dst, 1)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
	if time.Since(start) > 200*time.Millisecond {
		t.Fatal("cancellation did not interrupt the sleep")
	}
}

func TestPartitionChargesTimeout(t *testing.T) {
	cfg := FastConfig()
	cfg.Backbone.Timeout = 10 * time.Millisecond
	n := New(cfg)
	dst := MakeAddr("us", "srv")
	n.Register(dst, echoHandler)
	n.Partition([]string{"eu"})
	start := time.Now()
	_, err := n.Call(context.Background(), MakeAddr("eu", "c"), dst, 1)
	if !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v", err)
	}
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Fatalf("partition failure returned in %v, want >= link timeout", d)
	}
}

func TestSetLinkOverride(t *testing.T) {
	n := New(FastConfig())
	n.AddSite("a")
	n.AddSite("b")
	n.SetLink("a", "b", Link{Latency: 42 * time.Millisecond})
	l := n.LinkBetween("a", "b")
	if l.Latency != 42*time.Millisecond {
		t.Fatalf("link latency = %v", l.Latency)
	}
	if n.LinkBetween("b", "a").Latency != 42*time.Millisecond {
		t.Fatal("link override not symmetric")
	}
	if n.LinkBetween("a", "a").Latency != FastConfig().Local.Latency {
		t.Fatal("local link affected by override")
	}
}

func TestReachable(t *testing.T) {
	n := newTestNet()
	dst := MakeAddr("us", "srv")
	n.Register(dst, echoHandler)
	src := MakeAddr("eu", "c")
	if !n.Reachable(src, dst) {
		t.Fatal("should be reachable")
	}
	n.Partition([]string{"eu"})
	if n.Reachable(src, dst) {
		t.Fatal("should be partitioned")
	}
	n.Heal()
	n.SetDown(dst, true)
	if n.Reachable(src, dst) {
		t.Fatal("down endpoint should be unreachable")
	}
}

func TestSitesSorted(t *testing.T) {
	n := New(FastConfig())
	for _, s := range []string{"zz", "aa", "mm"} {
		n.AddSite(s)
	}
	sites := n.Sites()
	if len(sites) != 3 || sites[0] != "aa" || sites[2] != "zz" {
		t.Fatalf("sites = %v", sites)
	}
}

func TestUnregister(t *testing.T) {
	n := newTestNet()
	dst := MakeAddr("eu", "srv")
	n.Register(dst, echoHandler)
	n.Unregister(dst)
	_, err := n.Call(context.Background(), MakeAddr("eu", "c"), dst, 1)
	if !errors.Is(err, ErrNoEndpoint) {
		t.Fatalf("err = %v", err)
	}
}
