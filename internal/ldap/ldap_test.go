package ldap

import (
	"net"
	"sync"
	"testing"
)

func msgRoundTrip(t *testing.T, op any) any {
	t.Helper()
	m := &Message{ID: 7, Op: op}
	buf, err := m.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(buf)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.ID != 7 {
		t.Fatalf("ID = %d", got.ID)
	}
	return got.Op
}

func TestBindRoundTrip(t *testing.T) {
	op := msgRoundTrip(t, &BindRequest{Version: 3, DN: "cn=ps", Password: "secret"})
	req := op.(*BindRequest)
	if req.Version != 3 || req.DN != "cn=ps" || req.Password != "secret" {
		t.Fatalf("bind = %+v", req)
	}
	op = msgRoundTrip(t, &BindResponse{Result{Code: ResultSuccess, Message: "ok"}})
	if resp := op.(*BindResponse); resp.Code != ResultSuccess || resp.Message != "ok" {
		t.Fatalf("bind response = %+v", resp)
	}
}

func TestSearchRequestRoundTrip(t *testing.T) {
	f := And(Eq("objectClass", "udrSubscription"), Or(Eq("msisdn", "34600000001"), Present("imsi")))
	op := msgRoundTrip(t, &SearchRequest{
		BaseDN: "ou=subscribers,dc=udr", Scope: ScopeWholeSubtree,
		SizeLimit: 10, TimeLimit: 5, TypesOnly: false,
		Filter: f, Attributes: []string{"msisdn", "imsi"},
	})
	req := op.(*SearchRequest)
	if req.BaseDN != "ou=subscribers,dc=udr" || req.Scope != ScopeWholeSubtree {
		t.Fatalf("search = %+v", req)
	}
	if req.Filter.String() != f.String() {
		t.Fatalf("filter = %s, want %s", req.Filter, f)
	}
	if len(req.Attributes) != 2 {
		t.Fatalf("attrs = %v", req.Attributes)
	}
}

func TestSearchEntryRoundTrip(t *testing.T) {
	op := msgRoundTrip(t, &SearchEntry{
		DN:    "uid=sub-1,ou=subscribers,dc=udr",
		Attrs: map[string][]string{"msisdn": {"34600000001"}, "impu": {"sip:a", "tel:b"}},
	})
	e := op.(*SearchEntry)
	if e.DN != "uid=sub-1,ou=subscribers,dc=udr" {
		t.Fatalf("DN = %s", e.DN)
	}
	if len(e.Attrs["impu"]) != 2 {
		t.Fatalf("attrs = %v", e.Attrs)
	}
}

func TestModifyRoundTrip(t *testing.T) {
	op := msgRoundTrip(t, &ModifyRequest{
		DN: "uid=sub-1,ou=subscribers,dc=udr",
		Changes: []Change{
			{Op: ChangeReplace, Attr: "barPremium", Vals: []string{"TRUE"}},
			{Op: ChangeDelete, Attr: "cfu"},
		},
	})
	req := op.(*ModifyRequest)
	if len(req.Changes) != 2 || req.Changes[0].Op != ChangeReplace || req.Changes[1].Attr != "cfu" {
		t.Fatalf("modify = %+v", req)
	}
}

func TestAddDeleteCompareRoundTrip(t *testing.T) {
	op := msgRoundTrip(t, &AddRequest{DN: "uid=x", Attrs: map[string][]string{"a": {"1"}}})
	if add := op.(*AddRequest); add.DN != "uid=x" || add.Attrs["a"][0] != "1" {
		t.Fatalf("add = %+v", add)
	}
	op = msgRoundTrip(t, &DelRequest{DN: "uid=x"})
	if del := op.(*DelRequest); del.DN != "uid=x" {
		t.Fatalf("del = %+v", del)
	}
	op = msgRoundTrip(t, &CompareRequest{DN: "uid=x", Attr: "active", Value: "TRUE"})
	if cmp := op.(*CompareRequest); cmp.Attr != "active" || cmp.Value != "TRUE" {
		t.Fatalf("compare = %+v", cmp)
	}
}

func TestExtendedRoundTrip(t *testing.T) {
	op := msgRoundTrip(t, &ExtendedRequest{Name: OIDTxnBegin, Value: []byte{1, 2}})
	if ext := op.(*ExtendedRequest); ext.Name != OIDTxnBegin || len(ext.Value) != 2 {
		t.Fatalf("extended = %+v", ext)
	}
	op = msgRoundTrip(t, &ExtendedResponse{
		Result: Result{Code: ResultSuccess}, Name: OIDTxnCommit, Value: []byte{9},
	})
	ext := op.(*ExtendedResponse)
	if ext.Name != OIDTxnCommit || len(ext.Value) != 1 {
		t.Fatalf("extended response = %+v", ext)
	}
}

func TestFilterMatches(t *testing.T) {
	attrs := map[string][]string{
		"objectClass": {"udrSubscription"},
		"msisdn":      {"34600000001"},
		"active":      {"TRUE"},
	}
	cases := []struct {
		f    Filter
		want bool
	}{
		{Eq("msisdn", "34600000001"), true},
		{Eq("msisdn", "nope"), false},
		{Present("msisdn"), true},
		{Present("missing"), false},
		{And(Eq("active", "TRUE"), Present("msisdn")), true},
		{And(Eq("active", "TRUE"), Eq("msisdn", "nope")), false},
		{Or(Eq("msisdn", "nope"), Present("active")), true},
		{Filter{Kind: FilterNot, Children: []Filter{Eq("active", "TRUE")}}, false},
	}
	for _, c := range cases {
		if got := c.f.Matches(attrs); got != c.want {
			t.Errorf("%s.Matches = %v, want %v", c.f, got, c.want)
		}
	}
}

func TestDecodeGarbage(t *testing.T) {
	if _, err := Decode([]byte{0x30, 0x01, 0xFF}); err == nil {
		t.Fatal("garbage should not decode")
	}
	if _, err := Decode(nil); err == nil {
		t.Fatal("nil should not decode")
	}
}

// mapBackend is a trivial in-memory backend for server tests.
type mapBackend struct {
	mu      sync.Mutex
	entries map[string]map[string][]string
	// lastBatch records the most recent Write batch size (txn test).
	lastBatch int
}

func newMapBackend() *mapBackend {
	return &mapBackend{entries: map[string]map[string][]string{}}
}

func (b *mapBackend) Bind(dn, password string) Result {
	if password == "wrong" {
		return Result{Code: ResultInvalidCredentials}
	}
	return Result{Code: ResultSuccess}
}

func (b *mapBackend) Search(req *SearchRequest) ([]SearchEntry, Result) {
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []SearchEntry
	for dn, attrs := range b.entries {
		if req.Filter.Matches(attrs) {
			out = append(out, SearchEntry{DN: dn, Attrs: attrs})
		}
	}
	return out, Result{Code: ResultSuccess}
}

func (b *mapBackend) Compare(dn, attr, value string) Result {
	b.mu.Lock()
	defer b.mu.Unlock()
	e, ok := b.entries[dn]
	if !ok {
		return Result{Code: ResultNoSuchObject}
	}
	for _, v := range e[attr] {
		if v == value {
			return Result{Code: ResultCompareTrue}
		}
	}
	return Result{Code: ResultCompareFalse}
}

func (b *mapBackend) Write(ops []WriteOp) Result {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.lastBatch = len(ops)
	for _, op := range ops {
		switch op.Kind {
		case WriteAdd:
			if _, dup := b.entries[op.DN]; dup {
				return Result{Code: ResultEntryAlreadyExists}
			}
			b.entries[op.DN] = op.Attrs
		case WriteModify:
			e, ok := b.entries[op.DN]
			if !ok {
				return Result{Code: ResultNoSuchObject}
			}
			for _, c := range op.Changes {
				switch c.Op {
				case ChangeReplace, ChangeAdd:
					e[c.Attr] = c.Vals
				case ChangeDelete:
					delete(e, c.Attr)
				}
			}
		case WriteDelete:
			if _, ok := b.entries[op.DN]; !ok {
				return Result{Code: ResultNoSuchObject}
			}
			delete(b.entries, op.DN)
		}
	}
	return Result{Code: ResultSuccess}
}

// startPipe wires a client and server over an in-memory connection.
func startPipe(t *testing.T, backend Backend) *Client {
	t.Helper()
	cConn, sConn := net.Pipe()
	srv := NewServer(backend)
	go func() { _ = srv.ServeConn(sConn) }()
	c := NewClient(cConn)
	t.Cleanup(func() { _ = c.Close() })
	return c
}

func TestServerBindSearchAddModifyDelete(t *testing.T) {
	backend := newMapBackend()
	c := startPipe(t, backend)

	if r, err := c.Bind("cn=admin", "pw"); err != nil || r.Code != ResultSuccess {
		t.Fatalf("bind: %v %v", r, err)
	}
	if r, err := c.Bind("cn=admin", "wrong"); err != nil || r.Code != ResultInvalidCredentials {
		t.Fatalf("bad bind: %v %v", r, err)
	}

	dn := "uid=sub-1,ou=subscribers,dc=udr"
	if r, err := c.Add(dn, map[string][]string{"msisdn": {"34600000001"}, "active": {"TRUE"}}); err != nil || r.Code != ResultSuccess {
		t.Fatalf("add: %v %v", r, err)
	}
	if r, _ := c.Add(dn, map[string][]string{}); r.Code != ResultEntryAlreadyExists {
		t.Fatalf("duplicate add = %v", r)
	}

	entries, res, err := c.Search(&SearchRequest{
		BaseDN: "ou=subscribers,dc=udr", Scope: ScopeWholeSubtree,
		Filter: Eq("msisdn", "34600000001"),
	})
	if err != nil || res.Code != ResultSuccess || len(entries) != 1 || entries[0].DN != dn {
		t.Fatalf("search: %v %v %v", entries, res, err)
	}

	if r, err := c.Modify(dn, []Change{{Op: ChangeReplace, Attr: "active", Vals: []string{"FALSE"}}}); err != nil || r.Code != ResultSuccess {
		t.Fatalf("modify: %v %v", r, err)
	}
	if r, err := c.Compare(dn, "active", "FALSE"); err != nil || r.Code != ResultCompareTrue {
		t.Fatalf("compare: %v %v", r, err)
	}
	if r, err := c.Compare(dn, "active", "TRUE"); err != nil || r.Code != ResultCompareFalse {
		t.Fatalf("compare false: %v %v", r, err)
	}

	if r, err := c.Delete(dn); err != nil || r.Code != ResultSuccess {
		t.Fatalf("delete: %v %v", r, err)
	}
	if _, res, _ := c.Search(&SearchRequest{
		BaseDN: "ou=subscribers,dc=udr", Scope: ScopeWholeSubtree,
		Filter: Eq("msisdn", "34600000001"),
	}); res.Code != ResultSuccess {
		t.Fatalf("search after delete = %v", res)
	}
}

func TestServerTransactionGrouping(t *testing.T) {
	backend := newMapBackend()
	c := startPipe(t, backend)

	if r, err := c.TxnBegin(); err != nil || r.Code != ResultSuccess {
		t.Fatalf("txn begin: %v %v", r, err)
	}
	if r, err := c.Add("uid=a,dc=udr", map[string][]string{"x": {"1"}}); err != nil || r.Code != ResultSuccess {
		t.Fatalf("staged add: %v %v", r, err)
	}
	if r, err := c.Add("uid=b,dc=udr", map[string][]string{"x": {"2"}}); err != nil || r.Code != ResultSuccess {
		t.Fatalf("staged add 2: %v %v", r, err)
	}
	// Nothing applied yet.
	backend.mu.Lock()
	n := len(backend.entries)
	backend.mu.Unlock()
	if n != 0 {
		t.Fatalf("writes applied before commit: %d entries", n)
	}
	if r, err := c.TxnCommit(); err != nil || r.Code != ResultSuccess {
		t.Fatalf("txn commit: %v %v", r, err)
	}
	backend.mu.Lock()
	n, batch := len(backend.entries), backend.lastBatch
	backend.mu.Unlock()
	if n != 2 {
		t.Fatalf("entries after commit = %d", n)
	}
	if batch != 2 {
		t.Fatalf("commit batch size = %d, want 2 (atomic grouping)", batch)
	}
}

func TestServerTransactionAbort(t *testing.T) {
	backend := newMapBackend()
	c := startPipe(t, backend)
	if _, err := c.TxnBegin(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Add("uid=a,dc=udr", map[string][]string{"x": {"1"}}); err != nil {
		t.Fatal(err)
	}
	if r, err := c.TxnAbort(); err != nil || r.Code != ResultSuccess {
		t.Fatalf("abort: %v %v", r, err)
	}
	backend.mu.Lock()
	n := len(backend.entries)
	backend.mu.Unlock()
	if n != 0 {
		t.Fatalf("aborted writes applied: %d", n)
	}
}

func TestServerTxnErrors(t *testing.T) {
	c := startPipe(t, newMapBackend())
	if r, _ := c.TxnCommit(); r.Code != ResultOperationsError {
		t.Fatalf("commit without begin = %v", r)
	}
	if _, err := c.TxnBegin(); err != nil {
		t.Fatal(err)
	}
	if r, _ := c.TxnBegin(); r.Code != ResultOperationsError {
		t.Fatalf("nested begin = %v", r)
	}
}

func TestServerUnknownExtended(t *testing.T) {
	c := startPipe(t, newMapBackend())
	r, err := c.extendedCall("1.2.3.4", nil)
	if err != nil || r.Code != ResultProtocolError {
		t.Fatalf("unknown extended = %v %v", r, err)
	}
}

func TestServerOverTCP(t *testing.T) {
	backend := newMapBackend()
	srv := NewServer(backend)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(conn)
	defer c.Close()
	if r, err := c.Bind("", ""); err != nil || r.Code != ResultSuccess {
		t.Fatalf("anonymous bind over TCP: %v %v", r, err)
	}
	if r, err := c.Add("uid=tcp,dc=udr", map[string][]string{"a": {"1"}}); err != nil || r.Code != ResultSuccess {
		t.Fatalf("add over TCP: %v %v", r, err)
	}
	if err := c.Unbind(); err != nil {
		t.Fatalf("unbind: %v", err)
	}
}
