package ldap

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/ber"
)

// ReadMessage reads one complete BER-framed LDAP message from r.
func ReadMessage(r io.Reader) ([]byte, error) {
	return ber.ReadElement(r)
}

// Client is a synchronous LDAP client over any net.Conn. It is safe
// for concurrent use; requests are serialized on the connection.
type Client struct {
	mu     sync.Mutex
	conn   net.Conn
	br     *bufio.Reader
	wbuf   []byte // reused request encode buffer, guarded by mu
	nextID int64
}

// NewClient wraps an established connection.
func NewClient(conn net.Conn) *Client {
	return &Client{conn: conn, br: bufio.NewReaderSize(conn, 4096), nextID: 1}
}

// Close terminates the connection (sending an unbind first is the
// caller's choice via Unbind).
func (c *Client) Close() error { return c.conn.Close() }

// roundTrip sends op and returns all responses bearing the same
// message ID, stopping at the first non-SearchEntry response.
func (c *Client) roundTrip(op any) ([]any, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	id := c.nextID
	c.nextID++
	msg := &Message{ID: id, Op: op}
	buf, err := msg.AppendTo(c.wbuf[:0])
	if err != nil {
		return nil, err
	}
	c.wbuf = buf
	if _, err := c.conn.Write(buf); err != nil {
		return nil, err
	}
	var out []any
	for {
		raw, err := ReadMessage(c.br)
		if err != nil {
			return nil, err
		}
		resp, err := Decode(raw)
		if err != nil {
			return nil, err
		}
		if resp.ID != id {
			return nil, fmt.Errorf("ldap: response ID %d for request %d", resp.ID, id)
		}
		out = append(out, resp.Op)
		if _, isEntry := resp.Op.(*SearchEntry); !isEntry {
			return out, nil
		}
	}
}

// Bind authenticates with a simple bind.
func (c *Client) Bind(dn, password string) (Result, error) {
	resp, err := c.roundTrip(&BindRequest{Version: 3, DN: dn, Password: password})
	if err != nil {
		return Result{}, err
	}
	r, ok := resp[len(resp)-1].(*BindResponse)
	if !ok {
		return Result{}, fmt.Errorf("ldap: unexpected bind response %T", resp[len(resp)-1])
	}
	return r.Result, nil
}

// Unbind notifies the server and closes the connection.
func (c *Client) Unbind() error {
	c.mu.Lock()
	msg := &Message{ID: c.nextID, Op: &UnbindRequest{}}
	c.nextID++
	buf, err := msg.Encode()
	if err == nil {
		_, err = c.conn.Write(buf)
	}
	c.mu.Unlock()
	cerr := c.conn.Close()
	if err != nil {
		return err
	}
	return cerr
}

// Search runs a search and returns the entries plus the final result.
func (c *Client) Search(req *SearchRequest) ([]SearchEntry, Result, error) {
	resp, err := c.roundTrip(req)
	if err != nil {
		return nil, Result{}, err
	}
	var entries []SearchEntry
	for _, op := range resp[:len(resp)-1] {
		e, ok := op.(*SearchEntry)
		if !ok {
			return nil, Result{}, fmt.Errorf("ldap: unexpected search response %T", op)
		}
		entries = append(entries, *e)
	}
	done, ok := resp[len(resp)-1].(*SearchDone)
	if !ok {
		return nil, Result{}, fmt.Errorf("ldap: unexpected search terminator %T", resp[len(resp)-1])
	}
	return entries, done.Result, nil
}

// Add creates an entry.
func (c *Client) Add(dn string, attrs map[string][]string) (Result, error) {
	resp, err := c.roundTrip(&AddRequest{DN: dn, Attrs: attrs})
	if err != nil {
		return Result{}, err
	}
	r, ok := resp[len(resp)-1].(*AddResponse)
	if !ok {
		return Result{}, fmt.Errorf("ldap: unexpected add response %T", resp[len(resp)-1])
	}
	return r.Result, nil
}

// Modify applies attribute changes to an entry.
func (c *Client) Modify(dn string, changes []Change) (Result, error) {
	resp, err := c.roundTrip(&ModifyRequest{DN: dn, Changes: changes})
	if err != nil {
		return Result{}, err
	}
	r, ok := resp[len(resp)-1].(*ModifyResponse)
	if !ok {
		return Result{}, fmt.Errorf("ldap: unexpected modify response %T", resp[len(resp)-1])
	}
	return r.Result, nil
}

// Delete removes an entry.
func (c *Client) Delete(dn string) (Result, error) {
	resp, err := c.roundTrip(&DelRequest{DN: dn})
	if err != nil {
		return Result{}, err
	}
	r, ok := resp[len(resp)-1].(*DelResponse)
	if !ok {
		return Result{}, fmt.Errorf("ldap: unexpected delete response %T", resp[len(resp)-1])
	}
	return r.Result, nil
}

// Compare tests an attribute value; the result code is
// ResultCompareTrue or ResultCompareFalse on success.
func (c *Client) Compare(dn, attr, value string) (Result, error) {
	resp, err := c.roundTrip(&CompareRequest{DN: dn, Attr: attr, Value: value})
	if err != nil {
		return Result{}, err
	}
	r, ok := resp[len(resp)-1].(*CompareResponse)
	if !ok {
		return Result{}, fmt.Errorf("ldap: unexpected compare response %T", resp[len(resp)-1])
	}
	return r.Result, nil
}

// extendedCall runs one extended operation.
func (c *Client) extendedCall(name string, value []byte) (Result, error) {
	resp, err := c.roundTrip(&ExtendedRequest{Name: name, Value: value})
	if err != nil {
		return Result{}, err
	}
	r, ok := resp[len(resp)-1].(*ExtendedResponse)
	if !ok {
		return Result{}, fmt.Errorf("ldap: unexpected extended response %T", resp[len(resp)-1])
	}
	return r.Result, nil
}

// extendedCallFull runs one extended operation and returns the
// response value as well.
func (c *Client) extendedCallFull(name string, value []byte) (Result, []byte, error) {
	resp, err := c.roundTrip(&ExtendedRequest{Name: name, Value: value})
	if err != nil {
		return Result{}, nil, err
	}
	r, ok := resp[len(resp)-1].(*ExtendedResponse)
	if !ok {
		return Result{}, nil, fmt.Errorf("ldap: unexpected extended response %T", resp[len(resp)-1])
	}
	return r.Result, r.Value, nil
}

// Status fetches the server's OaM status dump (udrd topology view).
func (c *Client) Status() (string, Result, error) {
	r, value, err := c.extendedCallFull(OIDStatus, nil)
	return string(value), r, err
}

// Repair triggers an anti-entropy repair round on every partition and
// returns the server's per-peer repair report (udrctl repair).
func (c *Client) Repair() (string, Result, error) {
	r, value, err := c.extendedCallFull(OIDRepair, nil)
	return string(value), r, err
}

// Move migrates a partition's master replica onto the target storage
// element and returns the server's migration report (udrctl move).
// The request value is "<partition> <target-element>".
func (c *Client) Move(partition, targetElement string) (string, Result, error) {
	r, value, err := c.extendedCallFull(OIDMove, []byte(partition+" "+targetElement))
	return string(value), r, err
}

// Rebalance runs one elastic rebalancing pass (plan + migrations) and
// returns the server's plan/outcome report (udrctl rebalance).
func (c *Client) Rebalance() (string, Result, error) {
	r, value, err := c.extendedCallFull(OIDRebalance, nil)
	return string(value), r, err
}

// Trace queries the server's request-trace recorder (udrctl trace).
// arg is "recent" (or empty), "slow", or a 16-hex-digit trace id;
// the response is the server-rendered text listing or span tree.
func (c *Client) Trace(arg string) (string, Result, error) {
	r, value, err := c.extendedCallFull(OIDTrace, []byte(arg))
	return string(value), r, err
}

// TxnBegin opens a write transaction on this connection: subsequent
// Add/Modify/Delete calls are staged server-side and executed
// atomically by TxnCommit.
func (c *Client) TxnBegin() (Result, error) { return c.extendedCall(OIDTxnBegin, nil) }

// TxnCommit executes the staged writes as one transaction.
func (c *Client) TxnCommit() (Result, error) { return c.extendedCall(OIDTxnCommit, nil) }

// TxnAbort discards the staged writes.
func (c *Client) TxnAbort() (Result, error) { return c.extendedCall(OIDTxnAbort, nil) }
