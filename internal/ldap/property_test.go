package ldap

import (
	"reflect"
	"testing"
	"testing/quick"
)

// cleanStr bounds generated strings (the codec handles arbitrary
// bytes; the bound just keeps the test fast).
func cleanStr(s string) string {
	if len(s) > 64 {
		return s[:64]
	}
	return s
}

func roundTripOK(op any) bool {
	msg := &Message{ID: 9, Op: op}
	buf, err := msg.Encode()
	if err != nil {
		return false
	}
	got, err := Decode(buf)
	if err != nil {
		return false
	}
	return got.ID == 9 && reflect.DeepEqual(got.Op, op)
}

func TestBindRoundTripProperty(t *testing.T) {
	f := func(dn, pw string) bool {
		return roundTripOK(&BindRequest{Version: 3, DN: cleanStr(dn), Password: cleanStr(pw)})
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSearchRoundTripProperty(t *testing.T) {
	f := func(base, attr, val string, scope uint8, sizeLimit uint16, typesOnly bool) bool {
		return roundTripOK(&SearchRequest{
			BaseDN:    cleanStr(base),
			Scope:     int64(scope % 3),
			SizeLimit: int64(sizeLimit),
			TypesOnly: typesOnly,
			Filter:    Eq(cleanStr(attr), cleanStr(val)),
		})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestModifyRoundTripProperty(t *testing.T) {
	f := func(dn, attr string, vals []string, op uint8) bool {
		if len(vals) > 8 {
			vals = vals[:8]
		}
		if len(vals) == 0 {
			vals = nil // the wire format cannot distinguish empty from nil
		}
		for i := range vals {
			vals[i] = cleanStr(vals[i])
		}
		ch := Change{Op: ChangeOp(op % 3), Attr: cleanStr(attr), Vals: vals}
		return roundTripOK(&ModifyRequest{DN: cleanStr(dn), Changes: []Change{ch}})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDelCompareExtendedRoundTripProperty(t *testing.T) {
	f := func(dn, attr, val, name string, payload []byte) bool {
		if len(payload) > 64 {
			payload = payload[:64]
		}
		if len(payload) == 0 {
			payload = nil
		}
		return roundTripOK(&DelRequest{DN: cleanStr(dn)}) &&
			roundTripOK(&CompareRequest{DN: cleanStr(dn), Attr: cleanStr(attr), Value: cleanStr(val)}) &&
			roundTripOK(&ExtendedRequest{Name: cleanStr(name), Value: payload})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFilterMatchesConsistentAfterRoundTripProperty(t *testing.T) {
	// A filter must match the same entries before and after a trip
	// through the wire format.
	f := func(attr, val, otherVal string) bool {
		attr, val, otherVal = cleanStr(attr), cleanStr(val), cleanStr(otherVal)
		if attr == "" {
			return true
		}
		filter := Or(Eq(attr, val), Present("always"))
		req := &SearchRequest{BaseDN: "dc=x", Filter: filter}
		msg := &Message{ID: 1, Op: req}
		buf, err := msg.Encode()
		if err != nil {
			return false
		}
		got, err := Decode(buf)
		if err != nil {
			return false
		}
		decoded := got.Op.(*SearchRequest).Filter
		for _, entry := range []map[string][]string{
			{attr: {val}},
			{attr: {otherVal}},
			{"always": {"x"}},
			{},
		} {
			if filter.Matches(entry) != decoded.Matches(entry) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeNeverPanicsProperty(t *testing.T) {
	f := func(b []byte) bool {
		Decode(b) // errors fine, panics not
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
