// Package ldap implements the subset of LDAPv3 (RFC 4511) the UDR's
// northbound interface needs (§1: UDC mandates an LDAP-based
// interface to read/write subscriber data): Bind, Unbind, Search
// (equality/present/and/or filters), Add, Modify, Delete, Compare and
// Extended operations, the latter carrying the transaction grouping
// the provisioning system relies on (§2.4).
//
// Wire format is real BER (see internal/ber), so the server
// interoperates with the repository's client over any net.Conn: TCP
// in cmd/udrd, in-memory pipes in tests.
package ldap

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/ber"
)

// Application protocol-op tags (RFC 4511 §4.1.1).
const (
	appBindRequest      = 0
	appBindResponse     = 1
	appUnbindRequest    = 2
	appSearchRequest    = 3
	appSearchEntry      = 4
	appSearchDone       = 5
	appModifyRequest    = 6
	appModifyResponse   = 7
	appAddRequest       = 8
	appAddResponse      = 9
	appDelRequest       = 10
	appDelResponse      = 11
	appCompareRequest   = 14
	appCompareResponse  = 15
	appExtendedRequest  = 23
	appExtendedResponse = 24
)

// ResultCode is an LDAP result code (RFC 4511 §4.1.9).
type ResultCode int

// Result codes used by the UDR.
const (
	ResultSuccess            ResultCode = 0
	ResultOperationsError    ResultCode = 1
	ResultProtocolError      ResultCode = 2
	ResultTimeLimitExceeded  ResultCode = 3
	ResultCompareFalse       ResultCode = 5
	ResultCompareTrue        ResultCode = 6
	ResultNoSuchObject       ResultCode = 32
	ResultInvalidCredentials ResultCode = 49
	ResultBusy               ResultCode = 51
	ResultUnavailable        ResultCode = 52
	ResultUnwillingToPerform ResultCode = 53
	ResultEntryAlreadyExists ResultCode = 68
	ResultOther              ResultCode = 80
)

// String returns the RFC name of the code.
func (rc ResultCode) String() string {
	switch rc {
	case ResultSuccess:
		return "success"
	case ResultOperationsError:
		return "operationsError"
	case ResultProtocolError:
		return "protocolError"
	case ResultTimeLimitExceeded:
		return "timeLimitExceeded"
	case ResultCompareFalse:
		return "compareFalse"
	case ResultCompareTrue:
		return "compareTrue"
	case ResultNoSuchObject:
		return "noSuchObject"
	case ResultInvalidCredentials:
		return "invalidCredentials"
	case ResultBusy:
		return "busy"
	case ResultUnavailable:
		return "unavailable"
	case ResultUnwillingToPerform:
		return "unwillingToPerform"
	case ResultEntryAlreadyExists:
		return "entryAlreadyExists"
	case ResultOther:
		return "other"
	}
	return fmt.Sprintf("resultCode(%d)", int(rc))
}

// Result is an LDAPResult.
type Result struct {
	Code      ResultCode
	MatchedDN string
	Message   string
}

// Search scopes (RFC 4511 §4.5.1.2).
const (
	ScopeBaseObject   = 0
	ScopeSingleLevel  = 1
	ScopeWholeSubtree = 2
)

// FilterKind enumerates supported filter node types.
type FilterKind int

// Supported filters.
const (
	FilterAnd FilterKind = iota
	FilterOr
	FilterNot
	FilterEquality
	FilterPresent
)

// Filter is a search filter tree.
type Filter struct {
	Kind     FilterKind
	Children []Filter // And, Or, Not(1)
	Attr     string   // Equality, Present
	Value    string   // Equality
}

// Eq builds an equality filter.
func Eq(attr, value string) Filter {
	return Filter{Kind: FilterEquality, Attr: attr, Value: value}
}

// Present builds a presence filter.
func Present(attr string) Filter { return Filter{Kind: FilterPresent, Attr: attr} }

// And combines filters conjunctively.
func And(fs ...Filter) Filter { return Filter{Kind: FilterAnd, Children: fs} }

// Or combines filters disjunctively.
func Or(fs ...Filter) Filter { return Filter{Kind: FilterOr, Children: fs} }

// Matches evaluates the filter against an attribute map.
func (f Filter) Matches(attrs map[string][]string) bool {
	switch f.Kind {
	case FilterAnd:
		for _, c := range f.Children {
			if !c.Matches(attrs) {
				return false
			}
		}
		return true
	case FilterOr:
		for _, c := range f.Children {
			if c.Matches(attrs) {
				return true
			}
		}
		return false
	case FilterNot:
		return len(f.Children) == 1 && !f.Children[0].Matches(attrs)
	case FilterEquality:
		for _, v := range attrs[f.Attr] {
			if v == f.Value {
				return true
			}
		}
		return false
	case FilterPresent:
		return len(attrs[f.Attr]) > 0
	}
	return false
}

// String renders the filter in RFC 4515 text form.
func (f Filter) String() string {
	switch f.Kind {
	case FilterAnd, FilterOr, FilterNot:
		op := map[FilterKind]string{FilterAnd: "&", FilterOr: "|", FilterNot: "!"}[f.Kind]
		s := "(" + op
		for _, c := range f.Children {
			s += c.String()
		}
		return s + ")"
	case FilterEquality:
		return "(" + f.Attr + "=" + f.Value + ")"
	case FilterPresent:
		return "(" + f.Attr + "=*)"
	}
	return "(?)"
}

// Message op payloads.

// BindRequest authenticates a connection (simple bind only).
type BindRequest struct {
	Version  int64
	DN       string
	Password string
}

// BindResponse answers a bind.
type BindResponse struct{ Result }

// UnbindRequest terminates a connection.
type UnbindRequest struct{}

// SearchRequest reads entries.
type SearchRequest struct {
	BaseDN     string
	Scope      int64
	Deref      int64
	SizeLimit  int64
	TimeLimit  int64
	TypesOnly  bool
	Filter     Filter
	Attributes []string
}

// SearchEntry is one result entry.
type SearchEntry struct {
	DN    string
	Attrs map[string][]string
}

// SearchDone ends a search result stream.
type SearchDone struct{ Result }

// ChangeOp enumerates modify change types.
type ChangeOp int64

// Modify change types (RFC 4511 §4.6).
const (
	ChangeAdd     ChangeOp = 0
	ChangeDelete  ChangeOp = 1
	ChangeReplace ChangeOp = 2
)

// Change is one attribute change in a ModifyRequest.
type Change struct {
	Op   ChangeOp
	Attr string
	Vals []string
}

// ModifyRequest mutates an entry's attributes.
type ModifyRequest struct {
	DN      string
	Changes []Change
}

// ModifyResponse answers a modify.
type ModifyResponse struct{ Result }

// AddRequest creates an entry.
type AddRequest struct {
	DN    string
	Attrs map[string][]string
}

// AddResponse answers an add.
type AddResponse struct{ Result }

// DelRequest deletes an entry.
type DelRequest struct{ DN string }

// DelResponse answers a delete.
type DelResponse struct{ Result }

// CompareRequest tests an attribute value.
type CompareRequest struct {
	DN    string
	Attr  string
	Value string
}

// CompareResponse answers a compare.
type CompareResponse struct{ Result }

// ExtendedRequest carries an extended operation; the UDR uses it for
// transaction grouping.
type ExtendedRequest struct {
	Name  string
	Value []byte
}

// ExtendedResponse answers an extended request.
type ExtendedResponse struct {
	Result
	Name  string
	Value []byte
}

// Extended operation OIDs for the UDR's transaction grouping
// (modelled on RFC 5805's shape with simplified semantics: writes
// between begin and commit execute as one storage-element
// transaction) and for OaM.
const (
	OIDTxnBegin  = "1.3.6.1.4.1.193.99.1"  // begin transaction
	OIDTxnCommit = "1.3.6.1.4.1.193.99.2"  // commit buffered writes
	OIDTxnAbort  = "1.3.6.1.4.1.193.99.3"  // discard buffered writes
	OIDStatus    = "1.3.6.1.4.1.193.99.10" // OaM: topology status dump
	OIDRepair    = "1.3.6.1.4.1.193.99.11" // OaM: anti-entropy repair round
	OIDMove      = "1.3.6.1.4.1.193.99.12" // OaM: live partition migration
	OIDRebalance = "1.3.6.1.4.1.193.99.13" // OaM: elastic rebalancing pass
	OIDTrace     = "1.3.6.1.4.1.193.99.14" // OaM: request-trace listing / span tree
)

// Message is one LDAPMessage envelope.
type Message struct {
	ID int64
	Op any // one of the payload types above
}

// ErrDecode wraps malformed-PDU errors.
var ErrDecode = errors.New("ldap: malformed message")

func decodeErr(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrDecode, fmt.Sprintf(format, args...))
}

// Encode serializes the message.
func (m *Message) Encode() ([]byte, error) {
	return m.AppendTo(nil)
}

// AppendTo appends the message's wire encoding to dst and returns the
// extended slice. The server and client pass a reused per-connection
// buffer here, so steady-state traffic pays no per-message output
// buffer allocation.
func (m *Message) AppendTo(dst []byte) ([]byte, error) {
	env := ber.NewSequence()
	env.Append(ber.NewInteger(m.ID))
	op, err := encodeOp(m.Op)
	if err != nil {
		return nil, err
	}
	env.Append(op)
	return env.AppendTo(dst), nil
}

func sortedAttrNames(attrs map[string][]string) []string {
	names := make([]string, 0, len(attrs))
	for a := range attrs {
		names = append(names, a)
	}
	sort.Strings(names)
	return names
}

func encodeAttrList(attrs map[string][]string) *ber.Packet {
	list := ber.NewSequence()
	for _, name := range sortedAttrNames(attrs) {
		attr := ber.NewSequence()
		attr.Append(ber.NewString(name))
		set := ber.NewConstructed(ber.ClassUniversal, ber.TagSet)
		for _, v := range attrs[name] {
			set.Append(ber.NewString(v))
		}
		attr.Append(set)
		list.Append(attr)
	}
	return list
}

func encodeResult(tag int, r Result) *ber.Packet {
	p := ber.NewConstructed(ber.ClassApplication, tag)
	p.Append(ber.NewEnumerated(int64(r.Code)))
	p.Append(ber.NewString(r.MatchedDN))
	p.Append(ber.NewString(r.Message))
	return p
}

func encodeFilter(f Filter) (*ber.Packet, error) {
	switch f.Kind {
	case FilterAnd, FilterOr:
		tag := 0
		if f.Kind == FilterOr {
			tag = 1
		}
		p := ber.NewConstructed(ber.ClassContext, tag)
		for _, c := range f.Children {
			cp, err := encodeFilter(c)
			if err != nil {
				return nil, err
			}
			p.Append(cp)
		}
		return p, nil
	case FilterNot:
		if len(f.Children) != 1 {
			return nil, fmt.Errorf("ldap: NOT filter needs exactly one child")
		}
		p := ber.NewConstructed(ber.ClassContext, 2)
		cp, err := encodeFilter(f.Children[0])
		if err != nil {
			return nil, err
		}
		return p.Append(cp), nil
	case FilterEquality:
		p := ber.NewConstructed(ber.ClassContext, 3)
		p.Append(ber.NewString(f.Attr))
		p.Append(ber.NewString(f.Value))
		return p, nil
	case FilterPresent:
		return ber.NewPrimitive(ber.ClassContext, 7, []byte(f.Attr)), nil
	}
	return nil, fmt.Errorf("ldap: unsupported filter kind %d", f.Kind)
}

func encodeOp(op any) (*ber.Packet, error) {
	switch o := op.(type) {
	case *BindRequest:
		p := ber.NewConstructed(ber.ClassApplication, appBindRequest)
		p.Append(ber.NewInteger(o.Version))
		p.Append(ber.NewString(o.DN))
		p.Append(ber.NewPrimitive(ber.ClassContext, 0, []byte(o.Password)))
		return p, nil
	case *BindResponse:
		return encodeResult(appBindResponse, o.Result), nil
	case *UnbindRequest:
		return ber.NewPrimitive(ber.ClassApplication, appUnbindRequest, nil), nil
	case *SearchRequest:
		p := ber.NewConstructed(ber.ClassApplication, appSearchRequest)
		p.Append(ber.NewString(o.BaseDN))
		p.Append(ber.NewEnumerated(o.Scope))
		p.Append(ber.NewEnumerated(o.Deref))
		p.Append(ber.NewInteger(o.SizeLimit))
		p.Append(ber.NewInteger(o.TimeLimit))
		p.Append(ber.NewBoolean(o.TypesOnly))
		fp, err := encodeFilter(o.Filter)
		if err != nil {
			return nil, err
		}
		p.Append(fp)
		attrs := ber.NewSequence()
		for _, a := range o.Attributes {
			attrs.Append(ber.NewString(a))
		}
		p.Append(attrs)
		return p, nil
	case *SearchEntry:
		p := ber.NewConstructed(ber.ClassApplication, appSearchEntry)
		p.Append(ber.NewString(o.DN))
		p.Append(encodeAttrList(o.Attrs))
		return p, nil
	case *SearchDone:
		return encodeResult(appSearchDone, o.Result), nil
	case *ModifyRequest:
		p := ber.NewConstructed(ber.ClassApplication, appModifyRequest)
		p.Append(ber.NewString(o.DN))
		changes := ber.NewSequence()
		for _, c := range o.Changes {
			ch := ber.NewSequence()
			ch.Append(ber.NewEnumerated(int64(c.Op)))
			attr := ber.NewSequence()
			attr.Append(ber.NewString(c.Attr))
			set := ber.NewConstructed(ber.ClassUniversal, ber.TagSet)
			for _, v := range c.Vals {
				set.Append(ber.NewString(v))
			}
			attr.Append(set)
			ch.Append(attr)
			changes.Append(ch)
		}
		p.Append(changes)
		return p, nil
	case *ModifyResponse:
		return encodeResult(appModifyResponse, o.Result), nil
	case *AddRequest:
		p := ber.NewConstructed(ber.ClassApplication, appAddRequest)
		p.Append(ber.NewString(o.DN))
		p.Append(encodeAttrList(o.Attrs))
		return p, nil
	case *AddResponse:
		return encodeResult(appAddResponse, o.Result), nil
	case *DelRequest:
		return ber.NewPrimitive(ber.ClassApplication, appDelRequest, []byte(o.DN)), nil
	case *DelResponse:
		return encodeResult(appDelResponse, o.Result), nil
	case *CompareRequest:
		p := ber.NewConstructed(ber.ClassApplication, appCompareRequest)
		p.Append(ber.NewString(o.DN))
		ava := ber.NewSequence()
		ava.Append(ber.NewString(o.Attr))
		ava.Append(ber.NewString(o.Value))
		p.Append(ava)
		return p, nil
	case *CompareResponse:
		return encodeResult(appCompareResponse, o.Result), nil
	case *ExtendedRequest:
		p := ber.NewConstructed(ber.ClassApplication, appExtendedRequest)
		p.Append(ber.NewPrimitive(ber.ClassContext, 0, []byte(o.Name)))
		if o.Value != nil {
			p.Append(ber.NewPrimitive(ber.ClassContext, 1, o.Value))
		}
		return p, nil
	case *ExtendedResponse:
		p := encodeResult(appExtendedResponse, o.Result)
		p.Append(ber.NewPrimitive(ber.ClassContext, 10, []byte(o.Name)))
		if o.Value != nil {
			p.Append(ber.NewPrimitive(ber.ClassContext, 11, o.Value))
		}
		return p, nil
	}
	return nil, fmt.Errorf("ldap: cannot encode op %T", op)
}

// Decode parses one LDAPMessage from buf.
func Decode(buf []byte) (*Message, error) {
	env, _, err := ber.Parse(buf)
	if err != nil {
		return nil, err
	}
	if env.Tag != ber.TagSequence || len(env.Children) < 2 {
		return nil, decodeErr("envelope is not SEQUENCE{id, op}")
	}
	id, err := env.Child(0).Int()
	if err != nil {
		return nil, decodeErr("message ID: %v", err)
	}
	opp := env.Child(1)
	if opp.Class != ber.ClassApplication {
		return nil, decodeErr("op class %d", opp.Class)
	}
	op, err := decodeOp(opp)
	if err != nil {
		return nil, err
	}
	return &Message{ID: id, Op: op}, nil
}

func decodeResult(p *ber.Packet) (Result, error) {
	if len(p.Children) < 3 {
		return Result{}, decodeErr("result with %d children", len(p.Children))
	}
	code, err := p.Child(0).Int()
	if err != nil {
		return Result{}, decodeErr("result code: %v", err)
	}
	return Result{
		Code:      ResultCode(code),
		MatchedDN: p.Child(1).Str(),
		Message:   p.Child(2).Str(),
	}, nil
}

func decodeAttrList(p *ber.Packet) (map[string][]string, error) {
	attrs := make(map[string][]string, len(p.Children))
	for _, ap := range p.Children {
		if len(ap.Children) != 2 {
			return nil, decodeErr("attribute with %d children", len(ap.Children))
		}
		name := ap.Child(0).Str()
		for _, vp := range ap.Child(1).Children {
			attrs[name] = append(attrs[name], vp.Str())
		}
	}
	return attrs, nil
}

func decodeFilter(p *ber.Packet) (Filter, error) {
	if p.Class != ber.ClassContext {
		return Filter{}, decodeErr("filter class %d", p.Class)
	}
	switch p.Tag {
	case 0, 1: // and, or
		kind := FilterAnd
		if p.Tag == 1 {
			kind = FilterOr
		}
		f := Filter{Kind: kind}
		for _, c := range p.Children {
			cf, err := decodeFilter(c)
			if err != nil {
				return Filter{}, err
			}
			f.Children = append(f.Children, cf)
		}
		return f, nil
	case 2: // not
		if len(p.Children) != 1 {
			return Filter{}, decodeErr("NOT filter with %d children", len(p.Children))
		}
		cf, err := decodeFilter(p.Child(0))
		if err != nil {
			return Filter{}, err
		}
		return Filter{Kind: FilterNot, Children: []Filter{cf}}, nil
	case 3: // equalityMatch
		if len(p.Children) != 2 {
			return Filter{}, decodeErr("equality filter with %d children", len(p.Children))
		}
		return Eq(p.Child(0).Str(), p.Child(1).Str()), nil
	case 7: // present
		return Present(string(p.Value)), nil
	}
	return Filter{}, decodeErr("unsupported filter tag %d", p.Tag)
}

func decodeOp(p *ber.Packet) (any, error) {
	switch p.Tag {
	case appBindRequest:
		if len(p.Children) < 3 {
			return nil, decodeErr("bind request")
		}
		ver, err := p.Child(0).Int()
		if err != nil {
			return nil, decodeErr("bind version: %v", err)
		}
		return &BindRequest{
			Version:  ver,
			DN:       p.Child(1).Str(),
			Password: string(p.Child(2).Value),
		}, nil
	case appBindResponse:
		r, err := decodeResult(p)
		if err != nil {
			return nil, err
		}
		return &BindResponse{r}, nil
	case appUnbindRequest:
		return &UnbindRequest{}, nil
	case appSearchRequest:
		if len(p.Children) < 8 {
			return nil, decodeErr("search request with %d children", len(p.Children))
		}
		scope, err1 := p.Child(1).Int()
		deref, err2 := p.Child(2).Int()
		size, err3 := p.Child(3).Int()
		tl, err4 := p.Child(4).Int()
		tOnly, err5 := p.Child(5).Bool()
		for _, err := range []error{err1, err2, err3, err4, err5} {
			if err != nil {
				return nil, decodeErr("search request field: %v", err)
			}
		}
		f, err := decodeFilter(p.Child(6))
		if err != nil {
			return nil, err
		}
		var attrs []string
		for _, ap := range p.Child(7).Children {
			attrs = append(attrs, ap.Str())
		}
		return &SearchRequest{
			BaseDN: p.Child(0).Str(), Scope: scope, Deref: deref,
			SizeLimit: size, TimeLimit: tl, TypesOnly: tOnly,
			Filter: f, Attributes: attrs,
		}, nil
	case appSearchEntry:
		if len(p.Children) < 2 {
			return nil, decodeErr("search entry")
		}
		attrs, err := decodeAttrList(p.Child(1))
		if err != nil {
			return nil, err
		}
		return &SearchEntry{DN: p.Child(0).Str(), Attrs: attrs}, nil
	case appSearchDone:
		r, err := decodeResult(p)
		if err != nil {
			return nil, err
		}
		return &SearchDone{r}, nil
	case appModifyRequest:
		if len(p.Children) < 2 {
			return nil, decodeErr("modify request")
		}
		req := &ModifyRequest{DN: p.Child(0).Str()}
		for _, cp := range p.Child(1).Children {
			if len(cp.Children) != 2 || len(cp.Child(1).Children) != 2 {
				return nil, decodeErr("modify change")
			}
			opv, err := cp.Child(0).Int()
			if err != nil {
				return nil, decodeErr("modify change op: %v", err)
			}
			ch := Change{Op: ChangeOp(opv), Attr: cp.Child(1).Child(0).Str()}
			for _, vp := range cp.Child(1).Child(1).Children {
				ch.Vals = append(ch.Vals, vp.Str())
			}
			req.Changes = append(req.Changes, ch)
		}
		return req, nil
	case appModifyResponse:
		r, err := decodeResult(p)
		if err != nil {
			return nil, err
		}
		return &ModifyResponse{r}, nil
	case appAddRequest:
		if len(p.Children) < 2 {
			return nil, decodeErr("add request")
		}
		attrs, err := decodeAttrList(p.Child(1))
		if err != nil {
			return nil, err
		}
		return &AddRequest{DN: p.Child(0).Str(), Attrs: attrs}, nil
	case appAddResponse:
		r, err := decodeResult(p)
		if err != nil {
			return nil, err
		}
		return &AddResponse{r}, nil
	case appDelRequest:
		return &DelRequest{DN: string(p.Value)}, nil
	case appDelResponse:
		r, err := decodeResult(p)
		if err != nil {
			return nil, err
		}
		return &DelResponse{r}, nil
	case appCompareRequest:
		if len(p.Children) < 2 || len(p.Child(1).Children) != 2 {
			return nil, decodeErr("compare request")
		}
		return &CompareRequest{
			DN:    p.Child(0).Str(),
			Attr:  p.Child(1).Child(0).Str(),
			Value: p.Child(1).Child(1).Str(),
		}, nil
	case appCompareResponse:
		r, err := decodeResult(p)
		if err != nil {
			return nil, err
		}
		return &CompareResponse{r}, nil
	case appExtendedRequest:
		req := &ExtendedRequest{}
		for _, c := range p.Children {
			switch c.Tag {
			case 0:
				req.Name = string(c.Value)
			case 1:
				req.Value = append([]byte(nil), c.Value...)
			}
		}
		return req, nil
	case appExtendedResponse:
		r, err := decodeResult(p)
		if err != nil {
			return nil, err
		}
		resp := &ExtendedResponse{Result: r}
		for _, c := range p.Children[3:] {
			switch c.Tag {
			case 10:
				resp.Name = string(c.Value)
			case 11:
				resp.Value = append([]byte(nil), c.Value...)
			}
		}
		return resp, nil
	}
	return nil, decodeErr("unsupported op tag %d", p.Tag)
}
