package ldap

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// WriteKind enumerates the write operations a backend batch can hold.
type WriteKind int

// Write kinds.
const (
	WriteAdd WriteKind = iota
	WriteModify
	WriteDelete
)

// WriteOp is one write inside a backend batch. A standalone LDAP
// Add/Modify/Delete arrives as a single-op batch; writes grouped
// between txn-begin and txn-commit extended operations arrive
// together, to be executed as one storage-element transaction —
// the provisioning grouping of §2.4.
type WriteOp struct {
	Kind    WriteKind
	DN      string
	Attrs   map[string][]string // WriteAdd
	Changes []Change            // WriteModify
}

// Backend is the directory implementation behind a Server. The UDR
// point of access implements it over the distributed core; tests
// implement it over a plain map.
type Backend interface {
	// Bind authenticates a connection.
	Bind(dn, password string) Result
	// Search evaluates a search request.
	Search(req *SearchRequest) ([]SearchEntry, Result)
	// Compare tests an attribute value.
	Compare(dn, attr, value string) Result
	// Write executes a batch of writes as one transaction.
	Write(ops []WriteOp) Result
}

// ExtendedBackend is an optional Backend extension for custom
// extended operations beyond the built-in transaction grouping (e.g.
// the OaM status dump).
type ExtendedBackend interface {
	// Extended handles one extended operation and returns the result
	// plus an optional response value.
	Extended(name string, value []byte) (Result, []byte)
}

// Server serves the LDAP subset over any net.Listener or individual
// net.Conn values.
type Server struct {
	backend Backend

	mu     sync.Mutex
	closed bool
	lns    []net.Listener
}

// NewServer returns a server over the given backend.
func NewServer(b Backend) *Server { return &Server{backend: b} }

// Serve accepts connections until the listener closes.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	s.lns = append(s.lns, l)
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		go func() { _ = s.ServeConn(conn) }()
	}
}

// Close stops all listeners.
func (s *Server) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	for _, l := range s.lns {
		l.Close()
	}
}

// connState tracks per-connection transaction buffering.
type connState struct {
	inTxn bool
	txn   []WriteOp
}

// ServeConn processes one connection until unbind, EOF or a protocol
// error. Reads go through a per-connection bufio.Reader (one kernel
// read per buffered chunk instead of several per BER header) and
// responses are encoded into a reused per-connection write buffer.
func (s *Server) ServeConn(conn net.Conn) error {
	defer conn.Close()
	st := &connState{}
	br := bufio.NewReaderSize(conn, 4096)
	var wbuf []byte
	for {
		raw, err := ReadMessage(br)
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		msg, err := Decode(raw)
		if err != nil {
			return err
		}
		if _, ok := msg.Op.(*UnbindRequest); ok {
			return nil
		}
		resp, err := s.dispatch(st, msg)
		if err != nil {
			return err
		}
		wbuf = wbuf[:0]
		for _, r := range resp {
			if wbuf, err = r.AppendTo(wbuf); err != nil {
				return err
			}
		}
		if len(wbuf) > 0 {
			if _, err := conn.Write(wbuf); err != nil {
				return err
			}
		}
		// Don't let one large search burst pin its peak buffer for
		// the connection's remaining lifetime.
		if cap(wbuf) > maxRetainedWriteBuf {
			wbuf = nil
		}
	}
}

// maxRetainedWriteBuf caps the response buffer capacity kept across
// messages on one connection; bursts beyond it are released to the GC.
const maxRetainedWriteBuf = 64 << 10

func (s *Server) dispatch(st *connState, msg *Message) ([]*Message, error) {
	reply := func(op any) []*Message {
		return []*Message{{ID: msg.ID, Op: op}}
	}
	switch op := msg.Op.(type) {
	case *BindRequest:
		return reply(&BindResponse{s.backend.Bind(op.DN, op.Password)}), nil
	case *SearchRequest:
		entries, res := s.backend.Search(op)
		out := make([]*Message, 0, len(entries)+1)
		for i := range entries {
			out = append(out, &Message{ID: msg.ID, Op: &entries[i]})
		}
		out = append(out, &Message{ID: msg.ID, Op: &SearchDone{res}})
		return out, nil
	case *CompareRequest:
		return reply(&CompareResponse{s.backend.Compare(op.DN, op.Attr, op.Value)}), nil
	case *AddRequest:
		w := WriteOp{Kind: WriteAdd, DN: op.DN, Attrs: op.Attrs}
		if st.inTxn {
			st.txn = append(st.txn, w)
			return reply(&AddResponse{Result{Code: ResultSuccess, Message: "staged"}}), nil
		}
		return reply(&AddResponse{s.backend.Write([]WriteOp{w})}), nil
	case *ModifyRequest:
		w := WriteOp{Kind: WriteModify, DN: op.DN, Changes: op.Changes}
		if st.inTxn {
			st.txn = append(st.txn, w)
			return reply(&ModifyResponse{Result{Code: ResultSuccess, Message: "staged"}}), nil
		}
		return reply(&ModifyResponse{s.backend.Write([]WriteOp{w})}), nil
	case *DelRequest:
		w := WriteOp{Kind: WriteDelete, DN: op.DN}
		if st.inTxn {
			st.txn = append(st.txn, w)
			return reply(&DelResponse{Result{Code: ResultSuccess, Message: "staged"}}), nil
		}
		return reply(&DelResponse{s.backend.Write([]WriteOp{w})}), nil
	case *ExtendedRequest:
		return reply(s.extended(st, op)), nil
	default:
		return reply(&ExtendedResponse{
			Result: Result{Code: ResultProtocolError, Message: fmt.Sprintf("unsupported op %T", msg.Op)},
		}), nil
	}
}

func (s *Server) extended(st *connState, op *ExtendedRequest) *ExtendedResponse {
	switch op.Name {
	case OIDTxnBegin:
		if st.inTxn {
			return &ExtendedResponse{Result: Result{Code: ResultOperationsError, Message: "transaction already open"}, Name: op.Name}
		}
		st.inTxn = true
		st.txn = nil
		return &ExtendedResponse{Result: Result{Code: ResultSuccess}, Name: op.Name}
	case OIDTxnCommit:
		if !st.inTxn {
			return &ExtendedResponse{Result: Result{Code: ResultOperationsError, Message: "no open transaction"}, Name: op.Name}
		}
		ops := st.txn
		st.inTxn = false
		st.txn = nil
		res := Result{Code: ResultSuccess}
		if len(ops) > 0 {
			res = s.backend.Write(ops)
		}
		return &ExtendedResponse{Result: res, Name: op.Name}
	case OIDTxnAbort:
		st.inTxn = false
		st.txn = nil
		return &ExtendedResponse{Result: Result{Code: ResultSuccess}, Name: op.Name}
	default:
		if eb, ok := s.backend.(ExtendedBackend); ok {
			res, value := eb.Extended(op.Name, op.Value)
			return &ExtendedResponse{Result: res, Name: op.Name, Value: value}
		}
		return &ExtendedResponse{Result: Result{Code: ResultProtocolError, Message: "unknown extended op " + op.Name}, Name: op.Name}
	}
}
