// Package ber implements the subset of ASN.1 Basic Encoding Rules
// needed by the UDR's LDAP northbound interface (§1: the UDR "is
// mandated to support an LDAP-based interface").
//
// A BER element is modelled as a Packet tree: constructed packets hold
// children, primitive packets hold raw bytes. Only definite-length
// encoding is produced; both short- and long-form lengths are parsed.
package ber

import (
	"errors"
	"fmt"
	"io"
)

// Class is the BER tag class.
type Class byte

// Tag classes.
const (
	ClassUniversal   Class = 0x00
	ClassApplication Class = 0x40
	ClassContext     Class = 0x80
	ClassPrivate     Class = 0xC0
)

// Universal tags used by LDAP.
const (
	TagBoolean     = 0x01
	TagInteger     = 0x02
	TagOctetString = 0x04
	TagNull        = 0x05
	TagEnumerated  = 0x0A
	TagSequence    = 0x10
	TagSet         = 0x11
)

// ErrTruncated is returned when input ends mid-element.
var ErrTruncated = errors.New("ber: truncated element")

// MaxElementSize bounds a single element to guard servers against
// hostile length headers.
const MaxElementSize = 16 << 20

// Packet is one BER element.
type Packet struct {
	Class       Class
	Constructed bool
	Tag         int
	Value       []byte    // primitive contents
	Children    []*Packet // constructed contents
}

// NewSequence returns an empty universal SEQUENCE.
func NewSequence() *Packet {
	return &Packet{Class: ClassUniversal, Constructed: true, Tag: TagSequence}
}

// NewConstructed returns an empty constructed packet with the given
// class and tag (used for LDAP APPLICATION and context tags).
func NewConstructed(class Class, tag int) *Packet {
	return &Packet{Class: class, Constructed: true, Tag: tag}
}

// NewPrimitive returns a primitive packet with raw contents.
func NewPrimitive(class Class, tag int, value []byte) *Packet {
	return &Packet{Class: class, Tag: tag, Value: value}
}

// NewBoolean returns a universal BOOLEAN.
func NewBoolean(v bool) *Packet {
	b := byte(0x00)
	if v {
		b = 0xFF
	}
	return NewPrimitive(ClassUniversal, TagBoolean, []byte{b})
}

// NewInteger returns a universal INTEGER.
func NewInteger(v int64) *Packet {
	return NewPrimitive(ClassUniversal, TagInteger, encodeInt(v))
}

// NewEnumerated returns a universal ENUMERATED.
func NewEnumerated(v int64) *Packet {
	return NewPrimitive(ClassUniversal, TagEnumerated, encodeInt(v))
}

// NewString returns a universal OCTET STRING.
func NewString(s string) *Packet {
	return NewPrimitive(ClassUniversal, TagOctetString, []byte(s))
}

// NewNull returns a universal NULL.
func NewNull() *Packet { return NewPrimitive(ClassUniversal, TagNull, nil) }

// Append adds children to a constructed packet and returns it.
func (p *Packet) Append(children ...*Packet) *Packet {
	p.Children = append(p.Children, children...)
	return p
}

// Bool decodes a BOOLEAN packet.
func (p *Packet) Bool() (bool, error) {
	if len(p.Value) != 1 {
		return false, fmt.Errorf("ber: boolean with %d content bytes", len(p.Value))
	}
	return p.Value[0] != 0, nil
}

// Int decodes an INTEGER or ENUMERATED packet.
func (p *Packet) Int() (int64, error) {
	if len(p.Value) == 0 || len(p.Value) > 8 {
		return 0, fmt.Errorf("ber: integer with %d content bytes", len(p.Value))
	}
	v := int64(0)
	if p.Value[0]&0x80 != 0 {
		v = -1 // sign-extend
	}
	for _, b := range p.Value {
		v = v<<8 | int64(b)
	}
	return v, nil
}

// Str returns the contents as a string.
func (p *Packet) Str() string { return string(p.Value) }

// Child returns the i-th child, or nil when out of range, so callers
// can chain lookups and check once.
func (p *Packet) Child(i int) *Packet {
	if i < 0 || i >= len(p.Children) {
		return nil
	}
	return p.Children[i]
}

func encodeInt(v int64) []byte {
	// Minimal two's-complement encoding.
	n := 1
	for m := v >> 8; m != 0 && m != -1; m >>= 8 {
		n++
	}
	// Need an extra byte if the sign bit doesn't match.
	if v > 0 && (v>>(8*uint(n-1)))&0x80 != 0 {
		n++
	}
	if v < 0 && (v>>(8*uint(n-1)))&0x80 == 0 {
		n++
	}
	out := make([]byte, n)
	for i := n - 1; i >= 0; i-- {
		out[i] = byte(v)
		v >>= 8
	}
	return out
}

func encodeLength(n int) []byte {
	if n < 0x80 {
		return []byte{byte(n)}
	}
	var tmp [8]byte
	i := len(tmp)
	for n > 0 {
		i--
		tmp[i] = byte(n)
		n >>= 8
	}
	out := make([]byte, 0, 1+len(tmp)-i)
	out = append(out, byte(0x80|(len(tmp)-i)))
	return append(out, tmp[i:]...)
}

func encodeTag(class Class, constructed bool, tag int) []byte {
	b := byte(class)
	if constructed {
		b |= 0x20
	}
	if tag < 0x1F {
		return []byte{b | byte(tag)}
	}
	// High-tag-number form (not used by LDAP but supported for
	// completeness).
	out := []byte{b | 0x1F}
	var tmp [8]byte
	i := len(tmp)
	for tag > 0 {
		i--
		tmp[i] = byte(tag & 0x7F)
		tag >>= 7
	}
	for j := i; j < len(tmp); j++ {
		b := tmp[j]
		if j != len(tmp)-1 {
			b |= 0x80
		}
		out = append(out, b)
	}
	return out
}

// Encode serializes the packet tree.
func (p *Packet) Encode() []byte {
	var content []byte
	if p.Constructed {
		for _, c := range p.Children {
			content = append(content, c.Encode()...)
		}
	} else {
		content = p.Value
	}
	out := encodeTag(p.Class, p.Constructed, p.Tag)
	out = append(out, encodeLength(len(content))...)
	return append(out, content...)
}

// Parse decodes one element from buf, returning the element and the
// remaining bytes.
func Parse(buf []byte) (*Packet, []byte, error) {
	p, n, err := parseElem(buf)
	if err != nil {
		return nil, buf, err
	}
	return p, buf[n:], nil
}

func parseElem(buf []byte) (*Packet, int, error) {
	if len(buf) < 2 {
		return nil, 0, ErrTruncated
	}
	b := buf[0]
	class := Class(b & 0xC0)
	constructed := b&0x20 != 0
	tag := int(b & 0x1F)
	idx := 1
	if tag == 0x1F {
		tag = 0
		for {
			if idx >= len(buf) {
				return nil, 0, ErrTruncated
			}
			c := buf[idx]
			idx++
			tag = tag<<7 | int(c&0x7F)
			if c&0x80 == 0 {
				break
			}
			if tag > 1<<24 {
				return nil, 0, errors.New("ber: tag too large")
			}
		}
	}
	if idx >= len(buf) {
		return nil, 0, ErrTruncated
	}
	length := int(buf[idx])
	idx++
	if length&0x80 != 0 {
		nbytes := length & 0x7F
		if nbytes == 0 {
			return nil, 0, errors.New("ber: indefinite length unsupported")
		}
		if nbytes > 4 {
			return nil, 0, errors.New("ber: length too large")
		}
		if idx+nbytes > len(buf) {
			return nil, 0, ErrTruncated
		}
		length = 0
		for i := 0; i < nbytes; i++ {
			length = length<<8 | int(buf[idx])
			idx++
		}
	}
	if length > MaxElementSize {
		return nil, 0, errors.New("ber: element exceeds size limit")
	}
	if idx+length > len(buf) {
		return nil, 0, ErrTruncated
	}
	content := buf[idx : idx+length]
	p := &Packet{Class: class, Constructed: constructed, Tag: tag}
	if constructed {
		rest := content
		for len(rest) > 0 {
			child, n, err := parseElem(rest)
			if err != nil {
				return nil, 0, err
			}
			p.Children = append(p.Children, child)
			rest = rest[n:]
		}
	} else {
		p.Value = append([]byte(nil), content...)
	}
	return p, idx + length, nil
}

// ReadElement reads exactly one BER element from r, using the length
// header to frame it (the standard LDAP framing technique).
func ReadElement(r io.Reader) ([]byte, error) {
	hdr := make([]byte, 2)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, err
	}
	buf := append([]byte(nil), hdr...)
	// Skip high-tag-number bytes.
	if hdr[0]&0x1F == 0x1F {
		one := make([]byte, 1)
		// hdr[1] was the first tag byte; keep reading until the
		// continuation bit clears, then read the length byte.
		b := hdr[1]
		for b&0x80 != 0 {
			if _, err := io.ReadFull(r, one); err != nil {
				return nil, err
			}
			b = one[0]
			buf = append(buf, b)
		}
		if _, err := io.ReadFull(r, one); err != nil {
			return nil, err
		}
		buf = append(buf, one[0])
	}
	lengthByte := buf[len(buf)-1]
	length := int(lengthByte)
	if lengthByte&0x80 != 0 {
		nbytes := int(lengthByte & 0x7F)
		if nbytes == 0 || nbytes > 4 {
			return nil, errors.New("ber: unsupported length form")
		}
		lb := make([]byte, nbytes)
		if _, err := io.ReadFull(r, lb); err != nil {
			return nil, err
		}
		buf = append(buf, lb...)
		length = 0
		for _, b := range lb {
			length = length<<8 | int(b)
		}
	}
	if length > MaxElementSize {
		return nil, errors.New("ber: element exceeds size limit")
	}
	body := make([]byte, length)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	return append(buf, body...), nil
}
