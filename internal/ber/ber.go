// Package ber implements the subset of ASN.1 Basic Encoding Rules
// needed by the UDR's LDAP northbound interface (§1: the UDR "is
// mandated to support an LDAP-based interface").
//
// A BER element is modelled as a Packet tree: constructed packets hold
// children, primitive packets hold raw bytes. Only definite-length
// encoding is produced; both short- and long-form lengths are parsed.
package ber

import (
	"errors"
	"fmt"
	"io"
)

// Class is the BER tag class.
type Class byte

// Tag classes.
const (
	ClassUniversal   Class = 0x00
	ClassApplication Class = 0x40
	ClassContext     Class = 0x80
	ClassPrivate     Class = 0xC0
)

// Universal tags used by LDAP.
const (
	TagBoolean     = 0x01
	TagInteger     = 0x02
	TagOctetString = 0x04
	TagNull        = 0x05
	TagEnumerated  = 0x0A
	TagSequence    = 0x10
	TagSet         = 0x11
)

// ErrTruncated is returned when input ends mid-element.
var ErrTruncated = errors.New("ber: truncated element")

// MaxElementSize bounds a single element to guard servers against
// hostile length headers.
const MaxElementSize = 16 << 20

// Packet is one BER element.
type Packet struct {
	Class       Class
	Constructed bool
	Tag         int
	Value       []byte    // primitive contents
	Children    []*Packet // constructed contents
	// encLen carries a node's content length from the sizing walk to
	// the encode walk of one Encode/AppendTo call; it is consumed
	// (zeroed) by the encode walk.
	encLen int
}

// NewSequence returns an empty universal SEQUENCE.
func NewSequence() *Packet {
	return &Packet{Class: ClassUniversal, Constructed: true, Tag: TagSequence}
}

// NewConstructed returns an empty constructed packet with the given
// class and tag (used for LDAP APPLICATION and context tags).
func NewConstructed(class Class, tag int) *Packet {
	return &Packet{Class: class, Constructed: true, Tag: tag}
}

// NewPrimitive returns a primitive packet with raw contents.
func NewPrimitive(class Class, tag int, value []byte) *Packet {
	return &Packet{Class: class, Tag: tag, Value: value}
}

// NewBoolean returns a universal BOOLEAN.
func NewBoolean(v bool) *Packet {
	b := byte(0x00)
	if v {
		b = 0xFF
	}
	return NewPrimitive(ClassUniversal, TagBoolean, []byte{b})
}

// NewInteger returns a universal INTEGER.
func NewInteger(v int64) *Packet {
	return NewPrimitive(ClassUniversal, TagInteger, encodeInt(v))
}

// NewEnumerated returns a universal ENUMERATED.
func NewEnumerated(v int64) *Packet {
	return NewPrimitive(ClassUniversal, TagEnumerated, encodeInt(v))
}

// NewString returns a universal OCTET STRING.
func NewString(s string) *Packet {
	return NewPrimitive(ClassUniversal, TagOctetString, []byte(s))
}

// NewNull returns a universal NULL.
func NewNull() *Packet { return NewPrimitive(ClassUniversal, TagNull, nil) }

// Append adds children to a constructed packet and returns it.
func (p *Packet) Append(children ...*Packet) *Packet {
	p.Children = append(p.Children, children...)
	return p
}

// Bool decodes a BOOLEAN packet.
func (p *Packet) Bool() (bool, error) {
	if len(p.Value) != 1 {
		return false, fmt.Errorf("ber: boolean with %d content bytes", len(p.Value))
	}
	return p.Value[0] != 0, nil
}

// Int decodes an INTEGER or ENUMERATED packet.
func (p *Packet) Int() (int64, error) {
	if len(p.Value) == 0 || len(p.Value) > 8 {
		return 0, fmt.Errorf("ber: integer with %d content bytes", len(p.Value))
	}
	v := int64(0)
	if p.Value[0]&0x80 != 0 {
		v = -1 // sign-extend
	}
	for _, b := range p.Value {
		v = v<<8 | int64(b)
	}
	return v, nil
}

// Str returns the contents as a string.
func (p *Packet) Str() string { return string(p.Value) }

// Child returns the i-th child, or nil when out of range, so callers
// can chain lookups and check once.
func (p *Packet) Child(i int) *Packet {
	if i < 0 || i >= len(p.Children) {
		return nil
	}
	return p.Children[i]
}

func encodeInt(v int64) []byte {
	// Minimal two's-complement encoding.
	n := 1
	for m := v >> 8; m != 0 && m != -1; m >>= 8 {
		n++
	}
	// Need an extra byte if the sign bit doesn't match.
	if v > 0 && (v>>(8*uint(n-1)))&0x80 != 0 {
		n++
	}
	if v < 0 && (v>>(8*uint(n-1)))&0x80 == 0 {
		n++
	}
	out := make([]byte, n)
	for i := n - 1; i >= 0; i-- {
		out[i] = byte(v)
		v >>= 8
	}
	return out
}

// appendLength appends the definite-length encoding of n.
func appendLength(b []byte, n int) []byte {
	if n < 0x80 {
		return append(b, byte(n))
	}
	var tmp [8]byte
	i := len(tmp)
	for n > 0 {
		i--
		tmp[i] = byte(n)
		n >>= 8
	}
	b = append(b, byte(0x80|(len(tmp)-i)))
	return append(b, tmp[i:]...)
}

// lengthLen returns the size of appendLength's output.
func lengthLen(n int) int {
	if n < 0x80 {
		return 1
	}
	sz := 1
	for n > 0 {
		sz++
		n >>= 8
	}
	return sz
}

// appendTag appends the tag octets.
func appendTag(b []byte, class Class, constructed bool, tag int) []byte {
	id := byte(class)
	if constructed {
		id |= 0x20
	}
	if tag < 0x1F {
		return append(b, id|byte(tag))
	}
	// High-tag-number form (not used by LDAP but supported for
	// completeness).
	b = append(b, id|0x1F)
	var tmp [8]byte
	i := len(tmp)
	for tag > 0 {
		i--
		tmp[i] = byte(tag & 0x7F)
		tag >>= 7
	}
	for j := i; j < len(tmp); j++ {
		c := tmp[j]
		if j != len(tmp)-1 {
			c |= 0x80
		}
		b = append(b, c)
	}
	return b
}

// tagLen returns the size of appendTag's output.
func tagLen(tag int) int {
	if tag < 0x1F {
		return 1
	}
	sz := 1
	for tag > 0 {
		sz++
		tag >>= 7
	}
	return sz
}

// sizePass computes the packet's full encoded size in one bottom-up
// walk, caching each node's content length in encLen for the encode
// pass that immediately follows (appendSized consumes and clears the
// cache, so a rebuilt tree can never see a stale size).
func (p *Packet) sizePass() int {
	c := 0
	if p.Constructed {
		for _, ch := range p.Children {
			c += ch.sizePass()
		}
	} else {
		c = len(p.Value)
	}
	p.encLen = c
	return tagLen(p.Tag) + lengthLen(c) + c
}

// appendSized appends the packet's encoding using the content lengths
// cached by sizePass.
func (p *Packet) appendSized(dst []byte) []byte {
	c := p.encLen
	p.encLen = 0
	dst = appendTag(dst, p.Class, p.Constructed, p.Tag)
	dst = appendLength(dst, c)
	if p.Constructed {
		for _, ch := range p.Children {
			dst = ch.appendSized(dst)
		}
		return dst
	}
	return append(dst, p.Value...)
}

// AppendTo appends the packet's encoding to dst and returns the
// extended slice: one sizing walk, one encode walk. Callers that
// reuse dst across messages (the LDAP server's per-connection write
// buffer) encode with zero per-message buffer allocations.
func (p *Packet) AppendTo(dst []byte) []byte {
	p.sizePass()
	return p.appendSized(dst)
}

// Encode serializes the packet tree into one exactly-sized buffer.
func (p *Packet) Encode() []byte {
	total := p.sizePass()
	return p.appendSized(make([]byte, 0, total))
}

// Parse decodes one element from buf, returning the element and the
// remaining bytes.
func Parse(buf []byte) (*Packet, []byte, error) {
	p, n, err := parseElem(buf)
	if err != nil {
		return nil, buf, err
	}
	return p, buf[n:], nil
}

func parseElem(buf []byte) (*Packet, int, error) {
	if len(buf) < 2 {
		return nil, 0, ErrTruncated
	}
	b := buf[0]
	class := Class(b & 0xC0)
	constructed := b&0x20 != 0
	tag := int(b & 0x1F)
	idx := 1
	if tag == 0x1F {
		tag = 0
		for {
			if idx >= len(buf) {
				return nil, 0, ErrTruncated
			}
			c := buf[idx]
			idx++
			tag = tag<<7 | int(c&0x7F)
			if c&0x80 == 0 {
				break
			}
			if tag > 1<<24 {
				return nil, 0, errors.New("ber: tag too large")
			}
		}
	}
	if idx >= len(buf) {
		return nil, 0, ErrTruncated
	}
	length := int(buf[idx])
	idx++
	if length&0x80 != 0 {
		nbytes := length & 0x7F
		if nbytes == 0 {
			return nil, 0, errors.New("ber: indefinite length unsupported")
		}
		if nbytes > 4 {
			return nil, 0, errors.New("ber: length too large")
		}
		if idx+nbytes > len(buf) {
			return nil, 0, ErrTruncated
		}
		length = 0
		for i := 0; i < nbytes; i++ {
			length = length<<8 | int(buf[idx])
			idx++
		}
	}
	if length > MaxElementSize {
		return nil, 0, errors.New("ber: element exceeds size limit")
	}
	if idx+length > len(buf) {
		return nil, 0, ErrTruncated
	}
	content := buf[idx : idx+length]
	p := &Packet{Class: class, Constructed: constructed, Tag: tag}
	if constructed {
		rest := content
		for len(rest) > 0 {
			child, n, err := parseElem(rest)
			if err != nil {
				return nil, 0, err
			}
			p.Children = append(p.Children, child)
			rest = rest[n:]
		}
	} else {
		p.Value = append([]byte(nil), content...)
	}
	return p, idx + length, nil
}

// ReadElement reads exactly one BER element from r, using the length
// header to frame it (the standard LDAP framing technique). The
// header is assembled in a stack array and the element lands in one
// exactly-sized buffer: a single allocation per message, versus the
// seed's three (header, long-form length, body). Wrap r in a
// bufio.Reader to also collapse the header byte reads into one
// kernel read per buffered chunk.
func ReadElement(r io.Reader) ([]byte, error) {
	// hdr holds tag octets + length octets. 16 bytes covers any tag
	// LDAP (or any sane peer) produces plus a 4-byte long-form
	// length; a longer header is rejected as hostile.
	var hdr [16]byte
	if _, err := io.ReadFull(r, hdr[:2]); err != nil {
		return nil, err
	}
	n := 2
	readByte := func() (byte, error) {
		if n >= len(hdr) {
			return 0, errors.New("ber: header too long")
		}
		if _, err := io.ReadFull(r, hdr[n:n+1]); err != nil {
			return 0, err
		}
		n++
		return hdr[n-1], nil
	}
	// Skip high-tag-number bytes: hdr[1] was the first tag byte; keep
	// reading until the continuation bit clears, then read the length
	// byte.
	if hdr[0]&0x1F == 0x1F {
		b := hdr[1]
		var err error
		for b&0x80 != 0 {
			if b, err = readByte(); err != nil {
				return nil, err
			}
		}
		if _, err = readByte(); err != nil {
			return nil, err
		}
	}
	lengthByte := hdr[n-1]
	length := int(lengthByte)
	if lengthByte&0x80 != 0 {
		nbytes := int(lengthByte & 0x7F)
		if nbytes == 0 || nbytes > 4 {
			return nil, errors.New("ber: unsupported length form")
		}
		if n+nbytes > len(hdr) {
			return nil, errors.New("ber: header too long")
		}
		if _, err := io.ReadFull(r, hdr[n:n+nbytes]); err != nil {
			return nil, err
		}
		length = 0
		for _, b := range hdr[n : n+nbytes] {
			length = length<<8 | int(b)
		}
		n += nbytes
	}
	if length > MaxElementSize {
		return nil, errors.New("ber: element exceeds size limit")
	}
	buf := make([]byte, n+length)
	copy(buf, hdr[:n])
	if _, err := io.ReadFull(r, buf[n:]); err != nil {
		return nil, err
	}
	return buf, nil
}
