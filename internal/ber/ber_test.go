package ber

import (
	"bytes"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, p *Packet) *Packet {
	t.Helper()
	buf := p.Encode()
	got, rest, err := Parse(buf)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(rest) != 0 {
		t.Fatalf("Parse left %d bytes", len(rest))
	}
	return got
}

func TestIntegerRoundTrip(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 127, 128, -128, -129, 255, 256,
		1<<31 - 1, -(1 << 31), 1<<62 - 1, -(1 << 62)} {
		got := roundTrip(t, NewInteger(v))
		n, err := got.Int()
		if err != nil {
			t.Fatalf("Int(%d): %v", v, err)
		}
		if n != v {
			t.Fatalf("round trip %d -> %d", v, n)
		}
	}
}

func TestIntegerMinimalEncoding(t *testing.T) {
	// 127 fits in one byte, 128 needs two (sign bit).
	if got := len(NewInteger(127).Value); got != 1 {
		t.Fatalf("127 encoded in %d bytes", got)
	}
	if got := len(NewInteger(128).Value); got != 2 {
		t.Fatalf("128 encoded in %d bytes", got)
	}
	if got := len(NewInteger(-128).Value); got != 1 {
		t.Fatalf("-128 encoded in %d bytes", got)
	}
}

func TestBooleanRoundTrip(t *testing.T) {
	for _, v := range []bool{true, false} {
		got := roundTrip(t, NewBoolean(v))
		b, err := got.Bool()
		if err != nil {
			t.Fatal(err)
		}
		if b != v {
			t.Fatalf("round trip %v -> %v", v, b)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	for _, s := range []string{"", "hello", "uid=sub-1,ou=subscribers,dc=udr",
		string(make([]byte, 200))} {
		got := roundTrip(t, NewString(s))
		if got.Str() != s {
			t.Fatalf("round trip %q -> %q", s, got.Str())
		}
	}
}

func TestLongFormLength(t *testing.T) {
	// > 127 bytes of content forces long-form length.
	s := string(bytes.Repeat([]byte("x"), 300))
	got := roundTrip(t, NewString(s))
	if got.Str() != s {
		t.Fatal("long-form round trip failed")
	}
}

func TestSequenceNesting(t *testing.T) {
	p := NewSequence().Append(
		NewInteger(7),
		NewSequence().Append(NewString("inner"), NewBoolean(true)),
		NewEnumerated(3),
	)
	got := roundTrip(t, p)
	if len(got.Children) != 3 {
		t.Fatalf("children = %d", len(got.Children))
	}
	inner := got.Child(1)
	if len(inner.Children) != 2 || inner.Child(0).Str() != "inner" {
		t.Fatalf("inner = %+v", inner)
	}
	n, _ := got.Child(2).Int()
	if n != 3 {
		t.Fatalf("enumerated = %d", n)
	}
}

func TestApplicationAndContextClasses(t *testing.T) {
	p := NewConstructed(ClassApplication, 3).Append(
		NewPrimitive(ClassContext, 7, []byte("objectClass")),
	)
	got := roundTrip(t, p)
	if got.Class != ClassApplication || got.Tag != 3 {
		t.Fatalf("class/tag = %v/%d", got.Class, got.Tag)
	}
	c := got.Child(0)
	if c.Class != ClassContext || c.Tag != 7 || string(c.Value) != "objectClass" {
		t.Fatalf("context child = %+v", c)
	}
}

func TestChildOutOfRange(t *testing.T) {
	p := NewSequence()
	if p.Child(0) != nil || p.Child(-1) != nil {
		t.Fatal("Child out of range should be nil")
	}
}

func TestHighTagNumber(t *testing.T) {
	p := NewPrimitive(ClassContext, 100, []byte("x"))
	got := roundTrip(t, p)
	if got.Tag != 100 {
		t.Fatalf("tag = %d", got.Tag)
	}
}

func TestParseTruncated(t *testing.T) {
	full := NewSequence().Append(NewString("hello")).Encode()
	for i := 1; i < len(full); i++ {
		if _, _, err := Parse(full[:i]); err == nil {
			t.Fatalf("Parse of %d/%d bytes should fail", i, len(full))
		}
	}
}

func TestParseEmpty(t *testing.T) {
	if _, _, err := Parse(nil); err == nil {
		t.Fatal("Parse(nil) should fail")
	}
}

func TestBadInt(t *testing.T) {
	p := NewPrimitive(ClassUniversal, TagInteger, nil)
	if _, err := p.Int(); err == nil {
		t.Fatal("zero-length integer should fail")
	}
	p = NewPrimitive(ClassUniversal, TagInteger, make([]byte, 9))
	if _, err := p.Int(); err == nil {
		t.Fatal("9-byte integer should fail")
	}
}

func TestBadBool(t *testing.T) {
	p := NewPrimitive(ClassUniversal, TagBoolean, []byte{1, 2})
	if _, err := p.Bool(); err == nil {
		t.Fatal("2-byte boolean should fail")
	}
}

func TestReadElement(t *testing.T) {
	p := NewSequence().Append(NewInteger(1), NewString("abc"))
	buf := p.Encode()
	// Two elements back to back; ReadElement must frame exactly one.
	double := append(append([]byte(nil), buf...), buf...)
	r := bytes.NewReader(double)
	one, err := ReadElement(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(one, buf) {
		t.Fatal("ReadElement returned wrong framing")
	}
	two, err := ReadElement(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(two, buf) {
		t.Fatal("second ReadElement returned wrong framing")
	}
}

func TestReadElementLongForm(t *testing.T) {
	s := string(bytes.Repeat([]byte("y"), 500))
	buf := NewString(s).Encode()
	got, err := ReadElement(bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, buf) {
		t.Fatal("long-form ReadElement mismatch")
	}
}

func TestReadElementTruncated(t *testing.T) {
	buf := NewString("hello world").Encode()
	if _, err := ReadElement(bytes.NewReader(buf[:3])); err == nil {
		t.Fatal("truncated ReadElement should fail")
	}
}

func TestIntRoundTripProperty(t *testing.T) {
	f := func(v int64) bool {
		p, rest, err := Parse(NewInteger(v).Encode())
		if err != nil || len(rest) != 0 {
			return false
		}
		n, err := p.Int()
		return err == nil && n == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStringRoundTripProperty(t *testing.T) {
	f := func(s string) bool {
		p, rest, err := Parse(NewString(s).Encode())
		return err == nil && len(rest) == 0 && p.Str() == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParseGarbageNeverPanicsProperty(t *testing.T) {
	f := func(b []byte) bool {
		// Must not panic; errors are fine.
		Parse(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
