package ber

import (
	"bytes"
	"testing"
	"testing/iotest"
)

// fuzzSeeds is the shared seed corpus: well-formed LDAP-shaped
// messages, every length form, high tag numbers, and the hostile
// shapes the parser must reject without panicking.
func fuzzSeeds() [][]byte {
	bind := NewConstructed(ClassApplication, 0).Append(
		NewInteger(3), NewString("cn=admin"),
		NewPrimitive(ClassContext, 0, []byte("secret")))
	msg := NewSequence().Append(NewInteger(1), bind)
	long := NewString(string(bytes.Repeat([]byte("x"), 300))) // long-form length
	hi := NewPrimitive(ClassPrivate, 0x7FFF, []byte("hi"))    // high-tag-number form
	deep := NewSequence()
	cur := deep
	for i := 0; i < 30; i++ {
		next := NewSequence()
		cur.Append(next)
		cur = next
	}
	cur.Append(NewBoolean(true))
	return [][]byte{
		msg.Encode(),
		long.Encode(),
		hi.Encode(),
		deep.Encode(),
		NewNull().Encode(),
		NewSequence().Encode(),
		{},                             // empty
		{0x30},                         // tag only
		{0x30, 0x84, 0xFF, 0xFF, 0xFF}, // truncated long-form length
		{0x30, 0x84, 0x7F, 0xFF, 0xFF, 0xFF, 0xFF},                         // hostile length header
		{0x30, 0x80, 0x00, 0x00},                                           // indefinite length (unsupported)
		{0x1F, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x00, 0x01, 0x00}, // runaway tag
		{0x04, 0x03, 0x61},                                                 // length longer than contents
	}
}

// FuzzPacketDecode throws arbitrary bytes at the tree parser. A parse
// must either error or yield a packet that re-encodes and re-parses to
// the same structure (the server round-trips every request it answers).
func FuzzPacketDecode(f *testing.F) {
	for _, seed := range fuzzSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		p, rest, err := Parse(data)
		if err != nil {
			return
		}
		consumed := len(data) - len(rest)
		if consumed <= 0 || consumed > len(data) {
			t.Fatalf("consumed %d of %d bytes", consumed, len(data))
		}
		enc := p.Encode()
		p2, rest2, err := Parse(enc)
		if err != nil {
			t.Fatalf("re-parse of re-encoding failed: %v", err)
		}
		if len(rest2) != 0 {
			t.Fatalf("re-encoding left %d trailing bytes", len(rest2))
		}
		if !packetEqual(p, p2) {
			t.Fatalf("round trip changed packet:\n in: %#v\nout: %#v", p, p2)
		}
		// AppendTo must agree with Encode byte for byte.
		if got := p.AppendTo(nil); !bytes.Equal(got, enc) {
			t.Fatalf("AppendTo diverges from Encode")
		}
	})
}

// FuzzReadElement feeds arbitrary byte streams to the length-framed
// reader. It must never panic, never allocate past MaxElementSize, and
// whatever frame it returns must start with the bytes it consumed and
// be parseable-or-rejected exactly like a full in-memory parse.
func FuzzReadElement(f *testing.F) {
	for _, seed := range fuzzSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		frame, err := ReadElement(r)
		if err != nil {
			return
		}
		if len(frame) > len(data) {
			t.Fatalf("frame longer (%d) than input (%d)", len(frame), len(data))
		}
		if !bytes.Equal(frame, data[:len(frame)]) {
			t.Fatalf("frame is not a prefix of the input")
		}
		// The frame claims to hold exactly one element: parsing it must
		// consume it fully or reject it — never read past it.
		if p, rest, err := Parse(frame); err == nil {
			if len(rest) != 0 {
				t.Fatalf("ReadElement framed %d bytes but Parse left %d", len(frame), len(rest))
			}
			_ = p
		}
	})
}

// FuzzReadElementShortReads re-frames every seed through a one-byte-
// at-a-time reader: framing must not depend on read chunking.
func FuzzReadElementShortReads(f *testing.F) {
	for _, seed := range fuzzSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		whole, errWhole := ReadElement(bytes.NewReader(data))
		chunked, errChunked := ReadElement(iotest.OneByteReader(bytes.NewReader(data)))
		if (errWhole == nil) != (errChunked == nil) {
			t.Fatalf("chunking changed outcome: %v vs %v", errWhole, errChunked)
		}
		if errWhole == nil && !bytes.Equal(whole, chunked) {
			t.Fatalf("chunking changed frame")
		}
	})
}

func packetEqual(a, b *Packet) bool {
	if a.Class != b.Class || a.Constructed != b.Constructed || a.Tag != b.Tag {
		return false
	}
	if !bytes.Equal(a.Value, b.Value) {
		return false
	}
	if len(a.Children) != len(b.Children) {
		return false
	}
	for i := range a.Children {
		if !packetEqual(a.Children[i], b.Children[i]) {
			return false
		}
	}
	return true
}
