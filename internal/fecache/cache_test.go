package fecache

import (
	"fmt"
	"testing"

	"repro/internal/store"
	"repro/internal/subscriber"
)

const (
	part   = "p0"
	master = "se-master"
	slave  = "se-slave"
)

func ent(imsi string) store.Entry {
	return store.Entry{subscriber.AttrIMSI: {imsi}}
}

func meta(csn uint64) store.Meta {
	return store.Meta{CSN: csn, WallTS: int64(csn)}
}

// boot returns a cache with partition part bootstrapped at epoch 1
// (initial assignment: every replica presumed warm).
func boot(capacity int) *Cache {
	c := New("site-a", capacity)
	c.OnEpochBump(part, 1)
	return c
}

func TestFillAndLookup(t *testing.T) {
	c := boot(64)
	c.Fill(part, 1, master, true, "k1", ent("imsi-1"), meta(3), true)

	v, st := c.Lookup("k1")
	if st != Hit || !v.Found || v.Meta.CSN != 3 || v.Part != part {
		t.Fatalf("lookup = %+v state=%v, want hit at csn 3", v, st)
	}
	if _, st := c.Lookup("absent"); st != Miss {
		t.Fatalf("lookup(absent) = %v, want Miss", st)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 entry", s)
	}
}

func TestFillFromColdSlaveIgnored(t *testing.T) {
	c := boot(64)
	// Bump past bootstrap so warmth must be proven per element.
	c.OnEpochBump(part, 2)
	c.Fill(part, 2, slave, false, "k1", ent("imsi-1"), meta(3), true)
	if c.Len() != 0 {
		t.Fatal("fill from a never-observed slave must not install")
	}
	// One applied record under the current epoch makes the slave warm.
	c.Observe(part, slave, 2, &store.CommitRecord{CSN: 1})
	if !c.Warm(part, slave) {
		t.Fatal("slave should be warm after applying under epoch 2")
	}
	c.Fill(part, 2, slave, false, "k1", ent("imsi-1"), meta(3), true)
	if _, st := c.Lookup("k1"); st != Hit {
		t.Fatalf("warm-slave fill not served, state=%v", st)
	}
}

func TestNegativeCachingMasterOnly(t *testing.T) {
	c := boot(64)
	c.Fill(part, 1, slave, false, "gone", nil, meta(2), false)
	if c.Len() != 0 {
		t.Fatal("slave not-found may be lag; must not be cached")
	}
	c.Fill(part, 1, master, true, "gone", nil, meta(2), false)
	v, st := c.Lookup("gone")
	if st != Hit || v.Found {
		t.Fatalf("master not-found should cache a negative hit, got %+v/%v", v, st)
	}
}

func TestIdentityAliases(t *testing.T) {
	c := boot(64)
	c.Fill(part, 1, master, true, "k1", ent("imsi-old"), meta(1), true)
	if k, ok := c.ResolveIdentity(subscriber.AttrIMSI, "imsi-old"); !ok || k != "k1" {
		t.Fatalf("resolve = %q/%v, want k1", k, ok)
	}
	// A newer value replaces the identity set; the old alias must die.
	c.WriteThrough(part, 1, "k1", ent("imsi-new"), meta(2), false)
	if _, ok := c.ResolveIdentity(subscriber.AttrIMSI, "imsi-old"); ok {
		t.Fatal("stale alias survived a value replacement")
	}
	if k, ok := c.ResolveIdentity(subscriber.AttrIMSI, "imsi-new"); !ok || k != "k1" {
		t.Fatalf("resolve(new) = %q/%v, want k1", k, ok)
	}
}

func TestFloorRejectsStaleFill(t *testing.T) {
	c := boot(64)
	c.Fill(part, 1, master, true, "k1", ent("a"), meta(5), true)
	c.Lookup("k1") // serving csn 5 sets the floor
	if f := c.Floor("k1"); f != 5 {
		t.Fatalf("floor = %d, want 5", f)
	}
	// A read-through fill below the floor must not regress the value.
	c.Fill(part, 1, master, true, "k1", ent("stale"), meta(3), true)
	if v, _ := c.Lookup("k1"); v.Meta.CSN != 5 {
		t.Fatalf("stale fill regressed value to csn %d", v.Meta.CSN)
	}
}

func TestEpochBumpGuardsUntilWriteThrough(t *testing.T) {
	c := boot(64)
	c.Fill(part, 1, master, true, "k1", ent("a"), meta(7), true)
	c.OnEpochBump(part, 2)

	if _, st := c.Lookup("k1"); st != Guarded {
		t.Fatalf("post-bump lookup state = %v, want Guarded", st)
	}
	if st := c.Peek("k1"); st != Guarded {
		t.Fatalf("peek = %v, want Guarded", st)
	}
	if f := c.Floor("k1"); f != 0 {
		t.Fatalf("cross-epoch floor = %d, want 0 (not comparable)", f)
	}
	// A read-through fill under the new epoch must not lift the guard:
	// only a current-lineage commit proves freshness for this key.
	c.Fill(part, 2, master, true, "k1", ent("refill"), meta(2), true)
	if st := c.Peek("k1"); st != Guarded {
		t.Fatal("read-through fill lifted the epoch guard")
	}
	c.WriteThrough(part, 2, "k1", ent("b"), meta(2), false)
	v, st := c.Lookup("k1")
	if st != Hit || v.Meta.CSN != 2 {
		t.Fatalf("post-write-through = %+v/%v, want hit at csn 2", v, st)
	}
	s := c.Stats()
	if s.InvalidationsEpoch != 1 {
		t.Fatalf("epoch invalidations = %d, want 1", s.InvalidationsEpoch)
	}
	if s.LastInvalidatedPartition != part || s.LastInvalidationEpoch != 2 {
		t.Fatalf("last invalidation = %s@%d, want %s@2",
			s.LastInvalidatedPartition, s.LastInvalidationEpoch, part)
	}
}

func TestEpochBumpIsMonotonic(t *testing.T) {
	c := boot(64)
	c.Fill(part, 1, master, true, "k1", ent("a"), meta(1), true)
	c.OnEpochBump(part, 3)
	c.OnEpochBump(part, 2) // late, out-of-order: must not regress
	if _, st := c.Lookup("k1"); st != Guarded {
		t.Fatal("stale bump un-guarded the entry")
	}
	c.WriteThrough(part, 3, "k1", ent("b"), meta(1), false)
	if _, st := c.Lookup("k1"); st != Hit {
		t.Fatal("write-through under the surviving epoch should serve")
	}
}

func TestObserveRefreshesButNeverInserts(t *testing.T) {
	c := boot(64)
	c.Fill(part, 1, master, true, "k1", ent("a"), meta(1), true)
	c.Observe(part, master, 1, &store.CommitRecord{CSN: 4, Ops: []store.Op{
		{Kind: store.OpModify, Key: "k1", Entry: ent("a2")},
		{Kind: store.OpPut, Key: "k-new", Entry: ent("n")},
	}})
	v, st := c.Lookup("k1")
	if st != Hit || v.Meta.CSN != 4 || v.Entry[subscriber.AttrIMSI][0] != "a2" {
		t.Fatalf("observe did not refresh: %+v/%v", v, st)
	}
	if _, st := c.Lookup("k-new"); st != Miss {
		t.Fatal("observe must never insert new keys")
	}
	// An older replayed record must not roll the entry back.
	c.Observe(part, master, 1, &store.CommitRecord{CSN: 2, Ops: []store.Op{
		{Kind: store.OpModify, Key: "k1", Entry: ent("old")}}})
	if v, _ := c.Lookup("k1"); v.Meta.CSN != 4 {
		t.Fatalf("observe rolled back to csn %d", v.Meta.CSN)
	}
	if s := c.Stats(); s.InvalidationsCSN != 1 {
		t.Fatalf("csn invalidations = %d, want 1", s.InvalidationsCSN)
	}
}

func TestObserveDelete(t *testing.T) {
	c := boot(64)
	c.Fill(part, 1, master, true, "k1", ent("a"), meta(1), true)
	c.Observe(part, master, 1, &store.CommitRecord{CSN: 2, Ops: []store.Op{
		{Kind: store.OpDelete, Key: "k1"}}})
	v, st := c.Lookup("k1")
	if st != Hit || v.Found {
		t.Fatalf("observed delete should serve a negative hit, got %+v/%v", v, st)
	}
	if _, ok := c.ResolveIdentity(subscriber.AttrIMSI, "a"); ok {
		t.Fatal("delete left the identity alias behind")
	}
}

func TestEvictionBoundsResidency(t *testing.T) {
	c := boot(16) // per-shard LRU capacity of 1
	for i := 0; i < 64; i++ {
		k := fmt.Sprintf("k%02d", i)
		c.Fill(part, 1, master, true, k, ent("imsi-"+k), meta(uint64(i+1)), true)
	}
	if n := c.Len(); n > 16 {
		t.Fatalf("resident entries = %d, want ≤ capacity 16", n)
	}
	s := c.Stats()
	if s.Evictions == 0 {
		t.Fatal("expected evictions at capacity 16 with 64 inserts")
	}
	if int(s.Evictions)+c.Len() != 64 {
		t.Fatalf("evictions %d + resident %d != 64 inserts", s.Evictions, c.Len())
	}
}
