// Package fecache is the FE/PoA subscriber read cache: a bounded,
// sharded LRU over committed subscriber rows, keyed by primary key
// with secondary-identity aliases (IMSI/MSISDN/IMPI/IMPU), serving
// repeat reads at the access layer without an FE→SE round trip.
//
// Freshness is a contract, not best effort. Three signals keep the
// cache honest:
//
//   - CSN advance: every commit a co-located storage element installs
//     (local commit or replicated apply) flows through the store's
//     install observer into Observe, which refreshes resident entries
//     in commit order and marks the element "warm" for its partition.
//   - Placement-epoch bump: failover and migration cutover bump the
//     partition epoch (PR 5). CSNs are NOT comparable across epochs —
//     a promoted slave continues from its applied watermark — so a
//     bump flips every resident entry of the partition into a guarded
//     state: it is never served again, and cacheable reads for those
//     keys go master-direct until a new-lineage write-through replaces
//     the entry. Deleting instead of guarding would forget the per-key
//     read/write floor and let a stale slave or a stale re-fill
//     violate read-your-writes after a lossy failover.
//   - Local write-through: the PoA pushes its own committed
//     post-images (any session policy) into the cache, so a client's
//     next read observes its own write with zero round trips.
//
// The staleness bound is per-PoA: every entry carries a floor — the
// highest CSN this PoA has served or committed for the key — and
// read-through fills below the floor are rejected, which is what makes
// the PR-4 session checkers (read-your-writes, monotonic reads) hold
// through the cache for clients sticky to one PoA. Eviction drops the
// floor with the entry: capacity bounds the protected set, which is
// the explicit bounded-staleness trade documented in DESIGN.md.
package fecache

import (
	"container/list"
	"hash/maphash"
	"sync"
	"sync/atomic"

	"repro/internal/store"
	"repro/internal/subscriber"
)

// nShards is the lock-stripe count of the LRU; a power of two.
const nShards = 16

// DefaultCapacity bounds the cache when the config leaves it zero.
const DefaultCapacity = 4096

// LookupState classifies a cache probe.
type LookupState int

const (
	// Miss: no resident entry; read through and Fill.
	Miss LookupState = iota
	// Hit: the entry is current-epoch and serveable.
	Hit
	// Guarded: an entry exists but its placement epoch is stale. It
	// must not be served, and the key must read master-direct (whose
	// response is neither served from nor filled into the cache)
	// until a new-lineage write-through replaces it — the cross-epoch
	// read-your-writes guard.
	Guarded
)

// String names the probe outcome (span attributes, logs).
func (s LookupState) String() string {
	switch s {
	case Miss:
		return "miss"
	case Hit:
		return "hit"
	case Guarded:
		return "guarded"
	}
	return "unknown"
}

// Value is a served cache hit.
type Value struct {
	Part  string
	Entry store.Entry
	Meta  store.Meta
	Found bool
}

// record is one resident entry. Immutable post-images are shared with
// the store; the record never mutates them.
type record struct {
	key     string
	part    string
	ps      *partState
	epoch   uint64
	entry   store.Entry
	meta    store.Meta
	found   bool
	floor   uint64
	aliases []string
}

// partState tracks per-partition freshness: the current placement
// epoch, which co-located elements are provably applying the current
// lineage ("warm"), and which keys this cache holds for the partition.
type partState struct {
	epoch atomic.Uint64

	mu sync.Mutex
	// warmAll short-circuits warmth at bootstrap (epoch 1): freshly
	// assigned replicas are stream-attached from CSN 0, so every
	// listed replica is a safe fill source until the first bump.
	warmAll bool
	warm    map[string]struct{}
	keys    map[string]struct{}
}

func newPartState(epoch uint64, warmAll bool) *partState {
	ps := &partState{warmAll: warmAll,
		warm: make(map[string]struct{}), keys: make(map[string]struct{})}
	ps.epoch.Store(epoch)
	return ps
}

type cacheShard struct {
	mu  sync.Mutex
	lru *list.List
	idx map[string]*list.Element
	cap int
}

// Cache is one site's FE/PoA subscriber read cache. Safe for
// concurrent use. Lock hierarchy: shard.mu → partsMu → partState.mu;
// no path acquires them in another order.
type Cache struct {
	site     string
	capacity int
	seed     maphash.Seed
	shards   [nShards]cacheShard

	// aliases maps "attr\x00value" → primary key for the secondary
	// identities of resident positive entries.
	aliases sync.Map

	partsMu sync.RWMutex
	parts   map[string]*partState

	hits         atomic.Uint64
	misses       atomic.Uint64
	evictions    atomic.Uint64
	invEpoch     atomic.Uint64
	invCSN       atomic.Uint64
	staleRejects atomic.Uint64

	lastInvMu    sync.Mutex
	lastInvPart  string
	lastInvEpoch uint64
}

// Stats is a point-in-time counter snapshot for metrics and /status.
type Stats struct {
	Site               string
	Entries            int
	Capacity           int
	Hits               uint64
	Misses             uint64
	Evictions          uint64
	InvalidationsEpoch uint64
	InvalidationsCSN   uint64
	StaleRejects       uint64
	// LastInvalidatedPartition/Epoch name the most recent epoch-bump
	// invalidation, so an operator can see a cold cache after a
	// migration or failover.
	LastInvalidatedPartition string
	LastInvalidationEpoch    uint64
}

// New returns an empty cache for one site's PoA. capacity ≤ 0 selects
// DefaultCapacity.
func New(site string, capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	c := &Cache{site: site, capacity: capacity, seed: maphash.MakeSeed(),
		parts: make(map[string]*partState)}
	per := (capacity + nShards - 1) / nShards
	if per < 1 {
		per = 1
	}
	for i := range c.shards {
		c.shards[i] = cacheShard{lru: list.New(),
			idx: make(map[string]*list.Element), cap: per}
	}
	return c
}

// Site returns the owning PoA's site.
func (c *Cache) Site() string { return c.site }

// Capacity returns the configured entry bound.
func (c *Cache) Capacity() int { return c.capacity }

func (c *Cache) shard(key string) *cacheShard {
	return &c.shards[maphash.String(c.seed, key)&(nShards-1)]
}

func (c *Cache) part(part string) *partState {
	c.partsMu.RLock()
	ps := c.parts[part]
	c.partsMu.RUnlock()
	return ps
}

// Lookup probes the cache by primary key, counting the hit or miss.
// A Hit advances the key's floor to the served CSN (monotonic reads:
// later fills below what was just served will be rejected).
func (c *Cache) Lookup(key string) (Value, LookupState) {
	sh := c.shard(key)
	sh.mu.Lock()
	el := sh.idx[key]
	if el == nil {
		sh.mu.Unlock()
		c.misses.Add(1)
		return Value{}, Miss
	}
	rec := el.Value.(*record)
	if rec.epoch != rec.ps.epoch.Load() {
		sh.mu.Unlock()
		c.misses.Add(1)
		return Value{}, Guarded
	}
	sh.lru.MoveToFront(el)
	if rec.meta.CSN > rec.floor {
		rec.floor = rec.meta.CSN
	}
	v := Value{Part: rec.part, Entry: rec.entry, Meta: rec.meta, Found: rec.found}
	sh.mu.Unlock()
	c.hits.Add(1)
	return v, Hit
}

// Peek reports the key's state without touching counters, LRU order
// or floors. The PoA uses it to detect the guarded state after a
// session-side probe already accounted the miss.
func (c *Cache) Peek(key string) LookupState {
	sh := c.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	el := sh.idx[key]
	if el == nil {
		return Miss
	}
	rec := el.Value.(*record)
	if rec.epoch != rec.ps.epoch.Load() {
		return Guarded
	}
	return Hit
}

// ResolveIdentity maps a secondary identity (attribute name + value)
// to the primary key of a resident entry.
func (c *Cache) ResolveIdentity(attr, value string) (string, bool) {
	v, ok := c.aliases.Load(attr + "\x00" + value)
	if !ok {
		return "", false
	}
	return v.(string), true
}

// Floor returns the key's current-epoch staleness floor: the minimum
// CSN a read-through fill or slave response must carry to be
// acceptable at this PoA. 0 means unconstrained.
func (c *Cache) Floor(key string) uint64 {
	sh := c.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el := sh.idx[key]; el != nil {
		rec := el.Value.(*record)
		if rec.epoch == rec.ps.epoch.Load() {
			return rec.floor
		}
	}
	return 0
}

// Fill installs a read-through result served by element under the
// given placement epoch. Non-master sources must be warm (observed
// applying the current lineage) — a demoted master stuck on a
// divergent tail never becomes warm, so its rows cannot poison the
// cache after a failover. Negative results are cached only from the
// master (a slave's not-found may just be replication lag).
func (c *Cache) Fill(part string, epoch uint64, element string, fromMaster bool,
	key string, e store.Entry, m store.Meta, found bool) {
	ps := c.part(part)
	if ps == nil || (!found && !fromMaster) {
		return
	}
	ps.mu.Lock()
	if ps.epoch.Load() != epoch ||
		(!fromMaster && !ps.warmAll && !member(ps.warm, element)) {
		ps.mu.Unlock()
		return
	}
	ps.keys[key] = struct{}{}
	ps.mu.Unlock()
	c.install(ps, part, epoch, key, e, m, found, false)
}

// WriteThrough installs this PoA's own committed post-image. It is
// the only path allowed to replace a guarded (stale-epoch) entry: a
// commit under the current lineage supersedes any floor obligation
// the old lineage left behind, because its CSN is a valid floor in
// the new lineage and the written value is by construction at least
// as new as anything any local client has seen.
func (c *Cache) WriteThrough(part string, epoch uint64, key string,
	e store.Entry, m store.Meta, tombstone bool) {
	ps := c.part(part)
	if ps == nil || m.CSN == 0 {
		return
	}
	ps.mu.Lock()
	if ps.epoch.Load() != epoch {
		ps.mu.Unlock()
		return
	}
	ps.keys[key] = struct{}{}
	ps.mu.Unlock()
	c.install(ps, part, epoch, key, e, m, !tombstone, true)
}

// install is the shared insert/update path. writeThrough relaxes the
// floor check (a commit may legitimately carry the floor CSN itself)
// and is the only caller allowed to cross epochs.
func (c *Cache) install(ps *partState, part string, epoch uint64, key string,
	e store.Entry, m store.Meta, found, writeThrough bool) {
	sh := c.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el := sh.idx[key]; el != nil {
		rec := el.Value.(*record)
		if rec.epoch == epoch {
			if rec.meta.CSN > m.CSN || (!writeThrough && m.CSN < rec.floor) {
				return // resident state is already newer
			}
			c.setValueLocked(rec, e, m, found)
			if m.CSN > rec.floor {
				rec.floor = m.CSN
			}
			sh.lru.MoveToFront(el)
			return
		}
		if !writeThrough || epoch < rec.epoch {
			return // read-through must not lift the epoch guard
		}
		rec.part, rec.ps, rec.epoch, rec.floor = part, ps, epoch, m.CSN
		c.setValueLocked(rec, e, m, found)
		sh.lru.MoveToFront(el)
		return
	}
	rec := &record{key: key, part: part, ps: ps, epoch: epoch, floor: m.CSN}
	c.setValueLocked(rec, e, m, found)
	sh.idx[key] = sh.lru.PushFront(rec)
	if sh.lru.Len() > sh.cap {
		c.evictLocked(sh)
	}
}

// Observe feeds a commit record installed by a co-located element
// (local commit or replicated apply) under the given epoch: it marks
// the element warm for the partition and refreshes resident entries
// in CSN order. It never inserts and never advances floors — it is a
// freshness signal, not a read.
func (c *Cache) Observe(part, element string, epoch uint64, rec *store.CommitRecord) {
	if epoch == 0 {
		return
	}
	ps := c.part(part)
	if ps == nil {
		return
	}
	ps.mu.Lock()
	if ps.epoch.Load() != epoch {
		ps.mu.Unlock()
		return
	}
	if !ps.warmAll {
		ps.warm[element] = struct{}{}
	}
	ps.mu.Unlock()
	for _, op := range rec.Ops {
		c.observeOp(part, epoch, rec, op)
	}
}

func (c *Cache) observeOp(part string, epoch uint64, rec *store.CommitRecord, op store.Op) {
	sh := c.shard(op.Key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	el := sh.idx[op.Key]
	if el == nil {
		return
	}
	r := el.Value.(*record)
	if r.part != part || r.epoch != epoch || rec.CSN <= r.meta.CSN {
		return
	}
	m := store.Meta{CSN: rec.CSN, WallTS: rec.WallTS,
		Tombstone: op.Kind == store.OpDelete}
	c.setValueLocked(r, op.Entry, m, op.Kind != store.OpDelete)
	c.invCSN.Add(1)
}

// OnEpochBump records a partition's new placement epoch. The first
// call for a partition (initial assignment) bootstraps it with every
// replica presumed warm; later calls flip resident entries into the
// guarded state and reset warmth — replicas must re-prove themselves
// by applying records under the new lineage.
func (c *Cache) OnEpochBump(part string, epoch uint64) {
	c.partsMu.Lock()
	ps := c.parts[part]
	if ps == nil {
		c.parts[part] = newPartState(epoch, true)
		c.partsMu.Unlock()
		return
	}
	c.partsMu.Unlock()

	ps.mu.Lock()
	prev := ps.epoch.Load()
	if epoch <= prev {
		ps.mu.Unlock()
		return
	}
	ps.epoch.Store(epoch)
	ps.warmAll = false
	ps.warm = make(map[string]struct{})
	keys := make([]string, 0, len(ps.keys))
	for k := range ps.keys {
		keys = append(keys, k)
	}
	ps.mu.Unlock()

	// Count the entries that just became guarded. They stay resident
	// (served master-direct, never from cache) until a new-lineage
	// write-through replaces them: CSNs are not comparable across
	// epochs, and deleting would forget the per-key floor obligation.
	var n uint64
	for _, k := range keys {
		sh := c.shard(k)
		sh.mu.Lock()
		if el := sh.idx[k]; el != nil {
			if r := el.Value.(*record); r.part == part && r.epoch == prev {
				n++
			}
		}
		sh.mu.Unlock()
	}
	if n > 0 {
		c.invEpoch.Add(n)
	}
	c.lastInvMu.Lock()
	c.lastInvPart, c.lastInvEpoch = part, epoch
	c.lastInvMu.Unlock()
}

// Warm reports whether element is a safe read-through fill source for
// the partition under its current epoch.
func (c *Cache) Warm(part, element string) bool {
	ps := c.part(part)
	if ps == nil {
		return false
	}
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return ps.warmAll || member(ps.warm, element)
}

// RecordStaleReject counts a slave response rejected for carrying a
// CSN below the key's floor (the PoA then tries the next replica).
func (c *Cache) RecordStaleReject() { c.staleRejects.Add(1) }

// Len returns the resident entry count.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += sh.lru.Len()
		sh.mu.Unlock()
	}
	return n
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	s := Stats{
		Site:               c.site,
		Entries:            c.Len(),
		Capacity:           c.capacity,
		Hits:               c.hits.Load(),
		Misses:             c.misses.Load(),
		Evictions:          c.evictions.Load(),
		InvalidationsEpoch: c.invEpoch.Load(),
		InvalidationsCSN:   c.invCSN.Load(),
		StaleRejects:       c.staleRejects.Load(),
	}
	c.lastInvMu.Lock()
	s.LastInvalidatedPartition, s.LastInvalidationEpoch = c.lastInvPart, c.lastInvEpoch
	c.lastInvMu.Unlock()
	return s
}

// setValueLocked replaces a record's value and re-derives its
// secondary-identity aliases. Caller holds the record's shard lock.
func (c *Cache) setValueLocked(rec *record, e store.Entry, m store.Meta, found bool) {
	c.dropAliasesLocked(rec)
	rec.entry, rec.meta, rec.found = e, m, found
	rec.aliases = rec.aliases[:0]
	if !found {
		return
	}
	for _, attr := range subscriber.IdentityAttrs {
		for _, v := range e[attr] {
			a := attr + "\x00" + v
			rec.aliases = append(rec.aliases, a)
			c.aliases.Store(a, rec.key)
		}
	}
}

func (c *Cache) dropAliasesLocked(rec *record) {
	for _, a := range rec.aliases {
		if v, ok := c.aliases.Load(a); ok && v == rec.key {
			c.aliases.Delete(a)
		}
	}
}

// evictLocked removes the shard's LRU tail. Eviction drops the key's
// floor with it — the documented capacity/staleness-protection trade.
func (c *Cache) evictLocked(sh *cacheShard) {
	el := sh.lru.Back()
	if el == nil {
		return
	}
	rec := el.Value.(*record)
	sh.lru.Remove(el)
	delete(sh.idx, rec.key)
	c.dropAliasesLocked(rec)
	rec.ps.mu.Lock()
	delete(rec.ps.keys, rec.key)
	rec.ps.mu.Unlock()
	c.evictions.Add(1)
}

func member(m map[string]struct{}, k string) bool {
	_, ok := m[k]
	return ok
}
