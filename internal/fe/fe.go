// Package fe implements the stateless application front-ends of the
// UDC architecture (§1, §2.2): the HLR-FE and HSS-FE processes that
// execute network procedures by reading and writing subscriber data
// in the UDR. Each front-end holds a PolicyFE session to its nearest
// PoA, so slave reads are allowed (§3.3.2) and the procedures below
// observe the PA/EL behaviour of Figure 6's blue trade-off points.
//
// Per §3.5 footnote 8, typical mobile procedures cause 1–3 LDAP
// operations and IMS procedures 5–6; each session Exec below is one
// LDAP operation, and experiment E15 verifies the counts.
package fe

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/auth"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/se"
	"repro/internal/simnet"
	"repro/internal/store"
	"repro/internal/subscriber"
)

// Business outcomes (distinct from availability failures: the UDR
// answered, the answer was "no").
var (
	// ErrBarred reports a call blocked by a barring flag.
	ErrBarred = errors.New("fe: call barred")
	// ErrInactive reports a procedure against an inactive
	// subscription.
	ErrInactive = errors.New("fe: subscription not active")
	// ErrNotIMS reports IMS registration by a non-IMS subscription.
	ErrNotIMS = errors.New("fe: subscription has no IMS service")
)

// Kind distinguishes HLR and HSS front-ends.
type Kind int

const (
	// HLR serves circuit/packet-switched mobile procedures.
	HLR Kind = iota
	// HSS additionally serves IMS procedures.
	HSS
)

// String returns the front-end kind name.
func (k Kind) String() string {
	if k == HSS {
		return "HSS-FE"
	}
	return "HLR-FE"
}

// ProcStats aggregates per-procedure measurements for E13/E15.
type ProcStats struct {
	Invocations metrics.Counter
	Ops         metrics.Counter // LDAP operations issued
	Failures    metrics.Counter // availability failures (not business denials)
	Latency     metrics.Histogram
}

// OpsPerInvocation returns the measured LDAP-operation cost of the
// procedure (E15's reproduced figure).
func (ps *ProcStats) OpsPerInvocation() float64 {
	n := ps.Invocations.Value()
	if n == 0 {
		return 0
	}
	return float64(ps.Ops.Value()) / float64(n)
}

// ProcObserver observes every front-end procedure invocation: the
// procedure name, its wall-clock window and its outcome (nil,
// a business denial, or an availability failure). It is called
// synchronously after the procedure body returns, so a recorder sees
// invocation/response windows without racing the front-end.
type ProcObserver func(proc string, start time.Time, elapsed time.Duration, err error)

// FE is one application front-end instance.
type FE struct {
	kind    Kind
	site    string
	session *core.Session
	obs     atomic.Pointer[ProcObserver]

	// Stats per procedure name.
	LocationUpdateStats ProcStats
	AuthenticateStats   ProcStats
	MOCallStats         ProcStats
	MTCallStats         ProcStats
	SMSStats            ProcStats
	IMSRegisterStats    ProcStats

	// StaleReads counts reads that were detectably stale (served by
	// a slave with a lower CSN than the caller's known write).
	StaleReads metrics.Counter
}

// New creates a front-end at site, talking to that site's PoA (there
// is always a PoA close to any front-end, §3.3.2 decision 1).
func New(net *simnet.Network, kind Kind, site, name string) *FE {
	return &FE{
		kind:    kind,
		site:    site,
		session: core.NewSession(net, simnet.MakeAddr(site, name), site, core.PolicyFE),
	}
}

// NewWithSession creates a front-end over an existing session (tests
// point it at remote PoAs).
func NewWithSession(kind Kind, site string, session *core.Session) *FE {
	return &FE{kind: kind, site: site, session: session}
}

// Kind returns the front-end kind.
func (f *FE) Kind() Kind { return f.kind }

// Site returns the front-end's site.
func (f *FE) Site() string { return f.site }

// Session exposes the underlying session.
func (f *FE) Session() *core.Session { return f.session }

// SetProcObserver installs (or, with nil, removes) the front-end's
// procedure observer.
func (f *FE) SetProcObserver(fn ProcObserver) {
	if fn == nil {
		f.obs.Store(nil)
		return
	}
	f.obs.Store(&fn)
}

// observe wraps a procedure body with stats accounting.
func (f *FE) observe(proc string, ps *ProcStats, ops int64, fn func() error) error {
	start := time.Now()
	ps.Invocations.Inc()
	err := fn()
	elapsed := time.Since(start)
	ps.Ops.Add(ops)
	ps.Latency.Record(elapsed)
	if err != nil && !isBusinessOutcome(err) {
		ps.Failures.Inc()
	}
	if p := f.obs.Load(); p != nil {
		(*p)(proc, start, elapsed, err)
	}
	return err
}

func isBusinessOutcome(err error) bool {
	return errors.Is(err, ErrBarred) || errors.Is(err, ErrInactive) || errors.Is(err, ErrNotIMS)
}

// LocationUpdate runs the location-management procedure: validate the
// subscription, then record the new serving node and area.
// Cost: 2 LDAP operations (read + write).
func (f *FE) LocationUpdate(ctx context.Context, imsi, servingNode, area string, roaming bool) error {
	return f.observe("LocationUpdate", &f.LocationUpdateStats, 2, func() error {
		id := subscriber.Identity{Type: subscriber.IMSI, Value: imsi}
		prof, _, _, err := f.session.ReadProfile(ctx, id)
		if err != nil {
			return err
		}
		if !prof.Active {
			return ErrInactive
		}
		if roaming && prof.Services.BarRoaming {
			return ErrBarred
		}
		_, err = f.session.Modify(ctx, id,
			store.Mod{Kind: store.ModReplace, Attr: subscriber.AttrServingNode, Vals: []string{servingNode}},
			store.Mod{Kind: store.ModReplace, Attr: subscriber.AttrArea, Vals: []string{area}},
			store.Mod{Kind: store.ModReplace, Attr: subscriber.AttrRoaming, Vals: []string{boolStr(roaming)}},
			store.Mod{Kind: store.ModReplace, Attr: subscriber.AttrLocUpdated,
				Vals: []string{strconv.FormatInt(time.Now().UnixMicro(), 10)}},
		)
		return err
	})
}

// Authenticate runs the authentication procedure: fetch the permanent
// key and sequence number, derive an authentication vector for the
// serving node, then advance the sequence number — an authentication
// is a write! Cost: 2 LDAP operations. The returned vector is what
// the front-end would hand to the MME/VLR.
func (f *FE) Authenticate(ctx context.Context, imsi string) (*auth.Vector, error) {
	var vec *auth.Vector
	err := f.observe("Authenticate", &f.AuthenticateStats, 2, func() error {
		id := subscriber.Identity{Type: subscriber.IMSI, Value: imsi}
		prof, _, _, err := f.session.ReadProfile(ctx, id)
		if err != nil {
			return err
		}
		if !prof.Active {
			return ErrInactive
		}
		key, err := auth.ParseKey(prof.AuthKeyHex)
		if err != nil {
			return err
		}
		newSQN := prof.SQN + 1
		v := auth.GenerateVector(key, auth.Challenge(newSQN), newSQN, [auth.AmfLen]byte{})
		// SQN advance must hit the master (it is a write); the
		// read above may have been served by a slave.
		if _, err := f.session.Exec(ctx, core.ExecReq{
			Identity: id,
			Ops: []se.TxnOp{{
				Kind: se.TxnModify,
				Mods: []store.Mod{{
					Kind: store.ModReplace,
					Attr: subscriber.AttrSQN,
					Vals: []string{strconv.FormatUint(newSQN, 10)},
				}},
			}},
		}); err != nil {
			return err
		}
		vec = &v
		return nil
	})
	return vec, err
}

// MOCall runs mobile-originated call setup: read the caller's profile
// and apply barring. Cost: 1 LDAP operation.
// premium marks a call to a premium-rate number (§3.2's pay-call
// barring example).
func (f *FE) MOCall(ctx context.Context, msisdn string, premium bool) error {
	return f.observe("MOCall", &f.MOCallStats, 1, func() error {
		prof, _, _, err := f.session.ReadProfile(ctx,
			subscriber.Identity{Type: subscriber.MSISDN, Value: msisdn})
		if err != nil {
			return err
		}
		switch {
		case !prof.Active:
			return ErrInactive
		case prof.Services.BarOutgoing:
			return ErrBarred
		case premium && prof.Services.BarPremium:
			return ErrBarred
		}
		return nil
	})
}

// MTCall runs mobile-terminated call routing: read the callee's
// location and forwarding state; returns the routing target (serving
// node or forward-to number). Cost: 1 LDAP operation.
func (f *FE) MTCall(ctx context.Context, msisdn string) (routeTo string, err error) {
	err = f.observe("MTCall", &f.MTCallStats, 1, func() error {
		prof, _, _, rerr := f.session.ReadProfile(ctx,
			subscriber.Identity{Type: subscriber.MSISDN, Value: msisdn})
		if rerr != nil {
			return rerr
		}
		if !prof.Active {
			return ErrInactive
		}
		if fw := prof.Services.ForwardUnconditional; fw != "" {
			routeTo = "forward:" + fw
			return nil
		}
		routeTo = "node:" + prof.Location.ServingNode
		return nil
	})
	return routeTo, err
}

// SMSDeliver runs short-message delivery routing: read the
// destination's serving node. Cost: 1 LDAP operation.
func (f *FE) SMSDeliver(ctx context.Context, msisdn string) (servingNode string, err error) {
	err = f.observe("SMSDeliver", &f.SMSStats, 1, func() error {
		prof, _, _, rerr := f.session.ReadProfile(ctx,
			subscriber.Identity{Type: subscriber.MSISDN, Value: msisdn})
		if rerr != nil {
			return rerr
		}
		if !prof.Active {
			return ErrInactive
		}
		if !prof.Services.SMSEnabled {
			return ErrBarred
		}
		servingNode = prof.Location.ServingNode
		return nil
	})
	return servingNode, err
}

// IMSRegister runs the IMS registration procedure, the heavier
// network procedure of §3.5 footnote 8. Cost: 5 LDAP operations:
//
//  1. resolve the IMPU and read the service profile,
//  2. read the IMPI authentication data,
//  3. advance the authentication sequence number (write),
//  4. record the S-CSCF assignment (write),
//  5. confirm the registration state (read-back).
func (f *FE) IMSRegister(ctx context.Context, impu, scscf string) error {
	if f.kind != HSS {
		return fmt.Errorf("fe: %s cannot run IMS registration", f.kind)
	}
	return f.observe("IMSRegister", &f.IMSRegisterStats, 5, func() error {
		pubID := subscriber.Identity{Type: subscriber.IMPU, Value: impu}
		// Op 1: service profile by public identity.
		prof, _, _, err := f.session.ReadProfile(ctx, pubID)
		if err != nil {
			return err
		}
		if !prof.Active {
			return ErrInactive
		}
		if !prof.Services.IMSEnabled {
			return ErrNotIMS
		}
		// Op 2: authentication data by private identity.
		privID := subscriber.Identity{Type: subscriber.IMPI, Value: prof.IMPIVal}
		prof2, _, _, err := f.session.ReadProfile(ctx, privID)
		if err != nil {
			return err
		}
		// Op 3: SQN advance (write).
		if _, err := f.session.Exec(ctx, core.ExecReq{
			Identity: privID,
			Ops: []se.TxnOp{{
				Kind: se.TxnModify,
				Mods: []store.Mod{{
					Kind: store.ModReplace,
					Attr: subscriber.AttrSQN,
					Vals: []string{strconv.FormatUint(prof2.SQN+1, 10)},
				}},
			}},
		}); err != nil {
			return err
		}
		// Op 4: S-CSCF assignment (write).
		if _, err := f.session.Modify(ctx, pubID,
			store.Mod{Kind: store.ModReplace, Attr: subscriber.AttrServingNode, Vals: []string{scscf}},
		); err != nil {
			return err
		}
		// Op 5: registration read-back.
		_, _, _, err = f.session.ReadProfile(ctx, pubID)
		return err
	})
}

func boolStr(b bool) string {
	if b {
		return "TRUE"
	}
	return "FALSE"
}
