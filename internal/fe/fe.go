// Package fe implements the stateless application front-ends of the
// UDC architecture (§1, §2.2): the HLR-FE and HSS-FE processes that
// execute network procedures by reading and writing subscriber data
// in the UDR. Each front-end holds a PolicyFE session to its nearest
// PoA, so slave reads are allowed (§3.3.2) and the procedures below
// observe the PA/EL behaviour of Figure 6's blue trade-off points.
//
// Per §3.5 footnote 8, typical mobile procedures cause 1–3 LDAP
// operations and IMS procedures 5–6; each session Exec below is one
// LDAP operation, and experiment E15 verifies the counts.
package fe

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/auth"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/se"
	"repro/internal/simnet"
	"repro/internal/store"
	"repro/internal/subscriber"
	"repro/internal/trace"
)

// Business outcomes (distinct from availability failures: the UDR
// answered, the answer was "no").
var (
	// ErrBarred reports a call blocked by a barring flag.
	ErrBarred = errors.New("fe: call barred")
	// ErrInactive reports a procedure against an inactive
	// subscription.
	ErrInactive = errors.New("fe: subscription not active")
	// ErrNotIMS reports IMS registration by a non-IMS subscription.
	ErrNotIMS = errors.New("fe: subscription has no IMS service")
	// ErrShConflict reports that an ShUpdate's base version no longer
	// matched when the write executed: a concurrent update won the
	// race and the application should re-read and retry (the Sh
	// interface's ETag model).
	ErrShConflict = errors.New("fe: sh repository data version conflict")
)

// Kind distinguishes HLR and HSS front-ends.
type Kind int

const (
	// HLR serves circuit/packet-switched mobile procedures.
	HLR Kind = iota
	// HSS additionally serves IMS procedures.
	HSS
)

// String returns the front-end kind name.
func (k Kind) String() string {
	if k == HSS {
		return "HSS-FE"
	}
	return "HLR-FE"
}

// ProcStats aggregates per-procedure measurements for E13/E15.
type ProcStats struct {
	Invocations metrics.Counter
	Ops         metrics.Counter // LDAP operations issued
	Failures    metrics.Counter // availability failures (not business denials)
	Latency     metrics.Histogram
}

// OpsPerInvocation returns the measured LDAP-operation cost of the
// procedure (E15's reproduced figure).
func (ps *ProcStats) OpsPerInvocation() float64 {
	n := ps.Invocations.Value()
	if n == 0 {
		return 0
	}
	return float64(ps.Ops.Value()) / float64(n)
}

// ProcObserver observes every front-end procedure invocation: the
// procedure name, its wall-clock window and its outcome (nil,
// a business denial, or an availability failure). It is called
// synchronously after the procedure body returns, so a recorder sees
// invocation/response windows without racing the front-end.
type ProcObserver func(proc string, start time.Time, elapsed time.Duration, err error)

// FE is one application front-end instance.
type FE struct {
	kind    Kind
	site    string
	session *core.Session
	obs     atomic.Pointer[ProcObserver]
	tracer  *trace.Recorder

	// Stats per procedure name.
	LocationUpdateStats ProcStats
	AuthenticateStats   ProcStats
	MOCallStats         ProcStats
	MTCallStats         ProcStats
	SMSStats            ProcStats
	IMSRegisterStats    ProcStats
	ShUpdateStats       ProcStats

	// StaleReads counts reads that were detectably stale (served by
	// a slave with a lower CSN than the caller's known write).
	StaleReads metrics.Counter
}

// New creates a front-end at site, talking to that site's PoA (there
// is always a PoA close to any front-end, §3.3.2 decision 1).
func New(net *simnet.Network, kind Kind, site, name string) *FE {
	return &FE{
		kind:    kind,
		site:    site,
		session: core.NewSession(net, simnet.MakeAddr(site, name), site, core.PolicyFE),
	}
}

// NewWithSession creates a front-end over an existing session (tests
// point it at remote PoAs).
func NewWithSession(kind Kind, site string, session *core.Session) *FE {
	return &FE{kind: kind, site: site, session: session}
}

// Kind returns the front-end kind.
func (f *FE) Kind() Kind { return f.kind }

// Site returns the front-end's site.
func (f *FE) Site() string { return f.site }

// Session exposes the underlying session.
func (f *FE) Session() *core.Session { return f.session }

// AttachTracer wires the span recorder: every procedure invocation
// becomes a trace root ("fe.<proc>") and the session, PoA and SE hops
// underneath stitch into it. Also attaches the recorder to the
// underlying session. Attach before issuing traffic, like
// Session.AttachCache — the field is not synchronized against
// in-flight calls.
func (f *FE) AttachTracer(tr *trace.Recorder) {
	f.tracer = tr
	f.session.AttachTracer(tr)
}

// SetProcObserver installs (or, with nil, removes) the front-end's
// procedure observer.
func (f *FE) SetProcObserver(fn ProcObserver) {
	if fn == nil {
		f.obs.Store(nil)
		return
	}
	f.obs.Store(&fn)
}

// observe wraps a procedure body with stats accounting and, when a
// tracer is attached, a "fe.<proc>" root span whose context the body
// receives via ctx — every session Exec underneath then nests into
// one stitched trace.
func (f *FE) observe(ctx context.Context, proc string, ps *ProcStats, ops int64, fn func(context.Context) error) error {
	start := time.Now()
	ps.Invocations.Inc()
	var span trace.SpanHandle
	if f.tracer != nil {
		span = f.tracer.StartRoot("fe."+proc, f.site+"/"+f.kind.String())
		ctx = trace.NewContext(ctx, span.Ctx())
	}
	err := fn(ctx)
	elapsed := time.Since(start)
	ps.Ops.Add(ops)
	ps.Latency.Record(elapsed)
	if tc := span.Ctx(); tc.Sampled {
		ps.Latency.SetExemplar(elapsed, tc.Trace.String())
	}
	span.EndWithDuration(elapsed, err)
	if err != nil && !isBusinessOutcome(err) {
		ps.Failures.Inc()
	}
	if p := f.obs.Load(); p != nil {
		(*p)(proc, start, elapsed, err)
	}
	return err
}

func isBusinessOutcome(err error) bool {
	return errors.Is(err, ErrBarred) || errors.Is(err, ErrInactive) ||
		errors.Is(err, ErrNotIMS) || errors.Is(err, ErrShConflict)
}

// LocationUpdate runs the location-management procedure: validate the
// subscription, then record the new serving node and area.
// Cost: 2 LDAP operations (read + write).
func (f *FE) LocationUpdate(ctx context.Context, imsi, servingNode, area string, roaming bool) error {
	return f.observe(ctx, "LocationUpdate", &f.LocationUpdateStats, 2, func(ctx context.Context) error {
		id := subscriber.Identity{Type: subscriber.IMSI, Value: imsi}
		prof, _, _, err := f.session.ReadProfile(ctx, id)
		if err != nil {
			return err
		}
		if !prof.Active {
			return ErrInactive
		}
		if roaming && prof.Services.BarRoaming {
			return ErrBarred
		}
		_, err = f.session.Modify(ctx, id,
			store.Mod{Kind: store.ModReplace, Attr: subscriber.AttrServingNode, Vals: []string{servingNode}},
			store.Mod{Kind: store.ModReplace, Attr: subscriber.AttrArea, Vals: []string{area}},
			store.Mod{Kind: store.ModReplace, Attr: subscriber.AttrRoaming, Vals: []string{boolStr(roaming)}},
			store.Mod{Kind: store.ModReplace, Attr: subscriber.AttrLocUpdated,
				Vals: []string{strconv.FormatInt(time.Now().UnixMicro(), 10)}},
		)
		return err
	})
}

// Authenticate runs the authentication procedure: fetch the permanent
// key and sequence number, derive an authentication vector for the
// serving node, then advance the sequence number — an authentication
// is a write! Cost: 2 LDAP operations. The returned vector is what
// the front-end would hand to the MME/VLR.
func (f *FE) Authenticate(ctx context.Context, imsi string) (*auth.Vector, error) {
	var vec *auth.Vector
	err := f.observe(ctx, "Authenticate", &f.AuthenticateStats, 2, func(ctx context.Context) error {
		id := subscriber.Identity{Type: subscriber.IMSI, Value: imsi}
		prof, _, _, err := f.session.ReadProfile(ctx, id)
		if err != nil {
			return err
		}
		if !prof.Active {
			return ErrInactive
		}
		key, err := auth.ParseKey(prof.AuthKeyHex)
		if err != nil {
			return err
		}
		newSQN := prof.SQN + 1
		v := auth.GenerateVector(key, auth.Challenge(newSQN), newSQN, [auth.AmfLen]byte{})
		// SQN advance must hit the master (it is a write); the
		// read above may have been served by a slave.
		if _, err := f.session.Exec(ctx, core.ExecReq{
			Identity: id,
			Ops: []se.TxnOp{{
				Kind: se.TxnModify,
				Mods: []store.Mod{{
					Kind: store.ModReplace,
					Attr: subscriber.AttrSQN,
					Vals: []string{strconv.FormatUint(newSQN, 10)},
				}},
			}},
		}); err != nil {
			return err
		}
		vec = &v
		return nil
	})
	return vec, err
}

// MOCall runs mobile-originated call setup: read the caller's profile
// and apply barring. Cost: 1 LDAP operation.
// premium marks a call to a premium-rate number (§3.2's pay-call
// barring example).
func (f *FE) MOCall(ctx context.Context, msisdn string, premium bool) error {
	return f.observe(ctx, "MOCall", &f.MOCallStats, 1, func(ctx context.Context) error {
		prof, _, _, err := f.session.ReadProfile(ctx,
			subscriber.Identity{Type: subscriber.MSISDN, Value: msisdn})
		if err != nil {
			return err
		}
		switch {
		case !prof.Active:
			return ErrInactive
		case prof.Services.BarOutgoing:
			return ErrBarred
		case premium && prof.Services.BarPremium:
			return ErrBarred
		}
		return nil
	})
}

// MTCall runs mobile-terminated call routing: read the callee's
// location and forwarding state; returns the routing target (serving
// node or forward-to number). Cost: 1 LDAP operation.
func (f *FE) MTCall(ctx context.Context, msisdn string) (routeTo string, err error) {
	err = f.observe(ctx, "MTCall", &f.MTCallStats, 1, func(ctx context.Context) error {
		prof, _, _, rerr := f.session.ReadProfile(ctx,
			subscriber.Identity{Type: subscriber.MSISDN, Value: msisdn})
		if rerr != nil {
			return rerr
		}
		if !prof.Active {
			return ErrInactive
		}
		if fw := prof.Services.ForwardUnconditional; fw != "" {
			routeTo = "forward:" + fw
			return nil
		}
		routeTo = "node:" + prof.Location.ServingNode
		return nil
	})
	return routeTo, err
}

// SMSDeliver runs short-message delivery routing: read the
// destination's serving node. Cost: 1 LDAP operation.
func (f *FE) SMSDeliver(ctx context.Context, msisdn string) (servingNode string, err error) {
	err = f.observe(ctx, "SMSDeliver", &f.SMSStats, 1, func(ctx context.Context) error {
		prof, _, _, rerr := f.session.ReadProfile(ctx,
			subscriber.Identity{Type: subscriber.MSISDN, Value: msisdn})
		if rerr != nil {
			return rerr
		}
		if !prof.Active {
			return ErrInactive
		}
		if !prof.Services.SMSEnabled {
			return ErrBarred
		}
		servingNode = prof.Location.ServingNode
		return nil
	})
	return servingNode, err
}

// IMSRegister runs the IMS registration procedure, the heavier
// network procedure of §3.5 footnote 8. Cost: 5 LDAP operations:
//
//  1. resolve the IMPU and read the service profile,
//  2. read the IMPI authentication data,
//  3. advance the authentication sequence number (write),
//  4. record the S-CSCF assignment (write),
//  5. confirm the registration state (read-back).
func (f *FE) IMSRegister(ctx context.Context, impu, scscf string) error {
	if f.kind != HSS {
		return fmt.Errorf("fe: %s cannot run IMS registration", f.kind)
	}
	return f.observe(ctx, "IMSRegister", &f.IMSRegisterStats, 5, func(ctx context.Context) error {
		pubID := subscriber.Identity{Type: subscriber.IMPU, Value: impu}
		// Op 1: service profile by public identity.
		prof, _, _, err := f.session.ReadProfile(ctx, pubID)
		if err != nil {
			return err
		}
		if !prof.Active {
			return ErrInactive
		}
		if !prof.Services.IMSEnabled {
			return ErrNotIMS
		}
		// Op 2: authentication data by private identity.
		privID := subscriber.Identity{Type: subscriber.IMPI, Value: prof.IMPIVal}
		prof2, _, _, err := f.session.ReadProfile(ctx, privID)
		if err != nil {
			return err
		}
		// Op 3: SQN advance (write).
		if _, err := f.session.Exec(ctx, core.ExecReq{
			Identity: privID,
			Ops: []se.TxnOp{{
				Kind: se.TxnModify,
				Mods: []store.Mod{{
					Kind: store.ModReplace,
					Attr: subscriber.AttrSQN,
					Vals: []string{strconv.FormatUint(prof2.SQN+1, 10)},
				}},
			}},
		}); err != nil {
			return err
		}
		// Op 4: S-CSCF assignment (write).
		if _, err := f.session.Modify(ctx, pubID,
			store.Mod{Kind: store.ModReplace, Attr: subscriber.AttrServingNode, Vals: []string{scscf}},
		); err != nil {
			return err
		}
		// Op 5: registration read-back.
		_, _, _, err = f.session.ReadProfile(ctx, pubID)
		return err
	})
}

// ShUpdate runs the Sh-interface repository-data ("transparent
// data") update of TS 29.328: read the subscriber's current blob and
// version, then write the new blob under a compare-and-set on the
// version attribute, all against the master. Cost: 2 LDAP operations
// (read + CAS write). The CAS is one [compare, modify] transaction,
// so the write always travels the full durability chain (WAL fsync,
// synchronous replication ack wait) — this is the canonical traced
// write for end-to-end latency attribution. The UDR's one-shot
// transactions are READ_COMMITTED (§3.2) and do not abort on a failed
// compare; a version mismatch therefore still applies the write and
// reports ErrShConflict so the application re-reads and retries.
// Returns the version the data was written at.
func (f *FE) ShUpdate(ctx context.Context, msisdn, data string) (version uint64, err error) {
	err = f.observe(ctx, "ShUpdate", &f.ShUpdateStats, 2, func(ctx context.Context) error {
		id := subscriber.Identity{Type: subscriber.MSISDN, Value: msisdn}
		// Op 1: current blob + version (may be served by a slave).
		read, rerr := f.session.Exec(ctx, core.ExecReq{
			Identity: id,
			Ops:      []se.TxnOp{{Kind: se.TxnGet}},
		})
		if rerr != nil {
			return rerr
		}
		if !read.Results[0].Found {
			return fmt.Errorf("%w: %s", core.ErrUnknownSubscriber, id)
		}
		baseStr := read.Results[0].Entry.First(subscriber.AttrShDataVer)
		var base uint64
		if baseStr != "" {
			base, rerr = strconv.ParseUint(baseStr, 10, 64)
			if rerr != nil {
				return fmt.Errorf("fe: bad %s %q: %v", subscriber.AttrShDataVer, baseStr, rerr)
			}
		}
		version = base + 1
		// Op 2: the CAS write, one transaction on the master.
		resp, werr := f.session.Exec(ctx, core.ExecReq{
			Identity: id,
			Ops: []se.TxnOp{
				{Kind: se.TxnCompare, Attr: subscriber.AttrShDataVer,
					Value: strconv.FormatUint(base, 10)},
				{Kind: se.TxnModify, Mods: []store.Mod{
					{Kind: store.ModReplace, Attr: subscriber.AttrShData, Vals: []string{data}},
					{Kind: store.ModReplace, Attr: subscriber.AttrShDataVer,
						Vals: []string{strconv.FormatUint(version, 10)}},
				}},
			},
		})
		if werr != nil {
			return werr
		}
		// A first-ever write has no stored version to compare against;
		// only flag a conflict when the read saw one.
		if baseStr != "" && !resp.Results[0].CompareOK {
			return ErrShConflict
		}
		return nil
	})
	return version, err
}

func boolStr(b bool) string {
	if b {
		return "TRUE"
	}
	return "FALSE"
}
