package fe

import (
	"sort"
	"strconv"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/replication"
	"repro/internal/simnet"
	"repro/internal/subscriber"
	"repro/internal/trace"
	"repro/internal/wal"
)

// TestShUpdateEndToEndTrace is the tracing subsystem's acceptance
// test: one CAS write under Quorum durability with the WAL in
// sync-every-commit mode must yield one stitched trace whose span
// tree covers the FE procedure, the PoA's locator lookup, the SE
// commit, the WAL fsync, and the quorum ack wait with its per-peer
// sends — and whose per-hop durations add up (the direct children of
// the root account for the root's wall-clock within tolerance).
func TestShUpdateEndToEndTrace(t *testing.T) {
	rec := trace.New(trace.Config{SampleRate: 1})
	net := simnet.New(simnet.FastConfig())
	cfg := core.DefaultConfig()
	cfg.Durability = replication.Quorum
	cfg.WALDir = t.TempDir()
	cfg.WALMode = wal.SyncEveryCommit
	cfg.Trace = rec
	u, err := core.New(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(u.Stop)

	gen := subscriber.NewGenerator(u.Sites()...)
	p := gen.Profile(0)
	if err := u.SeedDirect(p); err != nil {
		t.Fatal(err)
	}
	ctx := ctxT(t)
	if err := u.WaitReplication(ctx); err != nil {
		t.Fatal(err)
	}

	f := New(net, HLR, p.HomeRegion, "hlr-fe")
	f.AttachTracer(rec)
	ver, err := f.ShUpdate(ctx, p.MSISDNVal, "<repository-data/>")
	if err != nil {
		t.Fatal(err)
	}
	if ver != 1 {
		t.Fatalf("first ShUpdate wrote version %d, want 1", ver)
	}

	sums := rec.Recent(10)
	if len(sums) != 1 {
		t.Fatalf("recorder holds %d traces, want exactly 1", len(sums))
	}
	spans := rec.Get(sums[0].Trace)
	byName := make(map[string][]trace.Span)
	for _, sp := range spans {
		byName[sp.Name] = append(byName[sp.Name], sp)
	}
	for _, name := range []string{
		"fe.ShUpdate", "session.exec", "net.call", "poa.exec",
		"locator.lookup", "se.txn", "se.commit",
		"wal.stage", "wal.fsync", "repl.ackwait", "repl.send",
	} {
		if len(byName[name]) == 0 {
			t.Errorf("stitched trace is missing a %q span", name)
		}
	}
	if t.Failed() {
		t.Fatalf("trace:\n%s", trace.RenderTree(spans))
	}

	// The procedure is two sequential LDAP operations, so the root's
	// direct children (the two session.exec spans) must account for
	// its duration: within 10% plus a small constant for scheduler
	// noise on the in-between microseconds of FE body code.
	root := byName["fe.ShUpdate"][0]
	var childSum time.Duration
	for _, sp := range spans {
		if sp.Parent == root.ID {
			childSum += sp.Duration
		}
	}
	slack := root.Duration/10 + 2*time.Millisecond
	if childSum > root.Duration || root.Duration-childSum > slack {
		t.Fatalf("children sum to %v of root %v (slack %v)\n%s",
			childSum, root.Duration, slack, trace.RenderTree(spans))
	}

	// The CAS write's durability chain must attribute correctly: the
	// quorum ack wait covers its counted peer sends.
	for _, aw := range byName["repl.ackwait"] {
		if aw.Err != "" {
			continue
		}
		need := 0
		for _, a := range aw.Attrs {
			if a.Key == "need" {
				need, _ = strconv.Atoi(a.Value)
			}
		}
		var sends []time.Duration
		for _, sp := range byName["repl.send"] {
			if sp.Parent == aw.Parent {
				sends = append(sends, sp.Duration)
			}
		}
		if need <= 0 || len(sends) < need {
			t.Fatalf("ack wait needs %d peer acks but %d sends recorded", need, len(sends))
		}
		sort.Slice(sends, func(i, j int) bool { return sends[i] < sends[j] })
		if aw.Duration < sends[need-1] {
			t.Fatalf("ack wait %v shorter than slowest counted send %v", aw.Duration, sends[need-1])
		}
	}

	// WAL fsync attribution names the group-commit role.
	role := ""
	for _, a := range byName["wal.fsync"][0].Attrs {
		if a.Key == "role" {
			role = a.Value
		}
	}
	if role != "leader" && role != "follower" {
		t.Fatalf("wal.fsync role = %q", role)
	}
}

// TestShUpdateVersionsAdvance drives sequential updates and checks
// the version counter and the 2-LDAP-op cost accounting.
func TestShUpdateVersionsAdvance(t *testing.T) {
	r := newRig(t, 1)
	ctx := ctxT(t)
	p := r.profiles[0]
	f := r.fes[p.HomeRegion]

	if _, err := f.ShUpdate(ctx, p.MSISDNVal, "v1"); err != nil {
		t.Fatal(err)
	}
	if v, err := f.ShUpdate(ctx, p.MSISDNVal, "v2"); err != nil || v != 2 {
		t.Fatalf("second update: v=%d err=%v", v, err)
	}
	if f.ShUpdateStats.Invocations.Value() != 2 || f.ShUpdateStats.Ops.Value() != 4 {
		t.Fatalf("stats = %d/%d", f.ShUpdateStats.Invocations.Value(), f.ShUpdateStats.Ops.Value())
	}
}
