package fe

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/auth"
	"repro/internal/core"
	"repro/internal/simnet"
	"repro/internal/store"
	"repro/internal/subscriber"
)

// rig builds a three-site UDR and one HSS front-end per site.
type rig struct {
	net      *simnet.Network
	udr      *core.UDR
	profiles []*subscriber.Profile
	fes      map[string]*FE
}

func newRig(t *testing.T, subs int) *rig {
	t.Helper()
	net := simnet.New(simnet.FastConfig())
	u, err := core.New(net, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(u.Stop)

	gen := subscriber.NewGenerator(u.Sites()...)
	var profiles []*subscriber.Profile
	for i := 0; i < subs; i++ {
		p := gen.Profile(i)
		if err := u.SeedDirect(p); err != nil {
			t.Fatal(err)
		}
		profiles = append(profiles, p)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := u.WaitReplication(ctx); err != nil {
		t.Fatal(err)
	}

	fes := make(map[string]*FE)
	for _, site := range u.Sites() {
		fes[site] = New(net, HSS, site, "hss-fe")
	}
	return &rig{net: net, udr: u, profiles: profiles, fes: fes}
}

func ctxT(t *testing.T) context.Context {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestLocationUpdate(t *testing.T) {
	r := newRig(t, 3)
	ctx := ctxT(t)
	p := r.profiles[0]
	f := r.fes[p.HomeRegion]

	if err := f.LocationUpdate(ctx, p.IMSIVal, "mme-7", "area-7", false); err != nil {
		t.Fatal(err)
	}
	// The write is visible through the session.
	prof, _, _, rerr := f.Session().ReadProfile(ctx, subscriber.Identity{Type: subscriber.IMSI, Value: p.IMSIVal})
	if rerr != nil {
		t.Fatal(rerr)
	}
	if prof.Location.ServingNode != "mme-7" || prof.Location.Area != "area-7" {
		t.Fatalf("location = %+v", prof.Location)
	}
	if f.LocationUpdateStats.Invocations.Value() != 1 || f.LocationUpdateStats.Ops.Value() != 2 {
		t.Fatalf("stats = %d/%d", f.LocationUpdateStats.Invocations.Value(), f.LocationUpdateStats.Ops.Value())
	}
}

func TestLocationUpdateRoamingBarred(t *testing.T) {
	r := newRig(t, 3)
	ctx := ctxT(t)
	p := r.profiles[0]
	f := r.fes[p.HomeRegion]

	// Bar roaming via a direct write, then attempt a roaming update.
	ps := core.NewSession(r.net, simnet.MakeAddr(p.HomeRegion, "ps"), p.HomeRegion, core.PolicyPS)
	if _, err := ps.Modify(ctx, subscriber.Identity{Type: subscriber.IMSI, Value: p.IMSIVal},
		barMod(subscriber.AttrBarRoaming, true)); err != nil {
		t.Fatal(err)
	}
	err := f.LocationUpdate(ctx, p.IMSIVal, "mme-x", "area-x", true)
	if !errors.Is(err, ErrBarred) {
		t.Fatalf("err = %v, want ErrBarred", err)
	}
	// Barring is a business outcome, not an availability failure.
	if f.LocationUpdateStats.Failures.Value() != 0 {
		t.Fatal("business denial counted as failure")
	}
}

func TestAuthenticateAdvancesSQN(t *testing.T) {
	r := newRig(t, 3)
	ctx := ctxT(t)
	p := r.profiles[0]
	f := r.fes[p.HomeRegion]

	// The USIM side: each vector must verify against the key with a
	// strictly increasing SQN (freshness).
	key, err := auth.ParseKey(p.AuthKeyHex)
	if err != nil {
		t.Fatal(err)
	}
	highestSeen := uint64(0)
	for i := 0; i < 3; i++ {
		vec, err := f.Authenticate(ctx, p.IMSIVal)
		if err != nil {
			t.Fatal(err)
		}
		sqn, err := auth.VerifyAUTN(key, vec.RAND, vec.AUTN, highestSeen)
		if err != nil {
			t.Fatalf("vector %d rejected by USIM side: %v", i, err)
		}
		highestSeen = sqn
	}
	prof, _, _, err := f.Session().ReadProfile(ctx, subscriber.Identity{Type: subscriber.IMSI, Value: p.IMSIVal})
	if err != nil {
		t.Fatal(err)
	}
	if prof.SQN != 3 {
		t.Fatalf("SQN = %d, want 3", prof.SQN)
	}
	if got := f.AuthenticateStats.OpsPerInvocation(); got != 2 {
		t.Fatalf("ops/invocation = %v", got)
	}
}

func TestMOCallBarring(t *testing.T) {
	r := newRig(t, 3)
	ctx := ctxT(t)
	p := r.profiles[0]
	f := r.fes[p.HomeRegion]
	ps := core.NewSession(r.net, simnet.MakeAddr(p.HomeRegion, "ps"), p.HomeRegion, core.PolicyPS)
	id := subscriber.Identity{Type: subscriber.IMSI, Value: p.IMSIVal}

	// Normal call passes.
	if err := f.MOCall(ctx, p.MSISDNVal, false); err != nil {
		t.Fatal(err)
	}
	// Premium barring blocks only premium calls (§3.2's example).
	if _, err := ps.Modify(ctx, id, barMod(subscriber.AttrBarPremium, true)); err != nil {
		t.Fatal(err)
	}
	if err := f.MOCall(ctx, p.MSISDNVal, false); err != nil {
		t.Fatalf("non-premium call barred: %v", err)
	}
	if err := f.MOCall(ctx, p.MSISDNVal, true); !errors.Is(err, ErrBarred) {
		t.Fatalf("premium call err = %v", err)
	}
	// Outgoing barring blocks everything.
	if _, err := ps.Modify(ctx, id, barMod(subscriber.AttrBarOutgoing, true)); err != nil {
		t.Fatal(err)
	}
	if err := f.MOCall(ctx, p.MSISDNVal, false); !errors.Is(err, ErrBarred) {
		t.Fatalf("outgoing-barred call err = %v", err)
	}
}

func TestMTCallForwarding(t *testing.T) {
	r := newRig(t, 3)
	ctx := ctxT(t)
	p := r.profiles[0]
	f := r.fes[p.HomeRegion]

	if err := f.LocationUpdate(ctx, p.IMSIVal, "mme-42", "a", false); err != nil {
		t.Fatal(err)
	}
	route, err := f.MTCall(ctx, p.MSISDNVal)
	if err != nil {
		t.Fatal(err)
	}
	if route != "node:mme-42" {
		t.Fatalf("route = %q", route)
	}

	ps := core.NewSession(r.net, simnet.MakeAddr(p.HomeRegion, "ps"), p.HomeRegion, core.PolicyPS)
	if _, err := ps.Modify(ctx, subscriber.Identity{Type: subscriber.IMSI, Value: p.IMSIVal},
		cfuMod("34699999999")); err != nil {
		t.Fatal(err)
	}
	route, err = f.MTCall(ctx, p.MSISDNVal)
	if err != nil {
		t.Fatal(err)
	}
	if route != "forward:34699999999" {
		t.Fatalf("route = %q", route)
	}
}

func TestSMSDeliver(t *testing.T) {
	r := newRig(t, 3)
	ctx := ctxT(t)
	p := r.profiles[0]
	f := r.fes[p.HomeRegion]
	if err := f.LocationUpdate(ctx, p.IMSIVal, "mme-9", "a", false); err != nil {
		t.Fatal(err)
	}
	node, err := f.SMSDeliver(ctx, p.MSISDNVal)
	if err != nil || node != "mme-9" {
		t.Fatalf("sms: %q %v", node, err)
	}
}

func TestIMSRegister(t *testing.T) {
	r := newRig(t, 4)
	ctx := ctxT(t)
	// Find an IMS-enabled subscriber (generator enables every other).
	var p *subscriber.Profile
	for _, cand := range r.profiles {
		if cand.Services.IMSEnabled {
			p = cand
			break
		}
	}
	f := r.fes[p.HomeRegion]
	if err := f.IMSRegister(ctx, p.IMPUVals[0], "scscf-1"); err != nil {
		t.Fatal(err)
	}
	if got := f.IMSRegisterStats.OpsPerInvocation(); got != 5 {
		t.Fatalf("IMS ops/invocation = %v, want 5 (paper: 5-6)", got)
	}
	prof, _, _, err := f.Session().ReadProfile(ctx, subscriber.Identity{Type: subscriber.IMPU, Value: p.IMPUVals[0]})
	if err != nil {
		t.Fatal(err)
	}
	if prof.Location.ServingNode != "scscf-1" {
		t.Fatalf("S-CSCF = %q", prof.Location.ServingNode)
	}
	if prof.SQN == 0 {
		t.Fatal("IMS registration did not advance SQN")
	}
}

func TestIMSRegisterNonIMS(t *testing.T) {
	r := newRig(t, 4)
	ctx := ctxT(t)
	var p *subscriber.Profile
	for _, cand := range r.profiles {
		if !cand.Services.IMSEnabled {
			p = cand
			break
		}
	}
	f := r.fes[p.HomeRegion]
	if err := f.IMSRegister(ctx, p.IMPUVals[0], "scscf-1"); !errors.Is(err, ErrNotIMS) {
		t.Fatalf("err = %v", err)
	}
}

func TestIMSRegisterOnHLRFERejected(t *testing.T) {
	r := newRig(t, 2)
	hlr := New(r.net, HLR, r.udr.Sites()[0], "hlr-fe")
	if err := hlr.IMSRegister(ctxT(t), "sip:x", "scscf"); err == nil {
		t.Fatal("HLR-FE accepted an IMS procedure")
	}
}

func TestInactiveSubscription(t *testing.T) {
	r := newRig(t, 3)
	ctx := ctxT(t)
	p := r.profiles[0]
	f := r.fes[p.HomeRegion]
	ps := core.NewSession(r.net, simnet.MakeAddr(p.HomeRegion, "ps"), p.HomeRegion, core.PolicyPS)
	if _, err := ps.Modify(ctx, subscriber.Identity{Type: subscriber.IMSI, Value: p.IMSIVal},
		barMod(subscriber.AttrActive, false)); err != nil {
		t.Fatal(err)
	}
	if err := f.MOCall(ctx, p.MSISDNVal, false); !errors.Is(err, ErrInactive) {
		t.Fatalf("err = %v", err)
	}
	if _, err := f.Authenticate(ctx, p.IMSIVal); !errors.Is(err, ErrInactive) {
		t.Fatalf("err = %v", err)
	}
}

func TestAvailabilityFailureCounted(t *testing.T) {
	r := newRig(t, 3)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	// Pick a subscriber whose master is remote from the FE's site,
	// then partition: the write inside LocationUpdate fails.
	site := r.udr.Sites()[0]
	var p *subscriber.Profile
	for _, cand := range r.profiles {
		if cand.HomeRegion != site {
			p = cand
			break
		}
	}
	f := r.fes[site]
	r.net.Partition([]string{site})
	defer r.net.Heal()
	err := f.LocationUpdate(ctx, p.IMSIVal, "mme-x", "a", false)
	if err == nil {
		t.Fatal("write through a partition succeeded")
	}
	if f.LocationUpdateStats.Failures.Value() != 1 {
		t.Fatalf("failures = %d", f.LocationUpdateStats.Failures.Value())
	}
}

func TestKindString(t *testing.T) {
	if HLR.String() != "HLR-FE" || HSS.String() != "HSS-FE" {
		t.Fatal("kind strings")
	}
}

// barMod and cfuMod build attribute replacements for test setup.
func barMod(attr string, on bool) store.Mod {
	v := "FALSE"
	if on {
		v = "TRUE"
	}
	return store.Mod{Kind: store.ModReplace, Attr: attr, Vals: []string{v}}
}

func cfuMod(target string) store.Mod {
	return store.Mod{Kind: store.ModReplace, Attr: subscriber.AttrForwardUncond, Vals: []string{target}}
}

// TestProcObserver pins the op-history hook: the observer must see
// every procedure invocation synchronously with its name, a plausible
// window and the business outcome, and removing it must stop delivery.
func TestProcObserver(t *testing.T) {
	r := newRig(t, 6)
	ctx := ctxT(t)
	site := r.udr.Sites()[0]
	f := r.fes[site]

	type obsEvent struct {
		proc    string
		elapsed time.Duration
		err     error
	}
	var got []obsEvent
	f.SetProcObserver(func(proc string, start time.Time, elapsed time.Duration, err error) {
		if start.IsZero() || elapsed < 0 {
			t.Errorf("observer got window start=%v elapsed=%v", start, elapsed)
		}
		got = append(got, obsEvent{proc, elapsed, err})
	})

	p := r.profiles[0]
	if err := f.LocationUpdate(ctx, p.IMSIVal, "node-1", "area-1", false); err != nil {
		t.Fatal(err)
	}
	if _, err := f.MTCall(ctx, p.MSISDNVal); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].proc != "LocationUpdate" || got[1].proc != "MTCall" {
		t.Fatalf("observer events = %+v", got)
	}
	if got[0].err != nil || got[1].err != nil {
		t.Fatalf("observer recorded errors on success: %+v", got)
	}

	f.SetProcObserver(nil)
	if _, err := f.MTCall(ctx, p.MSISDNVal); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("observer fired after removal: %+v", got)
	}
}
