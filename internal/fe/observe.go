package fe

import "repro/internal/metrics"

// RegisterMetrics attaches the front-end's per-procedure instruments
// to a registry. instance names this FE in the labels (front-ends
// carry no name of their own — callers typically pass the simnet
// endpoint name they were created with). Safe to call again: Attach
// replaces any prior binding for the same label set.
func (f *FE) RegisterMetrics(reg *metrics.Registry, instance string) {
	invocations := reg.Counter("udr_fe_proc_invocations_total",
		"Front-end procedure invocations.", "site", "fe", "kind", "proc")
	ops := reg.Counter("udr_fe_proc_ldap_ops_total",
		"LDAP operations issued by front-end procedures.", "site", "fe", "kind", "proc")
	failures := reg.Counter("udr_fe_proc_failures_total",
		"Front-end procedure availability failures (not business denials).", "site", "fe", "kind", "proc")
	latency := reg.Histogram("udr_fe_proc_latency_seconds",
		"Front-end procedure latency.", "site", "fe", "kind", "proc")

	kind := f.kind.String()
	for _, p := range []struct {
		name  string
		stats *ProcStats
	}{
		{"LocationUpdate", &f.LocationUpdateStats},
		{"Authenticate", &f.AuthenticateStats},
		{"MOCall", &f.MOCallStats},
		{"MTCall", &f.MTCallStats},
		{"SMS", &f.SMSStats},
		{"IMSRegister", &f.IMSRegisterStats},
		{"ShUpdate", &f.ShUpdateStats},
	} {
		invocations.Attach(&p.stats.Invocations, f.site, instance, kind, p.name)
		ops.Attach(&p.stats.Ops, f.site, instance, kind, p.name)
		failures.Attach(&p.stats.Failures, f.site, instance, kind, p.name)
		latency.Attach(&p.stats.Latency, f.site, instance, kind, p.name)
	}

	reg.Counter("udr_fe_stale_reads_total",
		"Reads detectably served from a stale slave copy.",
		"site", "fe", "kind").Attach(&f.StaleReads, f.site, instance, kind)
}
