package antientropy

import (
	"hash/fnv"
	"sort"

	"repro/internal/store"
)

// RowDigest hashes one row version: key, commit metadata (CSN,
// wall-clock timestamp, tombstone, version vector) and the entry
// content. Two replicas hold the same digest for a key exactly when
// they hold the same committed version, which is what lets leaf
// comparison stand in for row comparison.
func RowDigest(key string, e store.Entry, m store.Meta) uint64 {
	h := fnv.New64a()
	var b [8]byte
	h.Write([]byte(key))
	h.Write([]byte{0})
	putU64(b[:], m.CSN)
	h.Write(b[:])
	putU64(b[:], uint64(m.WallTS))
	h.Write(b[:])
	if m.Tombstone {
		h.Write([]byte{1})
	} else {
		h.Write([]byte{0})
	}
	if len(m.VC) > 0 {
		ids := make([]string, 0, len(m.VC))
		for id := range m.VC {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			h.Write([]byte(id))
			h.Write([]byte{0})
			putU64(b[:], m.VC[id])
			h.Write(b[:])
		}
	}
	if len(e) > 0 {
		attrs := make([]string, 0, len(e))
		for a := range e {
			attrs = append(attrs, a)
		}
		sort.Strings(attrs)
		for _, a := range attrs {
			h.Write([]byte(a))
			h.Write([]byte{1})
			for _, v := range e[a] {
				h.Write([]byte(v))
				h.Write([]byte{2})
			}
		}
	}
	return h.Sum64()
}

// Tracker keeps one replica's Merkle tree current. It installs itself
// as the store's row hook, so every installed row version — local
// commit, replicated apply, WAL replay or repair merge — updates the
// tree in O(1) before the installing call returns.
type Tracker struct {
	st   *store.Store
	tree *Tree
}

// NewTracker builds a tree over the store's current rows and installs
// the row hook. The hook is installed before the initial scan so a
// concurrent commit cannot fall between scan and hook (re-observing a
// row is an idempotent tree update). The rebuild iterates the shared
// immutable row versions in place (ForEachAny): no per-row clone, no
// key-set materialization.
func NewTracker(st *store.Store) *Tracker {
	t := &Tracker{st: st, tree: NewTree(DefaultFanout, DefaultDepth)}
	st.SetRowHook(t.observe)
	st.ForEachAny(func(key string, e store.Entry, m store.Meta) bool {
		t.tree.Update(key, RowDigest(key, e, m))
		return true
	})
	return t
}

// observe is the store row hook.
func (t *Tracker) observe(key string, e store.Entry, m store.Meta) {
	t.tree.Update(key, RowDigest(key, e, m))
}

// Tree returns the tracked Merkle tree.
func (t *Tracker) Tree() *Tree { return t.tree }

// Store returns the tracked store.
func (t *Tracker) Store() *store.Store { return t.st }
