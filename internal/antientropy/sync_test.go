package antientropy

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/replication"
	"repro/internal/simnet"
	"repro/internal/store"
)

// rig wires a master and N slave replicas for one partition over a
// fast simnet, each serving both the replication stream and the
// anti-entropy protocol — the same routing a storage element does.
type rig struct {
	net      *simnet.Network
	master   *replication.Replica
	mtracker *Tracker
	repairer *Repairer
	slaves   []*replication.Replica
	trackers []*Tracker
	addrs    []simnet.Addr
}

func newRig(t *testing.T, slaves int) *rig {
	t.Helper()
	n := simnet.New(simnet.FastConfig())
	r := &rig{net: n}

	mkNode := func(site, name, id string, role store.Role) (*replication.Replica, *Tracker, simnet.Addr) {
		addr := simnet.MakeAddr(site, name)
		node := replication.NewNode(n, addr)
		node.RetryInterval = time.Millisecond
		st := store.New(id)
		st.SetRole(role)
		rep := node.AddReplica("p1", st)
		tr := NewTracker(st)
		peer := NewPeer()
		peer.Register("p1", tr, rep)
		n.Register(addr, func(ctx context.Context, from simnet.Addr, msg any) (any, error) {
			if resp, handled, err := node.HandleMessage(ctx, from, msg); handled {
				return resp, err
			}
			if resp, handled, err := peer.HandleMessage(ctx, from, msg); handled {
				return resp, err
			}
			return nil, fmt.Errorf("unhandled %T", msg)
		})
		t.Cleanup(node.Stop)
		return rep, tr, addr
	}

	var mAddr simnet.Addr
	r.master, r.mtracker, mAddr = mkNode("eu", "m", "m", store.Master)
	var peerAddrs []simnet.Addr
	for i := 0; i < slaves; i++ {
		rep, tr, addr := mkNode(fmt.Sprintf("site%d", i), fmt.Sprintf("s%d", i), fmt.Sprintf("s%d", i), store.Slave)
		r.slaves = append(r.slaves, rep)
		r.trackers = append(r.trackers, tr)
		r.addrs = append(r.addrs, addr)
		peerAddrs = append(peerAddrs, addr)
	}
	r.master.SetPeers(peerAddrs...)
	r.repairer = NewRepairer(n, mAddr, "p1", r.mtracker, r.master)
	return r
}

func (r *rig) commit(t *testing.T, key, val string) {
	t.Helper()
	txn := r.master.Store().Begin(store.ReadCommitted)
	txn.Put(key, store.Entry{"v": {val}})
	if _, err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
}

func waitFor(t *testing.T, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("timeout: " + msg)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestRepairInSyncShipsNothing(t *testing.T) {
	r := newRig(t, 1)
	for i := 0; i < 20; i++ {
		r.commit(t, fmt.Sprintf("k%d", i), "v")
	}
	waitFor(t, func() bool { return r.slaves[0].Store().AppliedCSN() == 20 }, "catch-up")
	stats, err := r.repairer.RepairPeer(context.Background(), r.addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	if !stats.InSync || stats.RowsTransferred() != 0 {
		t.Fatalf("stats = %+v, want in-sync zero transfer", stats)
	}
}

// TestRepairConvergesStuckSlave reproduces the post-failover state:
// the slave misses rows it can never receive (its stream needs a CSN
// the master's senders no longer hold contiguously) and carries a
// stale tail of its own. One repair round must converge both stores
// and re-attach the slave to the stream.
func TestRepairConvergesStuckSlave(t *testing.T) {
	r := newRig(t, 1)
	slave := r.slaves[0].Store()

	// Divergence: the master commits 30 rows the slave never sees
	// (simulate by priming the slave's applied mark past the stream),
	// and the slave holds 5 rows the master lacks.
	slave.SetAppliedCSN(1000) // stream records now skip as duplicates
	for i := 0; i < 30; i++ {
		r.commit(t, fmt.Sprintf("m%d", i), "from-master")
	}
	for i := 0; i < 5; i++ {
		slave.PutDirect(fmt.Sprintf("tail%d", i), store.Entry{"v": {"from-slave"}},
			store.Meta{CSN: 900 + uint64(i), WallTS: int64(1_000_000 + i)})
	}

	stats, err := r.repairer.RepairPeer(context.Background(), r.addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	if stats.InSync {
		t.Fatal("divergent replicas reported in sync")
	}
	if stats.RowsShipped != 30 || stats.RowsPulled != 5 {
		t.Fatalf("shipped/pulled = %d/%d, want 30/5", stats.RowsShipped, stats.RowsPulled)
	}
	if r.mtracker.Tree().Root() != r.trackers[0].Tree().Root() {
		t.Fatal("trees disagree after repair")
	}
	for i := 0; i < 30; i++ {
		if _, _, ok := slave.GetCommitted(fmt.Sprintf("m%d", i)); !ok {
			t.Fatalf("slave missing m%d after repair", i)
		}
	}
	for i := 0; i < 5; i++ {
		if _, _, ok := r.master.Store().GetCommitted(fmt.Sprintf("tail%d", i)); !ok {
			t.Fatalf("master missing tail%d after repair", i)
		}
	}
}

func TestRepairAdvancesWatermark(t *testing.T) {
	r := newRig(t, 1)
	slave := r.slaves[0].Store()
	// Strand the slave behind a sequence gap: prime appliedCSN low
	// while the master's CSN advances out of band.
	r.master.Store().SetCSN(50)
	for i := 0; i < 10; i++ {
		r.master.Store().PutDirect(fmt.Sprintf("k%d", i), store.Entry{"v": {"x"}},
			store.Meta{CSN: uint64(41 + i), WallTS: int64(i + 1)})
	}
	stats, err := r.repairer.RepairPeer(context.Background(), r.addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	if !stats.WatermarkAdvanced {
		t.Fatalf("watermark not advanced: %+v", stats)
	}
	if got := slave.AppliedCSN(); got != 50 {
		t.Fatalf("slave applied = %d, want 50", got)
	}
	// The slave can now apply the next streamed commit.
	r.commit(t, "after", "heal")
	waitFor(t, func() bool {
		_, _, ok := slave.GetCommitted("after")
		return ok
	}, "stream resumed after watermark advance")
}

func TestRepairBandwidthCap(t *testing.T) {
	r := newRig(t, 1)
	slave := r.slaves[0].Store()
	slave.SetAppliedCSN(1000)
	for i := 0; i < 40; i++ {
		r.commit(t, fmt.Sprintf("k%02d", i), "v")
	}
	r.repairer.MaxRowsPerRound = 15

	ctx := context.Background()
	rounds, total := 0, 0
	for {
		stats, err := r.repairer.RepairPeer(ctx, r.addrs[0])
		if err != nil {
			t.Fatal(err)
		}
		rounds++
		total += stats.RowsTransferred()
		if stats.InSync {
			break
		}
		if !stats.Truncated && stats.RowsShipped > 15 {
			t.Fatalf("round shipped %d rows, cap 15", stats.RowsShipped)
		}
		if rounds > 10 {
			t.Fatal("cap rounds did not converge")
		}
	}
	if total != 40 {
		t.Fatalf("total rows transferred = %d, want 40", total)
	}
	if r.mtracker.Tree().Root() != r.trackers[0].Tree().Root() {
		t.Fatal("trees disagree after capped repair")
	}
}

func TestRepairConflictsResolveSymmetrically(t *testing.T) {
	r := newRig(t, 1)
	slave := r.slaves[0].Store()
	slave.SetAppliedCSN(1000)
	// Both sides wrote the same key during the split; the slave's
	// version has the later wall-clock timestamp and must win on both
	// replicas (LWW resolver).
	r.commit(t, "conflict", "from-master")
	_, mMeta, _ := r.master.Store().GetCommitted("conflict")
	slave.PutDirect("conflict", store.Entry{"v": {"from-slave"}},
		store.Meta{CSN: 3, WallTS: mMeta.WallTS + 10_000})

	if _, err := r.repairer.RepairPeer(context.Background(), r.addrs[0]); err != nil {
		t.Fatal(err)
	}
	me, _, _ := r.master.Store().GetCommitted("conflict")
	se, _, _ := slave.GetCommitted("conflict")
	if me.First("v") != "from-slave" || se.First("v") != "from-slave" {
		t.Fatalf("LWW winner not installed on both sides: master=%v slave=%v", me, se)
	}
	if r.mtracker.Tree().Root() != r.trackers[0].Tree().Root() {
		t.Fatal("trees disagree after conflict resolution")
	}
}

func TestRepairTombstoneWins(t *testing.T) {
	r := newRig(t, 1)
	slave := r.slaves[0].Store()
	r.commit(t, "gone", "v1")
	waitFor(t, func() bool { return slave.AppliedCSN() == 1 }, "catch-up")
	// Master deletes; the stream to the slave is stranded.
	slave.SetAppliedCSN(1000)
	txn := r.master.Store().Begin(store.ReadCommitted)
	txn.Delete("gone")
	if _, err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.repairer.RepairPeer(context.Background(), r.addrs[0]); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := slave.GetCommitted("gone"); ok {
		t.Fatal("tombstone did not propagate through repair")
	}
	if r.mtracker.Tree().Root() != r.trackers[0].Tree().Root() {
		t.Fatal("trees disagree after tombstone repair")
	}
}

func TestRepairMultiplePeers(t *testing.T) {
	r := newRig(t, 2)
	for _, s := range r.slaves {
		s.Store().SetAppliedCSN(1000)
	}
	for i := 0; i < 10; i++ {
		r.commit(t, fmt.Sprintf("k%d", i), "v")
	}
	ctx := context.Background()
	for i, addr := range r.addrs {
		if _, err := r.repairer.RepairPeer(ctx, addr); err != nil {
			t.Fatal(err)
		}
		if r.mtracker.Tree().Root() != r.trackers[i].Tree().Root() {
			t.Fatalf("slave %d tree disagrees after repair", i)
		}
	}
}

func TestRepairUnreachablePeerErrors(t *testing.T) {
	r := newRig(t, 1)
	r.commit(t, "k", "v")
	r.net.Partition([]string{"eu"})
	defer r.net.Heal()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if _, err := r.repairer.RepairPeer(ctx, r.addrs[0]); err == nil {
		t.Fatal("repair across a partition succeeded")
	}
}

func TestSchedulerTicksAndKicks(t *testing.T) {
	var mu sync.Mutex
	rounds := 0
	s := NewScheduler(5*time.Millisecond, func(context.Context) {
		mu.Lock()
		rounds++
		mu.Unlock()
	})
	s.Start()
	defer s.Stop()
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return rounds >= 3
	}, "periodic rounds")
	s.Stop()
	mu.Lock()
	base := rounds
	mu.Unlock()

	// Kick-only mode: no interval.
	k := NewScheduler(0, func(context.Context) {
		mu.Lock()
		rounds++
		mu.Unlock()
	})
	k.Start()
	defer k.Stop()
	time.Sleep(20 * time.Millisecond)
	mu.Lock()
	if rounds != base {
		mu.Unlock()
		t.Fatal("kick-only scheduler ran without a kick")
	}
	mu.Unlock()
	k.Kick()
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return rounds == base+1
	}, "kicked round")
}
