package antientropy

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/store"
)

// rebuildRoot computes the Merkle root of a store's current rows from
// scratch, without installing a hook — the oracle for tracker tests.
func rebuildRoot(st *store.Store) uint64 {
	tree := NewTree(DefaultFanout, DefaultDepth)
	st.ForEachAny(func(key string, e store.Entry, m store.Meta) bool {
		tree.Update(key, RowDigest(key, e, m))
		return true
	})
	return tree.Root()
}

// TestTrackerAgreesAfterConcurrentInstalls drives concurrent commits,
// replicated applies and direct puts across the store's lock stripes
// — row hooks now fire concurrently from different shards — and
// checks the incrementally maintained tree ends identical to a fresh
// rebuild, on master and slave alike. Run under -race in CI.
func TestTrackerAgreesAfterConcurrentInstalls(t *testing.T) {
	const workers, perW, keys = 6, 150, 40

	master := store.New("m")
	tracker := NewTracker(master)
	slave := store.New("s")
	slave.SetRole(store.Slave)
	slaveTracker := NewTracker(slave)

	stream := make(chan *store.CommitRecord, workers*perW)
	master.SetCommitHook(func(rec *store.CommitRecord) error {
		// Runs under the commit lock; re-observe through the tracker
		// hook happens inside the store install itself.
		stream <- rec
		return nil
	})
	var applied sync.WaitGroup
	applied.Add(1)
	go func() {
		defer applied.Done()
		for rec := range stream {
			if err := slave.ApplyReplicated(rec); err != nil {
				t.Errorf("apply: %v", err)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				key := fmt.Sprintf("k%02d", (w+i)%keys)
				txn := master.Begin(store.ReadCommitted)
				if i%7 == 6 {
					txn.Delete(key)
				} else {
					txn.Put(key, store.Entry{"v": {fmt.Sprintf("%d-%d", w, i)}})
				}
				if _, err := txn.Commit(); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stream)
	applied.Wait()
	if t.Failed() {
		return
	}

	if got, want := tracker.Tree().Root(), rebuildRoot(master); got != want {
		t.Fatalf("master tracker root %x, rebuild %x", got, want)
	}
	if got, want := slaveTracker.Tree().Root(), rebuildRoot(slave); got != want {
		t.Fatalf("slave tracker root %x, rebuild %x", got, want)
	}
	// Replicas converged, so their trees must agree too.
	if tracker.Tree().Root() != slaveTracker.Tree().Root() {
		t.Fatalf("master root %x != slave root %x",
			tracker.Tree().Root(), slaveTracker.Tree().Root())
	}

	// Direct puts (the repair install path) keep tracking.
	master.PutDirect("extra", store.Entry{"v": {"x"}}, store.Meta{CSN: 1 << 30, WallTS: 1})
	if got, want := tracker.Tree().Root(), rebuildRoot(master); got != want {
		t.Fatalf("after PutDirect: tracker root %x, rebuild %x", got, want)
	}
}
