// Package antientropy implements Merkle-digest replica repair: the
// reconvergence subsystem the paper's asynchronous replication design
// (§3.3.1) leaves open. After a backbone glitch and failover (§4.1) a
// demoted master holds committed-but-unshipped rows its new master
// never saw, and the new master's replication stream no longer fits
// the demoted copy's sequence — without repair the replicas stay
// silently divergent until a full re-replication. This package closes
// the gap the way production stores do (Dynamo/Cassandra-style
// anti-entropy): each partition replica keeps an incrementally
// updated hash tree over its rows; a repair scheduler on the master
// periodically exchanges digests with each slave, walks mismatched
// subtrees, and ships only the divergent rows, resolving conflicts
// through the replication resolver and version-vector rules.
package antientropy

import (
	"hash/fnv"
	"sort"
	"sync"
)

// Default tree geometry: fanout^depth leaves. 256 leaves keep digest
// exchanges to a few hundred bytes while a single divergent row
// narrows to a 1/256 key-range slice in two round trips.
const (
	DefaultFanout = 16
	DefaultDepth  = 2
)

// leafSeed decorrelates the key→leaf placement hash from the row
// digest hash so a digest collision cannot also collide placement.
const leafSeed = 0x9e3779b97f4a7c15

// Tree is an incrementally updated Merkle tree over a replica's rows.
// Leaves accumulate per-row digests with XOR, so a row update is O(1);
// internal levels are recomputed lazily when digests are read. All
// methods are safe for concurrent use.
type Tree struct {
	fanout, depth int
	nLeaves       int

	mu sync.Mutex
	// rows holds every tracked key's current digest (tombstones
	// included: deletions must propagate too).
	rows map[string]uint64
	// leafRows indexes rows by leaf for the repair walk.
	leafRows []map[string]uint64
	// leafDig is the per-leaf XOR accumulator.
	leafDig []uint64
	// levels caches internal node digests: levels[l] has fanout^l
	// nodes, l in [0, depth). Rebuilt from leafDig when dirty.
	levels [][]uint64
	dirty  bool
}

// NewTree returns an empty tree with the given geometry.
func NewTree(fanout, depth int) *Tree {
	if fanout < 2 {
		fanout = DefaultFanout
	}
	if depth < 1 {
		depth = DefaultDepth
	}
	n := 1
	for i := 0; i < depth; i++ {
		n *= fanout
	}
	t := &Tree{
		fanout:   fanout,
		depth:    depth,
		nLeaves:  n,
		rows:     make(map[string]uint64),
		leafRows: make([]map[string]uint64, n),
		leafDig:  make([]uint64, n),
		levels:   make([][]uint64, depth),
	}
	m := 1
	for l := 0; l < depth; l++ {
		t.levels[l] = make([]uint64, m)
		m *= fanout
	}
	t.dirty = true
	return t
}

// Fanout returns the tree fanout.
func (t *Tree) Fanout() int { return t.fanout }

// Depth returns the number of levels below the root (leaves live at
// level Depth()).
func (t *Tree) Depth() int { return t.depth }

// NumLeaves returns the leaf count.
func (t *Tree) NumLeaves() int { return t.nLeaves }

// Len returns the number of tracked rows (tombstones included).
func (t *Tree) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.rows)
}

// LeafIndex returns the leaf a key maps to.
func (t *Tree) LeafIndex(key string) int {
	h := fnv.New64a()
	var seed [8]byte
	putU64(seed[:], leafSeed)
	h.Write(seed[:])
	h.Write([]byte(key))
	return int(h.Sum64() % uint64(t.nLeaves))
}

// Update installs (or replaces) a key's row digest.
func (t *Tree) Update(key string, digest uint64) {
	leaf := t.LeafIndex(key)
	t.mu.Lock()
	defer t.mu.Unlock()
	if old, ok := t.rows[key]; ok {
		if old == digest {
			return
		}
		t.leafDig[leaf] ^= old
	}
	t.rows[key] = digest
	if t.leafRows[leaf] == nil {
		t.leafRows[leaf] = make(map[string]uint64)
	}
	t.leafRows[leaf][key] = digest
	t.leafDig[leaf] ^= digest
	t.dirty = true
}

// rebuildLocked recomputes the internal levels bottom-up.
func (t *Tree) rebuildLocked() {
	if !t.dirty {
		return
	}
	below := t.leafDig
	for l := t.depth - 1; l >= 0; l-- {
		for i := range t.levels[l] {
			h := fnv.New64a()
			var b [8]byte
			for c := i * t.fanout; c < (i+1)*t.fanout; c++ {
				putU64(b[:], below[c])
				h.Write(b[:])
			}
			t.levels[l][i] = h.Sum64()
		}
		below = t.levels[l]
	}
	t.dirty = false
}

// Root returns the root digest.
func (t *Tree) Root() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rebuildLocked()
	return t.levels[0][0]
}

// Digests returns the digests of the nodes at the given level (root =
// level 0, leaves = level Depth()) and indexes. Out-of-range indexes
// yield zero digests.
func (t *Tree) Digests(level int, indexes []int) []uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rebuildLocked()
	var nodes []uint64
	switch {
	case level < 0 || level > t.depth:
		return make([]uint64, len(indexes))
	case level == t.depth:
		nodes = t.leafDig
	default:
		nodes = t.levels[level]
	}
	out := make([]uint64, len(indexes))
	for i, idx := range indexes {
		if idx >= 0 && idx < len(nodes) {
			out[i] = nodes[idx]
		}
	}
	return out
}

// LeafRow is one row's (key, digest) pair inside a leaf.
type LeafRow struct {
	Key    string
	Digest uint64
}

// LeafRows returns a leaf's rows sorted by key.
func (t *Tree) LeafRows(leaf int) []LeafRow {
	t.mu.Lock()
	defer t.mu.Unlock()
	if leaf < 0 || leaf >= t.nLeaves {
		return nil
	}
	out := make([]LeafRow, 0, len(t.leafRows[leaf]))
	for k, d := range t.leafRows[leaf] {
		out = append(out, LeafRow{Key: k, Digest: d})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

func putU64(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}
