package antientropy

import (
	"context"
	"sync"
	"time"
)

// Scheduler runs repair rounds on a fixed cadence and on demand.
// The round function is supplied by the owner (the storage element
// repairs every hosted master replica against its peers); the
// scheduler only owns the timing: a periodic tick plus Kick, which
// the partition-heal watcher uses to trigger an immediate round.
type Scheduler struct {
	interval time.Duration
	round    func(ctx context.Context)

	mu      sync.Mutex
	kick    chan struct{}
	stop    chan struct{}
	wg      sync.WaitGroup
	started bool
}

// NewScheduler returns a stopped scheduler. interval <= 0 disables
// the periodic tick (rounds then run only on Kick).
func NewScheduler(interval time.Duration, round func(ctx context.Context)) *Scheduler {
	return &Scheduler{
		interval: interval,
		round:    round,
		kick:     make(chan struct{}, 1),
	}
}

// Start launches the scheduling loop. Starting a started scheduler is
// a no-op.
func (s *Scheduler) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return
	}
	s.started = true
	s.stop = make(chan struct{})
	s.wg.Add(1)
	go s.run(s.stop)
}

// Stop halts the loop and waits for an in-flight round to finish.
// Stopping a stopped scheduler is a no-op.
func (s *Scheduler) Stop() {
	s.mu.Lock()
	if !s.started {
		s.mu.Unlock()
		return
	}
	s.started = false
	stop := s.stop
	s.mu.Unlock()
	close(stop)
	s.wg.Wait()
}

// Kick requests an immediate round (coalesced if one is pending).
func (s *Scheduler) Kick() {
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

func (s *Scheduler) run(stop chan struct{}) {
	defer s.wg.Done()
	var tick <-chan time.Time
	if s.interval > 0 {
		t := time.NewTicker(s.interval)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-stop:
			return
		case <-tick:
		case <-s.kick:
		}
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		go func() {
			defer close(done)
			s.round(ctx)
		}()
		select {
		case <-done:
			cancel()
		case <-stop:
			cancel()
			<-done
			return
		}
	}
}
