package antientropy

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/replication"
	"repro/internal/simnet"
	"repro/internal/store"
)

// Messages exchanged by the repair protocol. They are exported so the
// storage element's simnet handler can route them here, mirroring the
// replication package's message types.

// DigestReq asks for the digests of the nodes at one tree level
// (root = level 0, leaves = level Depth). Indexes may be empty for
// the root.
type DigestReq struct {
	Partition string
	Level     int
	Indexes   []int
}

// DigestResp carries the requested digests, parallel to Indexes (or a
// single root digest).
type DigestResp struct {
	Digests []uint64
}

// LeafReq asks for the (key, digest) rows of the listed leaves.
type LeafReq struct {
	Partition string
	Leaves    []int
}

// LeafResp answers a LeafReq; Leaves is parallel to the request.
type LeafResp struct {
	Leaves [][]LeafRow
}

// RepairReq ships the caller's versions of divergent rows and names
// the keys whose peer versions the caller wants back, so one round
// trip repairs both directions.
type RepairReq struct {
	Partition string
	Rows      []replication.RowTransfer
	Want      []string
}

// RepairResp reports how many shipped rows changed the peer and
// returns the peer's (post-merge) versions of the wanted keys.
type RepairResp struct {
	Applied int
	Rows    []replication.RowTransfer
}

// WatermarkReq advances a slave's replication high-water mark to CSN
// after a complete repair round: every commit at or below CSN is
// reflected in the repaired rows, so the slave can rejoin the
// master's stream mid-sequence instead of staying stuck on a CSN gap.
type WatermarkReq struct {
	Partition string
	CSN       uint64
}

// WatermarkResp reports whether the mark moved.
type WatermarkResp struct {
	Advanced bool
}

// Peer serves the repair protocol for the partition replicas hosted
// on one storage element.
type Peer struct {
	mu    sync.RWMutex
	parts map[string]*peerPart

	// RowsRepaired counts incoming repair rows that changed a local
	// row; RowsReturned counts rows sent back to repairers.
	RowsRepaired metrics.Counter
	RowsReturned metrics.Counter
}

type peerPart struct {
	tracker *Tracker
	replica *replication.Replica
}

// NewPeer returns an empty protocol server.
func NewPeer() *Peer {
	return &Peer{parts: make(map[string]*peerPart)}
}

// Register serves the repair protocol for a partition replica,
// replacing any previous registration (element recovery rebuilds the
// store and re-registers).
func (p *Peer) Register(partition string, tr *Tracker, rep *replication.Replica) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.parts[partition] = &peerPart{tracker: tr, replica: rep}
}

// Tracker returns the registered tracker for a partition, or nil.
func (p *Peer) Tracker(partition string) *Tracker {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if pp := p.parts[partition]; pp != nil {
		return pp.tracker
	}
	return nil
}

func (p *Peer) part(partition string) (*peerPart, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	pp := p.parts[partition]
	if pp == nil {
		return nil, fmt.Errorf("antientropy: partition %q not tracked here", partition)
	}
	return pp, nil
}

// HandleMessage processes a repair-protocol message. It reports
// handled = false for messages belonging to other subsystems so the
// storage element can route them elsewhere.
func (p *Peer) HandleMessage(ctx context.Context, from simnet.Addr, msg any) (resp any, handled bool, err error) {
	switch m := msg.(type) {
	case DigestReq:
		pp, err := p.part(m.Partition)
		if err != nil {
			return nil, true, err
		}
		tree := pp.tracker.Tree()
		if m.Level == 0 {
			return DigestResp{Digests: []uint64{tree.Root()}}, true, nil
		}
		return DigestResp{Digests: tree.Digests(m.Level, m.Indexes)}, true, nil
	case LeafReq:
		pp, err := p.part(m.Partition)
		if err != nil {
			return nil, true, err
		}
		tree := pp.tracker.Tree()
		out := make([][]LeafRow, len(m.Leaves))
		for i, leaf := range m.Leaves {
			out[i] = tree.LeafRows(leaf)
		}
		return LeafResp{Leaves: out}, true, nil
	case RepairReq:
		pp, err := p.part(m.Partition)
		if err != nil {
			return nil, true, err
		}
		var out RepairResp
		shipped := make(map[string]uint64, len(m.Rows))
		for _, row := range m.Rows {
			shipped[row.Key] = RowDigest(row.Key, row.Entry, row.Meta)
			if pp.replica.MergeRepair(row) {
				out.Applied++
				p.RowsRepaired.Inc()
			}
		}
		st := pp.tracker.Store()
		for _, key := range m.Want {
			e, meta, ok := st.GetAny(key)
			if !ok {
				continue
			}
			// Skip rows identical to the version just shipped: the
			// caller already holds them; returning them would double
			// the repair traffic for rows the caller's version won.
			if d, was := shipped[key]; was && d == RowDigest(key, e, meta) {
				continue
			}
			out.Rows = append(out.Rows, replication.RowTransfer{Key: key, Entry: e, Meta: meta})
			p.RowsReturned.Inc()
		}
		return out, true, nil
	case WatermarkReq:
		pp, err := p.part(m.Partition)
		if err != nil {
			return nil, true, err
		}
		st := pp.tracker.Store()
		if st.MultiMaster() || st.Role() != store.Slave || st.AppliedCSN() >= m.CSN {
			return WatermarkResp{}, true, nil
		}
		st.SetAppliedCSN(m.CSN)
		return WatermarkResp{Advanced: true}, true, nil
	default:
		return nil, false, nil
	}
}

// Stats reports one repair round against one peer.
type Stats struct {
	Partition string
	Peer      simnet.Addr
	// InSync is true when the root digests matched: nothing shipped.
	InSync bool
	// LeavesDiffed is how many leaves mismatched.
	LeavesDiffed int
	// RowsShipped / RowsPulled count row transfers in each direction.
	RowsShipped int
	RowsPulled  int
	// RowsRepairedLocal / RowsRepairedPeer count rows that actually
	// changed on each side.
	RowsRepairedLocal int
	RowsRepairedPeer  int
	// Truncated is true when the per-round row cap cut the round
	// short; another round is needed.
	Truncated bool
	// WatermarkAdvanced is true when the peer's replication high-water
	// mark was moved up to re-attach it to the master's stream.
	WatermarkAdvanced bool
}

// RowsTransferred is the round's total row traffic in both
// directions — the number E16 compares against a full re-replication.
func (s Stats) RowsTransferred() int { return s.RowsShipped + s.RowsPulled }

// Repairer drives repair rounds for one partition replica (normally
// the master copy) against its replication peers.
type Repairer struct {
	net       *simnet.Network
	addr      simnet.Addr
	partition string
	tracker   *Tracker
	replica   *replication.Replica

	// MaxRowsPerRound caps row transfers per round per peer — the
	// bandwidth cap that keeps repair from starving client traffic on
	// the backbone. 0 means unlimited.
	MaxRowsPerRound int
	// CallTimeout bounds each protocol RPC.
	CallTimeout time.Duration

	// runMu serializes rounds: the scheduler tick, the heal-watcher
	// kick and an operator's udrctl repair may race, and two
	// concurrent walks would both ship the same divergent rows.
	runMu sync.Mutex

	// Rounds counts repair rounds run; InSyncRounds those that ended
	// at the root comparison. RowsShipped / RowsPulled aggregate row
	// traffic; LeavesDiffed aggregates mismatched leaves.
	Rounds       metrics.Counter
	InSyncRounds metrics.Counter
	RowsShipped  metrics.Counter
	RowsPulled   metrics.Counter
	LeavesDiffed metrics.Counter
}

// NewRepairer returns a repairer for the replica tracked by tr,
// calling out from addr on net.
func NewRepairer(net *simnet.Network, addr simnet.Addr, partition string, tr *Tracker, rep *replication.Replica) *Repairer {
	return &Repairer{
		net:         net,
		addr:        addr,
		partition:   partition,
		tracker:     tr,
		replica:     rep,
		CallTimeout: 250 * time.Millisecond,
	}
}

// Partition returns the repaired partition.
func (r *Repairer) Partition() string { return r.partition }

// Replica returns the local replica the repairer works from.
func (r *Repairer) Replica() *replication.Replica { return r.replica }

func (r *Repairer) call(ctx context.Context, peer simnet.Addr, req any) (any, error) {
	cctx, cancel := context.WithTimeout(ctx, r.CallTimeout)
	defer cancel()
	return r.net.Call(cctx, r.addr, peer, req)
}

// RepairPeer runs one repair round against a peer: digest walk from
// the root, leaf diff, bidirectional row exchange through the
// resolver, and — when the round was complete — a watermark advance
// that re-attaches the peer to the replication stream. Rows written
// concurrently with the walk may be missed; the next round catches
// them (anti-entropy is a convergent background process, not a
// barrier).
func (r *Repairer) RepairPeer(ctx context.Context, peer simnet.Addr) (Stats, error) {
	r.runMu.Lock()
	defer r.runMu.Unlock()
	stats := Stats{Partition: r.partition, Peer: peer}
	r.Rounds.Inc()
	tree := r.tracker.Tree()
	// Capture the CSN before reading any digest: every commit at or
	// below it is fully reflected in the tree, so it is a safe
	// watermark once the divergent rows are shipped.
	csn0 := r.replica.Store().CSN()

	raw, err := r.call(ctx, peer, DigestReq{Partition: r.partition, Level: 0})
	if err != nil {
		return stats, err
	}
	rootResp, ok := raw.(DigestResp)
	if !ok || len(rootResp.Digests) != 1 {
		return stats, fmt.Errorf("antientropy: bad digest response %T", raw)
	}
	if rootResp.Digests[0] == tree.Root() {
		stats.InSync = true
		r.InSyncRounds.Inc()
		return stats, r.advanceWatermark(ctx, peer, csn0, &stats)
	}

	// Walk mismatched subtrees level by level down to the leaves.
	frontier := []int{0}
	for level := 1; level <= tree.Depth(); level++ {
		indexes := make([]int, 0, len(frontier)*tree.Fanout())
		for _, node := range frontier {
			for c := node * tree.Fanout(); c < (node+1)*tree.Fanout(); c++ {
				indexes = append(indexes, c)
			}
		}
		raw, err := r.call(ctx, peer, DigestReq{Partition: r.partition, Level: level, Indexes: indexes})
		if err != nil {
			return stats, err
		}
		resp, ok := raw.(DigestResp)
		if !ok || len(resp.Digests) != len(indexes) {
			return stats, fmt.Errorf("antientropy: bad digest response %T", raw)
		}
		local := tree.Digests(level, indexes)
		frontier = frontier[:0]
		for i, idx := range indexes {
			if local[i] != resp.Digests[i] {
				frontier = append(frontier, idx)
			}
		}
		if len(frontier) == 0 {
			// Divergence raced away (concurrent writes); done.
			return stats, nil
		}
	}
	stats.LeavesDiffed = len(frontier)
	r.LeavesDiffed.Add(int64(len(frontier)))

	// Compare leaf contents to find the divergent keys.
	raw, err = r.call(ctx, peer, LeafReq{Partition: r.partition, Leaves: frontier})
	if err != nil {
		return stats, err
	}
	leafResp, ok := raw.(LeafResp)
	if !ok || len(leafResp.Leaves) != len(frontier) {
		return stats, fmt.Errorf("antientropy: bad leaf response %T", raw)
	}
	var divergent []string
	for i, leaf := range frontier {
		remote := make(map[string]uint64, len(leafResp.Leaves[i]))
		for _, row := range leafResp.Leaves[i] {
			remote[row.Key] = row.Digest
		}
		for _, row := range tree.LeafRows(leaf) {
			if d, ok := remote[row.Key]; !ok || d != row.Digest {
				divergent = append(divergent, row.Key)
			}
			delete(remote, row.Key)
		}
		for key := range remote { // peer-only keys
			divergent = append(divergent, key)
		}
	}
	sort.Strings(divergent)
	if r.MaxRowsPerRound > 0 && len(divergent) > r.MaxRowsPerRound {
		divergent = divergent[:r.MaxRowsPerRound]
		stats.Truncated = true
	}
	if len(divergent) == 0 {
		return stats, nil
	}

	// Re-check authority before exchanging rows: a replica demoted
	// mid-walk (failover, OSS repair) must not ship its now-stale
	// versions or advance anyone's watermark from its dead commit
	// sequence.
	st := r.replica.Store()
	if st.Role() != store.Master && !st.MultiMaster() {
		return stats, fmt.Errorf("antientropy: %s demoted mid-repair", r.partition)
	}

	// Ship our versions and pull the peer's in one round trip.
	req := RepairReq{Partition: r.partition, Want: divergent}
	for _, key := range divergent {
		if e, m, ok := st.GetAny(key); ok {
			req.Rows = append(req.Rows, replication.RowTransfer{Key: key, Entry: e, Meta: m})
		}
	}
	raw, err = r.call(ctx, peer, req)
	if err != nil {
		return stats, err
	}
	repResp, ok := raw.(RepairResp)
	if !ok {
		return stats, fmt.Errorf("antientropy: bad repair response %T", raw)
	}
	stats.RowsShipped = len(req.Rows)
	stats.RowsPulled = len(repResp.Rows)
	stats.RowsRepairedPeer = repResp.Applied
	r.RowsShipped.Add(int64(len(req.Rows)))
	r.RowsPulled.Add(int64(len(repResp.Rows)))
	for _, row := range repResp.Rows {
		if r.replica.MergeRepair(row) {
			stats.RowsRepairedLocal++
		}
	}

	if stats.Truncated {
		return stats, nil
	}
	return stats, r.advanceWatermark(ctx, peer, csn0, &stats)
}

// advanceWatermark re-attaches the peer to the replication stream
// after a complete round. Multi-master replicas have no stream
// sequence to advance; the peer enforces that side of the check.
func (r *Repairer) advanceWatermark(ctx context.Context, peer simnet.Addr, csn uint64, stats *Stats) error {
	st := r.replica.Store()
	if st.MultiMaster() || st.Role() != store.Master || csn == 0 {
		return nil
	}
	raw, err := r.call(ctx, peer, WatermarkReq{Partition: r.partition, CSN: csn})
	if err != nil {
		return err
	}
	if resp, ok := raw.(WatermarkResp); ok {
		stats.WatermarkAdvanced = resp.Advanced
	}
	return nil
}
