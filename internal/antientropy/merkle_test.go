package antientropy

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/store"
	"repro/internal/vclock"
)

func TestTreeIncrementalMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	inc := NewTree(4, 3)
	final := make(map[string]uint64)
	for i := 0; i < 5000; i++ {
		key := fmt.Sprintf("sub-%d", rng.Intn(800))
		d := rng.Uint64()
		inc.Update(key, d)
		final[key] = d
	}
	rebuilt := NewTree(4, 3)
	for k, d := range final {
		rebuilt.Update(k, d)
	}
	if inc.Root() != rebuilt.Root() {
		t.Fatalf("incremental root %x != rebuilt root %x", inc.Root(), rebuilt.Root())
	}
	if inc.Len() != len(final) {
		t.Fatalf("len = %d, want %d", inc.Len(), len(final))
	}
}

func TestTreeLocalizesSingleDifference(t *testing.T) {
	a := NewTree(DefaultFanout, DefaultDepth)
	b := NewTree(DefaultFanout, DefaultDepth)
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("sub-%08d", i)
		a.Update(key, uint64(i)+1)
		b.Update(key, uint64(i)+1)
	}
	if a.Root() != b.Root() {
		t.Fatal("identical trees disagree at the root")
	}
	b.Update("sub-00000042", 999999)
	if a.Root() == b.Root() {
		t.Fatal("divergent trees agree at the root")
	}

	// Walk: at every level exactly the subtree holding the key should
	// mismatch.
	frontier := []int{0}
	for level := 1; level <= a.Depth(); level++ {
		var idx []int
		for _, n := range frontier {
			for c := n * a.Fanout(); c < (n+1)*a.Fanout(); c++ {
				idx = append(idx, c)
			}
		}
		da, db := a.Digests(level, idx), b.Digests(level, idx)
		frontier = frontier[:0]
		for i := range idx {
			if da[i] != db[i] {
				frontier = append(frontier, idx[i])
			}
		}
		if len(frontier) != 1 {
			t.Fatalf("level %d: %d mismatched nodes, want 1", level, len(frontier))
		}
	}
	if want := a.LeafIndex("sub-00000042"); frontier[0] != want {
		t.Fatalf("walk ended at leaf %d, want %d", frontier[0], want)
	}

	// The leaf rows expose exactly the divergent key.
	ra, rb := a.LeafRows(frontier[0]), b.LeafRows(frontier[0])
	diff := 0
	bm := make(map[string]uint64, len(rb))
	for _, r := range rb {
		bm[r.Key] = r.Digest
	}
	for _, r := range ra {
		if bm[r.Key] != r.Digest {
			diff++
			if r.Key != "sub-00000042" {
				t.Fatalf("unexpected divergent key %q", r.Key)
			}
		}
	}
	if diff != 1 {
		t.Fatalf("leaf diff found %d keys, want 1", diff)
	}
}

func TestTreeUpdateIdempotent(t *testing.T) {
	tr := NewTree(DefaultFanout, DefaultDepth)
	tr.Update("k", 123)
	root := tr.Root()
	tr.Update("k", 123)
	if tr.Root() != root {
		t.Fatal("idempotent update changed the root")
	}
	tr.Update("k", 124)
	if tr.Root() == root {
		t.Fatal("digest change did not change the root")
	}
}

func TestRowDigestSensitivity(t *testing.T) {
	e := store.Entry{"msisdn": {"34600000001"}, "active": {"TRUE"}}
	base := RowDigest("sub-1", e, store.Meta{CSN: 5, WallTS: 100})
	cases := map[string]uint64{
		"key":       RowDigest("sub-2", e, store.Meta{CSN: 5, WallTS: 100}),
		"csn":       RowDigest("sub-1", e, store.Meta{CSN: 6, WallTS: 100}),
		"wallts":    RowDigest("sub-1", e, store.Meta{CSN: 5, WallTS: 101}),
		"tombstone": RowDigest("sub-1", e, store.Meta{CSN: 5, WallTS: 100, Tombstone: true}),
		"vc":        RowDigest("sub-1", e, store.Meta{CSN: 5, WallTS: 100, VC: vclock.VC{"a": 1}}),
		"content": RowDigest("sub-1",
			store.Entry{"msisdn": {"34600000002"}, "active": {"TRUE"}},
			store.Meta{CSN: 5, WallTS: 100}),
	}
	for name, d := range cases {
		if d == base {
			t.Errorf("digest insensitive to %s", name)
		}
	}
	again := RowDigest("sub-1", store.Entry{"active": {"TRUE"}, "msisdn": {"34600000001"}},
		store.Meta{CSN: 5, WallTS: 100})
	if again != base {
		t.Error("digest depends on map iteration order")
	}
}

func TestTrackerFollowsStore(t *testing.T) {
	master := store.New("m")
	slave := store.New("s")
	slave.SetRole(store.Slave)
	mt := NewTracker(master)
	st := NewTracker(slave)

	if mt.Tree().Root() != st.Tree().Root() {
		t.Fatal("empty trees disagree")
	}
	var recs []*store.CommitRecord
	for i := 0; i < 50; i++ {
		txn := master.Begin(store.ReadCommitted)
		txn.Put(fmt.Sprintf("sub-%d", i), store.Entry{"v": {fmt.Sprint(i)}})
		rec, err := txn.Commit()
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, rec)
	}
	if mt.Tree().Root() == st.Tree().Root() {
		t.Fatal("trees agree despite divergence")
	}
	for _, rec := range recs {
		if err := slave.ApplyReplicated(rec); err != nil {
			t.Fatal(err)
		}
	}
	if mt.Tree().Root() != st.Tree().Root() {
		t.Fatal("trees disagree after the slave applied the full stream")
	}

	// Deletion propagates through the tombstone digest.
	txn := master.Begin(store.ReadCommitted)
	txn.Delete("sub-7")
	rec, err := txn.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if mt.Tree().Root() == st.Tree().Root() {
		t.Fatal("delete did not change the master tree")
	}
	if err := slave.ApplyReplicated(rec); err != nil {
		t.Fatal(err)
	}
	if mt.Tree().Root() != st.Tree().Root() {
		t.Fatal("trees disagree after replicated delete")
	}
}

func TestTrackerSeedsExistingRows(t *testing.T) {
	st := store.New("m")
	for i := 0; i < 20; i++ {
		txn := st.Begin(store.ReadCommitted)
		txn.Put(fmt.Sprintf("sub-%d", i), store.Entry{"v": {"1"}})
		if _, err := txn.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	tr := NewTracker(st)
	if tr.Tree().Len() != 20 {
		t.Fatalf("tracker seeded %d rows, want 20", tr.Tree().Len())
	}
}
