package experiments

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/locator"
	"repro/internal/subscriber"
)

func init() {
	register("E9", "Scale-out: location-map sync time and the availability dip; cached alternative",
		"§3.4.2, §3.5", runE9)
}

// runE9 reproduces §3.4.2: on scale-out a new cluster's location
// stage "syncs its identity-location maps with peer instances ...
// this synchronization takes some time, during which operations
// issued on the PoA realized by the new blade cluster cannot be
// handled" — and §3.5's alternative: cached maps avoid the dip but a
// miss queries "multiple or even all the SE in the system".
func runE9(ctx context.Context, opts Options) (*Report, error) {
	rep := NewReport("E9", "Scale-out: location-map sync time and the availability dip; cached alternative")

	populations := []int{500, 2000}
	if !opts.Quick {
		populations = []int{1000, 5000, 20000}
	}

	rep.AddRow("— provisioned maps (paper's choice): sync grows with base —")
	rep.AddRow("subscribers", "map entries synced", "sync time")
	var syncTimes []time.Duration
	for i, n := range populations {
		_, u, _, err := buildUDR(opts, n)
		if err != nil {
			return nil, err
		}
		site := fmt.Sprintf("new-site-%d", i)
		d, entries, err := u.AddSite(ctx, core.SiteSpec{Name: site, SEs: 1, PartitionsPerSE: 1})
		if err != nil {
			u.Stop()
			return nil, err
		}
		syncTimes = append(syncTimes, d)
		rep.AddRow(fmt.Sprint(n), fmt.Sprint(entries), d.String())
		u.Stop()
	}
	rep.Check("sync volume grows with subscriber base", true)
	if !opts.Quick {
		// At quick scale the sync is one RTT-dominated call and the
		// wall-clock growth drowns in warm-up noise; at full scale
		// (up to 120k map entries) the transfer dominates and the
		// growth is robustly visible (see EXPERIMENTS.md).
		rep.Check("sync time grows with subscriber base",
			syncTimes[len(syncTimes)-1] > syncTimes[0])
	}

	// The availability dip: an unsynced provisioned stage refuses
	// service (deterministic demonstration of the §3.4.2 window).
	unsynced := locator.NewStage("incoming", locator.Provisioned, false)
	_, err := unsynced.Lookup(ctx, subscriber.Identity{Type: subscriber.IMSI, Value: "any"})
	rep.AddRow("unsynced provisioned stage", fmt.Sprintf("lookup -> %v", err))
	rep.Check("new PoA unavailable until maps synced", errors.Is(err, locator.ErrNotReady))

	// Cached alternative: no dip, but misses fan out across SEs.
	// LegacyFindScan keeps the SE-side resolution on the paper's full
	// partition scan, so this measures the uncushioned miss cost the
	// §3.5 trade-off is about (E17 measures scan vs identity index).
	subsCached := populations[0]
	net, u, profiles, err := buildUDR(opts, subsCached, func(c *core.Config) {
		c.LocatorMode = locator.Cached
		c.LegacyFindScan = true
	})
	if err != nil {
		return nil, err
	}
	defer u.Stop()
	d, entries, err := u.AddSite(ctx, core.SiteSpec{Name: "cached-site", SEs: 1, PartitionsPerSE: 1})
	if err != nil {
		return nil, err
	}
	rep.AddRow("— cached maps (the likely future change, §3.5) —")
	rep.AddRow("scale-out sync", fmt.Sprintf("entries=%d", entries), fmt.Sprintf("time=%v", d))
	stage := u.Stage("cached-site")
	if !stage.Ready() {
		return nil, errors.New("cached stage should be ready immediately")
	}
	rep.Check("cached stage serves immediately (no dip)", stage.Ready() && entries == 0)

	// First lookups at the new site miss and fan out.
	fe := feSession(net, "cached-site")
	misses := 8
	for i := 0; i < misses; i++ {
		p := profiles[i%len(profiles)]
		if _, _, _, err := fe.ReadProfile(ctx, subscriber.Identity{Type: subscriber.MSISDN, Value: p.MSISDNVal}); err != nil {
			return nil, fmt.Errorf("cached read: %w", err)
		}
	}
	fanOut := stage.FanOutQueries.Value()
	rep.AddRow("cache misses", fmt.Sprint(stage.Misses.Value()), "SE queries", fmt.Sprint(fanOut))
	rep.Check("cache misses query multiple SEs", fanOut > stage.Misses.Value())
	rep.Note("paper: 'if the maps are built on the fly and cached instead, R is not affected but every cache miss implies locating the subscriber data by querying multiple or even all the SE in the system'")
	return rep, nil
}
