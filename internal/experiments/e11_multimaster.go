package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/se"
	"repro/internal/store"
	"repro/internal/subscriber"
)

func init() {
	register("E11", "Multi-master: availability on partition, divergence, consistency restoration",
		"§5", runE11)
}

// runE11 reproduces the §5 evolution: "some sort of multi-master
// operation would be very convenient so writes can be addressed to
// more than one single replica ... Once the partition incident is
// over, a consistency restoration process must run across the whole
// UDR NF, trying to merge the different views into one single,
// consistent view."
func runE11(ctx context.Context, opts Options) (*Report, error) {
	rep := NewReport("E11", "Multi-master: availability on partition, divergence, consistency restoration")

	writeBursts := []int{4, 8, 16}
	if opts.Quick {
		writeBursts = []int{2, 6}
	}

	rep.AddRow("concurrent writes/side", "writes accepted (both sides)", "divergent rows pre-merge", "conflicts resolved", "converged")
	var conflictSeries []int64
	for _, burst := range writeBursts {
		subs, _ := sizes(opts)
		net, u, profiles, err := buildUDR(opts, subs, func(c *core.Config) { c.MultiMaster = true })
		if err != nil {
			return nil, err
		}

		sites := u.Sites()
		isolated := sites[0]
		// Targets mastered outside the isolated site, so the
		// isolated-side writes land on a local (slave-role)
		// multi-master replica.
		var targets []*subscriber.Profile
		for _, p := range profiles {
			if p.HomeRegion != isolated {
				targets = append(targets, p)
			}
			if len(targets) == burst {
				break
			}
		}

		net.Partition([]string{isolated})
		psA := psSession(net, isolated)
		accepted := 0
		for i, p := range targets {
			if _, err := psA.Exec(ctx, core.ExecReq{
				Identity: subscriber.Identity{Type: subscriber.IMSI, Value: p.IMSIVal},
				Ops: []se.TxnOp{{Kind: se.TxnModify, Mods: []store.Mod{{
					Kind: store.ModReplace, Attr: subscriber.AttrBarPremium, Vals: []string{"TRUE"},
				}}}},
			}); err == nil {
				accepted++
			}
			// Conflicting write on the majority side.
			psB := psSession(net, p.HomeRegion)
			if _, err := psB.Exec(ctx, core.ExecReq{
				Identity: subscriber.Identity{Type: subscriber.IMSI, Value: p.IMSIVal},
				Ops: []se.TxnOp{{Kind: se.TxnModify, Mods: []store.Mod{{
					Kind: store.ModReplace, Attr: subscriber.AttrForwardUncond, Vals: []string{fmt.Sprintf("3469999%04d", i)},
				}}}},
			}); err == nil {
				accepted++
			}
		}

		// Let in-partition propagation settle, then measure
		// divergence before restoration.
		time.Sleep(5 * time.Millisecond)
		divergent := countDivergent(u, targets)
		net.Heal()

		if _, err := u.RestoreAll(ctx); err != nil {
			u.Stop()
			return nil, err
		}
		stillDivergent := countDivergent(u, targets)

		var conflicts int64
		for _, elID := range u.Elements() {
			el := u.Element(elID)
			for _, part := range el.Partitions() {
				conflicts += el.Replica(part).Repl.Conflicts.Value()
			}
		}
		conflictSeries = append(conflictSeries, conflicts)

		rep.AddRow(fmt.Sprint(burst), fmt.Sprintf("%d/%d", accepted, 2*len(targets)),
			fmt.Sprint(divergent), fmt.Sprint(conflicts), fmt.Sprint(stillDivergent == 0))

		rep.Check(fmt.Sprintf("burst %d: writes accepted on both sides", burst), accepted == 2*len(targets))
		rep.Check(fmt.Sprintf("burst %d: views diverged during partition", burst), divergent > 0)
		rep.Check(fmt.Sprintf("burst %d: restoration converges all replicas", burst), stillDivergent == 0)
		rep.Check(fmt.Sprintf("burst %d: conflicts detected and resolved", burst), conflicts > 0)

		// The merged view preserves the barring (safety-biased field
		// merge) and the forwarding write (LWW on its field).
		merged := readReplica(u, targets[0])
		rep.Check(fmt.Sprintf("burst %d: merge keeps barring (safety bias)", burst),
			merged.First(subscriber.AttrBarPremium) == "TRUE")
		rep.Check(fmt.Sprintf("burst %d: merge keeps forwarding write", burst),
			merged.First(subscriber.AttrForwardUncond) != "")
		u.Stop()
	}

	rep.Check("conflicts grow with concurrent-write volume",
		conflictSeries[len(conflictSeries)-1] > conflictSeries[0])
	rep.Note("contrast with E3: identical partition, but multi-master accepts writes on both sides (availability) at the price of conflicts to merge (consistency) — exactly the CAP exchange §5 describes")
	return rep, nil
}

// countDivergent counts targets whose replicas disagree.
func countDivergent(u *core.UDR, targets []*subscriber.Profile) int {
	divergent := 0
	for _, p := range targets {
		var entries []store.Entry
		for _, partID := range u.Partitions() {
			part, _ := u.Partition(partID)
			for _, ref := range part.Replicas {
				el := u.Element(ref.Element)
				if el == nil {
					continue
				}
				pr := el.Replica(partID)
				if pr == nil {
					continue
				}
				if e, _, ok := pr.Store.GetCommitted(p.ID); ok {
					entries = append(entries, e)
				}
			}
		}
		for i := 1; i < len(entries); i++ {
			if !entries[0].Equal(entries[i]) {
				divergent++
				break
			}
		}
	}
	return divergent
}

// readReplica returns any replica's committed entry for a profile.
func readReplica(u *core.UDR, p *subscriber.Profile) store.Entry {
	for _, partID := range u.Partitions() {
		part, _ := u.Partition(partID)
		for _, ref := range part.Replicas {
			el := u.Element(ref.Element)
			if el == nil {
				continue
			}
			pr := el.Replica(partID)
			if pr == nil {
				continue
			}
			if e, _, ok := pr.Store.GetCommitted(p.ID); ok {
				return e
			}
		}
	}
	return nil
}
