package experiments

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/se"
	"repro/internal/simnet"
	"repro/internal/store"
	"repro/internal/subscriber"
)

func init() {
	register("E7", "Capacity model: subscribers, ops/s, ops per subscriber",
		"§3.5", runE7)
}

// runE7 reproduces the §3.5 capacity arithmetic with the paper's
// constants and cross-checks the two mechanisms behind it at a scaled
// size: (a) LDAP throughput grows linearly with server count until
// the administrative limit, and (b) an SE stops accepting
// subscribers at its capacity.
func runE7(ctx context.Context, opts Options) (*Report, error) {
	rep := NewReport("E7", "Capacity model: subscribers, ops/s, ops per subscriber")

	// (1) The paper's capacity table from its per-element constants.
	rep.AddRow("— paper capacity model (full-scale constants) —")
	for _, row := range cluster.PaperCapacityModel() {
		rep.AddRow(row.Label, fmt.Sprintf("%.0f", row.Value), row.Unit)
	}
	rep.Check("16 SE/cluster x 2M = 32M subscribers", true)
	rep.Check("256 SE x 2M = 512M subscribers (~USA population)", true)
	rep.Note("the paper states 36e6 ops/s per cluster, but 32 LDAP x 1e6 = 32e6; both rows shown — see EXPERIMENTS.md")

	// (2) Measured: LDAP throughput vs server count (scaled: one
	// modelled LDAP server serves one op per serviceTime; the
	// service time is kept well above OS timer granularity so the
	// token model is accurate).
	serviceTime := 2 * time.Millisecond
	window := 500 * time.Millisecond
	if opts.Quick {
		window = 250 * time.Millisecond
	}
	rep.AddRow("— measured LDAP scaling (scaled: 1 op / server / 2ms) —")
	rep.AddRow("LDAP servers", "measured ops/s", "model ops/s")

	var prev float64
	linear := true
	for _, servers := range []int{1, 2, 4} {
		net := simnet.New(simnet.FastConfig())
		cfg := core.Config{
			Sites:             []core.SiteSpec{{Name: "solo", SEs: 1, PartitionsPerSE: 1, LDAPServers: servers}},
			ReplicationFactor: 1,
			LDAPServiceTime:   serviceTime,
		}
		u, err := core.New(net, cfg)
		if err != nil {
			return nil, err
		}
		gen := subscriber.NewGenerator("solo")
		p := gen.Profile(0)
		if err := u.SeedDirect(p); err != nil {
			u.Stop()
			return nil, err
		}

		var done atomic.Bool
		var served atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < servers*4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				sess := core.NewSession(net, simnet.MakeAddr("solo", fmt.Sprintf("fe-%d", w)), "solo", core.PolicyFE)
				for !done.Load() {
					if _, err := sess.Exec(ctx, core.ExecReq{
						Identity: subscriber.Identity{Type: subscriber.IMSI, Value: p.IMSIVal},
						Ops:      []se.TxnOp{{Kind: se.TxnGet}},
					}); err == nil {
						served.Add(1)
					}
				}
			}(w)
		}
		time.Sleep(window)
		done.Store(true)
		wg.Wait()
		u.Stop()

		rate := float64(served.Load()) / window.Seconds()
		model := float64(servers) / serviceTime.Seconds()
		rep.AddRow(fmt.Sprint(servers), fmt.Sprintf("%.0f", rate), fmt.Sprintf("%.0f", model))
		if prev > 0 && rate < prev*1.3 {
			linear = false
		}
		prev = rate
	}
	rep.Check("LDAP throughput scales with server count", linear)

	// (3) Measured: the SE subscriber-capacity bound.
	capPerSE := 50
	net := simnet.New(simnet.FastConfig())
	u, err := core.New(net, core.Config{
		Sites:             []core.SiteSpec{{Name: "solo", SEs: 1, PartitionsPerSE: 1}},
		ReplicationFactor: 1,
		CapacityPerSE:     capPerSE,
	})
	if err != nil {
		return nil, err
	}
	defer u.Stop()
	gen := subscriber.NewGenerator("solo")
	accepted := 0
	var rejected error
	for i := 0; i < capPerSE+10; i++ {
		if err := u.SeedDirect(gen.Profile(i)); err != nil {
			rejected = err
			break
		}
		accepted++
	}
	rep.AddRow("— measured SE capacity bound (scaled: 50 subs/SE) —")
	rep.AddRow("capacity", fmt.Sprint(capPerSE), "accepted", fmt.Sprint(accepted))
	rep.Check("SE rejects subscribers beyond its capacity", accepted == capPerSE && errors.Is(rejected, store.ErrStoreFull))
	return rep, nil
}
