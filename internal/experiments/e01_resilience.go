package experiments

import (
	"context"

	"repro/internal/core"
	"repro/internal/se"
	"repro/internal/store"
	"repro/internal/subscriber"
)

func init() {
	register("E1", "UDR survives down to one SE (full base served)",
		"Figure 2, §2.3", runE1)
}

// runE1 reproduces the Figure 2 resilience claim: with three SEs each
// holding one primary partition and secondary copies of the other
// two, the UDR "can continue providing service for 100% of the
// subscriber base as long as one PoA and one SE are reachable".
func runE1(ctx context.Context, opts Options) (*Report, error) {
	rep := NewReport("E1", "UDR survives down to one SE (full base served)")
	subs, _ := sizes(opts)
	net, u, profiles, err := buildUDR(opts, subs)
	if err != nil {
		return nil, err
	}
	defer u.Stop()

	sites := u.Sites()
	survivorSite := sites[0]
	fe := feSession(net, survivorSite)

	readable := func() int {
		n := 0
		for _, p := range profiles {
			if _, _, _, err := fe.ReadProfile(ctx, subscriber.Identity{
				Type: subscriber.MSISDN, Value: p.MSISDNVal}); err == nil {
				n++
			}
		}
		return n
	}

	rep.AddRow("phase", "SEs alive", "base readable", "base writable")
	writable := func() int {
		n := 0
		ps := psSession(net, survivorSite)
		for _, p := range profiles {
			if _, err := ps.Exec(ctx, e1Touch(p)); err == nil {
				n++
			}
		}
		return n
	}

	r0, w0 := readable(), writable()
	rep.AddRow("all healthy", "3", pct(r0, subs), pct(w0, subs))
	rep.Check("healthy: 100% readable", r0 == subs)
	rep.Check("healthy: 100% writable", w0 == subs)

	// Kill the SEs of the two other sites.
	var killed []string
	for _, elID := range u.Elements() {
		el := u.Element(elID)
		if el.Site() != survivorSite {
			el.Crash()
			killed = append(killed, elID)
		}
	}
	r1 := readable()
	rep.AddRow("2 SEs crashed, pre-failover", "1", pct(r1, subs), "(pending failover)")
	// Reads survive immediately: the surviving SE holds slave copies
	// of every partition.
	rep.Check("post-crash: reads survive on slave copies", r1 == subs)

	// OSS failover promotes the surviving slaves to master.
	for _, partID := range u.Partitions() {
		part, _ := u.Partition(partID)
		if el := u.Element(part.Master().Element); el.Down() {
			if _, err := u.Failover(partID); err != nil {
				return nil, err
			}
		}
	}
	r2, w2 := readable(), writable()
	rep.AddRow("after failover", "1", pct(r2, subs), pct(w2, subs))
	rep.Check("one SE serves 100% of base (reads)", r2 == subs)
	rep.Check("one SE serves 100% of base (writes)", w2 == subs)

	rep.Note("killed elements: %v; survivor site: %s", killed, survivorSite)
	rep.Note("paper: 'the UDR from figure 2 can continue providing service for 100%% of the subscriber base as long as one PoA and one SE are reachable'")
	return rep, nil
}

// e1Touch builds a trivial write op for a profile.
func e1Touch(p *subscriber.Profile) core.ExecReq {
	return core.ExecReq{
		Identity: subscriber.Identity{Type: subscriber.IMSI, Value: p.IMSIVal},
		Ops: []se.TxnOp{{Kind: se.TxnModify, Mods: []store.Mod{{
			Kind: store.ModReplace, Attr: subscriber.AttrArea, Vals: []string{"touched"},
		}}}},
	}
}
