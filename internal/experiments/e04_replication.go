package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/replication"
	"repro/internal/se"
	"repro/internal/store"
	"repro/internal/subscriber"
)

func init() {
	register("E4", "Async vs sync replication: commit latency and durability gap",
		"§3.3.1, §4.2", runE4)
}

// runE4 reproduces §3.3.1 decision 2 and its §4.2 critique:
// asynchronous replication keeps commit latency at local cost because
// "execution of a transaction does not have to wait until the
// corresponding write(s) have been propagated to the slave replica(s)"
// — but "a transaction committed on the master with ACID guarantees
// might not be durable if a severe failure prevents the transaction
// from being replicated to at least one slave".
func runE4(ctx context.Context, opts Options) (*Report, error) {
	rep := NewReport("E4", "Async vs sync replication: commit latency and durability gap")
	subs, ops := sizes(opts)
	if ops > 200 {
		ops = 200 // sync modes pay a backbone RTT per commit
	}

	rep.AddRow("durability", "commit p50", "commit p95", "txns lost on master failure")
	backbone := netConfig(opts).Backbone.Latency
	var asyncP50 time.Duration

	for _, dur := range []replication.Durability{replication.Async, replication.DualSeq, replication.SyncAll} {
		net, u, profiles, err := buildUDR(opts, subs, func(c *core.Config) { c.Durability = dur })
		if err != nil {
			return nil, err
		}

		// Writes from the home site so master access is local and
		// the replication cost dominates the comparison.
		home := profiles[0].HomeRegion
		psSess := psSession(net, home)
		var hist metrics.Histogram
		target := profiles[0]
		for i := 0; i < ops; i++ {
			start := time.Now()
			_, err := psSess.Exec(ctx, core.ExecReq{
				Identity: subscriber.Identity{Type: subscriber.IMSI, Value: target.IMSIVal},
				Ops: []se.TxnOp{{Kind: se.TxnModify, Mods: []store.Mod{{
					Kind: store.ModReplace, Attr: subscriber.AttrSQN, Vals: []string{fmt.Sprint(i)},
				}}}},
			})
			if err != nil {
				u.Stop()
				return nil, fmt.Errorf("durability %s write %d: %w", dur, i, err)
			}
			hist.Record(time.Since(start))
		}

		// Durability gap: partition the master away so nothing ships,
		// commit a burst, "lose" the master, fail over, count what
		// survived at the promoted slave.
		var partID string
		for _, pid := range u.Partitions() {
			if p, _ := u.Partition(pid); p.HomeSite == home {
				partID = pid
			}
		}
		part, _ := u.Partition(partID)
		masterEl := u.Element(part.Master().Element)
		masterStore := masterEl.Replica(partID).Store

		net.Partition([]string{home})
		const burst = 10
		committed := 0
		for i := 0; i < burst; i++ {
			txn := masterStore.Begin(store.ReadCommitted)
			txn.Put(fmt.Sprintf("burst-%d", i), store.Entry{"v": {fmt.Sprint(i)}})
			if _, err := txn.Commit(); err == nil {
				committed++
			}
		}
		masterEl.Crash()
		net.Heal()
		newMaster, err := u.Failover(partID)
		if err != nil {
			u.Stop()
			return nil, err
		}
		promoted := u.Element(newMaster.Element).Replica(partID).Store
		survived := 0
		for i := 0; i < burst; i++ {
			if _, _, ok := promoted.GetCommitted(fmt.Sprintf("burst-%d", i)); ok {
				survived++
			}
		}
		lost := committed - survived

		s := hist.Snapshot()
		rep.AddRow(dur.String(), s.P50.String(), s.P95.String(), fmt.Sprintf("%d/%d", lost, committed))

		switch dur {
		case replication.Async:
			rep.Check("async: commit latency below one backbone RTT", s.P50 < backbone)
			rep.Check("async: acknowledged commits lost on failure (durability gap)", lost > 0)
			asyncP50 = s.P50
		case replication.DualSeq:
			rep.Check("dual-seq: commit pays at least one backbone one-way", s.P50 >= backbone)
			// During the partition the DualSeq commits fail, so
			// nothing un-replicated was acknowledged: committed is 0.
			rep.Check("dual-seq: no acknowledged commit lost", lost <= 0 || committed == 0)
		case replication.SyncAll:
			rep.Check("sync-all: slowest commit path", s.P50 >= asyncP50)
			rep.Check("sync-all: no acknowledged commit lost", lost <= 0 || committed == 0)
		}
		u.Stop()
	}

	rep.Note("durability-gap protocol: partition master, commit %d-txn burst (acknowledged only under async), crash master, fail over, count survivors at the promoted slave", 10)
	rep.Note("paper §4.2: 'on a failure of a storage element, durability of the latest transactions is not guaranteed'")
	return rep, nil
}
