package experiments

import (
	"context"
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/subscriber"
)

func init() {
	register("E14", "Five-nines availability under element failures",
		"§2.3 req 3, §3.1", runE14)
}

// runE14 reproduces §2.3 requirement 3 ("on average any given
// subscriber's data must be available 99.999% of the time") by
// measuring the mean time to repair after a storage-element failure
// with and without geographic replication, then projecting the
// yearly availability at a stated failure rate.
//
// With replication, repair = supervisor failover (sub-second); the
// projected downtime at a few element failures per year stays within
// the five-nines budget (~5.3 minutes/year). Without replication,
// repair = hardware replacement (the paper's node-based silo world),
// which blows the budget by orders of magnitude.
func runE14(ctx context.Context, opts Options) (*Report, error) {
	rep := NewReport("E14", "Five-nines availability under element failures")
	subs, _ := sizes(opts)
	net, u, profiles, err := buildUDR(opts, subs)
	if err != nil {
		return nil, err
	}
	defer u.Stop()

	// Fast supervisor: detection + grace dominate MTTR.
	sup := u.NewSupervisor(2*time.Millisecond, 4*time.Millisecond)
	sup.Start()
	defer sup.Stop()

	sites := u.Sites()
	probeSite := sites[1]
	fe := feSession(net, probeSite)

	// Victim: a partition mastered at a third site; its subscribers
	// are the ones at risk.
	victimSite := sites[2]
	var victims []*subscriber.Profile
	for _, p := range profiles {
		if p.HomeRegion == victimSite {
			victims = append(victims, p)
		}
	}
	victimEl := u.Element("se-" + victimSite + "-0")

	// Continuous probing of one victim subscriber's data with writes
	// (reads always survive on slaves; the write path is what the
	// failover must restore).
	probe := victims[0]
	var okCount, failCount atomic.Int64
	var outageStart, outageEnd atomic.Int64
	ps := psSession(net, probeSite)
	stopProbe := make(chan struct{})
	probeDone := make(chan struct{})
	go func() {
		defer close(probeDone)
		for {
			select {
			case <-stopProbe:
				return
			default:
			}
			_, err := ps.Exec(ctx, e1Touch(probe))
			now := time.Now().UnixMicro()
			if err != nil {
				failCount.Add(1)
				outageStart.CompareAndSwap(0, now)
			} else {
				okCount.Add(1)
				if outageStart.Load() != 0 && outageEnd.Load() == 0 {
					outageEnd.Store(now)
				}
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

	time.Sleep(20 * time.Millisecond)
	crashAt := time.Now()
	victimEl.Crash()

	// Wait until service is restored (failover) or timeout. The
	// failover can also win the race against the probe cadence, in
	// which case no outage is ever observed — the best case.
	deadline := time.Now().Add(5 * time.Second)
	for outageEnd.Load() == 0 && time.Now().Before(deadline) {
		if outageStart.Load() == 0 && time.Since(crashAt) > 200*time.Millisecond {
			break // failover finished between probes; no outage seen
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond)
	close(stopProbe)
	<-probeDone

	outageSeen := outageStart.Load() != 0
	restored := !outageSeen || outageEnd.Load() != 0
	mttr := time.Duration(0)
	if s, e := outageStart.Load(), outageEnd.Load(); s != 0 && e != 0 {
		mttr = time.Duration(e-s) * time.Microsecond
	}
	total := okCount.Load() + failCount.Load()
	measuredAvail := float64(okCount.Load()) / float64(total)

	rep.AddRow("metric", "with replication+failover", "without replication (silo)")
	// Projection: F element failures per year; affected share of the
	// base is 1/3 (one partition of three).
	const failuresPerYear = 4.0
	year := 365.25 * 24 * time.Hour
	// Without replication the outage lasts until hardware repair;
	// use a conservative 4h MTTR (telecom field-replacement SLA).
	siloMTTR := 4 * time.Hour
	projected := func(repair time.Duration) float64 {
		downFrac := failuresPerYear * repair.Seconds() / year.Seconds()
		return 1 - downFrac/3 // one of three partitions affected
	}
	projRepl := projected(mttr)
	projSilo := projected(siloMTTR)
	mttrLabel := mttr.String()
	if !outageSeen {
		mttrLabel = "< probe round trip (no failed probe observed)"
	}
	rep.AddRow("measured MTTR (write path)", mttrLabel, siloMTTR.String()+" (assumed HW repair)")
	rep.AddRow("projected availability (4 failures/yr)",
		fmt.Sprintf("%.7f", projRepl), fmt.Sprintf("%.7f", projSilo))
	rep.AddRow("projected nines", fmt.Sprintf("%.1f", metrics.Nines(projRepl)),
		fmt.Sprintf("%.1f", metrics.Nines(projSilo)))
	rep.AddRow("probe availability during compressed run", fmt.Sprintf("%.4f", measuredAvail), "n/a")

	rep.Check("failover restored service", restored)
	rep.Check("MTTR under one second (failover, not repair)", mttr < time.Second)
	rep.Check("replicated UDR projects >= 5 nines", metrics.Nines(projRepl) >= 5)
	rep.Check("unreplicated silo projects < 5 nines", metrics.Nines(projSilo) < 5)
	rep.Check("reads survived throughout (slave copies)", readsSurvive(ctx, fe, victims))

	rep.Note("assumption: 4 complete element failures/year, each affecting one of three partitions; failover MTTR measured, silo MTTR assumed 4h field repair")
	rep.Note("crash at %v; supervisor interval 2ms, grace 4ms", crashAt.Format(time.RFC3339Nano))
	if math.IsInf(metrics.Nines(projRepl), 1) {
		rep.Note("projected availability rounds to 1.0 at this MTTR")
	}
	return rep, nil
}

// readsSurvive verifies every victim subscriber is still readable.
func readsSurvive(ctx context.Context, fe *core.Session, victims []*subscriber.Profile) bool {
	for _, p := range victims {
		if _, _, _, err := fe.ReadProfile(ctx, subscriber.Identity{
			Type: subscriber.MSISDN, Value: p.MSISDNVal}); err != nil {
			return false
		}
	}
	return true
}
