package experiments

import (
	"context"
	"fmt"
	"os"
	"time"

	"repro/internal/metrics"
	"repro/internal/store"
	"repro/internal/wal"
)

func init() {
	register("E12", "Durability tuning: commit latency per durability level",
		"§3.1 fn 6, §5", runE12)
}

// runE12 reproduces the §5 durability-tuning discussion at the
// storage-element level: "the latency penalty for achieving close to
// 100% guaranteed durability is so high that some unwary service
// providers might think it twice before going down that way" — the
// paper's footnote 6 makes the same point about dumping transactions
// to disk before committing.
//
// Levels measured here (disk axis; E4 measures the replication axis):
//
//	ram-only            — no disk protection at all (loses everything)
//	periodic (paper)    — buffered WAL, interval fsync (loses the tail)
//	dump-before-commit  — fsync per commit (loses nothing, slowest)
func runE12(ctx context.Context, opts Options) (*Report, error) {
	rep := NewReport("E12", "Durability tuning: commit latency per durability level")
	commits := 300
	if opts.Quick {
		commits = 120
	}

	type level struct {
		name    string
		useWAL  bool
		mode    wal.Mode
		syncInt time.Duration
	}
	levels := []level{
		{name: "ram-only (no disk)", useWAL: false},
		{name: "periodic save (paper §3.1)", useWAL: true, mode: wal.Periodic, syncInt: 10 * time.Millisecond},
		{name: "dump-before-commit (fn 6)", useWAL: true, mode: wal.SyncEveryCommit},
	}

	rep.AddRow("durability level", "commit p50", "commit p95", "commits lost on crash")
	var p50s []time.Duration
	for _, lv := range levels {
		dir, err := os.MkdirTemp("", "udr-e12-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)

		st := store.New("e12")
		var log *wal.Log
		if lv.useWAL {
			log, err = wal.Open(dir, lv.mode)
			if err != nil {
				return nil, err
			}
			if lv.syncInt > 0 {
				log.StartPeriodic(lv.syncInt)
			}
			st.SetCommitHook(log.Append)
		}

		var hist metrics.Histogram
		for i := 0; i < commits; i++ {
			txn := st.Begin(store.ReadCommitted)
			txn.Put(fmt.Sprintf("k%06d", i), store.Entry{"v": {fmt.Sprint(i)}})
			start := time.Now()
			if _, err := txn.Commit(); err != nil {
				return nil, err
			}
			hist.Record(time.Since(start))
		}

		// Crash: close without final sync, recover from disk.
		lost := commits
		if lv.useWAL {
			log.Close()
			recovered := store.New("e12")
			csn, _, err := wal.Recover(dir, recovered)
			if err != nil {
				return nil, err
			}
			lost = commits - int(csn)
		}

		s := hist.Snapshot()
		p50s = append(p50s, s.P50)
		rep.AddRow(lv.name, s.P50.String(), s.P95.String(), fmt.Sprintf("%d/%d", lost, commits))

		switch lv.mode {
		case wal.SyncEveryCommit:
			if lv.useWAL {
				rep.Check("dump-before-commit loses nothing", lost == 0)
			}
		case wal.Periodic:
			if lv.useWAL {
				rep.Check("periodic save loses at most the unsynced tail", lost >= 0 && lost < commits)
			}
		}
	}

	// The latency ordering the paper warns about.
	rep.Check("periodic save adds little latency over ram-only", p50s[1] < p50s[2])
	rep.Check("full durability is the expensive end (fsync per commit)", p50s[2] > 2*p50s[0])
	ratio := float64(p50s[2]) / float64(maxDur(p50s[0], time.Nanosecond))
	rep.Note("dump-before-commit costs %.0fx the ram-only commit at p50 — the paper's 'would slow down storage elements too much' (fn 6)", ratio)
	rep.Note("replication-axis durability (async / dual-in-sequence / sync-all) is measured in E4")
	return rep, nil
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
